package main

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/client"
	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/server"
	"quaestor/internal/store"
	"quaestor/internal/workload"
)

// TestEndToEndOverTCP exercises the full production path over real
// sockets: browser clients → CDN edge (in-process tier) → origin HTTP
// server, with the EBF, InvaliDB and purge fan-out all live.
func TestEndToEndOverTCP(t *testing.T) {
	db := store.MustOpen(nil)
	defer db.Close()
	srv := server.New(db, nil)
	defer srv.Close()
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}

	cdn := cache.NewHTTPTier("edge", cache.InvalidationBased, srv.Handler(), 0)
	srv.AddPurger(server.PurgerFunc(func(path string) { cdn.Cache.Purge(path) }))
	ts := httptest.NewServer(cdn)
	defer ts.Close()

	writer, err := client.Dial(&client.Options{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tag := "hot"
		if i%2 == 1 {
			tag = "cold"
		}
		err := writer.Insert("posts", document.New(fmt.Sprintf("p%02d", i), map[string]any{
			"tags": []any{tag}, "n": i,
		}))
		if err != nil {
			t.Fatal(err)
		}
	}

	q := query.New("posts", query.Contains("tags", "hot"))
	reader, err := client.Dial(&client.Options{BaseURL: ts.URL, RefreshInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := reader.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 10 {
		t.Fatalf("query returned %d results", len(res.IDs))
	}

	// A write flips a cold post hot; within the reader's Δ the fresh
	// result must appear.
	if _, err := writer.Update("posts", "p01", store.UpdateSpec{
		Set: map[string]any{"tags": []any{"hot"}},
	}); err != nil {
		t.Fatal(err)
	}
	srv.InvaliDB().Quiesce(5 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(60 * time.Millisecond) // let Δ elapse
		res, err = reader.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) == 11 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Δ-bounded convergence failed: still %d results", len(res.IDs))
		}
	}
}

// TestEndToEndConcurrentWorkload runs a mixed YCSB-style workload from
// several concurrent clients against one stack and checks system-level
// invariants: no errors, bounded EBF, purge fan-out active, cache hits
// actually happening.
func TestEndToEndConcurrentWorkload(t *testing.T) {
	db := store.MustOpen(nil)
	defer db.Close()
	srv := server.New(db, nil)
	defer srv.Close()

	ds := workload.GenerateDataset(&workload.DatasetConfig{
		Tables: 2, DocsPerTable: 300, QueriesPerTable: 15, Seed: 5,
	})
	for _, table := range ds.Tables {
		if err := db.CreateTable(table); err != nil {
			t.Fatal(err)
		}
		for _, d := range ds.Docs[table] {
			if err := db.Insert(table, d); err != nil {
				t.Fatal(err)
			}
		}
	}

	cdn := cache.NewHTTPTier("edge", cache.InvalidationBased, srv.Handler(), 0)
	srv.AddPurger(server.PurgerFunc(func(path string) { cdn.Cache.Purge(path) }))

	const clients = 4
	const opsPerClient = 150
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(&client.Options{
				Transport:       client.NewHandlerTransport(cdn),
				RefreshInterval: 100 * time.Millisecond,
			})
			if err != nil {
				errCh <- err
				return
			}
			gen := workload.NewGenerator(ds, workload.Mix{Read: 0.45, Query: 0.45, Update: 0.10}, 0.9, int64(id))
			for i := 0; i < opsPerClient; i++ {
				op := gen.Next()
				switch op.Type {
				case workload.OpRead:
					if _, err := c.Read(op.Table, op.DocID); err != nil {
						errCh <- fmt.Errorf("read %s/%s: %w", op.Table, op.DocID, err)
						return
					}
				case workload.OpQuery:
					if _, err := c.Query(op.Query); err != nil {
						errCh <- fmt.Errorf("query %s: %w", op.Query.Key(), err)
						return
					}
				case workload.OpUpdate:
					if _, err := c.Update(op.Table, op.DocID, store.UpdateSpec{
						Set: map[string]any{"tags": []any{op.UpdateTag}},
					}); err != nil {
						errCh <- fmt.Errorf("update %s/%s: %w", op.Table, op.DocID, err)
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	srv.InvaliDB().Quiesce(10 * time.Second)
	stats := srv.Stats()
	if stats.Queries == 0 || stats.Reads == 0 || stats.Writes == 0 {
		t.Errorf("workload did not exercise all op types: %+v", stats)
	}
	if stats.Invalidations == 0 {
		t.Error("no invalidations detected despite updates to cached queries")
	}
	if cs := cdn.Cache.Stats(); cs.Hits == 0 {
		t.Error("CDN saw no hits under a shared read-heavy workload")
	}
	if snap := srv.EBFSnapshot(); snap.Filter == nil {
		t.Error("EBF snapshot unavailable")
	}
}
