module quaestor

go 1.24
