// Top-level benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 6), plus ablation benches for the design
// choices called out in DESIGN.md and micro-benchmarks of the core data
// structures. Each figure bench regenerates the corresponding series at a
// reduced scale; `go run ./cmd/quaestor-bench -scale 1` reproduces the
// full-parameter versions.
package main

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quaestor/internal/commitlog"
	"quaestor/internal/document"
	"quaestor/internal/ebf"
	"quaestor/internal/experiments"
	"quaestor/internal/invalidb"
	"quaestor/internal/query"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/sim"
	"quaestor/internal/store"
	"quaestor/internal/ttl"
	"quaestor/internal/wal"
	"quaestor/internal/workload"
)

// benchScale keeps the per-iteration cost of figure benches tractable.
const benchScale = experiments.Scale(0.05)

func runExperiment(b *testing.B, fn func() string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := fn()
		if len(out) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

// BenchmarkFigure1_PageLoad regenerates the provider × region page-load
// comparison (Figure 1).
func BenchmarkFigure1_PageLoad(b *testing.B) {
	runExperiment(b, experiments.Figure1)
}

// BenchmarkFigure8a_Throughput regenerates the throughput-vs-connections
// comparison across the four systems (Figure 8a).
func BenchmarkFigure8a_Throughput(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure8a(benchScale) })
}

// BenchmarkFigure8b_ReadLatency regenerates read latency vs connections
// (Figure 8b).
func BenchmarkFigure8b_ReadLatency(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure8b(benchScale) })
}

// BenchmarkFigure8c_QueryLatency regenerates query latency vs connections
// (Figure 8c).
func BenchmarkFigure8c_QueryLatency(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure8c(benchScale) })
}

// BenchmarkFigure8d_QueryCount regenerates mean request latency vs query
// count (Figure 8d).
func BenchmarkFigure8d_QueryCount(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure8d(benchScale) })
}

// BenchmarkFigure8e_HitRates regenerates client/CDN hit rates vs query
// count (Figure 8e).
func BenchmarkFigure8e_HitRates(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure8e(benchScale) })
}

// BenchmarkFigure8f_Histogram regenerates the query latency histogram
// (Figure 8f).
func BenchmarkFigure8f_Histogram(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure8f(benchScale) })
}

// BenchmarkFigure9_UpdateRates regenerates hit-rate degradation under
// growing update rates per EBF refresh interval (Figure 9).
func BenchmarkFigure9_UpdateRates(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure9(benchScale) })
}

// BenchmarkFigure10_Staleness regenerates stale read/query rates vs EBF
// refresh interval (Figure 10).
func BenchmarkFigure10_Staleness(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure10(benchScale) })
}

// BenchmarkFigure11_TTLCDF regenerates the estimated-vs-true TTL CDF
// comparison (Figure 11).
func BenchmarkFigure11_TTLCDF(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure11(benchScale) })
}

// BenchmarkFigure12_InvaliDB regenerates InvaliDB's throughput scaling
// under latency bounds (Figure 12) on the real pipeline.
func BenchmarkFigure12_InvaliDB(b *testing.B) {
	runExperiment(b, func() string { return experiments.Figure12(benchScale) })
}

// BenchmarkTable1_DocumentCounts regenerates the document-count sweep
// (Table 1).
func BenchmarkTable1_DocumentCounts(b *testing.B) {
	runExperiment(b, func() string { return experiments.Table1(benchScale) })
}

// BenchmarkAblationCoherence compares EBF coherence against static TTLs and
// no client caching.
func BenchmarkAblationCoherence(b *testing.B) {
	runExperiment(b, func() string { return experiments.AblationCoherence(benchScale) })
}

// BenchmarkAblationTTLEstimator sweeps the estimator's quantile and EWMA α.
func BenchmarkAblationTTLEstimator(b *testing.B) {
	runExperiment(b, func() string { return experiments.AblationTTL(benchScale) })
}

// BenchmarkAblationRepresentation compares object-list, id-list and
// cost-based query materializations end to end in the simulator.
func BenchmarkAblationRepresentation(b *testing.B) {
	runExperiment(b, func() string { return experiments.AblationRepresentation(benchScale) })
}

// BenchmarkAblationEstimators compares Quaestor's Poisson/EWMA TTL
// estimation against the Alex protocol and fixed TTLs on synthetic Poisson
// write streams.
func BenchmarkAblationEstimators(b *testing.B) {
	runExperiment(b, func() string { return experiments.AblationEstimators(benchScale) })
}

// BenchmarkRepresentationCostModel measures the decision function itself.
func BenchmarkRepresentationCostModel(b *testing.B) {
	cost := ttl.RepresentationCost{
		ResultSize:     10,
		ChangeRate:     0.5,
		MembershipRate: 0.15,
		RecordHitRate:  0.8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := ttl.ChooseRepresentation(cost); got != ttl.IDList && got != ttl.ObjectList {
			b.Fatal("invalid representation")
		}
	}
}

// ---------------------------------------------------------------------------
// Secondary-index & planner benchmarks: indexed access paths vs the full
// scans every layer paid before the index layer existed. The acceptance
// target is ≥5× at 10k documents (store) and 1k registered queries
// (InvaliDB candidate matching).

const benchDocs = 10000

// newBenchStore builds a 10k-document table; with indexes, the planner
// routes the benchmark queries through probe/range paths.
func newBenchStore(b *testing.B, indexed bool) *store.Store {
	b.Helper()
	s := store.MustOpen(nil)
	b.Cleanup(s.Close)
	if err := s.CreateTable("docs"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchDocs; i++ {
		doc := document.New(fmt.Sprintf("d%05d", i), map[string]any{
			"tag":  fmt.Sprintf("tag%03d", i%1000), // ≈10 docs per tag
			"rank": int64(i),
			"tags": []any{fmt.Sprintf("t%03d", i%500), "all"},
		})
		if err := s.Insert("docs", doc); err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		for _, path := range []string{"tag", "rank", "tags"} {
			if err := s.CreateIndex("docs", path); err != nil {
				b.Fatal(err)
			}
		}
	}
	return s
}

func benchStoreQuery(b *testing.B, indexed bool, q *query.Query) {
	s := newBenchStore(b, indexed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs, err := s.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(docs) == 0 {
			b.Fatal("query matched nothing")
		}
	}
}

// BenchmarkStoreLookupIndexed measures an equality lookup through the
// planner's hash-index probe path.
func BenchmarkStoreLookupIndexed(b *testing.B) {
	benchStoreQuery(b, true, query.New("docs", query.Eq("tag", "tag042")))
}

// BenchmarkStoreLookupScan is the same lookup forced through a full scan
// (no index exists, so the planner falls back).
func BenchmarkStoreLookupScan(b *testing.B) {
	benchStoreQuery(b, false, query.New("docs", query.Eq("tag", "tag042")))
}

// BenchmarkStoreRangeIndexed measures a closed-range query through the
// ordered-index range path (≈1% selectivity).
func BenchmarkStoreRangeIndexed(b *testing.B) {
	benchStoreQuery(b, true, query.New("docs",
		query.AndOf(query.Gte("rank", int64(5000)), query.Lt("rank", int64(5100)))))
}

// BenchmarkStoreRangeScan is the same range query without indexes.
func BenchmarkStoreRangeScan(b *testing.B) {
	benchStoreQuery(b, false, query.New("docs",
		query.AndOf(query.Gte("rank", int64(5000)), query.Lt("rank", int64(5100)))))
}

// BenchmarkStoreContainsIndexed measures a CONTAINS query through the
// multikey element postings.
func BenchmarkStoreContainsIndexed(b *testing.B) {
	benchStoreQuery(b, true, query.New("docs", query.Contains("tags", "t123")))
}

// BenchmarkStoreContainsScan is the same CONTAINS query by full scan.
func BenchmarkStoreContainsScan(b *testing.B) {
	benchStoreQuery(b, false, query.New("docs", query.Contains("tags", "t123")))
}

// ---------------------------------------------------------------------------
// Streaming-executor benchmarks: the iterator-composed execution paths
// (bounded top-K, ordered range emission, NDJSON cursor) against the
// materializing clone-everything-then-Apply baseline. The acceptance
// target for the streaming executor is ≥5× latency and ≥10× allocation
// reduction for ORDER BY + LIMIT 10 over 100k matching documents;
// `go run ./cmd/quaestor-bench -exp querygrid` reproduces the full grid.

const benchStreamDocs = 100_000

var (
	streamStoreOnce sync.Once
	streamStore     *store.Store
)

// newStreamBenchStore builds (once per bench binary) a 100k-document table
// with a rank index: large enough that the full-sort baseline's clone+sort
// cost dominates.
func newStreamBenchStore(b *testing.B) *store.Store {
	b.Helper()
	streamStoreOnce.Do(func() {
		s := store.MustOpen(nil)
		if err := s.CreateTable("docs"); err != nil {
			panic(err)
		}
		for i := 0; i < benchStreamDocs; i++ {
			doc := document.New(fmt.Sprintf("d%06d", i), map[string]any{
				"tag":  fmt.Sprintf("tag%03d", i%1000),
				"rank": int64(i),
			})
			if err := s.Insert("docs", doc); err != nil {
				panic(err)
			}
		}
		if err := s.CreateIndex("docs", "rank"); err != nil {
			panic(err)
		}
		streamStore = s
	})
	return streamStore
}

// BenchmarkQueryTopK pits the bounded-heap strategy (clone 10 survivors)
// against the materializing baseline (clone and sort all 100k matches) on
// ORDER BY rank DESC LIMIT 10 with a match-all predicate.
func BenchmarkQueryTopK(b *testing.B) {
	s := newStreamBenchStore(b)
	q := query.New("docs", nil).Sorted(query.Desc("rank")).Sliced(0, 10)
	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			docs, _, err := s.QueryPlanned(q)
			if err != nil || len(docs) != 10 {
				b.Fatalf("docs=%d err=%v", len(docs), err)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			docs, err := s.ScanQuery(q)
			if err != nil || len(docs) != 10 {
				b.Fatalf("docs=%d err=%v", len(docs), err)
			}
		}
	})
}

// BenchmarkQueryStream measures the cursor path itself: ordered-index
// emission (range plan whose order IS the query order) consumed without
// clones via NextShared, as the NDJSON encoder does.
func BenchmarkQueryStream(b *testing.B) {
	s := newStreamBenchStore(b)
	q := query.New("docs", query.Gte("rank", int64(0))).
		Sorted(query.Asc("rank")).Sliced(0, 100)
	b.Run("cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur, err := s.QueryStream(q)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				if _, ok := cur.NextShared(); !ok {
					break
				}
				n++
			}
			if n != 100 {
				b.Fatalf("streamed %d docs", n)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			docs, err := s.ScanQuery(q)
			if err != nil || len(docs) != 100 {
				b.Fatalf("docs=%d err=%v", len(docs), err)
			}
		}
	})
}

const benchRegisteredQueries = 1000

// benchInvaliDBMatch measures matching-cell fan-out with 1k registered
// queries: each iteration ingests one after-image and the pipeline drains
// before the timer stops. With the inverted query index an event only
// reaches its candidate queries; disabled, every event is tested against
// all 1k.
func benchInvaliDBMatch(b *testing.B, disableIndex bool) {
	cluster := invalidb.NewCluster(&invalidb.Config{
		Buffer:            1 << 14,
		DisableQueryIndex: disableIndex,
	})
	b.Cleanup(cluster.Stop)
	go func() {
		for range cluster.Notifications() {
		}
	}()
	for i := 0; i < benchRegisteredQueries; i++ {
		q := query.New("posts", query.Contains("tags", fmt.Sprintf("tag%04d", i)))
		if err := cluster.Activate(invalidb.Registration{Query: q}); err != nil {
			b.Fatal(err)
		}
	}
	events := make([]store.ChangeEvent, 256)
	for i := range events {
		events[i] = store.ChangeEvent{
			Seq:   uint64(i + 1),
			Table: "posts",
			Op:    store.OpUpdate,
			After: document.New(fmt.Sprintf("p%03d", i), map[string]any{
				"tags": []any{fmt.Sprintf("tag%04d", i%benchRegisteredQueries)},
			}),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		ev.Seq = uint64(i + 1)
		cluster.Ingest(ev)
	}
	if !cluster.Quiesce(time.Minute) {
		b.Fatal("pipeline did not drain")
	}
}

// BenchmarkInvaliDBMatchIndexed measures per-event matching cost with the
// inverted query index pruning candidates.
func BenchmarkInvaliDBMatchIndexed(b *testing.B) {
	benchInvaliDBMatch(b, false)
}

// BenchmarkInvaliDBMatchScan is the O(registered queries) baseline with
// candidate pruning disabled.
func BenchmarkInvaliDBMatchScan(b *testing.B) {
	benchInvaliDBMatch(b, true)
}

// BenchmarkEBFThroughput measures Expiring Bloom Filter operation
// throughput — the paper reports >150K queries or invalidations per second
// per Redis instance for the shared variant; the in-memory variant here is
// the single-server deployment.
func BenchmarkEBFThroughput(b *testing.B) {
	e := ebf.New(nil)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("q:posts/tag%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		e.ReportRead(k, time.Minute)
		e.ReportWrite(k)
	}
}

// BenchmarkEBFSnapshot measures flat-filter snapshot generation, the
// per-connection piggyback cost.
func BenchmarkEBFSnapshot(b *testing.B) {
	e := ebf.New(nil)
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("q:posts/tag%05d", i)
		e.ReportRead(k, time.Hour)
		e.ReportWrite(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := e.Snapshot()
		if snap.Filter == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkSimulatorEventRate measures raw simulator speed (events/s) —
// the Monte Carlo substrate's own performance.
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := sim.Run(&sim.Config{
			Dataset:        &workload.DatasetConfig{Tables: 2, DocsPerTable: 1000, QueriesPerTable: 50},
			Clients:        4,
			ConnsPerClient: 25,
			Duration:       3 * time.Second,
			Mode:           server.ModeFull,
			MaxOps:         100000,
		})
		if m.Ops == 0 {
			b.Fatal("no ops simulated")
		}
	}
}

// ---------------------------------------------------------------------------
// Durability benchmarks: the WAL's group-committed append path, and the
// store's end-to-end write path across fsync policies. The acceptance
// targets are fsyncs-per-write < 1 with 64 concurrent writers under
// fsync=always (group commit batches), and fsync=never staying within 2x
// of the pure in-memory write path.

// benchWALRecord builds a representative put record.
func benchWALRecord(seq uint64, id string) wal.Record {
	return wal.Record{Seq: seq, Kind: wal.KindPut, Table: "docs",
		Doc: document.New(id, map[string]any{"tag": "tag001", "rank": int64(seq), "tags": []any{"t001", "all"}})}
}

// BenchmarkWALAppendSerial measures a lone writer appending under each
// fsync policy — the un-batched worst case for fsync=always.
func BenchmarkWALAppendSerial(b *testing.B) {
	for _, policy := range []wal.FsyncPolicy{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), &wal.Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(benchWALRecord(uint64(i+1), "d00001")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppendConcurrent measures 64 concurrent appenders: group
// commit batches them into far fewer writes+fsyncs than appends.
func BenchmarkWALAppendConcurrent(b *testing.B) {
	for _, policy := range []wal.FsyncPolicy{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), &wal.Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			var seq atomic.Uint64
			b.ReportAllocs()
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.Append(benchWALRecord(seq.Add(1), "d00001")); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := l.Stats()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/op")
				b.ReportMetric(st.MeanBatch, "records/batch")
			}
		})
	}
}

// BenchmarkCommitLogFanout measures the ordered commit pipeline's
// publish path with 1, 8 and 64 blocking subscribers draining
// concurrently: one Sequencer.Publish per iteration, every subscriber
// receiving every event in Seq order. This is the fan-out cost the
// store's write path pays per committed write.
func BenchmarkCommitLogFanout(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs-%d", subs), func(b *testing.B) {
			l := commitlog.NewLog(&commitlog.Options{Ring: 1 << 12})
			q := commitlog.NewSequencer(l, 0)
			var delivered atomic.Uint64
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub := l.SubscribeTail(fmt.Sprintf("s%d", i), commitlog.Block)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for batch := range sub.Events() {
						delivered.Add(uint64(len(batch)))
					}
				}()
			}
			after := document.New("d1", map[string]any{"tag": "t001", "rank": int64(1)})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Publish(commitlog.Event{Seq: uint64(i + 1), Table: "docs", Op: commitlog.OpUpdate, After: after})
			}
			l.Close()
			wg.Wait() // drains the backlog: every subscriber saw every event
			b.StopTimer()
			if got, want := delivered.Load(), uint64(b.N)*uint64(subs); got != want {
				b.Fatalf("delivered %d events, want %d", got, want)
			}
		})
	}
}

// BenchmarkReplicationApply measures the replica-side apply path: one
// applier goroutine installing replicated record batches through the
// idempotent recovery-style path (ns/op is per record, batches of 256 —
// the pipeline's delivery batch size). "memory" isolates the in-memory
// apply; "durable-never" adds the replica's own WAL re-logging.
func BenchmarkReplicationApply(b *testing.B) {
	const batchSize = 256
	for _, mode := range []string{"memory", "durable-never"} {
		b.Run(mode, func(b *testing.B) {
			opts := &store.Options{}
			if mode != "memory" {
				opts.DataDir = b.TempDir()
				opts.Durability = store.Durability{Fsync: wal.FsyncNever}
			}
			s, err := store.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			s.SetReadOnly(true)
			// Prebuilt after-images: the apply path owns the pointers and
			// never mutates them, so reuse across records is safe.
			docs := make([]*document.Document, batchSize)
			for i := range docs {
				docs[i] = document.New(fmt.Sprintf("d%05d", i), map[string]any{"rank": int64(i), "tag": "t001"})
				docs[i].Version = 1
			}
			batch := make([]wal.Record, 0, batchSize)
			b.ReportAllocs()
			b.ResetTimer()
			seq := uint64(0)
			for done := 0; done < b.N; {
				n := batchSize
				if rem := b.N - done; rem < n {
					n = rem
				}
				batch = batch[:0]
				for i := 0; i < n; i++ {
					seq++
					batch = append(batch, wal.Record{Seq: seq, Kind: wal.KindPut, Table: "docs", Doc: docs[i]})
				}
				applied, err := s.ApplyReplicated(batch)
				if err != nil {
					b.Fatal(err)
				}
				if applied != n {
					b.Fatalf("applied %d of %d", applied, n)
				}
				done += n
			}
		})
	}
}

// BenchmarkImportSnapshotSwap measures a replica re-bootstrap end to
// end — shadow table build, secondary-index rebuild, atomic swap, and
// the old-vs-imported diff feeding the synthetic event fan-out — per
// document count. A quarter of the old documents vanish, three quarters
// are re-versioned, and a quarter of the imported set is new, so the
// diff exercises every branch. ns/op is one whole import of the larger
// state.
func BenchmarkImportSnapshotSwap(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			// Source state: d[n/4, n) written twice (re-versioned),
			// d[n, 5n/4) new; d[0, n/4) absent (deleted inside the
			// collapsed range relative to the target below).
			src := store.MustOpen(nil)
			defer src.Close()
			if err := src.CreateTable("docs"); err != nil {
				b.Fatal(err)
			}
			if err := src.CreateIndex("docs", "rank"); err != nil {
				b.Fatal(err)
			}
			putDoc := func(s *store.Store, i int) {
				if err := s.Put("docs", document.New(fmt.Sprintf("d%06d", i), map[string]any{"rank": int64(i)})); err != nil {
					b.Fatal(err)
				}
			}
			for pass := 0; pass < 2; pass++ {
				for i := n / 4; i < n; i++ {
					putDoc(src, i)
				}
			}
			for i := n; i < n+n/4; i++ {
				putDoc(src, i)
			}
			var snapBuf bytes.Buffer
			if _, _, err := src.ExportSnapshot(&snapBuf); err != nil {
				b.Fatal(err)
			}
			snap := snapBuf.Bytes()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tgt := store.MustOpen(nil)
				if err := tgt.CreateTable("docs"); err != nil {
					b.Fatal(err)
				}
				if err := tgt.CreateIndex("docs", "rank"); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					putDoc(tgt, j)
				}
				b.StartTimer()
				info, err := tgt.ImportSnapshot(bytes.NewReader(snap))
				if err != nil {
					b.Fatal(err)
				}
				if info.SyntheticDeletes != n/4 || info.SyntheticPuts != n {
					b.Fatalf("diff = %d deletes + %d puts, want %d + %d",
						info.SyntheticDeletes, info.SyntheticPuts, n/4, n)
				}
				b.StopTimer()
				tgt.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n), "docs/op")
		})
	}
}

// BenchmarkStoreWriteReplicated is the primary-side cost of having one
// attached replica: the fsync=never write path with 64 concurrent
// writers, measured three ways.
//
//   - "baseline": no subscriber (the PR 3 write path).
//   - "fanout-only": a SubscribeFrom consumer drains every batch but does
//     no apply work. This isolates what the write path itself pays for an
//     attached replica — the fan-out append, pump hand-off and Block
//     backpressure — which is the ≤10% budget: on a real deployment the
//     replica's apply CPU lives on another machine.
//   - "replica-attached": the full in-process pump (convert + idempotent
//     apply into a second store). On a multi-core host the pump rides
//     spare cores and tracks fanout-only; on a starved host (1-vCPU CI)
//     it timeshares the writers' core and honestly shows that cost.
//
// The workload bounds the key space so the live heap stays stable — an
// in-process replica doubles the resident data set, and an unbounded
// workload would bill its GC cost to the write path that a real replica
// never pays.
func BenchmarkStoreWriteReplicated(b *testing.B) {
	const keys = 1 << 14
	for _, variant := range []string{"baseline", "fanout-only", "replica-attached"} {
		b.Run(variant, func(b *testing.B) {
			s := benchWriteStore(b, "never")
			var pumpWG sync.WaitGroup
			if variant != "baseline" {
				sub, err := s.SubscribeFrom("replica:bench", 0)
				if err != nil {
					b.Fatal(err)
				}
				var applied atomic.Uint64
				var replica *store.Store
				if variant == "replica-attached" {
					replica = store.MustOpen(nil)
					b.Cleanup(replica.Close)
					replica.SetReadOnly(true)
				}
				pumpWG.Add(1)
				go func() {
					defer pumpWG.Done()
					var recs []wal.Record
					for batch := range sub.Events() {
						if replica == nil {
							applied.Add(uint64(len(batch)))
							continue
						}
						recs = replication.AppendRecords(recs[:0], batch)
						n, err := replica.ApplyReplicated(recs)
						if err != nil {
							return
						}
						applied.Add(uint64(n))
					}
				}()
				b.Cleanup(func() {
					// Drain: every acknowledged write must have reached the
					// consumer before teardown.
					deadline := time.Now().Add(30 * time.Second)
					for applied.Load() < uint64(b.N) {
						if time.Now().After(deadline) {
							b.Fatalf("consumer stalled at %d, want %d", applied.Load(), b.N)
						}
						time.Sleep(time.Millisecond)
					}
					sub.Cancel()
					pumpWG.Wait()
				})
			}
			var n atomic.Uint64
			b.ReportAllocs()
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := n.Add(1)
					if err := s.Put("docs", document.New(fmt.Sprintf("d%07d", i%keys), map[string]any{"rank": int64(i)})); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// benchWriteStore opens a store for the write-path comparison: mode "" is
// in-memory, anything else is a WAL fsync policy.
func benchWriteStore(b *testing.B, mode string) *store.Store {
	b.Helper()
	opts := &store.Options{}
	if mode != "" {
		policy, err := wal.ParseFsyncPolicy(mode)
		if err != nil {
			b.Fatal(err)
		}
		opts.DataDir = b.TempDir()
		opts.Durability = store.Durability{Fsync: policy}
	}
	s, err := store.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	if err := s.CreateTable("docs"); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreWrite compares the store's end-to-end write path:
// in-memory vs the WAL under each fsync policy, serial and with 64
// concurrent writers.
func BenchmarkStoreWrite(b *testing.B) {
	for _, mode := range []string{"memory", "never", "interval", "always"} {
		walMode := mode
		if mode == "memory" {
			walMode = ""
		}
		b.Run(mode+"/serial", func(b *testing.B) {
			s := benchWriteStore(b, walMode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put("docs", document.New(fmt.Sprintf("d%07d", i), map[string]any{"rank": int64(i)})); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(mode+"/writers-64", func(b *testing.B) {
			s := benchWriteStore(b, walMode)
			var n atomic.Uint64
			b.ReportAllocs()
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := n.Add(1)
					if err := s.Put("docs", document.New(fmt.Sprintf("d%07d", i), map[string]any{"rank": int64(i)})); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if st, ok := s.DurabilityStats(); ok && st.WAL.Appends > 0 {
				b.ReportMetric(float64(st.WAL.Fsyncs)/float64(st.WAL.Appends), "fsyncs/op")
				b.ReportMetric(st.WAL.MeanBatch, "records/batch")
			}
		})
	}
}
