// Realtime: query change-stream subscriptions (Section 3.2). Instead of
// polling the EBF, an application can declare its critical data set as
// queries and have Quaestor push every result change — the same InvaliDB
// events that drive cache invalidation, delivered over SSE to browsers or
// directly via the Go API shown here.
//
// The scenario: a live leaderboard ("top 3 players by score") kept in sync
// while scores change, demonstrating add, changeIndex and remove events on
// a sorted, limited query.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/invalidb"
	"quaestor/internal/query"
	"quaestor/internal/server"
	"quaestor/internal/store"
)

func main() {
	db := store.MustOpen(nil)
	defer db.Close()
	srv := server.New(db, nil)
	defer srv.Close()
	must(db.CreateTable("players"))

	players := []struct {
		id    string
		score int
	}{
		{"ada", 120}, {"grace", 95}, {"alan", 80}, {"edsger", 60},
	}
	for _, p := range players {
		must(db.Insert("players", document.New(p.id, map[string]any{"score": p.score})))
	}

	// The critical data set: top 3 by score.
	top3 := query.New("players", query.Gt("score", 0)).
		Sorted(query.Desc("score")).Sliced(0, 3)

	// Local mirror maintained purely from push events.
	var mu sync.Mutex
	board := map[string]int{} // id -> position

	sub, err := srv.Subscribe(top3)
	must(err)
	defer sub.Close()
	go func() {
		for n := range sub.Events() {
			mu.Lock()
			switch n.Type {
			case invalidb.EventAdd, invalidb.EventChangeIndex, invalidb.EventChange:
				board[n.Doc.ID] = n.Index
			case invalidb.EventRemove:
				delete(board, n.Doc.ID)
			}
			mu.Unlock()
			fmt.Printf("  event: %-11s %-7s (position %d)\n", n.Type, n.Doc.ID, n.Index)
		}
	}()

	// Seed the mirror with the initial result (a normal cached query).
	res, err := srv.Query(top3)
	must(err)
	mu.Lock()
	for i, id := range res.IDs {
		board[id] = i
	}
	mu.Unlock()
	printBoard("initial leaderboard", &mu, board)

	fmt.Println("\nedsger scores 130 points...")
	_, err = srv.Update("players", "edsger", store.UpdateSpec{Set: map[string]any{"score": 190}})
	must(err)
	srv.InvaliDB().Quiesce(5 * time.Second)
	time.Sleep(30 * time.Millisecond)
	printBoard("after edsger's surge", &mu, board)

	fmt.Println("\nada retires (score reset to 0)...")
	_, err = srv.Update("players", "ada", store.UpdateSpec{Set: map[string]any{"score": 0}})
	must(err)
	srv.InvaliDB().Quiesce(5 * time.Second)
	time.Sleep(30 * time.Millisecond)
	printBoard("after ada's retirement", &mu, board)
}

func printBoard(label string, mu *sync.Mutex, board map[string]int) {
	mu.Lock()
	defer mu.Unlock()
	type row struct {
		id  string
		pos int
	}
	rows := make([]row, 0, len(board))
	for id, pos := range board {
		rows = append(rows, row{id, pos})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pos < rows[j].pos })
	fmt.Printf("%s:\n", label)
	for _, r := range rows {
		fmt.Printf("  %d. %s\n", r.pos+1, r.id)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
