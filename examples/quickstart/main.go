// Quickstart: bring up a full Quaestor stack in one process — document
// store, DBaaS middleware, a CDN tier and a browser client — and watch
// query results being served from web caches with bounded staleness.
package main

import (
	"fmt"
	"log"
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/client"
	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/server"
	"quaestor/internal/store"
)

func main() {
	// 1. The database and the Quaestor middleware on top of it.
	db := store.MustOpen(nil)
	defer db.Close()
	srv := server.New(db, &server.Options{Mode: server.ModeFull})
	defer srv.Close()
	if err := db.CreateTable("posts"); err != nil {
		log.Fatal(err)
	}
	// A secondary index on the queried field routes origin reads through
	// an index probe instead of a table scan.
	if err := db.CreateIndex("posts", "tags"); err != nil {
		log.Fatal(err)
	}

	// 2. A CDN edge in front of the origin: an invalidation-based HTTP
	// cache that honours s-maxage and supports purging.
	cdn := cache.NewHTTPTier("cdn", cache.InvalidationBased, srv.Handler(), 2*time.Millisecond)
	srv.AddPurger(server.PurgerFunc(func(path string) { cdn.Cache.Purge(path) }))

	// 3. A browser client connected through the CDN. Dial fetches the
	// initial Expiring Bloom Filter.
	c, err := client.Dial(&client.Options{
		Transport:       client.NewHandlerTransport(cdn),
		RefreshInterval: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Write some data through the client.
	for i := 0; i < 5; i++ {
		post := document.New(fmt.Sprintf("post%d", i), map[string]any{
			"title": fmt.Sprintf("Post number %d", i),
			"tags":  []any{"example", "demo"},
		})
		if err := c.Insert("posts", post); err != nil {
			log.Fatal(err)
		}
	}

	// 5. Query it twice: the first run misses every cache, the second is
	// answered without touching the origin.
	q := query.New("posts", query.Contains("tags", "example"))
	for run := 1; run <= 2; run++ {
		start := time.Now()
		res, err := c.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %d posts (%s, %d round-trips) in %v\n",
			run, len(res.Docs), res.Representation, res.RoundTrips, time.Since(start).Round(time.Microsecond))
	}

	// 6. Change a post so it leaves the result set; InvaliDB detects the
	// change, the EBF flags the query and the CDN copy is purged. After the
	// client's next EBF refresh the stale result is revalidated.
	if _, err := c.Update("posts", "post0", store.UpdateSpec{
		Set: map[string]any{"tags": []any{"unrelated"}},
	}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let the invalidation pipeline run

	res, err := c.QueryWith(q, client.ReadOptions{Consistency: client.Strong})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update: %d posts (strong read)\n", len(res.Docs))

	st := c.Stats()
	cs := cdn.Cache.Stats()
	fmt.Printf("client: %d requests, %d local hits, %d revalidations\n",
		st.NetworkRequests, st.CacheHits, st.Revalidations)
	fmt.Printf("cdn:    %d hits, %d misses, %d purges (hit rate %.0f%%)\n",
		cs.Hits, cs.Misses, cs.Purges, 100*cs.HitRate())
	fmt.Printf("server: %+v\n", srv.Stats())
}
