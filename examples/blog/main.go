// Blog: the paper's running example (Figures 2 and 5). A social blogging
// application queries posts by tag —
//
//	SELECT * FROM posts WHERE tags CONTAINS 'example'
//
// — and this program walks a post through the exact lifecycle of Figure 5:
// created untagged (no event), tagged 'example' (add), tagged 'music'
// (change), untagged 'example' (remove), while a sorted top-3 query
// demonstrates changeIndex events from the order-maintenance layer.
package main

import (
	"fmt"
	"log"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/invalidb"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

func main() {
	db := store.MustOpen(nil)
	defer db.Close()
	if err := db.CreateTable("posts"); err != nil {
		log.Fatal(err)
	}

	cluster := invalidb.NewCluster(&invalidb.Config{
		QueryPartitions:  2,
		ObjectPartitions: 2,
	})
	defer cluster.Stop()
	detach := cluster.AttachStore(db)
	defer detach()

	events := make(chan string, 64)
	go func() {
		for n := range cluster.Notifications() {
			if n.Index >= 0 {
				events <- fmt.Sprintf("%-11s %s (position %d)", n.Type, n.Doc.ID, n.Index)
			} else {
				events <- fmt.Sprintf("%-11s %s", n.Type, n.Doc.ID)
			}
		}
	}()

	// The paper's query, cached as an object-list (add/remove/change all
	// invalidate).
	tagQuery := query.New("posts", query.Contains("tags", "example"))
	if err := cluster.Activate(invalidb.Registration{
		Query: tagQuery,
		Mask:  invalidb.MaskObjectList,
	}); err != nil {
		log.Fatal(err)
	}

	// A stateful top-3 by rating: order-related state lives in the separate
	// processing layer and emits changeIndex on repositioning.
	topQuery := query.New("posts", query.Contains("tags", "example")).
		Sorted(query.Desc("rating")).Sliced(0, 3)
	if err := cluster.Activate(invalidb.Registration{
		Query: topQuery,
		Mask:  invalidb.MaskIDList,
	}); err != nil {
		log.Fatal(err)
	}

	step := func(label string, fn func() error) {
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		cluster.Quiesce(5 * time.Second)
		time.Sleep(20 * time.Millisecond) // let the printer goroutine drain
		fmt.Printf("\n%s\n", label)
		for {
			select {
			case e := <-events:
				fmt.Printf("  notification: %s\n", e)
			default:
				return
			}
		}
	}

	step("1. create 'first-post' (untagged -> not in result, no event)", func() error {
		return db.Insert("posts", document.New("first-post", map[string]any{
			"title": "First Post", "tags": []any{}, "rating": 10,
		}))
	})
	step("2. +'example' tag (enters result -> add)", func() error {
		_, err := db.Update("posts", "first-post", store.UpdateSpec{Push: map[string]any{"tags": "example"}})
		return err
	})
	step("3. +'music' tag (state change, still matching -> change)", func() error {
		_, err := db.Update("posts", "first-post", store.UpdateSpec{Push: map[string]any{"tags": "music"}})
		return err
	})
	step("4. second tagged post with higher rating (add; top-3 repositions)", func() error {
		return db.Insert("posts", document.New("second-post", map[string]any{
			"title": "Second Post", "tags": []any{"example"}, "rating": 50,
		}))
	})
	step("5. -'example' on first-post (leaves result -> remove)", func() error {
		_, err := db.Update("posts", "first-post", store.UpdateSpec{Pull: map[string]any{"tags": "example"}})
		return err
	})

	ingested, notified := cluster.Stats()
	fmt.Printf("\npipeline: %d change events ingested, %d notifications emitted\n", ingested, notified)
}
