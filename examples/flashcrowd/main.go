// Flashcrowd: the paper's production anecdote (Section 6.2). The
// e-commerce shop "Thinks" was featured on TV in front of 3.5M viewers and
// had to serve 50,000 concurrent users (>20,000 HTTP requests/s) with
// sub-second loads — and because the CDN cache hit rate was 98%, two DBaaS
// servers and two MongoDB shards carried the entire event.
//
// This example replays the scenario in the Monte Carlo simulator: a small
// product catalog (articles with live stock counters), an extremely
// read-heavy flash-crowd access pattern, and a deliberately small origin.
//
// It then stands up the same shape as a real in-process topology — one
// primary plus two log-shipping replicas — and drives the multi-endpoint
// SDK client against it with staleness-bounded reads, printing which
// cache tier (client cache, replica, primary) absorbed each read.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"quaestor/internal/client"
	"quaestor/internal/document"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/sim"
	"quaestor/internal/store"
	"quaestor/internal/workload"
)

func main() {
	cfg := &sim.Config{
		// A shop catalog: one "table" of 2,000 articles, 200 category
		// queries (articles by tag), results of ~10 articles.
		Dataset: &workload.DatasetConfig{
			Tables:          1,
			DocsPerTable:    2000,
			QueriesPerTable: 200,
			MeanResultSize:  10,
			Seed:            3,
		},
		// Flash-crowd traffic: overwhelmingly reads and category queries,
		// a trickle of stock-counter updates.
		Mix:   workload.Mix{Read: 0.60, Query: 0.395, Update: 0.005},
		ZipfS: 0.9, // everyone looks at the featured articles

		// 50,000 concurrent users ≈ 500 simulated client instances with
		// 6 browser connections each (scaled 1:16 in instance count, the
		// connection math is what matters for the caches).
		Clients:        500,
		ConnsPerClient: 6,
		Duration:       30 * time.Second,
		EBFRefresh:     2 * time.Second,
		Mode:           server.ModeFull,
		// Real users pause between page interactions; 120 ms mean think
		// time per connection yields the paper's >20k req/s aggregate.
		ThinkTime: 120 * time.Millisecond,

		// "the load could be handled by 2 DBaaS servers and 2 MongoDB
		// shards": a deliberately small origin.
		ServerRate: 8000,
		CDNRate:    500000,
		MaxOps:     1500000,
		Seed:       99,
	}

	fmt.Println("simulating the flash crowd (30s of virtual time)...")
	start := time.Now()
	m := sim.Run(cfg)
	fmt.Printf("done in %v wall time\n\n", time.Since(start).Round(time.Millisecond))

	served := m.ClientHitsReads + m.ClientHitsQueries + m.CDNHitsReads + m.CDNHitsQueries
	total := m.Reads + m.Queries
	cdnRequests := m.CDNHitsReads + m.CDNHitsQueries + m.MissReads + m.MissQueries
	cdnHits := m.CDNHitsReads + m.CDNHitsQueries

	fmt.Printf("throughput:        %.0f requests/s (paper: >20,000 req/s)\n", m.Throughput)
	fmt.Printf("cache offload:     %.1f%% of data requests never reached the origin\n",
		100*float64(served)/float64(total))
	fmt.Printf("CDN hit rate:      %.1f%% (paper: 98%%)\n", 100*float64(cdnHits)/float64(cdnRequests))
	fmt.Printf("origin load:       %.0f requests/s against capacity %d/s\n",
		float64(m.MissReads+m.MissQueries)/m.SimulatedDuration.Seconds(), int(cfg.ServerRate))
	fmt.Printf("query latency:     mean %.1f ms, p99 %.1f ms (sub-second loads)\n",
		m.QueryLatency.Mean(), m.QueryLatency.Percentile(0.99))
	fmt.Printf("read latency:      mean %.1f ms, p99 %.1f ms\n",
		m.ReadLatency.Mean(), m.ReadLatency.Percentile(0.99))
	fmt.Printf("stale responses:   %.1f%% saw a stock counter behind the newest update,\n", 100*(m.StaleRate(true)+m.StaleRate(false))/2)
	fmt.Printf("                   but never by more than Δ: max staleness %v (bound %s + TTL slack)\n",
		m.MaxStaleness.Round(time.Millisecond), cfg.EBFRefresh)

	replicaTier()
}

// replicaTier replays the read side against a real topology: one primary
// and two replicas, the client discovering the replica set from the
// primary's advertisement and spreading bounded reads across it.
func replicaTier() {
	fmt.Println("\nread routing across a 2-replica chain (real topology, in-process):")

	const articles = 200
	primary := store.MustOpen(nil)
	defer primary.Close()
	srv := server.New(primary, nil)
	defer srv.Close()
	if err := primary.CreateTable("articles"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < articles; i++ {
		doc := document.New(fmt.Sprintf("a%03d", i), map[string]any{"stock": int64(100)})
		if err := primary.Insert("articles", doc); err != nil {
			log.Fatal(err)
		}
	}

	// Client traffic runs in-process; the replication stream is long-lived
	// and needs a flushing ResponseWriter, so the feed gets a real socket.
	handlers := map[string]http.Handler{"http://primary": srv.Handler()}
	feed := httptest.NewServer(srv.Handler())
	defer feed.Close()

	var urls []string
	for i := 0; i < 2; i++ {
		rdb := store.MustOpen(nil)
		defer rdb.Close()
		repl := replication.New(replication.Options{
			Store:      rdb,
			Primary:    feed.URL,
			Name:       fmt.Sprintf("replica-%d", i),
			MinBackoff: 5 * time.Millisecond,
			MaxBackoff: 100 * time.Millisecond,
		})
		repl.Run()
		defer repl.Stop()
		rsrv := server.New(rdb, nil)
		defer rsrv.Close()
		rsrv.AttachReplica(repl)
		url := fmt.Sprintf("http://replica-%d", i)
		handlers[url] = rsrv.Handler()
		urls = append(urls, url)

		deadline := time.Now().Add(15 * time.Second)
		for {
			st := repl.Status()
			if st.State == replication.StateStreaming && st.StalenessMs >= 0 && st.LastSeq >= primary.LastSeq() {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("replica %d never caught up: %+v", i, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	srv.SetReplicaEndpoints("http://primary", urls)

	c, err := client.Dial(&client.Options{
		Transport:        client.NewHostMapTransport(handlers),
		BaseURL:          "http://primary",
		DiscoverReplicas: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered replica endpoints: %v\n", c.ReplicaEndpoints())

	// The flash-crowd read side in miniature: every article read twice
	// under a relaxed bound (second hit lands in the client cache), the
	// featured articles re-checked at bound 0 (stock counters must be
	// primary-fresh at checkout).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < articles; i++ {
			if _, err := c.ReadWith("articles", fmt.Sprintf("a%03d", i), client.WithMaxStaleness(5*time.Second)); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := c.ReadWith("articles", fmt.Sprintf("a%03d", i), client.WithMaxStaleness(0)); err != nil {
			log.Fatal(err)
		}
	}

	st := c.Stats()
	tiers := st.ReadsByTier
	total := tiers.Primary + tiers.Replica + tiers.ClientCache
	fmt.Printf("reads by tier:     client cache %d (%.0f%%), replicas %d (%.0f%%), primary %d (%.0f%%)\n",
		tiers.ClientCache, 100*float64(tiers.ClientCache)/float64(total),
		tiers.Replica, 100*float64(tiers.Replica)/float64(total),
		tiers.Primary, 100*float64(tiers.Primary)/float64(total))
	fmt.Printf("staleness retries: %d (412-rejected or over-bound replica answers, re-routed)\n", st.StalenessRetries)
	fmt.Println("bound-0 reads bypassed every cache tier — the primary answered all 10.")
}
