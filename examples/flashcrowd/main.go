// Flashcrowd: the paper's production anecdote (Section 6.2). The
// e-commerce shop "Thinks" was featured on TV in front of 3.5M viewers and
// had to serve 50,000 concurrent users (>20,000 HTTP requests/s) with
// sub-second loads — and because the CDN cache hit rate was 98%, two DBaaS
// servers and two MongoDB shards carried the entire event.
//
// This example replays the scenario in the Monte Carlo simulator: a small
// product catalog (articles with live stock counters), an extremely
// read-heavy flash-crowd access pattern, and a deliberately small origin.
package main

import (
	"fmt"
	"time"

	"quaestor/internal/server"
	"quaestor/internal/sim"
	"quaestor/internal/workload"
)

func main() {
	cfg := &sim.Config{
		// A shop catalog: one "table" of 2,000 articles, 200 category
		// queries (articles by tag), results of ~10 articles.
		Dataset: &workload.DatasetConfig{
			Tables:          1,
			DocsPerTable:    2000,
			QueriesPerTable: 200,
			MeanResultSize:  10,
			Seed:            3,
		},
		// Flash-crowd traffic: overwhelmingly reads and category queries,
		// a trickle of stock-counter updates.
		Mix:   workload.Mix{Read: 0.60, Query: 0.395, Update: 0.005},
		ZipfS: 0.9, // everyone looks at the featured articles

		// 50,000 concurrent users ≈ 500 simulated client instances with
		// 6 browser connections each (scaled 1:16 in instance count, the
		// connection math is what matters for the caches).
		Clients:        500,
		ConnsPerClient: 6,
		Duration:       30 * time.Second,
		EBFRefresh:     2 * time.Second,
		Mode:           server.ModeFull,
		// Real users pause between page interactions; 120 ms mean think
		// time per connection yields the paper's >20k req/s aggregate.
		ThinkTime: 120 * time.Millisecond,

		// "the load could be handled by 2 DBaaS servers and 2 MongoDB
		// shards": a deliberately small origin.
		ServerRate: 8000,
		CDNRate:    500000,
		MaxOps:     1500000,
		Seed:       99,
	}

	fmt.Println("simulating the flash crowd (30s of virtual time)...")
	start := time.Now()
	m := sim.Run(cfg)
	fmt.Printf("done in %v wall time\n\n", time.Since(start).Round(time.Millisecond))

	served := m.ClientHitsReads + m.ClientHitsQueries + m.CDNHitsReads + m.CDNHitsQueries
	total := m.Reads + m.Queries
	cdnRequests := m.CDNHitsReads + m.CDNHitsQueries + m.MissReads + m.MissQueries
	cdnHits := m.CDNHitsReads + m.CDNHitsQueries

	fmt.Printf("throughput:        %.0f requests/s (paper: >20,000 req/s)\n", m.Throughput)
	fmt.Printf("cache offload:     %.1f%% of data requests never reached the origin\n",
		100*float64(served)/float64(total))
	fmt.Printf("CDN hit rate:      %.1f%% (paper: 98%%)\n", 100*float64(cdnHits)/float64(cdnRequests))
	fmt.Printf("origin load:       %.0f requests/s against capacity %d/s\n",
		float64(m.MissReads+m.MissQueries)/m.SimulatedDuration.Seconds(), int(cfg.ServerRate))
	fmt.Printf("query latency:     mean %.1f ms, p99 %.1f ms (sub-second loads)\n",
		m.QueryLatency.Mean(), m.QueryLatency.Percentile(0.99))
	fmt.Printf("read latency:      mean %.1f ms, p99 %.1f ms\n",
		m.ReadLatency.Mean(), m.ReadLatency.Percentile(0.99))
	fmt.Printf("stale responses:   %.1f%% saw a stock counter behind the newest update,\n", 100*(m.StaleRate(true)+m.StaleRate(false))/2)
	fmt.Printf("                   but never by more than Δ: max staleness %v (bound %s + TTL slack)\n",
		m.MaxStaleness.Round(time.Millisecond), cfg.EBFRefresh)
}
