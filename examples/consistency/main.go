// Consistency: demonstrates the guarantee ladder of Figure 4 on a live
// stack — Δ-atomicity with a client-chosen bound, read-your-writes,
// monotonic reads, and opt-in strong consistency, all while results are
// served from ordinary web caches.
package main

import (
	"fmt"
	"log"
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/client"
	"quaestor/internal/document"
	"quaestor/internal/server"
	"quaestor/internal/store"
)

func main() {
	db := store.MustOpen(nil)
	defer db.Close()
	srv := server.New(db, &server.Options{Mode: server.ModeFull})
	defer srv.Close()
	must(db.CreateTable("profiles"))

	cdn := cache.NewHTTPTier("cdn", cache.InvalidationBased, srv.Handler(), time.Millisecond)
	srv.AddPurger(server.PurgerFunc(func(path string) { cdn.Cache.Purge(path) }))

	dial := func(delta time.Duration) *client.Client {
		c, err := client.Dial(&client.Options{
			Transport:       client.NewHandlerTransport(cdn),
			RefreshInterval: delta,
		})
		must(err)
		return c
	}

	// Two independent browser sessions with different staleness bounds.
	alice := dial(500 * time.Millisecond) // tight Δ
	bob := dial(10 * time.Second)         // relaxed Δ

	must(alice.Insert("profiles", document.New("alice", map[string]any{
		"name": "Alice", "status": "hello world",
	})))

	// --- Read-your-writes -------------------------------------------------
	doc, err := alice.Read("profiles", "alice")
	must(err)
	status, _ := doc.Get("status")
	fmt.Printf("read-your-writes: alice sees her own write immediately: %q\n", status)

	// --- Warm bob's cache, then change the data ---------------------------
	_, err = bob.Read("profiles", "alice")
	must(err)
	_, err = alice.Update("profiles", "alice", store.UpdateSpec{
		Set: map[string]any{"status": "updated!"},
	})
	must(err)
	time.Sleep(100 * time.Millisecond) // invalidation pipeline + purge

	// --- Δ-atomicity -------------------------------------------------------
	// Bob's cached copy may be served stale — but never older than his Δ.
	doc, err = bob.Read("profiles", "alice")
	must(err)
	status, _ = doc.Get("status")
	fmt.Printf("Δ-atomicity:      bob (Δ=10s, cached) reads %q; filter age %v\n",
		status, bob.EBFAge().Round(time.Millisecond))

	// Alice's tight Δ forces a fresh filter; the EBF flags the record and
	// her read turns into a revalidation.
	time.Sleep(500 * time.Millisecond)
	doc, err = alice.Read("profiles", "alice")
	must(err)
	status, _ = doc.Get("status")
	fmt.Printf("Δ-atomicity:      alice (Δ=0.5s) reads %q after EBF refresh\n", status)

	// --- Strong consistency (opt-in) ---------------------------------------
	doc, err = bob.ReadWith("profiles", "alice", client.ReadOptions{Consistency: client.Strong})
	must(err)
	status, _ = doc.Get("status")
	fmt.Printf("strong (opt-in):  bob's explicit revalidation reads %q\n", status)

	// --- Monotonic reads ----------------------------------------------------
	// Having seen version N, bob will never observe an older version even
	// if a cache still holds one.
	doc, err = bob.Read("profiles", "alice")
	must(err)
	fmt.Printf("monotonic reads:  bob's next read is version %d (never regresses)\n", doc.Version)

	a, b := alice.Stats(), bob.Stats()
	fmt.Printf("\nalice: %d requests, %d revalidations, %d EBF refreshes\n",
		a.NetworkRequests, a.Revalidations, a.EBFRefreshes)
	fmt.Printf("bob:   %d requests, %d revalidations, %d EBF refreshes, %d local hits\n",
		b.NetworkRequests, b.Revalidations, b.EBFRefreshes, b.CacheHits)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
