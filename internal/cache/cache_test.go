package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestPutGetExpiry(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("k", "v", `"e1"`, 10*time.Second)
	e, ok := c.Get("k")
	if !ok || e.Value != "v" || e.ETag != `"e1"` {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	clk.Advance(11 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Error("expired entry served")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Expired != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("k", "v", "", time.Minute)
	e, _ := c.Get("k")
	e.Value = "mutated"
	e2, _ := c.Get("k")
	if e2.Value != "v" {
		t.Error("Get leaked a mutable entry")
	}
}

func TestNonPositiveTTLRemoves(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("k", "v", "", time.Minute)
	c.Put("k", "v2", "", 0) // uncacheable: drop
	if _, ok := c.Get("k"); ok {
		t.Error("zero TTL should remove the entry")
	}
}

func TestGetStaleAndExtend(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("k", "v", `"e"`, time.Second)
	clk.Advance(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry should be expired")
	}
	// Re-put since Get evicted it; test stale retrieval before expiry sweep.
	c.Put("k", "v", `"e"`, time.Second)
	clk.Advance(2 * time.Second)
	stale, ok := c.GetStale("k")
	if !ok || stale.Fresh(clk.Now()) {
		t.Fatal("GetStale should return the expired entry")
	}
	// A 304 revalidation extends the entry in place.
	if !c.Extend("k", time.Minute) {
		t.Fatal("Extend failed")
	}
	if _, ok := c.Get("k"); !ok {
		t.Error("extended entry should be fresh again")
	}
	if c.Extend("missing", time.Minute) {
		t.Error("Extend on missing key should fail")
	}
}

func TestPurgeOnlyInvalidationBased(t *testing.T) {
	clk := newFakeClock()
	exp := New(ExpirationBased, 0, clk.Now)
	inv := New(InvalidationBased, 0, clk.Now)
	exp.Put("k", "v", "", time.Minute)
	inv.Put("k", "v", "", time.Minute)
	if exp.Purge("k") {
		t.Error("expiration-based caches are unreachable for purges")
	}
	if _, ok := exp.Get("k"); !ok {
		t.Error("failed purge must not remove the entry")
	}
	if !inv.Purge("k") {
		t.Error("invalidation-based cache must honour purges")
	}
	if _, ok := inv.Get("k"); ok {
		t.Error("purged entry still served")
	}
	if inv.Purge("missing") {
		t.Error("purging a missing key should report false")
	}
	if inv.Stats().Purges != 1 {
		t.Errorf("purge count = %d", inv.Stats().Purges)
	}
}

func TestInvalidateWorksOnAnyKind(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("k", "v", "", time.Minute)
	if !c.Invalidate("k") {
		t.Error("client-side invalidate should work on own cache")
	}
	if c.Invalidate("k") {
		t.Error("double invalidate should report false")
	}
}

func TestLRUEviction(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 3, clk.Now)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, "", time.Minute)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", 3, "", time.Minute)
	if _, ok := c.Get("k1"); ok {
		t.Error("LRU victim k1 survived")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted wrongly", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestReplaceCountsRevalidation(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("k", "v1", "", time.Minute)
	c.Put("k", "v2", "", time.Minute)
	if c.Stats().Revalidations != 1 {
		t.Errorf("revalidations = %d", c.Stats().Revalidations)
	}
	e, _ := c.Get("k")
	if e.Value != "v2" {
		t.Error("replacement lost")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestKeysAndClear(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("a", 1, "", time.Minute)
	c.Put("b", 2, "", time.Minute)
	if got := len(c.Keys()); got != 2 {
		t.Errorf("Keys = %d", got)
	}
	c.Clear()
	if c.Len() != 0 || len(c.Keys()) != 0 {
		t.Error("Clear incomplete")
	}
}

func TestHitRateAndReset(t *testing.T) {
	clk := newFakeClock()
	c := New(ExpirationBased, 0, clk.Now)
	c.Put("k", 1, "", time.Minute)
	c.Get("k")
	c.Get("missing")
	if got := c.Stats().HitRate(); got != 0.5 {
		t.Errorf("hit rate = %f", got)
	}
	c.ResetStats()
	if c.Stats().Hits != 0 {
		t.Error("ResetStats incomplete")
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
}

func TestKindString(t *testing.T) {
	if ExpirationBased.String() != "expiration-based" || InvalidationBased.String() != "invalidation-based" {
		t.Error("Kind.String broken")
	}
}

func TestCacheConcurrency(t *testing.T) {
	c := New(InvalidationBased, 128, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (id*31+i)%200)
				c.Put(k, i, "", time.Minute)
				c.Get(k)
				if i%10 == 0 {
					c.Purge(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Errorf("capacity violated: %d", c.Len())
	}
}
