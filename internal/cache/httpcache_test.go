package cache

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// countingOrigin serves a versioned resource with configurable headers.
type countingOrigin struct {
	hits    atomic.Int64
	cc      string
	etag    string
	payload string
}

func (o *countingOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.hits.Add(1)
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == o.etag {
		w.Header().Set("ETag", o.etag)
		w.Header().Set("Cache-Control", o.cc)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Cache-Control", o.cc)
	if o.etag != "" {
		w.Header().Set("ETag", o.etag)
	}
	fmt.Fprint(w, o.payload)
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestTierCachesAndServesHits(t *testing.T) {
	origin := &countingOrigin{cc: "public, max-age=60", payload: "hello"}
	tier := NewHTTPTier("edge", InvalidationBased, origin, 0)

	r1 := get(t, tier, "/res", nil)
	if r1.Body.String() != "hello" || !strings.Contains(r1.Header().Get("X-Cache"), "MISS") {
		t.Fatalf("first fetch: %q %q", r1.Body.String(), r1.Header().Get("X-Cache"))
	}
	r2 := get(t, tier, "/res", nil)
	if !strings.Contains(r2.Header().Get("X-Cache"), "HIT") {
		t.Errorf("second fetch should hit: %q", r2.Header().Get("X-Cache"))
	}
	if r2.Body.String() != "hello" {
		t.Errorf("cached body = %q", r2.Body.String())
	}
	if o := origin.hits.Load(); o != 1 {
		t.Errorf("origin hits = %d, want 1", o)
	}
	if age := r2.Header().Get("Age"); age == "" {
		t.Error("hit missing Age header")
	}
}

func TestNoStoreNotCached(t *testing.T) {
	origin := &countingOrigin{cc: "no-store", payload: "x"}
	tier := NewHTTPTier("edge", InvalidationBased, origin, 0)
	get(t, tier, "/res", nil)
	get(t, tier, "/res", nil)
	if o := origin.hits.Load(); o != 2 {
		t.Errorf("no-store resource was cached (origin hits = %d)", o)
	}
}

func TestSharedCacheUsesSMaxAgeAndIgnoresPrivate(t *testing.T) {
	// s-maxage=0 means uncacheable for the shared tier even with max-age.
	origin := &countingOrigin{cc: "public, max-age=60, s-maxage=0", payload: "x"}
	cdn := NewHTTPTier("cdn", InvalidationBased, origin, 0)
	get(t, cdn, "/r", nil)
	get(t, cdn, "/r", nil)
	if origin.hits.Load() != 2 {
		t.Error("shared cache must prefer s-maxage")
	}
	// A private response must not land in a shared cache...
	origin2 := &countingOrigin{cc: "private, max-age=60", payload: "x"}
	cdn2 := NewHTTPTier("cdn", InvalidationBased, origin2, 0)
	get(t, cdn2, "/r", nil)
	get(t, cdn2, "/r", nil)
	if origin2.hits.Load() != 2 {
		t.Error("private response cached in shared tier")
	}
	// ...but may land in a browser cache.
	origin3 := &countingOrigin{cc: "private, max-age=60", payload: "x"}
	browser := NewHTTPTier("browser", ExpirationBased, origin3, 0)
	get(t, browser, "/r", nil)
	get(t, browser, "/r", nil)
	if origin3.hits.Load() != 1 {
		t.Error("private response should cache in the browser tier")
	}
}

func TestRevalidationWith304RefreshesEntry(t *testing.T) {
	origin := &countingOrigin{cc: "public, max-age=60", etag: `"v1"`, payload: "body1"}
	tier := NewHTTPTier("edge", InvalidationBased, origin, 0)
	get(t, tier, "/r", nil) // fill

	// A no-cache request bypasses the fresh copy; the origin answers 304
	// and the tier serves its stored body.
	r := get(t, tier, "/r", map[string]string{"Cache-Control": "no-cache"})
	if r.Code != http.StatusOK || r.Body.String() != "body1" {
		t.Fatalf("revalidated response = %d %q", r.Code, r.Body.String())
	}
	if !strings.Contains(r.Header().Get("X-Cache"), "REVALIDATED") {
		t.Errorf("X-Cache = %q", r.Header().Get("X-Cache"))
	}
	if origin.hits.Load() != 2 {
		t.Errorf("origin hits = %d", origin.hits.Load())
	}
}

func TestClientConditionalRequestGets304(t *testing.T) {
	origin := &countingOrigin{cc: "public, max-age=60", etag: `"v1"`, payload: "body1"}
	tier := NewHTTPTier("edge", InvalidationBased, origin, 0)
	get(t, tier, "/r", nil) // fill
	r := get(t, tier, "/r", map[string]string{
		"Cache-Control": "no-cache",
		"If-None-Match": `"v1"`,
	})
	if r.Code != http.StatusNotModified {
		t.Errorf("client with matching ETag should get 304, got %d", r.Code)
	}
}

func TestPurgeMethod(t *testing.T) {
	origin := &countingOrigin{cc: "public, max-age=60", payload: "x"}
	cdn := NewHTTPTier("cdn", InvalidationBased, origin, 0)
	get(t, cdn, "/r", nil)

	req := httptest.NewRequest("PURGE", "/r", nil)
	rec := httptest.NewRecorder()
	cdn.ServeHTTP(rec, req)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("PURGE = %d", rec.Code)
	}
	get(t, cdn, "/r", nil)
	if origin.hits.Load() != 3 { // miss, PURGE passthrough, miss again
		t.Errorf("origin hits = %d", origin.hits.Load())
	}

	browser := NewHTTPTier("browser", ExpirationBased, origin, 0)
	rec2 := httptest.NewRecorder()
	browser.ServeHTTP(rec2, httptest.NewRequest("PURGE", "/r", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("expiration-based tier PURGE = %d, want 405", rec2.Code)
	}
}

func TestWritesPassThroughUncached(t *testing.T) {
	var sawPost atomic.Int64
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			sawPost.Add(1)
		}
		w.WriteHeader(http.StatusCreated)
	})
	tier := NewHTTPTier("edge", InvalidationBased, origin, 0)
	req := httptest.NewRequest(http.MethodPost, "/r", strings.NewReader("{}"))
	rec := httptest.NewRecorder()
	tier.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated || sawPost.Load() != 1 {
		t.Errorf("POST passthrough broken: %d %d", rec.Code, sawPost.Load())
	}
}

func TestQueryStringIsPartOfKey(t *testing.T) {
	origin := &countingOrigin{cc: "public, max-age=60", payload: "x"}
	tier := NewHTTPTier("edge", InvalidationBased, origin, 0)
	get(t, tier, "/r?q=1", nil)
	get(t, tier, "/r?q=2", nil)
	if origin.hits.Load() != 2 {
		t.Error("different query strings must cache separately")
	}
	get(t, tier, "/r?q=1", nil)
	if origin.hits.Load() != 2 {
		t.Error("same query string should hit")
	}
}

func TestUpstreamLatencySimulated(t *testing.T) {
	origin := &countingOrigin{cc: "public, max-age=60", payload: "x"}
	var slept time.Duration
	tier := NewHTTPTier("edge", InvalidationBased, origin, 25*time.Millisecond)
	tier.Sleep = func(d time.Duration) { slept += d }
	get(t, tier, "/r", nil) // miss: sleeps
	get(t, tier, "/r", nil) // hit: no sleep
	if slept != 25*time.Millisecond {
		t.Errorf("slept %v, want exactly one upstream round-trip", slept)
	}
}

func TestTierChainBrowserOverCDN(t *testing.T) {
	origin := &countingOrigin{cc: "public, max-age=60, s-maxage=60", payload: "x"}
	cdn := NewHTTPTier("cdn", InvalidationBased, origin, 0)
	browser := NewHTTPTier("browser", ExpirationBased, cdn, 0)

	get(t, browser, "/r", nil) // miss at both, fills both
	if origin.hits.Load() != 1 {
		t.Fatalf("origin hits = %d", origin.hits.Load())
	}
	get(t, browser, "/r", nil) // browser hit
	if got := cdn.Cache.Stats().Hits; got != 0 {
		t.Errorf("browser hit should not reach the CDN (cdn hits = %d)", got)
	}
	browser.Cache.Clear()
	get(t, browser, "/r", nil) // browser miss -> CDN hit
	if origin.hits.Load() != 1 {
		t.Error("CDN should have absorbed the browser miss")
	}
}

func TestFreshnessLifetimeParsing(t *testing.T) {
	mk := func(cc string) http.Header {
		h := http.Header{}
		h.Set("Cache-Control", cc)
		return h
	}
	cases := []struct {
		cc   string
		kind Kind
		want time.Duration
	}{
		{"max-age=30", ExpirationBased, 30 * time.Second},
		{"max-age=30, s-maxage=90", InvalidationBased, 90 * time.Second},
		{"max-age=30, s-maxage=90", ExpirationBased, 30 * time.Second},
		{"no-store, max-age=30", InvalidationBased, 0},
		{"", ExpirationBased, 0},
		{"public", ExpirationBased, 0},
		{"max-age=oops", ExpirationBased, 0},
	}
	for _, tc := range cases {
		if got := freshnessLifetime(mk(tc.cc), tc.kind); got != tc.want {
			t.Errorf("freshnessLifetime(%q, %v) = %v, want %v", tc.cc, tc.kind, got, tc.want)
		}
	}
	if freshnessLifetime(http.Header{}, ExpirationBased) != 0 {
		t.Error("missing header should be uncacheable")
	}
}

func TestFormatCacheControl(t *testing.T) {
	if got := FormatCacheControl(0, 0); got != "no-store" {
		t.Errorf("zero TTLs = %q", got)
	}
	if got := FormatCacheControl(30*time.Second, 90*time.Second); got != "public, max-age=30, s-maxage=90" {
		t.Errorf("both TTLs = %q", got)
	}
	if got := FormatCacheControl(30*time.Second, 0); got != "public, max-age=30" {
		t.Errorf("browser only = %q", got)
	}
}
