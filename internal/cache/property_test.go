package cache

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// cacheOp is one step of a randomized cache workload.
type cacheOp struct {
	kind    int // 0 put, 1 get, 2 purge, 3 advance, 4 extend, 5 invalidate
	key     int
	ttlSecs int
}

// TestCachePropertyModelConformance drives the cache with random operation
// sequences and compares every Get against a trivial reference model
// (map + expiry timestamps). Run on an unbounded invalidation-based cache
// so purge is exercised and LRU never interferes.
func TestCachePropertyModelConformance(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			ops := make([]cacheOp, 200)
			for i := range ops {
				ops[i] = cacheOp{
					kind:    r.Intn(6),
					key:     r.Intn(8),
					ttlSecs: 1 + r.Intn(20),
				}
			}
			vs[0] = reflect.ValueOf(ops)
		},
	}
	prop := func(ops []cacheOp) bool {
		now := time.Unix(0, 0)
		clock := func() time.Time { return now }
		c := New(InvalidationBased, 0, clock)
		type modelEntry struct {
			value   any
			expires time.Time
		}
		model := map[string]modelEntry{}

		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.key)
			ttl := time.Duration(op.ttlSecs) * time.Second
			switch op.kind {
			case 0:
				c.Put(key, op.key, "", ttl)
				model[key] = modelEntry{value: op.key, expires: now.Add(ttl)}
			case 1:
				got, ok := c.Get(key)
				me, inModel := model[key]
				fresh := inModel && now.Before(me.expires)
				if ok != fresh {
					return false
				}
				if ok && got.Value != me.value {
					return false
				}
			case 2:
				c.Purge(key)
				delete(model, key)
			case 3:
				now = now.Add(time.Duration(op.ttlSecs) * time.Second / 2)
			case 4:
				extended := c.Extend(key, ttl)
				if me, inModel := model[key]; inModel {
					// The cache may have lazily evicted an expired entry on
					// a previous Get; model mirrors only successful extends.
					if extended {
						me.expires = now.Add(ttl)
						model[key] = me
					} else {
						delete(model, key)
					}
				}
			case 5:
				c.Invalidate(key)
				delete(model, key)
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestLRUNeverExceedsCapacity is a quick property on the bounded cache.
func TestLRUNeverExceedsCapacity(t *testing.T) {
	prop := func(keys []uint8) bool {
		c := New(ExpirationBased, 10, nil)
		for _, k := range keys {
			c.Put(fmt.Sprintf("k%d", k), k, "", time.Minute)
			if c.Len() > 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
