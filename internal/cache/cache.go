// Package cache implements the web caches Quaestor builds on (Section 2
// "Web Caching").
//
// Two kinds of caches exist in the HTTP model:
//
//   - expiration-based caches (browser caches, forward/ISP proxies): they
//     serve an entry until its TTL expires and can only be updated through
//     client-triggered revalidations — the server cannot reach them;
//   - invalidation-based caches (CDNs, reverse proxies): additionally
//     support asynchronous server-side purges.
//
// Cache is the core object cache with TTL expiry, LRU capacity eviction,
// ETag-based revalidation bookkeeping and hit/miss statistics. Purge is
// only honoured when the cache is constructed as invalidation-based,
// matching the reachability constraints of real deployments. The httpcache
// file layers real HTTP semantics (Cache-Control, If-None-Match/304, PURGE)
// on top for the REST stack.
package cache

import (
	"container/list"
	"sync"
	"time"
)

// Kind distinguishes the two web-cache classes.
type Kind int

const (
	// ExpirationBased models browser and ISP caches: no server purge.
	ExpirationBased Kind = iota
	// InvalidationBased models CDNs and reverse proxies: purgeable.
	InvalidationBased
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == InvalidationBased {
		return "invalidation-based"
	}
	return "expiration-based"
}

// Entry is one cached object.
type Entry struct {
	Key       string
	Value     any
	ETag      string
	StoredAt  time.Time
	ExpiresAt time.Time
}

// Fresh reports whether the entry is still within its TTL at time now.
func (e *Entry) Fresh(now time.Time) bool { return now.Before(e.ExpiresAt) }

// Stats counts cache activity.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Expired       uint64 // misses caused by TTL expiry
	Purges        uint64
	Revalidations uint64 // entries refreshed in place
	Evictions     uint64 // LRU capacity evictions
	Size          int
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a TTL + LRU object cache. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	kind     Kind
	capacity int // max entries; 0 = unlimited
	clock    func() time.Time
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	stats    Stats
}

// New creates a cache of the given kind. capacity 0 means unlimited; clock
// nil means time.Now.
func New(kind Kind, capacity int, clock func() time.Time) *Cache {
	if clock == nil {
		clock = time.Now
	}
	return &Cache{
		kind:     kind,
		capacity: capacity,
		clock:    clock,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// Kind returns the cache class.
func (c *Cache) Kind() Kind { return c.kind }

// Get returns the entry when present and fresh. Expired entries are
// evicted lazily and count as Expired misses.
func (c *Cache) Get(key string) (*Entry, bool) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	e := el.Value.(*Entry)
	if !e.Fresh(now) {
		c.removeLocked(el)
		c.stats.Misses++
		c.stats.Expired++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	cp := *e
	return &cp, true
}

// GetStale returns the entry even when expired (used for revalidation with
// If-None-Match). The boolean reports presence; the caller must check
// Fresh.
func (c *Cache) GetStale(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := *el.Value.(*Entry)
	return &e, true
}

// Put stores (or replaces) an entry with the given TTL. A non-positive TTL
// makes the object uncacheable and removes any stored copy.
func (c *Cache) Put(key string, value any, etag string, ttl time.Duration) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if ttl <= 0 {
		if el, ok := c.entries[key]; ok {
			c.removeLocked(el)
		}
		return
	}
	e := &Entry{Key: key, Value: value, ETag: etag, StoredAt: now, ExpiresAt: now.Add(ttl)}
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		c.stats.Revalidations++
		return
	}
	el := c.lru.PushFront(e)
	c.entries[key] = el
	if c.capacity > 0 && c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		if oldest != nil {
			c.removeLocked(oldest)
			c.stats.Evictions++
		}
	}
}

// Extend refreshes an existing entry's TTL without replacing its value —
// the effect of a 304 Not Modified revalidation.
func (c *Cache) Extend(key string, ttl time.Duration) bool {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	e := el.Value.(*Entry)
	e.ExpiresAt = now.Add(ttl)
	c.lru.MoveToFront(el)
	c.stats.Revalidations++
	return true
}

// Purge removes an entry by server-side invalidation. Only
// invalidation-based caches honour purges; expiration-based caches return
// false, mirroring their unreachability from the origin.
func (c *Cache) Purge(key string) bool {
	if c.kind != InvalidationBased {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	c.stats.Purges++
	return true
}

// Invalidate removes an entry regardless of kind. Clients use this on their
// *own* browser cache (e.g. after their own writes for read-your-writes);
// it is not a server-side purge.
func (c *Cache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*Entry)
	delete(c.entries, e.Key)
	c.lru.Remove(el)
}

// Keys returns all stored entry keys (including expired ones not yet
// swept). Clients use this with the EBF to drop flagged entries on filter
// refresh.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}

// Len returns the number of stored entries (including expired, pre-sweep).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Clear drops all entries.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.lru.Init()
}

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.lru.Len()
	return s
}

// ResetStats zeroes the counters (entries are kept).
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}
