package cache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// CachedResponse is the stored image of an upstream HTTP response.
type CachedResponse struct {
	Status int
	Header http.Header
	Body   []byte
}

// HTTPTier is a caching HTTP intermediary: a browser/ISP cache
// (expiration-based) or a CDN edge / reverse proxy (invalidation-based).
// Tiers chain via the Upstream handler, so a full path
// client → browser cache → CDN → origin is three nested tiers.
//
// Semantics implemented:
//
//   - GET responses are cached according to Cache-Control: the freshness
//     lifetime is s-maxage (shared caches) falling back to max-age;
//     no-store disables caching for the response.
//   - A request carrying Cache-Control: no-cache (a client revalidation)
//     bypasses the fresh entry and is forwarded conditionally with
//     If-None-Match; a 304 refreshes the stored entry in place.
//   - The PURGE method removes an entry — only on invalidation-based tiers,
//     mirroring CDN purge APIs. Expiration-based tiers answer 405.
//   - UpstreamLatency simulates the network round-trip to the next tier and
//     is slept once per forwarded request; cache hits skip it entirely.
//     This is the substitution for real geographic RTTs (see DESIGN.md).
type HTTPTier struct {
	Name            string
	Upstream        http.Handler
	Cache           *Cache
	UpstreamLatency time.Duration
	// Sleep allows tests and simulations to replace time.Sleep.
	Sleep func(time.Duration)
	// Clock supplies time for Age computation (defaults to the cache's
	// notion via entry timestamps; only used for headers).
	Clock func() time.Time
}

// NewHTTPTier builds a tier of the given kind in front of upstream.
func NewHTTPTier(name string, kind Kind, upstream http.Handler, upstreamLatency time.Duration) *HTTPTier {
	return &HTTPTier{
		Name:            name,
		Upstream:        upstream,
		Cache:           New(kind, 0, nil),
		UpstreamLatency: upstreamLatency,
		Sleep:           time.Sleep,
		Clock:           time.Now,
	}
}

// ServeHTTP implements http.Handler.
func (t *HTTPTier) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case "PURGE":
		t.servePurge(w, r)
		return
	case http.MethodGet, http.MethodHead:
		t.serveGet(w, r)
		return
	default:
		// Writes and everything else pass through uncached.
		t.forward(w, r)
		return
	}
}

func cacheKey(r *http.Request) string { return r.URL.RequestURI() }

func (t *HTTPTier) servePurge(w http.ResponseWriter, r *http.Request) {
	if t.Cache.Kind() != InvalidationBased {
		http.Error(w, "purge not supported by expiration-based cache", http.StatusMethodNotAllowed)
		return
	}
	t.Cache.Purge(cacheKey(r))
	// Propagate to further invalidation-based tiers downstream of us.
	if t.Upstream != nil {
		rec := newRecorder()
		t.Upstream.ServeHTTP(rec, r)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (t *HTTPTier) serveGet(w http.ResponseWriter, r *http.Request) {
	key := cacheKey(r)
	revalidate := requestWantsRevalidation(r)

	if !revalidate {
		if entry, ok := t.Cache.Get(key); ok {
			t.writeCached(w, entry, true)
			return
		}
	}

	// Miss or revalidation: forward upstream, conditionally if we hold a
	// (possibly stale) body with an ETag.
	var staleETag string
	if stale, ok := t.Cache.GetStale(key); ok {
		if cr, isResp := stale.Value.(*CachedResponse); isResp {
			staleETag = cr.Header.Get("ETag")
		}
	}
	up := r.Clone(r.Context())
	if staleETag != "" && up.Header.Get("If-None-Match") == "" {
		up.Header.Set("If-None-Match", staleETag)
	}
	rec := newRecorder()
	if t.UpstreamLatency > 0 && t.Sleep != nil {
		t.Sleep(t.UpstreamLatency)
	}
	if t.Upstream == nil {
		http.Error(w, "no upstream", http.StatusBadGateway)
		return
	}
	t.Upstream.ServeHTTP(rec, up)

	if rec.status == http.StatusNotModified && staleETag != "" {
		// Refresh the stored copy in place and serve it.
		ttl := freshnessLifetime(rec.header, t.Cache.Kind())
		if ttl > 0 {
			t.Cache.Extend(key, ttl)
		}
		if entry, ok := t.Cache.GetStale(key); ok {
			if r.Header.Get("If-None-Match") == staleETag {
				// The client itself holds the same version.
				copyCacheHeaders(w.Header(), rec.header)
				w.WriteHeader(http.StatusNotModified)
				return
			}
			t.writeCached(w, entry, false)
			return
		}
		if r.Header.Get("If-None-Match") != staleETag {
			// The 304 answered OUR conditional header, but the stored body
			// vanished (e.g. a concurrent purge) and the client cannot use
			// a 304 it never asked for: re-fetch unconditionally.
			up2 := r.Clone(r.Context())
			up2.Header.Del("If-None-Match")
			rec = newRecorder()
			if t.UpstreamLatency > 0 && t.Sleep != nil {
				t.Sleep(t.UpstreamLatency)
			}
			t.Upstream.ServeHTTP(rec, up2)
		}
	}

	ttl := freshnessLifetime(rec.header, t.Cache.Kind())
	if rec.status == http.StatusOK && ttl > 0 && r.Method == http.MethodGet {
		t.Cache.Put(key, &CachedResponse{
			Status: rec.status,
			Header: rec.header.Clone(),
			Body:   append([]byte(nil), rec.body.Bytes()...),
		}, rec.header.Get("ETag"), ttl)
	}
	// Relay the upstream response verbatim.
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Cache", t.Name+": MISS")
	w.WriteHeader(rec.status)
	w.Write(rec.body.Bytes())
}

func (t *HTTPTier) forward(w http.ResponseWriter, r *http.Request) {
	if t.UpstreamLatency > 0 && t.Sleep != nil {
		t.Sleep(t.UpstreamLatency)
	}
	if t.Upstream == nil {
		http.Error(w, "no upstream", http.StatusBadGateway)
		return
	}
	t.Upstream.ServeHTTP(w, r)
}

func (t *HTTPTier) writeCached(w http.ResponseWriter, entry *Entry, hit bool) {
	cr, ok := entry.Value.(*CachedResponse)
	if !ok {
		http.Error(w, "corrupt cache entry", http.StatusInternalServerError)
		return
	}
	for k, vs := range cr.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	age := int(t.Clock().Sub(entry.StoredAt).Seconds())
	if age < 0 {
		age = 0
	}
	w.Header().Set("Age", strconv.Itoa(age))
	if hit {
		w.Header().Set("X-Cache", t.Name+": HIT")
	} else {
		w.Header().Set("X-Cache", t.Name+": REVALIDATED")
	}
	w.WriteHeader(cr.Status)
	w.Write(cr.Body)
}

func copyCacheHeaders(dst, src http.Header) {
	for _, h := range []string{"ETag", "Cache-Control", "Last-Modified"} {
		if v := src.Get(h); v != "" {
			dst.Set(h, v)
		}
	}
}

// requestWantsRevalidation reports whether the request explicitly bypasses
// fresh cached copies (Cache-Control: no-cache or Pragma: no-cache) — the
// mechanism Quaestor clients use when the EBF flags a key as stale.
func requestWantsRevalidation(r *http.Request) bool {
	cc := r.Header.Get("Cache-Control")
	if cc != "" {
		for _, d := range strings.Split(cc, ",") {
			d = strings.TrimSpace(d)
			if d == "no-cache" || d == "max-age=0" {
				return true
			}
		}
	}
	return r.Header.Get("Pragma") == "no-cache"
}

// freshnessLifetime derives the TTL from Cache-Control. Shared
// (invalidation-based) caches prefer s-maxage; private caches use max-age.
// no-store (and, for shared caches, private) yields zero.
func freshnessLifetime(h http.Header, kind Kind) time.Duration {
	cc := h.Get("Cache-Control")
	if cc == "" {
		return 0
	}
	var maxAge, sMaxAge time.Duration
	var hasMaxAge, hasSMaxAge bool
	for _, d := range strings.Split(cc, ",") {
		d = strings.TrimSpace(d)
		switch {
		case d == "no-store":
			return 0
		case d == "private" && kind == InvalidationBased:
			return 0
		case strings.HasPrefix(d, "max-age="):
			if secs, err := strconv.Atoi(strings.TrimPrefix(d, "max-age=")); err == nil {
				maxAge = time.Duration(secs) * time.Second
				hasMaxAge = true
			}
		case strings.HasPrefix(d, "s-maxage="):
			if secs, err := strconv.Atoi(strings.TrimPrefix(d, "s-maxage=")); err == nil {
				sMaxAge = time.Duration(secs) * time.Second
				hasSMaxAge = true
			}
		}
	}
	if kind == InvalidationBased && hasSMaxAge {
		return sMaxAge
	}
	if hasMaxAge {
		return maxAge
	}
	return 0
}

// recorder is a minimal in-process http.ResponseWriter capture.
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, header: http.Header{}}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(status int) { r.status = status }

func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

var _ http.ResponseWriter = (*recorder)(nil)
var _ io.Writer = (*recorder)(nil)

// FormatCacheControl renders a Cache-Control value for a response served
// with the given TTLs. Zero sharedTTL omits s-maxage.
func FormatCacheControl(ttl, sharedTTL time.Duration) string {
	if ttl <= 0 && sharedTTL <= 0 {
		return "no-store"
	}
	parts := []string{"public"}
	if ttl > 0 {
		parts = append(parts, fmt.Sprintf("max-age=%d", int(ttl.Seconds())))
	}
	if sharedTTL > 0 {
		parts = append(parts, fmt.Sprintf("s-maxage=%d", int(sharedTTL.Seconds())))
	}
	return strings.Join(parts, ", ")
}
