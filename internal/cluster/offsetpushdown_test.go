package cluster_test

// OFFSET pushdown correctness: a scattered query with an OFFSET window
// must stay byte-identical to the materializing single-node baseline for
// every offset/limit combination — including offsets larger than any
// single shard, where the pushdown provably skips rows shard-side — and
// the plan must disclose the pruning.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"quaestor/internal/cluster"
	"quaestor/internal/query"
)

func TestOffsetPushdownEquivalence(t *testing.T) {
	const shards = 4
	const docs = 300
	rng := rand.New(rand.NewSource(11))

	router := cluster.MustOpen(cluster.Options{Shards: shards})
	defer router.Close()
	if err := router.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		if err := router.Insert("docs", randDoc(rng, fmt.Sprintf("d%04d", i))); err != nil {
			t.Fatal(err)
		}
	}

	queries := []*query.Query{
		query.New("docs", nil).Sorted(query.SortKey{Path: "v"}),
		query.New("docs", query.Gte("v", int64(5))).Sorted(query.SortKey{Path: "v", Desc: true}),
		query.New("docs", query.Eq("grp", "g1")).Sorted(query.SortKey{Path: "grp"}, query.SortKey{Path: "v"}),
		query.New("docs", nil), // unsorted: doc-ID order
	}
	// Offsets straddle the interesting boundaries: 0 (no pushdown), small
	// (pushdown inactive — every shard could hold the window), larger than
	// three shards' worth (pushdown must skip shard-side), past the end.
	offsets := []int{0, 1, 7, docs / 2, docs - shards, docs - 1, docs, docs + 50}
	limits := []int{0, 1, 5, 40, docs}

	for _, base := range queries {
		for _, off := range offsets {
			for _, lim := range limits {
				q := base.Sliced(off, lim)
				want, err := router.ScanQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				got, plan, err := router.QueryPlanned(q)
				if err != nil {
					t.Fatal(err)
				}
				if g, w := renderDocs(t, got), renderDocs(t, want); g != w {
					t.Fatalf("%s offset=%d limit=%d diverged:\n--- scattered ---\n%s--- baseline ---\n%s",
						base, off, lim, g, w)
				}
				// An offset bigger than the other shards could possibly
				// absorb forces shard-side skipping, and the plan says so.
				if off > docs-docs/shards && !strings.Contains(plan.Reason, "offset pushdown") {
					t.Errorf("offset=%d limit=%d: plan does not disclose pushdown: %s", off, lim, plan.Reason)
				}
			}
		}
	}
}
