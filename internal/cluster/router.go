package cluster

import (
	"fmt"
	"path/filepath"
	"sync"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// Options configures a Router.
type Options struct {
	// Shards is the number of shard nodes (minimum 1).
	Shards int
	// Store is the per-shard store template. DataDir, when set, is the
	// cluster root: shard i opens DataDir/shard-i with its own WAL and
	// snapshot lineage.
	Store store.Options
}

// Router owns the shard nodes of a single-process multi-shard cluster and
// routes every operation: point ops to the owning shard's commit
// pipeline, DDL to all shards, queries scatter-gather through the ordered
// merge. The interface deliberately mirrors store.Store so the server can
// front either; a multi-process router would keep the same surface and
// swap the in-process store calls for shard-node RPCs.
type Router struct {
	smap   *ShardMap
	stores []*store.Store
}

// Open opens (or recovers) every shard store. On error, already-opened
// shards are closed.
func Open(opts Options) (*Router, error) {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	r := &Router{smap: NewShardMap(n)}
	for i := 0; i < n; i++ {
		so := opts.Store
		if so.DataDir != "" {
			so.DataDir = filepath.Join(so.DataDir, fmt.Sprintf("shard-%d", i))
		}
		st, err := store.Open(&so)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: opening shard %d: %w", i, err)
		}
		r.stores = append(r.stores, st)
	}
	return r, nil
}

// MustOpen is Open for tests and in-memory setups; panics on error.
func MustOpen(opts Options) *Router {
	r, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return r
}

// Close closes every shard store.
func (r *Router) Close() {
	for _, st := range r.stores {
		if st != nil {
			st.Close()
		}
	}
}

// Map returns the cluster's shard map.
func (r *Router) Map() *ShardMap { return r.smap }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.stores) }

// ShardFor returns the shard owning a document id.
func (r *Router) ShardFor(id string) int { return r.smap.Shard(id) }

// Store returns shard i's store (replication endpoints and tests need
// direct access).
func (r *Router) Store(i int) *store.Store { return r.stores[i] }

// Stores returns all shard stores in shard order.
func (r *Router) Stores() []*store.Store { return r.stores }

// storeFor routes a document id to its owning shard's store.
func (r *Router) storeFor(id string) *store.Store {
	return r.stores[r.smap.Shard(id)]
}

// CreateTable creates the table on every shard (DDL fans out).
func (r *Router) CreateTable(name string) error {
	for _, st := range r.stores {
		if err := st.CreateTable(name); err != nil {
			return err
		}
	}
	return nil
}

// CreateIndex creates the index on every shard. Each shard sequences the
// DDL through its own commit pipeline, so per-shard replicas learn it
// live.
func (r *Router) CreateIndex(table, path string) error {
	for _, st := range r.stores {
		if err := st.CreateIndex(table, path); err != nil {
			return err
		}
	}
	return nil
}

// Tables returns the table names (identical on every shard; shard 0
// answers).
func (r *Router) Tables() []string { return r.stores[0].Tables() }

// Indexes returns a table's indexed paths (identical on every shard).
func (r *Router) Indexes(table string) ([]string, error) { return r.stores[0].Indexes(table) }

// Insert routes the document to its owning shard's commit pipeline.
func (r *Router) Insert(table string, doc *document.Document) error {
	return r.storeFor(doc.ID).Insert(table, doc)
}

// Put routes the document to its owning shard.
func (r *Router) Put(table string, doc *document.Document) error {
	return r.storeFor(doc.ID).Put(table, doc)
}

// Update routes the partial update to the owning shard.
func (r *Router) Update(table, id string, spec store.UpdateSpec) (*document.Document, error) {
	return r.storeFor(id).Update(table, id, spec)
}

// Delete routes the delete to the owning shard.
func (r *Router) Delete(table, id string) error {
	return r.storeFor(id).Delete(table, id)
}

// Get reads the document directly from its owning shard.
func (r *Router) Get(table, id string) (*document.Document, error) {
	return r.storeFor(id).Get(table, id)
}

// Count sums the table's document count across shards.
func (r *Router) Count(table string) (int, error) {
	total := 0
	for _, st := range r.stores {
		n, err := st.Count(table)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// LastSeqs returns every shard's newest assigned sequence, in shard
// order. Shard sequence spaces are independent — cross-shard positions
// are vectors, never a single number.
func (r *Router) LastSeqs() []uint64 {
	seqs := make([]uint64, len(r.stores))
	for i, st := range r.stores {
		seqs[i] = st.LastSeq()
	}
	return seqs
}

// QueryStream scatters q to every shard as a streaming cursor and gathers
// through the ordered k-way merge. Each shard executes a sub-query window
// — per-shard early termination — and emits in q.Less order (the
// executor's contract), so the merge plus the residual global
// OFFSET/LIMIT window reproduces a single node's result byte for byte.
// The returned cursor's plan aggregates per-shard execution stats.
//
// OFFSET pushdown: with per-shard table counts c_i, shard i must place at
// least p_i = max(0, offset − Σ_{j≠i} c_j) of its rows inside the global
// skip region — even if every other shard's rows all sorted first, shard
// i still covers the remainder. Those p_i leading rows are skipped
// shard-side (sub-query offset), the fetch window shrinks to
// offset+limit−p_i, and the merge applies only the residual offset
// offset−Σp_i. Counts are a point-in-time snapshot: under concurrent
// writes the window may shift by in-flight rows, the same non-snapshot
// anomaly the scatter already has (shards execute at different instants);
// order and duplicate-freedom are unaffected.
func (r *Router) QueryStream(q *query.Query) (*store.Cursor, error) {
	if len(r.stores) == 1 {
		return r.stores[0].QueryStream(q)
	}
	subs := make([]*query.Query, len(r.stores))
	merge := q
	pruned := 0
	if q.Offset > 0 {
		if counts, total, err := r.shardCounts(q.Table); err == nil {
			for i := range r.stores {
				p := q.Offset - (total - counts[i])
				if p < 0 {
					p = 0
				}
				if p > counts[i] {
					p = counts[i]
				}
				pruned += p
				if q.Limit > 0 {
					subs[i] = q.Sliced(p, q.Offset+q.Limit-p)
				} else {
					subs[i] = q.Sliced(p, 0)
				}
			}
			merge = q.Sliced(q.Offset-pruned, q.Limit)
		} else {
			// No count statistics: every shard produces the full
			// [0, offset+limit) window — any of them could hold it all.
			sub := q.Sliced(0, subLimit(q))
			for i := range subs {
				subs[i] = sub
			}
		}
	} else {
		for i := range subs {
			subs[i] = q
		}
	}
	lists := make([][]*document.Document, len(r.stores))
	plans := make([]query.Plan, len(r.stores))
	errs := make([]error, len(r.stores))
	var wg sync.WaitGroup
	for i, st := range r.stores {
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			cur, err := st.QueryStream(subs[i])
			if err != nil {
				errs[i] = err
				return
			}
			docs := make([]*document.Document, 0, cur.Remaining())
			for {
				d, ok := cur.NextShared()
				if !ok {
					break
				}
				docs = append(docs, d)
			}
			lists[i] = docs
			plans[i] = cur.Plan()
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := store.MergeOrdered(merge, lists)
	plan := plans[0]
	for _, p := range plans[1:] {
		plan.RowsExamined += p.RowsExamined
	}
	plan.RowsReturned = len(merged)
	plan.Reason = fmt.Sprintf("scatter-gather over %d shards; per-shard: %s", len(r.stores), plan.Reason)
	if pruned > 0 {
		plan.Reason += fmt.Sprintf("; offset pushdown skipped %d rows shard-side", pruned)
	}
	return store.NewCursor(plan, merged), nil
}

// shardCounts returns every shard's table count plus the total — the
// statistics the OFFSET pushdown slices per-shard windows from.
func (r *Router) shardCounts(table string) ([]int, int, error) {
	counts := make([]int, len(r.stores))
	total := 0
	for i, st := range r.stores {
		n, err := st.Count(table)
		if err != nil {
			return nil, 0, err
		}
		counts[i] = n
		total += n
	}
	return counts, total, nil
}

// subLimit is the per-shard window for a scattered query: offset+limit
// rows when the query is bounded, unbounded otherwise.
func subLimit(q *query.Query) int {
	if q.Limit <= 0 {
		return 0
	}
	return q.Offset + q.Limit
}

// QueryPlanned scatters q and returns cloned results plus the aggregated
// cluster-level plan.
func (r *Router) QueryPlanned(q *query.Query) ([]*document.Document, query.Plan, error) {
	cur, err := r.QueryStream(q)
	if err != nil {
		return nil, query.Plan{}, err
	}
	docs := make([]*document.Document, 0, cur.Remaining())
	for {
		d, ok := cur.Next()
		if !ok {
			break
		}
		docs = append(docs, d)
	}
	return docs, cur.Plan(), nil
}

// Query scatters q and returns cloned results.
func (r *Router) Query(q *query.Query) ([]*document.Document, error) {
	docs, _, err := r.QueryPlanned(q)
	return docs, err
}

// ScanQuery is the materializing cross-shard baseline: gather every
// shard's unwindowed candidates, then apply filter/sort/window globally.
// Correctness oracle for the property tests and experiments.
func (r *Router) ScanQuery(q *query.Query) ([]*document.Document, error) {
	if len(r.stores) == 1 {
		return r.stores[0].ScanQuery(q)
	}
	var all []*document.Document
	unwindowed := query.New(q.Table, q.Predicate)
	for _, st := range r.stores {
		docs, err := st.ScanQuery(unwindowed)
		if err != nil {
			return nil, err
		}
		all = append(all, docs...)
	}
	return q.Apply(all), nil
}

// Explain plans q on shard 0 and annotates the scatter. Placement is
// identical across shards (same tables, same indexes), so one shard's
// plan speaks for all.
func (r *Router) Explain(q *query.Query) (query.Plan, error) {
	plan, err := r.stores[0].Explain(q)
	if err != nil {
		return plan, err
	}
	if len(r.stores) > 1 {
		plan.Reason = fmt.Sprintf("scatter-gather over %d shards; per-shard: %s", len(r.stores), plan.Reason)
	}
	return plan, nil
}
