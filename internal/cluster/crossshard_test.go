package cluster_test

// Cross-shard correctness property: a sharded scatter-gather QueryStream
// must be byte-identical — content AND order — to a single-node
// ScanQuery over the same data, for randomized predicates, orderings and
// windows, while concurrent writers hammer the shards. The per-shard
// ordered change streams feeding InvaliDB must show zero order
// violations throughout: sharding must not leak disorder into the
// invalidation pipeline.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"quaestor/internal/cluster"
	"quaestor/internal/document"
	"quaestor/internal/invalidb"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// genQuery builds a random query over the test schema (v int, grp string,
// tags array): random predicate shape, random ordering, random window.
func genQuery(rng *rand.Rand) *query.Query {
	var pred query.Predicate
	switch rng.Intn(6) {
	case 0:
		pred = nil // full scan
	case 1:
		pred = query.Eq("grp", fmt.Sprintf("g%d", rng.Intn(5)))
	case 2:
		pred = query.Gte("v", int64(rng.Intn(20)))
	case 3:
		pred = query.AndOf(query.Gte("v", int64(rng.Intn(10))), query.Lt("v", int64(10+rng.Intn(10))))
	case 4:
		pred = query.Contains("tags", fmt.Sprintf("t%d", rng.Intn(4)))
	case 5:
		pred = query.OrOf(query.Eq("grp", "g0"), query.Gt("v", int64(15)))
	}
	q := query.New("docs", pred)
	switch rng.Intn(4) {
	case 1:
		q = q.Sorted(query.SortKey{Path: "v"})
	case 2:
		q = q.Sorted(query.SortKey{Path: "v", Desc: true}, query.SortKey{Path: "grp"})
	case 3:
		q = q.Sorted(query.SortKey{Path: "grp"})
	}
	if rng.Intn(2) == 1 {
		q = q.Sliced(rng.Intn(20), 1+rng.Intn(30))
	}
	return q
}

func randDoc(rng *rand.Rand, id string) *document.Document {
	tags := []any{}
	for i := 0; i < 4; i++ {
		if rng.Intn(2) == 1 {
			tags = append(tags, fmt.Sprintf("t%d", i))
		}
	}
	return document.New(id, map[string]any{
		"v":    int64(rng.Intn(20)),
		"grp":  fmt.Sprintf("g%d", rng.Intn(5)),
		"tags": tags,
	})
}

// renderDocs is the byte-identity oracle: the full JSON of every document
// in result order.
func renderDocs(t *testing.T, docs []*document.Document) string {
	t.Helper()
	out := ""
	for _, d := range docs {
		js, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		out += string(js) + "\n"
	}
	return out
}

func drainStream(t *testing.T, r *cluster.Router, q *query.Query) []*document.Document {
	t.Helper()
	cur, err := r.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	var docs []*document.Document
	for {
		d, ok := cur.Next()
		if !ok {
			break
		}
		docs = append(docs, d)
	}
	return docs
}

func TestCrossShardQueryEquivalenceUnderConcurrentWrites(t *testing.T) {
	const shards = 4
	rng := rand.New(rand.NewSource(7))

	router := cluster.MustOpen(cluster.Options{Shards: shards})
	defer router.Close()
	oracle := store.MustOpen(nil)
	defer oracle.Close()
	for _, ddl := range []interface{ CreateTable(string) error }{router, oracle} {
		if err := ddl.CreateTable("docs"); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.CreateIndex("docs", "grp"); err != nil {
		t.Fatal(err)
	}
	if err := oracle.CreateIndex("docs", "grp"); err != nil {
		t.Fatal(err)
	}

	// One InvaliDB cell row per shard, placed by the same ShardMap that
	// routes writes; each pump asserts its shard's strictly increasing Seq.
	inv := invalidb.NewCluster(&invalidb.Config{
		QueryPartitions:  2,
		ObjectPartitions: shards,
		Placement:        router.Map().Shard,
	})
	defer inv.Stop()
	for _, st := range router.Stores() {
		defer inv.AttachStore(st)()
	}

	// Phase 1: quiesced equivalence over a random dataset.
	for i := 0; i < 400; i++ {
		doc := randDoc(rng, fmt.Sprintf("d%04d", i))
		if err := router.Insert("docs", doc.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Insert("docs", doc.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		q := genQuery(rng)
		want, err := oracle.ScanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		got := drainStream(t, router, q)
		if g, w := renderDocs(t, got), renderDocs(t, want); g != w {
			t.Fatalf("query %s diverged from single-node baseline:\n--- sharded ---\n%s--- single ---\n%s", q, g, w)
		}
	}

	// Phase 2: concurrent writers on disjoint key ranges apply identical
	// op sequences to the router and the oracle, while readers stream
	// scattered queries and check the merge invariant (output sorted by
	// q.Less) on every in-flight result.
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 250; i++ {
				id := fmt.Sprintf("w%d-%d", w, wrng.Intn(80))
				switch wrng.Intn(4) {
				case 0, 1: // upsert
					doc := randDoc(wrng, id)
					if err := router.Put("docs", doc.Clone()); err != nil {
						t.Error(err)
						return
					}
					if err := oracle.Put("docs", doc.Clone()); err != nil {
						t.Error(err)
						return
					}
				case 2: // insert fresh
					fid := fmt.Sprintf("w%d-f%d", w, i)
					doc := randDoc(wrng, fid)
					if err := router.Insert("docs", doc.Clone()); err != nil {
						t.Error(err)
						return
					}
					if err := oracle.Insert("docs", doc.Clone()); err != nil {
						t.Error(err)
						return
					}
				case 3: // delete (both sides share the key's state)
					errR := router.Delete("docs", id)
					errO := oracle.Delete("docs", id)
					if (errR == nil) != (errO == nil) {
						t.Errorf("delete %s: router=%v oracle=%v", id, errR, errO)
						return
					}
				}
			}
		}(w)
	}
	var rdWg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rdWg.Add(1)
		go func(r int) {
			defer rdWg.Done()
			qrng := rand.New(rand.NewSource(int64(900 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := genQuery(qrng)
				docs := drainStream(t, router, q)
				for i := 1; i < len(docs); i++ {
					if q.Less(docs[i], docs[i-1]) {
						t.Errorf("mid-storm stream for %s out of order at row %d", q, i)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rdWg.Wait()

	// Phase 3: quiesced again — the storm must have left both sides
	// byte-identical under every query shape.
	for i := 0; i < 50; i++ {
		q := genQuery(rng)
		want, err := oracle.ScanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		got := drainStream(t, router, q)
		if g, w := renderDocs(t, got), renderDocs(t, want); g != w {
			t.Fatalf("post-storm query %s diverged:\n--- sharded ---\n%s--- single ---\n%s", q, g, w)
		}
	}
	if v := inv.OrderViolations(); v != 0 {
		t.Errorf("per-shard OrderViolations = %d, want 0", v)
	}
}
