// Package cluster implements sharded multi-primary scale-out: a versioned
// consistent-hash ShardMap over document ids and a Router that owns N
// shard nodes, each an independent store.Store with its own WAL, commit
// pipeline, and replica chain. Writes hash to exactly one shard's commit
// pipeline; point reads route directly; queries scatter to all shards as
// streaming cursors and gather through the ordered k-way merge, so
// cross-shard results are byte-identical to a single node's.
//
// This mirrors the paper's InvaliDB design — a matrix of query×object
// partitions — and the same ShardMap drives InvaliDB cell placement
// (invalidb.Config.Placement), so a shard's real-time matching cells see
// exactly that shard's ordered change stream.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVNodes is the number of virtual nodes per shard on the hash
// ring. 64 vnodes keep the keyspace split within a few percent of even
// while the ring stays small enough to rebuild on every map fetch.
const DefaultVNodes = 64

// vnode is one virtual point on the consistent-hash ring.
type vnode struct {
	hash  uint32
	shard int
}

// ShardMap is the versioned cluster topology: how many shards exist and
// how document ids map onto them. The wire form (JSON) carries only the
// parameters; the ring is derived deterministically, so every node and
// client that agrees on (Shards, VNodes) agrees on placement. Epoch
// versions the map: servers stamp X-Quaestor-Shard-Epoch on responses and
// stale clients refetch.
type ShardMap struct {
	Epoch  uint64 `json:"epoch"`
	Shards int    `json:"shards"`
	VNodes int    `json:"vnodes"`
	// Nodes optionally carries one base URL per shard for multi-process
	// topologies. Empty in single-process mode: every shard is served by
	// the same endpoint and the server routes internally.
	Nodes []string `json:"nodes,omitempty"`

	mu   sync.Mutex
	ring []vnode
}

// NewShardMap builds a map of n shards (minimum 1) at epoch 1 with the
// default vnode count.
func NewShardMap(n int) *ShardMap {
	if n < 1 {
		n = 1
	}
	return &ShardMap{Epoch: 1, Shards: n, VNodes: DefaultVNodes}
}

// hash32 is the placement hash (FNV-1a, matching the store's intra-table
// sharding idiom).
func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// ensureRing derives the ring from (Shards, VNodes) once. Deterministic:
// equal parameters produce an identical ring everywhere.
func (m *ShardMap) ensureRing() []vnode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ring) > 0 {
		return m.ring
	}
	vn := m.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	ring := make([]vnode, 0, m.Shards*vn)
	for s := 0; s < m.Shards; s++ {
		for v := 0; v < vn; v++ {
			ring = append(ring, vnode{hash: hash32(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].shard < ring[j].shard
	})
	m.ring = ring
	return ring
}

// Shard maps a document id to its owning shard: the first vnode at or
// clockwise past the id's hash.
func (m *ShardMap) Shard(id string) int {
	if m.Shards <= 1 {
		return 0
	}
	ring := m.ensureRing()
	h := hash32(id)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0 // wrap past the highest vnode
	}
	return ring[i].shard
}

// NodeURL returns the base URL serving a shard, or "" when the topology
// is single-process (route to any node; it proxies internally).
func (m *ShardMap) NodeURL(shard int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if shard < 0 || shard >= len(m.Nodes) {
		return ""
	}
	return m.Nodes[shard]
}

// CurrentEpoch reads the map's epoch under the lock. Servers stamp this
// per response, so an epoch bump (failover, resharding) is visible to
// clients on the very next exchange.
func (m *ShardMap) CurrentEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Epoch
}

// Snapshot returns a detached copy of the map safe to marshal or hand to
// another goroutine while the original keeps mutating. The ring is not
// copied; it re-derives from (Shards, VNodes), which never change after
// construction.
func (m *ShardMap) Snapshot() *ShardMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := &ShardMap{Epoch: m.Epoch, Shards: m.Shards, VNodes: m.VNodes}
	if len(m.Nodes) > 0 {
		cp.Nodes = append([]string(nil), m.Nodes...)
	}
	return cp
}

// SetTopology adopts a rewritten node list at a new epoch (e.g. pushed by
// the failover coordinator after promoting replicas). Placement is
// untouched — the ring depends only on (Shards, VNodes) — so the rewrite
// changes which endpoint serves each shard, never which shard owns a key.
// Stale pushes (epoch ≤ current) are ignored; returns whether the map
// advanced.
func (m *ShardMap) SetTopology(epoch uint64, nodes []string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch <= m.Epoch {
		return false
	}
	m.Epoch = epoch
	m.Nodes = append([]string(nil), nodes...)
	return true
}

// RewriteNode points one shard at a new endpoint and bumps the epoch,
// returning the new epoch. Used for single-shard cutovers; whole-topology
// rewrites go through SetTopology.
func (m *ShardMap) RewriteNode(shard int, url string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if shard >= 0 {
		for len(m.Nodes) <= shard && len(m.Nodes) < m.Shards {
			m.Nodes = append(m.Nodes, "")
		}
		if shard < len(m.Nodes) {
			m.Nodes[shard] = url
		}
	}
	m.Epoch++
	return m.Epoch
}

// ParseShardMap decodes a wire-form map (e.g. the /v1/cluster/map
// response) and validates it.
func ParseShardMap(data []byte) (*ShardMap, error) {
	var m ShardMap
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing shard map: %w", err)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("cluster: shard map has %d shards", m.Shards)
	}
	return &m, nil
}
