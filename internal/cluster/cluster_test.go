package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

func TestShardMapDeterministicAndBalanced(t *testing.T) {
	a := NewShardMap(4)
	b := NewShardMap(4)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("doc-%d", i)
		sa, sb := a.Shard(id), b.Shard(id)
		if sa != sb {
			t.Fatalf("Shard(%q): %d vs %d — placement is not deterministic", id, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("Shard(%q) = %d out of range", id, sa)
		}
		counts[sa]++
	}
	// Consistent hashing with 64 vnodes per shard keeps the split within a
	// few percent of even; require each shard to own at least half its
	// fair share so a broken ring (everything on one shard) fails loudly.
	for s, n := range counts {
		if n < 10000/4/2 {
			t.Errorf("shard %d owns %d of 10000 ids — ring badly skewed (%v)", s, n, counts)
		}
	}
}

func TestShardMapSingleShardFastPath(t *testing.T) {
	m := NewShardMap(1)
	for _, id := range []string{"", "a", "doc-99"} {
		if got := m.Shard(id); got != 0 {
			t.Errorf("1-shard map placed %q on shard %d", id, got)
		}
	}
}

func TestShardMapWireRoundTrip(t *testing.T) {
	m := NewShardMap(4)
	m.Nodes = []string{"http://n0", "http://n1", "http://n2", "http://n3"}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseShardMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Shards != m.Shards || got.VNodes != m.VNodes {
		t.Errorf("round trip changed parameters: %+v vs %+v", got, m)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("k%d", i)
		if m.Shard(id) != got.Shard(id) {
			t.Fatalf("wire-form map disagrees on %q", id)
		}
	}
	if u := got.NodeURL(2); u != "http://n2" {
		t.Errorf("NodeURL(2) = %q", u)
	}
	if u := got.NodeURL(7); u != "" {
		t.Errorf("NodeURL out of range = %q, want empty", u)
	}
	if _, err := ParseShardMap([]byte(`{"epoch":1,"shards":0}`)); err == nil {
		t.Error("ParseShardMap accepted a 0-shard map")
	}
}

func newTestRouter(t *testing.T, shards int) *Router {
	t.Helper()
	r := MustOpen(Options{Shards: shards})
	t.Cleanup(r.Close)
	if err := r.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterRoutesPointOpsToOwningShard(t *testing.T) {
	r := newTestRouter(t, 4)
	const n = 200
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("d%d", i)
		if err := r.Insert("docs", document.New(id, map[string]any{"v": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for s, st := range r.Stores() {
		c, err := st.Count("docs")
		if err != nil {
			t.Fatal(err)
		}
		total += c
		// Every doc on this shard must hash here.
		docs, err := st.ScanQuery(query.New("docs", nil))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			if own := r.ShardFor(d.ID); own != s {
				t.Errorf("doc %s lives on shard %d but hashes to %d", d.ID, s, own)
			}
		}
	}
	if total != n {
		t.Errorf("shard counts sum to %d, want %d", total, n)
	}
	if c, err := r.Count("docs"); err != nil || c != n {
		t.Errorf("router Count = %d, %v", c, err)
	}
	// Point reads route to the owner; updates and deletes too.
	if d, err := r.Get("docs", "d7"); err != nil || d.ID != "d7" {
		t.Fatalf("Get d7: %v, %v", d, err)
	}
	if err := r.Delete("docs", "d7"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("docs", "d7"); err == nil {
		t.Error("d7 still readable after routed delete")
	}
}

func TestRouterDDLFansOutToEveryShard(t *testing.T) {
	r := newTestRouter(t, 3)
	if err := r.CreateIndex("docs", "v"); err != nil {
		t.Fatal(err)
	}
	for s, st := range r.Stores() {
		idx, err := st.Indexes("docs")
		if err != nil || len(idx) != 1 || idx[0] != "v" {
			t.Errorf("shard %d indexes = %v, %v", s, idx, err)
		}
		if got := st.Tables(); len(got) != 1 || got[0] != "docs" {
			t.Errorf("shard %d tables = %v", s, got)
		}
	}
	if idx, err := r.Indexes("docs"); err != nil || len(idx) != 1 {
		t.Errorf("router Indexes = %v, %v", idx, err)
	}
}

func TestRouterScatterGatherMatchesSingleShard(t *testing.T) {
	sharded := newTestRouter(t, 4)
	single := newTestRouter(t, 1)
	for i := 0; i < 300; i++ {
		doc := document.New(fmt.Sprintf("d%03d", i), map[string]any{
			"v": int64(i % 17), "grp": fmt.Sprintf("g%d", i%5),
		})
		if err := sharded.Insert("docs", doc.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := single.Insert("docs", doc.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	queries := []*query.Query{
		query.New("docs", nil),
		query.New("docs", query.Eq("grp", "g2")),
		query.New("docs", query.Gte("v", int64(8))).Sorted(query.SortKey{Path: "v", Desc: true}),
		query.New("docs", nil).Sorted(query.SortKey{Path: "v"}).Sliced(10, 25),
		query.New("docs", query.Lt("v", int64(5))).Sliced(3, 7),
	}
	for _, q := range queries {
		want, err := single.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, plan, err := sharded.QueryPlanned(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d docs, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Version != want[i].Version {
				t.Fatalf("%s: row %d = %s/v%d, want %s/v%d", q, i, got[i].ID, got[i].Version, want[i].ID, want[i].Version)
			}
		}
		if len(got) > 0 && !strings.Contains(plan.Reason, "scatter-gather over 4 shards") {
			t.Errorf("%s: plan reason %q lacks scatter annotation", q, plan.Reason)
		}
		if plan.RowsReturned != len(got) {
			t.Errorf("%s: plan RowsReturned = %d, want %d", q, plan.RowsReturned, len(got))
		}
	}
}

func TestRouterExplainAnnotatesScatter(t *testing.T) {
	r := newTestRouter(t, 2)
	plan, err := r.Explain(query.New("docs", query.Eq("v", int64(1))))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Reason, "scatter-gather over 2 shards") {
		t.Errorf("Explain reason = %q", plan.Reason)
	}
}
