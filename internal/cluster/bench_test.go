package cluster_test

// Sharded write-path benchmark: parallel upserts through the router at
// 1 vs 4 shards. The per-shard commit pipelines are the whole point of
// the subsystem, so this is the smoke CI runs to catch a sharded write
// path that stops scaling (or stops working).

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"quaestor/internal/cluster"
	"quaestor/internal/document"
)

func BenchmarkShardedWrite(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := cluster.MustOpen(cluster.Options{Shards: shards})
			defer r.Close()
			if err := r.CreateTable("docs"); err != nil {
				b.Fatal(err)
			}
			var seed int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(atomic.AddInt64(&seed, 1)))
				for pb.Next() {
					id := fmt.Sprintf("k%06d", rng.Intn(1<<16))
					doc := document.New(id, map[string]any{"v": int64(rng.Intn(100))})
					if err := r.Put("docs", doc); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
