// Package commitlog is a fixture stand-in for quaestor/internal/commitlog:
// just enough surface for the analyzer fixtures to type-check. The
// analyzers identify the real package by path suffix, so this copy under
// testdata/src exercises the same code paths.
package commitlog

import "sync"

// Event is one committed change record.
type Event struct {
	Seq   uint64
	Table string
	ID    string
}

// Log is the subscriber ring. Append is the raw entry point the
// Sequencer exists to guard.
type Log struct {
	mu   sync.Mutex
	ring []Event
}

// Append places one event on the ring.
func (l *Log) Append(ev Event) {
	l.mu.Lock()
	l.ring = append(l.ring, ev)
	l.mu.Unlock()
}

// Sequencer restores global Seq order behind racing writers; its exported
// Publish* methods are the sanctioned publication surface.
type Sequencer struct {
	mu  sync.Mutex
	log *Log
}

// Publish hands one stamped event to the ordered pipeline.
func (s *Sequencer) Publish(ev Event) {
	s.mu.Lock()
	s.log.Append(ev)
	s.mu.Unlock()
}

// PublishAll publishes a batch in order.
func (s *Sequencer) PublishAll(evs []Event) {
	for _, ev := range evs {
		s.Publish(ev)
	}
}
