// Fixture for the lockio analyzer: I/O and blocking calls under the
// hot-path mutexes. Each violating function is paired with its fixed
// form, mirroring the historical bug and the shape the repo settled on.
package store

import (
	"net"
	"os"
	"sync"
	"time"
)

type shard struct {
	mu     sync.RWMutex
	snapMu sync.Mutex
	f      *os.File
}

// fsyncUnderLock is the historical bug shape: the fsync rides inside the
// shard critical section, stalling every writer behind disk latency.
func (s *shard) fsyncUnderLock() {
	s.mu.Lock()
	s.f.Sync() // want `fsync \(os\.File\.Sync\) while "s\.mu" is held`
	s.mu.Unlock()
}

// fsyncAfterUnlock is the fixed form: stamp under the lock, sync after.
func (s *shard) fsyncAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.f.Sync()
}

// deferHoldsToEnd: a deferred unlock keeps the region open to the end of
// the function, so the sleep is still under the lock.
func (s *shard) deferHoldsToEnd() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while "s\.mu" is held`
}

// guardClause: an early-return unlock must not clear the outer region —
// the fallthrough path still holds the lock.
func (s *shard) guardClause(bad bool) {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	conn, _ := net.Dial("tcp", "localhost:0") // want `network I/O \(net\.Dial\) while "s\.mu" is held`
	_ = conn
	s.mu.Unlock()
}

// readLockToo: RLock regions are tracked just like Lock.
func (s *shard) readLockToo() {
	s.mu.RLock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while "s\.mu" is held`
	s.mu.RUnlock()
}

// snapMuToo: the snapshot mutex is a tracked name as well.
func (s *shard) snapMuToo() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while "s\.snapMu" is held`
}

// blockingSend: a bare channel send under the lock can block forever
// behind a slow subscriber.
func (s *shard) blockingSend(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `blocking channel send while "s\.mu" is held`
	s.mu.Unlock()
}

// nonBlockingSend is exempt: a select with a default clause cannot block.
func (s *shard) nonBlockingSend(ch chan int) {
	s.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	s.mu.Unlock()
}

// goroutineIsSeparate: a function literal body is its own scope — the
// spawned goroutine does not inherit the caller's lock region.
func (s *shard) goroutineIsSeparate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// untrackedMutex: only the hot-path names (mu, snapMu) are tracked.
func untrackedMutex(statsMu *sync.Mutex) {
	statsMu.Lock()
	time.Sleep(time.Millisecond)
	statsMu.Unlock()
}
