// Fixture for //lint:quaestor suppression handling: a justified waiver
// silences its finding and records why; reasonless, stale, and
// wrong-analyzer waivers are findings of their own.
package store

import (
	"os"
	"sync"
	"time"
)

type snap struct {
	snapMu sync.Mutex
	f      *os.File
}

// justifiedSync: the waiver silences the fsync finding and records the
// justification for the audit listing.
func (s *snap) justifiedSync() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	//lint:quaestor lockio -- fixture: fsync must ride inside the snapshot critical section
	s.f.Sync()
}

// reasonlessWaiver: a waiver without a justification is malformed — it
// is reported and silences nothing.
func (s *snap) reasonlessWaiver() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	//lint:quaestor lockio // want `suppression comment has no justification`
	time.Sleep(time.Millisecond) // want `time\.Sleep while "s\.snapMu" is held`
}

// wrongAnalyzer: naming a different analyzer does not silence the
// finding (and the stale-waiver check skips analyzers that did not run).
func (s *snap) wrongAnalyzer() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	//lint:quaestor stalesentinel -- fixture: wrong analyzer name
	time.Sleep(time.Millisecond) // want `time\.Sleep while "s\.snapMu" is held`
}

// unusedWaiver: a well-formed waiver that silences nothing is stale.
func (s *snap) unusedWaiver() {
	//lint:quaestor lockio -- fixture: nothing here needs a waiver // want `silences no finding`
	s.f.Close()
}
