// Fixture for the ctxdeadline analyzer: outbound HTTP and dials in the
// node-to-node packages must be bounded by a Client.Timeout or a context
// deadline (PR 4's stalled-transfer bug).
package replication

import (
	"context"
	"net"
	"net/http"
	"time"
)

// noTimeoutClient is the PR 4 shape: a transfer client with no bound.
var noTimeoutClient = &http.Client{} // want `http\.Client constructed without a Timeout`

// boundedClient carries the discipline; the value is the caller's
// business, the presence is the invariant.
var boundedClient = &http.Client{Timeout: 5 * time.Second}

// defaultClient is banned: no timeout, shared global state.
func defaultClient() *http.Client {
	return http.DefaultClient // want `http\.DefaultClient has no Timeout`
}

// helperGet rides the DefaultClient too.
func helperGet(url string) {
	http.Get(url) // want `http\.Get uses the timeout-free DefaultClient`
}

// rawDial has no deadline.
func rawDial(addr string) {
	net.Dial("tcp", addr) // want `net\.Dial has no deadline`
}

// deadlineFreeRequest builds a request on a WithCancel context — cancel
// frees resources but never fires on its own, so the call can hang.
func deadlineFreeRequest(url string) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	http.NewRequestWithContext(ctx, http.MethodGet, url, nil) // want `request context "ctx" was built without a deadline`
}

// boundedRequest rebinds via WithTimeout — the fixed form.
func boundedRequest(url string) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}

// paramCtx is trusted: the caller owns the bound.
func paramCtx(ctx context.Context, url string) {
	http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}

// inlineBackground passes a deadline-free context inline.
func inlineBackground(url string) {
	http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil) // want `request context has no deadline`
}
