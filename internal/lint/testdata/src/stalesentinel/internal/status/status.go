// Fixture for the stalesentinel analyzer: StalenessMs == -1 means
// "unknown — never proven", and ordering comparisons that treat it as a
// magnitude rank unknown as freshest (the PR 9 aggregation bug).
package status

type shardStatus struct {
	StalenessMs float64
	LastSeq     uint64
}

// worstUnguarded is the pre-PR-9 fold: min() across shards reports an
// unbounded replica as perfectly fresh.
func worstUnguarded(a, b shardStatus) float64 {
	return min(a.StalenessMs, b.StalenessMs) // want `min fold on a\.StalenessMs` `min fold on b\.StalenessMs`
}

// guardedFold is the fixed aggregation: fold only proven bounds.
func guardedFold(a, b shardStatus) float64 {
	if a.StalenessMs < 0 || b.StalenessMs < 0 {
		return -1
	}
	return max(a.StalenessMs, b.StalenessMs)
}

// compareUnguarded ranks unknown as freshest — both operands lack a
// dominating sentinel guard.
func compareUnguarded(a, b shardStatus) bool {
	return a.StalenessMs < b.StalenessMs // want `numeric comparison on a\.StalenessMs` `numeric comparison on b\.StalenessMs`
}

// compareGuarded is the compliant shape (replication.go's bestEndpoint):
// explicit sentinel checks dominate the ordering comparison.
func compareGuarded(cur, st shardStatus) bool {
	if cur.StalenessMs < 0 {
		return true
	}
	if st.StalenessMs < 0 {
		return false
	}
	return cur.StalenessMs > st.StalenessMs
}

// guardInOr: the one-expression guarded form also counts — the guards
// lexically precede the comparison.
func guardInOr(cur, st shardStatus) bool {
	return cur.StalenessMs < 0 || (st.StalenessMs >= 0 && cur.StalenessMs > st.StalenessMs)
}

// localVar: plain variables named stalenessMs obey the same rule.
func localVar(stalenessMs, bound float64) bool {
	return stalenessMs > bound // want `numeric comparison on stalenessMs`
}

// equalityIsFine: equality against a non-constant is not an ordering
// comparison — it cannot rank unknown.
func equalityIsFine(a, b shardStatus) bool {
	return a.StalenessMs == b.StalenessMs
}

// otherFieldsAreFine: the rule keys on the staleness names only.
func otherFieldsAreFine(a, b shardStatus) bool {
	return a.LastSeq > b.LastSeq
}
