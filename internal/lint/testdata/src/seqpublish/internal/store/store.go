// Fixture for the seqpublish analyzer: the commit-pipeline publication
// contract. Committed events reach subscribers only through the
// Sequencer's exported APIs; the violating shapes are the pre-PR-3
// ordering bugs.
package store

import (
	"sync"

	"internal/commitlog"
)

// ChangeEvent aliases the commitlog event like the real store does; the
// analyzer sees through the alias.
type ChangeEvent = commitlog.Event

type Store struct {
	mu   sync.Mutex
	log  *commitlog.Log
	seqr *commitlog.Sequencer
	subs chan commitlog.Event
}

// directAppend is the raw ring append the Sequencer exists to guard:
// racing writers reach it with their Seqs swapped.
func (s *Store) directAppend(ev commitlog.Event) {
	s.log.Append(ev) // want `direct commitlog\.Log\.Append bypasses the Sequencer`
}

// rawSend feeds a subscriber channel directly instead of letting the
// Log's pump goroutines deliver.
func (s *Store) rawSend(ev ChangeEvent) {
	s.subs <- ev // want `raw channel send of commit-pipeline events`
}

// unlockThenPublish is the PR 3 race: two writers can release their
// shard locks and fan out in swapped order.
func (s *Store) unlockThenPublish(ev commitlog.Event) {
	s.mu.Lock()
	ev.Seq = 1
	s.mu.Unlock()
	s.publish(ev) // want `publish-style call after unlocking a shard/snapshot mutex`
}

func (s *Store) publish(ev commitlog.Event) {}

// sequencerPublish is the sanctioned path: stamp under the lock, hand
// the event to the Sequencer after — it restores global order.
func (s *Store) sequencerPublish(ev commitlog.Event) {
	s.mu.Lock()
	ev.Seq = 2
	s.mu.Unlock()
	s.seqr.Publish(ev)
}

// batchViaSequencer: the batch variant is sanctioned too.
func (s *Store) batchViaSequencer(evs []commitlog.Event) {
	s.mu.Lock()
	s.mu.Unlock()
	s.seqr.PublishAll(evs)
}

// publishBeforeUnlock: a local fan-out before any unlock is not the
// post-unlock race (lockio owns what happens inside the region).
func (s *Store) publishBeforeUnlock(ev commitlog.Event) {
	s.publish(ev)
	s.mu.Lock()
	s.mu.Unlock()
}
