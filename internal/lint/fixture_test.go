package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: each fixture package
// under testdata/src pairs violating shapes with their fixed forms, and
// `// want` comments assert the expected diagnostics by line. A want
// comment carries one backtick-quoted regexp per expected diagnostic on
// that line; the regexp is matched (unanchored) against
// "[analyzer] message".
var fixtureCases = []struct {
	importPath string
	analyzers  []*Analyzer
}{
	{"lockio/internal/store", []*Analyzer{LockIO}},
	{"seqpublish/internal/store", []*Analyzer{SeqPublish}},
	{"stalesentinel/internal/status", []*Analyzer{StaleSentinel}},
	{"ctxdeadline/internal/replication", []*Analyzer{CtxDeadline}},
	{"suppress/internal/store", []*Analyzer{LockIO}},
}

func TestFixtures(t *testing.T) {
	loader, err := NewLoader()
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureCases {
		t.Run(strings.ReplaceAll(tc.importPath, "/", "_"), func(t *testing.T) {
			pkg, err := loader.LoadFixture(root, tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := Run(pkg, tc.analyzers)
			if err != nil {
				t.Fatal(err)
			}
			wants := parseWants(pkg)
			for _, d := range diags {
				k := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
				if !matchWant(wants, k, "["+d.Analyzer+"] "+d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for k, res := range wants {
				for _, re := range res {
					t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re)
				}
			}
		})
	}
}

// TestSuppressionsRecorded asserts the audit surface: a justified waiver
// is listed with its analyzer and reason.
func TestSuppressionsRecorded(t *testing.T) {
	loader, err := NewLoader()
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadFixture(root, "suppress/internal/store")
	if err != nil {
		t.Fatal(err)
	}
	sups := Suppressions(pkg)
	if len(sups) != 4 {
		t.Fatalf("got %d suppressions, want 4", len(sups))
	}
	var justified *Suppression
	for i := range sups {
		if strings.Contains(sups[i].Reason, "snapshot critical section") {
			justified = &sups[i]
		}
	}
	if justified == nil {
		t.Fatal("justified waiver not found in audit listing")
	}
	if len(justified.Analyzers) != 1 || justified.Analyzers[0] != "lockio" {
		t.Errorf("justified waiver analyzers = %v, want [lockio]", justified.Analyzers)
	}
	if justified.Reason != "fixture: fsync must ride inside the snapshot critical section" {
		t.Errorf("justified waiver reason = %q", justified.Reason)
	}
}

// TestLiveTreeClean runs the full suite over the real module: every
// invariant holds (or carries a justified waiver). Skipped under -short —
// it type-checks the whole tree.
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree type-check: skipped in -short")
	}
	loader, err := NewLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := GoList("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range pkgs {
		pkg, err := loader.LoadDir(lp.Dir, lp.ImportPath)
		if err != nil {
			t.Fatalf("load %s: %v", lp.ImportPath, err)
		}
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("`([^`]+)`")

// parseWants extracts `// want` expectations from a package's comments,
// keyed by file:line.
func parseWants(pkg *Package) map[wantKey][]string {
	out := map[wantKey][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{file: pos.Filename, line: pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					out[k] = append(out[k], m[1])
				}
			}
		}
	}
	return out
}

// matchWant consumes the first expectation on k's line matching text.
func matchWant(wants map[wantKey][]string, k wantKey, text string) bool {
	for i, re := range wants[k] {
		ok, err := regexp.MatchString(re, text)
		if err != nil {
			panic(fmt.Sprintf("bad want regexp %q: %v", re, err))
		}
		if ok {
			wants[k] = append(wants[k][:i], wants[k][i+1:]...)
			if len(wants[k]) == 0 {
				delete(wants, k)
			}
			return true
		}
	}
	return false
}
