// Package lint is quaestor's project-invariant analyzer suite: a small
// go/analysis-style framework plus four analyzers that encode invariants
// this codebase has already been burned by (see README "Static
// analysis"). The framework is hand-rolled on the standard library's
// go/ast + go/types instead of golang.org/x/tools/go/analysis so the
// module stays dependency-free and the checker builds hermetically; the
// Analyzer/Pass surface mirrors x/tools closely enough that migrating to
// the real multichecker later is mechanical.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:quaestor suppression comments.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// ends with one of these suffixes (segment-aligned: "internal/store"
	// matches "quaestor/internal/store" but not "x/notinternal/store").
	// Empty means every package.
	Packages []string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// applies reports whether the analyzer should run on a package path.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, suf := range a.Packages {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves an expression's type (nil when unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier's object (nil when unknown).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// Run executes the analyzers that apply to pkg, filters suppressed
// findings, and returns the surviving diagnostics sorted by position.
// Suppressions that name no analyzer or carry no justification are
// themselves reported as findings, and so is a well-formed suppression
// that silences nothing (checked only when every analyzer it names
// actually ran, so partial `-only` runs don't cry stale): a reasonless
// or stale escape hatch is a bug of its own.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		if !a.applies(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	sups := collectSuppressions(pkg)
	used := make([]bool, len(sups))
	kept := diags[:0]
	for _, d := range diags {
		if i := suppressedBy(sups, d); i >= 0 {
			used[i] = true
		} else {
			kept = append(kept, d)
		}
	}
	diags = kept
	for i, s := range sups {
		if s.malformed != "" {
			diags = append(diags, Diagnostic{
				Analyzer: "suppression",
				Pos:      s.pos,
				Message:  s.malformed,
			})
			continue
		}
		if used[i] {
			continue
		}
		checkable := true
		for _, n := range s.Analyzers {
			if !ran[n] {
				checkable = false
			}
		}
		if checkable {
			diags = append(diags, Diagnostic{
				Analyzer: "suppression",
				Pos:      s.pos,
				Message:  "suppression silences no finding — stale waivers hide future regressions; remove it or re-point it at the offending line",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return diags, nil
}

// Suppression is one parsed //lint:quaestor comment. The accepted form is
//
//	//lint:quaestor <analyzer>[,<analyzer>...] -- <justification>
//
// and it silences the named analyzers' findings on the same line or on
// the line directly below (comment-above style). The justification is
// mandatory: the comment records *why* the invariant is waived here.
type Suppression struct {
	Analyzers []string
	Reason    string
	File      string
	Line      int

	pos       token.Position
	malformed string
}

const suppressPrefix = "//lint:quaestor"

// Suppressions returns the parsed //lint:quaestor comments of a package,
// for tooling and tests that audit recorded waivers.
func Suppressions(pkg *Package) []Suppression {
	return collectSuppressions(pkg)
}

func collectSuppressions(pkg *Package) []Suppression {
	var out []Suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s := Suppression{File: pos.Filename, Line: pos.Line, pos: pos}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, suppressPrefix))
				names, reason, ok := strings.Cut(rest, "--")
				reason = strings.TrimSpace(reason)
				if !ok || reason == "" {
					s.malformed = "suppression comment has no justification (want `//lint:quaestor <analyzer> -- <reason>`)"
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						s.Analyzers = append(s.Analyzers, n)
					}
				}
				if len(s.Analyzers) == 0 && s.malformed == "" {
					s.malformed = "suppression comment names no analyzer (want `//lint:quaestor <analyzer> -- <reason>`)"
				}
				s.Reason = reason
				out = append(out, s)
			}
		}
	}
	return out
}

// suppressedBy returns the index of the first suppression silencing d,
// or -1.
func suppressedBy(sups []Suppression, d Diagnostic) int {
	for i, s := range sups {
		if s.malformed != "" || s.File != d.Pos.Filename {
			continue
		}
		if s.Line != d.Pos.Line && s.Line != d.Pos.Line-1 {
			continue
		}
		for _, n := range s.Analyzers {
			if n == d.Analyzer {
				return i
			}
		}
	}
	return -1
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{LockIO, StaleSentinel, SeqPublish, CtxDeadline}
}
