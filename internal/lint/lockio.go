package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockIO flags fsync, network I/O, sleeps, and blocking channel sends
// performed while one of the hot-path mutexes is held: shard mutexes and
// the store mutex (named "mu"), the snapshot mutex ("snapMu"), and the
// sequencer/commit-log mutexes (also "mu"). This is the PR 3/PR 4 bug
// class: an unlock-then-publish race was fixed by moving publication
// under sequencer control, and a stalled replica once wedged the primary
// write path by blocking a transfer while snapMu was held.
//
// The analysis is intraprocedural and syntactic about lock regions: a
// region opens at X.Lock()/X.RLock() and closes at the matching
// X.Unlock()/X.RUnlock(); defer X.Unlock() holds the region to the end
// of the function; an unlock inside a terminating guard clause (early
// return) does not close the outer region. Calls into other functions
// are opaque — the committer's fsync under the WAL mutex, for example,
// lives in internal/wal, which owns its own locking discipline and is
// deliberately out of scope.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc: "no fsync, network I/O, time.Sleep, or blocking channel send while a " +
		"shard mutex, snapMu, or the sequencer mutex is held",
	Packages: []string{"internal/store", "internal/commitlog", "internal/cluster"},
	Run:      runLockIO,
}

// lockIOMutexNames are the field names treated as hot-path mutexes.
var lockIOMutexNames = map[string]bool{"mu": true, "snapMu": true}

type lockRegion struct {
	key      string // mutex expression text, e.g. "sh.mu"
	rlock    bool
	deferred bool // released by defer: held to end of function
}

type lockState map[string]*lockRegion

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func runLockIO(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			walkLockStmts(pass, body.List, lockState{})
		})
	}
	return nil
}

// walkLockStmts interprets a statement list, tracking held mutexes, and
// reports whether the list always terminates (return/branch/panic).
func walkLockStmts(pass *Pass, stmts []ast.Stmt, st lockState) bool {
	for _, s := range stmts {
		if walkLockStmt(pass, s, st) {
			return true
		}
	}
	return false
}

func walkLockStmt(pass *Pass, stmt ast.Stmt, st lockState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if handleLockOp(pass, s.X, st, false) {
			return false
		}
		checkLockSinks(pass, s.X, st)
	case *ast.DeferStmt:
		if handleLockOp(pass, s.Call, st, true) {
			return false
		}
		// The deferred call itself runs at function exit with unknown
		// lock state; only its argument expressions evaluate now.
		for _, arg := range s.Call.Args {
			checkLockSinks(pass, arg, st)
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			checkLockSinks(pass, arg, st)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkLockSinks(pass, r, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.SendStmt:
		checkLockSinks(pass, s.Chan, st)
		checkLockSinks(pass, s.Value, st)
		reportSend(pass, s, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			checkLockSinks(pass, e, st)
		}
		for _, e := range s.Lhs {
			checkLockSinks(pass, e, st)
		}
	case *ast.DeclStmt:
		checkLockSinks(pass, s, st)
	case *ast.IncDecStmt:
		checkLockSinks(pass, s.X, st)
	case *ast.LabeledStmt:
		return walkLockStmt(pass, s.Stmt, st)
	case *ast.BlockStmt:
		return walkLockStmts(pass, s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, st)
		}
		checkLockSinks(pass, s.Cond, st)
		stThen := st.clone()
		termThen := walkLockStmts(pass, s.Body.List, stThen)
		stElse := st.clone()
		termElse := false
		if s.Else != nil {
			termElse = walkLockStmt(pass, s.Else, stElse)
		}
		switch {
		case termThen && termElse:
			return true
		case termThen:
			adopt(st, stElse)
		default:
			// Else-terminates or straight-line: the then-branch state
			// flows on (approximation: divergent non-terminating
			// branches adopt the then-branch).
			adopt(st, stThen)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, st)
		}
		if s.Cond != nil {
			checkLockSinks(pass, s.Cond, st)
		}
		stBody := st.clone()
		if !walkLockStmts(pass, s.Body.List, stBody) {
			adopt(st, stBody)
		}
	case *ast.RangeStmt:
		checkLockSinks(pass, s.X, st)
		stBody := st.clone()
		if !walkLockStmts(pass, s.Body.List, stBody) {
			adopt(st, stBody)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, st)
		}
		if s.Tag != nil {
			checkLockSinks(pass, s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		blocking := selectCanBlockForever(s)
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && blocking {
				reportSend(pass, send, st)
			}
			walkLockStmts(pass, cc.Body, st.clone())
		}
	}
	return false
}

// adopt replaces dst's contents with src's.
func adopt(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// selectCanBlockForever: a select with a default clause (or more than
// one communication to race) has an escape; only a single-case select
// without default is as blocking as a bare send.
func selectCanBlockForever(s *ast.SelectStmt) bool {
	comms := 0
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return false // default clause
		}
		comms++
	}
	return comms <= 1
}

// handleLockOp recognizes X.Lock/RLock/Unlock/RUnlock on a tracked mutex
// and updates the state. Returns true when the expression was a lock op.
func handleLockOp(pass *Pass, e ast.Expr, st lockState, deferred bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
		return false
	}
	if !isTrackedMutex(pass, sel.X) {
		return false
	}
	key := types.ExprString(sel.X)
	switch op {
	case "Lock", "RLock":
		if !deferred {
			st[key] = &lockRegion{key: key, rlock: op == "RLock"}
		}
	case "Unlock", "RUnlock":
		if deferred {
			if r, ok := st[key]; ok {
				r.deferred = true
			}
		} else {
			delete(st, key)
		}
	}
	return true
}

// isTrackedMutex reports whether e names a sync.Mutex/RWMutex field or
// variable with one of the tracked names.
func isTrackedMutex(pass *Pass, e ast.Expr) bool {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	if !lockIOMutexNames[name] {
		return false
	}
	tn, tp := namedType(pass, e)
	return tp == "sync" && (tn == "Mutex" || tn == "RWMutex")
}

// checkLockSinks walks an expression (not descending into function
// literals) and reports deny-listed call sinks when any mutex is held.
func checkLockSinks(pass *Pass, n ast.Node, st lockState) {
	if len(st) == 0 || n == nil {
		return
	}
	inspectShallow(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind := sinkKind(resolveCallee(pass, call)); kind != "" {
			pass.Reportf(call.Pos(), "%s while %s is held — no I/O or blocking calls under shard, snapshot, or sequencer locks", kind, heldList(st))
		}
		return true
	})
}

func reportSend(pass *Pass, s *ast.SendStmt, st lockState) {
	if len(st) == 0 {
		return
	}
	pass.Reportf(s.Arrow, "blocking channel send while %s is held — deliver via the pipeline's pump goroutines outside the lock", heldList(st))
}

func heldList(st lockState) string {
	var keys []string
	for k := range st {
		keys = append(keys, k)
	}
	if len(keys) == 1 {
		return "\"" + keys[0] + "\""
	}
	// Deterministic order for stable diagnostics.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return "\"" + strings.Join(keys, "\", \"") + "\""
}

// sinkKind classifies a resolved callee as a deny-listed sink.
func sinkKind(ci calleeInfo) string {
	switch {
	case ci.pkgPath == "os" && ci.recv == "File" && ci.name == "Sync":
		return "fsync (os.File.Sync)"
	case ci.pkgPath == "net" && (strings.HasPrefix(ci.name, "Dial") || strings.HasPrefix(ci.name, "Listen")):
		return "network I/O (net." + ci.name + ")"
	case ci.pkgPath == "net" && ci.recv != "" && (ci.name == "Read" || ci.name == "Write"):
		return "network I/O (net." + ci.recv + "." + ci.name + ")"
	case ci.pkgPath == "net/http" && ci.recv == "Client" &&
		(ci.name == "Do" || ci.name == "Get" || ci.name == "Post" || ci.name == "Head" || ci.name == "PostForm"):
		return "network I/O (http.Client." + ci.name + ")"
	case ci.pkgPath == "net/http" && ci.recv == "" &&
		(ci.name == "Get" || ci.name == "Post" || ci.name == "Head" || ci.name == "PostForm"):
		return "network I/O (http." + ci.name + ")"
	case ci.pkgPath == "net/http" && ci.recv == "ResponseWriter" && ci.name == "Write":
		return "network I/O (http.ResponseWriter.Write)"
	case ci.pkgPath == "time" && ci.name == "Sleep":
		return "time.Sleep"
	}
	return ""
}
