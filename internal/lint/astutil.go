package lint

import (
	"go/ast"
	"go/types"
)

// calleeInfo describes a call's resolved target.
type calleeInfo struct {
	obj     types.Object // declared func/method, nil for dynamic calls
	pkgPath string       // defining package path ("" for builtins/dynamic)
	name    string       // function or method name
	recv    string       // receiver named-type name ("" for plain funcs)
	recvPkg string       // receiver type's package path
	dynamic bool         // callee is a func-typed value (field, var, param)
	builtin bool
}

// resolveCallee classifies a call expression using type information.
func resolveCallee(pass *Pass, call *ast.CallExpr) calleeInfo {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pass.ObjectOf(f).(type) {
		case *types.Func:
			return funcInfo(obj)
		case *types.Builtin:
			return calleeInfo{name: obj.Name(), builtin: true}
		case *types.Var:
			return calleeInfo{name: f.Name, dynamic: true}
		case *types.TypeName:
			return calleeInfo{} // conversion
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[f]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				return funcInfo(obj)
			case *types.Var:
				return calleeInfo{name: f.Sel.Name, dynamic: true}
			}
			return calleeInfo{}
		}
		// Qualified identifier: pkg.Func, pkg.Var, or a conversion.
		switch obj := pass.ObjectOf(f.Sel).(type) {
		case *types.Func:
			return funcInfo(obj)
		case *types.Var:
			return calleeInfo{name: f.Sel.Name, dynamic: true}
		}
	}
	return calleeInfo{dynamic: true}
}

// funcInfo extracts package, name, and receiver identity from a declared
// function or method.
func funcInfo(fn *types.Func) calleeInfo {
	ci := calleeInfo{obj: fn, name: fn.Name()}
	if pkg := fn.Pkg(); pkg != nil {
		ci.pkgPath = pkg.Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ci
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	switch t := rt.(type) {
	case *types.Named:
		ci.recv = t.Obj().Name()
		if pkg := t.Obj().Pkg(); pkg != nil {
			ci.recvPkg = pkg.Path()
		}
	case *types.Interface:
		// Interface method: identity comes from the method's package.
		ci.recvPkg = ci.pkgPath
	}
	return ci
}

// namedType returns the named-type name and package path of an
// expression's (pointer-dereferenced) type, or "","" when unnamed.
func namedType(pass *Pass, e ast.Expr) (name, pkgPath string) {
	t := pass.TypeOf(e)
	return namedOf(t)
}

func namedOf(t types.Type) (name, pkgPath string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	if pkg := n.Obj().Pkg(); pkg != nil {
		pkgPath = pkg.Path()
	}
	return n.Obj().Name(), pkgPath
}

// funcBodies yields every function scope in a file: each top-level
// FuncDecl body plus each FuncLit body, so lock regions and guards never
// leak across goroutine or callback boundaries by accident.
func funcBodies(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(fd.Name.Name+":func-literal", lit.Body)
			}
			return true
		})
	}
}

// inspectShallow walks n but does not descend into nested function
// literals — their bodies are separate scopes.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}
