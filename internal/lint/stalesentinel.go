package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// StaleSentinel enforces the staleness-sentinel discipline: StalenessMs
// uses -1 to mean "unknown — the replica has never proven a bound", and
// a numeric comparison that treats it as a plain magnitude ranks unknown
// as *freshest* (-1 < every real bound). That is the PR 9 bug class: the
// pre-PR-9 status aggregation folded `min(StalenessMs)` across shards
// and reported an unbounded replica as perfectly fresh.
//
// The rule: every ordering comparison (<, >, <=, >=, and min/max folds)
// on a field or variable named StalenessMs/stalenessMs/Staleness must be
// dominated by an explicit sentinel guard — a comparison of the same
// expression against a non-positive constant (`< 0`, `>= 0`, `== -1`)
// appearing earlier in the same top-level function. Comparisons against
// non-positive constants are themselves guards, never findings.
// Domination is approximated lexically (the guard precedes the use in
// the same function declaration), which accepts every guarded shape in
// this codebase — `cur.StalenessMs < 0 || (st.StalenessMs >= 0 &&
// cur.StalenessMs > st.StalenessMs)` — while still catching the
// unguarded fold.
var StaleSentinel = &Analyzer{
	Name: "stalesentinel",
	Doc: "ordering comparisons on StalenessMs must be dominated by an " +
		"explicit < 0 / == -1 sentinel guard in the same function",
	Run: runStaleSentinel,
}

var stalenessNames = map[string]bool{
	"StalenessMs": true,
	"stalenessMs": true,
	"Staleness":   true,
}

func runStaleSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkStaleFunc(pass, fd.Body)
		}
	}
	return nil
}

// stalenessExpr reports whether e names a staleness field or variable,
// returning its canonical text for guard matching.
func stalenessExpr(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if stalenessNames[x.Name] {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if stalenessNames[x.Sel.Name] {
			return types.ExprString(x), true
		}
	}
	return "", false
}

// nonPositiveConst reports whether e is a constant numeric expression
// with value <= 0 (the sentinel guard's comparand: 0 or -1).
func nonPositiveConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f <= 0
}

func isOrderingOp(op token.Token) bool {
	return op == token.LSS || op == token.GTR || op == token.LEQ || op == token.GEQ
}

func isComparisonOp(op token.Token) bool {
	return isOrderingOp(op) || op == token.EQL || op == token.NEQ
}

func checkStaleFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: collect sentinel guards (staleness expr vs non-positive
	// constant) with their positions. Guards inside nested function
	// literals count for the whole declaration: a comparator literal's
	// own guard and a guard in the enclosing function are both
	// legitimate dominators at this approximation level.
	type guard struct {
		text string
		pos  token.Pos
	}
	var guards []guard
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparisonOp(be.Op) {
			return true
		}
		if text, ok := stalenessExpr(be.X); ok && nonPositiveConst(pass, be.Y) {
			guards = append(guards, guard{text: text, pos: be.Pos()})
		}
		if text, ok := stalenessExpr(be.Y); ok && nonPositiveConst(pass, be.X) {
			guards = append(guards, guard{text: text, pos: be.Pos()})
		}
		return true
	})
	dominated := func(text string, pos token.Pos) bool {
		for _, g := range guards {
			if g.text == text && g.pos < pos {
				return true
			}
		}
		return false
	}
	requireGuard := func(e ast.Expr, pos token.Pos, what string) {
		text, ok := stalenessExpr(e)
		if !ok {
			return
		}
		if !dominated(text, pos) {
			pass.Reportf(pos, "%s on %s without a preceding `< 0` / `== -1` sentinel guard in this function — StalenessMs == -1 means unknown, and unknown must not rank as freshest", what, text)
		}
	}

	// Pass 2: flag undominated ordering comparisons and min/max folds.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if !isOrderingOp(x.Op) {
				return true
			}
			// A guard is never a finding.
			if _, ok := stalenessExpr(x.X); ok && nonPositiveConst(pass, x.Y) {
				return true
			}
			if _, ok := stalenessExpr(x.Y); ok && nonPositiveConst(pass, x.X) {
				return true
			}
			requireGuard(x.X, x.Pos(), "numeric comparison")
			requireGuard(x.Y, x.Pos(), "numeric comparison")
		case *ast.CallExpr:
			ci := resolveCallee(pass, x)
			isFold := (ci.builtin && (ci.name == "min" || ci.name == "max")) ||
				(ci.pkgPath == "math" && (ci.name == "Min" || ci.name == "Max"))
			if !isFold {
				return true
			}
			for _, arg := range x.Args {
				requireGuard(arg, x.Pos(), ci.name+" fold")
			}
		}
		return true
	})
}
