package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeqPublish enforces the commit-pipeline publication contract in
// internal/store and internal/cluster: committed events reach
// subscribers only through the Sequencer's exported APIs (Publish,
// PublishAll, PublishBatch, PublishSynthetic), which restore strict
// global Seq order behind racing writers. Three shapes violate it:
//
//  1. a direct (*commitlog.Log).Append — the raw ring append the
//     Sequencer exists to guard; racing writers reach it with their
//     Seqs swapped (the pre-PR-3 ordering bug);
//  2. a raw channel send of commitlog events — subscribers are fed by
//     the Log's per-subscriber pump goroutines, never by producers;
//  3. a publish/emit/notify-style call made after a shard or snapshot
//     mutex was explicitly unlocked, unless it targets the Sequencer or
//     Log — the PR 3 unlock-then-publish race, where two writers could
//     release their shard locks and publish in swapped order.
var SeqPublish = &Analyzer{
	Name: "seqpublish",
	Doc: "commit-pipeline events may only be published through Sequencer/commitlog " +
		"exported APIs, never by direct ring append or post-unlock publish",
	Packages: []string{"internal/store", "internal/cluster"},
	Run:      runSeqPublish,
}

// commitlogPkg reports whether a package path is the commit-log package
// (real tree or fixture).
func commitlogPkg(path string) bool {
	return path == "internal/commitlog" || strings.HasSuffix(path, "/internal/commitlog")
}

// isCommitlogEventType reports whether t is (a slice/pointer of) the
// commitlog Event type, through aliases like store.ChangeEvent.
func isCommitlogEventType(t types.Type) bool {
	switch x := t.(type) {
	case *types.Slice:
		return isCommitlogEventType(x.Elem())
	case *types.Pointer:
		return isCommitlogEventType(x.Elem())
	case *types.Named:
		if pkg := x.Obj().Pkg(); pkg != nil && commitlogPkg(pkg.Path()) && x.Obj().Name() == "Event" {
			return true
		}
	}
	return false
}

func runSeqPublish(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkSeqPublishScope(pass, body)
		})
	}
	return nil
}

func checkSeqPublishScope(pass *Pass, body *ast.BlockStmt) {
	// unlockedAt records the position of the first explicit (non-defer)
	// Unlock of a tracked mutex in this scope; publishes after it are
	// suspect.
	var unlockedAt token.Pos
	inspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			return false // deferred unlocks close the region at exit, not here
		case *ast.SendStmt:
			t := pass.TypeOf(x.Chan)
			if ch, ok := t.(*types.Chan); ok && isCommitlogEventType(ch.Elem()) {
				pass.Reportf(x.Arrow, "raw channel send of commit-pipeline events — subscribers are fed by the Log's pump goroutines; hand events to the Sequencer instead")
			}
		case *ast.CallExpr:
			ci := resolveCallee(pass, x)
			switch {
			case ci.recv == "Log" && commitlogPkg(ci.recvPkg) && ci.name == "Append":
				pass.Reportf(x.Pos(), "direct commitlog.Log.Append bypasses the Sequencer's ordering guarantee — publish through Sequencer.Publish/PublishAll/PublishBatch/PublishSynthetic")
			case isUnlockOf(pass, x, lockIOMutexNames):
				if unlockedAt == token.NoPos {
					unlockedAt = x.Pos()
				}
			case unlockedAt != token.NoPos && x.Pos() > unlockedAt && isPublishLike(ci):
				if ci.recv == "Sequencer" && commitlogPkg(ci.recvPkg) {
					break // the sanctioned path: the Sequencer restores order
				}
				if ci.recv == "Log" && commitlogPkg(ci.recvPkg) {
					break // already reported above if it was Append
				}
				pass.Reportf(x.Pos(), "publish-style call after unlocking a shard/snapshot mutex — racing writers can publish in swapped order; stamp under the lock and hand the event to the Sequencer")
			}
		}
		return true
	})
}

// isUnlockOf recognizes X.Unlock()/X.RUnlock() on a tracked mutex.
func isUnlockOf(pass *Pass, call *ast.CallExpr, names map[string]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	var name string
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	if !names[name] {
		return false
	}
	tn, tp := namedType(pass, sel.X)
	return tp == "sync" && (tn == "Mutex" || tn == "RWMutex")
}

// isPublishLike matches method names that smell like subscriber fan-out.
func isPublishLike(ci calleeInfo) bool {
	n := strings.ToLower(ci.name)
	switch n {
	case "publish", "publishall", "publishbatch", "publishsynthetic",
		"emit", "notify", "fanout", "broadcastevent":
		return true
	}
	return false
}
