package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CtxDeadline enforces outbound-call deadline discipline in the packages
// that talk to other nodes: internal/replication, internal/coordinator,
// and internal/client. PR 4's review fix is the motivating bug: a
// stalled replica wedged the primary because a transfer had no deadline.
// Generalized, every outbound http.Client call and net.Dial must be
// bounded — by a non-zero Client.Timeout or by a context deadline.
//
// Rules:
//
//  1. every http.Client composite literal must set Timeout (any value —
//     the configuration is the caller's business, the *presence* is the
//     discipline); deliberately unbounded clients (long-lived
//     replication streams) carry a //lint:quaestor justification;
//  2. http.DefaultClient (and the package-level http.Get/Post/Head
//     helpers that use it) is banned: it has no timeout and is shared
//     mutable global state;
//  3. net.Dial is banned — use net.DialTimeout or a net.Dialer driven
//     by a deadline-carrying context;
//  4. a request context built in-function from context.Background(),
//     context.TODO(), or context.WithCancel of those is deadline-free:
//     passing it to http.NewRequestWithContext is a finding unless the
//     variable was rebound via WithTimeout/WithDeadline first. Contexts
//     received as parameters are trusted (the caller owns the bound).
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc: "outbound HTTP calls and dials in replication/coordinator/client " +
		"must carry a context deadline or a non-zero http.Client Timeout",
	Packages: []string{"internal/replication", "internal/coordinator", "internal/client"},
	Run:      runCtxDeadline,
}

func runCtxDeadline(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				checkClientLit(pass, x)
			case *ast.SelectorExpr:
				if isPkgObject(pass, x, "net/http", "DefaultClient") {
					pass.Reportf(x.Pos(), "http.DefaultClient has no Timeout (and is shared global state) — construct a client with an explicit Timeout or per-request deadlines")
				}
			case *ast.CallExpr:
				ci := resolveCallee(pass, x)
				if ci.pkgPath == "net/http" && ci.recv == "" &&
					(ci.name == "Get" || ci.name == "Post" || ci.name == "Head" || ci.name == "PostForm") {
					pass.Reportf(x.Pos(), "http.%s uses the timeout-free DefaultClient — build a request on a client with a Timeout or a deadline context", ci.name)
				}
				if ci.pkgPath == "net" && ci.recv == "" && ci.name == "Dial" {
					pass.Reportf(x.Pos(), "net.Dial has no deadline — use net.DialTimeout or a net.Dialer with DialContext and a deadline-carrying context")
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxFlow(pass, fd)
			}
		}
	}
	return nil
}

// checkClientLit flags http.Client{...} literals without a Timeout key.
func checkClientLit(pass *Pass, lit *ast.CompositeLit) {
	name, pkg := namedOf(pass.TypeOf(lit))
	if pkg != "net/http" || name != "Client" {
		return
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Timeout" {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(), "http.Client constructed without a Timeout — outbound calls must be bounded by Client.Timeout or per-request context deadlines")
}

// isPkgObject reports whether sel is a qualified reference to
// pkgPath.objName.
func isPkgObject(pass *Pass, sel *ast.SelectorExpr, pkgPath, objName string) bool {
	if sel.Sel.Name != objName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// ctxEvent is one position-ordered fact about context flow in a function.
type ctxEvent struct {
	pos token.Pos
	// assign: obj rebound to a deadline-free (or -ful) context
	assign       types.Object
	deadlineFree bool
	// use: NewRequestWithContext with this ctx argument
	use     *ast.CallExpr
	ctxArg  ast.Expr
	isUse   bool
	isAssig bool
}

// checkCtxFlow tracks, per function, which context variables are
// provably deadline-free and flags requests built on them.
func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	var events []ctxEvent
	inspectShallow(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// ctx, cancel := context.WithCancel(...) / WithTimeout(...)
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			class, known := ctxConstructorClass(pass, call)
			if !known || len(x.Lhs) == 0 {
				return true
			}
			if id, ok := x.Lhs[0].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					events = append(events, ctxEvent{pos: x.Pos(), assign: obj, deadlineFree: class, isAssig: true})
				}
			}
		case *ast.CallExpr:
			ci := resolveCallee(pass, x)
			if ci.pkgPath == "net/http" && ci.recv == "" && ci.name == "NewRequestWithContext" && len(x.Args) > 0 {
				events = append(events, ctxEvent{pos: x.Pos(), use: x, ctxArg: x.Args[0], isUse: true})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	free := map[types.Object]bool{}
	for _, ev := range events {
		if ev.isAssig {
			free[ev.assign] = ev.deadlineFree
			continue
		}
		arg := ast.Unparen(ev.ctxArg)
		// Inline context.Background()/TODO()/WithCancel(...)
		if call, ok := arg.(*ast.CallExpr); ok {
			if df, known := ctxConstructorClass(pass, call); known && df {
				pass.Reportf(ev.use.Pos(), "request context has no deadline — wrap with context.WithTimeout/WithDeadline (or justify with //lint:quaestor)")
			}
			continue
		}
		if id, ok := arg.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if df, tracked := free[obj]; tracked && df {
					pass.Reportf(ev.use.Pos(), "request context %q was built without a deadline in this function — wrap with context.WithTimeout/WithDeadline (or justify with //lint:quaestor)", id.Name)
				}
			}
		}
	}
}

// ctxConstructorClass classifies a context-constructor call:
// (deadlineFree=true, known=true) for Background/TODO/WithCancel,
// (false, true) for WithTimeout/WithDeadline, (_, false) otherwise.
func ctxConstructorClass(pass *Pass, call *ast.CallExpr) (deadlineFree, known bool) {
	ci := resolveCallee(pass, call)
	if ci.pkgPath != "context" {
		return false, false
	}
	switch ci.name {
	case "Background", "TODO", "WithCancel":
		return true, true
	case "WithTimeout", "WithDeadline":
		return false, true
	}
	return false, false
}
