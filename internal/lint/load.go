package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string // import path ("quaestor/internal/store")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with one shared FileSet and one
// shared source importer, so dependency packages are type-checked once
// per process rather than once per target.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom

	// fixtureRoot, when set, resolves imports inside it before falling
	// back to the real importer — the analysistest GOPATH=testdata trick.
	fixtureRoot string
	fixtures    map[string]*types.Package
}

// NewLoader builds a loader rooted at the module directory (found by
// walking up from the working directory to go.mod). The source importer
// resolves module-local imports through the go command, which runs in
// the process working directory — pinning build.Default.Dir keeps that
// resolution anchored to the module even when a test harness chdirs.
func NewLoader() (*Loader, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	build.Default.Dir = root
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		imp:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		fixtures: map[string]*types.Package{},
	}, nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above working directory")
		}
		dir = parent
	}
}

// LoadDir parses the non-test Go files of dir and type-checks them as
// importPath.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	return l.check(dir, importPath, files, l.imp)
}

func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return files, nil
}

func (l *Loader) check(dir, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadFixture type-checks root/importPath, resolving imports from inside
// root first (so fixtures can model quaestor packages under short import
// paths like "internal/commitlog") and from the standard library
// otherwise.
func (l *Loader) LoadFixture(root, importPath string) (*Package, error) {
	l.fixtureRoot = root
	files, err := l.parseDir(filepath.Join(root, importPath))
	if err != nil {
		return nil, err
	}
	return l.check(filepath.Join(root, importPath), importPath, files, &fixtureImporter{l: l})
}

// fixtureImporter resolves fixture-local packages before delegating to
// the real importer.
type fixtureImporter struct {
	l *Loader
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := fi.l
	if p, ok := l.fixtures[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.fixtureRoot, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		files, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.check(dir, path, files, fi)
		if err != nil {
			return nil, err
		}
		l.fixtures[path] = pkg.Types
		return pkg.Types, nil
	}
	return l.imp.ImportFrom(path, srcDir, mode)
}

// ListedPackage is one `go list -json` record, trimmed to what the
// checker needs.
type ListedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// GoList enumerates the packages matching patterns via the go command.
func GoList(patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = build.Default.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p ListedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, err
		}
		if len(p.GoFiles) == 0 || strings.Contains(p.ImportPath, "/testdata/") {
			continue
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
