package document

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewNormalizesFields(t *testing.T) {
	d := New("a", map[string]any{
		"i":   7,
		"f32": float32(1.5),
		"u":   uint16(9),
		"s":   []string{"x", "y"},
		"n":   []int{1, 2},
	})
	if v, _ := d.Get("i"); v != int64(7) {
		t.Errorf("int not normalized to int64: %T %v", v, v)
	}
	if v, _ := d.Get("f32"); v != float64(1.5) {
		t.Errorf("float32 not normalized: %T", v)
	}
	if v, _ := d.Get("u"); v != int64(9) {
		t.Errorf("uint16 not normalized: %T", v)
	}
	if v, _ := d.Get("s.1"); v != "y" {
		t.Errorf("string slice not normalized: %v", v)
	}
	if v, _ := d.Get("n.0"); v != int64(1) {
		t.Errorf("int slice not normalized: %v", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New("a", map[string]any{"nested": map[string]any{"list": []any{int64(1)}}})
	c := d.Clone()
	if err := c.Set("nested.list.0", int64(99)); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("nested.list.0"); v != int64(1) {
		t.Errorf("mutating clone affected original: %v", v)
	}
	if v, _ := c.Get("nested.list.0"); v != int64(99) {
		t.Errorf("clone not updated: %v", v)
	}
}

func TestCloneNil(t *testing.T) {
	var d *Document
	if d.Clone() != nil {
		t.Error("nil document clone should be nil")
	}
}

func TestGetSetDeletePaths(t *testing.T) {
	d := New("a", nil)
	if err := d.Set("author.name", "Kim"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("author.age", 30); err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Get("author.name"); !ok || v != "Kim" {
		t.Errorf("Get author.name = %v, %v", v, ok)
	}
	if _, ok := d.Get("author.missing"); ok {
		t.Error("missing path reported present")
	}
	if _, ok := d.Get("author.name.too.deep"); ok {
		t.Error("path through scalar reported present")
	}
	d.Delete("author.age")
	if _, ok := d.Get("author.age"); ok {
		t.Error("deleted path still present")
	}
	d.Delete("no.such.path") // must not panic
}

func TestSetIntoArray(t *testing.T) {
	d := New("a", map[string]any{"tags": []any{"x", "y"}})
	if err := d.Set("tags.1", "z"); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("tags.1"); v != "z" {
		t.Errorf("array set failed: %v", v)
	}
	if err := d.Set("tags.9", "w"); err == nil {
		t.Error("out-of-range array set should error")
	}
	if err := d.Set("tags.nope", "w"); err == nil {
		t.Error("non-numeric array index should error")
	}
}

func TestEqualIgnoresVersion(t *testing.T) {
	a := New("x", map[string]any{"v": 1})
	b := New("x", map[string]any{"v": 1})
	b.Version = 42
	if !a.Equal(b) {
		t.Error("equality should ignore versions")
	}
	c := New("y", map[string]any{"v": 1})
	if a.Equal(c) {
		t.Error("different ids must not be equal")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := New("doc1", map[string]any{
		"title":  "hi",
		"rating": 42,
		"nested": map[string]any{"deep": []any{int64(1), "two", 3.5}},
	})
	d.Version = 7
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "doc1" || back.Version != 7 {
		t.Errorf("identity lost: %q v%d", back.ID, back.Version)
	}
	if !d.Equal(&back) {
		t.Errorf("fields lost: %v vs %v", d.Fields, back.Fields)
	}
}

func TestCompareNumericCrossType(t *testing.T) {
	if Compare(int64(1), float64(1.0)) != 0 {
		t.Error("1 != 1.0")
	}
	if Compare(int64(1), float64(1.5)) != -1 {
		t.Error("1 should be < 1.5")
	}
	if Compare(float64(2.5), int64(2)) != 1 {
		t.Error("2.5 should be > 2")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := math.NaN()
	// NaN must not compare equal to ordinary numbers (that would make the
	// order non-transitive) — it sorts first and equals only itself.
	if Compare(nan, float64(5)) != -1 || Compare(float64(5), nan) != 1 {
		t.Error("NaN must sort before other numbers")
	}
	if Compare(nan, math.NaN()) != 0 {
		t.Error("NaN must equal NaN")
	}
	if DeepEqual(nan, int64(5)) {
		t.Error("NaN must not deep-equal 5")
	}
	if MatchKey(nan) == MatchKey(float64(5)) {
		t.Error("NaN and 5 must have distinct match keys")
	}
}

func TestMatchKeyFoldsHugeInt64(t *testing.T) {
	a, b := int64(1)<<60, int64(1)<<60+1
	if Compare(a, b) != 0 {
		t.Fatal("test premise: huge int64s fold equal through float64")
	}
	if MatchKey(a) != MatchKey(b) {
		t.Error("Compare-equal values must share a match key")
	}
	if Canonical(a) == Canonical(b) {
		t.Error("Canonical is expected to keep exact int64 keys distinct")
	}
	// Nested values fold too.
	if MatchKey([]any{a}) != MatchKey([]any{b}) {
		t.Error("match-key folding must recurse into arrays")
	}
}

func TestCompareTypeOrder(t *testing.T) {
	// null < numbers < strings < maps < arrays < bools
	ordered := []any{nil, int64(5), "s", map[string]any{}, []any{}, true}
	for i := 0; i < len(ordered)-1; i++ {
		if Compare(ordered[i], ordered[i+1]) != -1 {
			t.Errorf("type rank order violated between %T and %T", ordered[i], ordered[i+1])
		}
	}
}

func TestCompareArraysAndMaps(t *testing.T) {
	if Compare([]any{int64(1), int64(2)}, []any{int64(1), int64(3)}) != -1 {
		t.Error("elementwise array compare failed")
	}
	if Compare([]any{int64(1)}, []any{int64(1), int64(0)}) != -1 {
		t.Error("shorter array should sort first")
	}
	a := map[string]any{"a": int64(1)}
	b := map[string]any{"a": int64(1), "b": int64(2)}
	if Compare(a, b) != -1 {
		t.Error("smaller map should sort first")
	}
	if Compare(map[string]any{"a": int64(1)}, map[string]any{"b": int64(1)}) != -1 {
		t.Error("map key order compare failed")
	}
}

// genValue builds random canonical values for property tests.
func genValue(r *rand.Rand, depth int) any {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return int64(r.Intn(100))
		case 3:
			return r.Float64() * 100
		default:
			return string(rune('a' + r.Intn(26)))
		}
	}
	switch r.Intn(7) {
	case 0:
		arr := make([]any, r.Intn(4))
		for i := range arr {
			arr[i] = genValue(r, depth-1)
		}
		return arr
	case 1:
		m := map[string]any{}
		for i := 0; i < r.Intn(4); i++ {
			m[string(rune('a'+r.Intn(8)))] = genValue(r, depth-1)
		}
		return m
	default:
		return genValue(r, 0)
	}
}

func TestCompareIsReflexiveAndAntisymmetric(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(&[2]any{genValue(r, 3), genValue(r, 3)})
		},
	}
	prop := func(pair *[2]any) bool {
		a, b := pair[0], pair[1]
		if Compare(a, a) != 0 || Compare(b, b) != 0 {
			return false
		}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCanonicalAgreesWithDeepEqual(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(&[2]any{genValue(r, 3), genValue(r, 3)})
		},
	}
	prop := func(pair *[2]any) bool {
		a, b := pair[0], pair[1]
		return DeepEqual(a, b) == (Canonical(a) == Canonical(b))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCanonicalDeterministicMapOrder(t *testing.T) {
	a := map[string]any{"x": int64(1), "y": int64(2), "z": int64(3)}
	want := `{"x":1,"y":2,"z":3}`
	for i := 0; i < 20; i++ {
		if got := Canonical(a); got != want {
			t.Fatalf("Canonical unstable: %s", got)
		}
	}
}

func TestCanonicalIntegralFloatEqualsInt(t *testing.T) {
	if Canonical(int64(3)) != Canonical(float64(3.0)) {
		t.Error("3 and 3.0 should share a canonical form")
	}
	if Canonical(float64(3.5)) == Canonical(int64(3)) {
		t.Error("3.5 must differ from 3")
	}
}

func TestCloneValueDeep(t *testing.T) {
	orig := map[string]any{"arr": []any{map[string]any{"k": int64(1)}}}
	cp := CloneValue(orig).(map[string]any)
	cp["arr"].([]any)[0].(map[string]any)["k"] = int64(2)
	if orig["arr"].([]any)[0].(map[string]any)["k"] != int64(1) {
		t.Error("CloneValue is shallow")
	}
}

func TestNormalizeJSONNumber(t *testing.T) {
	if Normalize(json.Number("42")) != int64(42) {
		t.Error("integer json.Number should become int64")
	}
	if Normalize(json.Number("4.5")) != float64(4.5) {
		t.Error("fraction json.Number should become float64")
	}
}
