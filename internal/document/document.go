// Package document implements the value model for Quaestor's
// aggregate-oriented document store.
//
// Documents are rich nested records — the paper's "after-images" — modelled
// as JSON-like trees: maps, arrays, strings, numbers, booleans and null.
// The package provides deep copy, deep equality, a total ordering used by
// sorted queries, dotted field-path access, and a canonical encoding that
// query normalization and cache keys rely on.
package document

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Document is a single database record. The zero value is an empty document.
//
// Field values may be: nil, bool, int64, float64, string, []any and
// map[string]any (arbitrarily nested). Use Normalize to coerce arbitrary
// numeric types (int, float32, json.Number, ...) into this canonical set.
type Document struct {
	// ID is the primary key, unique within a table.
	ID string
	// Version is a monotonically increasing per-record version counter,
	// used for ETags and monotonic-read tracking.
	Version int64
	// Fields holds the document body.
	Fields map[string]any
}

// New returns a document with the given id and a normalized copy of fields.
func New(id string, fields map[string]any) *Document {
	return &Document{ID: id, Version: 1, Fields: normalizeMap(fields)}
}

// Clone returns a deep copy of the document. Mutating the clone never
// affects the original; this is what makes after-images safe to hand to
// the invalidation pipeline concurrently with subsequent writes.
func (d *Document) Clone() *Document {
	if d == nil {
		return nil
	}
	return &Document{ID: d.ID, Version: d.Version, Fields: CloneValue(d.Fields).(map[string]any)}
}

// Get returns the value at a dotted field path ("author.name",
// "comments.0.text"). The boolean reports whether the path exists.
func (d *Document) Get(path string) (any, bool) {
	if d == nil {
		return nil, false
	}
	return GetPath(d.Fields, path)
}

// Set assigns a value at a dotted field path, creating intermediate maps as
// needed. It returns an error when the path traverses a non-container value.
func (d *Document) Set(path string, value any) error {
	if d.Fields == nil {
		d.Fields = map[string]any{}
	}
	return SetPath(d.Fields, path, Normalize(value))
}

// Delete removes the value at a dotted field path. Missing paths are no-ops.
func (d *Document) Delete(path string) {
	DeletePath(d.Fields, path)
}

// Equal reports whether two documents have the same id and deeply equal
// fields. Versions are ignored: equality is about content.
func (d *Document) Equal(other *Document) bool {
	if d == nil || other == nil {
		return d == other
	}
	return d.ID == other.ID && DeepEqual(d.Fields, other.Fields)
}

// MarshalJSON encodes the document in its wire representation.
func (d *Document) MarshalJSON() ([]byte, error) {
	body := make(map[string]any, len(d.Fields)+2)
	for k, v := range d.Fields {
		body[k] = v
	}
	body["_id"] = d.ID
	body["_version"] = d.Version
	return json.Marshal(body)
}

// UnmarshalJSON decodes the wire representation produced by MarshalJSON.
func (d *Document) UnmarshalJSON(data []byte) error {
	var body map[string]any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&body); err != nil {
		return err
	}
	if id, ok := body["_id"].(string); ok {
		d.ID = id
	}
	if v, ok := body["_version"]; ok {
		switch n := v.(type) {
		case json.Number:
			iv, err := n.Int64()
			if err != nil {
				return fmt.Errorf("document: bad _version %q", n.String())
			}
			d.Version = iv
		case float64:
			d.Version = int64(n)
		}
	}
	delete(body, "_id")
	delete(body, "_version")
	d.Fields = normalizeMap(body)
	return nil
}

// Normalize coerces a value into the canonical type set:
// nil, bool, int64, float64, string, []any, map[string]any.
func Normalize(v any) any {
	switch t := v.(type) {
	case nil, bool, int64, float64, string:
		return t
	case int:
		return int64(t)
	case int8:
		return int64(t)
	case int16:
		return int64(t)
	case int32:
		return int64(t)
	case uint:
		return int64(t)
	case uint8:
		return int64(t)
	case uint16:
		return int64(t)
	case uint32:
		return int64(t)
	case uint64:
		return int64(t)
	case float32:
		return float64(t)
	case json.Number:
		if iv, err := t.Int64(); err == nil {
			return iv
		}
		fv, _ := t.Float64()
		return fv
	case []string:
		out := make([]any, len(t))
		for i, s := range t {
			out[i] = s
		}
		return out
	case []int:
		out := make([]any, len(t))
		for i, n := range t {
			out[i] = int64(n)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = Normalize(e)
		}
		return out
	case map[string]any:
		return normalizeMap(t)
	default:
		// Fall back to the string representation so unexpected types do
		// not silently break equality; this should not happen in practice.
		return fmt.Sprintf("%v", t)
	}
}

func normalizeMap(m map[string]any) map[string]any {
	if m == nil {
		return map[string]any{}
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = Normalize(v)
	}
	return out
}

// CloneValue deep-copies any canonical value.
func CloneValue(v any) any {
	switch t := v.(type) {
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = CloneValue(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = CloneValue(e)
		}
		return out
	default:
		return t
	}
}

// DeepEqual reports deep equality of two canonical values. Numeric values
// compare across int64/float64 (1 == 1.0), matching MongoDB semantics.
func DeepEqual(a, b any) bool {
	return Compare(a, b) == 0
}

// typeRank assigns a BSON-like total order across types so heterogeneous
// values sort deterministically: null < numbers < strings < maps < arrays < bools.
func typeRank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case int64, float64:
		return 1
	case string:
		return 2
	case map[string]any:
		return 3
	case []any:
		return 4
	case bool:
		return 5
	default:
		return 6
	}
}

// Compare imposes a total order on canonical values: -1 if a < b, 0 if
// equal, +1 if a > b. Numbers compare numerically across integer/float.
func Compare(a, b any) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch av := a.(type) {
	case nil:
		return 0
	case int64:
		return compareNumbers(float64(av), toFloat(b))
	case float64:
		return compareNumbers(av, toFloat(b))
	case string:
		return strings.Compare(av, b.(string))
	case bool:
		bv := b.(bool)
		switch {
		case av == bv:
			return 0
		case !av:
			return -1
		default:
			return 1
		}
	case []any:
		bv := b.([]any)
		for i := 0; i < len(av) && i < len(bv); i++ {
			if c := Compare(av[i], bv[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(av) == len(bv):
			return 0
		case len(av) < len(bv):
			return -1
		default:
			return 1
		}
	case map[string]any:
		bv := b.(map[string]any)
		ka, kb := sortedKeys(av), sortedKeys(bv)
		for i := 0; i < len(ka) && i < len(kb); i++ {
			if c := strings.Compare(ka[i], kb[i]); c != 0 {
				return c
			}
			if c := Compare(av[ka[i]], bv[kb[i]]); c != 0 {
				return c
			}
		}
		switch {
		case len(ka) == len(kb):
			return 0
		case len(ka) < len(kb):
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

func compareNumbers(a, b float64) int {
	// NaN sorts before every other number and equal to itself. Without
	// this, NaN would compare equal to everything (both < and > are
	// false), making the order non-transitive and DeepEqual(NaN, x) true
	// for any number — which would break sorting and index-key agreement.
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func toFloat(v any) float64 {
	switch t := v.(type) {
	case int64:
		return float64(t)
	case float64:
		return t
	default:
		return 0
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GetPath resolves a dotted path against a canonical value tree. Numeric
// path segments index into arrays.
func GetPath(root any, path string) (any, bool) {
	if path == "" {
		return root, true
	}
	cur := root
	for _, seg := range strings.Split(path, ".") {
		switch node := cur.(type) {
		case map[string]any:
			v, ok := node[seg]
			if !ok {
				return nil, false
			}
			cur = v
		case []any:
			idx, err := strconv.Atoi(seg)
			if err != nil || idx < 0 || idx >= len(node) {
				return nil, false
			}
			cur = node[idx]
		default:
			return nil, false
		}
	}
	return cur, true
}

// SetPath assigns value at a dotted path inside root, creating intermediate
// maps as required. Array segments must already exist and be in range.
func SetPath(root map[string]any, path string, value any) error {
	segs := strings.Split(path, ".")
	var cur any = root
	for i, seg := range segs {
		last := i == len(segs)-1
		switch node := cur.(type) {
		case map[string]any:
			if last {
				node[seg] = value
				return nil
			}
			next, ok := node[seg]
			if !ok {
				m := map[string]any{}
				node[seg] = m
				cur = m
				continue
			}
			cur = next
		case []any:
			idx, err := strconv.Atoi(seg)
			if err != nil || idx < 0 || idx >= len(node) {
				return fmt.Errorf("document: bad array index %q in path %q", seg, path)
			}
			if last {
				node[idx] = value
				return nil
			}
			cur = node[idx]
		default:
			return fmt.Errorf("document: path %q traverses non-container at %q", path, seg)
		}
	}
	return nil
}

// DeletePath removes the value at a dotted path. Missing paths are no-ops.
func DeletePath(root map[string]any, path string) {
	segs := strings.Split(path, ".")
	var cur any = root
	for i, seg := range segs {
		last := i == len(segs)-1
		switch node := cur.(type) {
		case map[string]any:
			if last {
				delete(node, seg)
				return
			}
			next, ok := node[seg]
			if !ok {
				return
			}
			cur = next
		case []any:
			idx, err := strconv.Atoi(seg)
			if err != nil || idx < 0 || idx >= len(node) {
				return
			}
			if last {
				node[idx] = nil
				return
			}
			cur = node[idx]
		default:
			return
		}
	}
}

// Canonical returns a deterministic string encoding of a canonical value:
// map keys are sorted, numbers print minimally. Values that print the same
// compare as equal, but the converse does not hold for int64 values beyond
// float64's exact integer range (±2^53): Compare folds numerics through
// float64, so e.g. 1<<60 and (1<<60)+1 are DeepEqual yet print differently.
// Use MatchKey where the key must agree exactly with Compare equality.
func Canonical(v any) string {
	var sb strings.Builder
	writeCanonical(&sb, v)
	return sb.String()
}

// MatchKey returns a deterministic string encoding under which two values
// share a key if and only if they Compare as equal. It differs from
// Canonical only on huge int64s (and values nesting them), which are
// folded through float64 the same way Compare folds them. Hash-index
// postings and InvaliDB query postings use it so probe completeness
// matches the document model's equality semantics.
func MatchKey(v any) string {
	var sb strings.Builder
	writeMatchKey(&sb, v)
	return sb.String()
}

func writeMatchKey(sb *strings.Builder, v any) {
	switch t := v.(type) {
	case int64:
		writeCanonical(sb, float64(t))
	case []any:
		sb.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeMatchKey(sb, e)
		}
		sb.WriteByte(']')
	case map[string]any:
		sb.WriteByte('{')
		for i, k := range sortedKeys(t) {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Quote(k))
			sb.WriteByte(':')
			writeMatchKey(sb, t[k])
		}
		sb.WriteByte('}')
	default:
		writeCanonical(sb, v)
	}
}

func writeCanonical(sb *strings.Builder, v any) {
	switch t := v.(type) {
	case nil:
		sb.WriteString("null")
	case bool:
		if t {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case int64:
		sb.WriteString(strconv.FormatInt(t, 10))
	case float64:
		if t == float64(int64(t)) {
			// Integral floats print like integers so 1.0 and 1 share a key.
			sb.WriteString(strconv.FormatInt(int64(t), 10))
		} else {
			sb.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		}
	case string:
		sb.WriteString(strconv.Quote(t))
	case []any:
		sb.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeCanonical(sb, e)
		}
		sb.WriteByte(']')
	case map[string]any:
		sb.WriteByte('{')
		for i, k := range sortedKeys(t) {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Quote(k))
			sb.WriteByte(':')
			writeCanonical(sb, t[k])
		}
		sb.WriteByte('}')
	default:
		fmt.Fprintf(sb, "%v", t)
	}
}
