package invalidb

import (
	"quaestor/internal/document"
	"quaestor/internal/index"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// queryIndex is a matching task's inverted index over its registered
// queries: queries whose predicate implies an equality-like condition are
// keyed by (table, field path, canonical value), so an incoming
// after-image only has to be tested against the queries whose posting it
// actually carries plus the residual (non-indexable) queries. This turns
// the per-event matching cost from O(registered queries) into
// O(candidates), which is what lets a single cell hold thousands of
// registered queries.
//
// The index is owned by one matching task goroutine and needs no locking.
type queryIndex struct {
	// postings maps (table, path, canonical value) to the queries
	// registered under that key.
	postings map[postingKey]map[string]*nodeQuery
	// residual holds queries with no derivable posting set; they are
	// candidates for every event of any table.
	residual map[string]*nodeQuery
	// paths tracks, per table, how many registered queries post on each
	// field path, so candidate lookup only extracts the paths in use.
	paths map[string]map[string]int
}

type postingKey struct {
	table string
	path  string
	key   string
}

func newQueryIndex() *queryIndex {
	return &queryIndex{
		postings: map[postingKey]map[string]*nodeQuery{},
		residual: map[string]*nodeQuery{},
		paths:    map[string]map[string]int{},
	}
}

// add registers nq under its derived postings (or as residual) and
// remembers the postings on the nodeQuery for symmetric removal.
func (qi *queryIndex) add(key string, nq *nodeQuery) {
	postings, ok := query.RequiredPostings(nq.q.Predicate)
	if !ok {
		qi.residual[key] = nq
		return
	}
	nq.postings = postings
	table := nq.q.Table
	for _, p := range postings {
		pk := postingKey{table: table, path: p.Path, key: p.Key}
		m := qi.postings[pk]
		if m == nil {
			m = map[string]*nodeQuery{}
			qi.postings[pk] = m
		}
		m[key] = nq
		tp := qi.paths[table]
		if tp == nil {
			tp = map[string]int{}
			qi.paths[table] = tp
		}
		tp[p.Path]++
	}
}

// remove drops a query from the index.
func (qi *queryIndex) remove(key string, nq *nodeQuery) {
	if _, ok := qi.residual[key]; ok {
		delete(qi.residual, key)
		return
	}
	table := nq.q.Table
	for _, p := range nq.postings {
		pk := postingKey{table: table, path: p.Path, key: p.Key}
		if m, ok := qi.postings[pk]; ok {
			delete(m, key)
			if len(m) == 0 {
				delete(qi.postings, pk)
			}
		}
		if tp, ok := qi.paths[table]; ok {
			tp[p.Path]--
			if tp[p.Path] <= 0 {
				delete(tp, p.Path)
			}
			if len(tp) == 0 {
				delete(qi.paths, table)
			}
		}
	}
}

// collect gathers the queries whose postings the after-image carries into
// out. Deletes carry no fields and thus hit no postings — their candidates
// come from was-match state, which the caller adds separately.
func (qi *queryIndex) collect(ev *store.ChangeEvent, out map[string]*nodeQuery) {
	for key, nq := range qi.residual {
		out[key] = nq
	}
	tp := qi.paths[ev.Table]
	if len(tp) == 0 || ev.After == nil || ev.After.Fields == nil {
		return
	}
	for path := range tp {
		v, ok := document.GetPath(ev.After.Fields, path)
		if !ok {
			continue
		}
		whole, elems := index.ValueKeys(v)
		qi.hits(postingKey{table: ev.Table, path: path, key: whole}, out)
		for _, el := range elems {
			qi.hits(postingKey{table: ev.Table, path: path, key: el}, out)
		}
	}
}

func (qi *queryIndex) hits(pk postingKey, out map[string]*nodeQuery) {
	for key, nq := range qi.postings[pk] {
		out[key] = nq
	}
}
