package invalidb

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// waitStable polls until the collector's event count has stopped growing:
// Quiesce guarantees every notification has been handed to the output
// channel, but the collector goroutine may still be draining it.
func waitStable(col *collector) []Notification {
	last := len(col.snapshot())
	for settled := 0; settled < 20; {
		time.Sleep(5 * time.Millisecond)
		if n := len(col.snapshot()); n == last {
			settled++
		} else {
			last = n
			settled = 0
		}
	}
	return col.snapshot()
}

// TestQueryIndexPrunesCandidates proves the inverted query index only
// evaluates the queries whose posting an after-image carries: with Q
// selective tag queries registered, one write must cost O(1) predicate
// evaluations, not O(Q).
func TestQueryIndexPrunesCandidates(t *testing.T) {
	const numQueries = 200
	db, cluster, col := newTestPipeline(t, nil)
	for i := 0; i < numQueries; i++ {
		if err := cluster.Activate(Registration{Query: tagQuery(fmt.Sprintf("tag%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("posts", post("p1", "tag007")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if !cluster.Quiesce(5 * time.Second) {
		t.Fatal("pipeline did not drain")
	}
	evaluated := cluster.EvaluatedMatches()
	// The write carries postings for tag007 (plus the whole-array key):
	// far fewer than one evaluation per registered query.
	if evaluated >= numQueries/10 {
		t.Fatalf("evaluated %d candidate queries for one write; index is not pruning (Q=%d)", evaluated, numQueries)
	}
	evs := col.snapshot()
	if len(evs) != 1 || evs[0].QueryKey != tagQuery("tag007").Key() || evs[0].Type != EventAdd {
		t.Fatalf("notifications = %v", evs)
	}
}

// TestQueryIndexResidualQueriesStillMatch ensures queries with no
// derivable posting set (ranges, negations) keep full matching coverage.
func TestQueryIndexResidualQueriesStillMatch(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	rangeQ := query.New("posts", query.Gt("rating", int64(1)))
	if err := cluster.Activate(Registration{Query: rangeQ}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", post("p99", "whatever")); err != nil { // rating = 3
		t.Fatal(err)
	}
	evs := col.wait(t, 1)
	if evs[0].QueryKey != rangeQ.Key() || evs[0].Type != EventAdd {
		t.Fatalf("notifications = %v", evs)
	}
}

// TestQueryIndexHugeInt64Posting pins posting-key folding: a registered
// equality query on (1<<60)+1 must still see an after-image carrying the
// Compare-equal value 1<<60 (both fold to the same float64).
func TestQueryIndexHugeInt64Posting(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	q := query.New("posts", query.Eq("rating", int64(1)<<60+1))
	if err := cluster.Activate(Registration{Query: q}); err != nil {
		t.Fatal(err)
	}
	doc := document.New("p1", map[string]any{"rating": int64(1) << 60})
	if err := db.Insert("posts", doc); err != nil {
		t.Fatal(err)
	}
	evs := col.wait(t, 1)
	if evs[0].QueryKey != q.Key() || evs[0].Type != EventAdd {
		t.Fatalf("notifications = %v", evs)
	}
}

// TestQueryIndexRemoveAfterFieldChange is the was-match side of candidate
// generation: when a write moves a document out of a query's posting, the
// after-image no longer carries the posting, yet the query must still see
// the event to emit its remove.
func TestQueryIndexRemoveAfterFieldChange(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	q := tagQuery("hot")
	if err := cluster.Activate(Registration{Query: q}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", post("p1", "hot")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	// Retag: the new after-image carries no "hot" posting.
	if err := db.Put("posts", post("p1", "cold")); err != nil {
		t.Fatal(err)
	}
	evs := col.wait(t, 2)
	if evs[1].Type != EventRemove || evs[1].QueryKey != q.Key() {
		t.Fatalf("second event = %v, want remove", evs[1])
	}
	// And deletion of a matching doc still notifies.
	if err := db.Put("posts", post("p2", "hot")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 3)
	if err := db.Delete("posts", "p2"); err != nil {
		t.Fatal(err)
	}
	evs = col.wait(t, 4)
	if evs[3].Type != EventRemove {
		t.Fatalf("delete event = %v, want remove", evs[3])
	}
}

// TestQueryIndexDeactivateCleansUp verifies deactivation removes postings
// and reverse-match state so later writes are not matched.
func TestQueryIndexDeactivateCleansUp(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	q := tagQuery("x")
	if err := cluster.Activate(Registration{Query: q}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", post("p1", "x")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if err := cluster.Deactivate(q.Key()); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("posts", post("p1", "y")); err != nil {
		t.Fatal(err)
	}
	if !cluster.Quiesce(5 * time.Second) {
		t.Fatal("pipeline did not drain")
	}
	if evs := waitStable(col); len(evs) != 1 {
		t.Fatalf("deactivated query still notified: %v", evs)
	}
}

// TestQueryIndexEquivalentToScanBaseline runs the same randomized write
// sequence through an indexed cluster and a DisableQueryIndex baseline and
// requires identical notification streams — the inverted index must be a
// pure optimization.
func TestQueryIndexEquivalentToScanBaseline(t *testing.T) {
	type run struct {
		cluster *Cluster
		col     *collector
		db      *store.Store
	}
	mkRun := func(disable bool) run {
		db, cluster, col := newTestPipeline(t, &Config{
			QueryPartitions:   2,
			ObjectPartitions:  2,
			DisableQueryIndex: disable,
		})
		return run{cluster: cluster, col: col, db: db}
	}
	runs := []run{mkRun(false), mkRun(true)}

	queries := []*query.Query{
		tagQuery("a"), tagQuery("b"), tagQuery("c"),
		query.New("posts", query.Eq("rating", int64(2))),
		query.New("posts", query.Gt("rating", int64(2))),
		query.New("posts", query.OrOf(query.Contains("tags", "d"), query.Eq("rating", int64(9)))),
	}
	for _, r := range runs {
		for _, q := range queries {
			if err := r.cluster.Activate(Registration{Query: q}); err != nil {
				t.Fatal(err)
			}
		}
	}

	tags := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 120; i++ {
		id := fmt.Sprintf("p%02d", i%20)
		tag1, tag2 := tags[i%len(tags)], tags[(i*7+3)%len(tags)]
		for _, r := range runs {
			switch i % 4 {
			case 0, 1:
				_ = r.db.Put("posts", post(id, tag1, tag2))
			case 2:
				_, _ = r.db.Update("posts", id, store.UpdateSpec{Set: map[string]any{"rating": int64(i % 11)}})
			case 3:
				_ = r.db.Delete("posts", id)
			}
		}
	}
	for _, r := range runs {
		if !r.cluster.Quiesce(10 * time.Second) {
			t.Fatal("pipeline did not drain")
		}
	}

	key := func(n Notification) string {
		return fmt.Sprintf("%s|%d|%d", n.QueryKey, n.Type, n.Seq)
	}
	var got [2][]string
	for i, r := range runs {
		for _, n := range waitStable(r.col) {
			got[i] = append(got[i], key(n))
		}
		sort.Strings(got[i])
	}
	if len(got[0]) != len(got[1]) {
		t.Fatalf("indexed emitted %d notifications, baseline %d", len(got[0]), len(got[1]))
	}
	for i := range got[0] {
		if got[0][i] != got[1][i] {
			t.Fatalf("notification %d differs: indexed %q vs baseline %q", i, got[0][i], got[1][i])
		}
	}
	// Sanity: the baseline must have evaluated far more candidates.
	if runs[0].cluster.EvaluatedMatches() >= runs[1].cluster.EvaluatedMatches() {
		t.Fatalf("index evaluated %d candidates, baseline %d — no pruning",
			runs[0].cluster.EvaluatedMatches(), runs[1].cluster.EvaluatedMatches())
	}
}
