package invalidb

import (
	"encoding/json"
	"fmt"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/kvstore"
)

// Bridge relays notifications through a kvstore message queue, mirroring
// the paper's deployment where "communication between QUAESTOR and
// InvaliDB is handled through Redis message queues". Quaestor servers in
// other processes (or just other components) consume the queue by name.
type Bridge struct {
	kv    *kvstore.Store
	queue string
	stop  chan struct{}
	done  chan struct{}
}

// wireNotification is the queue's JSON payload.
type wireNotification struct {
	QueryKey  string         `json:"q"`
	Type      string         `json:"t"`
	DocID     string         `json:"id"`
	DocFields map[string]any `json:"doc,omitempty"`
	Index     int            `json:"i"`
	Seq       uint64         `json:"seq"`
	EventNano int64          `json:"et"`
	DetNano   int64          `json:"dt"`
}

// NewBridge starts draining the cluster's notification channel into the
// named kvstore queue. Close the bridge before stopping the cluster.
func NewBridge(c *Cluster, kv *kvstore.Store, queue string) *Bridge {
	b := &Bridge{kv: kv, queue: queue, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(b.done)
		for {
			select {
			case n, ok := <-c.Notifications():
				if !ok {
					return
				}
				payload, err := json.Marshal(toWire(n))
				if err != nil {
					continue
				}
				if _, err := kv.LPush(queue, string(payload)); err != nil {
					return
				}
			case <-b.stop:
				return
			}
		}
	}()
	return b
}

func toWire(n Notification) wireNotification {
	w := wireNotification{
		QueryKey:  n.QueryKey,
		Type:      n.Type.String(),
		Index:     n.Index,
		Seq:       n.Seq,
		EventNano: n.EventTime.UnixNano(),
		DetNano:   n.DetectedAt.UnixNano(),
	}
	if n.Doc != nil {
		w.DocID = n.Doc.ID
		w.DocFields = n.Doc.Fields
	}
	return w
}

// Close stops the relay goroutine.
func (b *Bridge) Close() {
	close(b.stop)
	<-b.done
}

// Receive pops one notification from the queue, blocking up to timeout.
// The boolean reports whether a notification arrived.
func Receive(kv *kvstore.Store, queue string, timeout time.Duration) (Notification, bool, error) {
	raw, ok, err := kv.BRPop(queue, timeout)
	if err != nil || !ok {
		return Notification{}, false, err
	}
	var w wireNotification
	if err := json.Unmarshal([]byte(raw), &w); err != nil {
		return Notification{}, false, fmt.Errorf("invalidb: corrupt queue payload: %w", err)
	}
	n := Notification{
		QueryKey:   w.QueryKey,
		Index:      w.Index,
		Seq:        w.Seq,
		EventTime:  time.Unix(0, w.EventNano),
		DetectedAt: time.Unix(0, w.DetNano),
	}
	switch w.Type {
	case "add":
		n.Type = EventAdd
	case "remove":
		n.Type = EventRemove
	case "change":
		n.Type = EventChange
	case "changeIndex":
		n.Type = EventChangeIndex
	}
	if w.DocID != "" {
		n.Doc = &document.Document{ID: w.DocID, Fields: w.DocFields}
	}
	return n, true, nil
}
