package invalidb

import (
	"sync"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// nodeMsg is the union message type consumed by a matching task: exactly
// one field is set.
type nodeMsg struct {
	event      *store.ChangeEvent
	activate   *nodeActivation
	deactivate string
}

type nodeActivation struct {
	q       *query.Query
	mask    EventMask
	initial []*document.Document // matches within this node's object partition
	asOf    uint64               // change-stream position the initial set reflects
}

// nodeQuery is a matching task's registration of one query.
type nodeQuery struct {
	q        *query.Query
	mask     EventMask
	stateful bool
	// asOf is the sequence number the initial match set reflects; events at
	// or below it are already part of that state and must be skipped, which
	// makes activation exact even while events race the registration.
	asOf uint64
	// wasMatch holds the ids of documents in this node's object partition
	// that currently match the query predicate — the per-record "former
	// matching status" state of Section 4.1, partitioned by record id.
	wasMatch map[string]struct{}
}

// matchNode is one cell of the 2-D matching grid: it owns the queries of
// one query partition restricted to the documents of one object partition.
type matchNode struct {
	cluster *Cluster
	row     int // object partition
	col     int // query partition
	in      chan nodeMsg
	queries map[string]*nodeQuery
}

func newMatchNode(c *Cluster, row, col, buffer int) *matchNode {
	return &matchNode{
		cluster: c,
		row:     row,
		col:     col,
		in:      make(chan nodeMsg, buffer),
		queries: map[string]*nodeQuery{},
	}
}

func (n *matchNode) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case m := <-n.in:
			n.handle(m)
		case <-n.cluster.done:
			return
		}
	}
}

func (n *matchNode) handle(m nodeMsg) {
	switch {
	case m.event != nil:
		n.match(*m.event)
		n.cluster.inflight.Add(-1)
	case m.activate != nil:
		nq := &nodeQuery{
			q:        m.activate.q,
			mask:     m.activate.mask,
			stateful: m.activate.q.Stateful(),
			asOf:     m.activate.asOf,
			wasMatch: make(map[string]struct{}, len(m.activate.initial)),
		}
		for _, d := range m.activate.initial {
			nq.wasMatch[d.ID] = struct{}{}
		}
		n.queries[m.activate.q.Key()] = nq
	case m.deactivate != "":
		delete(n.queries, m.deactivate)
	}
}

// match evaluates one after-image against every registered query — the
// "Is Match? / Was Match?" decision of Figure 6 — and emits or forwards the
// resulting add/remove/change events.
func (n *matchNode) match(ev store.ChangeEvent) {
	docID := ev.After.ID
	for key, nq := range n.queries {
		if nq.q.Table != ev.Table {
			continue
		}
		if ev.Seq <= nq.asOf {
			// Already reflected in the activation's initial match set.
			continue
		}
		_, was := nq.wasMatch[docID]
		is := !ev.Deleted && nq.q.Predicate.Matches(ev.After.Fields)
		var evType EventType
		switch {
		case is && !was:
			evType = EventAdd
			nq.wasMatch[docID] = struct{}{}
		case !is && was:
			evType = EventRemove
			delete(nq.wasMatch, docID)
		case is && was:
			evType = EventChange
		default:
			continue // never matched: irrelevant update
		}

		if nq.stateful {
			// The order layer owns windowing; it needs every predicate
			// transition including changes (a change can reorder results).
			kind := rawAdd
			switch evType {
			case EventRemove:
				kind = rawRemove
			case EventChange:
				kind = rawChange
			}
			n.cluster.forwardToOrder(rawEvent{
				kind:      kind,
				queryKey:  key,
				doc:       ev.After,
				seq:       ev.Seq,
				eventTime: ev.Time,
			})
			continue
		}
		if !nq.mask.Has(evType) {
			continue
		}
		n.cluster.emit(Notification{
			QueryKey:  key,
			Type:      evType,
			Doc:       ev.After,
			Index:     -1,
			Seq:       ev.Seq,
			EventTime: ev.Time,
		})
	}
}
