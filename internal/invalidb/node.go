package invalidb

import (
	"sync"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// nodeMsg is the union message type consumed by a matching task: exactly
// one field is set.
type nodeMsg struct {
	event      *store.ChangeEvent
	activate   *nodeActivation
	deactivate string
}

type nodeActivation struct {
	q       *query.Query
	mask    EventMask
	initial []*document.Document // matches within this node's object partition
	asOf    uint64               // change-stream position the initial set reflects
}

// nodeQuery is a matching task's registration of one query.
type nodeQuery struct {
	q        *query.Query
	mask     EventMask
	stateful bool
	// asOf is the sequence number the initial match set reflects; events at
	// or below it are already part of that state and must be skipped, which
	// makes activation exact even while events race the registration.
	asOf uint64
	// wasMatch holds the ids of documents in this node's object partition
	// that currently match the query predicate — the per-record "former
	// matching status" state of Section 4.1, partitioned by record id.
	wasMatch map[string]struct{}
	// postings are the inverted-index keys the query is registered under
	// (nil for residual queries); kept for symmetric removal.
	postings []query.Posting
}

// matchNode is one cell of the 2-D matching grid: it owns the queries of
// one query partition restricted to the documents of one object partition.
type matchNode struct {
	cluster *Cluster
	row     int // object partition
	col     int // query partition
	in      chan nodeMsg
	queries map[string]*nodeQuery
	// qidx is the inverted index over registered queries; nil when the
	// cluster runs with DisableQueryIndex (the scan baseline).
	qidx *queryIndex
	// matchedBy is the reverse of the queries' wasMatch sets: document id
	// → queries currently containing it. It supplies the was-match side of
	// candidate generation (a query must see the event that makes its
	// result drop a document even when the after-image no longer carries
	// the query's posting).
	matchedBy map[string]map[string]*nodeQuery
}

func newMatchNode(c *Cluster, row, col, buffer int) *matchNode {
	n := &matchNode{
		cluster:   c,
		row:       row,
		col:       col,
		in:        make(chan nodeMsg, buffer),
		queries:   map[string]*nodeQuery{},
		matchedBy: map[string]map[string]*nodeQuery{},
	}
	if !c.cfg.DisableQueryIndex {
		n.qidx = newQueryIndex()
	}
	return n
}

func (n *matchNode) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case m := <-n.in:
			n.handle(m)
		case <-n.cluster.done:
			return
		}
	}
}

func (n *matchNode) handle(m nodeMsg) {
	switch {
	case m.event != nil:
		n.match(*m.event)
		n.cluster.inflight.Add(-1)
	case m.activate != nil:
		key := m.activate.q.Key()
		nq := &nodeQuery{
			q:        m.activate.q,
			mask:     m.activate.mask,
			stateful: m.activate.q.Stateful(),
			asOf:     m.activate.asOf,
			wasMatch: make(map[string]struct{}, len(m.activate.initial)),
		}
		for _, d := range m.activate.initial {
			nq.wasMatch[d.ID] = struct{}{}
			n.setMatched(d.ID, key, nq)
		}
		n.queries[key] = nq
		if n.qidx != nil {
			n.qidx.add(key, nq)
		}
	case m.deactivate != "":
		if nq, ok := n.queries[m.deactivate]; ok {
			for id := range nq.wasMatch {
				n.clearMatched(id, m.deactivate)
			}
			if n.qidx != nil {
				n.qidx.remove(m.deactivate, nq)
			}
			delete(n.queries, m.deactivate)
		}
	}
}

func (n *matchNode) setMatched(docID, key string, nq *nodeQuery) {
	if n.qidx == nil {
		return // scan baseline: nothing reads the reverse map
	}
	m := n.matchedBy[docID]
	if m == nil {
		m = map[string]*nodeQuery{}
		n.matchedBy[docID] = m
	}
	m[key] = nq
}

func (n *matchNode) clearMatched(docID, key string) {
	if n.qidx == nil {
		return
	}
	if m, ok := n.matchedBy[docID]; ok {
		delete(m, key)
		if len(m) == 0 {
			delete(n.matchedBy, docID)
		}
	}
}

// match evaluates one after-image against the candidate queries — the
// "Is Match? / Was Match?" decision of Figure 6 — and emits or forwards
// the resulting add/remove/change events.
//
// With the inverted query index, candidates are the union of (a) queries
// registered under a posting the after-image carries — covering every
// possible is-match — and (b) queries currently containing the document —
// covering every possible was-match — and (c) residual queries with no
// derivable posting. Any query outside that union can produce neither
// transition nor change, so skipping it is exact, not approximate.
func (n *matchNode) match(ev store.ChangeEvent) {
	docID := ev.After.ID
	if n.qidx == nil {
		for key, nq := range n.queries {
			n.matchOne(key, nq, &ev, docID)
		}
		return
	}
	cands := make(map[string]*nodeQuery, 1+len(n.qidx.residual))
	n.qidx.collect(&ev, cands)
	for key, nq := range n.matchedBy[docID] {
		cands[key] = nq
	}
	for key, nq := range cands {
		n.matchOne(key, nq, &ev, docID)
	}
}

func (n *matchNode) matchOne(key string, nq *nodeQuery, ev *store.ChangeEvent, docID string) {
	if nq.q.Table != ev.Table {
		return
	}
	if ev.Seq <= nq.asOf {
		// Already reflected in the activation's initial match set.
		return
	}
	n.cluster.evaluated.Add(1)
	_, was := nq.wasMatch[docID]
	is := !ev.Deleted && nq.q.Predicate.Matches(ev.After.Fields)
	var evType EventType
	switch {
	case is && !was:
		evType = EventAdd
		nq.wasMatch[docID] = struct{}{}
		n.setMatched(docID, key, nq)
	case !is && was:
		evType = EventRemove
		delete(nq.wasMatch, docID)
		n.clearMatched(docID, key)
	case is && was:
		evType = EventChange
	default:
		return // never matched: irrelevant update
	}

	if nq.stateful {
		// The order layer owns windowing; it needs every predicate
		// transition including changes (a change can reorder results).
		kind := rawAdd
		switch evType {
		case EventRemove:
			kind = rawRemove
		case EventChange:
			kind = rawChange
		}
		n.cluster.forwardToOrder(rawEvent{
			kind:      kind,
			queryKey:  key,
			doc:       ev.After,
			seq:       ev.Seq,
			eventTime: ev.Time,
		})
		return
	}
	if !nq.mask.Has(evType) {
		return
	}
	n.cluster.emit(Notification{
		QueryKey:  key,
		Type:      evType,
		Doc:       ev.After,
		Index:     -1,
		Seq:       ev.Seq,
		EventTime: ev.Time,
	})
}
