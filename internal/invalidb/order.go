package invalidb

import (
	"sort"
	"sync"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// rawKind classifies events flowing from the matching grid into the order
// layer.
type rawKind int

const (
	rawActivate rawKind = iota
	rawDeactivate
	rawAdd
	rawRemove
	rawChange
)

// rawEvent is a predicate-level transition for a stateful query, or an
// activation/deactivation control message.
type rawEvent struct {
	kind      rawKind
	queryKey  string
	doc       *document.Document
	seq       uint64
	eventTime time.Time
	reg       *Registration // for rawActivate
}

// orderState maintains the full ordered match set of one stateful query —
// "the entirety of all items in the offset" — so that windowed membership
// and positional changes (changeIndex) can be derived exactly.
type orderState struct {
	q       *query.Query
	mask    EventMask
	members []*document.Document // sorted by q.Less, full predicate matches
}

// orderTask owns the order-related state of all stateful queries in one
// query partition. It carries no ordering-compensation machinery of its
// own: the store's commit pipeline delivers the change stream in strict
// global Seq order, a document's events all pass through the same
// object-partition cell, and each cell forwards to this task over one
// FIFO channel — so per-document rawEvents arrive here in write order,
// and the remove+reinsert membership updates below need no Seq
// comparisons to converge on the correct window.
type orderTask struct {
	cluster *Cluster
	in      <-chan rawEvent
	states  map[string]*orderState
}

func newOrderTask(c *Cluster, in <-chan rawEvent) *orderTask {
	return &orderTask{cluster: c, in: in, states: map[string]*orderState{}}
}

func (t *orderTask) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case ev := <-t.in:
			t.handle(ev)
		case <-t.cluster.done:
			return
		}
	}
}

func (t *orderTask) handle(ev rawEvent) {
	switch ev.kind {
	case rawActivate:
		st := &orderState{q: ev.reg.Query, mask: ev.reg.Mask}
		st.members = append(st.members, ev.reg.InitialMatches...)
		sort.Slice(st.members, func(i, j int) bool { return st.q.Less(st.members[i], st.members[j]) })
		t.states[ev.queryKey] = st
	case rawDeactivate:
		delete(t.states, ev.queryKey)
	case rawAdd, rawRemove, rawChange:
		defer t.cluster.inflight.Add(-1)
		st, ok := t.states[ev.queryKey]
		if !ok {
			return
		}
		t.apply(st, ev)
	}
}

// window returns the ids of the documents visible through the query's
// OFFSET/LIMIT window, in order.
func (st *orderState) window() []*document.Document {
	lo := st.q.Offset
	if lo > len(st.members) {
		lo = len(st.members)
	}
	hi := len(st.members)
	if st.q.Limit > 0 && lo+st.q.Limit < hi {
		hi = lo + st.q.Limit
	}
	return st.members[lo:hi]
}

// apply mutates the ordered member list and emits the windowed difference:
// documents entering the window produce add, leaving produce remove,
// repositioning produces changeIndex, and in-place state change of the
// triggering document produces change.
func (t *orderTask) apply(st *orderState, ev rawEvent) {
	// Copy the pre-mutation window: window() returns a view into members,
	// which insert/remove mutate in place.
	before := append([]*document.Document(nil), st.window()...)
	beforeIdx := make(map[string]int, len(before))
	for i, d := range before {
		beforeIdx[d.ID] = i
	}

	switch ev.kind {
	case rawAdd:
		st.insert(ev.doc)
	case rawRemove:
		st.remove(ev.doc.ID)
	case rawChange:
		// Sort keys may have moved: remove the stale entry, reinsert with
		// the new after-image.
		st.remove(ev.doc.ID)
		st.insert(ev.doc)
	}

	after := st.window()
	afterIdx := make(map[string]int, len(after))
	for i, d := range after {
		afterIdx[d.ID] = i
	}

	emit := func(typ EventType, doc *document.Document, idx int) {
		if !st.mask.Has(typ) {
			return
		}
		t.cluster.emit(Notification{
			QueryKey:  ev.queryKey,
			Type:      typ,
			Doc:       doc,
			Index:     idx,
			Seq:       ev.seq,
			EventTime: ev.eventTime,
		})
	}

	// Removals first (stable ordering of emitted events).
	for _, d := range before {
		if _, still := afterIdx[d.ID]; !still {
			emit(EventRemove, d, -1)
		}
	}
	for i, d := range after {
		prev, was := beforeIdx[d.ID]
		switch {
		case !was:
			emit(EventAdd, d, i)
		case prev != i:
			emit(EventChangeIndex, d, i)
		case d.ID == ev.doc.ID && ev.kind == rawChange:
			emit(EventChange, d, i)
		}
	}
}

// insert places doc at its sorted position.
func (st *orderState) insert(doc *document.Document) {
	pos := sort.Search(len(st.members), func(i int) bool {
		return st.q.Less(doc, st.members[i])
	})
	st.members = append(st.members, nil)
	copy(st.members[pos+1:], st.members[pos:])
	st.members[pos] = doc
}

// remove deletes the member with the given id (linear scan; result sets in
// the target workloads are small relative to the change rate).
func (st *orderState) remove(id string) {
	for i, d := range st.members {
		if d.ID == id {
			st.members = append(st.members[:i], st.members[i+1:]...)
			return
		}
	}
}
