package invalidb

import (
	"fmt"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/kvstore"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

func ratedPost(id string, rating int, tags ...string) *document.Document {
	arr := make([]any, len(tags))
	for i, tg := range tags {
		arr[i] = tg
	}
	return document.New(id, map[string]any{"tags": arr, "rating": int64(rating)})
}

// topQuery returns "top `limit` by rating" over tag-matching posts.
func topQuery(tag string, offset, limit int) *query.Query {
	return query.New("posts", query.Contains("tags", tag)).
		Sorted(query.Desc("rating")).Sliced(offset, limit)
}

func TestStatefulWindowAddWithIndex(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := cluster.Activate(Registration{Query: topQuery("x", 0, 2), Mask: MaskObjectList}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", ratedPost("a", 10, "x")); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 1)
	if evs[0].Type != EventAdd || evs[0].Index != 0 {
		t.Fatalf("first insert should land at index 0: %+v", evs[0])
	}
	// A higher-rated post takes position 0 and shifts "a" to 1.
	if err := db.Insert("posts", ratedPost("b", 50, "x")); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs = col.wait(t, 3)
	types := map[EventType]Notification{}
	for _, ev := range evs[1:] {
		types[ev.Type] = ev
	}
	add, hasAdd := types[EventAdd]
	ci, hasCI := types[EventChangeIndex]
	if !hasAdd || add.Doc.ID != "b" || add.Index != 0 {
		t.Errorf("add event wrong: %+v", add)
	}
	if !hasCI || ci.Doc.ID != "a" || ci.Index != 1 {
		t.Errorf("changeIndex event wrong: %+v", ci)
	}
}

func TestStatefulWindowEviction(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	// Window holds top-2; inserting three posts must evict the lowest.
	if err := cluster.Activate(Registration{Query: topQuery("x", 0, 2), Mask: MaskObjectList}); err != nil {
		t.Fatal(err)
	}
	for i, r := range []int{10, 20} {
		if err := db.Insert("posts", ratedPost(fmt.Sprintf("p%d", i), r, "x")); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Quiesce(5 * time.Second)
	before := len(col.wait(t, 2))
	// rating 30 enters at index 0, pushing p0 (rating 10) out of the window.
	if err := db.Insert("posts", ratedPost("p2", 30, "x")); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, before+2)[before:]
	var sawRemove, sawAdd bool
	for _, ev := range evs {
		switch ev.Type {
		case EventRemove:
			if ev.Doc.ID != "p0" {
				t.Errorf("evicted %s, want p0", ev.Doc.ID)
			}
			sawRemove = true
		case EventAdd:
			if ev.Doc.ID != "p2" || ev.Index != 0 {
				t.Errorf("add = %+v", ev)
			}
			sawAdd = true
		}
	}
	if !sawRemove || !sawAdd {
		t.Errorf("window eviction events missing: %v", evs)
	}
}

func TestStatefulOffsetWindow(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	// Pre-populate ratings 40,30,20,10 then register offset=1 limit=2
	// (window = ranks 2-3: ratings 30,20).
	ratings := map[string]int{"a": 40, "b": 30, "c": 20, "d": 10}
	for id, r := range ratings {
		if err := db.Insert("posts", ratedPost(id, r, "x")); err != nil {
			t.Fatal(err)
		}
	}
	docs, _ := db.Query(query.New("posts", query.Contains("tags", "x")))
	q := topQuery("x", 1, 2)
	if err := cluster.Activate(Registration{
		Query: q, Mask: MaskObjectList,
		InitialMatches: docs, AsOfSeq: db.LastSeq(),
	}); err != nil {
		t.Fatal(err)
	}
	// Bump "d" to rating 35: enters window at index 1... ordering: a(40),
	// d(35), b(30), c(20) -> window [d(0->idx0? offset=1)]: ranks are
	// a, d, b, c; window offset1,limit2 = {d? no: index1=d, index2=b}.
	// Before: window = {b, c}; after: window = {d, b}: c removed, d added,
	// b repositioned 0->1.
	if _, err := db.Update("posts", "d", store.UpdateSpec{Set: map[string]any{"rating": 35}}); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 3)
	got := map[EventType]string{}
	for _, ev := range evs {
		got[ev.Type] = ev.Doc.ID
	}
	if got[EventRemove] != "c" || got[EventAdd] != "d" || got[EventChangeIndex] != "b" {
		t.Errorf("offset window diff wrong: %v", got)
	}
}

func TestStatefulChangeWithoutReorder(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := db.Insert("posts", ratedPost("a", 10, "x")); err != nil {
		t.Fatal(err)
	}
	docs, _ := db.Query(query.New("posts", query.Contains("tags", "x")))
	if err := cluster.Activate(Registration{
		Query: topQuery("x", 0, 5), Mask: MaskObjectList,
		InitialMatches: docs, AsOfSeq: db.LastSeq(),
	}); err != nil {
		t.Fatal(err)
	}
	// Changing a non-sort field keeps position: change event with index.
	if _, err := db.Update("posts", "a", store.UpdateSpec{Set: map[string]any{"title": "new"}}); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 1)
	if evs[0].Type != EventChange || evs[0].Index != 0 {
		t.Errorf("in-place change = %+v", evs[0])
	}
}

func TestStatefulRemoveFromPredicate(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := db.Insert("posts", ratedPost("a", 10, "x")); err != nil {
		t.Fatal(err)
	}
	docs, _ := db.Query(query.New("posts", query.Contains("tags", "x")))
	if err := cluster.Activate(Registration{
		Query: topQuery("x", 0, 5), Mask: MaskObjectList,
		InitialMatches: docs, AsOfSeq: db.LastSeq(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("posts", "a", store.UpdateSpec{Set: map[string]any{"tags": []any{}}}); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 1)
	if evs[0].Type != EventRemove {
		t.Errorf("predicate exit should remove: %+v", evs[0])
	}
}

// TestStatefulWindowMatchesDirectEvaluation is a randomized property: after
// any sequence of writes, the order layer's window notifications, replayed
// onto a shadow result, equal a from-scratch evaluation of the windowed
// query against the store.
func TestStatefulWindowMatchesDirectEvaluation(t *testing.T) {
	db, cluster, col := newTestPipeline(t, &Config{QueryPartitions: 2, ObjectPartitions: 2})
	q := topQuery("x", 0, 3)
	if err := cluster.Activate(Registration{Query: q, Mask: MaskObjectList}); err != nil {
		t.Fatal(err)
	}
	rng := func(i, m int) int { return (i*48271 + 31) % m }
	for i := 0; i < 120; i++ {
		id := fmt.Sprintf("p%d", rng(i, 8))
		rating := rng(i*7, 100)
		tag := "x"
		if rng(i*13, 4) == 0 {
			tag = "other"
		}
		if _, err := db.Get("posts", id); err != nil {
			if err := db.Insert("posts", ratedPost(id, rating, tag)); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := db.Update("posts", id, store.UpdateSpec{Set: map[string]any{
				"rating": int64(rating), "tags": []any{tag},
			}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !cluster.Quiesce(10 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	time.Sleep(30 * time.Millisecond)

	// Replay the notifications into a shadow window.
	shadow := map[string]int{} // id -> last index
	for _, ev := range col.snapshot() {
		switch ev.Type {
		case EventAdd, EventChangeIndex, EventChange:
			shadow[ev.Doc.ID] = ev.Index
		case EventRemove:
			delete(shadow, ev.Doc.ID)
		}
	}
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(shadow) != len(want) {
		t.Fatalf("shadow window has %d members, direct evaluation %d (%v vs %v)", len(shadow), len(want), shadow, want)
	}
	for i, d := range want {
		if got, ok := shadow[d.ID]; !ok || got != i {
			t.Errorf("member %s: shadow index %d (present=%v), want %d", d.ID, got, ok, i)
		}
	}
}

func TestBridgeRoundTrip(t *testing.T) {
	// No collector here: the bridge must be the sole notification consumer.
	db := store.MustOpen(nil)
	defer db.Close()
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(nil)
	defer cluster.Stop()
	detach := cluster.AttachStore(db)
	defer detach()

	kv := kvstore.New()
	defer kv.Close()
	bridge := NewBridge(cluster, kv, "invalidations")
	defer bridge.Close()

	if err := cluster.Activate(Registration{Query: tagQuery("x"), Mask: MaskObjectList}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", post("p1", "x")); err != nil {
		t.Fatal(err)
	}
	n, ok, err := Receive(kv, "invalidations", 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("Receive: %v %v", ok, err)
	}
	if n.Type != EventAdd || n.Doc.ID != "p1" || n.QueryKey != tagQuery("x").Key() {
		t.Errorf("bridged notification = %+v", n)
	}
	if n.Doc.Fields == nil {
		t.Error("bridged doc lost fields")
	}
}
