// Package invalidb implements InvaliDB, Quaestor's scalable real-time
// query-invalidation pipeline (Section 4.1).
//
// InvaliDB continuously matches record after-images from the database's
// change stream against all registered (cached) queries and notifies
// Quaestor the moment a cached result becomes stale. The workload is
// distributed over a 2-D grid: the set of active queries is hash-partitioned
// into query partitions (columns) and the change stream into object
// partitions (rows); each matching task owns one (row, column) cell, so it
// is responsible for a subset of all queries and only a fraction of their
// result sets. Ingestion consumes the store's ordered commit pipeline
// directly: the source delivers events in strict global Seq order, so the
// per-key reordering compensation this layer used to carry (routing events
// through id-hashed ingestion tasks) is gone, replaced by an assertion.
//
// Notification events follow the paper: add (an object enters a result
// set), remove (it leaves), change (a contained object's state changes
// without altering membership) and changeIndex (positional change within a
// sorted/limited result). Stateless predicates are matched entirely inside
// the grid cell; ORDER BY / LIMIT / OFFSET queries additionally flow
// through a separate order-maintenance layer partitioned by query.
//
// The paper runs this topology on Apache Storm; here each task is a
// goroutine connected by channels, preserving the partitioning scheme that
// the paper's linear scalability derives from.
package invalidb

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// EventType classifies a notification.
type EventType int

// Notification event kinds (Section 4.1 "Notification Events").
const (
	EventAdd EventType = iota
	EventRemove
	EventChange
	EventChangeIndex
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventAdd:
		return "add"
	case EventRemove:
		return "remove"
	case EventChange:
		return "change"
	case EventChangeIndex:
		return "changeIndex"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// EventMask selects which notification events a subscription receives.
type EventMask uint8

// Masks for the two useful subscription combinations (Section 4.1): id-list
// results only need membership changes, object-list results also need state
// changes of contained objects.
const (
	MaskAdd         EventMask = 1 << EventAdd
	MaskRemove      EventMask = 1 << EventRemove
	MaskChange      EventMask = 1 << EventChange
	MaskChangeIndex EventMask = 1 << EventChangeIndex

	// MaskIDList invalidates only on result-set membership changes.
	MaskIDList = MaskAdd | MaskRemove | MaskChangeIndex
	// MaskObjectList additionally invalidates when a contained object
	// changes state.
	MaskObjectList = MaskIDList | MaskChange
)

// Has reports whether the mask includes t.
func (m EventMask) Has(t EventType) bool { return m&(1<<t) != 0 }

// Notification reports one query-result change.
type Notification struct {
	QueryKey string
	Type     EventType
	// Doc is the after-image that triggered the event (nil fields for
	// deletes). For changeIndex it is the repositioned document.
	Doc *document.Document
	// Index is the document's new position inside the windowed result for
	// sorted queries; -1 for stateless queries.
	Index int
	// Seq is the change-stream sequence number of the triggering write.
	Seq uint64
	// EventTime is when the write happened; DetectedAt when InvaliDB
	// matched it. DetectedAt − EventTime is the notification latency the
	// paper measures in Figure 12.
	EventTime  time.Time
	DetectedAt time.Time
}

// Registration activates a query in the pipeline.
type Registration struct {
	// Query to match. Must not be nil.
	Query *query.Query
	// Mask selects the delivered events (default MaskObjectList).
	Mask EventMask
	// InitialMatches is the full set of documents currently matching the
	// query *predicate* (for stateful queries this is the unwindowed match
	// set — InvaliDB "has to be aware of the result sets of all newly added
	// queries in order to maintain their correct state").
	InitialMatches []*document.Document
	// AsOfSeq is the change-stream sequence number the initial evaluation
	// reflects. Replay events with Seq > AsOfSeq close the activation gap.
	AsOfSeq uint64
	// AsOfSeqs carries per-object-row sequence floors for sharded
	// deployments, where each row follows one shard's independent Seq
	// space (indexed by row; missing/short slices fall back to AsOfSeq).
	AsOfSeqs []uint64
	// Replay holds recent change events to re-process on activation
	// ("all recently received objects are replayed for a query when it is
	// installed").
	Replay []store.ChangeEvent
}

// Common errors.
var (
	ErrStopped       = errors.New("invalidb: cluster is stopped")
	ErrNilQuery      = errors.New("invalidb: registration query must not be nil")
	ErrAtCapacity    = errors.New("invalidb: query capacity exhausted")
	ErrNotRegistered = errors.New("invalidb: query not registered")
)

// Config sizes the cluster.
type Config struct {
	// QueryPartitions is the number of columns; ObjectPartitions the number
	// of rows. Matching tasks = QueryPartitions × ObjectPartitions.
	// Defaults: 1 × 1.
	QueryPartitions  int
	ObjectPartitions int
	// Buffer is the channel depth between stages (default 1024).
	Buffer int
	// MaxQueries caps the number of active queries (0 = unlimited); this is
	// the raw capacity behind Quaestor's admission model.
	MaxQueries int
	// DisableQueryIndex turns off the per-cell inverted index over
	// registered queries, so every after-image is tested against every
	// query — the O(N·Q) baseline. Benchmarks use it to measure the
	// candidate-pruning speedup.
	DisableQueryIndex bool
	// Placement overrides the object-partition row for a document id
	// (result is taken modulo ObjectPartitions). A sharded deployment
	// passes the cluster ShardMap's placement so each row consumes
	// exactly one shard's ordered change stream — the paper's
	// query×object matrix keyed off the same shard map that routes
	// writes. Nil: FNV hash of the id.
	Placement func(docID string) int
	// Clock supplies timestamps (default time.Now).
	Clock func() time.Time
}

func (c *Config) withDefaults() Config {
	out := Config{QueryPartitions: 1, ObjectPartitions: 1, Buffer: 1024, Clock: time.Now}
	if c == nil {
		return out
	}
	if c.QueryPartitions > 0 {
		out.QueryPartitions = c.QueryPartitions
	}
	if c.ObjectPartitions > 0 {
		out.ObjectPartitions = c.ObjectPartitions
	}
	if c.Buffer > 0 {
		out.Buffer = c.Buffer
	}
	out.MaxQueries = c.MaxQueries
	out.DisableQueryIndex = c.DisableQueryIndex
	out.Placement = c.Placement
	if c.Clock != nil {
		out.Clock = c.Clock
	}
	return out
}

// Cluster is a running InvaliDB deployment.
type Cluster struct {
	cfg   Config
	nodes [][]*matchNode // [objectPartition][queryPartition]

	orderCh []chan rawEvent // order layer, partitioned by query
	orders  []*orderTask

	out  chan Notification
	done chan struct{}

	mu        sync.Mutex
	active    map[string]*activeQuery // by query key
	attached  []*attachedStore
	stopped   bool
	wg        sync.WaitGroup
	detected  atomic.Uint64
	ingested  atomic.Uint64
	evaluated atomic.Uint64 // candidate query predicate evaluations
	inflight  atomic.Int64  // events accepted but not yet fully matched
	// disorder counts attached-stream events whose Seq was not strictly
	// increasing — the assertion that replaced this layer's own per-key
	// reordering machinery now that the commit pipeline owns ordering.
	disorder atomic.Uint64
	clock    func() time.Time
}

type activeQuery struct {
	q    *query.Query
	mask EventMask
	col  int
}

// NewCluster builds and starts an InvaliDB cluster.
func NewCluster(cfg *Config) *Cluster {
	conf := cfg.withDefaults()
	c := &Cluster{
		cfg:    conf,
		out:    make(chan Notification, conf.Buffer),
		done:   make(chan struct{}),
		active: map[string]*activeQuery{},
		clock:  conf.Clock,
	}
	c.nodes = make([][]*matchNode, conf.ObjectPartitions)
	for row := range c.nodes {
		c.nodes[row] = make([]*matchNode, conf.QueryPartitions)
		for col := range c.nodes[row] {
			n := newMatchNode(c, row, col, conf.Buffer)
			c.nodes[row][col] = n
			c.wg.Add(1)
			go n.run(&c.wg)
		}
	}
	// Order layer: one task per query partition, so order state for a
	// single query lives in exactly one place ("maintains order-related
	// state in a separate processing layer partitioned by query").
	c.orderCh = make([]chan rawEvent, conf.QueryPartitions)
	c.orders = make([]*orderTask, conf.QueryPartitions)
	for i := range c.orderCh {
		c.orderCh[i] = make(chan rawEvent, conf.Buffer)
		c.orders[i] = newOrderTask(c, c.orderCh[i])
		c.wg.Add(1)
		go c.orders[i].run(&c.wg)
	}
	return c
}

// hash32 routes strings to partitions.
func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func (c *Cluster) queryColumn(queryKey string) int {
	return int(hash32(queryKey) % uint32(c.cfg.QueryPartitions))
}

func (c *Cluster) objectRow(docID string) int {
	if c.cfg.Placement != nil {
		return c.cfg.Placement(docID) % c.cfg.ObjectPartitions
	}
	return int(hash32(docID) % uint32(c.cfg.ObjectPartitions))
}

// Notifications returns the stream of invalidation events. The channel
// closes after Stop.
func (c *Cluster) Notifications() <-chan Notification { return c.out }

// sendMsg delivers m to a node unless the cluster stops first.
func (c *Cluster) sendMsg(n *matchNode, m nodeMsg) bool {
	select {
	case n.in <- m:
		return true
	case <-c.done:
		return false
	}
}

// sendOrder delivers a raw event to the order layer unless stopping.
func (c *Cluster) sendOrder(col int, ev rawEvent) bool {
	select {
	case c.orderCh[col] <- ev:
		return true
	case <-c.done:
		return false
	}
}

// Activate registers a query for continuous matching. The registration is
// installed on every matching task in the query's partition column; each
// cell keeps was-match state only for its own object partition.
func (c *Cluster) Activate(reg Registration) error {
	if reg.Query == nil {
		return ErrNilQuery
	}
	if reg.Mask == 0 {
		reg.Mask = MaskObjectList
	}
	key := reg.Query.Key()
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return ErrStopped
	}
	if _, ok := c.active[key]; ok {
		c.mu.Unlock()
		return nil // idempotent re-activation
	}
	if c.cfg.MaxQueries > 0 && len(c.active) >= c.cfg.MaxQueries {
		c.mu.Unlock()
		return fmt.Errorf("%w (%d active)", ErrAtCapacity, c.cfg.MaxQueries)
	}
	col := c.queryColumn(key)
	c.active[key] = &activeQuery{q: reg.Query, mask: reg.Mask, col: col}
	c.mu.Unlock()

	// Install order state first so windowed events produced by replay have
	// somewhere to land.
	if reg.Query.Stateful() {
		c.sendOrder(col, rawEvent{kind: rawActivate, queryKey: key, reg: &reg})
	}
	// Partition the initial match set by object row and install per-cell.
	byRow := make([][]*document.Document, c.cfg.ObjectPartitions)
	for _, d := range reg.InitialMatches {
		row := c.objectRow(d.ID)
		byRow[row] = append(byRow[row], d)
	}
	rowAsOf := func(row int) uint64 {
		if row < len(reg.AsOfSeqs) {
			return reg.AsOfSeqs[row]
		}
		return reg.AsOfSeq
	}
	for row := 0; row < c.cfg.ObjectPartitions; row++ {
		c.sendMsg(c.nodes[row][col], nodeMsg{activate: &nodeActivation{
			q:       reg.Query,
			mask:    reg.Mask,
			initial: byRow[row],
			asOf:    rowAsOf(row),
		}})
	}
	// Replay recent events through the normal ingestion path; the grid
	// routes them to the right cells. Events at or before the row's floor
	// are already reflected in InitialMatches. Floors are per row: in a
	// sharded deployment each row follows one shard's independent Seq
	// space, so a single global floor would over- or under-replay.
	for _, ev := range reg.Replay {
		if ev.After == nil {
			continue // sequenced DDL: no document to match
		}
		if ev.Seq > rowAsOf(c.objectRow(ev.After.ID)) {
			c.Ingest(ev)
		}
	}
	return nil
}

// Deactivate removes a query from the pipeline.
func (c *Cluster) Deactivate(queryKey string) error {
	c.mu.Lock()
	aq, ok := c.active[queryKey]
	if !ok {
		c.mu.Unlock()
		return ErrNotRegistered
	}
	delete(c.active, queryKey)
	stopped := c.stopped
	c.mu.Unlock()
	if stopped {
		return nil
	}
	for row := 0; row < c.cfg.ObjectPartitions; row++ {
		c.sendMsg(c.nodes[row][aq.col], nodeMsg{deactivate: queryKey})
	}
	if aq.q.Stateful() {
		c.sendOrder(aq.col, rawEvent{kind: rawDeactivate, queryKey: queryKey})
	}
	return nil
}

// Ingest feeds one change event into the matching grid: it fans the
// event out to every cell of its object-partition row. Callers that need
// end-to-end ordering must call Ingest from a single goroutine consuming
// an ordered stream (AttachStore does); the routing-by-document-id
// ingestion layer that used to reconstruct per-record order here is gone
// now that the store's commit pipeline delivers events in strict global
// Seq order.
func (c *Cluster) Ingest(ev store.ChangeEvent) {
	if ev.After == nil {
		return // sequenced DDL rides the stream but carries no document
	}
	c.ingested.Add(1)
	row := c.objectRow(ev.After.ID)
	for _, n := range c.nodes[row] {
		c.inflight.Add(1)
		if !c.sendMsg(n, nodeMsg{event: &ev}) {
			c.inflight.Add(-1)
		}
	}
}

// attachedStore tracks pump progress for one subscribed store so Quiesce
// can account for events still sitting between the store and Ingest.
type attachedStore struct {
	st     *store.Store
	pumped atomic.Uint64
}

// AttachStore pumps a store's ordered change stream into the cluster
// until the store closes or the cluster stops. It returns a cancel
// function. The pump asserts the commit pipeline's contract — strictly
// increasing Seq — and counts violations in OrderViolations. Synthetic
// events (a snapshot import's old-vs-imported diff) are exempt: they
// share the snapshot floor as their Seq by design, so a floor-sequenced
// run is not disorder — the batch as a whole still lands between the
// pre-import tail and the first post-import event.
func (c *Cluster) AttachStore(s *store.Store) func() {
	ch, cancel := s.SubscribeNamed("invalidb")
	att := &attachedStore{st: s}
	c.mu.Lock()
	c.attached = append(c.attached, att)
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for ev := range ch {
			if ev.Seq <= last && !ev.Synthetic {
				c.disorder.Add(1)
			}
			if ev.Seq > last {
				last = ev.Seq
			}
			c.Ingest(ev)
			att.pumped.Store(last)
		}
	}()
	return func() {
		cancel()
		<-done
		c.mu.Lock()
		for i, a := range c.attached {
			if a == att {
				c.attached = append(c.attached[:i:i], c.attached[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
	}
}

// drained reports whether no event is in flight anywhere: between attached
// stores and Ingest, between stages, or inside a matching task.
func (c *Cluster) drained() bool {
	if c.inflight.Load() != 0 {
		return false
	}
	c.mu.Lock()
	attached := append([]*attachedStore(nil), c.attached...)
	c.mu.Unlock()
	for _, a := range attached {
		if a.pumped.Load() < a.st.LastSeq() {
			return false
		}
	}
	return true
}

// Quiesce blocks until every ingested event has been fully matched (or the
// timeout elapses), returning whether the pipeline drained. Tests and the
// evaluation harness use this instead of sleeping.
func (c *Cluster) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.drained() {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return c.drained()
}

// ActiveQueries returns the number of registered queries.
func (c *Cluster) ActiveQueries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// MatchingNodes returns the grid size (rows × columns).
func (c *Cluster) MatchingNodes() int {
	return c.cfg.ObjectPartitions * c.cfg.QueryPartitions
}

// Stats reports (ingested events, emitted notifications).
func (c *Cluster) Stats() (ingested, notifications uint64) {
	return c.ingested.Load(), c.detected.Load()
}

// EvaluatedMatches returns how many (event, query) predicate evaluations
// the matching tasks have performed. With the inverted query index this
// counts only candidate queries, so the ratio against
// ingested × registered queries measures the index's pruning power.
func (c *Cluster) EvaluatedMatches() uint64 { return c.evaluated.Load() }

// OrderViolations returns how many attached-stream events arrived with a
// non-increasing Seq. The commit pipeline guarantees this stays zero;
// the property tests assert it.
func (c *Cluster) OrderViolations() uint64 { return c.disorder.Load() }

// emit delivers a notification, stamping detection time. Blocks for
// backpressure rather than dropping; drops only during shutdown.
func (c *Cluster) emit(n Notification) {
	n.DetectedAt = c.clock()
	select {
	case c.out <- n:
		c.detected.Add(1)
	case <-c.done:
	}
}

// forwardToOrder hands a raw predicate-level event to the order layer.
func (c *Cluster) forwardToOrder(ev rawEvent) {
	c.inflight.Add(1)
	if !c.sendOrder(c.queryColumn(ev.queryKey), ev) {
		c.inflight.Add(-1)
	}
}

// Stop shuts the pipeline down and closes the notification channel.
// Events still in flight are dropped.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
	close(c.out)
}
