package invalidb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// collector drains a cluster's notifications into a slice.
type collector struct {
	mu     sync.Mutex
	events []Notification
	done   chan struct{}
}

func collect(c *Cluster) *collector {
	col := &collector{done: make(chan struct{})}
	go func() {
		defer close(col.done)
		for n := range c.Notifications() {
			col.mu.Lock()
			col.events = append(col.events, n)
			col.mu.Unlock()
		}
	}()
	return col
}

func (col *collector) snapshot() []Notification {
	col.mu.Lock()
	defer col.mu.Unlock()
	return append([]Notification(nil), col.events...)
}

// wait polls until the collector holds at least n events or times out.
func (col *collector) wait(t *testing.T, n int) []Notification {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if evs := col.snapshot(); len(evs) >= n {
			return evs
		}
		time.Sleep(time.Millisecond)
	}
	evs := col.snapshot()
	t.Fatalf("timed out waiting for %d notifications, have %d: %v", n, len(evs), evs)
	return nil
}

func newTestPipeline(t *testing.T, cfg *Config) (*store.Store, *Cluster, *collector) {
	t.Helper()
	db := store.MustOpen(nil)
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(cfg)
	detach := cluster.AttachStore(db)
	col := collect(cluster)
	t.Cleanup(func() {
		detach()
		cluster.Stop()
		<-col.done
		db.Close()
	})
	return db, cluster, col
}

func tagQuery(tag string) *query.Query {
	return query.New("posts", query.Contains("tags", tag))
}

func post(id string, tags ...string) *document.Document {
	arr := make([]any, len(tags))
	for i, tg := range tags {
		arr[i] = tg
	}
	return document.New(id, map[string]any{"tags": arr, "rating": int64(len(id))})
}

func TestAddChangeRemoveLifecycle(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := cluster.Activate(Registration{Query: tagQuery("example"), Mask: MaskObjectList}); err != nil {
		t.Fatal(err)
	}

	// Figure 5's lifecycle.
	if err := db.Insert("posts", post("p1")); err != nil { // no tags: no event
		t.Fatal(err)
	}
	if _, err := db.Update("posts", "p1", store.UpdateSpec{Push: map[string]any{"tags": "example"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("posts", "p1", store.UpdateSpec{Push: map[string]any{"tags": "music"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("posts", "p1", store.UpdateSpec{Pull: map[string]any{"tags": "example"}}); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 3)
	if len(evs) != 3 {
		t.Fatalf("want exactly add/change/remove, got %v", evs)
	}
	if evs[0].Type != EventAdd || evs[1].Type != EventChange || evs[2].Type != EventRemove {
		t.Errorf("lifecycle = %v %v %v", evs[0].Type, evs[1].Type, evs[2].Type)
	}
	for _, ev := range evs {
		if ev.Doc == nil || ev.Doc.ID != "p1" {
			t.Errorf("event doc = %+v", ev.Doc)
		}
		if ev.Index != -1 {
			t.Errorf("stateless query should report index -1, got %d", ev.Index)
		}
		if ev.DetectedAt.Before(ev.EventTime) {
			t.Error("detection before event time")
		}
	}
}

func TestDeleteEmitsRemove(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := db.Insert("posts", post("p1", "example")); err != nil {
		t.Fatal(err)
	}
	asOf := db.LastSeq()
	docs, _ := db.Query(tagQuery("example"))
	if err := cluster.Activate(Registration{
		Query: tagQuery("example"), Mask: MaskObjectList,
		InitialMatches: docs, AsOfSeq: asOf,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 1)
	if evs[0].Type != EventRemove {
		t.Errorf("delete should remove from result, got %v", evs[0].Type)
	}
}

func TestMaskIDListSuppressesChange(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := db.Insert("posts", post("p1", "example")); err != nil {
		t.Fatal(err)
	}
	docs, _ := db.Query(tagQuery("example"))
	if err := cluster.Activate(Registration{
		Query: tagQuery("example"), Mask: MaskIDList,
		InitialMatches: docs, AsOfSeq: db.LastSeq(),
	}); err != nil {
		t.Fatal(err)
	}
	// In-place change: suppressed for id-lists.
	if _, err := db.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"rating": 99}}); err != nil {
		t.Fatal(err)
	}
	// Membership change: delivered.
	if _, err := db.Update("posts", "p1", store.UpdateSpec{Pull: map[string]any{"tags": "example"}}); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 1)
	if len(evs) != 1 || evs[0].Type != EventRemove {
		t.Errorf("id-list mask should deliver only the remove, got %v", evs)
	}
}

func TestInitialMatchesSeedWasMatchState(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := db.Insert("posts", post("p1", "example")); err != nil {
		t.Fatal(err)
	}
	docs, _ := db.Query(tagQuery("example"))
	if err := cluster.Activate(Registration{
		Query: tagQuery("example"), Mask: MaskObjectList,
		InitialMatches: docs, AsOfSeq: db.LastSeq(),
	}); err != nil {
		t.Fatal(err)
	}
	// p1 was already matching: an in-place update must be a change, not add.
	if _, err := db.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"rating": 5}}); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 1)
	if evs[0].Type != EventChange {
		t.Errorf("pre-seeded member should emit change, got %v", evs[0].Type)
	}
}

func TestReplayClosesActivationGap(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	// A write happens between evaluation (asOf) and activation.
	asOf := db.LastSeq()
	if err := db.Insert("posts", post("p1", "example")); err != nil {
		t.Fatal(err)
	}
	// Initial evaluation happened BEFORE the insert: empty result.
	if err := cluster.Activate(Registration{
		Query:          tagQuery("example"),
		Mask:           MaskObjectList,
		InitialMatches: nil,
		AsOfSeq:        asOf,
		Replay:         db.Replay("posts", asOf),
	}); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	evs := col.wait(t, 1)
	if evs[0].Type != EventAdd || evs[0].Doc.ID != "p1" {
		t.Errorf("replay should surface the missed insert: %v", evs)
	}
}

func TestDeactivateStopsNotifications(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	q := tagQuery("example")
	if err := cluster.Activate(Registration{Query: q, Mask: MaskObjectList}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", post("p1", "example")); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	col.wait(t, 1)
	if err := cluster.Deactivate(q.Key()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", post("p2", "example")); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	time.Sleep(50 * time.Millisecond)
	if evs := col.snapshot(); len(evs) != 1 {
		t.Errorf("deactivated query still notified: %v", evs)
	}
	if err := cluster.Deactivate(q.Key()); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("double deactivate: %v", err)
	}
	if cluster.ActiveQueries() != 0 {
		t.Errorf("ActiveQueries = %d", cluster.ActiveQueries())
	}
}

func TestCapacityLimit(t *testing.T) {
	_, cluster, _ := newTestPipeline(t, &Config{MaxQueries: 2})
	if err := cluster.Activate(Registration{Query: tagQuery("a")}); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Activate(Registration{Query: tagQuery("b")}); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Activate(Registration{Query: tagQuery("c")}); !errors.Is(err, ErrAtCapacity) {
		t.Errorf("want ErrAtCapacity, got %v", err)
	}
	// Idempotent re-activation of a registered query is not a capacity hit.
	if err := cluster.Activate(Registration{Query: tagQuery("a")}); err != nil {
		t.Errorf("re-activation failed: %v", err)
	}
	// Freeing a slot admits the blocked query.
	if err := cluster.Deactivate(tagQuery("a").Key()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Activate(Registration{Query: tagQuery("c")}); err != nil {
		t.Errorf("activation after eviction failed: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	_, cluster, _ := newTestPipeline(t, nil)
	if err := cluster.Activate(Registration{}); !errors.Is(err, ErrNilQuery) {
		t.Errorf("nil query: %v", err)
	}
	if err := cluster.Deactivate("unknown"); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("unknown deactivate: %v", err)
	}
}

func TestStopIsIdempotentAndClosesOutput(t *testing.T) {
	cluster := NewCluster(nil)
	cluster.Stop()
	cluster.Stop()
	if _, ok := <-cluster.Notifications(); ok {
		t.Error("notification channel should be closed")
	}
	if err := cluster.Activate(Registration{Query: tagQuery("x")}); !errors.Is(err, ErrStopped) {
		t.Errorf("activate after stop: %v", err)
	}
}

// TestGridShapeEquivalence drives identical workloads through differently
// shaped clusters (1×1, 4×1, 1×4, 2×3) and asserts that the multiset of
// notifications is identical — partitioning must never change semantics,
// only distribution. This is the correctness core of the paper's
// scalability claim.
func TestGridShapeEquivalence(t *testing.T) {
	shapes := []Config{
		{QueryPartitions: 1, ObjectPartitions: 1},
		{QueryPartitions: 4, ObjectPartitions: 1},
		{QueryPartitions: 1, ObjectPartitions: 4},
		{QueryPartitions: 2, ObjectPartitions: 3},
	}
	var reference []string
	for si, shape := range shapes {
		cfg := shape
		db, cluster, col := newTestPipeline(t, &cfg)
		for qi := 0; qi < 10; qi++ {
			if err := cluster.Activate(Registration{Query: tagQuery(fmt.Sprintf("t%d", qi)), Mask: MaskObjectList}); err != nil {
				t.Fatal(err)
			}
		}
		// Deterministic workload touching every query.
		for i := 0; i < 60; i++ {
			id := fmt.Sprintf("p%02d", i%20)
			tag := fmt.Sprintf("t%d", i%10)
			if i%20 == i {
				if err := db.Insert("posts", post(id, tag)); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := db.Update("posts", id, store.UpdateSpec{
					Set: map[string]any{"tags": []any{tag}},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !cluster.Quiesce(10 * time.Second) {
			t.Fatalf("shape %d did not quiesce", si)
		}
		time.Sleep(20 * time.Millisecond)
		var sigs []string
		for _, ev := range col.snapshot() {
			sigs = append(sigs, fmt.Sprintf("%s|%s|%s|%d", ev.QueryKey, ev.Type, ev.Doc.ID, ev.Seq))
		}
		sort.Strings(sigs)
		if si == 0 {
			reference = sigs
			if len(reference) == 0 {
				t.Fatal("reference shape produced no notifications")
			}
			continue
		}
		if len(sigs) != len(reference) {
			t.Fatalf("shape %d produced %d notifications, reference %d", si, len(sigs), len(reference))
		}
		for i := range sigs {
			if sigs[i] != reference[i] {
				t.Fatalf("shape %d diverged at %d: %s vs %s", si, i, sigs[i], reference[i])
			}
		}
	}
}

func TestStatsAndNodeCount(t *testing.T) {
	db, cluster, col := newTestPipeline(t, &Config{QueryPartitions: 2, ObjectPartitions: 2})
	if cluster.MatchingNodes() != 4 {
		t.Errorf("MatchingNodes = %d", cluster.MatchingNodes())
	}
	if err := cluster.Activate(Registration{Query: tagQuery("x")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("posts", post("p1", "x")); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	col.wait(t, 1)
	ingested, notified := cluster.Stats()
	if ingested != 1 || notified != 1 {
		t.Errorf("stats = %d, %d", ingested, notified)
	}
}

func TestDifferentTablesDoNotCrossMatch(t *testing.T) {
	db, cluster, col := newTestPipeline(t, nil)
	if err := db.CreateTable("users"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Activate(Registration{Query: tagQuery("x")}); err != nil { // on posts
		t.Fatal(err)
	}
	if err := db.Insert("users", post("u1", "x")); err != nil {
		t.Fatal(err)
	}
	cluster.Quiesce(5 * time.Second)
	time.Sleep(30 * time.Millisecond)
	if evs := col.snapshot(); len(evs) != 0 {
		t.Errorf("query matched a different table: %v", evs)
	}
}
