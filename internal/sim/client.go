package sim

import (
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/ebf"
	"quaestor/internal/ttl"
	"quaestor/internal/workload"
)

// simClient models one client instance: a browser cache, an EBF view with
// the configured refresh interval, and a workload generator. Each of its
// connections runs a closed loop: finish one operation, immediately start
// the next.
type simClient struct {
	s     *Sim
	id    int
	gen   *workload.Generator
	local *cache.Cache
	view  *ebf.ClientView
}

// clientRecord / clientQuery are browser-cache payload stand-ins carrying
// the version information needed for exact staleness accounting. Id-list
// payloads additionally carry the member ids for assembly.
type clientRecord struct{ version int64 }

type clientQuery struct {
	membershipVersion uint64
	contentVersion    uint64
	rep               ttl.Representation
	memberIDs         []string // id-list only
}

func newSimClient(s *Sim, id int) *simClient {
	c := &simClient{
		s:     s,
		id:    id,
		gen:   workload.NewGenerator(s.world.ds, s.cfg.Mix, s.cfg.ZipfS, s.cfg.Seed+int64(id)*7919),
		local: cache.New(cache.ExpirationBased, 0, s.Clock()),
	}
	if s.world.useClientCache() && !s.cfg.DisableEBF {
		c.view = ebf.NewClientView(s.world.coh.Snapshot())
	}
	return c
}

// step executes one operation for one connection and schedules the next.
func (c *simClient) step() {
	op := c.gen.Next()
	var latency time.Duration
	switch op.Type {
	case workload.OpRead:
		latency = c.doRead(op)
	case workload.OpQuery:
		latency = c.doQuery(op)
	case workload.OpUpdate, workload.OpInsert, workload.OpDelete:
		latency = c.doWrite(op)
	}
	c.s.ops++
	c.s.met.Ops++
	// Closed loop: the next request starts when this one completes, plus
	// optional exponentially distributed think time.
	delay := latency
	if tt := c.s.cfg.ThinkTime; tt > 0 {
		delay += time.Duration(c.s.rand.ExpFloat64() * float64(tt))
	}
	c.s.after(delay, func() { c.step() })
}

// maybeRefreshEBF implements the client freshness policy: the first
// operation after Δ refreshes the filter and revalidates (drops) local
// entries the new filter flags as stale.
func (c *simClient) maybeRefreshEBF() {
	if c.view == nil {
		return
	}
	if c.view.Age(c.s.now) < c.s.cfg.EBFRefresh {
		return
	}
	snap := c.s.world.coh.Snapshot()
	c.view.Refresh(snap)
	for _, key := range c.local.Keys() {
		if snap.Contains(key) {
			c.local.Invalidate(key)
		}
	}
}

func (c *simClient) isStale(key string) bool {
	if c.view == nil {
		return false
	}
	return c.view.IsStale(key)
}

// recordStaleness accounts one stale response.
func (c *simClient) recordStaleness(isQuery, fromCDN bool, since time.Time) {
	m := c.s.met
	if isQuery {
		m.StaleQueries++
	} else {
		m.StaleReads++
	}
	if fromCDN {
		m.StaleCDNServes++
	}
	staleness := c.s.now.Sub(since)
	if staleness < 0 {
		staleness = 0
	}
	m.StalenessEvents++
	m.StalenessSum += staleness
	if staleness > m.MaxStaleness {
		m.MaxStaleness = staleness
	}
}

// doRead executes one record read and returns its end-to-end latency.
func (c *simClient) doRead(op workload.Op) time.Duration {
	w := c.s.world
	m := c.s.met
	m.Reads++
	c.maybeRefreshEBF()
	key := recordKey(op.Table, op.DocID)
	doc := w.docs[op.Table][op.DocID]

	revalidate := c.isStale(key)
	// 1. Browser cache.
	if !revalidate && w.useClientCache() {
		if entry, ok := c.local.Get(key); ok {
			m.ClientHitsReads++
			cr := entry.Value.(clientRecord)
			if doc != nil && cr.version < doc.version {
				c.recordStaleness(false, false, doc.lastWrite)
			}
			lat := c.s.cfg.ClientHitCost
			m.ReadLatency.Observe(lat)
			return lat
		}
	}
	// 2. CDN. Revalidations may also be answered here: invalidation-based
	// caches are purge-maintained, so a present entry is trustworthy —
	// the paper's Δ−Δ_invalidation offloading optimization (Section 3.2).
	if w.useCDN() {
		if entry, ok := w.cdn.Get(key); ok {
			m.CDNHitsReads++
			cr := entry.Value.(cdnRecord)
			if doc != nil && cr.version < doc.version {
				c.recordStaleness(false, true, doc.lastWrite)
			}
			lat := c.s.cfg.ClientCDNRTT + w.cdnDelay()
			// Fill the browser cache for the entry's remaining lifetime.
			if w.useClientCache() {
				if remaining := entry.ExpiresAt.Sub(c.s.now); remaining > 0 {
					c.local.Put(key, clientRecord{version: cr.version}, "", remaining)
				}
			}
			if revalidate {
				c.view.MarkRevalidated(key)
			}
			m.ReadLatency.Observe(lat)
			return lat
		}
	}
	// 3. Origin (miss or revalidation).
	version, dur := w.serveRecordAtOrigin(op.Table, op.DocID)
	if revalidate && c.view != nil {
		c.view.MarkRevalidated(key)
	}
	if dur > 0 {
		if w.useCDN() {
			w.cdn.Put(key, cdnRecord{version: version}, "", dur)
		}
		if w.useClientCache() {
			c.local.Put(key, clientRecord{version: version}, "", dur)
		}
	}
	m.MissReads++
	lat := c.s.cfg.ClientServerRTT + w.originDelay()
	m.ReadLatency.Observe(lat)
	return lat
}

// doQuery executes one query and returns its end-to-end latency.
func (c *simClient) doQuery(op workload.Op) time.Duration {
	w := c.s.world
	m := c.s.met
	m.Queries++
	c.maybeRefreshEBF()
	sq := w.registerQuery(op.Query)
	key := sq.key

	revalidate := c.isStale(key)
	// 1. Browser cache.
	if !revalidate && w.useClientCache() {
		if entry, ok := c.local.Get(key); ok {
			m.ClientHitsQueries++
			cq := entry.Value.(clientQuery)
			stale := cq.contentVersion < sq.contentVersion
			if cq.rep == ttl.IDList {
				stale = cq.membershipVersion < sq.membershipVersion
			}
			if stale {
				c.recordStaleness(true, false, sq.lastChange)
			}
			lat := c.s.cfg.ClientHitCost
			lat += c.assemble(sq, cq.rep, cq.memberIDs)
			m.QueryLatency.Observe(lat)
			return lat
		}
	}
	// 2. CDN — also answers revalidations (see doRead).
	if w.useCDN() {
		if entry, ok := w.cdn.Get(key); ok {
			m.CDNHitsQueries++
			cq := entry.Value.(cdnQuery)
			stale := cq.contentVersion < sq.contentVersion
			if cq.rep == ttl.IDList {
				stale = cq.membershipVersion < sq.membershipVersion
			}
			if stale {
				c.recordStaleness(true, true, sq.lastChange)
			}
			lat := c.s.cfg.ClientCDNRTT + w.cdnDelay()
			if w.useClientCache() {
				if remaining := entry.ExpiresAt.Sub(c.s.now); remaining > 0 {
					c.local.Put(key, clientQuery{
						membershipVersion: cq.membershipVersion,
						contentVersion:    cq.contentVersion,
						rep:               cq.rep,
						memberIDs:         cq.memberIDs,
					}, "", remaining)
				}
			}
			if revalidate {
				c.view.MarkRevalidated(key)
			}
			lat += c.assemble(sq, cq.rep, cq.memberIDs)
			m.QueryLatency.Observe(lat)
			return lat
		}
	}
	// 3. Origin.
	dur := w.serveQueryAtOrigin(sq)
	if revalidate && c.view != nil {
		c.view.MarkRevalidated(key)
	}
	var memberIDs []string
	if sq.rep == ttl.IDList {
		memberIDs = make([]string, 0, len(sq.members))
		for id := range sq.members {
			memberIDs = append(memberIDs, id)
		}
	}
	if dur > 0 {
		if w.useCDN() {
			w.cdn.Put(key, cdnQuery{
				membershipVersion: sq.membershipVersion,
				contentVersion:    sq.contentVersion,
				rep:               sq.rep,
				memberIDs:         memberIDs,
			}, "", dur)
		}
		if w.useClientCache() {
			c.local.Put(key, clientQuery{
				membershipVersion: sq.membershipVersion,
				contentVersion:    sq.contentVersion,
				rep:               sq.rep,
				memberIDs:         memberIDs,
			}, "", dur)
			if sq.rep == ttl.ObjectList {
				// Object-list members fill per-record entries by side effect
				// with the query's TTL.
				for id := range sq.members {
					if doc := w.docs[sq.table][id]; doc != nil {
						c.local.Put(recordKey(sq.table, id), clientRecord{version: doc.version}, "", dur)
					}
				}
			}
		}
	}
	m.MissQueries++
	lat := c.s.cfg.ClientServerRTT + w.originDelay()
	if sq.rep == ttl.IDList {
		lat += c.assemble(sq, ttl.IDList, memberIDs)
	}
	m.QueryLatency.Observe(lat)
	return lat
}

// assemble models fetching an id-list result's member records through the
// cache hierarchy: members already in the browser cache are free, a batch
// of CDN fetches costs one parallel CDN round-trip, and members absent
// from the CDN cost one parallel origin round (plus per-member origin
// capacity). Object-list results need no assembly.
func (c *simClient) assemble(sq *simQuery, rep ttl.Representation, memberIDs []string) time.Duration {
	if rep != ttl.IDList || len(memberIDs) == 0 {
		return 0
	}
	w := c.s.world
	var fromCDN, fromOrigin int
	var lat time.Duration
	for _, id := range memberIDs {
		rk := recordKey(sq.table, id)
		if w.useClientCache() {
			if _, ok := c.local.Get(rk); ok {
				continue
			}
		}
		if w.useCDN() {
			if entry, ok := w.cdn.Get(rk); ok {
				fromCDN++
				if w.useClientCache() {
					if remaining := entry.ExpiresAt.Sub(c.s.now); remaining > 0 {
						cr := entry.Value.(cdnRecord)
						c.local.Put(rk, clientRecord{version: cr.version}, "", remaining)
					}
				}
				continue
			}
		}
		fromOrigin++
		version, rttl := w.serveRecordAtOrigin(sq.table, id)
		lat += w.originDelay() / 4 // members pipeline over parallel connections
		if rttl > 0 {
			if w.useCDN() {
				w.cdn.Put(rk, cdnRecord{version: version}, "", rttl)
			}
			if w.useClientCache() {
				c.local.Put(rk, clientRecord{version: version}, "", rttl)
			}
		}
	}
	if fromCDN > 0 {
		lat += c.s.cfg.ClientCDNRTT // one parallel batch round to the edge
	}
	if fromOrigin > 0 {
		lat += c.s.cfg.ClientServerRTT // one parallel batch round to origin
	}
	c.s.met.AssemblyFetches += uint64(fromCDN + fromOrigin)
	return lat
}

// doWrite executes one update and returns its latency. The client drops the
// record from its own cache (read-your-writes), which also bounds
// client-side staleness as the paper notes.
func (c *simClient) doWrite(op workload.Op) time.Duration {
	w := c.s.world
	c.s.met.Writes++
	tag := op.UpdateTag
	if tag == "" {
		tag = "tag00000"
	}
	if op.Type == workload.OpUpdate {
		w.applyUpdate(op.Table, op.DocID, tag)
	}
	// Inserts/deletes against synthetic ids are modelled as updates to keep
	// the corpus size constant, matching the paper's stable 10k/table setup.
	key := recordKey(op.Table, op.DocID)
	c.local.Invalidate(key)
	return c.s.cfg.ClientServerRTT + w.originDelay()
}
