package sim

import (
	"testing"
	"time"

	"quaestor/internal/server"
	"quaestor/internal/workload"
)

func tinyConfig(mode server.CacheMode) *Config {
	return &Config{
		Dataset:        &workload.DatasetConfig{Tables: 2, DocsPerTable: 500, QueriesPerTable: 20},
		Clients:        4,
		ConnsPerClient: 25,
		Duration:       5 * time.Second,
		Mode:           mode,
		DisableEBF:     mode == server.ModeCDNOnly || mode == server.ModeUncached,
		MaxOps:         150000,
		Seed:           21,
	}
}

// TestModeOrdering asserts Figure 8a's qualitative result: Quaestor beats
// CDN-only, which beats the EBF-only client cache, which beats the
// uncached baseline.
func TestModeOrdering(t *testing.T) {
	tput := map[server.CacheMode]float64{}
	for _, mode := range []server.CacheMode{server.ModeFull, server.ModeClientOnly, server.ModeCDNOnly, server.ModeUncached} {
		m := Run(tinyConfig(mode))
		if m.Ops == 0 {
			t.Fatalf("%v simulated no ops", mode)
		}
		tput[mode] = m.Throughput
	}
	if !(tput[server.ModeFull] > tput[server.ModeCDNOnly]) {
		t.Errorf("Quaestor (%.0f) should beat CDN-only (%.0f)", tput[server.ModeFull], tput[server.ModeCDNOnly])
	}
	if !(tput[server.ModeCDNOnly] > tput[server.ModeClientOnly]) {
		t.Errorf("CDN-only (%.0f) should beat client-only (%.0f)", tput[server.ModeCDNOnly], tput[server.ModeClientOnly])
	}
	if !(tput[server.ModeClientOnly] > tput[server.ModeUncached]) {
		t.Errorf("client-only (%.0f) should beat uncached (%.0f)", tput[server.ModeClientOnly], tput[server.ModeUncached])
	}
	if speedup := tput[server.ModeFull] / tput[server.ModeUncached]; speedup < 3 {
		t.Errorf("Quaestor speedup vs uncached = %.1fx, expected substantial", speedup)
	}
}

// TestUncachedNeverStale: without caches there is nothing to go stale.
func TestUncachedNeverStale(t *testing.T) {
	m := Run(tinyConfig(server.ModeUncached))
	if m.StaleReads+m.StaleQueries != 0 {
		t.Errorf("uncached run reported staleness: %d/%d", m.StaleReads, m.StaleQueries)
	}
	if m.ClientHitsReads+m.CDNHitsReads+m.ClientHitsQueries+m.CDNHitsQueries != 0 {
		t.Error("uncached run reported cache hits")
	}
	if m.MissReads != m.Reads || m.MissQueries != m.Queries {
		t.Error("uncached run should miss everything")
	}
}

// TestStalenessBoundedByDelta is the simulation counterpart of Theorem 1:
// no response may be staler than the EBF refresh interval plus the
// invalidation-propagation delay.
func TestStalenessBoundedByDelta(t *testing.T) {
	cfg := tinyConfig(server.ModeFull)
	cfg.EBFRefresh = 2 * time.Second
	cfg.InvalidationLatency = 50 * time.Millisecond
	cfg.Mix = workload.Mix{Read: 0.4, Query: 0.4, Update: 0.2} // write-heavy to provoke staleness
	m := Run(cfg)
	if m.StalenessEvents == 0 {
		t.Skip("no staleness provoked; nothing to bound")
	}
	bound := cfg.EBFRefresh + cfg.InvalidationLatency + 200*time.Millisecond // response-latency slack
	if m.MaxStaleness > bound {
		t.Errorf("max staleness %v exceeds Δ bound %v", m.MaxStaleness, bound)
	}
}

// TestTighterDeltaReducesStaleness: the client-controlled consistency knob
// must actually trade freshness for cache misses (Figure 10's slope).
func TestTighterDeltaReducesStaleness(t *testing.T) {
	rates := map[time.Duration]float64{}
	for _, delta := range []time.Duration{500 * time.Millisecond, 20 * time.Second} {
		cfg := tinyConfig(server.ModeFull)
		cfg.EBFRefresh = delta
		cfg.Mix = workload.Mix{Read: 0.4, Query: 0.4, Update: 0.2}
		cfg.ThinkTime = 20 * time.Millisecond
		m := Run(cfg)
		rates[delta] = m.StaleRate(true) + m.StaleRate(false)
	}
	if rates[500*time.Millisecond] >= rates[20*time.Second] {
		t.Errorf("staleness did not decrease with tighter Δ: %.4f (0.5s) vs %.4f (20s)",
			rates[500*time.Millisecond], rates[20*time.Second])
	}
}

// TestDeterminism: identical seeds produce identical runs — the property
// the Monte Carlo analysis depends on for reproducibility.
func TestDeterminism(t *testing.T) {
	a := Run(tinyConfig(server.ModeFull))
	b := Run(tinyConfig(server.ModeFull))
	if a.Ops != b.Ops || a.StaleQueries != b.StaleQueries || a.ClientHitsQueries != b.ClientHitsQueries {
		t.Errorf("runs diverged: ops %d/%d, staleQ %d/%d, hitsQ %d/%d",
			a.Ops, b.Ops, a.StaleQueries, b.StaleQueries, a.ClientHitsQueries, b.ClientHitsQueries)
	}
	c := tinyConfig(server.ModeFull)
	c.Seed = 99
	d := Run(c)
	if d.Ops == a.Ops && d.StaleQueries == a.StaleQueries && d.ClientHitsQueries == a.ClientHitsQueries {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestWriteRateDegradesHitRate reproduces Figure 9's relationship in
// miniature: higher update rates must lower client query hit rates.
func TestWriteRateDegradesHitRate(t *testing.T) {
	hitRate := func(updateShare float64) float64 {
		cfg := tinyConfig(server.ModeFull)
		read := (1 - updateShare) / 2
		cfg.Mix = workload.Mix{Read: read, Query: read, Update: updateShare}
		return Run(cfg).ClientHitRate(true)
	}
	low, high := hitRate(0.01), hitRate(0.30)
	if low <= high {
		t.Errorf("hit rate should fall with update rate: %.3f (1%%) vs %.3f (30%%)", low, high)
	}
}

// TestTTLEstimatesTrackTrueTTLs checks Figure 11's property: the estimated
// TTL distribution must be in the same ballpark as the true one.
func TestTTLEstimatesTrackTrueTTLs(t *testing.T) {
	cfg := tinyConfig(server.ModeFull)
	cfg.Duration = 30 * time.Second
	cfg.MaxOps = 400000
	cfg.Mix = workload.Mix{Read: 0.45, Query: 0.45, Update: 0.10}
	m := Run(cfg)
	if m.TrueTTLs.Count() == 0 || m.EstimatedTTLs.Count() == 0 {
		t.Skip("no TTL samples collected")
	}
	est, tru := m.EstimatedTTLs.Percentile(0.5), m.TrueTTLs.Percentile(0.5)
	if est > tru*20 || tru > est*20 {
		t.Errorf("median estimated TTL %.0fms vs true %.0fms — more than 20x apart", est, tru)
	}
}

// TestThinkTimeThrottlesThroughput: think time must reduce the offered load.
func TestThinkTimeThrottlesThroughput(t *testing.T) {
	base := Run(tinyConfig(server.ModeFull)).Throughput
	cfg := tinyConfig(server.ModeFull)
	cfg.ThinkTime = 100 * time.Millisecond
	throttled := Run(cfg).Throughput
	if throttled >= base/2 {
		t.Errorf("think time barely throttled: %.0f vs %.0f", throttled, base)
	}
}

// TestServerCapacitySaturation: the origin's rate limit must cap uncached
// throughput (the Figure 8a plateau).
func TestServerCapacitySaturation(t *testing.T) {
	cfg := tinyConfig(server.ModeUncached)
	cfg.ServerRate = 500
	cfg.ClientServerRTT = 5 * time.Millisecond // demand far above capacity
	m := Run(cfg)
	if m.Throughput > 700 {
		t.Errorf("uncached throughput %.0f exceeded server capacity 500 by far", m.Throughput)
	}
}

// TestCDNStalenessGovernedByInvalidationLatency: CDN staleness is
// "primarily governed by invalidation latency" (Section 6.2) — fast purges
// must keep the CDN's stale share small, and slower purge propagation must
// increase it.
func TestCDNStalenessGovernedByInvalidationLatency(t *testing.T) {
	share := func(invLatency time.Duration) float64 {
		cfg := tinyConfig(server.ModeFull)
		cfg.Mix = workload.Mix{Read: 0.45, Query: 0.45, Update: 0.10}
		cfg.InvalidationLatency = invLatency
		m := Run(cfg)
		total := m.Reads + m.Queries
		if total == 0 {
			t.Fatal("no ops")
		}
		return float64(m.StaleCDNServes) / float64(total)
	}
	fast := share(2 * time.Millisecond)
	slow := share(500 * time.Millisecond)
	if fast > 0.01 {
		t.Errorf("CDN stale share with 2ms purges = %.4f, want < 1%%", fast)
	}
	if slow <= fast {
		t.Errorf("slower purges should increase CDN staleness: fast=%.4f slow=%.4f", fast, slow)
	}
}
