package sim

import (
	"container/heap"
	"testing"
	"time"

	"quaestor/internal/server"
	"quaestor/internal/ttl"
	"quaestor/internal/workload"
)

func newTestWorld(t *testing.T, mutate func(*Config)) (*Sim, *world) {
	t.Helper()
	cfg := &Config{
		Dataset:        &workload.DatasetConfig{Tables: 1, DocsPerTable: 100, QueriesPerTable: 10, MeanResultSize: 10, Seed: 2},
		Clients:        1,
		ConnsPerClient: 1,
		Duration:       time.Second,
		Mode:           server.ModeFull,
		Seed:           5,
	}
	if mutate != nil {
		mutate(cfg)
	}
	s := New(cfg)
	return s, s.world
}

func TestWorldGroundTruthConsistency(t *testing.T) {
	_, w := newTestWorld(t, nil)
	table := w.ds.Tables[0]
	// Every registered query's member set must equal a direct evaluation
	// over the ground-truth documents.
	for _, sq := range w.queries {
		for id, doc := range w.docs[table] {
			matches := doc.primaryTag == sq.tag || doc.secondTag == sq.tag
			_, member := sq.members[id]
			if matches != member {
				t.Fatalf("query %s: doc %s membership=%v, tags (%s,%s) vs %s",
					sq.key, id, member, doc.primaryTag, doc.secondTag, sq.tag)
			}
		}
	}
}

func TestApplyUpdateMembershipTransitions(t *testing.T) {
	s, w := newTestWorld(t, nil)
	table := w.ds.Tables[0]
	// Pick a document and flip its primary tag to a different value.
	var id string
	var doc *simDoc
	for did, d := range w.docs[table] {
		if d.primaryTag != d.secondTag {
			id, doc = did, d
			break
		}
	}
	oldTag := doc.primaryTag
	newTag := "tag00000"
	if newTag == oldTag {
		newTag = "tag00001"
	}
	oldQ := w.byTag[table][oldTag]
	newQ := w.byTag[table][newTag]
	oldVersions := map[string]uint64{}
	for _, sq := range append(append([]*simQuery{}, oldQ...), newQ...) {
		oldVersions[sq.key] = sq.membershipVersion
	}
	w.applyUpdate(table, id, newTag)
	_ = s

	for _, sq := range oldQ {
		if _, still := sq.members[id]; still && sq.tag == oldTag && doc.secondTag != oldTag {
			t.Errorf("doc %s still member of old-tag query %s", id, sq.key)
		}
		if sq.tag == oldTag && doc.secondTag != oldTag && sq.membershipVersion == oldVersions[sq.key] {
			t.Errorf("old-tag query %s membershipVersion not bumped", sq.key)
		}
	}
	for _, sq := range newQ {
		if _, member := sq.members[id]; !member {
			t.Errorf("doc %s not member of new-tag query %s", id, sq.key)
		}
	}
	if doc.version != 2 {
		t.Errorf("doc version = %d", doc.version)
	}
}

func TestApplyUpdateInPlaceOnlyBumpsContent(t *testing.T) {
	_, w := newTestWorld(t, nil)
	table := w.ds.Tables[0]
	var id string
	var doc *simDoc
	for did, d := range w.docs[table] {
		id, doc = did, d
		break
	}
	sqs := w.byTag[table][doc.primaryTag]
	before := map[string][2]uint64{}
	for _, sq := range sqs {
		before[sq.key] = [2]uint64{sq.membershipVersion, sq.contentVersion}
	}
	// Same tag: an in-place update.
	w.applyUpdate(table, id, doc.primaryTag)
	for _, sq := range sqs {
		if _, member := sq.members[id]; !member {
			continue
		}
		b := before[sq.key]
		if sq.membershipVersion != b[0] {
			t.Errorf("in-place update bumped membershipVersion of %s", sq.key)
		}
		if sq.contentVersion == b[1] {
			t.Errorf("in-place update did not bump contentVersion of %s", sq.key)
		}
	}
}

func TestInvalidationWaveFlagsEBFAfterDelay(t *testing.T) {
	s, w := newTestWorld(t, func(c *Config) { c.InvalidationLatency = 100 * time.Millisecond })
	table := w.ds.Tables[0]
	var id string
	for did := range w.docs[table] {
		id = did
		break
	}
	// A prior "read" gives the record a live TTL so the write is
	// purge-relevant.
	rk := recordKey(table, id)
	w.coh.ReportRead(rk, time.Minute)
	w.applyUpdate(table, id, "tag00002")
	if w.coh.Snapshot().Contains(rk) {
		t.Fatal("EBF flagged before the invalidation latency elapsed")
	}
	// Drain the event queue up to +200ms of virtual time.
	s.stopAt = s.now.Add(200 * time.Millisecond)
	for s.queue.Len() > 0 {
		if s.queue[0].at.After(s.stopAt) {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		ev.fn()
	}
	if !w.coh.Snapshot().Contains(rk) {
		t.Error("EBF not flagged after the invalidation latency")
	}
}

func TestChooseRepPolicies(t *testing.T) {
	_, w := newTestWorld(t, func(c *Config) { c.Representation = server.RepAlwaysIDs })
	for _, sq := range w.queries {
		if got := w.chooseRep(sq); got != ttl.IDList {
			t.Fatalf("forced id-list, got %v", got)
		}
		break
	}
	_, w2 := newTestWorld(t, func(c *Config) { c.Representation = server.RepAlwaysObjects })
	for _, sq := range w2.queries {
		if got := w2.chooseRep(sq); got != ttl.ObjectList {
			t.Fatalf("forced object-list, got %v", got)
		}
		break
	}
}

func TestQueueDelaySaturates(t *testing.T) {
	now := time.Unix(0, 0)
	var busy time.Time
	// Capacity 10/s => service time 100ms. Three back-to-back arrivals
	// queue behind each other.
	d1 := queueDelay(now, &busy, 10)
	d2 := queueDelay(now, &busy, 10)
	d3 := queueDelay(now, &busy, 10)
	if d1 != 100*time.Millisecond || d2 != 200*time.Millisecond || d3 != 300*time.Millisecond {
		t.Errorf("delays = %v %v %v", d1, d2, d3)
	}
	// After the backlog clears, delay resets to one service time.
	later := now.Add(time.Minute)
	if d := queueDelay(later, &busy, 10); d != 100*time.Millisecond {
		t.Errorf("post-idle delay = %v", d)
	}
}
