package sim

import (
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/ebf"
	"quaestor/internal/query"
	"quaestor/internal/server"
	"quaestor/internal/ttl"
	"quaestor/internal/workload"
)

// simDoc is the simulator's record model: a version counter, the mutable
// primary tag (updates flip it, driving add/remove membership changes) and
// a fixed secondary tag (whose queries see change events).
type simDoc struct {
	id         string
	version    int64
	primaryTag string
	secondTag  string
	lastWrite  time.Time
}

// simQuery is the ground-truth state of one distinct query: its current
// member set and two version counters used for exact staleness detection.
// membershipVersion bumps on add/remove only; contentVersion additionally
// bumps when a member's state changes — the id-list vs object-list
// invalidation distinction of Section 4.1.
type simQuery struct {
	q                 *query.Query
	key               string
	table             string
	tag               string
	members           map[string]struct{}
	membershipVersion uint64
	contentVersion    uint64
	lastChange        time.Time
	// rep is the representation chosen at the last origin serve; id-list
	// results only invalidate on membership changes (Section 4.1).
	rep ttl.Representation
}

// world holds the simulated deployment: ground-truth data, the real
// coherence/TTL components, the CDN cache and the origin capacity model.
type world struct {
	s   *Sim
	cfg *Config
	ds  *workload.Dataset

	docs     map[string]map[string]*simDoc         // table -> id
	tagIndex map[string]map[string]map[string]bool // table -> tag -> ids
	queries  map[string]*simQuery                  // query key -> state
	byTag    map[string]map[string][]*simQuery     // table -> tag -> queries

	coh    *ebf.Partitioned
	est    *ttl.Estimator
	active *ttl.ActiveList
	cdn    *cache.Cache

	serverBusy time.Time
	cdnBusy    time.Time
}

// cdnRecord / cdnQuery are the CDN's cached payload stand-ins.
type cdnRecord struct{ version int64 }

type cdnQuery struct {
	membershipVersion uint64
	contentVersion    uint64
	rep               ttl.Representation
	memberIDs         []string // id-list only
}

func newWorld(s *Sim, cfg *Config) *world {
	ds := workload.GenerateDataset(cfg.Dataset)
	ebfOpts := &ebf.Options{Bits: cfg.EBFBits, Hashes: cfg.EBFHashes, Clock: s.Clock()}
	ttlCfg := cfg.TTL
	if ttlCfg == nil {
		ttlCfg = &ttl.Config{}
	}
	if ttlCfg.Clock == nil {
		cp := *ttlCfg
		cp.Clock = s.Clock()
		ttlCfg = &cp
	}
	w := &world{
		s:        s,
		cfg:      cfg,
		ds:       ds,
		docs:     map[string]map[string]*simDoc{},
		tagIndex: map[string]map[string]map[string]bool{},
		queries:  map[string]*simQuery{},
		byTag:    map[string]map[string][]*simQuery{},
		coh:      ebf.NewPartitioned(ebfOpts),
		est:      ttl.NewEstimator(ttlCfg),
		active:   ttl.NewActiveList(16, 0, s.Clock()),
		cdn:      cache.New(cache.InvalidationBased, 0, s.Clock()),
	}
	for table, docs := range ds.Docs {
		w.docs[table] = map[string]*simDoc{}
		w.tagIndex[table] = map[string]map[string]bool{}
		w.byTag[table] = map[string][]*simQuery{}
		for _, d := range docs {
			tags, _ := d.Get("tags")
			arr := tags.([]any)
			sd := &simDoc{
				id:         d.ID,
				version:    1,
				primaryTag: arr[0].(string),
				secondTag:  arr[1].(string),
			}
			w.docs[table][d.ID] = sd
			w.indexTag(table, sd.primaryTag, d.ID)
			w.indexTag(table, sd.secondTag, d.ID)
		}
	}
	// Materialize ground-truth state for every distinct workload query so
	// staleness accounting starts exact.
	for _, q := range ds.Queries {
		w.registerQuery(q)
	}
	return w
}

func (w *world) indexTag(table, tag, id string) {
	idx := w.tagIndex[table]
	if idx[tag] == nil {
		idx[tag] = map[string]bool{}
	}
	idx[tag][id] = true
}

func (w *world) unindexTag(table, tag, id string) {
	if set := w.tagIndex[table][tag]; set != nil {
		delete(set, id)
	}
}

// registerQuery creates the ground-truth tracker for a distinct query. The
// workload's queries are tag-containment selections, so the member set is
// read off the tag index.
func (w *world) registerQuery(q *query.Query) *simQuery {
	key := q.Key()
	if sq, ok := w.queries[key]; ok {
		return sq
	}
	field := q.Predicate.(*query.Field)
	tag := field.Value.(string)
	sq := &simQuery{
		q:       q,
		key:     key,
		table:   q.Table,
		tag:     tag,
		members: map[string]struct{}{},
	}
	for id := range w.tagIndex[q.Table][tag] {
		sq.members[id] = struct{}{}
	}
	w.queries[key] = sq
	w.byTag[q.Table][tag] = append(w.byTag[q.Table][tag], sq)
	return sq
}

func recordKey(table, id string) string { return server.RecordKey(table, id) }

// applyUpdate mutates a document (flipping its primary tag), updates the
// ground truth of every affected query, samples the write rate and
// schedules the invalidation wave.
func (w *world) applyUpdate(table, id, newTag string) {
	doc, ok := w.docs[table][id]
	if !ok {
		return
	}
	now := w.s.now
	oldTag := doc.primaryTag
	doc.version++
	doc.lastWrite = now
	rk := recordKey(table, id)
	w.est.ObserveWrite(rk)

	var invalidated []*simQuery
	touch := func(sq *simQuery, membership bool) {
		sq.contentVersion++
		if membership {
			sq.membershipVersion++
		}
		sq.lastChange = now
		// Id-list results survive in-place member changes: only membership
		// transitions invalidate them (the members' own record entries are
		// invalidated separately).
		if membership || sq.rep == ttl.ObjectList {
			invalidated = append(invalidated, sq)
		}
	}
	if oldTag != newTag {
		doc.primaryTag = newTag
		w.unindexTag(table, oldTag, id)
		w.indexTag(table, newTag, id)
		for _, sq := range w.byTag[table][oldTag] {
			if _, had := sq.members[id]; had {
				delete(sq.members, id)
				touch(sq, true) // remove event
			}
		}
		for _, sq := range w.byTag[table][newTag] {
			if _, had := sq.members[id]; !had {
				sq.members[id] = struct{}{}
				touch(sq, true) // add event
			}
		}
		// Queries on the unchanged secondary tag see a change event.
		if doc.secondTag != oldTag && doc.secondTag != newTag {
			for _, sq := range w.byTag[table][doc.secondTag] {
				if _, had := sq.members[id]; had {
					touch(sq, false)
				}
			}
		}
	} else {
		// In-place update: every containing query sees a change event.
		for _, tag := range []string{doc.primaryTag, doc.secondTag} {
			for _, sq := range w.byTag[table][tag] {
				if _, had := sq.members[id]; had {
					touch(sq, false)
				}
			}
		}
	}

	// The invalidation wave: after the detection+propagation delay the EBF
	// flags the keys and the CDN is purged (Figure 7 step 4). The true-TTL
	// sample and EWMA update also happen at detection time.
	w.s.after(w.cfg.InvalidationLatency, func() {
		if w.coh.ReportWrite(rk) {
			w.cdn.Purge(rk)
		}
		for _, sq := range invalidated {
			if w.coh.ReportWrite(sq.key) {
				w.cdn.Purge(sq.key)
			}
			if actual, wasActive := w.active.Invalidated(sq.key); wasActive {
				w.est.ObserveInvalidation(sq.key, actual)
				w.s.met.TrueTTLs.Observe(actual)
			}
		}
	})
}

// serveRecordAtOrigin produces a fresh record response: estimate the TTL,
// report the issued expiration to the EBF and return (version, ttl).
func (w *world) serveRecordAtOrigin(table, id string) (int64, time.Duration) {
	doc := w.docs[table][id]
	if doc == nil {
		return 0, 0
	}
	rk := recordKey(table, id)
	var dur time.Duration
	if w.cfg.Mode != server.ModeUncached {
		dur = w.est.RecordTTL(rk)
		w.coh.ReportRead(rk, dur)
	}
	return doc.version, dur
}

// chooseRep applies the configured representation policy to a query.
func (w *world) chooseRep(sq *simQuery) ttl.Representation {
	switch w.cfg.Representation {
	case server.RepAlwaysIDs:
		return ttl.IDList
	case server.RepAlwaysObjects:
		return ttl.ObjectList
	}
	var changeRate float64
	for id := range sq.members {
		changeRate += w.est.WriteRate(recordKey(sq.table, id))
	}
	return ttl.ChooseRepresentation(ttl.RepresentationCost{
		ResultSize:     len(sq.members),
		ChangeRate:     changeRate,
		MembershipRate: changeRate * 0.3,
		RecordHitRate:  0.8,
	})
}

// serveQueryAtOrigin produces a fresh query response: choose the
// representation, estimate the TTL via the Poisson/EWMA model, admit to
// the active list, report to the EBF.
func (w *world) serveQueryAtOrigin(sq *simQuery) time.Duration {
	if w.cfg.Mode == server.ModeUncached {
		return 0
	}
	keys := make([]string, 0, len(sq.members))
	for id := range sq.members {
		keys = append(keys, recordKey(sq.table, id))
	}
	sq.rep = w.chooseRep(sq)
	dur := w.est.QueryTTL(sq.key, keys)
	w.active.Admit(sq.key, dur, keys, sq.rep)
	w.coh.ReportRead(sq.key, dur)
	if sq.rep == ttl.ObjectList {
		// Object-list members land in caches as individual entries with the
		// query's TTL.
		for _, rk := range keys {
			w.coh.ReportRead(rk, dur)
		}
	}
	w.s.met.EstimatedTTLs.Observe(dur)
	return dur
}

// originDelay charges one request against the origin's capacity.
func (w *world) originDelay() time.Duration {
	return queueDelay(w.s.now, &w.serverBusy, w.cfg.ServerRate)
}

// cdnDelay charges one request against the CDN edge capacity.
func (w *world) cdnDelay() time.Duration {
	return queueDelay(w.s.now, &w.cdnBusy, w.cfg.CDNRate)
}

// useCDN reports whether the topology includes an invalidation-based tier.
func (w *world) useCDN() bool {
	return w.cfg.Mode == server.ModeFull || w.cfg.Mode == server.ModeCDNOnly
}

// useClientCache reports whether clients keep local caches + EBF.
func (w *world) useClientCache() bool {
	return w.cfg.Mode == server.ModeFull || w.cfg.Mode == server.ModeClientOnly
}
