// Package sim implements the Monte Carlo simulation framework the paper
// uses to analyze staleness and cache behaviour (Section 6.1): "Simulation
// is the most reliable method to analyze properties like staleness as it
// provides globally ordered event time stamps for each operation and does
// not rely on error-prone clock synchronization."
//
// The simulator is a single-threaded discrete-event loop over a virtual
// clock. It wires the *real* production components — the Expiring Bloom
// Filter, client views with whitelisting, the TTL estimator, the active
// list and the web-cache implementations — to simulated clients, a
// simulated CDN and a capacity-constrained origin, with the paper's
// measured latency constants (client↔server 145 ms, client↔CDN 4 ms,
// client-cache hits free). Invalidation detection is performed
// synchronously on each write with a configurable detection delay,
// semantically equivalent to the InvaliDB pipeline whose notification
// latencies are 1–5 orders of magnitude below the modelled RTTs.
//
// Approximations (documented in DESIGN.md): operations are evaluated
// atomically at their start time and charged their end-to-end latency;
// cache fills take effect at evaluation time. Staleness is measured
// exactly: every response served from any cache is compared against the
// globally current version at serve time.
package sim

import (
	"container/heap"
	"math/rand"
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/ebf"
	"quaestor/internal/metrics"
	"quaestor/internal/server"
	"quaestor/internal/ttl"
	"quaestor/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Dataset sizes the corpus (nil = paper defaults: 10×10k docs,
	// 100 queries/table).
	Dataset *workload.DatasetConfig
	// Mix is the operation distribution (zero value = ReadHeavy).
	Mix workload.Mix
	// ZipfS is the access-skew exponent (default 0.7; the document-count
	// experiment uses 0.99).
	ZipfS float64
	// Clients is the number of client instances; ConnsPerClient the
	// parallel closed-loop connections each runs (paper: 10×300 under
	// load, 100×6 for staleness).
	Clients        int
	ConnsPerClient int
	// Duration is the simulated wall-clock span.
	Duration time.Duration
	// EBFRefresh is Δ, the client filter refresh interval (default 1s).
	EBFRefresh time.Duration
	// Mode selects the caching baseline.
	Mode server.CacheMode
	// Latency constants. Defaults: server RTT 145ms, CDN RTT 4ms.
	ClientServerRTT time.Duration
	ClientCDNRTT    time.Duration
	// InvalidationLatency is the delay between a write and the purge/EBF
	// update it triggers (InvaliDB detection + purge propagation;
	// default 30ms, which keeps CDN staleness below 0.1% as measured).
	InvalidationLatency time.Duration
	// ClientHitCost is the local-cache lookup cost (browser processing;
	// default 0.5ms). It keeps closed-loop throughput finite.
	ClientHitCost time.Duration
	// ThinkTime is the mean exponentially distributed pause between a
	// response and the connection's next request. Zero (the default) is
	// the YCSB-style closed loop used for the throughput experiments;
	// browser-like workloads (Figure 10's 100×6 setup, the flash crowd)
	// set a positive think time.
	ThinkTime time.Duration
	// ServerRate is the origin's aggregate service capacity in ops/s
	// (default 12,000 — 3 Quaestor servers on a 2-shard MongoDB). CDNRate
	// is the edge capacity (default 200,000).
	ServerRate float64
	CDNRate    float64
	// TTL tunes the estimator (nil = defaults).
	TTL *ttl.Config
	// EBFBits/EBFHashes size the filter (0 = paper defaults).
	EBFBits   uint32
	EBFHashes uint32
	// DisableEBF turns off client staleness checks (static-TTL straw man;
	// also used for the CDN-only baseline).
	DisableEBF bool
	// Representation selects how query results are materialized:
	// object-lists (default), id-lists, or the cost-based model.
	Representation server.RepresentationPolicy
	// Seed fixes all randomness.
	Seed int64
	// MaxOps bounds the number of simulated operations (0 = unlimited;
	// the run always stops at Duration).
	MaxOps uint64
}

func (c *Config) withDefaults() Config {
	cp := *c
	if cp.Mix.Read == 0 && cp.Mix.Query == 0 && cp.Mix.Insert == 0 && cp.Mix.Update == 0 && cp.Mix.Delete == 0 {
		cp.Mix = workload.ReadHeavy
	}
	if cp.ZipfS == 0 {
		cp.ZipfS = 0.7
	}
	if cp.Clients <= 0 {
		cp.Clients = 10
	}
	if cp.ConnsPerClient <= 0 {
		cp.ConnsPerClient = 30
	}
	if cp.Duration <= 0 {
		cp.Duration = 60 * time.Second
	}
	if cp.EBFRefresh <= 0 {
		cp.EBFRefresh = time.Second
	}
	if cp.ClientServerRTT <= 0 {
		cp.ClientServerRTT = 145 * time.Millisecond
	}
	if cp.ClientCDNRTT <= 0 {
		cp.ClientCDNRTT = 4 * time.Millisecond
	}
	if cp.InvalidationLatency <= 0 {
		cp.InvalidationLatency = 30 * time.Millisecond
	}
	if cp.ClientHitCost <= 0 {
		cp.ClientHitCost = 500 * time.Microsecond
	}
	if cp.ServerRate <= 0 {
		cp.ServerRate = 12000
	}
	if cp.CDNRate <= 0 {
		cp.CDNRate = 200000
	}
	if cp.Seed == 0 {
		cp.Seed = 42
	}
	return cp
}

// Metrics aggregates one run's measurements.
type Metrics struct {
	Ops     uint64
	Reads   uint64
	Queries uint64
	Writes  uint64

	// Latency histograms per operation class (milliseconds).
	ReadLatency  *metrics.Histogram
	QueryLatency *metrics.Histogram

	// Where responses were served from.
	ClientHitsReads   uint64
	ClientHitsQueries uint64
	CDNHitsReads      uint64
	CDNHitsQueries    uint64
	MissReads         uint64
	MissQueries       uint64

	// Staleness: responses older than the globally current version.
	StaleReads      uint64
	StaleQueries    uint64
	StaleCDNServes  uint64 // stale responses that came from the CDN
	MaxStaleness    time.Duration
	StalenessSum    time.Duration
	StalenessEvents uint64

	// TTL estimation quality (Figure 11).
	EstimatedTTLs *metrics.Histogram // issued TTLs, in ms
	TrueTTLs      *metrics.Histogram // observed read→invalidation spans

	// AssemblyFetches counts id-list member fetches that left the browser
	// cache (the representation trade-off's round-trip cost).
	AssemblyFetches uint64

	// Throughput in completed ops per simulated second.
	Throughput float64

	// SimulatedDuration is the virtual span actually covered.
	SimulatedDuration time.Duration

	// EBFStats snapshots the server-side filter at the end of the run.
	EBFStats ebf.Stats
}

// ClientHitRate returns the client-cache hit fraction for the class.
func (m *Metrics) ClientHitRate(queries bool) float64 {
	if queries {
		return rate(m.ClientHitsQueries, m.Queries)
	}
	return rate(m.ClientHitsReads, m.Reads)
}

// CDNHitRate returns the CDN's hit fraction among the requests that
// reached it (i.e. that the client cache did not absorb) — the quantity
// Figure 8e plots.
func (m *Metrics) CDNHitRate(queries bool) float64 {
	if queries {
		return rate(m.CDNHitsQueries, m.CDNHitsQueries+m.MissQueries)
	}
	return rate(m.CDNHitsReads, m.CDNHitsReads+m.MissReads)
}

// StaleRate returns the stale-response fraction for the class.
func (m *Metrics) StaleRate(queries bool) float64 {
	if queries {
		return rate(m.StaleQueries, m.Queries)
	}
	return rate(m.StaleReads, m.Reads)
}

func rate(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// event is one scheduled simulation action.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Sim is one simulation instance.
type Sim struct {
	cfg  Config
	rand *rand.Rand

	now    time.Time
	queue  eventHeap
	seq    uint64
	stopAt time.Time

	world   *world
	clients []*simClient
	met     *Metrics
	ops     uint64
}

// New builds a simulation (without running it).
func New(cfg *Config) *Sim {
	c := cfg.withDefaults()
	start := time.Unix(0, 0).UTC()
	s := &Sim{
		cfg:    c,
		rand:   rand.New(rand.NewSource(c.Seed)),
		now:    start,
		stopAt: start.Add(c.Duration),
		met: &Metrics{
			ReadLatency:   metrics.NewHistogram(),
			QueryLatency:  metrics.NewHistogram(),
			EstimatedTTLs: metrics.NewHistogram(),
			TrueTTLs:      metrics.NewHistogram(),
		},
	}
	s.world = newWorld(s, &c)
	for i := 0; i < c.Clients; i++ {
		s.clients = append(s.clients, newSimClient(s, i))
	}
	return s
}

// Clock returns the virtual time source shared by all components.
func (s *Sim) Clock() func() time.Time {
	return func() time.Time { return s.now }
}

// schedule enqueues fn at the given virtual time.
func (s *Sim) schedule(at time.Time, fn func()) {
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// after enqueues fn delay after now.
func (s *Sim) after(delay time.Duration, fn func()) {
	s.schedule(s.now.Add(delay), fn)
}

// Run executes the event loop until the configured duration elapses and
// returns the collected metrics.
func Run(cfg *Config) *Metrics {
	s := New(cfg)
	return s.Run()
}

// Run executes the simulation.
func (s *Sim) Run() *Metrics {
	// Kick off every connection's closed loop.
	for _, cl := range s.clients {
		for conn := 0; conn < s.cfg.ConnsPerClient; conn++ {
			// Jitter start times so connections do not phase-lock.
			delay := time.Duration(s.rand.Int63n(int64(10 * time.Millisecond)))
			client := cl
			s.after(delay, func() { client.step() })
		}
	}
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.at.After(s.stopAt) {
			break
		}
		s.now = ev.at
		ev.fn()
		if s.cfg.MaxOps > 0 && s.ops >= s.cfg.MaxOps {
			break
		}
	}
	elapsed := s.now.Sub(time.Unix(0, 0).UTC())
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	s.met.SimulatedDuration = elapsed
	s.met.Throughput = float64(s.met.Ops) / elapsed.Seconds()
	s.met.EBFStats = s.world.coh.Stats()
	return s.met
}

// queueServer charges one request against a rate-limited resource and
// returns the added queueing + service delay. busyUntil tracks the
// resource's backlog; the M/D/1-style model saturates throughput exactly
// when arrival rate exceeds the configured capacity.
func queueDelay(now time.Time, busyUntil *time.Time, rate float64) time.Duration {
	service := time.Duration(float64(time.Second) / rate)
	start := now
	if busyUntil.After(start) {
		start = *busyUntil
	}
	end := start.Add(service)
	*busyUntil = end
	return end.Sub(now)
}

var _ = cache.ExpirationBased // cache is used by other files of this package
