package query

import (
	"testing"

	"quaestor/internal/document"
)

func doc(fields map[string]any) *document.Document {
	return document.New("d1", fields)
}

func TestFieldOperators(t *testing.T) {
	post := doc(map[string]any{
		"title":  "Hello",
		"rating": 42,
		"tags":   []any{"example", "music"},
		"author": map[string]any{"name": "Kim"},
	})
	cases := []struct {
		name string
		pred Predicate
		want bool
	}{
		{"eq string", Eq("title", "Hello"), true},
		{"eq mismatch", Eq("title", "Bye"), false},
		{"eq array membership", Eq("tags", "example"), true},
		{"eq nested path", Eq("author.name", "Kim"), true},
		{"ne", Ne("title", "Bye"), true},
		{"ne equal", Ne("title", "Hello"), false},
		{"ne missing field matches", Ne("missing", 1), true},
		{"gt", Gt("rating", 41), true},
		{"gt equal", Gt("rating", 42), false},
		{"gte equal", Gte("rating", 42), true},
		{"lt", Lt("rating", 43), true},
		{"lte", Lte("rating", 42), true},
		{"gt cross-type guarded", Gt("title", 5), false},
		{"in", In("rating", 1, 42, 99), true},
		{"in miss", In("rating", 1, 2), false},
		{"contains", Contains("tags", "example"), true},
		{"contains miss", Contains("tags", "jazz"), false},
		{"contains non-array", Contains("title", "H"), false},
		{"exists true", Exists("rating", true), true},
		{"exists false", Exists("missing", false), true},
		{"exists wrong", Exists("missing", true), false},
		{"prefix", Prefix("title", "He"), true},
		{"prefix miss", Prefix("title", "he"), false},
		{"numeric cross-type eq", Eq("rating", 42.0), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.pred.Matches(post.Fields); got != tc.want {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestNinMissingFieldMatches(t *testing.T) {
	p := &Field{Path: "missing", Op: OpNin, Value: []any{int64(1)}}
	if !p.Matches(map[string]any{}) {
		t.Error("$nin on missing field should match (Mongo semantics)")
	}
	p2 := &Field{Path: "x", Op: OpNin, Value: []any{int64(1)}}
	if p2.Matches(map[string]any{"x": int64(1)}) {
		t.Error("$nin containing the value must not match")
	}
}

func TestSizeOperator(t *testing.T) {
	p := &Field{Path: "tags", Op: OpSize, Value: int64(2)}
	if !p.Matches(map[string]any{"tags": []any{"a", "b"}}) {
		t.Error("$size should match")
	}
	if p.Matches(map[string]any{"tags": []any{"a"}}) {
		t.Error("$size mismatch matched")
	}
}

func TestBooleanCombinators(t *testing.T) {
	fields := map[string]any{"a": int64(1), "b": int64(2)}
	and := AndOf(Eq("a", 1), Eq("b", 2))
	if !and.Matches(fields) {
		t.Error("and should match")
	}
	if AndOf(Eq("a", 1), Eq("b", 3)).Matches(fields) {
		t.Error("and with false child matched")
	}
	if !OrOf(Eq("a", 9), Eq("b", 2)).Matches(fields) {
		t.Error("or should match")
	}
	if OrOf(Eq("a", 9), Eq("b", 9)).Matches(fields) {
		t.Error("or with no true child matched")
	}
	if !NotOf(Eq("a", 9)).Matches(fields) {
		t.Error("not should match")
	}
	if (True{}).Matches(fields) != true {
		t.Error("True must match everything")
	}
}

func TestKeyNormalizationCommutative(t *testing.T) {
	q1 := New("posts", AndOf(Eq("a", 1), Contains("tags", "x")))
	q2 := New("posts", AndOf(Contains("tags", "x"), Eq("a", 1)))
	if q1.Key() != q2.Key() {
		t.Errorf("AND should be commutative in the canonical key:\n%s\n%s", q1.Key(), q2.Key())
	}
	q3 := New("posts", OrOf(Eq("a", 1), Eq("b", 2)))
	q4 := New("posts", OrOf(Eq("b", 2), Eq("a", 1)))
	if q3.Key() != q4.Key() {
		t.Error("OR should be commutative in the canonical key")
	}
}

func TestKeyIncludesClauses(t *testing.T) {
	base := New("posts", Eq("a", 1))
	sorted := base.Sorted(Desc("rating"))
	sliced := sorted.Sliced(5, 10)
	keys := map[string]bool{base.Key(): true, sorted.Key(): true, sliced.Key(): true}
	if len(keys) != 3 {
		t.Errorf("sort/limit/offset must distinguish keys: %v", keys)
	}
	if base.Key() == New("other", Eq("a", 1)).Key() {
		t.Error("table must be part of the key")
	}
}

func TestStateful(t *testing.T) {
	q := New("posts", Eq("a", 1))
	if q.Stateful() {
		t.Error("plain predicate should be stateless")
	}
	if !q.Sorted(Asc("x")).Stateful() {
		t.Error("sorted query should be stateful")
	}
	if !q.Sliced(0, 5).Stateful() {
		t.Error("limited query should be stateful")
	}
	if !q.Sliced(3, 0).Stateful() {
		t.Error("offset query should be stateful")
	}
}

func mkDocs(ratings ...int) []*document.Document {
	out := make([]*document.Document, len(ratings))
	for i, r := range ratings {
		out[i] = document.New(string(rune('a'+i)), map[string]any{"rating": r, "keep": true})
	}
	return out
}

func TestApplySortLimitOffset(t *testing.T) {
	docs := mkDocs(5, 3, 9, 1, 7)
	q := New("t", Eq("keep", true)).Sorted(Desc("rating")).Sliced(1, 2)
	got := q.Apply(docs)
	if len(got) != 2 {
		t.Fatalf("want 2 docs, got %d", len(got))
	}
	r0, _ := got[0].Get("rating")
	r1, _ := got[1].Get("rating")
	if r0 != int64(7) || r1 != int64(5) {
		t.Errorf("window wrong: %v %v", r0, r1)
	}
}

func TestApplyOffsetBeyondEnd(t *testing.T) {
	q := New("t", True{}).Sliced(100, 5)
	if got := q.Apply(mkDocs(1, 2)); len(got) != 0 {
		t.Errorf("offset beyond end should be empty, got %d", len(got))
	}
}

func TestLessTieBreakByID(t *testing.T) {
	a := document.New("a", map[string]any{"r": 1})
	b := document.New("b", map[string]any{"r": 1})
	q := New("t", True{}).Sorted(Asc("r"))
	if !q.Less(a, b) || q.Less(b, a) {
		t.Error("equal sort keys must break ties by id")
	}
}

func TestMatchesNilDoc(t *testing.T) {
	q := New("t", True{})
	if q.Matches(nil) {
		t.Error("nil document must not match")
	}
}

func TestKeyMemoization(t *testing.T) {
	q := New("t", Eq("a", 1))
	k1 := q.Key()
	k2 := q.Key()
	if k1 != k2 {
		t.Error("Key must be stable")
	}
	// Sorted/Sliced return copies with fresh keys.
	s := q.Sorted(Asc("a"))
	if s.Key() == k1 {
		t.Error("derived query reused memoized key")
	}
}
