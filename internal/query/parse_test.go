package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseFilterEquality(t *testing.T) {
	p, err := ParseFilter(map[string]any{"title": "Hello"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(map[string]any{"title": "Hello"}) {
		t.Error("plain equality filter failed")
	}
}

func TestParseFilterOperators(t *testing.T) {
	p, err := ParseFilter(map[string]any{
		"rating": map[string]any{"$gt": 10, "$lt": 50},
		"tags":   map[string]any{"$contains": "example"},
	})
	if err != nil {
		t.Fatal(err)
	}
	match := map[string]any{"rating": int64(30), "tags": []any{"example"}}
	if !p.Matches(match) {
		t.Error("operator filter should match")
	}
	if p.Matches(map[string]any{"rating": int64(60), "tags": []any{"example"}}) {
		t.Error("range violation matched")
	}
}

func TestParseFilterBooleans(t *testing.T) {
	p, err := ParseFilter(map[string]any{
		"$or": []any{
			map[string]any{"a": 1},
			map[string]any{"b": map[string]any{"$gte": 5}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(map[string]any{"a": int64(1)}) || !p.Matches(map[string]any{"b": int64(9)}) {
		t.Error("$or arm failed")
	}
	if p.Matches(map[string]any{"a": int64(2), "b": int64(2)}) {
		t.Error("$or matched with no true arm")
	}

	pn, err := ParseFilter(map[string]any{"$not": map[string]any{"a": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if pn.Matches(map[string]any{"a": int64(1)}) {
		t.Error("$not failed")
	}
}

func TestParseFilterTopLevelSiblingsAreAnd(t *testing.T) {
	p, err := ParseFilter(map[string]any{"a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(map[string]any{"a": int64(1), "b": int64(2)}) {
		t.Error("both siblings should be required")
	}
	if p.Matches(map[string]any{"a": int64(1), "b": int64(3)}) {
		t.Error("sibling AND violated")
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := []map[string]any{
		{"$unknown": []any{}},
		{"$and": "not-an-array"},
		{"$not": "not-a-doc"},
		{"x": map[string]any{"$bogus": 1}},
		{"x": map[string]any{"$in": "not-an-array"}},
		{"x": map[string]any{"$exists": "yes"}},
	}
	for _, f := range bad {
		if _, err := ParseFilter(f); err == nil {
			t.Errorf("filter %v should fail to parse", f)
		}
	}
}

func TestParseJSON(t *testing.T) {
	p, err := ParseJSON([]byte(`{"tags": {"$contains": "example"}, "rating": {"$gte": 10}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(map[string]any{"tags": []any{"example"}, "rating": int64(11)}) {
		t.Error("parsed JSON filter should match")
	}
	if _, err := ParseJSON([]byte(`{`)); err == nil {
		t.Error("invalid JSON must error")
	}
	p2, err := ParseJSON(nil)
	if err != nil || !p2.Matches(map[string]any{}) {
		t.Error("empty filter should be True")
	}
	// Large integers must survive (UseNumber path).
	p3, err := ParseJSON([]byte(`{"n": 9007199254740993}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Matches(map[string]any{"n": int64(9007199254740993)}) {
		t.Error("large int64 lost precision in parsing")
	}
}

// genPredicate builds random predicates from the builder API.
func genPredicate(r *rand.Rand, depth int) Predicate {
	if depth <= 0 {
		path := string(rune('a' + r.Intn(5)))
		switch r.Intn(6) {
		case 0:
			return Eq(path, int64(r.Intn(10)))
		case 1:
			return Ne(path, "x")
		case 2:
			return Gt(path, int64(r.Intn(10)))
		case 3:
			return Contains(path, "tag")
		case 4:
			return In(path, int64(1), int64(2))
		default:
			return Exists(path, r.Intn(2) == 0)
		}
	}
	switch r.Intn(3) {
	case 0:
		return AndOf(genPredicate(r, depth-1), genPredicate(r, depth-1))
	case 1:
		return OrOf(genPredicate(r, depth-1), genPredicate(r, depth-1))
	default:
		return NotOf(genPredicate(r, depth-1))
	}
}

func genFields(r *rand.Rand) map[string]any {
	m := map[string]any{}
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		switch r.Intn(4) {
		case 0:
			m[p] = int64(r.Intn(10))
		case 1:
			m[p] = []any{"tag", int64(r.Intn(3))}
		case 2:
			m[p] = "x"
			// case 3: leave missing
		}
	}
	return m
}

// TestFilterDocumentRoundTrip: rendering a predicate to a filter document
// and re-parsing it yields a predicate with identical matching behaviour
// AND an identical canonical key — the property the client's deterministic
// URLs rely on.
func TestFilterDocumentRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(New("t", genPredicate(r, 2)))
			vs[1] = reflect.ValueOf(genFields(r))
		},
	}
	prop := func(q *Query, fields map[string]any) bool {
		fd := FilterDocument(q.Predicate)
		back, err := ParseFilter(fd)
		if err != nil {
			return false
		}
		q2 := New("t", back)
		if q.Key() != q2.Key() {
			return false
		}
		return q.Predicate.Matches(fields) == back.Matches(fields)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestFilterDocumentTrue(t *testing.T) {
	if FilterDocument(True{}) != nil {
		t.Error("True must render as nil (empty filter)")
	}
	if FilterDocument(nil) != nil {
		t.Error("nil predicate must render as nil")
	}
}
