package query

// FilterDocument converts a Predicate back into its MongoDB-style filter
// document, the inverse of ParseFilter. Clients use it to render
// deterministic query URLs. A True predicate returns nil (empty filter).
func FilterDocument(p Predicate) map[string]any {
	switch t := p.(type) {
	case nil:
		return nil
	case True:
		return nil
	case *Field:
		return map[string]any{t.Path: map[string]any{string(t.Op): t.Value}}
	case *And:
		return compoundDocument("$and", t.Children)
	case *Or:
		return compoundDocument("$or", t.Children)
	case *Not:
		child := FilterDocument(t.Child)
		if child == nil {
			child = map[string]any{}
		}
		return map[string]any{"$not": child}
	default:
		return nil
	}
}

func compoundDocument(op string, children []Predicate) map[string]any {
	list := make([]any, 0, len(children))
	for _, c := range children {
		doc := FilterDocument(c)
		if doc == nil {
			doc = map[string]any{}
		}
		list = append(list, doc)
	}
	return map[string]any{op: list}
}
