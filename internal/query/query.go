// Package query implements the MongoDB-style query language that Quaestor
// caches and InvaliDB matches against record after-images.
//
// A Query combines a boolean Predicate over document fields (any nesting of
// $and/$or/$not around field operators) with optional ORDER BY / LIMIT /
// OFFSET clauses. Queries normalize to a canonical string — the paper's
// "normalized query string" — which serves as the cache key and the
// Expiring Bloom Filter key.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"quaestor/internal/document"
)

// Predicate is a boolean condition over a document.
type Predicate interface {
	// Matches reports whether the document's fields satisfy the predicate.
	Matches(fields map[string]any) bool
	// canonical writes a deterministic representation used for query keys.
	canonical(sb *strings.Builder)
}

// Op enumerates the supported comparison operators.
type Op string

// Supported field operators, mirroring MongoDB's query operators.
const (
	OpEq       Op = "$eq"       // field equals value (deep equality)
	OpNe       Op = "$ne"       // field differs from value
	OpGt       Op = "$gt"       // field greater than value
	OpGte      Op = "$gte"      // field greater than or equal
	OpLt       Op = "$lt"       // field less than value
	OpLte      Op = "$lte"      // field less than or equal
	OpIn       Op = "$in"       // field equals any of the listed values
	OpNin      Op = "$nin"      // field equals none of the listed values
	OpExists   Op = "$exists"   // field presence check (value is bool)
	OpContains Op = "$contains" // array field contains value (CONTAINS in the paper)
	OpSize     Op = "$size"     // array field has exactly N elements
	OpPrefix   Op = "$prefix"   // string field starts with value
)

// Field is a single-field comparison such as {tags: {$contains: "example"}}.
type Field struct {
	Path  string // dotted field path
	Op    Op
	Value any // normalized canonical value ([]any for $in/$nin)
}

// Matches implements Predicate.
func (f *Field) Matches(fields map[string]any) bool {
	v, ok := document.GetPath(fields, f.Path)
	switch f.Op {
	case OpExists:
		want, _ := f.Value.(bool)
		return ok == want
	case OpNe:
		// Mongo semantics: a missing field satisfies $ne.
		if !ok {
			return true
		}
		return !matchEqLike(v, f.Value)
	case OpNin:
		if !ok {
			return true
		}
		list, _ := f.Value.([]any)
		for _, cand := range list {
			if matchEqLike(v, cand) {
				return false
			}
		}
		return true
	}
	if !ok {
		return false
	}
	switch f.Op {
	case OpEq:
		return matchEqLike(v, f.Value)
	case OpGt:
		return comparableTypes(v, f.Value) && document.Compare(v, f.Value) > 0
	case OpGte:
		return comparableTypes(v, f.Value) && document.Compare(v, f.Value) >= 0
	case OpLt:
		return comparableTypes(v, f.Value) && document.Compare(v, f.Value) < 0
	case OpLte:
		return comparableTypes(v, f.Value) && document.Compare(v, f.Value) <= 0
	case OpIn:
		list, _ := f.Value.([]any)
		for _, cand := range list {
			if matchEqLike(v, cand) {
				return true
			}
		}
		return false
	case OpContains:
		arr, isArr := v.([]any)
		if !isArr {
			return false
		}
		for _, e := range arr {
			if document.DeepEqual(e, f.Value) {
				return true
			}
		}
		return false
	case OpSize:
		arr, isArr := v.([]any)
		if !isArr {
			return false
		}
		n, okN := toInt(f.Value)
		return okN && int64(len(arr)) == n
	case OpPrefix:
		s, okS := v.(string)
		p, okP := f.Value.(string)
		return okS && okP && strings.HasPrefix(s, p)
	default:
		return false
	}
}

// matchEqLike implements Mongo equality: either deep equality, or — when the
// stored value is an array and the query value is a scalar — array
// membership ({tags: "example"} matches tags:["example","music"]).
func matchEqLike(stored, queried any) bool {
	if document.DeepEqual(stored, queried) {
		return true
	}
	if arr, ok := stored.([]any); ok {
		if _, qIsArr := queried.([]any); !qIsArr {
			for _, e := range arr {
				if document.DeepEqual(e, queried) {
					return true
				}
			}
		}
	}
	return false
}

// comparableTypes guards range operators against cross-type comparisons
// (e.g. {age: {$gt: 5}} must not match age:"ten" just because of type rank).
func comparableTypes(a, b any) bool {
	isNum := func(v any) bool {
		switch v.(type) {
		case int64, float64:
			return true
		}
		return false
	}
	if isNum(a) && isNum(b) {
		return true
	}
	_, as := a.(string)
	_, bs := b.(string)
	return as && bs
}

func toInt(v any) (int64, bool) {
	switch t := v.(type) {
	case int64:
		return t, true
	case float64:
		return int64(t), true
	}
	return 0, false
}

func (f *Field) canonical(sb *strings.Builder) {
	sb.WriteString(strconv.Quote(f.Path))
	sb.WriteByte(':')
	sb.WriteString(string(f.Op))
	sb.WriteByte(':')
	sb.WriteString(document.Canonical(f.Value))
}

// And is the conjunction of its children.
type And struct{ Children []Predicate }

// Matches implements Predicate.
func (a *And) Matches(fields map[string]any) bool {
	for _, c := range a.Children {
		if !c.Matches(fields) {
			return false
		}
	}
	return true
}

func (a *And) canonical(sb *strings.Builder) {
	writeCompound(sb, "$and", a.Children)
}

// Or is the disjunction of its children.
type Or struct{ Children []Predicate }

// Matches implements Predicate.
func (o *Or) Matches(fields map[string]any) bool {
	for _, c := range o.Children {
		if c.Matches(fields) {
			return true
		}
	}
	return false
}

func (o *Or) canonical(sb *strings.Builder) {
	writeCompound(sb, "$or", o.Children)
}

// Not negates its child.
type Not struct{ Child Predicate }

// Matches implements Predicate.
func (n *Not) Matches(fields map[string]any) bool { return !n.Child.Matches(fields) }

func (n *Not) canonical(sb *strings.Builder) {
	sb.WriteString("$not(")
	n.Child.canonical(sb)
	sb.WriteByte(')')
}

// True matches every document (an empty filter).
type True struct{}

// Matches implements Predicate.
func (True) Matches(map[string]any) bool { return true }

func (True) canonical(sb *strings.Builder) { sb.WriteString("$true") }

func writeCompound(sb *strings.Builder, op string, children []Predicate) {
	parts := make([]string, len(children))
	for i, c := range children {
		var csb strings.Builder
		c.canonical(&csb)
		parts[i] = csb.String()
	}
	// Sorting makes AND/OR commutative in the canonical form so that
	// logically identical queries share one cache entry.
	sort.Strings(parts)
	sb.WriteString(op)
	sb.WriteByte('(')
	for i, p := range parts {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p)
	}
	sb.WriteByte(')')
}

// SortKey is one ORDER BY component.
type SortKey struct {
	Path string
	Desc bool
}

// Query is a complete cacheable query against a single table.
type Query struct {
	Table     string
	Predicate Predicate
	OrderBy   []SortKey
	Limit     int // 0 means unlimited
	Offset    int

	key string // memoized canonical key
}

// New builds a query over table with the given predicate. A nil predicate
// matches every document.
func New(table string, pred Predicate) *Query {
	if pred == nil {
		pred = True{}
	}
	return &Query{Table: table, Predicate: pred}
}

// Sorted returns a copy of q with the given ORDER BY keys.
func (q *Query) Sorted(keys ...SortKey) *Query {
	cp := *q
	cp.OrderBy = keys
	cp.key = ""
	return &cp
}

// Sliced returns a copy of q with LIMIT/OFFSET applied.
func (q *Query) Sliced(offset, limit int) *Query {
	cp := *q
	cp.Offset = offset
	cp.Limit = limit
	cp.key = ""
	return &cp
}

// Stateful reports whether the query needs order-related result state in
// the invalidation pipeline (Section 4.1 "Managing Query State"): any
// ORDER BY, LIMIT or OFFSET clause makes the matching status of one record
// dependent on other records.
func (q *Query) Stateful() bool {
	return len(q.OrderBy) > 0 || q.Limit > 0 || q.Offset > 0
}

// Matches reports whether a single document satisfies the predicate,
// ignoring order/limit clauses.
func (q *Query) Matches(doc *document.Document) bool {
	if doc == nil {
		return false
	}
	return q.Predicate.Matches(doc.Fields)
}

// Key returns the normalized query string: a deterministic canonical
// representation used as the cache key, the EBF key and the InvaliDB
// query id. Logically identical queries produce identical keys.
func (q *Query) Key() string {
	if q.key != "" {
		return q.key
	}
	var sb strings.Builder
	sb.WriteString("q:")
	sb.WriteString(q.Table)
	sb.WriteByte('/')
	q.Predicate.canonical(&sb)
	if len(q.OrderBy) > 0 {
		sb.WriteString("/sort:")
		for i, k := range q.OrderBy {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(k.Path)
			if k.Desc {
				sb.WriteString(":desc")
			} else {
				sb.WriteString(":asc")
			}
		}
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, "/offset:%d", q.Offset)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, "/limit:%d", q.Limit)
	}
	q.key = sb.String()
	return q.key
}

// String implements fmt.Stringer.
func (q *Query) String() string { return q.Key() }

// Less orders two documents according to the query's ORDER BY clause, with
// the document id as the final tie-breaker so result order is total and
// deterministic.
func (q *Query) Less(a, b *document.Document) bool {
	for _, k := range q.OrderBy {
		av, _ := a.Get(k.Path)
		bv, _ := b.Get(k.Path)
		c := document.Compare(av, bv)
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return a.ID < b.ID
}

// Apply evaluates the full query against a set of candidate documents:
// filter, sort, offset, limit. It returns fresh slices; the input is not
// modified. Documents are not cloned.
func (q *Query) Apply(docs []*document.Document) []*document.Document {
	out := make([]*document.Document, 0, len(docs))
	for _, d := range docs {
		if q.Matches(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return q.Less(out[i], out[j]) })
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			return nil
		}
		out = out[q.Offset:]
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}
