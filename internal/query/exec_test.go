package query

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"quaestor/internal/document"
)

func rangePlan(lo, hi Bound) Plan {
	return Plan{Kind: PlanRange, Path: "n", Lo: lo, Hi: hi}
}

func TestChooseStrategy(t *testing.T) {
	scan := Plan{Kind: PlanScan}
	rng := rangePlan(Bound{Value: int64(1), Inclusive: true}, Bound{Unbounded: true})
	cases := []struct {
		name string
		q    *Query
		plan Plan
		want string
	}{
		{"unlimited scan", New("t", True{}), scan, StrategySortAll},
		{"limited scan", New("t", True{}).Sliced(0, 10), scan, StrategyTopK},
		{"offset only", New("t", True{}).Sliced(5, 0), scan, StrategySortAll},
		{"range matching order asc", New("t", Gte("n", int64(1))).Sorted(Asc("n")), rng, StrategyOrdered},
		{"range matching order desc", New("t", Gte("n", int64(1))).Sorted(Desc("n")), rng, StrategyOrdered},
		{"range order on other path", New("t", Gte("n", int64(1))).Sorted(Asc("m")).Sliced(0, 3), rng, StrategyTopK},
		{"range compound order", New("t", Gte("n", int64(1))).Sorted(Asc("n"), Asc("m")), rng, StrategySortAll},
		{"probe with order", New("t", Eq("n", int64(1))).Sorted(Asc("n")), Plan{Kind: PlanProbe, Path: "n", Op: OpEq}, StrategySortAll},
	}
	for _, c := range cases {
		if got := ChooseStrategy(c.q, c.plan); got != c.want {
			t.Errorf("%s: strategy = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestResidualProbe(t *testing.T) {
	probe := Plan{Kind: PlanProbe, Path: "color", Op: OpEq, Values: []any{"red"}}

	// Fully implied single conjunct.
	r, n := Residual(Eq("color", "red"), probe)
	if n != 1 {
		t.Fatalf("elided = %d, want 1", n)
	}
	if _, ok := r.(True); !ok {
		t.Fatalf("residual = %#v, want True", r)
	}

	// Conjunction: only the probed conjunct drops.
	r, n = Residual(AndOf(Eq("color", "red"), Eq("size", int64(4))), probe)
	if n != 1 {
		t.Fatalf("elided = %d, want 1", n)
	}
	f, ok := r.(*Field)
	if !ok || f.Path != "size" {
		t.Fatalf("residual = %#v, want size conjunct", r)
	}

	// Different value, different path, different op: kept.
	for _, p := range []Predicate{
		Eq("color", "blue"),
		Eq("size", "red"),
		Contains("color", "red"),
		Gte("color", "red"),
	} {
		if _, n := Residual(p, probe); n != 0 {
			t.Errorf("%v wrongly elided under %+v", p, probe)
		}
	}

	// Disjunctions are never elided, even when a branch matches the probe.
	if _, n := Residual(OrOf(Eq("color", "red"), Eq("size", int64(1))), probe); n != 0 {
		t.Fatal("disjunction must not be elided")
	}

	// Contains probe implies the contains conjunct.
	cont := Plan{Kind: PlanProbe, Path: "tags", Op: OpContains, Values: []any{"x"}}
	if _, n := Residual(Contains("tags", "x"), cont); n != 1 {
		t.Fatal("contains conjunct not elided by contains probe")
	}
	if _, n := Residual(Eq("tags", "x"), cont); n != 0 {
		t.Fatal("eq conjunct wrongly elided by contains probe")
	}

	// $in: elided only when the probed list is exactly the conjunct's list.
	in := Plan{Kind: PlanProbe, Path: "tag", Op: OpIn, Values: []any{"a", "b"}}
	if _, n := Residual(In("tag", "a", "b"), in); n != 1 {
		t.Fatal("$in conjunct not elided by matching probe")
	}
	if _, n := Residual(In("tag", "a"), in); n != 0 {
		t.Fatal("shorter $in wrongly elided")
	}
}

func TestResidualRange(t *testing.T) {
	// Window [10, 20): candidates are numbers in that interval.
	plan := rangePlan(Bound{Value: int64(10), Inclusive: true}, Bound{Value: int64(20)})

	implied := []Predicate{
		Gte("n", int64(10)),
		Gte("n", int64(5)),
		Gt("n", int64(9)),
		Lt("n", int64(20)),
		Lt("n", int64(25)),
		Lte("n", int64(20)),
	}
	for _, p := range implied {
		if _, n := Residual(p, plan); n != 1 {
			t.Errorf("%v not elided under [10,20)", p)
		}
	}
	kept := []Predicate{
		Gt("n", int64(10)),  // lo inclusive: candidate 10 fails x>10
		Gte("n", int64(11)), // candidate 10 fails
		Lt("n", int64(19)),  // candidate 19.5 fails
		Lte("n", int64(18)),
		Gte("n", "10"), // class mismatch
		Eq("n", int64(10)),
		Gte("m", int64(0)), // other path
	}
	for _, p := range kept {
		if _, n := Residual(p, plan); n != 0 {
			t.Errorf("%v wrongly elided under [10,20)", p)
		}
	}

	// Exclusive window lower bound implies the strict conjunct.
	excl := rangePlan(Bound{Value: int64(10)}, Bound{Unbounded: true})
	if _, n := Residual(Gt("n", int64(10)), excl); n != 1 {
		t.Fatal("x>10 not elided by exclusive lo 10")
	}
	// Unbounded window ends imply nothing on that side.
	if _, n := Residual(Lt("n", int64(100)), excl); n != 0 {
		t.Fatal("hi conjunct wrongly elided by unbounded hi")
	}
}

func TestResidualPrefix(t *testing.T) {
	// The planner compiles Prefix("s", "ab") to ["ab", "ac").
	plan := Plan{Kind: PlanRange, Path: "s", Lo: Bound{Value: "ab", Inclusive: true}, Hi: Bound{Value: "ac"}}
	if _, n := Residual(Prefix("s", "ab"), plan); n != 1 {
		t.Fatal("prefix not elided by its own compiled window")
	}
	// A narrower window still implies the prefix.
	narrow := Plan{Kind: PlanRange, Path: "s", Lo: Bound{Value: "abc", Inclusive: true}, Hi: Bound{Value: "abd"}}
	if _, n := Residual(Prefix("s", "ab"), narrow); n != 1 {
		t.Fatal("prefix not elided by narrower window")
	}
	// A wider or shifted window does not.
	wide := Plan{Kind: PlanRange, Path: "s", Lo: Bound{Value: "aa", Inclusive: true}, Hi: Bound{Value: "ac"}}
	if _, n := Residual(Prefix("s", "ab"), wide); n != 0 {
		t.Fatal("prefix wrongly elided by wider window")
	}
	// Unbounded high cannot imply a bounded prefix.
	open := Plan{Kind: PlanRange, Path: "s", Lo: Bound{Value: "ab", Inclusive: true}, Hi: Bound{Unbounded: true}}
	if _, n := Residual(Prefix("s", "ab"), open); n != 0 {
		t.Fatal("prefix wrongly elided by unbounded window")
	}
}

func TestResidualScanNoop(t *testing.T) {
	p := AndOf(Eq("a", int64(1)), Eq("b", int64(2)))
	r, n := Residual(p, Plan{Kind: PlanScan})
	if n != 0 || r != p {
		t.Fatalf("scan plan must keep the predicate untouched: %v, %d", r, n)
	}
}

func topKDoc(i int, rank int64) *document.Document {
	return document.New(fmt.Sprintf("doc-%04d", i), map[string]any{"rank": rank})
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, ordering := range []SortKey{Asc("rank"), Desc("rank")} {
		for _, k := range []int{1, 3, 7, 50, 200} {
			q := New("t", True{}).Sorted(ordering)
			docs := make([]*document.Document, 100)
			for i := range docs {
				// Small value domain forces ties, exercising the id tie-break.
				docs[i] = topKDoc(i, int64(rng.Intn(12)))
			}
			top := NewTopK(q, k)
			for _, d := range docs {
				top.Offer(d)
			}
			got := top.Sorted()

			want := append([]*document.Document(nil), docs...)
			sort.Slice(want, func(i, j int) bool { return q.Less(want[i], want[j]) })
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d desc=%v: got %d docs, want %d", k, ordering.Desc, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("k=%d desc=%v: pos %d = %s, want %s", k, ordering.Desc, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestTopKWorst(t *testing.T) {
	q := New("t", True{}).Sorted(Asc("rank"))
	top := NewTopK(q, 2)
	if top.Worst() != nil {
		t.Fatal("empty heap must have no worst")
	}
	top.Offer(topKDoc(1, 5))
	if top.Worst() != nil {
		t.Fatal("underfull heap must have no worst")
	}
	top.Offer(topKDoc(2, 3))
	if w := top.Worst(); w == nil || w.ID != "doc-0001" {
		t.Fatalf("worst = %v, want doc-0001 (rank 5)", w)
	}
	// A better candidate evicts the worst; a worse one is ignored.
	top.Offer(topKDoc(3, 1))
	if w := top.Worst(); w == nil || w.ID != "doc-0002" {
		t.Fatalf("worst after evict = %v, want doc-0002 (rank 3)", w)
	}
	top.Offer(topKDoc(4, 9))
	if top.Len() != 2 {
		t.Fatalf("len = %d, want 2", top.Len())
	}
	got := top.Sorted()
	if got[0].ID != "doc-0003" || got[1].ID != "doc-0002" {
		t.Fatalf("sorted = [%s %s], want [doc-0003 doc-0002]", got[0].ID, got[1].ID)
	}
}
