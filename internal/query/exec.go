// Streaming execution primitives: the pieces of the iterator-composed
// executor that are pure query logic — strategy selection, residual
// predicate pushdown and the bounded top-K heap. The storage layer wires
// them onto its shards and indexes (it owns the locks and the document
// pointers); everything here is independent of storage.
package query

import (
	"quaestor/internal/document"
)

// Execution strategies, recorded on Plan.Strategy and surfaced by Explain.
const (
	// StrategySortAll materializes every match and sorts the full set —
	// the only correct choice for an unlimited query that an index cannot
	// order.
	StrategySortAll = "sort-all"
	// StrategyTopK keeps only the best offset+limit candidates in a
	// bounded heap: O(n log k) comparisons and k retained documents
	// instead of a full sort.
	StrategyTopK = "top-k"
	// StrategyOrdered streams an ordered-index range scan that already
	// satisfies the ORDER BY, so no sort happens at all and the scan stops
	// after offset+limit rows per shard.
	StrategyOrdered = "ordered"
)

// ChooseStrategy picks the emission strategy for q under plan. The ordered
// strategy is only sound when the plan is a range scan over exactly the
// single ORDER BY path: the index's value order then coincides with the
// query order (descending scans walk the index backwards, and ties on
// Compare-equal values break by id ascending in both).
func ChooseStrategy(q *Query, plan Plan) string {
	if plan.Kind == PlanRange && len(q.OrderBy) == 1 && q.OrderBy[0].Path == plan.Path {
		return StrategyOrdered
	}
	if q.Limit > 0 {
		return StrategyTopK
	}
	return StrategySortAll
}

// Residual strips from p the conjuncts the plan's index access already
// guarantees, so they are not re-evaluated per candidate document. It
// returns the remaining predicate (True when everything is implied) and how
// many conjuncts were elided.
//
// Soundness rests on documented index/model invariants: MatchKey equality
// coincides with Compare equality (probe candidates deep-equal the probed
// value, or contain it as an array element), and range scans visit only
// whole scalar values inside the plan window restricted to the window's
// type class. A conjunct is dropped only when every such candidate provably
// satisfies it. The elision is valid for index candidates ONLY — degraded
// shard scans (index vanished mid-query) must evaluate the full predicate.
func Residual(p Predicate, plan Plan) (Predicate, int) {
	if plan.Kind == PlanScan || plan.Path == "" {
		return p, 0
	}
	out, n := residual(p, &plan)
	if out == nil {
		return True{}, n
	}
	return out, n
}

// residual walks the conjunctive skeleton of p (mirroring
// sargableConjuncts): only Field nodes reachable through Ands are
// candidates for elision. It returns nil when p is fully implied.
func residual(p Predicate, plan *Plan) (Predicate, int) {
	switch t := p.(type) {
	case *Field:
		if conjunctImplied(t, plan) {
			return nil, 1
		}
		return t, 0
	case *And:
		kept := make([]Predicate, 0, len(t.Children))
		elided := 0
		for _, c := range t.Children {
			r, n := residual(c, plan)
			elided += n
			if r != nil {
				kept = append(kept, r)
			}
		}
		if elided == 0 {
			return t, 0
		}
		switch len(kept) {
		case 0:
			return nil, elided
		case 1:
			return kept[0], elided
		default:
			return &And{Children: kept}, elided
		}
	}
	return p, 0
}

// conjunctImplied reports whether every index candidate for the plan
// necessarily satisfies f.
func conjunctImplied(f *Field, plan *Plan) bool {
	if f.Path != plan.Path {
		return false
	}
	switch plan.Kind {
	case PlanProbe:
		if f.Op != plan.Op {
			return false
		}
		switch f.Op {
		case OpEq, OpContains:
			// Probe candidates either deep-equal the probed value or carry
			// it as an array element — exactly the operator's semantics.
			return len(plan.Values) == 1 && document.DeepEqual(f.Value, plan.Values[0])
		case OpIn:
			// Every candidate matched one of the probed values; the $in
			// holds iff the probed list is the conjunct's list.
			list, _ := f.Value.([]any)
			if len(list) != len(plan.Values) {
				return false
			}
			for i := range list {
				if !document.DeepEqual(list[i], plan.Values[i]) {
					return false
				}
			}
			return true
		}
		return false
	case PlanRange:
		switch f.Op {
		case OpGt, OpGte:
			return sameClassWindow(plan, f.Value) && loImplies(plan.Lo, f.Value, f.Op == OpGte)
		case OpLt, OpLte:
			return sameClassWindow(plan, f.Value) && hiImplies(plan.Hi, f.Value, f.Op == OpLte)
		case OpPrefix:
			// Strings with prefix s are exactly [s, prefixSuccessor(s)):
			// document.Compare orders strings byte-lexicographically, so a
			// string window inside that interval implies the prefix.
			s, ok := f.Value.(string)
			if !ok || !sameClassWindow(plan, s) {
				return false
			}
			if !loImplies(plan.Lo, s, true) {
				return false
			}
			succ, bounded := prefixSuccessor(s)
			return !bounded || hiImplies(plan.Hi, succ, false)
		}
	}
	return false
}

// sameClassWindow reports whether the plan window's type class (the class
// its candidates are restricted to) matches v's class, making Compare
// against v meaningful for every candidate.
func sameClassWindow(plan *Plan, v any) bool {
	ref := plan.Lo.Value
	if plan.Lo.Unbounded {
		ref = plan.Hi.Value
	}
	return comparableTypes(ref, v)
}

// loImplies reports whether the window's lower bound guarantees the
// conjunct "x ≥ v" (inclusive) or "x > v": every candidate is at or above
// lo, so the window bound must sit at or above the conjunct's.
func loImplies(lo Bound, v any, inclusive bool) bool {
	if lo.Unbounded || !comparableTypes(lo.Value, v) {
		return false
	}
	c := document.Compare(lo.Value, v)
	if inclusive || !lo.Inclusive {
		return c >= 0
	}
	// Exclusive conjunct, inclusive window: lo itself is a candidate and
	// must exceed v strictly.
	return c > 0
}

// hiImplies mirrors loImplies for "x ≤ v" / "x < v".
func hiImplies(hi Bound, v any, inclusive bool) bool {
	if hi.Unbounded || !comparableTypes(hi.Value, v) {
		return false
	}
	c := document.Compare(hi.Value, v)
	if inclusive || !hi.Inclusive {
		return c <= 0
	}
	return c < 0
}

// topKSeedCap bounds the heap's initial allocation: offset+limit can be
// arbitrarily large, and the heap should start small and grow only if the
// result set actually does.
const topKSeedCap = 1024

// TopK is a bounded selection heap for ORDER BY + LIMIT execution: Offer
// every match, then Sorted returns the k smallest (per the query's Less)
// in query order. It retains at most k document pointers and never clones,
// so a LIMIT 10 over 100k matches keeps 10 pointers instead of 100k deep
// copies. Internally it is a max-heap: the root is the worst survivor, the
// one a better candidate evicts in O(log k).
type TopK struct {
	q *Query
	k int
	h []*document.Document
}

// NewTopK builds a heap retaining the best k documents for q. k must be
// positive.
func NewTopK(q *Query, k int) *TopK {
	seed := k
	if seed > topKSeedCap {
		seed = topKSeedCap
	}
	return &TopK{q: q, k: k, h: make([]*document.Document, 0, seed)}
}

// Len returns the number of retained documents.
func (t *TopK) Len() int { return len(t.h) }

// Worst returns the current worst survivor (the next to be evicted), or
// nil while the heap is not yet full.
func (t *TopK) Worst() *document.Document {
	if len(t.h) < t.k {
		return nil
	}
	return t.h[0]
}

// Offer considers one candidate, keeping it only if it beats the current
// worst survivor of a full heap.
func (t *TopK) Offer(d *document.Document) {
	if len(t.h) < t.k {
		t.h = append(t.h, d)
		t.up(len(t.h) - 1)
		return
	}
	if t.q.Less(d, t.h[0]) {
		t.h[0] = d
		t.down(0, len(t.h))
	}
}

// Sorted drains the heap and returns the survivors in query order
// (ascending by q.Less). The heap is consumed: an in-place heapsort
// repeatedly swaps the worst remaining element to the tail.
func (t *TopK) Sorted() []*document.Document {
	h := t.h
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		t.down(0, n)
	}
	t.h = nil
	return h
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.q.Less(t.h[parent], t.h[i]) {
			return
		}
		t.h[parent], t.h[i] = t.h[i], t.h[parent]
		i = parent
	}
}

func (t *TopK) down(i, n int) {
	for {
		worst := i
		if l := 2*i + 1; l < n && t.q.Less(t.h[worst], t.h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.q.Less(t.h[worst], t.h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}
