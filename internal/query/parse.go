package query

import (
	"encoding/json"
	"fmt"
	"strings"

	"quaestor/internal/document"
)

// ParseFilter converts a MongoDB-style filter document into a Predicate.
//
// Supported forms:
//
//	{"tags": "example"}                      — equality (incl. array membership)
//	{"age": {"$gt": 30, "$lt": 50}}          — operator documents
//	{"tags": {"$contains": "example"}}       — array containment
//	{"$and": [f1, f2]}, {"$or": [...]}       — boolean combinators
//	{"$not": f}                              — negation
//
// Top-level sibling fields combine with AND, matching MongoDB.
func ParseFilter(filter map[string]any) (Predicate, error) {
	if len(filter) == 0 {
		return True{}, nil
	}
	var children []Predicate
	for key, raw := range filter {
		switch key {
		case "$and", "$or":
			list, ok := raw.([]any)
			if !ok {
				if lm, okM := raw.([]map[string]any); okM {
					list = make([]any, len(lm))
					for i, m := range lm {
						list[i] = m
					}
				} else {
					return nil, fmt.Errorf("query: %s expects an array, got %T", key, raw)
				}
			}
			subs := make([]Predicate, 0, len(list))
			for _, el := range list {
				sub, ok := el.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("query: %s element must be a filter document, got %T", key, el)
				}
				p, err := ParseFilter(sub)
				if err != nil {
					return nil, err
				}
				subs = append(subs, p)
			}
			if key == "$and" {
				children = append(children, &And{Children: subs})
			} else {
				children = append(children, &Or{Children: subs})
			}
		case "$not":
			sub, ok := raw.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("query: $not expects a filter document, got %T", raw)
			}
			p, err := ParseFilter(sub)
			if err != nil {
				return nil, err
			}
			children = append(children, &Not{Child: p})
		default:
			if strings.HasPrefix(key, "$") {
				return nil, fmt.Errorf("query: unknown top-level operator %q", key)
			}
			p, err := parseFieldCondition(key, raw)
			if err != nil {
				return nil, err
			}
			children = append(children, p)
		}
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return &And{Children: children}, nil
}

func parseFieldCondition(path string, raw any) (Predicate, error) {
	opDoc, isDoc := raw.(map[string]any)
	if !isDoc || !hasOperatorKey(opDoc) {
		// Plain value: equality.
		return &Field{Path: path, Op: OpEq, Value: document.Normalize(raw)}, nil
	}
	var children []Predicate
	for opName, val := range opDoc {
		op := Op(opName)
		switch op {
		case OpEq, OpNe, OpGt, OpGte, OpLt, OpLte, OpContains, OpPrefix, OpSize:
			children = append(children, &Field{Path: path, Op: op, Value: document.Normalize(val)})
		case OpIn, OpNin:
			norm := document.Normalize(val)
			list, ok := norm.([]any)
			if !ok {
				return nil, fmt.Errorf("query: %s on %q expects an array, got %T", op, path, val)
			}
			children = append(children, &Field{Path: path, Op: op, Value: list})
		case OpExists:
			b, ok := val.(bool)
			if !ok {
				return nil, fmt.Errorf("query: $exists on %q expects a bool, got %T", path, val)
			}
			children = append(children, &Field{Path: path, Op: OpExists, Value: b})
		default:
			return nil, fmt.Errorf("query: unknown operator %q on field %q", opName, path)
		}
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return &And{Children: children}, nil
}

func hasOperatorKey(m map[string]any) bool {
	for k := range m {
		if strings.HasPrefix(k, "$") {
			return true
		}
	}
	return false
}

// ParseJSON parses a JSON-encoded filter document into a Predicate.
func ParseJSON(data []byte) (Predicate, error) {
	if len(data) == 0 {
		return True{}, nil
	}
	var m map[string]any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("query: invalid filter JSON: %w", err)
	}
	return ParseFilter(m)
}

// Builder helpers — a fluent way to construct predicates in Go code.

// Eq matches documents whose field equals value.
func Eq(path string, value any) Predicate {
	return &Field{Path: path, Op: OpEq, Value: document.Normalize(value)}
}

// Ne matches documents whose field differs from value (or is missing).
func Ne(path string, value any) Predicate {
	return &Field{Path: path, Op: OpNe, Value: document.Normalize(value)}
}

// Gt matches documents whose field exceeds value.
func Gt(path string, value any) Predicate {
	return &Field{Path: path, Op: OpGt, Value: document.Normalize(value)}
}

// Gte matches documents whose field is at least value.
func Gte(path string, value any) Predicate {
	return &Field{Path: path, Op: OpGte, Value: document.Normalize(value)}
}

// Lt matches documents whose field is below value.
func Lt(path string, value any) Predicate {
	return &Field{Path: path, Op: OpLt, Value: document.Normalize(value)}
}

// Lte matches documents whose field is at most value.
func Lte(path string, value any) Predicate {
	return &Field{Path: path, Op: OpLte, Value: document.Normalize(value)}
}

// In matches documents whose field equals any of the values.
func In(path string, values ...any) Predicate {
	norm := make([]any, len(values))
	for i, v := range values {
		norm[i] = document.Normalize(v)
	}
	return &Field{Path: path, Op: OpIn, Value: norm}
}

// Contains matches documents whose array field contains value — the paper's
// running example `WHERE tags CONTAINS 'example'`.
func Contains(path string, value any) Predicate {
	return &Field{Path: path, Op: OpContains, Value: document.Normalize(value)}
}

// Exists matches documents in which the field is present (or absent).
func Exists(path string, present bool) Predicate {
	return &Field{Path: path, Op: OpExists, Value: present}
}

// Prefix matches documents whose string field starts with value.
func Prefix(path, value string) Predicate {
	return &Field{Path: path, Op: OpPrefix, Value: value}
}

// AndOf combines predicates conjunctively.
func AndOf(preds ...Predicate) Predicate { return &And{Children: preds} }

// OrOf combines predicates disjunctively.
func OrOf(preds ...Predicate) Predicate { return &Or{Children: preds} }

// NotOf negates a predicate.
func NotOf(p Predicate) Predicate { return &Not{Child: p} }

// Asc is an ascending sort key.
func Asc(path string) SortKey { return SortKey{Path: path} }

// Desc is a descending sort key.
func Desc(path string) SortKey { return SortKey{Path: path, Desc: true} }
