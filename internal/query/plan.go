// Query planning: the planner inspects a parsed predicate, consults index
// statistics supplied by the storage layer through the Catalog interface,
// and emits an access plan — index probe, index range scan, or fallback
// full scan. Estimates are deliberately heuristic (uniform buckets from
// distinct counts, fixed range-selectivity fractions): simple estimators
// remain competitive with learned cardinality models for this class of
// workload, and they cost nothing to maintain.
//
// Plans are advisory supersets: the executor re-verifies every candidate
// against the full predicate, so a plan can never change query results —
// only how many documents are touched to produce them.
package query

import (
	"fmt"
	"strings"

	"quaestor/internal/document"
)

// PlanKind identifies the chosen access path.
type PlanKind int

const (
	// PlanScan is the fallback full table scan.
	PlanScan PlanKind = iota
	// PlanProbe is a hash-index equality probe ($eq, $in, $contains).
	PlanProbe
	// PlanRange is an ordered-index range scan ($gt/$gte/$lt/$lte,
	// $prefix).
	PlanRange
)

// String implements fmt.Stringer.
func (k PlanKind) String() string {
	switch k {
	case PlanProbe:
		return "probe"
	case PlanRange:
		return "range"
	default:
		return "scan"
	}
}

// Bound is one end of a planned range scan. The storage layer translates
// it to its index's bound representation.
type Bound struct {
	Value     any
	Inclusive bool
	Unbounded bool
}

// Plan is the planner's chosen access path for one query.
type Plan struct {
	Kind PlanKind
	// Path is the indexed field path driving the access ("" for scans).
	Path string
	// Op is the operator the probe serves (OpEq, OpIn or OpContains);
	// unset for ranges and scans.
	Op Op
	// Values holds the probe values: one for $eq/$contains, all listed
	// values for $in.
	Values []any
	// Lo and Hi bound a PlanRange.
	Lo, Hi Bound
	// EstimatedRows is the planner's cardinality estimate for the access
	// path (the table size for scans).
	EstimatedRows int
	// Reason explains the decision, EXPLAIN-style.
	Reason string

	// Execution report, filled by the streaming executor (and by Explain
	// for the strategy/elision fields, which are static properties of the
	// plan): the emission strategy chosen (StrategySortAll, StrategyTopK
	// or StrategyOrdered), how many predicate conjuncts the index access
	// already guarantees (residual pushdown), and the measured
	// examined/returned row counts of one execution.
	Strategy        string
	ElidedConjuncts int
	RowsExamined    int
	RowsReturned    int
}

// IndexStats are the per-index statistics the planner consumes.
type IndexStats struct {
	// Docs is the number of documents with the indexed field present.
	Docs int
	// Distinct is the number of distinct indexed values.
	Distinct int
}

// Catalog is the planner's view of a table's indexes. The storage layer
// implements it; the planner stays free of storage dependencies.
type Catalog interface {
	// IndexStats returns statistics for the index on a field path, with
	// ok=false when the path is not indexed.
	IndexStats(path string) (stats IndexStats, ok bool)
	// TableDocs returns the table's total document count, the cost
	// baseline a full scan pays.
	TableDocs() int
}

// Range-selectivity fractions used when only bucket statistics are
// available (the classic System-R style constants).
const (
	halfOpenSelectivity = 1.0 / 3
	closedSelectivity   = 1.0 / 4
	prefixSelectivity   = 1.0 / 10
)

// BuildPlan chooses an access path for q given the catalog's indexes. A
// nil catalog or an unsargable predicate yields a full scan.
func BuildPlan(q *Query, cat Catalog) Plan {
	total := 0
	if cat != nil {
		total = cat.TableDocs()
	}
	scan := Plan{Kind: PlanScan, EstimatedRows: total, Reason: "no usable index"}
	if cat == nil {
		scan.Reason = "no catalog"
		return scan
	}
	// An index access must beat the scan estimate strictly: probing pays
	// per-id overhead a sequential scan does not, so an index expected to
	// touch the whole table (e.g. on a constant field) is worse than
	// scanning it.
	best := scan
	for _, f := range sargableConjuncts(q.Predicate, nil) {
		st, ok := cat.IndexStats(f.Path)
		if !ok {
			continue
		}
		p, ok := planForConjunct(f, st)
		if !ok {
			continue
		}
		if p.EstimatedRows < best.EstimatedRows {
			best = p
		}
	}
	if best.Kind == PlanRange {
		tightenRange(&best, q.Predicate)
	}
	return best
}

// sargableConjuncts collects the Field predicates that must all hold for
// the whole predicate to hold: field nodes reachable through conjunctions
// only. Any of them is a sound candidate driver for an index access.
func sargableConjuncts(p Predicate, out []*Field) []*Field {
	switch t := p.(type) {
	case *Field:
		out = append(out, t)
	case *And:
		for _, c := range t.Children {
			out = sargableConjuncts(c, out)
		}
	}
	return out
}

// bucket estimates the average ids per distinct value.
func bucket(st IndexStats) int {
	if st.Distinct == 0 {
		return 0
	}
	n := st.Docs / st.Distinct
	if n < 1 {
		n = 1
	}
	return n
}

func planForConjunct(f *Field, st IndexStats) (Plan, bool) {
	switch f.Op {
	case OpEq, OpContains:
		return Plan{
			Kind:          PlanProbe,
			Path:          f.Path,
			Op:            f.Op,
			Values:        []any{f.Value},
			EstimatedRows: bucket(st),
			Reason:        fmt.Sprintf("probe %s on %q (≈%d/%d per value)", f.Op, f.Path, st.Docs, st.Distinct),
		}, true
	case OpIn:
		list, _ := f.Value.([]any)
		return Plan{
			Kind:          PlanProbe,
			Path:          f.Path,
			Op:            OpIn,
			Values:        append([]any(nil), list...),
			EstimatedRows: len(list) * bucket(st),
			Reason:        fmt.Sprintf("probe $in on %q (%d values)", f.Path, len(list)),
		}, true
	case OpGt, OpGte:
		return Plan{
			Kind:          PlanRange,
			Path:          f.Path,
			Lo:            Bound{Value: f.Value, Inclusive: f.Op == OpGte},
			Hi:            Bound{Unbounded: true},
			EstimatedRows: int(float64(st.Docs) * halfOpenSelectivity),
			Reason:        fmt.Sprintf("range %s on %q", f.Op, f.Path),
		}, true
	case OpLt, OpLte:
		return Plan{
			Kind:          PlanRange,
			Path:          f.Path,
			Lo:            Bound{Unbounded: true},
			Hi:            Bound{Value: f.Value, Inclusive: f.Op == OpLte},
			EstimatedRows: int(float64(st.Docs) * halfOpenSelectivity),
			Reason:        fmt.Sprintf("range %s on %q", f.Op, f.Path),
		}, true
	case OpPrefix:
		s, ok := f.Value.(string)
		if !ok {
			return Plan{}, false
		}
		hi := Bound{Unbounded: true}
		if succ, ok := prefixSuccessor(s); ok {
			hi = Bound{Value: succ}
		}
		return Plan{
			Kind:          PlanRange,
			Path:          f.Path,
			Lo:            Bound{Value: s, Inclusive: true},
			Hi:            hi,
			EstimatedRows: int(float64(st.Docs) * prefixSelectivity),
			Reason:        fmt.Sprintf("prefix range on %q", f.Path),
		}, true
	}
	return Plan{}, false
}

// tightenRange merges every other range conjunct on the plan's path into
// the plan's interval, so {age:{$gt:30,$lt:50}} scans one closed window
// instead of a half-open one.
func tightenRange(p *Plan, pred Predicate) {
	changed := false
	for _, f := range sargableConjuncts(pred, nil) {
		if f.Path != p.Path {
			continue
		}
		switch f.Op {
		case OpGt, OpGte:
			// The plan's own source conjunct never reports tighter than
			// itself, so `changed` only reflects genuine narrowing.
			b := Bound{Value: f.Value, Inclusive: f.Op == OpGte}
			if tighterLo(p.Lo, b) {
				p.Lo = b
				changed = true
			}
		case OpLt, OpLte:
			b := Bound{Value: f.Value, Inclusive: f.Op == OpLte}
			if tighterHi(p.Hi, b) {
				p.Hi = b
				changed = true
			}
		}
	}
	// Only a merge that actually narrowed the plan justifies the closed
	// interval rescale — prefix plans are born with both bounds set.
	if changed && !p.Lo.Unbounded && !p.Hi.Unbounded {
		p.EstimatedRows = int(float64(p.EstimatedRows) * closedSelectivity / halfOpenSelectivity)
		if !strings.Contains(p.Reason, "closed") {
			p.Reason += " (closed interval)"
		}
	}
}

// tighterLo reports whether b is a stricter lower bound than cur. Bounds
// of different type classes (numbers vs strings) are incomparable — such
// a conjunction is unsatisfiable anyway — so the current bound is kept
// rather than letting Compare's type-rank order swap the scan into the
// wrong class segment.
func tighterLo(cur, b Bound) bool {
	if cur.Unbounded {
		return true
	}
	if !comparableTypes(cur.Value, b.Value) {
		return false
	}
	c := document.Compare(b.Value, cur.Value)
	return c > 0 || (c == 0 && cur.Inclusive && !b.Inclusive)
}

func tighterHi(cur, b Bound) bool {
	if cur.Unbounded {
		return true
	}
	if !comparableTypes(cur.Value, b.Value) {
		return false
	}
	c := document.Compare(b.Value, cur.Value)
	return c < 0 || (c == 0 && cur.Inclusive && !b.Inclusive)
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix, with ok=false when no such string exists (the
// prefix is empty or all 0xff bytes).
func prefixSuccessor(s string) (string, bool) {
	b := []byte(s)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

// Posting is one (field path, canonical value) key of InvaliDB's inverted
// query index: a query registered under a posting can only match
// after-images carrying that value at that path.
type Posting struct {
	Path string
	Key  string // document.MatchKey of the required value
}

// RequiredPostings derives, when possible, a finite posting set such that
// every document matching p carries at least one of the postings (whole
// value or array element). ok=false means no such set exists and the query
// must be evaluated against every after-image of its table.
//
// The derivation is conservative: equality-like operators ($eq, $in,
// $contains) under conjunctions contribute their value keys; disjunctions
// are indexable only when every branch is, contributing the union.
func RequiredPostings(p Predicate) (postings []Posting, ok bool) {
	switch t := p.(type) {
	case *Field:
		switch t.Op {
		case OpEq, OpContains:
			return []Posting{{Path: t.Path, Key: document.MatchKey(t.Value)}}, true
		case OpIn:
			list, _ := t.Value.([]any)
			out := make([]Posting, 0, len(list))
			for _, v := range list {
				out = append(out, Posting{Path: t.Path, Key: document.MatchKey(v)})
			}
			// An empty $in matches nothing: the empty posting set is a
			// correct (and maximally selective) necessary condition.
			return out, true
		}
		return nil, false
	case *And:
		// Any single indexable child is a sound necessary condition;
		// prefer the one with the fewest postings.
		var best []Posting
		found := false
		for _, c := range t.Children {
			sub, ok := RequiredPostings(c)
			if !ok {
				continue
			}
			if !found || len(sub) < len(best) {
				best, found = sub, true
			}
		}
		return best, found
	case *Or:
		// Every branch must be indexable; a document matching any branch
		// must carry that branch's posting.
		var union []Posting
		for _, c := range t.Children {
			sub, ok := RequiredPostings(c)
			if !ok {
				return nil, false
			}
			union = append(union, sub...)
		}
		return union, true
	}
	return nil, false
}
