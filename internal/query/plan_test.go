package query

import (
	"testing"
)

// fakeCatalog implements Catalog for planner tests.
type fakeCatalog struct {
	docs    int
	indexes map[string]IndexStats
}

func (c *fakeCatalog) IndexStats(path string) (IndexStats, bool) {
	st, ok := c.indexes[path]
	return st, ok
}

func (c *fakeCatalog) TableDocs() int { return c.docs }

func TestBuildPlanScanWithoutIndex(t *testing.T) {
	cat := &fakeCatalog{docs: 1000, indexes: map[string]IndexStats{}}
	p := BuildPlan(New("t", Eq("color", "red")), cat)
	if p.Kind != PlanScan || p.EstimatedRows != 1000 {
		t.Fatalf("plan = %+v", p)
	}
	if p2 := BuildPlan(New("t", Eq("color", "red")), nil); p2.Kind != PlanScan {
		t.Fatalf("nil catalog plan = %+v", p2)
	}
}

func TestBuildPlanProbe(t *testing.T) {
	cat := &fakeCatalog{docs: 1000, indexes: map[string]IndexStats{
		"color": {Docs: 1000, Distinct: 10},
	}}
	p := BuildPlan(New("t", Eq("color", "red")), cat)
	if p.Kind != PlanProbe || p.Path != "color" || p.Op != OpEq {
		t.Fatalf("plan = %+v", p)
	}
	if p.EstimatedRows != 100 {
		t.Fatalf("estimate = %d, want 100", p.EstimatedRows)
	}
}

func TestBuildPlanPicksMostSelective(t *testing.T) {
	cat := &fakeCatalog{docs: 10000, indexes: map[string]IndexStats{
		"status": {Docs: 10000, Distinct: 2},    // ≈5000 per value
		"userId": {Docs: 10000, Distinct: 5000}, // ≈2 per value
	}}
	q := New("t", AndOf(Eq("status", "open"), Eq("userId", "u42")))
	p := BuildPlan(q, cat)
	if p.Kind != PlanProbe || p.Path != "userId" {
		t.Fatalf("planner picked %q (%+v), want userId", p.Path, p)
	}
}

func TestBuildPlanRangeMergesBounds(t *testing.T) {
	cat := &fakeCatalog{docs: 1200, indexes: map[string]IndexStats{
		"age": {Docs: 1200, Distinct: 80},
	}}
	q := New("t", AndOf(Gt("age", int64(30)), Lte("age", int64(50))))
	p := BuildPlan(q, cat)
	if p.Kind != PlanRange || p.Path != "age" {
		t.Fatalf("plan = %+v", p)
	}
	if p.Lo.Unbounded || p.Hi.Unbounded {
		t.Fatalf("bounds not merged: %+v", p)
	}
	if p.Lo.Inclusive || !p.Hi.Inclusive {
		t.Fatalf("bound inclusivity wrong: lo=%+v hi=%+v", p.Lo, p.Hi)
	}
}

func TestBuildPlanPrefix(t *testing.T) {
	cat := &fakeCatalog{docs: 500, indexes: map[string]IndexStats{
		"name": {Docs: 500, Distinct: 400},
	}}
	p := BuildPlan(New("t", Prefix("name", "ab")), cat)
	if p.Kind != PlanRange {
		t.Fatalf("plan = %+v", p)
	}
	if p.Lo.Value != "ab" || !p.Lo.Inclusive {
		t.Fatalf("lo = %+v", p.Lo)
	}
	if p.Hi.Unbounded || p.Hi.Value != "ac" || p.Hi.Inclusive {
		t.Fatalf("hi = %+v", p.Hi)
	}
}

func TestBuildPlanInEstimate(t *testing.T) {
	cat := &fakeCatalog{docs: 1000, indexes: map[string]IndexStats{
		"tag": {Docs: 1000, Distinct: 100},
	}}
	p := BuildPlan(New("t", In("tag", "a", "b", "c")), cat)
	if p.Kind != PlanProbe || len(p.Values) != 3 || p.EstimatedRows != 30 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestBuildPlanUnsargable(t *testing.T) {
	cat := &fakeCatalog{docs: 100, indexes: map[string]IndexStats{
		"a": {Docs: 100, Distinct: 10},
	}}
	for _, pred := range []Predicate{
		NotOf(Eq("a", int64(1))),                   // negation
		OrOf(Eq("a", int64(1)), Eq("b", int64(2))), // disjunction
		Exists("a", true),                          // presence check
		True{},                                     // match-all
	} {
		if p := BuildPlan(New("t", pred), cat); p.Kind != PlanScan {
			t.Fatalf("predicate %v planned %+v, want scan", pred, p)
		}
	}
	// But an indexable conjunct beside an unsargable sibling is usable.
	q := New("t", AndOf(Eq("a", int64(1)), NotOf(Eq("b", int64(2)))))
	if p := BuildPlan(q, cat); p.Kind != PlanProbe || p.Path != "a" {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := map[string]string{"ab": "ac", "a\xff": "b", "z": "{"}
	for in, want := range cases {
		got, ok := prefixSuccessor(in)
		if !ok || got != want {
			t.Errorf("prefixSuccessor(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
	if _, ok := prefixSuccessor("\xff\xff"); ok {
		t.Error("all-0xff prefix must have no successor")
	}
	if _, ok := prefixSuccessor(""); ok {
		t.Error("empty prefix must have no successor")
	}
}

func TestRequiredPostingsField(t *testing.T) {
	ps, ok := RequiredPostings(Eq("color", "red"))
	if !ok || len(ps) != 1 || ps[0].Path != "color" {
		t.Fatalf("postings = %v, %v", ps, ok)
	}
	ps, ok = RequiredPostings(In("tag", "a", "b"))
	if !ok || len(ps) != 2 {
		t.Fatalf("postings = %v, %v", ps, ok)
	}
	ps, ok = RequiredPostings(Contains("tags", "x"))
	if !ok || len(ps) != 1 {
		t.Fatalf("postings = %v, %v", ps, ok)
	}
	// Empty $in matches nothing: empty posting set, still indexable.
	ps, ok = RequiredPostings(In("tag"))
	if !ok || len(ps) != 0 {
		t.Fatalf("postings = %v, %v", ps, ok)
	}
	if _, ok := RequiredPostings(Gt("age", int64(3))); ok {
		t.Fatal("range operators must not be posting-indexable")
	}
	if _, ok := RequiredPostings(NotOf(Eq("a", int64(1)))); ok {
		t.Fatal("negations must not be posting-indexable")
	}
}

func TestRequiredPostingsAndPicksFewest(t *testing.T) {
	p := AndOf(In("tag", "a", "b", "c"), Eq("user", "u1"), Gt("age", int64(3)))
	ps, ok := RequiredPostings(p)
	if !ok || len(ps) != 1 || ps[0].Path != "user" {
		t.Fatalf("postings = %v, %v; want single user posting", ps, ok)
	}
}

func TestRequiredPostingsOrUnion(t *testing.T) {
	p := OrOf(Eq("tag", "a"), Eq("user", "u1"))
	ps, ok := RequiredPostings(p)
	if !ok || len(ps) != 2 {
		t.Fatalf("postings = %v, %v", ps, ok)
	}
	// A disjunction with one unindexable branch is not indexable at all.
	if _, ok := RequiredPostings(OrOf(Eq("tag", "a"), Gt("age", int64(1)))); ok {
		t.Fatal("or with range branch must not be indexable")
	}
}
