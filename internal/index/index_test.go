package index

import (
	"fmt"
	"sort"
	"testing"

	"quaestor/internal/document"
)

func doc(id string, fields map[string]any) *document.Document {
	return document.New(id, fields)
}

func sortedIDs(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}

func wantIDs(t *testing.T, got []string, want ...string) {
	t.Helper()
	g := sortedIDs(got)
	sort.Strings(want)
	if len(g) != len(want) {
		t.Fatalf("got %v, want %v", g, want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("got %v, want %v", g, want)
		}
	}
}

func TestProbeEqScalar(t *testing.T) {
	f := NewField("color")
	f.Add(doc("a", map[string]any{"color": "red"}))
	f.Add(doc("b", map[string]any{"color": "blue"}))
	f.Add(doc("c", map[string]any{"color": "red"}))
	f.Add(doc("d", map[string]any{"size": 4})) // field absent: unindexed

	wantIDs(t, f.ProbeEq("red"), "a", "c")
	wantIDs(t, f.ProbeEq("blue"), "b")
	wantIDs(t, f.ProbeEq("green"))
	st := f.Stats()
	if st.Docs != 3 || st.Distinct != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProbeEqNumericFolding(t *testing.T) {
	f := NewField("n")
	f.Add(doc("a", map[string]any{"n": int64(1)}))
	f.Add(doc("b", map[string]any{"n": float64(1)}))
	// 1 and 1.0 are deep-equal in the document model and must share a key.
	wantIDs(t, f.ProbeEq(int64(1)), "a", "b")
	wantIDs(t, f.ProbeEq(float64(1)), "a", "b")
}

func TestMultikeyArrayMembership(t *testing.T) {
	f := NewField("tags")
	f.Add(doc("a", map[string]any{"tags": []any{"x", "y"}}))
	f.Add(doc("b", map[string]any{"tags": "x"}))
	f.Add(doc("c", map[string]any{"tags": []any{"y"}}))

	// Scalar equality probes see both exact values and array members.
	wantIDs(t, f.ProbeEq("x"), "a", "b")
	wantIDs(t, f.ProbeEq("y"), "a", "c")
	// Array equality probes must not see element postings.
	wantIDs(t, f.ProbeEq([]any{"x", "y"}), "a")
	// Containment sees only element postings.
	wantIDs(t, f.ProbeContains("x"), "a")
	wantIDs(t, f.ProbeContains("y"), "a", "c")
}

func TestRemoveMaintainsPostings(t *testing.T) {
	f := NewField("tags")
	a := doc("a", map[string]any{"tags": []any{"x", "y"}})
	b := doc("b", map[string]any{"tags": "x"})
	f.Add(a)
	f.Add(b)
	f.Remove(a)
	wantIDs(t, f.ProbeEq("x"), "b")
	wantIDs(t, f.ProbeContains("y"))
	f.Remove(b)
	if st := f.Stats(); st.Docs != 0 || st.Distinct != 0 {
		t.Fatalf("stats after removal = %+v", st)
	}
	if len(f.sorted) != 0 {
		t.Fatalf("sorted slice not drained: %d entries", len(f.sorted))
	}
}

func TestRangeScanNumbers(t *testing.T) {
	f := NewField("n")
	for i := 0; i < 10; i++ {
		f.Add(doc(fmt.Sprintf("d%d", i), map[string]any{"n": int64(i)}))
	}
	// Values of other type classes must stay out of numeric ranges.
	f.Add(doc("s", map[string]any{"n": "7"}))
	f.Add(doc("b", map[string]any{"n": true}))

	wantIDs(t, f.RangeScan(Bound{Value: int64(7), Inclusive: false}, Bound{Unbounded: true}), "d8", "d9")
	wantIDs(t, f.RangeScan(Bound{Value: int64(7), Inclusive: true}, Bound{Unbounded: true}), "d7", "d8", "d9")
	wantIDs(t, f.RangeScan(Bound{Unbounded: true}, Bound{Value: int64(2), Inclusive: false}), "d0", "d1")
	wantIDs(t, f.RangeScan(Bound{Value: int64(3), Inclusive: true}, Bound{Value: int64(5), Inclusive: true}), "d3", "d4", "d5")
}

func TestRangeScanStrings(t *testing.T) {
	f := NewField("s")
	for _, v := range []string{"apple", "apricot", "banana", "cherry"} {
		f.Add(doc(v, map[string]any{"s": v}))
	}
	f.Add(doc("num", map[string]any{"s": int64(5)}))

	wantIDs(t, f.RangeScan(Bound{Value: "ap", Inclusive: true}, Bound{Value: "aq"}), "apple", "apricot")
	wantIDs(t, f.RangeScan(Bound{Value: "banana", Inclusive: true}, Bound{Unbounded: true}), "banana", "cherry")
	// Unbounded-low string scans must not leak the numeric segment.
	wantIDs(t, f.RangeScan(Bound{Unbounded: true}, Bound{Value: "b"}), "apple", "apricot")
}

func TestRangeScanArraysExcluded(t *testing.T) {
	f := NewField("n")
	f.Add(doc("arr", map[string]any{"n": []any{int64(5)}}))
	f.Add(doc("d", map[string]any{"n": int64(5)}))
	// Element postings exist under canonical "5" but range scans must only
	// surface whole scalar values (arrays never satisfy range operators).
	wantIDs(t, f.RangeScan(Bound{Value: int64(0), Inclusive: true}, Bound{Unbounded: true}), "d")
}

// rangeRunsField builds the shared fixture for the RangeRuns tests:
// numbers 1 (two docs), 2, 3, a string, and an array whose element posting
// collides with the value-2 entry.
func rangeRunsField() *Field {
	f := NewField("n")
	f.Add(doc("b", map[string]any{"n": int64(1)}))
	f.Add(doc("a", map[string]any{"n": int64(1)}))
	f.Add(doc("c", map[string]any{"n": int64(2)}))
	f.Add(doc("d", map[string]any{"n": int64(3)}))
	f.Add(doc("s", map[string]any{"n": "x"}))
	f.Add(doc("arr", map[string]any{"n": []any{int64(2)}}))
	return f
}

func collectRuns(f *Field, lo, hi Bound, desc bool, stopAfter int) [][]string {
	var runs [][]string
	f.RangeRuns(lo, hi, desc, func(ids []string) bool {
		runs = append(runs, append([]string(nil), ids...))
		return stopAfter == 0 || len(runs) < stopAfter
	})
	return runs
}

func wantRuns(t *testing.T, got, want [][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("runs = %v, want %v", got, want)
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("runs = %v, want %v", got, want)
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("runs = %v, want %v", got, want)
			}
		}
	}
}

func TestRangeRunsAscending(t *testing.T) {
	f := rangeRunsField()
	// Full numeric class: value order, ids ascending within the 1-run, the
	// string and the array excluded. The value-2 entry carries an element
	// posting (arr) that must not surface.
	got := collectRuns(f, Bound{Value: int64(0), Inclusive: true}, Bound{Unbounded: true}, false, 0)
	wantRuns(t, got, [][]string{{"a", "b"}, {"c"}, {"d"}})
}

func TestRangeRunsDescending(t *testing.T) {
	f := rangeRunsField()
	got := collectRuns(f, Bound{Value: int64(0), Inclusive: true}, Bound{Unbounded: true}, true, 0)
	wantRuns(t, got, [][]string{{"d"}, {"c"}, {"a", "b"}})
}

func TestRangeRunsBounds(t *testing.T) {
	f := rangeRunsField()
	// Exclusive low, bounded high.
	got := collectRuns(f, Bound{Value: int64(1)}, Bound{Value: int64(3), Inclusive: true}, false, 0)
	wantRuns(t, got, [][]string{{"c"}, {"d"}})
	// Exclusive high.
	got = collectRuns(f, Bound{Unbounded: true}, Bound{Value: int64(3)}, false, 0)
	wantRuns(t, got, [][]string{{"a", "b"}, {"c"}})
	// String class window stays clear of the numeric segment.
	got = collectRuns(f, Bound{Value: "a", Inclusive: true}, Bound{Unbounded: true}, false, 0)
	wantRuns(t, got, [][]string{{"s"}})
}

func TestRangeRunsEarlyStop(t *testing.T) {
	f := rangeRunsField()
	got := collectRuns(f, Bound{Value: int64(0), Inclusive: true}, Bound{Unbounded: true}, false, 1)
	wantRuns(t, got, [][]string{{"a", "b"}})
	got = collectRuns(f, Bound{Value: int64(0), Inclusive: true}, Bound{Unbounded: true}, true, 2)
	wantRuns(t, got, [][]string{{"d"}, {"c"}})
}

func TestRangeRunsElemOnlyEntrySkipped(t *testing.T) {
	f := NewField("n")
	f.Add(doc("arr", map[string]any{"n": []any{int64(5)}}))
	got := collectRuns(f, Bound{Value: int64(0), Inclusive: true}, Bound{Unbounded: true}, false, 0)
	if len(got) != 0 {
		t.Fatalf("element-only entry leaked into runs: %v", got)
	}
}

func TestValueKeys(t *testing.T) {
	whole, elems := ValueKeys([]any{"a", int64(2)})
	if whole != document.Canonical([]any{"a", int64(2)}) {
		t.Fatalf("whole = %q", whole)
	}
	if len(elems) != 2 || elems[0] != document.Canonical("a") || elems[1] != document.Canonical(int64(2)) {
		t.Fatalf("elems = %v", elems)
	}
	if _, elems := ValueKeys("scalar"); elems != nil {
		t.Fatalf("scalar must have no element keys, got %v", elems)
	}
}
