// Package index provides the incrementally-maintained secondary indexes
// behind Quaestor's query planner: a multikey hash index for equality and
// containment probes plus an ordered index (sorted by document.Compare) for
// range and prefix scans, both over one dotted field path.
//
// An index is a candidate generator, not an oracle: probes and scans return
// a superset of the matching document ids and callers re-verify each
// candidate against the full predicate. That contract keeps the index
// correct by construction in the presence of Mongo's equality subtleties
// (array membership, cross-type range guards) — the worst an index bug
// could cost is performance, never a wrong result. The only requirement is
// completeness: every id that matches the operator being served must be
// returned.
//
// Indexes are not internally synchronized. The store updates them while
// holding the owning shard's write lock, so index maintenance rides the
// exact same critical section as the document write it mirrors.
package index

import (
	"sort"

	"quaestor/internal/document"
)

// ValueKeys returns the canonical hash keys a stored field value is indexed
// under: the whole value's canonical encoding plus, for arrays, each
// element's encoding. The element keys implement multikey semantics: they
// serve both Mongo equality-as-membership ({tags: "a"} matching
// tags:["a","b"]) and $contains probes.
func ValueKeys(v any) (whole string, elems []string) {
	whole = document.MatchKey(v)
	if arr, ok := v.([]any); ok {
		elems = make([]string, len(arr))
		for i, e := range arr {
			elems[i] = document.MatchKey(e)
		}
	}
	return whole, elems
}

// entry groups the ids of the documents indexed under one distinct value.
type entry struct {
	val any    // the value itself, for ordered scans
	key string // MatchKey encoding, the hash key
	// whole holds ids whose field deep-equals val; elem holds ids whose
	// array field contains val. They are kept apart because range scans
	// must see only whole values and array-valued equality probes must not
	// see element postings.
	whole map[string]struct{}
	elem  map[string]struct{}
}

func (e *entry) empty() bool { return len(e.whole) == 0 && len(e.elem) == 0 }

// Bound is one end of a range scan.
type Bound struct {
	Value     any
	Inclusive bool
	// Unbounded marks an open end; Value is ignored.
	Unbounded bool
}

// Field is a secondary index over one dotted field path of one shard.
type Field struct {
	path   string
	byKey  map[string]*entry
	sorted []*entry // ascending by (document.Compare, key)
	docs   int      // documents currently indexed (field present)
}

// NewField creates an empty index over the given dotted path.
func NewField(path string) *Field {
	return &Field{path: path, byKey: map[string]*entry{}}
}

// Path returns the indexed field path.
func (f *Field) Path() string { return f.path }

// Stats summarizes the index for the planner.
type Stats struct {
	// Docs is the number of indexed documents (those with the field
	// present).
	Docs int
	// Distinct is the number of distinct indexed values, counting array
	// elements as values in their own right.
	Distinct int
}

// Stats returns current statistics.
func (f *Field) Stats() Stats { return Stats{Docs: f.docs, Distinct: len(f.byKey)} }

// Add indexes the document's value at the field path. Documents without
// the field are not indexed.
func (f *Field) Add(doc *document.Document) {
	v, ok := document.GetPath(doc.Fields, f.path)
	if !ok {
		return
	}
	f.docs++
	whole, elems := ValueKeys(v)
	f.entryFor(whole, v).whole[doc.ID] = struct{}{}
	if arr, isArr := v.([]any); isArr {
		for i, el := range arr {
			f.entryFor(elems[i], el).elem[doc.ID] = struct{}{}
		}
	}
}

// Remove drops the document's postings. It must be called with the same
// field value the document was indexed under (the store passes the
// pre-image).
func (f *Field) Remove(doc *document.Document) {
	v, ok := document.GetPath(doc.Fields, f.path)
	if !ok {
		return
	}
	f.docs--
	whole, elems := ValueKeys(v)
	f.dropPosting(whole, doc.ID, false)
	if arr, isArr := v.([]any); isArr {
		for i := range arr {
			f.dropPosting(elems[i], doc.ID, true)
		}
	}
}

func (f *Field) entryFor(key string, val any) *entry {
	e, ok := f.byKey[key]
	if !ok {
		e = &entry{
			val:   document.CloneValue(val),
			key:   key,
			whole: map[string]struct{}{},
			elem:  map[string]struct{}{},
		}
		f.byKey[key] = e
		i := f.searchEntry(e.val, e.key)
		f.sorted = append(f.sorted, nil)
		copy(f.sorted[i+1:], f.sorted[i:])
		f.sorted[i] = e
	}
	return e
}

func (f *Field) dropPosting(key, id string, elem bool) {
	e, ok := f.byKey[key]
	if !ok {
		return
	}
	if elem {
		delete(e.elem, id)
	} else {
		delete(e.whole, id)
	}
	if e.empty() {
		delete(f.byKey, key)
		i := f.searchEntry(e.val, e.key)
		for i < len(f.sorted) && f.sorted[i] != e {
			i++
		}
		if i < len(f.sorted) {
			f.sorted = append(f.sorted[:i], f.sorted[i+1:]...)
		}
	}
}

// searchEntry returns the insertion index for (val, key) in the sorted
// slice. MatchKey equality coincides with Compare equality, so the key
// tie-break is defensive: it keeps positions deterministic even if the
// two notions ever diverge.
func (f *Field) searchEntry(val any, key string) int {
	return sort.Search(len(f.sorted), func(i int) bool {
		c := document.Compare(f.sorted[i].val, val)
		if c != 0 {
			return c >= 0
		}
		return f.sorted[i].key >= key
	})
}

// ProbeEq returns candidate ids for {path: {$eq: value}}: exact-value
// postings plus — when the probe value is a scalar — element postings, so
// array membership equality is covered.
func (f *Field) ProbeEq(value any) []string {
	key := document.MatchKey(value)
	e, ok := f.byKey[key]
	if !ok {
		return nil
	}
	_, probeIsArr := value.([]any)
	ids := make([]string, 0, len(e.whole)+len(e.elem))
	for id := range e.whole {
		ids = append(ids, id)
	}
	if !probeIsArr {
		for id := range e.elem {
			if _, dup := e.whole[id]; !dup {
				ids = append(ids, id)
			}
		}
	}
	return ids
}

// ProbeContains returns candidate ids for {path: {$contains: value}}:
// documents whose array field has value as an element.
func (f *Field) ProbeContains(value any) []string {
	e, ok := f.byKey[document.MatchKey(value)]
	if !ok {
		return nil
	}
	ids := make([]string, 0, len(e.elem))
	for id := range e.elem {
		ids = append(ids, id)
	}
	return ids
}

// typeClass groups values the way the range operators' comparability guard
// does: range predicates only ever match numbers against numbers and
// strings against strings. Classes are disjoint, and within the sorted
// order (null < numbers < strings < maps < arrays < bools) each class is
// one contiguous segment.
type typeClass int

const (
	classOther typeClass = iota
	classNumber
	classString
)

func classOf(v any) typeClass {
	switch v.(type) {
	case int64, float64:
		return classNumber
	case string:
		return classString
	}
	return classOther
}

// RangeScan returns candidate ids for values within [lo, hi] (each end
// optionally exclusive or unbounded), restricted to the bound values' type
// class. At least one bound must be bounded. Only whole-value postings are
// returned: arrays never satisfy range operators.
func (f *Field) RangeScan(lo, hi Bound) []string {
	var ids []string
	f.scanRange(lo, hi, func(e *entry) {
		for id := range e.whole {
			ids = append(ids, id)
		}
	})
	return ids
}

func (f *Field) scanRange(lo, hi Bound, visit func(*entry)) {
	start, end, ok := f.window(lo, hi)
	if !ok {
		return
	}
	for i := start; i < end; i++ {
		visit(f.sorted[i])
	}
}

// window resolves the bounds to a half-open [start, end) slice of the
// sorted entries, restricted to the bound values' type class. ok is false
// when the reference bound is not a scalar (range operators never match
// non-scalar values).
func (f *Field) window(lo, hi Bound) (start, end int, ok bool) {
	ref := lo.Value
	if lo.Unbounded {
		ref = hi.Value
	}
	class := classOf(ref)
	if class == classOther {
		return 0, 0, false
	}
	if lo.Unbounded {
		// First entry of the type class.
		start = sort.Search(len(f.sorted), func(i int) bool {
			return !lessClass(f.sorted[i].val, class)
		})
	} else {
		start = sort.Search(len(f.sorted), func(i int) bool {
			c := document.Compare(f.sorted[i].val, lo.Value)
			if lo.Inclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	if hi.Unbounded {
		// Entries sort by type rank first, so the class segment ends where
		// a later-ranked type begins; Compare against any in-class value
		// cannot express that, hence the explicit class probe.
		end = start + sort.Search(len(f.sorted)-start, func(i int) bool {
			v := f.sorted[start+i].val
			return classOf(v) != class && !lessClass(v, class)
		})
	} else {
		end = start + sort.Search(len(f.sorted)-start, func(i int) bool {
			c := document.Compare(f.sorted[start+i].val, hi.Value)
			return c > 0 || (c == 0 && !hi.Inclusive)
		})
	}
	return start, end, true
}

// RangeRuns visits the whole-value posting ids of the entries within
// [lo, hi] in value order — descending when desc — grouping Compare-equal
// adjacent entries into one run and sorting each run's ids ascending.
// Returning false from visit stops the scan.
//
// This is the ordered execution source: value order matches an ORDER BY on
// the indexed path (walked backwards for descending), and ascending ids
// within a run match the query order's id tie-break, which ignores the
// sort direction. MatchKey equality coincides with Compare equality, so
// runs are single entries in practice; the grouping is defensive, keeping
// emission order correct even if the two notions ever diverge.
func (f *Field) RangeRuns(lo, hi Bound, desc bool, visit func(ids []string) bool) {
	start, end, ok := f.window(lo, hi)
	if !ok {
		return
	}
	emit := func(run []*entry) bool {
		n := 0
		for _, e := range run {
			n += len(e.whole)
		}
		if n == 0 {
			return true // only element postings: arrays never satisfy ranges
		}
		ids := make([]string, 0, n)
		for _, e := range run {
			for id := range e.whole {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		return visit(ids)
	}
	if !desc {
		for i := start; i < end; {
			j := i + 1
			for j < end && document.Compare(f.sorted[j].val, f.sorted[i].val) == 0 {
				j++
			}
			if !emit(f.sorted[i:j]) {
				return
			}
			i = j
		}
		return
	}
	for j := end; j > start; {
		i := j - 1
		for i > start && document.Compare(f.sorted[i-1].val, f.sorted[j-1].val) == 0 {
			i--
		}
		if !emit(f.sorted[i:j]) {
			return
		}
		j = i
	}
}

// lessClass reports whether v's type sorts strictly before the given class
// segment in document.Compare order.
func lessClass(v any, class typeClass) bool {
	switch class {
	case classNumber:
		return v == nil
	case classString:
		switch v.(type) {
		case nil, int64, float64:
			return true
		}
	}
	return false
}
