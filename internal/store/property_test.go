package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// TestPropertyStreamingEqualsScanUnderConcurrentWrites is the streaming
// executor's correctness property: on randomized queries (AND/OR predicate
// shapes, ORDER BY asc/desc, OFFSET/LIMIT windows) the iterator-composed
// executor returns results byte-identical — content AND order — to the
// materializing ScanQuery baseline. During each write storm concurrent
// readers drive QueryStream against live shards (emission order must still
// respect the query order); after quiescing, every generated query is
// checked for exact equivalence.
func TestPropertyStreamingEqualsScanUnderConcurrentWrites(t *testing.T) {
	const (
		rounds  = 5
		writers = 6
		readers = 3
		opsEach = 120
		idSpace = 100
		queries = 40
	)
	colors := []string{"red", "green", "blue", "cyan"}
	tags := []string{"a", "b", "c", "d", "e"}

	s := MustOpen(&Options{ChangeBuffer: 1 << 14, ReplayBuffer: 16})
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	ch, cancel := s.Subscribe()
	defer cancel()
	go func() {
		for range ch {
		}
	}()
	for _, path := range []string{"color", "n", "tags", "name"} {
		if err := s.CreateIndex("docs", path); err != nil {
			t.Fatal(err)
		}
	}

	randomDoc := func(r *rand.Rand, id string) *document.Document {
		fields := map[string]any{
			"color": colors[r.Intn(len(colors))],
			"n":     int64(r.Intn(40)),
			"tags":  []any{tags[r.Intn(len(tags))], tags[r.Intn(len(tags))]},
			"name":  fmt.Sprintf("%s-%s", colors[r.Intn(len(colors))], id),
		}
		if r.Intn(8) == 0 {
			delete(fields, "n")
		}
		return document.New(id, fields)
	}

	leaf := func(r *rand.Rand) query.Predicate {
		switch r.Intn(7) {
		case 0:
			return query.Eq("color", colors[r.Intn(len(colors))])
		case 1:
			return query.Gt("n", int64(r.Intn(40)))
		case 2:
			return query.Gte("n", int64(r.Intn(40)))
		case 3:
			return query.Lt("n", int64(r.Intn(40)))
		case 4:
			return query.Contains("tags", tags[r.Intn(len(tags))])
		case 5:
			return query.Prefix("name", colors[r.Intn(len(colors))][:2])
		default:
			return query.In("color", colors[r.Intn(len(colors))], colors[r.Intn(len(colors))])
		}
	}
	randomQuery := func(r *rand.Rand) *query.Query {
		var pred query.Predicate
		switch r.Intn(4) {
		case 0:
			pred = leaf(r)
		case 1:
			pred = query.AndOf(leaf(r), leaf(r))
		case 2:
			pred = query.OrOf(leaf(r), leaf(r))
		default:
			pred = query.AndOf(leaf(r), query.NotOf(leaf(r)))
		}
		q := query.New("docs", pred)
		switch r.Intn(3) {
		case 0:
			q = q.Sorted(query.Asc([]string{"n", "name"}[r.Intn(2)]))
		case 1:
			q = q.Sorted(query.Desc([]string{"n", "name"}[r.Intn(2)]))
		}
		if r.Intn(2) == 0 {
			q = q.Sliced(r.Intn(6), r.Intn(20))
		}
		return q
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Readers race the writers: each streamed result must already be in
		// query order (the executor snapshots shards one at a time, so
		// content can't be compared mid-storm — order and liveness can).
		for rd := 0; rd < readers; rd++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := randomQuery(r)
					cur, err := s.QueryStream(q)
					if err != nil {
						t.Error(err)
						return
					}
					var prev *document.Document
					for {
						d, ok := cur.NextShared()
						if !ok {
							break
						}
						if prev != nil && q.Less(d, prev) {
							t.Errorf("round %d, %s: out-of-order emission %s before %s", round, q.Key(), prev.ID, d.ID)
							return
						}
						prev = d
					}
				}
			}(int64(1000*round + rd))
		}
		var writeWG sync.WaitGroup
		for w := 0; w < writers; w++ {
			writeWG.Add(1)
			go func(seed int64) {
				defer writeWG.Done()
				r := rand.New(rand.NewSource(seed))
				for op := 0; op < opsEach; op++ {
					id := fmt.Sprintf("d%03d", r.Intn(idSpace))
					switch r.Intn(4) {
					case 0:
						_ = s.Insert("docs", randomDoc(r, id))
					case 1:
						_ = s.Put("docs", randomDoc(r, id))
					case 2:
						_, _ = s.Update("docs", id, UpdateSpec{Set: map[string]any{
							"n": int64(r.Intn(40)),
						}})
					default:
						_ = s.Delete("docs", id)
					}
				}
			}(int64(100*round + w + 7))
		}
		writeWG.Wait()
		close(stop)
		wg.Wait()

		r := rand.New(rand.NewSource(int64(round + 31)))
		for i := 0; i < queries; i++ {
			q := randomQuery(r)
			streamed, plan, err := s.QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			scanned, err := s.ScanQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(scanned) {
				t.Fatalf("round %d, %s (%s/%s): streamed %d docs, scan %d",
					round, q.Key(), plan.Kind, plan.Strategy, len(streamed), len(scanned))
			}
			for j := range streamed {
				a, b := streamed[j], scanned[j]
				if a.ID != b.ID || a.Version != b.Version ||
					document.Canonical(a.Fields) != document.Canonical(b.Fields) {
					t.Fatalf("round %d, %s (%s/%s): position %d differs: %s/v%d vs %s/v%d",
						round, q.Key(), plan.Kind, plan.Strategy, j,
						a.ID, a.Version, b.ID, b.Version)
				}
			}
		}
	}
}

// TestPropertyIndexedEqualsScanUnderConcurrentWrites is the planner's core
// correctness property: after any randomized interleaving of concurrent
// Insert/Put/Update/Delete traffic, an indexed query and a forced full
// scan return identical result sets. Index maintenance rides the shard
// write locks, so the two paths must never diverge once writers quiesce.
func TestPropertyIndexedEqualsScanUnderConcurrentWrites(t *testing.T) {
	const (
		rounds  = 6
		writers = 8
		opsEach = 150
		idSpace = 120
	)
	colors := []string{"red", "green", "blue", "cyan"}
	tags := []string{"a", "b", "c", "d", "e"}

	s := MustOpen(&Options{ChangeBuffer: 1 << 14, ReplayBuffer: 16})
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	// Drain the change stream so writers never block on a full buffer.
	ch, cancel := s.Subscribe()
	defer cancel()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range ch {
		}
	}()

	for _, path := range []string{"color", "n", "tags", "name"} {
		if err := s.CreateIndex("docs", path); err != nil {
			t.Fatal(err)
		}
	}

	randomDoc := func(r *rand.Rand, id string) *document.Document {
		fields := map[string]any{
			"color": colors[r.Intn(len(colors))],
			"n":     int64(r.Intn(50)),
			"tags":  []any{tags[r.Intn(len(tags))], tags[r.Intn(len(tags))]},
			"name":  fmt.Sprintf("%s-%s", colors[r.Intn(len(colors))], id),
		}
		if r.Intn(10) == 0 {
			delete(fields, "color") // sometimes the indexed field is absent
		}
		return document.New(id, fields)
	}

	checks := []*query.Query{
		query.New("docs", query.Eq("color", "red")),
		query.New("docs", query.Eq("tags", "a")),
		query.New("docs", query.Contains("tags", "c")),
		query.New("docs", query.In("color", "green", "cyan")),
		query.New("docs", query.Gt("n", int64(25))),
		query.New("docs", query.AndOf(query.Gte("n", int64(10)), query.Lte("n", int64(30)))),
		query.New("docs", query.Prefix("name", "blue-")),
		query.New("docs", query.AndOf(query.Eq("color", "blue"), query.Gt("n", int64(20)))),
		query.New("docs", query.Eq("color", "red")).Sorted(query.Desc("n")).Sliced(1, 7),
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for op := 0; op < opsEach; op++ {
					id := fmt.Sprintf("d%03d", r.Intn(idSpace))
					switch r.Intn(5) {
					case 0:
						_ = s.Insert("docs", randomDoc(r, id)) // ErrExists is fine
					case 1:
						_ = s.Put("docs", randomDoc(r, id))
					case 2:
						_, _ = s.Update("docs", id, UpdateSpec{Set: map[string]any{
							"color": colors[r.Intn(len(colors))],
							"n":     int64(r.Intn(50)),
						}})
					case 3:
						_, _ = s.Update("docs", id, UpdateSpec{
							Push:  map[string]any{"tags": tags[r.Intn(len(tags))]},
							Unset: []string{"name"},
						})
					case 4:
						_ = s.Delete("docs", id) // ErrNotFound is fine
					}
				}
			}(int64(round*writers + w + 1))
		}
		wg.Wait()

		for _, q := range checks {
			indexed, plan, err := s.QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			scanned, err := s.ScanQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(indexed) != len(scanned) {
				t.Fatalf("round %d, %s (%s): indexed %d docs, scan %d",
					round, q.Key(), plan.Kind, len(indexed), len(scanned))
			}
			for i := range indexed {
				if indexed[i].ID != scanned[i].ID || indexed[i].Version != scanned[i].Version {
					t.Fatalf("round %d, %s (%s): position %d: %s/v%d vs %s/v%d",
						round, q.Key(), plan.Kind, i,
						indexed[i].ID, indexed[i].Version, scanned[i].ID, scanned[i].Version)
				}
			}
		}
	}
}
