package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// TestPropertyIndexedEqualsScanUnderConcurrentWrites is the planner's core
// correctness property: after any randomized interleaving of concurrent
// Insert/Put/Update/Delete traffic, an indexed query and a forced full
// scan return identical result sets. Index maintenance rides the shard
// write locks, so the two paths must never diverge once writers quiesce.
func TestPropertyIndexedEqualsScanUnderConcurrentWrites(t *testing.T) {
	const (
		rounds  = 6
		writers = 8
		opsEach = 150
		idSpace = 120
	)
	colors := []string{"red", "green", "blue", "cyan"}
	tags := []string{"a", "b", "c", "d", "e"}

	s := MustOpen(&Options{ChangeBuffer: 1 << 14, ReplayBuffer: 16})
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	// Drain the change stream so writers never block on a full buffer.
	ch, cancel := s.Subscribe()
	defer cancel()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range ch {
		}
	}()

	for _, path := range []string{"color", "n", "tags", "name"} {
		if err := s.CreateIndex("docs", path); err != nil {
			t.Fatal(err)
		}
	}

	randomDoc := func(r *rand.Rand, id string) *document.Document {
		fields := map[string]any{
			"color": colors[r.Intn(len(colors))],
			"n":     int64(r.Intn(50)),
			"tags":  []any{tags[r.Intn(len(tags))], tags[r.Intn(len(tags))]},
			"name":  fmt.Sprintf("%s-%s", colors[r.Intn(len(colors))], id),
		}
		if r.Intn(10) == 0 {
			delete(fields, "color") // sometimes the indexed field is absent
		}
		return document.New(id, fields)
	}

	checks := []*query.Query{
		query.New("docs", query.Eq("color", "red")),
		query.New("docs", query.Eq("tags", "a")),
		query.New("docs", query.Contains("tags", "c")),
		query.New("docs", query.In("color", "green", "cyan")),
		query.New("docs", query.Gt("n", int64(25))),
		query.New("docs", query.AndOf(query.Gte("n", int64(10)), query.Lte("n", int64(30)))),
		query.New("docs", query.Prefix("name", "blue-")),
		query.New("docs", query.AndOf(query.Eq("color", "blue"), query.Gt("n", int64(20)))),
		query.New("docs", query.Eq("color", "red")).Sorted(query.Desc("n")).Sliced(1, 7),
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for op := 0; op < opsEach; op++ {
					id := fmt.Sprintf("d%03d", r.Intn(idSpace))
					switch r.Intn(5) {
					case 0:
						_ = s.Insert("docs", randomDoc(r, id)) // ErrExists is fine
					case 1:
						_ = s.Put("docs", randomDoc(r, id))
					case 2:
						_, _ = s.Update("docs", id, UpdateSpec{Set: map[string]any{
							"color": colors[r.Intn(len(colors))],
							"n":     int64(r.Intn(50)),
						}})
					case 3:
						_, _ = s.Update("docs", id, UpdateSpec{
							Push:  map[string]any{"tags": tags[r.Intn(len(tags))]},
							Unset: []string{"name"},
						})
					case 4:
						_ = s.Delete("docs", id) // ErrNotFound is fine
					}
				}
			}(int64(round*writers + w + 1))
		}
		wg.Wait()

		for _, q := range checks {
			indexed, plan, err := s.QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			scanned, err := s.ScanQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(indexed) != len(scanned) {
				t.Fatalf("round %d, %s (%s): indexed %d docs, scan %d",
					round, q.Key(), plan.Kind, len(indexed), len(scanned))
			}
			for i := range indexed {
				if indexed[i].ID != scanned[i].ID || indexed[i].Version != scanned[i].Version {
					t.Fatalf("round %d, %s (%s): position %d: %s/v%d vs %s/v%d",
						round, q.Key(), plan.Kind, i,
						indexed[i].ID, indexed[i].Version, scanned[i].ID, scanned[i].Version)
				}
			}
		}
	}
}
