package store

import (
	"sync"
)

// changeStream fans change events out to subscribers and keeps a bounded
// per-table replay ring for query activation.
type changeStream struct {
	mu      sync.Mutex
	subs    map[int]chan ChangeEvent
	nextID  int
	buf     int
	closed  bool
	replayN int
	replays map[string]*ring
}

type ring struct {
	events []ChangeEvent
	head   int // index of oldest
	size   int
}

func newRing(capacity int) *ring {
	return &ring{events: make([]ChangeEvent, capacity)}
}

func (r *ring) push(ev ChangeEvent) {
	if len(r.events) == 0 {
		return
	}
	idx := (r.head + r.size) % len(r.events)
	if r.size == len(r.events) {
		// Overwrite oldest.
		r.events[r.head] = ev
		r.head = (r.head + 1) % len(r.events)
		return
	}
	r.events[idx] = ev
	r.size++
}

func (r *ring) after(seq uint64) []ChangeEvent {
	out := make([]ChangeEvent, 0, r.size)
	for i := 0; i < r.size; i++ {
		ev := r.events[(r.head+i)%len(r.events)]
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	return out
}

func newChangeStream(buf, replayN int) *changeStream {
	return &changeStream{
		subs:    map[int]chan ChangeEvent{},
		buf:     buf,
		replayN: replayN,
		replays: map[string]*ring{},
	}
}

func (cs *changeStream) subscribe() (<-chan ChangeEvent, func()) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ch := make(chan ChangeEvent, cs.buf)
	if cs.closed {
		close(ch)
		return ch, func() {}
	}
	id := cs.nextID
	cs.nextID++
	cs.subs[id] = ch
	cancel := func() {
		cs.mu.Lock()
		defer cs.mu.Unlock()
		if c, ok := cs.subs[id]; ok {
			delete(cs.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

func (cs *changeStream) publish(ev ChangeEvent) {
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		return
	}
	r, ok := cs.replays[ev.Table]
	if !ok {
		r = newRing(cs.replayN)
		cs.replays[ev.Table] = r
	}
	r.push(ev)
	// Copy the subscriber set so a blocking send does not hold the lock
	// against subscribe/cancel.
	chans := make([]chan ChangeEvent, 0, len(cs.subs))
	for _, ch := range cs.subs {
		chans = append(chans, ch)
	}
	cs.mu.Unlock()

	for _, ch := range chans {
		func() {
			defer func() { recover() }() // subscriber may have been closed concurrently
			ch <- ev
		}()
	}
}

func (cs *changeStream) replay(tableName string, afterSeq uint64) []ChangeEvent {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	r, ok := cs.replays[tableName]
	if !ok {
		return nil
	}
	return r.after(afterSeq)
}

func (cs *changeStream) close() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return
	}
	cs.closed = true
	for id, ch := range cs.subs {
		delete(cs.subs, id)
		close(ch)
	}
}
