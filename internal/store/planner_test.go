package store

import (
	"fmt"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// fill populates a table with n docs: n/colors per color, sequential rank,
// and a two-element tags array.
func fill(t *testing.T, s *Store, table string, n int) {
	t.Helper()
	colors := []string{"red", "green", "blue", "cyan", "black"}
	for i := 0; i < n; i++ {
		doc := document.New(fmt.Sprintf("d%04d", i), map[string]any{
			"color": colors[i%len(colors)],
			"rank":  int64(i),
			"tags":  []any{fmt.Sprintf("t%d", i%10), "all"},
		})
		if err := s.Insert(table, doc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateIndexAndExplain(t *testing.T) {
	s := MustOpen(nil)
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "docs", 100)
	if err := s.CreateIndex("docs", "color"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("docs", "color"); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.CreateIndex("docs", "rank"); err != nil {
		t.Fatal(err)
	}
	paths, err := s.Indexes("docs")
	if err != nil || len(paths) != 2 || paths[0] != "color" || paths[1] != "rank" {
		t.Fatalf("indexes = %v, %v", paths, err)
	}

	cases := []struct {
		q    *query.Query
		kind query.PlanKind
	}{
		{query.New("docs", query.Eq("color", "red")), query.PlanProbe},
		{query.New("docs", query.Gt("rank", int64(50))), query.PlanRange},
		{query.New("docs", query.Eq("tags", "all")), query.PlanScan}, // unindexed path
		{query.New("docs", nil), query.PlanScan},
	}
	for _, c := range cases {
		plan, err := s.Explain(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Kind != c.kind {
			t.Errorf("%s planned %s (%s), want %s", c.q.Key(), plan.Kind, plan.Reason, c.kind)
		}
	}
}

// queriesAgree asserts the planner path and the scan path return identical
// ordered id lists.
func queriesAgree(t *testing.T, s *Store, q *query.Query) {
	t.Helper()
	planned, plan, err := s.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := s.ScanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(planned) != len(scanned) {
		t.Fatalf("%s (%s): planned %d docs, scan %d", q.Key(), plan.Kind, len(planned), len(scanned))
	}
	for i := range planned {
		if planned[i].ID != scanned[i].ID || planned[i].Version != scanned[i].Version {
			t.Fatalf("%s (%s): result %d differs: %s/v%d vs %s/v%d",
				q.Key(), plan.Kind, i, planned[i].ID, planned[i].Version, scanned[i].ID, scanned[i].Version)
		}
	}
}

func TestIndexedQueryMatchesScan(t *testing.T) {
	s := MustOpen(nil)
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "docs", 500)
	for _, path := range []string{"color", "rank", "tags"} {
		if err := s.CreateIndex("docs", path); err != nil {
			t.Fatal(err)
		}
	}

	queries := []*query.Query{
		query.New("docs", query.Eq("color", "red")),
		query.New("docs", query.Eq("color", "nope")),
		query.New("docs", query.In("color", "red", "blue")),
		query.New("docs", query.Contains("tags", "t3")),
		query.New("docs", query.Eq("tags", "all")), // array membership via equality
		query.New("docs", query.Gt("rank", int64(450))),
		query.New("docs", query.AndOf(query.Gte("rank", int64(100)), query.Lt("rank", int64(120)))),
		query.New("docs", query.AndOf(query.Eq("color", "green"), query.Gt("rank", int64(50)))),
		query.New("docs", query.Eq("color", "red")).Sorted(query.Desc("rank")).Sliced(2, 5),
	}
	for _, q := range queries {
		queriesAgree(t, s, q)
	}
}

// TestIndexedQueryHugeInt64 pins the probe-completeness fix for int64
// values beyond float64's exact range: the document model's equality folds
// numerics through float64 (1<<60 and (1<<60)+1 are DeepEqual), so index
// keys must fold the same way or a probe drops documents a scan returns.
func TestIndexedQueryHugeInt64(t *testing.T) {
	s := MustOpen(nil)
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("docs", document.New("big", map[string]any{"rank": int64(1) << 60})); err != nil {
		t.Fatal(err)
	}
	// Filler docs keep the probe estimate below the scan estimate so the
	// planner actually chooses the index path.
	for i := 0; i < 64; i++ {
		if err := s.Insert("docs", document.New(fmt.Sprintf("f%d", i), map[string]any{"rank": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CreateIndex("docs", "rank"); err != nil {
		t.Fatal(err)
	}
	q := query.New("docs", query.Eq("rank", int64(1)<<60+1))
	queriesAgree(t, s, q)
	docs, plan, err := s.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != query.PlanProbe {
		t.Fatalf("plan = %+v, want probe", plan)
	}
	if len(docs) != 1 || docs[0].ID != "big" {
		t.Fatalf("probe returned %d docs, want the Compare-equal big doc", len(docs))
	}
}

func TestIndexMaintainedAcrossWrites(t *testing.T) {
	s := MustOpen(nil)
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("docs", "color"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("docs", document.New("a", map[string]any{"color": "red"})); err != nil {
		t.Fatal(err)
	}
	q := query.New("docs", query.Eq("color", "red"))

	// Update moves the doc to another value: old posting must disappear.
	if _, err := s.Update("docs", "a", UpdateSpec{Set: map[string]any{"color": "blue"}}); err != nil {
		t.Fatal(err)
	}
	queriesAgree(t, s, q)
	if docs, _ := s.Query(q); len(docs) != 0 {
		t.Fatalf("red still matches %d docs after update", len(docs))
	}

	// Put (upsert) back to red.
	if err := s.Put("docs", document.New("a", map[string]any{"color": "red"})); err != nil {
		t.Fatal(err)
	}
	if docs, _ := s.Query(q); len(docs) != 1 {
		t.Fatal("red must match after put")
	}

	// Delete drops the posting.
	if err := s.Delete("docs", "a"); err != nil {
		t.Fatal(err)
	}
	queriesAgree(t, s, q)
	if docs, _ := s.Query(q); len(docs) != 0 {
		t.Fatal("deleted doc still indexed")
	}

	// Unset removes the field entirely: doc leaves the index.
	if err := s.Insert("docs", document.New("b", map[string]any{"color": "red"})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("docs", "b", UpdateSpec{Unset: []string{"color"}}); err != nil {
		t.Fatal(err)
	}
	queriesAgree(t, s, q)
}
