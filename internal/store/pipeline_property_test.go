package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/wal"
)

// seqCollector drains one subscription, checking global Seq order and
// per-key before/after chaining as events arrive.
type seqCollector struct {
	mu      sync.Mutex
	seqs    []uint64
	lastSeq uint64
	errs    []string
	// perKey tracks the last observed after-image version per live key.
	perKey map[string]int64
	done   chan struct{}
}

func collectSeqs(ch <-chan ChangeEvent) *seqCollector {
	col := &seqCollector{perKey: map[string]int64{}, done: make(chan struct{})}
	go func() {
		defer close(col.done)
		for ev := range ch {
			col.mu.Lock()
			col.observe(ev)
			col.mu.Unlock()
		}
	}()
	return col
}

func (col *seqCollector) failf(format string, args ...any) {
	if len(col.errs) < 20 {
		col.errs = append(col.errs, fmt.Sprintf(format, args...))
	}
}

// observe checks one event against the stream invariants. Caller holds mu.
func (col *seqCollector) observe(ev ChangeEvent) {
	if ev.Seq <= col.lastSeq {
		col.failf("seq %d delivered after %d — global order violated", ev.Seq, col.lastSeq)
	}
	col.lastSeq = ev.Seq
	col.seqs = append(col.seqs, ev.Seq)

	key := ev.Key()
	prev, live := col.perKey[key]
	switch ev.Op {
	case OpInsert:
		if ev.Before != nil {
			col.failf("seq %d: insert with pre-image", ev.Seq)
		}
		if live {
			col.failf("seq %d: insert of live key %s (v%d)", ev.Seq, key, prev)
		}
		if ev.After.Version != 1 {
			col.failf("seq %d: insert version %d", ev.Seq, ev.After.Version)
		}
		col.perKey[key] = ev.After.Version
	case OpUpdate:
		if ev.Before == nil {
			col.failf("seq %d: update without pre-image", ev.Seq)
			return
		}
		if !live {
			col.failf("seq %d: update of dead key %s", ev.Seq, key)
		} else if ev.Before.Version != prev {
			col.failf("seq %d: update pre-image v%d, last after-image was v%d — per-key chain broken", ev.Seq, ev.Before.Version, prev)
		}
		if ev.After.Version != ev.Before.Version+1 {
			col.failf("seq %d: update v%d -> v%d", ev.Seq, ev.Before.Version, ev.After.Version)
		}
		col.perKey[key] = ev.After.Version
	case OpDelete:
		if !ev.Deleted || ev.Before == nil {
			col.failf("seq %d: malformed delete", ev.Seq)
			return
		}
		if !live {
			col.failf("seq %d: delete of dead key %s", ev.Seq, key)
		} else if ev.Before.Version != prev {
			col.failf("seq %d: delete pre-image v%d, last after-image was v%d", ev.Seq, ev.Before.Version, prev)
		}
		delete(col.perKey, key)
	}
}

func (col *seqCollector) last() uint64 {
	col.mu.Lock()
	defer col.mu.Unlock()
	return col.lastSeq
}

// TestPropertyOrderedFanoutUnderConcurrentWriters is the commit
// pipeline's core property: with 64 writers racing on a small key space
// (many same-key races), every subscriber observes the complete change
// stream in strictly increasing Seq order with exact per-key
// before/after chaining — each event's pre-image is the previous event's
// after-image. Under the old unlock-then-publish protocol two racing
// same-key writes could reach a subscriber swapped; the ordered pipeline
// makes this deterministic, in both in-memory and durable mode.
func TestPropertyOrderedFanoutUnderConcurrentWriters(t *testing.T) {
	const (
		writers = 64
		keys    = 24
	)
	opsEach := 60
	if testing.Short() {
		opsEach = 25
	}
	for _, mode := range []string{"memory", "durable-never"} {
		t.Run(mode, func(t *testing.T) {
			opts := &Options{ChangeBuffer: 1 << 14}
			if mode != "memory" {
				opts.DataDir = t.TempDir()
				opts.Durability = Durability{Fsync: wal.FsyncNever}
			}
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.CreateTable("docs"); err != nil {
				t.Fatal(err)
			}

			cols := make([]*seqCollector, 3)
			for i := range cols {
				ch, cancel := s.SubscribeNamed(fmt.Sprintf("check-%d", i))
				defer cancel()
				cols[i] = collectSeqs(ch)
			}

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for op := 0; op < opsEach; op++ {
						id := fmt.Sprintf("k%02d", r.Intn(keys))
						switch r.Intn(4) {
						case 0:
							_ = s.Insert("docs", document.New(id, map[string]any{"n": int64(op)}))
						case 1:
							_ = s.Put("docs", document.New(id, map[string]any{"n": int64(op)}))
						case 2:
							_, _ = s.Update("docs", id, UpdateSpec{Inc: map[string]float64{"n": 1}})
						case 3:
							_ = s.Delete("docs", id)
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()

			// Every assigned Seq commits in these modes, so each subscriber
			// must eventually deliver the full dense stream.
			want := s.LastSeq()
			deadline := time.Now().Add(10 * time.Second)
			for _, col := range cols {
				for col.last() < want && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
			}
			for i, col := range cols {
				col.mu.Lock()
				if col.lastSeq != want {
					t.Errorf("subscriber %d stalled at seq %d, want %d", i, col.lastSeq, want)
				}
				if uint64(len(col.seqs)) != want {
					t.Errorf("subscriber %d got %d events, want %d (gaps in the dense stream)", i, len(col.seqs), want)
				}
				for _, msg := range col.errs {
					t.Errorf("subscriber %d: %s", i, msg)
				}
				col.mu.Unlock()
			}
			if st := s.PipelineStats(); st.Sequencer.Held != 0 {
				t.Errorf("sequencer still holding %d events after quiesce", st.Sequencer.Held)
			}
		})
	}
}
