package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/wal"
)

// walSubdir is where log segments live inside Options.DataDir (the
// snapshot sits next to it as wal.SnapshotName).
const walSubdir = "wal"

// SnapshotInfo describes one completed snapshot.
type SnapshotInfo struct {
	// Seq is the sequence floor: log records with Seq > Seq are replayed
	// over this snapshot on recovery.
	Seq    uint64    `json:"seq"`
	Docs   int       `json:"docs"`
	Bytes  int64     `json:"bytes"`
	At     time.Time `json:"at"`
	TookMs float64   `json:"tookMs"`
}

// RecoveryInfo describes what Open reconstructed from disk.
type RecoveryInfo struct {
	SnapshotSeq     uint64  `json:"snapshotSeq"`
	SnapshotDocs    int     `json:"snapshotDocs"`
	ReplayedRecords int     `json:"replayedRecords"` // doc records applied from the log tail
	TornTail        bool    `json:"tornTail"`        // last segment ended mid-record (crash)
	LastSeq         uint64  `json:"lastSeq"`         // restored sequence counter
	Tables          int     `json:"tables"`
	Indexes         int     `json:"indexes"` // secondary indexes rebuilt
	TookMs          float64 `json:"tookMs"`
}

// DurabilityStats aggregates the WAL, snapshot and recovery state of a
// durable store.
type DurabilityStats struct {
	DataDir      string        `json:"dataDir"`
	WAL          wal.Stats     `json:"wal"`
	LastSnapshot *SnapshotInfo `json:"lastSnapshot,omitempty"`
	Recovery     RecoveryInfo  `json:"recovery"`
	// AutoSnapshots counts snapshots triggered by Options.AutoSnapshotBytes.
	AutoSnapshots uint64 `json:"autoSnapshots,omitempty"`
}

// DurabilityStats reports WAL/snapshot/recovery state; ok is false for
// in-memory stores.
func (s *Store) DurabilityStats() (st DurabilityStats, ok bool) {
	if s.wal == nil {
		return DurabilityStats{}, false
	}
	st = DurabilityStats{DataDir: s.opts.DataDir, WAL: s.wal.Stats(), AutoSnapshots: s.autoSnaps.Load()}
	s.snapMu.Lock()
	if s.lastSnap != nil {
		snap := *s.lastSnap
		st.LastSnapshot = &snap
	}
	st.Recovery = s.recovery
	s.snapMu.Unlock()
	return st, true
}

// recover rebuilds the store from DataDir: load the latest snapshot,
// replay the log tail in sequence order (tolerating a torn final
// record), rebuild secondary indexes through the regular CreateIndex
// path, restore the sequence counter, and finally open the WAL for
// appending. Called from Open before the store is published, so the raw
// apply helpers run without contention.
func (s *Store) recover() error {
	start := time.Now()
	dataDir := s.opts.DataDir
	walDir := filepath.Join(dataDir, walSubdir)

	// pendingIdx collects every index definition seen (snapshot meta +
	// log DDL records) for the rebuild pass at the end.
	pendingIdx := map[string]map[string]bool{}
	addIndex := func(tbl, path string) {
		if pendingIdx[tbl] == nil {
			pendingIdx[tbl] = map[string]bool{}
		}
		pendingIdx[tbl][path] = true
	}

	var meta wal.SnapshotMeta
	snapDocs := 0
	loaded, err := wal.LoadSnapshot(dataDir,
		func(m wal.SnapshotMeta) error {
			meta = m
			for _, tm := range m.Tables {
				if _, err := s.createTable(tm.Name); err != nil {
					return err
				}
				for _, p := range tm.Indexes {
					addIndex(tm.Name, p)
				}
			}
			return nil
		},
		func(tbl string, doc *document.Document) error {
			snapDocs++
			return s.applyPut(tbl, doc)
		})
	if err != nil {
		return fmt.Errorf("store: loading snapshot: %w", err)
	}

	// Doc records can sit slightly out of sequence order across keys in
	// the file (appends from different shards interleave), so collect the
	// tail and sort by Seq before applying; per key, Seq order is the
	// serialization order. DDL records apply in file order and replay
	// unconditionally — they are idempotent and may predate the snapshot.
	var docRecs []wal.Record
	res, err := wal.Scan(walDir, func(r *wal.Record) error {
		switch r.Kind {
		case wal.KindCreateTable:
			_, err := s.createTable(r.Table)
			return err
		case wal.KindCreateIndex:
			addIndex(r.Table, r.Path)
			return nil
		case wal.KindPut, wal.KindDelete:
			if r.Seq > meta.Seq {
				docRecs = append(docRecs, *r)
			}
			return nil
		default:
			return fmt.Errorf("store: unknown wal record kind %q", r.Kind)
		}
	})
	if err != nil {
		return fmt.Errorf("store: scanning wal: %w", err)
	}
	sort.SliceStable(docRecs, func(i, j int) bool { return docRecs[i].Seq < docRecs[j].Seq })
	for i := range docRecs {
		r := &docRecs[i]
		// A doc record can reference a table whose KindCreateTable record
		// was lost in a torn tail: CreateTable exposes the table in memory
		// before its DDL append commits, so a concurrent writer's record
		// can land in an earlier batch. Re-create the table rather than
		// refusing to open the store.
		if _, err := s.createTable(r.Table); err != nil {
			return fmt.Errorf("store: replaying wal record seq %d: %w", r.Seq, err)
		}
		var err error
		if r.Kind == wal.KindDelete {
			err = s.applyDelete(r.Table, r.ID)
		} else {
			err = s.applyPut(r.Table, r.Doc)
		}
		if err != nil {
			return fmt.Errorf("store: replaying wal record seq %d: %w", r.Seq, err)
		}
	}

	lastSeq := meta.Seq
	if res.LastSeq > lastSeq {
		lastSeq = res.LastSeq
	}
	s.seq.Store(lastSeq)

	// Rebuild secondary indexes structurally (no re-logging, no
	// re-sequencing — the DDL records replayed are already in the log).
	nIdx := 0
	for tbl, paths := range pendingIdx {
		sorted := make([]string, 0, len(paths))
		for p := range paths {
			sorted = append(sorted, p)
		}
		sort.Strings(sorted)
		for _, p := range sorted {
			if _, err := s.buildIndex(tbl, p); err != nil {
				return fmt.Errorf("store: rebuilding index %s:%s: %w", tbl, p, err)
			}
			nIdx++
		}
	}

	// The pipeline tails from the recovered sequence; the WAL committer's
	// post-commit hook feeds it, so events hit the change stream only
	// after their record is written (never for one the log rejected) and
	// the sequencer restores strict global Seq order across shards. The
	// hook publishes each group with one sequencer call; its event
	// buffer is committer-goroutine-owned scratch (Append copies events
	// into the ring before returning).
	s.openPipeline(lastSeq)
	var hookEvents []ChangeEvent
	l, err := wal.Open(walDir, &wal.Options{
		Fsync:         s.opts.Durability.Fsync,
		FsyncInterval: s.opts.Durability.FsyncInterval,
		SegmentBytes:  s.opts.Durability.SegmentBytes,
		OnCommit: func(payloads []any, err error) {
			if err != nil {
				for _, p := range payloads {
					s.seqr.Skip(p.(*ChangeEvent).Seq)
				}
				return
			}
			hookEvents = hookEvents[:0]
			for _, p := range payloads {
				hookEvents = append(hookEvents, *p.(*ChangeEvent))
			}
			s.seqr.PublishAll(hookEvents)
			s.maybeAutoSnapshot()
		},
	})
	if err != nil {
		return err
	}
	s.wal = l
	s.recovery = RecoveryInfo{
		SnapshotSeq:     meta.Seq,
		SnapshotDocs:    snapDocs,
		ReplayedRecords: len(docRecs),
		TornTail:        res.TornTail,
		LastSeq:         lastSeq,
		Tables:          len(s.tables),
		Indexes:         nIdx,
		TookMs:          float64(time.Since(start)) / float64(time.Millisecond),
	}
	if loaded {
		s.lastSnap = &SnapshotInfo{Seq: meta.Seq, Docs: snapDocs, At: meta.CreatedAt}
		if fi, err := os.Stat(filepath.Join(dataDir, wal.SnapshotName)); err == nil {
			s.lastSnap.Bytes = fi.Size()
		}
	}
	return nil
}

// applyPut installs an after-image exactly as recorded, bypassing WAL,
// versioning and the change stream. Recovery-only.
func (s *Store) applyPut(tableName string, doc *document.Document) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	sh := t.shardFor(doc.ID)
	sh.mu.Lock()
	if prev, ok := sh.docs[doc.ID]; ok {
		sh.indexRemove(prev)
	}
	sh.docs[doc.ID] = doc
	sh.indexAdd(doc)
	sh.mu.Unlock()
	return nil
}

// applyDelete removes a document as recorded; deleting an already-absent
// id is a no-op (the record may predate the snapshot's state). Recovery-only.
func (s *Store) applyDelete(tableName, id string) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	sh := t.shardFor(id)
	sh.mu.Lock()
	if prev, ok := sh.docs[id]; ok {
		sh.indexRemove(prev)
		delete(sh.docs, id)
	}
	sh.mu.Unlock()
	return nil
}

// Snapshot writes a point-in-time snapshot and truncates the log
// segments it makes redundant. The protocol is crash-safe and runs
// against live writers:
//
//  1. capture the sequence floor S,
//  2. rotate the WAL (every record enqueued so far is in a sealed
//     segment, and its write is therefore visible to the scan below),
//  3. scan the shards under their read locks — every write with seq ≤ S
//     is guaranteed visible, later ones are harmless because replay
//     re-applies after-images idempotently in sequence order,
//  4. commit the snapshot atomically (tmp file, fsync, rename),
//  5. delete the sealed segments.
//
// A crash before (4) leaves the previous snapshot plus the whole log; a
// crash after (4) recovers from the new snapshot plus the tail.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	if s.wal == nil {
		return SnapshotInfo{}, ErrNotDurable
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()

	floor := s.seq.Load()
	sealed, err := s.wal.Rotate()
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: rotating wal for snapshot: %w", err)
	}

	tables, meta, err := s.snapshotTablesMeta(floor)
	if err != nil {
		return SnapshotInfo{}, err
	}

	w, err := wal.NewSnapshotWriter(s.opts.DataDir)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := w.Meta(meta); err != nil {
		w.Abort()
		return SnapshotInfo{}, err
	}
	for _, t := range tables {
		for _, sh := range t.shards {
			sh.mu.RLock()
			for _, d := range sh.docs {
				if err := w.Doc(t.name, d); err != nil {
					sh.mu.RUnlock()
					w.Abort()
					return SnapshotInfo{}, fmt.Errorf("store: writing snapshot: %w", err)
				}
			}
			sh.mu.RUnlock()
		}
	}
	if err := w.Commit(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: committing snapshot: %w", err)
	}
	if err := s.wal.Remove(sealed); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: truncating wal: %w", err)
	}

	info := SnapshotInfo{
		Seq:    floor,
		Docs:   w.Docs(),
		Bytes:  w.Bytes(),
		At:     meta.CreatedAt,
		TookMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
	s.lastSnap = &info
	return info, nil
}
