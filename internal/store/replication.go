package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"quaestor/internal/commitlog"
	"quaestor/internal/document"
	"quaestor/internal/index"
	"quaestor/internal/wal"
)

// This file is the store's log-shipping surface: what a primary exports
// (point-in-time snapshot stream, sealed WAL segments) and what a
// replica applies (snapshot import, replicated record batches through
// the recovery-style idempotent apply path). The commit pipeline's
// SubscribeFrom is the third leg — the live ordered feed — and lives in
// store.go.

// Replication errors.
var (
	// ErrReadOnly rejects doc writes on an unpromoted replica. DDL
	// (CreateTable/CreateIndex) stays allowed: tables arrive through
	// replication anyway and local secondary indexes are a per-node read
	// optimization a replica may legitimately build for itself.
	ErrReadOnly = errors.New("store: read-only replica (promote to accept writes)")
	// ErrSnapshotStale rejects an imported snapshot whose floor is below
	// state the store already holds.
	ErrSnapshotStale = errors.New("store: snapshot floor below current sequence")
)

// SetReadOnly toggles replica mode: while set, Insert/Put/Update/Delete
// fail with ErrReadOnly and the only way state changes is ImportSnapshot
// and ApplyReplicated. Promotion clears it.
func (s *Store) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// IsReadOnly reports whether the store currently rejects doc writes.
func (s *Store) IsReadOnly() bool { return s.readOnly.Load() }

// ExportSnapshot streams a point-in-time snapshot of the whole store —
// meta frame (sequence floor, tables, index paths), one frame per
// document, end frame — in the WAL snapshot format. Unlike Snapshot it
// touches no disk state and works on in-memory stores too, so any store
// can bootstrap a replica. Every write with Seq <= the returned floor is
// included; writes racing past the floor may leak in, which is harmless
// because the replica re-applies the stream from the floor through the
// idempotent apply path.
//
// Shard locks are held only while collecting document pointers (stored
// documents are copy-on-write: writers replace, never mutate, them), so
// a slow receiver never blocks the write path.
func (s *Store) ExportSnapshot(w io.Writer) (wal.SnapshotMeta, int, error) {
	floor := s.seq.Load()
	tables, meta, err := s.snapshotTablesMeta(floor)
	if err != nil {
		return wal.SnapshotMeta{}, 0, err
	}

	sw := wal.NewSnapshotStreamWriter(w)
	if err := sw.Meta(meta); err != nil {
		return meta, 0, fmt.Errorf("store: exporting snapshot meta: %w", err)
	}
	for _, t := range tables {
		for _, sh := range t.shards {
			sh.mu.RLock()
			docs := make([]*document.Document, 0, len(sh.docs))
			for _, d := range sh.docs {
				docs = append(docs, d)
			}
			sh.mu.RUnlock()
			for _, d := range docs {
				if err := sw.Doc(t.name, d); err != nil {
					return meta, sw.Docs(), fmt.Errorf("store: exporting snapshot: %w", err)
				}
			}
		}
	}
	if err := sw.End(); err != nil {
		return meta, sw.Docs(), fmt.Errorf("store: exporting snapshot: %w", err)
	}
	return meta, sw.Docs(), nil
}

// ImportInfo describes a completed snapshot import: the snapshot's
// figures plus the synthetic events the old-vs-imported diff published.
type ImportInfo struct {
	SnapshotInfo
	// SyntheticDeletes counts documents that vanished inside the
	// collapsed range (a synthetic Delete was published for each);
	// SyntheticPuts counts documents created or re-versioned there.
	SyntheticDeletes int `json:"syntheticDeletes"`
	SyntheticPuts    int `json:"syntheticPuts"`
}

// ImportSnapshot replaces the store's contents with a snapshot stream
// (the format ExportSnapshot produces) as a double-buffered atomic swap:
// the stream is applied into a shadow table set (indexes included) while
// the old state keeps serving reads untouched, and only after the end
// frame validates the transfer is the new state swapped in atomically
// under the table lock. Concurrent readers therefore observe either the
// complete old state or the complete new state, never a mix; a
// mid-stream error, a truncated transfer or a stale floor leaves the old
// state fully intact. The sequence counter jumps to the snapshot's
// floor — the point the replica then streams from. On durable stores the
// incoming bytes are simultaneously persisted as the local snapshot file
// and the WAL is reset (rotate + drop sealed segments), so a restart
// recovers straight from the imported state.
//
// After the swap, the old and imported states are diffed and the
// difference is published as synthetic events sequenced at the floor —
// Deletes for documents that vanished inside the collapsed range, Puts
// for documents created or re-versioned there — delivered to local
// subscribers (InvaliDB, SSE, replay rings) but never re-logged to the
// WAL, which the teed snapshot file already supersedes. Every local
// cache layer converges without waiting for the next organic write.
//
// Tables and secondary indexes the snapshot does not carry survive:
// local tables stay (emptied — the import supersedes all replicated
// documents) and per-node index definitions are rebuilt against the
// imported documents.
//
// The caller must be the only writer (a replica's single replication
// applier).
func (s *Store) ImportSnapshot(r io.Reader) (ImportInfo, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()

	// Durable stores tee the raw stream into the local snapshot temp
	// file; it is committed (fsync + atomic rename) only after the end
	// frame validated the transfer.
	var tmpF *os.File
	var tmpW *bufio.Writer
	src := r
	if s.wal != nil {
		tmp := filepath.Join(s.opts.DataDir, wal.SnapshotName+".tmp")
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return ImportInfo{}, fmt.Errorf("store: creating snapshot temp: %w", err)
		}
		tmpF = f
		tmpW = bufio.NewWriterSize(f, 1<<16)
		src = io.TeeReader(r, tmpW)
		defer func() {
			if tmpF != nil { // not committed: discard
				tmpF.Close()
				os.Remove(tmp)
			}
		}()
	}

	// The stream lands in a private shadow table set; the live state is
	// not touched until the whole transfer has validated.
	shadow := map[string]*table{}
	var meta wal.SnapshotMeta
	docs := 0
	err := wal.ReadSnapshotStream(src,
		func(m wal.SnapshotMeta) error {
			if m.Seq < s.seq.Load() {
				return fmt.Errorf("%w: floor %d, store at %d", ErrSnapshotStale, m.Seq, s.seq.Load())
			}
			meta = m
			for _, tm := range m.Tables {
				t := newTable(tm.Name, s.opts.ShardsPerTable)
				shadow[tm.Name] = t
				for _, p := range tm.Indexes {
					shadowIndex(t, p)
				}
			}
			return nil
		},
		func(tbl string, doc *document.Document) error {
			docs++
			t, ok := shadow[tbl]
			if !ok {
				return fmt.Errorf("store: snapshot doc for undeclared table %q", tbl)
			}
			sh := t.shardFor(doc.ID)
			if prev, ok := sh.docs[doc.ID]; ok {
				sh.indexRemove(prev)
			}
			sh.docs[doc.ID] = doc
			sh.indexAdd(doc)
			return nil
		})
	if err != nil {
		return ImportInfo{}, fmt.Errorf("store: importing snapshot: %w", err)
	}

	// Local definitions survive the re-bootstrap: tables absent from the
	// snapshot stay (empty), and per-node secondary indexes are rebuilt
	// against the imported documents. Definitions the snapshot meta does
	// not cover are collected for re-logging: on durable stores the WAL
	// reset below destroys the DDL records that created them, and the
	// teed snapshot only carries the primary's meta, so without a fresh
	// record a restart would silently drop them.
	var localDDL []wal.Record
	inMeta := make(map[string]bool, len(meta.Tables))
	for _, tm := range meta.Tables {
		inMeta[tm.Name] = true
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ImportInfo{}, ErrClosed
	}
	locals := make(map[string]*table, len(s.tables))
	for name, t := range s.tables {
		locals[name] = t
	}
	s.mu.RUnlock()
	for name, lt := range locals {
		lt.idxMu.RLock()
		paths := append([]string(nil), lt.indexPaths...)
		lt.idxMu.RUnlock()
		nt, ok := shadow[name]
		if !ok {
			nt = newTable(name, s.opts.ShardsPerTable)
			shadow[name] = nt
		}
		if !inMeta[name] {
			localDDL = append(localDDL, wal.Record{Kind: wal.KindCreateTable, Table: name})
		}
		for _, p := range paths {
			if shadowIndex(nt, p) {
				localDDL = append(localDDL, wal.Record{Kind: wal.KindCreateIndex, Table: name, Path: p})
			}
		}
	}

	if s.wal != nil {
		if err := tmpW.Flush(); err != nil {
			return ImportInfo{}, err
		}
		//lint:quaestor lockio -- local fsync of the teed snapshot before the atomic rename; snapMu is the import's own serialization lock and must span the whole commit
		if err := tmpF.Sync(); err != nil {
			return ImportInfo{}, err
		}
		if err := tmpF.Close(); err != nil {
			return ImportInfo{}, err
		}
		if err := os.Rename(tmpF.Name(), filepath.Join(s.opts.DataDir, wal.SnapshotName)); err != nil {
			return ImportInfo{}, err
		}
		tmpF = nil // committed: keep
		// The imported snapshot supersedes all prior local history: seal
		// the active segment and drop everything sealed. Recovery is now
		// snapshot + (empty) tail. (A failure here leaves the old state
		// serving in memory and a consistent disk pair: records below the
		// new snapshot's floor are skipped on replay.)
		sealed, err := s.wal.Rotate()
		if err != nil {
			return ImportInfo{}, fmt.Errorf("store: resetting wal after import: %w", err)
		}
		if err := s.wal.Remove(sealed); err != nil {
			return ImportInfo{}, fmt.Errorf("store: resetting wal after import: %w", err)
		}
		// Re-log the preserved local-only definitions into the fresh log
		// (seq-0 DDL records, idempotent on replay), so a restart rebuilds
		// them over the imported snapshot.
		for _, rec := range localDDL {
			if err := s.wal.Append(rec); err != nil {
				return ImportInfo{}, fmt.Errorf("store: re-logging local ddl after import: %w", err)
			}
		}
	}

	// The swap: one table-map replacement under the store lock. Readers
	// resolve their table pointer under the same lock, so every read
	// observes either the complete old state or the complete new state —
	// a reader that already holds an old table pointer keeps reading the
	// old state, which is never mutated again.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ImportInfo{}, ErrClosed
	}
	// A table created while the import streamed (DDL stays allowed on
	// replicas) is carried over rather than dropped; it is necessarily
	// empty of documents (the importer is the only doc writer), so
	// sharing the pointer with the old set diffs to nothing.
	var carried []string
	for name, t := range s.tables {
		if _, ok := shadow[name]; !ok {
			shadow[name] = t
			carried = append(carried, name)
		}
	}
	old := s.tables
	s.tables = shadow
	s.mu.Unlock()

	// Concurrently created tables need fresh DDL records too (their
	// originals predate the reset).
	if s.wal != nil {
		for _, name := range carried {
			if err := s.wal.Append(wal.Record{Kind: wal.KindCreateTable, Table: name}); err != nil {
				return ImportInfo{}, fmt.Errorf("store: re-logging local ddl after import: %w", err)
			}
		}
	}
	// Heal index definitions that raced the import: a CreateIndex landing
	// between the locals capture above and the swap installed itself on an
	// old table object the swap just retired. Replaying every old path
	// through CreateIndex is a no-op for paths the shadow already carries
	// and installs (and, on durable stores, re-logs) the racers against
	// the imported documents. A CreateIndex still in flight at the swap
	// instant can lose its in-memory postings until restart, but its DDL
	// record lands in the fresh log either way.
	for name, ot := range old {
		ot.idxMu.RLock()
		paths := append([]string(nil), ot.indexPaths...)
		ot.idxMu.RUnlock()
		for _, p := range paths {
			if err := s.CreateIndex(name, p); err != nil {
				return ImportInfo{}, fmt.Errorf("store: re-installing index %s:%s after import: %w", name, p, err)
			}
		}
	}

	s.seq.Store(meta.Seq)
	// The pipeline resumes at the floor: subscribers see a seq jump over
	// the range the snapshot covers (they cannot observe the individual
	// writes a snapshot collapsed anyway), and the fan-out ring's
	// truncation horizon moves with it so a chained replica attaching
	// from inside the collapsed range is refused (ErrSeqTruncated → it
	// re-bootstraps) instead of silently skipping history.
	s.seqr.AdvanceTo(meta.Seq + 1)
	s.pipeline.Truncate(meta.Seq)

	dels, puts := s.publishImportDiff(old, shadow, meta.Seq)

	info := ImportInfo{
		SnapshotInfo: SnapshotInfo{
			Seq:    meta.Seq,
			Docs:   docs,
			At:     meta.CreatedAt,
			TookMs: float64(time.Since(start)) / float64(time.Millisecond),
		},
		SyntheticDeletes: dels,
		SyntheticPuts:    puts,
	}
	if s.wal != nil {
		if fi, err := os.Stat(filepath.Join(s.opts.DataDir, wal.SnapshotName)); err == nil {
			info.Bytes = fi.Size()
		}
		snap := info.SnapshotInfo
		s.lastSnap = &snap
	}
	return info, nil
}

// shadowIndex installs a secondary index on a shadow table (private to
// the import, so no locking), building it over any documents already
// present. It reports whether the path was newly installed (false for
// an existing one).
func shadowIndex(t *table, path string) bool {
	for _, p := range t.indexPaths {
		if p == path {
			return false
		}
	}
	t.indexPaths = append(t.indexPaths, path)
	sort.Strings(t.indexPaths)
	for _, sh := range t.shards {
		ix := index.NewField(path)
		for _, d := range sh.docs {
			ix.Add(d)
		}
		sh.indexes[path] = ix
	}
	return true
}

// publishImportDiff diffs the replaced state against the imported one
// and publishes the difference as synthetic events sequenced at the
// snapshot floor: a Delete for every document that vanished inside the
// collapsed range, a Put for every document created or re-versioned
// there. The events reach local subscribers only (InvaliDB, SSE, replay
// rings) — they are never re-logged to the WAL, which the imported
// snapshot supersedes. Doc lookups are lock-free: the import path is the
// only writer of either table set.
func (s *Store) publishImportDiff(old, imported map[string]*table, floor uint64) (dels, puts int) {
	now := s.opts.Clock()
	var evs []ChangeEvent
	for name, ot := range old {
		nt := imported[name] // never nil: the shadow set includes every local table
		for _, osh := range ot.shards {
			for id, odoc := range osh.docs {
				ndoc := nt.lookupDoc(id)
				switch {
				case ndoc == nil:
					evs = append(evs, ChangeEvent{
						Seq: floor, Table: name, Op: OpDelete, Deleted: true,
						Before: odoc,
						After:  &document.Document{ID: id, Version: odoc.Version + 1},
						Time:   now,
					})
					dels++
				// Version equality alone cannot prove identity: versions
				// restart at 1 on recreate, so a document deleted and
				// re-created inside the collapsed range can land on the same
				// version with different content. Equal versions fall
				// through to a content comparison.
				case ndoc.Version != odoc.Version || !document.DeepEqual(odoc.Fields, ndoc.Fields):
					evs = append(evs, ChangeEvent{
						Seq: floor, Table: name, Op: OpUpdate,
						Before: odoc, After: ndoc, Time: now,
					})
					puts++
				}
			}
		}
	}
	for name, nt := range imported {
		ot := old[name]
		for _, nsh := range nt.shards {
			for id, ndoc := range nsh.docs {
				if ot != nil && ot.lookupDoc(id) != nil {
					continue // pre-existing: handled (or unchanged) above
				}
				evs = append(evs, ChangeEvent{
					Seq: floor, Table: name, Op: OpInsert,
					After: ndoc, Time: now,
				})
				puts++
			}
		}
	}
	s.seqr.PublishSynthetic(evs)
	return dels, puts
}

// snapshotTablesMeta collects the store's tables (sorted by name) and
// builds the snapshot meta frame for the given sequence floor — shared
// by local snapshots (Snapshot) and replication exports
// (ExportSnapshot) so the two formats cannot drift.
func (s *Store) snapshotTablesMeta(floor uint64) ([]*table, wal.SnapshotMeta, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, wal.SnapshotMeta{}, ErrClosed
	}
	tables := make([]*table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].name < tables[j].name })

	meta := wal.SnapshotMeta{Seq: floor, CreatedAt: s.opts.Clock()}
	for _, t := range tables {
		t.idxMu.RLock()
		paths := append([]string(nil), t.indexPaths...)
		t.idxMu.RUnlock()
		meta.Tables = append(meta.Tables, wal.TableMeta{Name: t.name, Indexes: paths})
	}
	return tables, meta, nil
}

// ApplyReplicated applies one ordered batch of replicated log records —
// the stream a primary's commit pipeline (or its shipped WAL segments)
// produces — through the recovery-style idempotent apply path:
//
//   - records at or below the store's sequence are duplicates from a
//     reconnect or overlapping catch-up channels and are skipped, so
//     re-delivery is a no-op;
//   - DDL records (Seq 0) replay unconditionally, they are idempotent;
//   - doc records install the after-image exactly as recorded, advance
//     the sequence counter, and are re-logged to the replica's own WAL
//     (its recovery then resumes replication from the right floor);
//   - every applied record is published on the replica's own commit
//     pipeline, so local subscribers (InvaliDB, SSE feeds, chained
//     replicas) observe the same totally-ordered stream as on the
//     primary; sequence gaps the primary skipped are skipped here too.
//
// Records must arrive in non-decreasing Seq order (sort shipped segment
// records first). ApplyReplicated takes ownership of rec.Doc pointers.
// The caller must be a single goroutine — the replication applier.
func (s *Store) ApplyReplicated(recs []wal.Record) (applied int, err error) {
	var last *wal.Waiter
	now := s.opts.Clock()
	// In-memory stores collect the batch's events and publish them with
	// one sequencer call after the shard mutations; durable stores
	// publish from the WAL committer's post-commit hook instead. The
	// collection buffer is store-owned scratch — safe because apply has
	// a single caller and Log.Append copies events out before returning.
	events := s.applyScratch[:0]
	// The apply path is hot — it carries the primary's whole write
	// throughput on one goroutine — so the table lookup is cached across
	// the batch (records overwhelmingly target one table in a row).
	var tbl *table
	tblName := ""
	getTable := func(name string) (*table, error) {
		if tbl != nil && tblName == name {
			return tbl, nil
		}
		t, err := s.table(name)
		if errors.Is(err, ErrNoTable) {
			if _, err := s.createTable(name); err != nil {
				return nil, err
			}
			t, err = s.table(name)
			if err != nil {
				return nil, err
			}
		} else if err != nil {
			return nil, err
		}
		tbl, tblName = t, name
		return t, nil
	}
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case wal.KindCreateTable:
			created, err := s.createTable(rec.Table)
			if err != nil {
				return applied, err
			}
			if created && s.wal != nil {
				last = s.wal.Enqueue(*rec)
			}
		case wal.KindCreateIndex:
			if _, err := getTable(rec.Table); err != nil {
				return applied, err
			}
			if rec.Seq == 0 {
				// Legacy unsequenced DDL (pre-sequencing segments,
				// catch-up shipping): build idempotently and keep the
				// unsequenced record in the local log.
				added, err := s.buildIndex(rec.Table, rec.Path)
				if err != nil {
					return applied, err
				}
				if added && s.wal != nil {
					last = s.wal.Enqueue(*rec)
				}
				break
			}
			// Sequenced DDL occupies a slot in the primary's write order:
			// apply it exactly like a doc record — idempotent on
			// re-delivery, advances the local sequence, re-logs at the
			// primary's Seq, and publishes on the local pipeline.
			prevSeq := s.seq.Load()
			if rec.Seq <= prevSeq {
				break // idempotent re-delivery (or already built locally)
			}
			if _, err := s.buildIndex(rec.Table, rec.Path); err != nil {
				return applied, err
			}
			s.seq.Store(rec.Seq)
			applied++
			if s.wal != nil {
				for q := prevSeq + 1; q < rec.Seq; q++ {
					s.seqr.Skip(q)
				}
				ev := &ChangeEvent{Seq: rec.Seq, Table: rec.Table, Op: commitlog.OpCreateIndex, Path: rec.Path, Time: now}
				last = s.wal.EnqueueWith(*rec, ev)
			} else {
				events = append(events, ChangeEvent{Seq: rec.Seq, Table: rec.Table, Op: commitlog.OpCreateIndex, Path: rec.Path, Time: now})
			}
		case wal.KindPut, wal.KindDelete:
			t, err := getTable(rec.Table)
			if err != nil {
				return applied, err
			}
			var ev *ChangeEvent
			if s.wal != nil {
				// The committer retains the event past this call; it
				// needs its own allocation.
				ev = &ChangeEvent{}
			} else {
				events = append(events, ChangeEvent{})
				ev = &events[len(events)-1]
			}
			ok, w, aerr := s.applyReplicatedDoc(rec, t, now, ev)
			if aerr != nil {
				return applied, aerr
			}
			if ok {
				applied++
				if w != nil {
					last = w
				}
			} else if s.wal == nil {
				events = events[:len(events)-1] // duplicate: discard slot
			}
		default:
			return applied, fmt.Errorf("store: unknown replicated record kind %q", rec.Kind)
		}
	}
	if len(events) > 0 {
		// One lock, one fan-out append for the whole batch; sequence
		// numbers missing inside the batch were never published by the
		// primary and are implicitly skipped.
		s.seqr.PublishBatch(events)
	}
	s.applyScratch = events[:0]
	if last != nil {
		// The batch shares the committer's group outcome: a wedged WAL
		// surfaces on the newest waiter (earlier failures latch).
		if err := last.Wait(); err != nil {
			return applied, fmt.Errorf("store: logging replicated batch: %w", err)
		}
	}
	return applied, nil
}

// applyReplicatedDoc applies one doc record to its table, filling ev in
// place. It reports false for duplicates (already-applied sequences);
// the waiter is non-nil only on durable stores, whose committer hook
// publishes the event.
func (s *Store) applyReplicatedDoc(rec *wal.Record, t *table, now time.Time, ev *ChangeEvent) (bool, *wal.Waiter, error) {
	prevSeq := s.seq.Load()
	if rec.Seq <= prevSeq {
		return false, nil, nil // idempotent re-delivery
	}
	id := rec.ID
	if rec.Kind == wal.KindPut {
		if rec.Doc == nil {
			return false, nil, fmt.Errorf("store: replicated put seq %d has no document", rec.Seq)
		}
		id = rec.Doc.ID
	}
	sh := t.shardFor(id)
	sh.mu.Lock()
	prev, existed := sh.docs[id]
	*ev = ChangeEvent{Seq: rec.Seq, Table: rec.Table, Time: now}
	if existed {
		// Stored documents are copy-on-write (writers replace, never
		// mutate), so events share pointers instead of cloning.
		ev.Before = prev
	}
	if rec.Kind == wal.KindDelete {
		if existed {
			sh.indexRemove(prev)
			delete(sh.docs, id)
		}
		ev.Op = OpDelete
		ev.Deleted = true
		ev.After = &document.Document{ID: id, Version: rec.Version}
	} else {
		if existed {
			sh.indexRemove(prev)
			ev.Op = OpUpdate
		} else {
			ev.Op = OpInsert
		}
		sh.docs[id] = rec.Doc
		sh.indexAdd(rec.Doc)
		ev.After = rec.Doc
	}
	s.seq.Store(rec.Seq)
	var w *wal.Waiter
	if s.wal != nil {
		// Release sequences the primary never published (skipped WAL
		// failures) so the committer-fed sequencer doesn't stall waiting
		// for them. (In-memory stores handle gaps in PublishBatch.)
		for q := prevSeq + 1; q < rec.Seq; q++ {
			s.seqr.Skip(q)
		}
		// Same contract as stampLocked: enqueue inside the shard critical
		// section so per-key record order in the replica's log matches
		// the apply order; the committer's post-commit hook publishes ev
		// on the replica's pipeline.
		w = s.wal.EnqueueWith(*rec, ev)
	}
	sh.mu.Unlock()
	return true, w, nil
}

// WALExport is an in-progress sealed-segment export (replica catch-up
// older than the fan-out ring). It holds the store's snapshot lock until
// Close so a concurrent snapshot cannot truncate the segments out from
// under the transfer.
type WALExport struct {
	s     *Store
	after uint64
	// SnapshotSeq is the store's current snapshot floor: records with
	// Seq <= SnapshotSeq are no longer in the log, so a consumer whose
	// position is below the floor must re-bootstrap from a snapshot.
	SnapshotSeq uint64
	// LastSeq is the newest assigned sequence at export time.
	LastSeq uint64
	paths   []string
}

// BeginWALExport rotates the WAL (sealing the active segment, so every
// record enqueued so far becomes shippable) and returns an export of
// every sealed record past the consumer's position (DDL records always
// ship — they carry no sequence and replay idempotently). ErrNotDurable
// on in-memory stores — they have no log to ship, consumers must
// re-bootstrap from a snapshot instead. The caller must Close the
// export.
func (s *Store) BeginWALExport(after uint64) (*WALExport, error) {
	if s.wal == nil {
		return nil, ErrNotDurable
	}
	s.snapMu.Lock()
	sealed, err := s.wal.Rotate()
	if err != nil {
		s.snapMu.Unlock()
		return nil, fmt.Errorf("store: rotating wal for export: %w", err)
	}
	e := &WALExport{s: s, after: after, LastSeq: s.seq.Load(), paths: sealed}
	if s.lastSnap != nil {
		e.SnapshotSeq = s.lastSnap.Seq
	}
	return e, nil
}

// WriteTo streams the sealed segments' relevant records to w in log
// order; the output is a valid record stream for wal.ScanReader. Frames
// are filtered by peeking at each record's sequence and re-framed from
// the raw payload bytes — never JSON re-encoded — so a consumer a few
// records behind does not download the whole log since the last
// snapshot.
func (e *WALExport) WriteTo(w io.Writer) (int64, error) {
	var total int64
	var buf []byte
	for _, p := range e.paths {
		f, err := os.Open(p)
		if err != nil {
			return total, err
		}
		fr := wal.NewFrameReader(bufio.NewReaderSize(f, 1<<16))
		for {
			payload, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return total, err
			}
			// Sealed segments contain only complete records; a frame
			// that does not decode is corruption and aborts the export.
			var hdr struct {
				Seq uint64 `json:"seq"`
			}
			if err := json.Unmarshal(payload, &hdr); err != nil {
				f.Close()
				return total, fmt.Errorf("store: wal export: corrupt record in %s: %w", p, err)
			}
			if hdr.Seq != 0 && hdr.Seq <= e.after {
				continue // the consumer already has it
			}
			buf = wal.AppendFrame(buf[:0], payload)
			n, err := w.Write(buf)
			total += int64(n)
			if err != nil {
				f.Close()
				return total, err
			}
		}
		f.Close()
	}
	return total, nil
}

// Close releases the snapshot lock taken by BeginWALExport.
func (e *WALExport) Close() { e.s.snapMu.Unlock() }
