package store

import (
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

func execStore(t *testing.T, n int) *Store {
	t.Helper()
	s := MustOpen(nil)
	t.Cleanup(func() { s.Close() })
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	fill(t, s, "docs", n)
	for _, path := range []string{"color", "rank", "tags"} {
		if err := s.CreateIndex("docs", path); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestExplainStrategy(t *testing.T) {
	s := execStore(t, 200)
	cases := []struct {
		q        *query.Query
		strategy string
		elided   int
	}{
		// Indexed probe, no limit: full sort, probed conjunct elided.
		{query.New("docs", query.Eq("color", "red")), query.StrategySortAll, 1},
		// Limit without a matching ordered index: bounded top-K.
		{query.New("docs", query.Eq("color", "red")).Sorted(query.Desc("rank")).Sliced(0, 5), query.StrategyTopK, 1},
		// Range plan whose path IS the ORDER BY: ordered emission, no sort.
		{query.New("docs", query.Gt("rank", int64(50))).Sorted(query.Asc("rank")).Sliced(0, 10), query.StrategyOrdered, 1},
		{query.New("docs", query.Gt("rank", int64(50))).Sorted(query.Desc("rank")), query.StrategyOrdered, 1},
		// Unindexed scan with limit.
		{query.New("docs", query.Exists("color", true)).Sliced(0, 3), query.StrategyTopK, 0},
		// Residual survives: only the range conjunct is index-guaranteed
		// (the negation is unsargable, so the planner takes the rank range).
		{query.New("docs", query.AndOf(query.Gt("rank", int64(10)), query.NotOf(query.Eq("color", "red")))).Sorted(query.Asc("rank")), query.StrategyOrdered, 1},
	}
	for _, c := range cases {
		plan, err := s.Explain(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Strategy != c.strategy || plan.ElidedConjuncts != c.elided {
			t.Errorf("%s: strategy=%q elided=%d, want %q/%d (plan %+v)",
				c.q.Key(), plan.Strategy, plan.ElidedConjuncts, c.strategy, c.elided, plan)
		}
	}
}

func TestStreamingMatchesScanBaseline(t *testing.T) {
	s := execStore(t, 500)
	queries := []*query.Query{
		// Ordered strategy, both directions, with and without windows.
		query.New("docs", query.Gte("rank", int64(100))).Sorted(query.Asc("rank")),
		query.New("docs", query.Gte("rank", int64(100))).Sorted(query.Desc("rank")),
		query.New("docs", query.Gt("rank", int64(50))).Sorted(query.Asc("rank")).Sliced(0, 10),
		query.New("docs", query.Lt("rank", int64(400))).Sorted(query.Desc("rank")).Sliced(7, 20),
		query.New("docs", query.Gt("rank", int64(480))).Sorted(query.Asc("rank")).Sliced(100, 10), // offset beyond result
		// Top-K over probe and scan sources.
		query.New("docs", query.Eq("color", "blue")).Sorted(query.Desc("rank")).Sliced(0, 7),
		query.New("docs", query.Contains("tags", "t4")).Sorted(query.Asc("rank")).Sliced(3, 9),
		query.New("docs", query.Exists("rank", true)).Sorted(query.Desc("rank")).Sliced(0, 12),
		query.New("docs", nil).Sliced(0, 5), // no ORDER BY: id order window
		// Sort-all across plan kinds.
		query.New("docs", query.In("color", "red", "cyan")).Sorted(query.Desc("rank")),
		query.New("docs", query.In("color")), // empty $in
		query.New("docs", query.AndOf(query.Gte("rank", int64(0)), query.Lte("rank", int64(499)))).Sorted(query.Asc("rank")).Sliced(490, 0),
		query.New("docs", query.OrOf(query.Eq("color", "red"), query.Eq("color", "nope"))).Sorted(query.Asc("rank")),
	}
	for _, q := range queries {
		queriesAgree(t, s, q)
	}
}

// TestStreamingDegradedShard pins the degrade path: when a shard's index
// vanished between planning and execution (possible around a concurrent
// CreateIndex), the executor must scan that shard with the FULL predicate —
// residual elision is only sound for index-vouched candidates.
func TestStreamingDegradedShard(t *testing.T) {
	s := execStore(t, 300)
	tab, err := s.table("docs")
	if err != nil {
		t.Fatal(err)
	}
	// Strip the rank index from a few shards; the planner (table stats) still
	// sees it and plans a range.
	for _, sh := range tab.shards[:5] {
		sh.mu.Lock()
		delete(sh.indexes, "rank")
		sh.mu.Unlock()
	}
	queries := []*query.Query{
		query.New("docs", query.Gt("rank", int64(100))).Sorted(query.Asc("rank")).Sliced(0, 20),
		query.New("docs", query.Gt("rank", int64(100))).Sorted(query.Desc("rank")),
		query.New("docs", query.AndOf(query.Gte("rank", int64(50)), query.NotOf(query.Eq("color", "red")))).Sorted(query.Asc("rank")).Sliced(2, 10),
	}
	for _, q := range queries {
		plan, err := s.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Kind != query.PlanRange {
			t.Fatalf("%s: plan = %+v, want range (test setup broken)", q.Key(), plan)
		}
		queriesAgree(t, s, q)
	}
}

func TestCursorSemantics(t *testing.T) {
	s := execStore(t, 50)
	q := query.New("docs", query.Eq("color", "red")).Sorted(query.Asc("rank")).Sliced(0, 3)
	cur, err := s.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Remaining() != 3 {
		t.Fatalf("remaining = %d, want 3", cur.Remaining())
	}
	p := cur.Plan()
	if p.Strategy != query.StrategyTopK || p.RowsReturned != 3 || p.RowsExamined < 3 {
		t.Fatalf("plan report = %+v", p)
	}
	// Next clones: mutating the emitted doc must not corrupt store state.
	d, ok := cur.Next()
	if !ok {
		t.Fatal("cursor empty")
	}
	d.Fields["color"] = "mutated"
	if got, _, _ := s.QueryPlanned(query.New("docs", query.Eq("color", "mutated"))); len(got) != 0 {
		t.Fatal("cursor clone leaked into store")
	}
	// NextShared hands out remaining docs, then both emitters report done.
	for cur.Remaining() > 0 {
		if _, ok := cur.NextShared(); !ok {
			t.Fatal("NextShared ended early")
		}
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("Next past end")
	}

	// Empty result window.
	cur, err = s.QueryStream(query.New("docs", query.Eq("color", "nope")))
	if err != nil {
		t.Fatal(err)
	}
	if cur.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", cur.Remaining())
	}
	if cur.Plan().RowsReturned != 0 {
		t.Fatalf("plan report = %+v", cur.Plan())
	}
}

func TestMergeOrderedWindow(t *testing.T) {
	q := query.New("docs", nil).Sorted(query.Asc("rank")).Sliced(2, 3)
	mk := func(ranks ...int64) []*document.Document {
		out := make([]*document.Document, len(ranks))
		for i, r := range ranks {
			out[i] = document.New(string(rune('a'+i))+"-"+q.Table, map[string]any{"rank": r})
		}
		return out
	}
	lists := [][]*document.Document{mk(1, 4, 7), mk(2, 5), mk(3)}
	got := mergeOrdered(q, lists)
	if len(got) != 3 {
		t.Fatalf("merged %d docs, want 3", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].Fields["rank"] != want {
			t.Fatalf("pos %d rank = %v, want %d", i, got[i].Fields["rank"], want)
		}
	}
	// Offset past the merged total yields nil.
	if out := mergeOrdered(query.New("docs", nil).Sliced(10, 5), lists); out != nil {
		t.Fatalf("offset past total = %v, want nil", out)
	}
}
