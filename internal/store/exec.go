// Streaming query execution: the store-side iterator executor behind
// QueryPlanned and QueryStream. Source iterators (index probe, ordered
// range scan, shard scan) feed one of three emission strategies — full
// sort, bounded top-K, or order-preserving merge — chosen by the query
// layer (query.ChooseStrategy). Conjuncts the index access already
// guarantees are elided from the per-document predicate
// (query.Residual).
//
// The executor collects stored document POINTERS, not clones: stored
// documents are copy-on-write (writers replace, never mutate, them — see
// replication.go), so pointers gathered under a shard's read lock stay
// internally immutable after the lock is released. Cloning happens only
// at emission (Cursor.Next), and only for the offset+limit window — a
// LIMIT 10 over 100k matches clones 10 documents where the materializing
// baseline cloned and sorted 100k.
package store

import (
	"sort"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// Cursor streams one query's results. It holds shared stored-document
// pointers; Next clones at emission, NextShared hands the shared pointer
// out directly for read-only consumers (the NDJSON encoder) that promise
// not to mutate it.
type Cursor struct {
	plan query.Plan
	docs []*document.Document
	pos  int
}

// Plan returns the executed access plan, including the execution report
// (strategy, residual elisions, rows examined/returned).
func (c *Cursor) Plan() query.Plan { return c.plan }

// Remaining returns how many documents are left to emit.
func (c *Cursor) Remaining() int { return len(c.docs) - c.pos }

// Next emits the next document as an independent deep copy.
func (c *Cursor) Next() (*document.Document, bool) {
	d, ok := c.NextShared()
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// NextShared emits the next document without cloning. The returned
// document is shared store state under the copy-on-write contract: it must
// be treated as immutable.
func (c *Cursor) NextShared() (*document.Document, bool) {
	if c.pos >= len(c.docs) {
		return nil, false
	}
	d := c.docs[c.pos]
	c.pos++
	return d, true
}

// NewCursor wraps an already-computed result window and its plan in a
// cursor. The cross-shard gather path (internal/cluster) merges per-shard
// cursors and re-wraps the merged window; the documents follow the same
// copy-on-write contract as store-produced cursors.
func NewCursor(plan query.Plan, docs []*document.Document) *Cursor {
	return &Cursor{plan: plan, docs: docs}
}

// MergeOrdered merges per-source lists that are each sorted by q.Less
// into the query's global OFFSET/LIMIT window. Exported for the
// cross-shard gather path, which merges per-shard cursor outputs exactly
// like the executor merges per-shard range emissions.
func MergeOrdered(q *query.Query, lists [][]*document.Document) []*document.Document {
	return mergeOrdered(q, lists)
}

// QueryStream plans and executes q, returning a cursor over the result
// window. Execution touches each shard once under its read lock; the
// cursor itself is lock-free and single-consumer.
func (s *Store) QueryStream(q *query.Query) (*Cursor, error) {
	t, err := s.table(q.Table)
	if err != nil {
		return nil, err
	}
	plan := query.BuildPlan(q, t)
	residual, elided := query.Residual(q.Predicate, plan)
	plan.Strategy = query.ChooseStrategy(q, plan)
	plan.ElidedConjuncts = elided

	e := &executor{q: q, residual: residual, plan: &plan}
	switch plan.Strategy {
	case query.StrategyOrdered:
		e.runOrdered(t)
	case query.StrategyTopK:
		e.runTopK(t)
	default:
		e.runSortAll(t)
	}
	plan.RowsExamined = e.examined
	plan.RowsReturned = len(e.out)
	return &Cursor{plan: plan, docs: e.out}, nil
}

// executor carries one execution's state across shards.
type executor struct {
	q        *query.Query
	residual query.Predicate
	plan     *query.Plan
	examined int
	out      []*document.Document
}

// runSortAll materializes every matching pointer and sorts the full set —
// the strategy of last resort, still pointer-level (no clones).
func (e *executor) runSortAll(t *table) {
	var matches []*document.Document
	for _, sh := range t.shards {
		sh.mu.RLock()
		e.visitShard(sh, func(d *document.Document) bool {
			matches = append(matches, d)
			return true
		})
		sh.mu.RUnlock()
	}
	q := e.q
	sort.Slice(matches, func(i, j int) bool { return q.Less(matches[i], matches[j]) })
	e.out = resultWindow(matches, q.Offset, q.Limit)
}

// runTopK pushes every match through a bounded heap retaining only the
// best offset+limit candidates: O(n log k) instead of a full sort, and at
// most k pointers held.
func (e *executor) runTopK(t *table) {
	q := e.q
	top := query.NewTopK(q, q.Offset+q.Limit)
	for _, sh := range t.shards {
		sh.mu.RLock()
		e.visitShard(sh, func(d *document.Document) bool {
			top.Offer(d)
			return true
		})
		sh.mu.RUnlock()
	}
	e.out = resultWindow(top.Sorted(), q.Offset, q.Limit)
}

// runOrdered exploits a range plan whose index order IS the query order:
// each shard contributes an already-ordered candidate list (walked
// backwards for descending sorts) truncated at offset+limit rows, and a
// k-way merge of at most ShardsPerTable lists produces the window with no
// sort. Shards whose index vanished mid-query (concurrent CreateIndex)
// degrade to a local scan + sort, preserving the merge invariant.
func (e *executor) runOrdered(t *table) {
	q := e.q
	k := 0 // per-shard row cap; 0 = unbounded (no LIMIT)
	if q.Limit > 0 {
		k = q.Offset + q.Limit
	}
	desc := q.OrderBy[0].Desc
	plan := e.plan
	lists := make([][]*document.Document, 0, len(t.shards))
	for _, sh := range t.shards {
		var list []*document.Document
		sh.mu.RLock()
		ix, ok := sh.indexes[plan.Path]
		if !ok {
			e.scanShard(sh, e.q.Predicate, func(d *document.Document) bool {
				list = append(list, d)
				return true
			})
			sort.Slice(list, func(i, j int) bool { return q.Less(list[i], list[j]) })
			if k > 0 && len(list) > k {
				list = list[:k]
			}
		} else {
			ix.RangeRuns(toIndexBound(plan.Lo), toIndexBound(plan.Hi), desc, func(ids []string) bool {
				for _, id := range ids {
					d, ok := sh.docs[id]
					if !ok {
						continue
					}
					e.examined++
					if e.residual.Matches(d.Fields) {
						list = append(list, d)
						if k > 0 && len(list) == k {
							// Early termination: everything later in the
							// scan sorts after these k rows, and the merge
							// needs at most k per shard.
							return false
						}
					}
				}
				return true
			})
		}
		sh.mu.RUnlock()
		if len(list) > 0 {
			lists = append(lists, list)
		}
	}
	e.out = mergeOrdered(q, lists)
}

// visitShard streams the shard's candidate documents for the plan through
// yield (stop by returning false). The caller holds sh.mu.RLock. Index
// candidates are checked against the residual predicate only; degraded
// scans use the full predicate, since residual elision is sound only for
// documents the index vouches for.
func (e *executor) visitShard(sh *shard, yield func(*document.Document) bool) {
	plan := e.plan
	if plan.Kind == query.PlanScan {
		e.scanShard(sh, e.q.Predicate, yield)
		return
	}
	ix, ok := sh.indexes[plan.Path]
	if !ok {
		// The index vanished between planning and execution (possible only
		// around concurrent CreateIndex); degrade to scanning this shard.
		e.scanShard(sh, e.q.Predicate, yield)
		return
	}
	emitID := func(id string) bool {
		d, ok := sh.docs[id]
		if !ok {
			return true
		}
		e.examined++
		return !e.residual.Matches(d.Fields) || yield(d)
	}
	emit := func(ids []string) bool {
		for _, id := range ids {
			if !emitID(id) {
				return false
			}
		}
		return true
	}
	switch plan.Kind {
	case query.PlanProbe:
		if plan.Op == query.OpContains {
			emit(ix.ProbeContains(plan.Values[0]))
			return
		}
		if len(plan.Values) == 1 {
			// A single-value probe is already duplicate-free.
			emit(ix.ProbeEq(plan.Values[0]))
			return
		}
		// Multi-value $in: one document can match several probed values.
		// Collect the posting lists first so the dedup set is pre-sized to
		// the exact candidate count instead of growing incrementally.
		lists := make([][]string, len(plan.Values))
		total := 0
		for i, v := range plan.Values {
			lists[i] = ix.ProbeEq(v)
			total += len(lists[i])
		}
		seen := make(map[string]struct{}, total)
		for _, ids := range lists {
			for _, id := range ids {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				if !emitID(id) {
					return
				}
			}
		}
	case query.PlanRange:
		emit(ix.RangeScan(toIndexBound(plan.Lo), toIndexBound(plan.Hi)))
	}
}

// scanShard streams the shard's documents through pred directly off the
// docs map — no intermediate id slice. The caller holds sh.mu (read or
// write).
func (e *executor) scanShard(sh *shard, pred query.Predicate, yield func(*document.Document) bool) {
	for _, d := range sh.docs {
		e.examined++
		if pred.Matches(d.Fields) && !yield(d) {
			return
		}
	}
}

// resultWindow applies OFFSET/LIMIT to an ordered result, returning nil
// for an empty window.
func resultWindow(docs []*document.Document, offset, limit int) []*document.Document {
	if offset > 0 {
		if offset >= len(docs) {
			return nil
		}
		docs = docs[offset:]
	}
	if limit > 0 && len(docs) > limit {
		docs = docs[:limit]
	}
	if len(docs) == 0 {
		return nil
	}
	return docs
}

// mergeOrdered merges per-shard lists that are each sorted by q.Less into
// the query's OFFSET/LIMIT window. With at most ShardsPerTable lists a
// linear min-pick beats a heap.
func mergeOrdered(q *query.Query, lists [][]*document.Document) []*document.Document {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if q.Offset >= total {
		return nil
	}
	n := total - q.Offset
	if q.Limit > 0 && n > q.Limit {
		n = q.Limit
	}
	out := make([]*document.Document, 0, n)
	heads := make([]int, len(lists))
	for skipped := 0; len(out) < n; {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || q.Less(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		d := lists[best][heads[best]]
		heads[best]++
		if skipped < q.Offset {
			skipped++
			continue
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
