package store

// Tests for the double-buffered snapshot import: a mid-stream failure
// must leave the pre-import state byte-identical (reads, indexes,
// LastSeq), concurrent readers must observe either the complete old or
// the complete new state — never a mix — and the post-swap diff must be
// published as floor-sequenced synthetic events.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/wal"
)

// dumpStore renders a store's full logical state — tables, secondary
// index definitions, and every document with its version — as one
// canonical string for byte-identical comparison.
func dumpStore(t *testing.T, s *Store) string {
	t.Helper()
	var sb strings.Builder
	for _, tbl := range s.Tables() {
		paths, err := s.Indexes(tbl)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "table %s indexes=%v\n", tbl, paths)
		docs, err := s.ScanQuery(query.New(tbl, nil))
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]string{}
		ids := make([]string, 0, len(docs))
		for _, d := range docs {
			v, _ := d.Get("v")
			byID[d.ID] = fmt.Sprintf("  %s ver=%d v=%v\n", d.ID, d.Version, v)
			ids = append(ids, d.ID)
		}
		sortStrings(ids)
		for _, id := range ids {
			sb.WriteString(byID[id])
		}
	}
	return sb.String()
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// seedTarget fills a store with k000..k{n-1} (v=1) on "docs" with an
// index on v, plus a local-only table.
func seedTarget(t *testing.T, s *Store, n int) {
	t.Helper()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("docs", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put("docs", document.New(fmt.Sprintf("k%03d", i), map[string]any{"v": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
}

// exportFrom builds a source store whose floor exceeds targetSeq and
// returns its exported snapshot bytes: k000..k099 re-versioned to
// version 2 (v=2), k100.. absent (deleted inside the collapsed range),
// n000..n049 new.
func exportFrom(t *testing.T, targetSeq uint64) []byte {
	t.Helper()
	src := MustOpen(nil)
	defer src.Close()
	if err := src.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 100; i++ {
			if err := src.Put("docs", document.New(fmt.Sprintf("k%03d", i), map[string]any{"v": int64(i)})); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 50; i++ {
		if err := src.Put("docs", document.New(fmt.Sprintf("n%03d", i), map[string]any{"v": int64(1000 + i)})); err != nil {
			t.Fatal(err)
		}
	}
	// A delete+recreate lineage break: the target holds "sv" at version 1
	// with different content — same version, so only a content comparison
	// can tell them apart.
	if err := src.Put("docs", document.New("sv", map[string]any{"v": int64(-2)})); err != nil {
		t.Fatal(err)
	}
	// Pad the floor past the target's sequence so the import is not stale.
	for src.LastSeq() <= targetSeq {
		if err := src.Put("docs", document.New("n000", map[string]any{"v": int64(1000)})); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, _, err := src.ExportSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type failingReader struct{ r io.Reader }

func (f *failingReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if err == io.EOF {
		return n, errors.New("injected transfer failure")
	}
	return n, err
}

// TestImportSnapshotMidStreamFailureLeavesStateIntact injects truncated
// and erroring snapshot streams mid-transfer and asserts the replica's
// pre-import state — documents, indexes, LastSeq — is byte-identical to
// before the attempt. Durable targets must also recover the old state
// from disk afterwards.
func TestImportSnapshotMidStreamFailureLeavesStateIntact(t *testing.T) {
	for _, mode := range []string{"memory", "durable"} {
		t.Run(mode, func(t *testing.T) {
			var dir string
			var s *Store
			if mode == "durable" {
				dir = t.TempDir()
				var err error
				s, err = Open(&Options{DataDir: dir, Durability: Durability{Fsync: wal.FsyncNever}})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				s = MustOpen(nil)
				defer s.Close()
			}
			seedTarget(t, s, 150)
			before := dumpStore(t, s)
			beforeSeq := s.LastSeq()
			snap := exportFrom(t, beforeSeq)

			// Truncations at several offsets: before the meta frame
			// completes, mid-docs, and with only the end frame cut.
			cuts := []int{4, len(snap) / 10, len(snap) / 2, len(snap) - 5}
			for _, cut := range cuts {
				if _, err := s.ImportSnapshot(bytes.NewReader(snap[:cut])); err == nil {
					t.Fatalf("import of stream truncated at %d/%d bytes succeeded", cut, len(snap))
				}
			}
			// A reader that errors mid-transfer.
			if _, err := s.ImportSnapshot(&failingReader{r: bytes.NewReader(snap[:len(snap)/2])}); err == nil {
				t.Fatal("import from erroring reader succeeded")
			}
			// A stale snapshot (floor below the store's sequence).
			staleSrc := MustOpen(nil)
			if err := staleSrc.CreateTable("docs"); err != nil {
				t.Fatal(err)
			}
			if err := staleSrc.Put("docs", document.New("s1", nil)); err != nil {
				t.Fatal(err)
			}
			var staleBuf bytes.Buffer
			if _, _, err := staleSrc.ExportSnapshot(&staleBuf); err != nil {
				t.Fatal(err)
			}
			staleSrc.Close()
			if _, err := s.ImportSnapshot(bytes.NewReader(staleBuf.Bytes())); !errors.Is(err, ErrSnapshotStale) {
				t.Fatalf("stale import: err = %v, want ErrSnapshotStale", err)
			}

			if got := dumpStore(t, s); got != before {
				t.Errorf("state changed after failed imports:\n--- before ---\n%s--- after ---\n%s", before, got)
			}
			if got := s.LastSeq(); got != beforeSeq {
				t.Errorf("LastSeq changed after failed imports: %d, want %d", got, beforeSeq)
			}
			// The secondary index still serves the old state through the
			// planner.
			q := query.New("docs", query.Eq("v", int64(7)))
			docs, plan, err := s.QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Kind != query.PlanProbe {
				t.Errorf("post-failure plan = %v, want probe", plan.Kind)
			}
			if len(docs) != 1 || docs[0].ID != "k007" {
				t.Errorf("post-failure indexed query returned %v, want [k007]", docs)
			}

			if mode == "durable" {
				// The on-disk state must be untouched too: a restart
				// recovers the pre-import state.
				s.Close()
				s2, err := Open(&Options{DataDir: dir, Durability: Durability{Fsync: wal.FsyncNever}})
				if err != nil {
					t.Fatal(err)
				}
				defer s2.Close()
				if got := dumpStore(t, s2); got != before {
					t.Errorf("recovered state differs after failed imports:\n--- before ---\n%s--- after ---\n%s", before, got)
				}
			}
		})
	}
}

// TestImportSnapshotAtomicSwapAndSyntheticEvents drives a successful
// re-import with concurrent readers asserting all-or-nothing visibility,
// and verifies the post-swap diff is published as floor-sequenced
// synthetic events: deletes for vanished documents, puts for
// re-versioned and new ones. Local-only index definitions and tables
// must survive the swap.
func TestImportSnapshotAtomicSwapAndSyntheticEvents(t *testing.T) {
	s := MustOpen(nil)
	defer s.Close()
	seedTarget(t, s, 150)
	// Local-only definitions: an extra index and an extra table the
	// snapshot does not carry.
	if err := s.CreateIndex("docs", "w"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("local_only"); err != nil {
		t.Fatal(err)
	}
	// "sv" exists on both sides at version 1 but with different content
	// (the source deleted and re-created it): the diff must catch it by
	// content, not version.
	if err := s.Put("docs", document.New("sv", map[string]any{"v": int64(-1)})); err != nil {
		t.Fatal(err)
	}
	snap := exportFrom(t, s.LastSeq())

	// The two legal read results (id → version over "docs").
	oldSet := map[string]int64{"sv": 1}
	for i := 0; i < 150; i++ {
		oldSet[fmt.Sprintf("k%03d", i)] = 1
	}
	newSet := map[string]int64{"sv": 1}
	for i := 0; i < 100; i++ {
		newSet[fmt.Sprintf("k%03d", i)] = 2 // written twice on the source
	}
	for i := 0; i < 50; i++ {
		newSet[fmt.Sprintf("n%03d", i)] = 1 // created inside the collapsed range
	}
	// n000 was re-put while padding the floor; its version is higher.
	readSet := func() map[string]int64 {
		docs, err := s.ScanQuery(query.New("docs", nil))
		if err != nil {
			t.Error(err)
			return nil
		}
		m := make(map[string]int64, len(docs))
		for _, d := range docs {
			m[d.ID] = d.Version
		}
		return m
	}
	matches := func(got, want map[string]int64) bool {
		if len(got) != len(want) {
			return false
		}
		for id, v := range got {
			wv, ok := want[id]
			if !ok {
				return false
			}
			if v != wv && id != "n000" { // n000's version depends on floor padding
				return false
			}
		}
		return true
	}

	events, cancel := s.SubscribeNamed("import-check")
	defer cancel()

	var mu sync.Mutex
	var mixed []string
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := readSet()
				if got == nil {
					return
				}
				if !matches(got, oldSet) && !matches(got, newSet) {
					mu.Lock()
					if len(mixed) < 3 {
						mixed = append(mixed, fmt.Sprintf("read observed %d docs, neither old (%d) nor new (%d) state", len(got), len(oldSet), len(newSet)))
					}
					mu.Unlock()
				}
			}
		}()
	}

	info, err := s.ImportSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	// Let the readers overlap the post-swap state too.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	for _, m := range mixed {
		t.Error(m)
	}

	if info.SyntheticDeletes != 50 {
		t.Errorf("SyntheticDeletes = %d, want 50 (k100..k149 vanished)", info.SyntheticDeletes)
	}
	// 100 re-versioned + 50 created + 1 same-version recreate ("sv").
	if info.SyntheticPuts != 151 {
		t.Errorf("SyntheticPuts = %d, want 151", info.SyntheticPuts)
	}
	if got := s.LastSeq(); got != info.Seq {
		t.Errorf("LastSeq = %d, want snapshot floor %d", got, info.Seq)
	}

	// Local definitions survived and were rebuilt over the imported docs.
	paths, err := s.Indexes("docs")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(paths) != "[v w]" {
		t.Errorf("indexes after import = %v, want [v w]", paths)
	}
	found := false
	for _, tbl := range s.Tables() {
		if tbl == "local_only" {
			found = true
		}
	}
	if !found {
		t.Error("local-only table dropped by import")
	}
	docs, plan, err := s.QueryPlanned(query.New("docs", query.Eq("v", int64(1007))))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != query.PlanProbe {
		t.Errorf("post-import plan = %v, want probe (index rebuilt)", plan.Kind)
	}
	if len(docs) != 1 || docs[0].ID != "n007" {
		t.Errorf("post-import indexed query returned %v, want [n007]", docs)
	}

	// Every synthetic event arrives flagged, sequenced at the floor.
	dels, puts := 0, 0
	timeout := time.After(5 * time.Second)
	for dels+puts < 201 {
		select {
		case ev := <-events:
			if !ev.Synthetic {
				t.Fatalf("non-synthetic event on the stream during import: %+v", ev)
			}
			if ev.Seq != info.Seq {
				t.Fatalf("synthetic event seq %d, want floor %d", ev.Seq, info.Seq)
			}
			if ev.Op == OpDelete {
				if !ev.Deleted || ev.After == nil || ev.Before == nil {
					t.Fatalf("malformed synthetic delete: %+v", ev)
				}
				dels++
			} else {
				puts++
			}
		case <-timeout:
			t.Fatalf("synthetic events: got %d deletes + %d puts, want 201 total", dels, puts)
		}
	}
	if dels != 50 || puts != 151 {
		t.Errorf("synthetic events: %d deletes, %d puts; want 50, 151", dels, puts)
	}
	// The replay ring retains them for query activation.
	if got := len(s.Replay("docs", info.Seq-1)); got < 201 {
		t.Errorf("replay after floor-1 returned %d events, want >= 201", got)
	}
}

// TestImportSnapshotDurableLocalDefsSurviveRestart: on a durable
// replica the import resets the WAL and installs the primary's snapshot
// as the local one, destroying the DDL records that created local-only
// tables and per-node indexes — they must be re-logged so a restart
// still rebuilds them.
func TestImportSnapshotDurableLocalDefsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(&Options{DataDir: dir, Durability: Durability{Fsync: wal.FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	seedTarget(t, s, 50) // includes the "v" index, local-only vs the snapshot
	if err := s.CreateIndex("docs", "w"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("local_only"); err != nil {
		t.Fatal(err)
	}
	snap := exportFrom(t, s.LastSeq()) // snapshot meta carries no indexes
	info, err := s.ImportSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(&Options{DataDir: dir, Durability: Durability{Fsync: wal.FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.LastSeq(); got != info.Seq {
		t.Errorf("recovered LastSeq = %d, want floor %d", got, info.Seq)
	}
	paths, err := s2.Indexes("docs")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(paths) != "[v w]" {
		t.Errorf("recovered indexes = %v, want [v w]", paths)
	}
	found := false
	for _, tbl := range s2.Tables() {
		if tbl == "local_only" {
			found = true
		}
	}
	if !found {
		t.Error("local-only table lost across import + restart")
	}
	docs, plan, err := s2.QueryPlanned(query.New("docs", query.Eq("v", int64(1007))))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != query.PlanProbe || len(docs) != 1 {
		t.Errorf("recovered indexed query: plan %v, %d docs; want probe, 1", plan.Kind, len(docs))
	}
}
