package store

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/wal"
)

// shadowDoc mirrors one key's expected recovered state.
type shadowDoc struct {
	fields  map[string]any
	version int64
}

// checkAgainstShadow asserts the store's contents, versions, indexes and
// query results match the shadow exactly.
func checkAgainstShadow(t *testing.T, s *Store, tableName string, shadow map[string]*shadowDoc) {
	t.Helper()
	live := 0
	for id, sd := range shadow {
		got, err := s.Get(tableName, id)
		if sd == nil {
			if err == nil {
				t.Errorf("key %s: deleted in shadow but present (v%d)", id, got.Version)
			}
			continue
		}
		live++
		if err != nil {
			t.Errorf("key %s: %v (shadow has v%d)", id, err, sd.version)
			continue
		}
		if got.Version != sd.version {
			t.Errorf("key %s: version %d, shadow %d", id, got.Version, sd.version)
		}
		if !document.DeepEqual(got.Fields, sd.fields) {
			t.Errorf("key %s: fields %v, shadow %v", id, got.Fields, sd.fields)
		}
	}
	if n, err := s.Count(tableName); err != nil || n != live {
		t.Errorf("count = %d (%v), shadow has %d live docs", n, err, live)
	}
	// Indexed reads agree with both a forced scan and the shadow.
	for _, v := range []int64{0, 3, 7} {
		q := query.New(tableName, query.Eq("v", v))
		indexed, plan, err := s.QueryPlanned(q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Kind == query.PlanScan {
			t.Errorf("query %s not using the recovered index", q.Key())
		}
		scanned, err := s.ScanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for _, sd := range shadow {
			if sd != nil && document.DeepEqual(sd.fields["v"], v) {
				wantN++
			}
		}
		if len(indexed) != wantN || len(scanned) != wantN {
			t.Errorf("v=%d: indexed %d, scanned %d, shadow %d", v, len(indexed), len(scanned), wantN)
		}
	}
}

// TestPropertyCrashRecoveryMatchesShadow runs randomized concurrent
// writes against a durable store mirrored into a shadow map (each worker
// owns a disjoint key range, so the shadow needs no coordination), then:
//
//  1. reopens after a clean close and requires contents, versions,
//     indexes and LastSeq to match the shadow exactly;
//  2. appends a sequential op tail, hard-stops by truncating the last
//     WAL segment at a random byte offset (usually mid-record), reopens,
//     and requires the recovered state to equal the shadow replayed up
//     to exactly the surviving record count (recovered LastSeq tells
//     which prefix survived).
func TestPropertyCrashRecoveryMatchesShadow(t *testing.T) {
	const (
		workers       = 4
		keysPerWorker = 40
		table         = "docs"
	)
	opsEach := 600
	if testing.Short() {
		opsEach = 150
	}

	dir := t.TempDir()
	s := openDurable(t, dir, wal.FsyncNever)
	if err := s.CreateTable(table); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(table, "v"); err != nil {
		t.Fatal(err)
	}

	// The change stream must mirror the WAL exactly: every event the
	// pipeline delivers corresponds to a write the log accepted, in
	// strictly increasing dense Seq order, and no event is ever delivered
	// for a write the WAL did not acknowledge (the post-commit hook only
	// fires for written records).
	streamCh, streamCancel := s.Subscribe()
	var streamMu sync.Mutex
	var streamSeqs []uint64
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		for ev := range streamCh {
			streamMu.Lock()
			streamSeqs = append(streamSeqs, ev.Seq)
			streamMu.Unlock()
		}
	}()

	shadows := make([]map[string]*shadowDoc, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shadows[w] = map[string]*shadowDoc{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 1)))
			shadow := shadows[w]
			for op := 0; op < opsEach; op++ {
				id := fmt.Sprintf("w%d-k%02d", w, r.Intn(keysPerWorker))
				cur := shadow[id]
				switch r.Intn(4) {
				case 0: // insert (only when absent, so it must succeed)
					if cur != nil {
						continue
					}
					fields := map[string]any{"v": int64(r.Intn(10)), "w": int64(w)}
					if err := s.Insert(table, document.New(id, fields)); err != nil {
						t.Errorf("insert %s: %v", id, err)
						return
					}
					shadow[id] = &shadowDoc{fields: document.CloneValue(document.Normalize(fields)).(map[string]any), version: 1}
				case 1: // upsert
					fields := map[string]any{"v": int64(r.Intn(10)), "p": fmt.Sprintf("x%d", op)}
					if err := s.Put(table, document.New(id, fields)); err != nil {
						t.Errorf("put %s: %v", id, err)
						return
					}
					ver := int64(1)
					if cur != nil {
						ver = cur.version + 1
					}
					shadow[id] = &shadowDoc{fields: document.CloneValue(document.Normalize(fields)).(map[string]any), version: ver}
				case 2: // partial update
					if cur == nil {
						continue
					}
					delta := float64(r.Intn(5))
					after, err := s.Update(table, id, UpdateSpec{
						Set: map[string]any{"v": int64(r.Intn(10))},
						Inc: map[string]float64{"n": delta},
					})
					if err != nil {
						t.Errorf("update %s: %v", id, err)
						return
					}
					shadow[id] = &shadowDoc{fields: document.CloneValue(after.Fields).(map[string]any), version: after.Version}
				case 3: // delete
					if cur == nil {
						continue
					}
					if err := s.Delete(table, id); err != nil {
						t.Errorf("delete %s: %v", id, err)
						return
					}
					shadow[id] = nil
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	shadow := map[string]*shadowDoc{}
	for _, m := range shadows {
		for id, sd := range m {
			shadow[id] = sd
		}
	}
	wantSeq := s.LastSeq()
	// Every write above was acknowledged; the stream must deliver exactly
	// seqs 1..wantSeq, in order, before (or while) the store closes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		streamMu.Lock()
		n := len(streamSeqs)
		streamMu.Unlock()
		if uint64(n) >= wantSeq || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	streamMu.Lock()
	if uint64(len(streamSeqs)) != wantSeq {
		t.Errorf("stream delivered %d events, WAL acknowledged %d writes", len(streamSeqs), wantSeq)
	}
	for i, seq := range streamSeqs {
		if seq != uint64(i+1) {
			t.Errorf("stream position %d carries seq %d — not the dense acknowledged order", i, seq)
			break
		}
	}
	streamMu.Unlock()
	streamCancel()
	s.Close()

	// Phase 1: clean restart.
	s = openDurable(t, dir, wal.FsyncNever)
	if got := s.LastSeq(); got != wantSeq {
		t.Errorf("clean restart: LastSeq = %d, want %d", got, wantSeq)
	}
	checkAgainstShadow(t, s, table, shadow)

	// Phase 2: sequential tail + random hard-stop. Each op touches its
	// own key and appends exactly one record, so record i in the tail is
	// op i, and the recovered LastSeq identifies the surviving prefix.
	segBefore := lastSegment(t, dir)
	fiBefore, err := os.Stat(segBefore)
	if err != nil {
		t.Fatal(err)
	}
	const tailOps = 60
	type tailOp struct {
		id     string
		fields map[string]any
		del    bool
	}
	r := rand.New(rand.NewSource(99))
	var tail []tailOp
	for i := 0; i < tailOps; i++ {
		id := fmt.Sprintf("tail-%02d", i%20)
		if sd := shadow[id]; sd != nil && r.Intn(4) == 0 {
			if err := s.Delete(table, id); err != nil {
				t.Fatal(err)
			}
			tail = append(tail, tailOp{id: id, del: true})
			shadow[id] = nil
			continue
		}
		fields := map[string]any{"v": int64(r.Intn(10)), "i": int64(i)}
		if err := s.Put(table, document.New(id, fields)); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, tailOp{id: id, fields: fields})
		// Maintain the shadow as if all tail ops committed; the surviving
		// prefix is re-applied below once we know where the cut landed.
		ver := int64(1)
		if sd := shadow[id]; sd != nil {
			ver = sd.version + 1
		}
		shadow[id] = &shadowDoc{fields: document.CloneValue(document.Normalize(fields)).(map[string]any), version: ver}
	}
	// Rebuild the shadow's tail-key state from scratch per surviving
	// prefix, so start the tail keys from their phase-1 state.
	s.Close()

	seg := lastSegment(t, dir)
	if seg != segBefore {
		t.Skipf("wal rotated during tail (%s -> %s); offset bookkeeping invalid", segBefore, seg)
	}
	fiAfter, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Hard-stop: cut the segment at a random offset inside the tail's
	// bytes — almost always mid-record.
	cut := fiBefore.Size() + 1 + r.Int63n(fiAfter.Size()-fiBefore.Size()-1)
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}

	s = openDurable(t, dir, wal.FsyncNever)
	defer s.Close()
	got := s.LastSeq()
	if got < wantSeq || got > wantSeq+tailOps {
		t.Fatalf("post-crash LastSeq = %d, want within [%d, %d]", got, wantSeq, wantSeq+tailOps)
	}
	survived := int(got - wantSeq)
	// Reconstruct the expected tail-key state from the surviving prefix.
	for id := range shadow {
		if len(id) >= 4 && id[:4] == "tail" {
			delete(shadow, id)
		}
	}
	for i := 0; i < survived; i++ {
		op := tail[i]
		if op.del {
			shadow[op.id] = nil
			continue
		}
		ver := int64(1)
		if sd := shadow[op.id]; sd != nil {
			ver = sd.version + 1
		}
		shadow[op.id] = &shadowDoc{fields: document.CloneValue(document.Normalize(op.fields)).(map[string]any), version: ver}
	}
	st, _ := s.DurabilityStats()
	t.Logf("cut at byte %d: %d/%d tail ops survived, torn tail: %v", cut, survived, tailOps, st.Recovery.TornTail)
	checkAgainstShadow(t, s, table, shadow)

	// The recovered pipeline resumes exactly where the surviving log
	// ends: no event is replayed for truncated (never-acknowledged-
	// on-disk) writes, and new writes continue the dense Seq stream.
	postCh, postCancel := s.Subscribe()
	defer postCancel()
	for i := 0; i < 3; i++ {
		if err := s.Put(table, document.New(fmt.Sprintf("post-crash-%d", i), map[string]any{"v": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case ev := <-postCh:
			if wantPost := got + uint64(i+1); ev.Seq != wantPost {
				t.Errorf("post-crash event %d has seq %d, want %d", i, ev.Seq, wantPost)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("post-crash stream stalled")
		}
	}
}
