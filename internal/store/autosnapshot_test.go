package store

import (
	"fmt"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/wal"
)

// TestAutoSnapshotTriggersOnWALGrowth drives writes through a durable
// store with a tiny AutoSnapshotBytes threshold and requires a snapshot
// to fire on its own, truncating the log so the recovery replay stays
// bounded — and the snapshot must of course recover correctly.
func TestAutoSnapshotTriggersOnWALGrowth(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(&Options{
			DataDir:           dir,
			Durability:        Durability{Fsync: wal.FsyncNever},
			AutoSnapshotBytes: 1 << 12, // 4 KiB: a few dozen records
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	const docs = 512
	for i := 0; i < docs; i++ {
		if err := s.Put("docs", document.New(fmt.Sprintf("d%04d", i), map[string]any{"n": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot runs in the background; give it a moment.
	deadline := time.Now().Add(10 * time.Second)
	var st DurabilityStats
	for time.Now().Before(deadline) {
		st, _ = s.DurabilityStats()
		if st.AutoSnapshots > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.AutoSnapshots == 0 {
		t.Fatalf("no auto-snapshot after %d writes over a 4KiB threshold: %+v", docs, st)
	}
	if st.LastSnapshot == nil || st.LastSnapshot.Seq == 0 {
		t.Fatalf("auto-snapshot left no snapshot info: %+v", st)
	}
	s.Close()

	// Restart: recovery loads the auto-snapshot and replays only the tail
	// the truncation left behind.
	s2 := open()
	defer s2.Close()
	if n, err := s2.Count("docs"); err != nil || n != docs {
		t.Fatalf("recovered %d docs (%v), want %d", n, err, docs)
	}
	rec, _ := s2.DurabilityStats()
	if rec.Recovery.SnapshotSeq == 0 {
		t.Error("recovery ignored the auto-snapshot")
	}
	if rec.Recovery.ReplayedRecords >= docs {
		t.Errorf("recovery replayed %d records — the auto-snapshot did not bound the tail", rec.Recovery.ReplayedRecords)
	}
}

// TestAutoSnapshotDisabledByDefault makes sure a durable store without
// the option never snapshots on its own.
func TestAutoSnapshotDisabledByDefault(t *testing.T) {
	s := openDurable(t, t.TempDir(), wal.FsyncNever)
	defer s.Close()
	if err := s.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Put("docs", document.New(fmt.Sprintf("d%03d", i), map[string]any{"n": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	st, _ := s.DurabilityStats()
	if st.AutoSnapshots != 0 || st.LastSnapshot != nil {
		t.Errorf("unconfigured store snapshotted on its own: %+v", st)
	}
}
