package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/wal"
)

func openDurable(t *testing.T, dir string, fsync wal.FsyncPolicy) *Store {
	t.Helper()
	s, err := Open(&Options{DataDir: dir, Durability: Durability{Fsync: fsync}})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// lastSegment returns the path of the highest-numbered WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, walSubdir))
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no wal segments found")
	}
	return filepath.Join(dir, walSubdir, last)
}

// TestDurableRestartIdentical is the tentpole acceptance scenario: a
// durable store filled with 10k+ documents (inserts, updates, deletes,
// secondary indexes), closed and reopened, must return identical Query
// and Get results, identical Explain plans, and the pre-restart LastSeq.
func TestDurableRestartIdentical(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.FsyncNever)
	if err := s.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("posts", "author"); err != nil {
		t.Fatal(err)
	}

	const n = 10000
	for i := 0; i < n; i++ {
		doc := document.New(fmt.Sprintf("p%05d", i), map[string]any{
			"author": fmt.Sprintf("a%d", i%97),
			"score":  int64(i % 1000),
			"tags":   []any{fmt.Sprintf("t%d", i%13)},
		})
		if err := s.Insert("posts", doc); err != nil {
			t.Fatal(err)
		}
	}
	// Mutate a swath: updates, upserts, deletes, a late index.
	for i := 0; i < n; i += 3 {
		if _, err := s.Update("posts", fmt.Sprintf("p%05d", i), UpdateSpec{Inc: map[string]float64{"score": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 7 {
		if err := s.Delete("posts", fmt.Sprintf("p%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := s.Put("posts", document.New(fmt.Sprintf("x%02d", i), map[string]any{"author": "putter", "score": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CreateIndex("posts", "score"); err != nil {
		t.Fatal(err)
	}

	queries := []*query.Query{
		query.New("posts", query.Eq("author", "a13")),
		query.New("posts", query.Gt("score", int64(990))),
		query.New("posts", query.Eq("author", "putter")).Sorted(query.SortKey{Path: "score", Desc: true}).Sliced(0, 10),
	}
	type snapshotState struct {
		lastSeq uint64
		count   int
		indexes []string
		results [][]*document.Document
		plans   []query.Plan
	}
	capture := func(s *Store) snapshotState {
		st := snapshotState{lastSeq: s.LastSeq()}
		var err error
		if st.count, err = s.Count("posts"); err != nil {
			t.Fatal(err)
		}
		if st.indexes, err = s.Indexes("posts"); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			docs, plan, err := s.QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			st.results = append(st.results, docs)
			st.plans = append(st.plans, plan)
		}
		return st
	}
	before := capture(s)
	someDoc, err := s.Get("posts", "p00042")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openDurable(t, dir, wal.FsyncNever)
	defer r.Close()
	after := capture(r)

	if after.lastSeq != before.lastSeq {
		t.Errorf("LastSeq after restart = %d, want %d", after.lastSeq, before.lastSeq)
	}
	if after.count != before.count {
		t.Errorf("Count = %d, want %d", after.count, before.count)
	}
	if fmt.Sprint(after.indexes) != fmt.Sprint(before.indexes) {
		t.Errorf("indexes = %v, want %v", after.indexes, before.indexes)
	}
	for i := range queries {
		if after.plans[i].Kind != before.plans[i].Kind || after.plans[i].Path != before.plans[i].Path {
			t.Errorf("query %d plan = %+v, want %+v", i, after.plans[i], before.plans[i])
		}
		a, b := after.results[i], before.results[i]
		if len(a) != len(b) {
			t.Fatalf("query %d: %d docs, want %d", i, len(a), len(b))
		}
		for j := range a {
			if !a[j].Equal(b[j]) || a[j].Version != b[j].Version {
				t.Errorf("query %d doc %d differs: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
	got, err := r.Get("posts", "p00042")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(someDoc) || got.Version != someDoc.Version {
		t.Errorf("Get after restart = %+v, want %+v", got, someDoc)
	}
	if _, err := r.Get("posts", "p00001"); err == nil {
		t.Error("deleted doc resurrected after restart")
	}

	st, ok := r.DurabilityStats()
	if !ok {
		t.Fatal("durable store reports no durability stats")
	}
	if st.Recovery.LastSeq != before.lastSeq || st.Recovery.Indexes != 2 {
		t.Errorf("recovery info = %+v", st.Recovery)
	}
}

// TestDurableRestartWithTornTail repeats the restart check when the
// final WAL record was cut mid-write: the store must recover everything
// except the torn write.
func TestDurableRestartWithTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.FsyncNever)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Insert("t", document.New(fmt.Sprintf("d%03d", i), map[string]any{"i": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	preSeq := s.LastSeq()
	// One more write whose record we then tear off the tail.
	if err := s.Insert("t", document.New("torn", map[string]any{"i": int64(-1)})); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, wal.FsyncNever)
	defer r.Close()
	st, _ := r.DurabilityStats()
	if !st.Recovery.TornTail {
		t.Error("recovery did not flag the torn tail")
	}
	if got := r.LastSeq(); got != preSeq {
		t.Errorf("LastSeq = %d, want %d (torn write dropped)", got, preSeq)
	}
	if _, err := r.Get("t", "torn"); err == nil {
		t.Error("torn write survived recovery")
	}
	if n, _ := r.Count("t"); n != 100 {
		t.Errorf("count = %d, want 100", n)
	}
	// The store keeps working after tail truncation.
	if err := r.Insert("t", document.New("after-torn", nil)); err != nil {
		t.Fatalf("insert after torn-tail recovery: %v", err)
	}
}

// TestSnapshotTruncatesAndRecovers checks the full snapshot cycle:
// snapshot mid-stream, verify segments shrink, write more, restart, and
// confirm snapshot + tail replay reproduce the state.
func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.FsyncNever)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("t", "k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.Insert("t", document.New(fmt.Sprintf("d%03d", i), map[string]any{"k": int64(i % 10)})); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if info.Docs != 500 || info.Seq != s.LastSeq() {
		t.Errorf("snapshot info = %+v (lastSeq %d)", info, s.LastSeq())
	}
	st, _ := s.DurabilityStats()
	if st.WAL.Segments != 1 {
		t.Errorf("segments after snapshot = %d, want 1", st.WAL.Segments)
	}
	// Post-snapshot writes land in the fresh tail.
	for i := 0; i < 100; i++ {
		if _, err := s.Update("t", fmt.Sprintf("d%03d", i), UpdateSpec{Set: map[string]any{"k": int64(99)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("t", "d499"); err != nil {
		t.Fatal(err)
	}
	want := s.LastSeq()
	s.Close()

	r := openDurable(t, dir, wal.FsyncNever)
	defer r.Close()
	if got := r.LastSeq(); got != want {
		t.Errorf("LastSeq = %d, want %d", got, want)
	}
	rst, _ := r.DurabilityStats()
	if rst.Recovery.SnapshotDocs != 500 || rst.Recovery.ReplayedRecords != 101 {
		t.Errorf("recovery = %+v, want 500 snapshot docs + 101 replayed", rst.Recovery)
	}
	if n, _ := r.Count("t"); n != 499 {
		t.Errorf("count = %d, want 499", n)
	}
	docs, err := r.Query(query.New("t", query.Eq("k", int64(99))))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 100 {
		t.Errorf("updated docs after restart = %d, want 100", len(docs))
	}
	plan, err := r.Explain(query.New("t", query.Eq("k", int64(99))))
	if err != nil || plan.Kind == query.PlanScan {
		t.Errorf("index not rebuilt from snapshot meta: plan=%+v err=%v", plan, err)
	}
}

// TestRecoveryToleratesLostCreateTableRecord: CreateTable exposes the
// table in memory before its DDL append commits, so a concurrent
// writer's put record can become durable in an earlier batch than the
// createTable record, and a crash can then lose the DDL record in the
// torn tail. Recovery must re-create the table instead of refusing to
// open the store.
func TestRecoveryToleratesLostCreateTableRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(filepath.Join(dir, walSubdir), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.Record{Seq: 1, Kind: wal.KindPut, Table: "orphan",
		Doc: document.New("d1", map[string]any{"n": int64(1)})}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s := openDurable(t, dir, wal.FsyncNever)
	defer s.Close()
	doc, err := s.Get("orphan", "d1")
	if err != nil {
		t.Fatalf("orphan table not re-created: %v", err)
	}
	if n, _ := doc.Get("n"); n != int64(1) {
		t.Errorf("recovered doc = %+v", doc)
	}
	if s.LastSeq() != 1 {
		t.Errorf("LastSeq = %d, want 1", s.LastSeq())
	}
}

// TestDurableRestartReservedFieldNames: documents whose fields shadow the
// wire-reserved _id/_version keys must keep their identity across restart
// (the WAL encoder takes the slower document.MarshalJSON-compatible path
// for them).
func TestDurableRestartReservedFieldNames(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.FsyncNever)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", document.New("real-id", map[string]any{"_id": "fake-id", "x": int64(1)})); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", document.New("v-doc", map[string]any{"_version": int64(999)})); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openDurable(t, dir, wal.FsyncNever)
	defer r.Close()
	doc, err := r.Get("t", "real-id")
	if err != nil {
		t.Fatalf("doc recovered under wrong id: %v", err)
	}
	if x, _ := doc.Get("x"); x != int64(1) {
		t.Errorf("recovered doc = %+v", doc)
	}
	if _, err := r.Get("t", "fake-id"); err == nil {
		t.Error("shadowed _id field leaked into the primary key")
	}
	vdoc, err := r.Get("t", "v-doc")
	if err != nil {
		t.Fatal(err)
	}
	if vdoc.Version != 1 {
		t.Errorf("version = %d, want 1 (shadowed _version field must not win)", vdoc.Version)
	}
}

func TestSnapshotOnInMemoryStore(t *testing.T) {
	s := MustOpen(nil)
	defer s.Close()
	if _, err := s.Snapshot(); err != ErrNotDurable {
		t.Fatalf("Snapshot on in-memory store: %v, want ErrNotDurable", err)
	}
	if _, ok := s.DurabilityStats(); ok {
		t.Error("in-memory store reports durability stats")
	}
}

// TestDurableEmptyDirAndDDLOnly covers recovery of DDL-only logs and
// fresh directories.
func TestDurableEmptyDirAndDDLOnly(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, wal.FsyncAlways)
	if s.LastSeq() != 0 {
		t.Errorf("fresh durable store LastSeq = %d", s.LastSeq())
	}
	if err := s.CreateTable("empty"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("empty", "x"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openDurable(t, dir, wal.FsyncAlways)
	defer r.Close()
	if got := r.Tables(); len(got) != 1 || got[0] != "empty" {
		t.Errorf("tables = %v", got)
	}
	idx, err := r.Indexes("empty")
	if err != nil || len(idx) != 1 || idx[0] != "x" {
		t.Errorf("indexes = %v, %v", idx, err)
	}
	// CreateIndex is sequenced through the commit pipeline (so replicas
	// and late-attached shards learn indexes live), so a DDL-only log
	// still advances the sequence counter by one.
	if r.LastSeq() != 1 {
		t.Errorf("DDL-only recovery LastSeq = %d, want 1", r.LastSeq())
	}
}
