package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

func openWithTable(t *testing.T, table string) *Store {
	t.Helper()
	s := MustOpen(nil)
	t.Cleanup(s.Close)
	if err := s.CreateTable(table); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertGet(t *testing.T) {
	s := openWithTable(t, "posts")
	d := document.New("p1", map[string]any{"title": "hi"})
	if err := s.Insert("posts", d); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("title"); v != "hi" {
		t.Errorf("title = %v", v)
	}
	if got.Version != 1 {
		t.Errorf("fresh insert version = %d", got.Version)
	}
}

func TestInsertDuplicate(t *testing.T) {
	s := openWithTable(t, "posts")
	d := document.New("p1", nil)
	if err := s.Insert("posts", d); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("posts", d); !errors.Is(err, ErrExists) {
		t.Errorf("want ErrExists, got %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	s := openWithTable(t, "posts")
	if err := s.Insert("posts", nil); !errors.Is(err, ErrNilDocument) {
		t.Errorf("nil doc: %v", err)
	}
	if err := s.Insert("posts", document.New("", nil)); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id: %v", err)
	}
	if err := s.Insert("nope", document.New("x", nil)); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
	if err := s.CreateTable(""); !errors.Is(err, ErrEmptyTable) {
		t.Errorf("empty table: %v", err)
	}
	if _, err := s.Get("posts", "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing doc: %v", err)
	}
}

func TestStoredCopyIsIsolated(t *testing.T) {
	s := openWithTable(t, "posts")
	d := document.New("p1", map[string]any{"tags": []any{"a"}})
	if err := s.Insert("posts", d); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's document must not affect the store.
	if err := d.Set("tags.0", "HACKED"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("posts", "p1")
	if v, _ := got.Get("tags.0"); v != "a" {
		t.Error("store shares memory with caller document")
	}
	// Mutating a returned document must not affect the store either.
	if err := got.Set("tags.0", "ALSO-HACKED"); err != nil {
		t.Fatal(err)
	}
	got2, _ := s.Get("posts", "p1")
	if v, _ := got2.Get("tags.0"); v != "a" {
		t.Error("store shares memory with returned document")
	}
}

func TestPutUpsertsAndIncrementsVersion(t *testing.T) {
	s := openWithTable(t, "posts")
	if err := s.Put("posts", document.New("p1", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("posts", document.New("p1", map[string]any{"n": 2})); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("posts", "p1")
	if got.Version != 2 {
		t.Errorf("version = %d, want 2", got.Version)
	}
	if v, _ := got.Get("n"); v != int64(2) {
		t.Errorf("n = %v", v)
	}
}

func TestUpdateSpecOperations(t *testing.T) {
	s := openWithTable(t, "posts")
	err := s.Insert("posts", document.New("p1", map[string]any{
		"count": 10,
		"tags":  []any{"a", "b"},
		"meta":  map[string]any{"old": true},
	}))
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.Update("posts", "p1", UpdateSpec{
		Set:   map[string]any{"title": "new", "meta.new": 1},
		Unset: []string{"meta.old"},
		Inc:   map[string]float64{"count": 5},
		Push:  map[string]any{"tags": "c"},
		Pull:  map[string]any{"tags": "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := after.Get("title"); v != "new" {
		t.Errorf("set failed: %v", v)
	}
	if _, ok := after.Get("meta.old"); ok {
		t.Error("unset failed")
	}
	if v, _ := after.Get("count"); v != int64(15) {
		t.Errorf("inc failed: %v", v)
	}
	tags, _ := after.Get("tags")
	if document.Canonical(tags) != `["b","c"]` {
		t.Errorf("push/pull failed: %v", tags)
	}
	if after.Version != 2 {
		t.Errorf("version = %d", after.Version)
	}
}

func TestUpdateIncCreatesAndFractions(t *testing.T) {
	s := openWithTable(t, "posts")
	if err := s.Insert("posts", document.New("p1", nil)); err != nil {
		t.Fatal(err)
	}
	after, err := s.Update("posts", "p1", UpdateSpec{Inc: map[string]float64{"score": 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := after.Get("score"); v != float64(2.5) {
		t.Errorf("fractional inc: %v", v)
	}
	after, err = s.Update("posts", "p1", UpdateSpec{Inc: map[string]float64{"score": 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := after.Get("score"); v != int64(5) {
		t.Errorf("integral result should normalize to int64: %v (%T)", v, v)
	}
}

func TestUpdateBadSpecs(t *testing.T) {
	s := openWithTable(t, "posts")
	if err := s.Insert("posts", document.New("p1", map[string]any{"s": "str"})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("posts", "p1", UpdateSpec{Inc: map[string]float64{"s": 1}}); !errors.Is(err, ErrBadUpdateSpec) {
		t.Errorf("inc on string: %v", err)
	}
	if _, err := s.Update("posts", "p1", UpdateSpec{Push: map[string]any{"s": 1}}); !errors.Is(err, ErrBadUpdateSpec) {
		t.Errorf("push on string: %v", err)
	}
	if _, err := s.Update("posts", "p1", UpdateSpec{Pull: map[string]any{"s": 1}}); !errors.Is(err, ErrBadUpdateSpec) {
		t.Errorf("pull on string: %v", err)
	}
	// Failed updates must not bump the version or mutate the document.
	got, _ := s.Get("posts", "p1")
	if got.Version != 1 {
		t.Errorf("failed update changed version: %d", got.Version)
	}
}

func TestUpdateIfVersion(t *testing.T) {
	s := openWithTable(t, "posts")
	if err := s.Insert("posts", document.New("p1", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("posts", "p1", UpdateSpec{Set: map[string]any{"n": 2}, IfVersion: 99}); !errors.Is(err, ErrVersionCheck) {
		t.Errorf("want ErrVersionCheck, got %v", err)
	}
	if _, err := s.Update("posts", "p1", UpdateSpec{Set: map[string]any{"n": 2}, IfVersion: 1}); err != nil {
		t.Errorf("matching precondition failed: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := openWithTable(t, "posts")
	if err := s.Insert("posts", document.New("p1", nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("posts", "p1"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted doc still readable")
	}
	if err := s.Delete("posts", "p1"); !errors.Is(err, ErrNotFound) {
		t.Error("double delete should be ErrNotFound")
	}
}

func TestQueryEvaluation(t *testing.T) {
	s := openWithTable(t, "posts")
	for i := 0; i < 10; i++ {
		tag := "even"
		if i%2 == 1 {
			tag = "odd"
		}
		err := s.Insert("posts", document.New(fmt.Sprintf("p%02d", i), map[string]any{
			"tags": []any{tag}, "n": i,
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	q := query.New("posts", query.Contains("tags", "even")).Sorted(query.Desc("n"))
	docs, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("want 5 docs, got %d", len(docs))
	}
	if n, _ := docs[0].Get("n"); n != int64(8) {
		t.Errorf("descending sort broken: first n = %v", n)
	}
	count, err := s.Count("posts")
	if err != nil || count != 10 {
		t.Errorf("count = %d, %v", count, err)
	}
}

func TestChangeStreamEventsAndOrdering(t *testing.T) {
	s := openWithTable(t, "posts")
	ch, cancel := s.Subscribe()
	defer cancel()

	if err := s.Insert("posts", document.New("p1", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("posts", "p1", UpdateSpec{Set: map[string]any{"n": 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("posts", "p1"); err != nil {
		t.Fatal(err)
	}

	var events []ChangeEvent
	for i := 0; i < 3; i++ {
		select {
		case ev := <-ch:
			events = append(events, ev)
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
	if events[0].Op != OpInsert || events[1].Op != OpUpdate || events[2].Op != OpDelete {
		t.Fatalf("ops = %v %v %v", events[0].Op, events[1].Op, events[2].Op)
	}
	if !(events[0].Seq < events[1].Seq && events[1].Seq < events[2].Seq) {
		t.Error("sequence numbers not increasing")
	}
	if events[0].Before != nil {
		t.Error("insert should have nil pre-image")
	}
	if v, _ := events[1].After.Get("n"); v != int64(2) {
		t.Errorf("update after-image n = %v", v)
	}
	if v, _ := events[1].Before.Get("n"); v != int64(1) {
		t.Errorf("update pre-image n = %v", v)
	}
	if !events[2].Deleted {
		t.Error("delete event not flagged")
	}
	if events[0].Key() != "posts/p1" {
		t.Errorf("event key = %q", events[0].Key())
	}
}

func TestAfterImageIsImmutable(t *testing.T) {
	s := openWithTable(t, "posts")
	ch, cancel := s.Subscribe()
	defer cancel()
	if err := s.Insert("posts", document.New("p1", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	// Later writes must not alter the delivered after-image.
	if _, err := s.Update("posts", "p1", UpdateSpec{Set: map[string]any{"n": 99}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := ev.After.Get("n"); v != int64(1) {
		t.Errorf("after-image mutated by later write: %v", v)
	}
}

func TestReplayBuffer(t *testing.T) {
	s := openWithTable(t, "posts")
	for i := 0; i < 5; i++ {
		if err := s.Insert("posts", document.New(fmt.Sprintf("p%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	mid := s.LastSeq()
	for i := 5; i < 8; i++ {
		if err := s.Insert("posts", document.New(fmt.Sprintf("p%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	replay := s.Replay("posts", mid)
	if len(replay) != 3 {
		t.Fatalf("want 3 replay events, got %d", len(replay))
	}
	for i, ev := range replay {
		if ev.Seq <= mid {
			t.Errorf("replay[%d].Seq = %d <= %d", i, ev.Seq, mid)
		}
	}
	if got := s.Replay("nope", 0); got != nil {
		t.Error("unknown table replay should be nil")
	}
}

func TestReplayRingOverflow(t *testing.T) {
	s := MustOpen(&Options{ReplayBuffer: 4})
	defer s.Close()
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Insert("t", document.New(fmt.Sprintf("p%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	replay := s.Replay("t", 0)
	if len(replay) != 4 {
		t.Fatalf("ring should cap at 4, got %d", len(replay))
	}
	if replay[0].Seq != 7 || replay[3].Seq != 10 {
		t.Errorf("ring should keep newest events: %d..%d", replay[0].Seq, replay[3].Seq)
	}
}

func TestConcurrentWritersPerKeyMonotonic(t *testing.T) {
	s := openWithTable(t, "posts")
	if err := s.Insert("posts", document.New("p1", map[string]any{"n": 0})); err != nil {
		t.Fatal(err)
	}
	const writers, iters = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := s.Update("posts", "p1", UpdateSpec{Inc: map[string]float64{"n": 1}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _ := s.Get("posts", "p1")
	if v, _ := got.Get("n"); v != int64(writers*iters) {
		t.Errorf("lost updates: n = %v, want %d", v, writers*iters)
	}
	if got.Version != int64(writers*iters)+1 {
		t.Errorf("version = %d, want %d", got.Version, writers*iters+1)
	}
}

func TestCloseSemantics(t *testing.T) {
	s := MustOpen(nil)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ch, _ := s.Subscribe()
	s.Close()
	if _, ok := <-ch; ok {
		t.Error("subscription channel should close on store close")
	}
	if err := s.Insert("t", document.New("x", nil)); !errors.Is(err, ErrClosed) {
		t.Errorf("insert after close: %v", err)
	}
	s.Close() // double close must be safe
}

func TestTablesSorted(t *testing.T) {
	s := MustOpen(nil)
	defer s.Close()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := s.CreateTable(name); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Tables()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tables = %v", got)
		}
	}
	// Re-creating is a no-op.
	if err := s.CreateTable("alpha"); err != nil {
		t.Fatal(err)
	}
	if len(s.Tables()) != 3 {
		t.Error("duplicate create changed table count")
	}
}
