// Package store implements Quaestor's underlying database: an in-memory,
// hash-sharded document store standing in for the paper's MongoDB cluster.
//
// The store provides exactly the substrate surface Quaestor needs from its
// database (Section 2 "Application model"): CRUD on rich nested documents,
// evaluation of MongoDB-style queries, per-key monotonic writes, and a
// change stream of write after-images that feeds the InvaliDB invalidation
// pipeline. Documents are sharded by hashed primary key, mirroring the
// paper's evaluation setup ("documents were sharded through their hashed
// primary key").
package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quaestor/internal/commitlog"
	"quaestor/internal/document"
	"quaestor/internal/index"
	"quaestor/internal/query"
	"quaestor/internal/wal"
)

// Common errors returned by store operations.
var (
	ErrNotFound      = errors.New("store: document not found")
	ErrExists        = errors.New("store: document already exists")
	ErrNoTable       = errors.New("store: table does not exist")
	ErrVersionCheck  = errors.New("store: version precondition failed")
	ErrClosed        = errors.New("store: store is closed")
	ErrEmptyID       = errors.New("store: document id must not be empty")
	ErrEmptyTable    = errors.New("store: table name must not be empty")
	ErrNilDocument   = errors.New("store: document must not be nil")
	ErrBadUpdateSpec = errors.New("store: invalid update specification")
	ErrNotDurable    = errors.New("store: store has no data dir (in-memory)")
)

// OpType identifies the kind of write that produced a change event. It
// lives in the commitlog package (the ordered commit pipeline owns the
// event vocabulary); the store re-exports it for its callers.
type OpType = commitlog.OpType

// Write operation kinds carried on the change stream.
const (
	OpInsert = commitlog.OpInsert
	OpUpdate = commitlog.OpUpdate
	OpDelete = commitlog.OpDelete
)

// ChangeEvent is one write's after-image as published on the change
// stream — an alias for commitlog.Event, the ordered pipeline's unit of
// delivery. For deletes, After carries the id with nil fields and
// Deleted is true.
type ChangeEvent = commitlog.Event

const defaultShards = 16

// Durability tunes the write-ahead log of a store opened with a DataDir.
type Durability struct {
	// Fsync selects the fsync policy (default wal.FsyncAlways).
	Fsync wal.FsyncPolicy
	// FsyncInterval bounds the sync lag under wal.FsyncInterval
	// (default 25ms).
	FsyncInterval time.Duration
	// SegmentBytes is the log's segment rotation threshold (default 8 MiB).
	SegmentBytes int64
}

// Options configures a Store.
type Options struct {
	// ShardsPerTable is the number of hash partitions per table
	// (default 16). More shards reduce write contention.
	ShardsPerTable int
	// ChangeBuffer sizes the commit pipeline's fan-out ring (the events
	// retained for subscriber catch-up) and each flat subscription's
	// channel buffer (default 1024).
	ChangeBuffer int
	// ReplayBuffer is how many recent change events are retained per table
	// for replay when a query is activated in InvaliDB (default 4096).
	ReplayBuffer int
	// Clock supplies timestamps; defaults to time.Now. The Monte Carlo
	// simulator injects a virtual clock here.
	Clock func() time.Time
	// DataDir, when set, makes the store durable: every write is logged
	// to a segmented WAL under this directory before it is published on
	// the change stream, and Open recovers the previous state from the
	// latest snapshot plus the log tail. Empty keeps the store in-memory.
	DataDir string
	// Durability tunes the WAL when DataDir is set.
	Durability Durability
	// AutoSnapshotBytes, when positive on a durable store, triggers a
	// background Snapshot() once the WAL's on-disk size reaches this many
	// bytes, keeping the recovery replay bounded without operator action.
	// Zero leaves snapshots manual.
	AutoSnapshotBytes int64
}

func (o *Options) withDefaults() Options {
	out := Options{ShardsPerTable: defaultShards, ChangeBuffer: 1024, ReplayBuffer: 4096, Clock: time.Now}
	if o == nil {
		return out
	}
	if o.ShardsPerTable > 0 {
		out.ShardsPerTable = o.ShardsPerTable
	}
	if o.ChangeBuffer > 0 {
		out.ChangeBuffer = o.ChangeBuffer
	}
	if o.ReplayBuffer > 0 {
		out.ReplayBuffer = o.ReplayBuffer
	}
	if o.Clock != nil {
		out.Clock = o.Clock
	}
	out.DataDir = o.DataDir
	out.Durability = o.Durability
	out.AutoSnapshotBytes = o.AutoSnapshotBytes
	return out
}

// Store is a sharded, thread-safe document database.
type Store struct {
	opts Options
	seq  atomic.Uint64

	mu     sync.RWMutex
	tables map[string]*table
	closed bool

	// pipeline is the ordered commit pipeline: every committed write is
	// fed through seqr (which restores strict global Seq order) into the
	// fan-out log that all change-stream consumers subscribe to. On
	// durable stores the WAL committer's post-commit hook feeds seqr; on
	// in-memory stores commit() does.
	pipeline *commitlog.Log
	seqr     *commitlog.Sequencer

	// wal is non-nil for durable stores (Options.DataDir set).
	wal *wal.Log
	// snapMu serializes snapshots; lastSnap/recovery hold durability
	// stats reported by DurabilityStats.
	snapMu   sync.Mutex
	lastSnap *SnapshotInfo
	recovery RecoveryInfo

	// Auto-snapshot machinery (Options.AutoSnapshotBytes).
	autoSnapBusy atomic.Bool
	autoSnaps    atomic.Uint64

	// readOnly marks an unpromoted replica: doc writes fail with
	// ErrReadOnly and state changes only through the replication apply
	// path (see replication.go).
	readOnly atomic.Bool
	// applyScratch is ApplyReplicated's reusable event buffer (single
	// applier by contract).
	applyScratch []commitlog.Event
}

type table struct {
	name   string
	shards []*shard

	// idxMu guards indexPaths, the list of secondary-indexed field paths.
	// The per-shard index structures themselves live in the shards and are
	// guarded by the shard locks.
	idxMu      sync.RWMutex
	indexPaths []string
}

type shard struct {
	mu   sync.RWMutex
	docs map[string]*document.Document
	// indexes maps field path → secondary index over this shard's
	// documents. Maintained inside every write's critical section, so an
	// index is always exactly consistent with docs under the shard lock.
	indexes map[string]*index.Field
}

// indexAdd posts doc to every index. Caller holds sh.mu.
func (sh *shard) indexAdd(doc *document.Document) {
	for _, ix := range sh.indexes {
		ix.Add(doc)
	}
}

// indexRemove drops doc's postings from every index. Caller holds sh.mu.
func (sh *shard) indexRemove(doc *document.Document) {
	for _, ix := range sh.indexes {
		ix.Remove(doc)
	}
}

// Open creates a store. A nil opts uses defaults (in-memory). When
// opts.DataDir is set the store is durable: Open recovers the previous
// state from the latest snapshot plus the WAL tail (tolerating a torn
// final record), rebuilds all secondary indexes, restores LastSeq, and
// then logs every subsequent write before publishing it.
func Open(opts *Options) (*Store, error) {
	o := opts.withDefaults()
	s := &Store{
		opts:   o,
		tables: map[string]*table{},
	}
	if o.DataDir == "" {
		s.openPipeline(0)
		return s, nil
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// openPipeline builds the ordered commit pipeline, tailing from lastSeq
// (non-zero after recovery).
func (s *Store) openPipeline(lastSeq uint64) {
	s.pipeline = commitlog.NewLog(&commitlog.Options{
		Ring:           s.opts.ChangeBuffer,
		ReplayPerTable: s.opts.ReplayBuffer,
		StartSeq:       lastSeq,
		Clock:          s.opts.Clock,
	})
	s.seqr = commitlog.NewSequencer(s.pipeline, lastSeq)
}

// MustOpen is Open for callers without a useful error path (tests,
// examples, in-memory stores, benchmarks); it panics on failure.
func MustOpen(opts *Options) *Store {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Close shuts the store down, closes all change-stream subscriptions and
// cleanly seals the WAL (flushing and fsyncing pending appends). The
// pipeline closes before the WAL so the committer's post-commit hook can
// never block on a fan-out ring nobody is draining anymore.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.pipeline.Close()
	if s.wal != nil {
		s.wal.Close()
	}
}

// CreateTable creates a table; creating an existing table is a no-op.
// On durable stores the creation is logged (and thus survives restart)
// before CreateTable returns.
func (s *Store) CreateTable(name string) error {
	created, err := s.createTable(name)
	if err != nil || !created || s.wal == nil {
		return err
	}
	// DDL records carry Seq 0 and replay unconditionally; creation is
	// idempotent, so double-applying against a snapshot is harmless.
	return s.wal.Append(wal.Record{Kind: wal.KindCreateTable, Table: name})
}

func (s *Store) createTable(name string) (created bool, err error) {
	if name == "" {
		return false, ErrEmptyTable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return false, nil
	}
	s.tables[name] = newTable(name, s.opts.ShardsPerTable)
	return true, nil
}

// newTable builds an empty table with the given shard count — shared by
// createTable and the snapshot import's shadow table set.
func newTable(name string, shards int) *table {
	t := &table{name: name, shards: make([]*shard, shards)}
	for i := range t.shards {
		t.shards[i] = &shard{docs: map[string]*document.Document{}, indexes: map[string]*index.Field{}}
	}
	return t
}

// Tables returns the sorted table names.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Store) table(name string) (*table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

func (t *table) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return t.shards[h.Sum32()%uint32(len(t.shards))]
}

// lookupDoc returns the stored document (not a copy) or nil. Lock-free:
// only valid on table sets with no concurrent doc writer, i.e. the
// snapshot import's old/imported sets under the single-applier contract.
func (t *table) lookupDoc(id string) *document.Document {
	return t.shardFor(id).docs[id]
}

// Insert stores a new document. It fails with ErrExists when the id is
// already present. The stored copy is independent of the caller's value.
func (s *Store) Insert(tableName string, doc *document.Document) error {
	if doc == nil {
		return ErrNilDocument
	}
	if doc.ID == "" {
		return ErrEmptyID
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	sh := t.shardFor(doc.ID)
	sh.mu.Lock()
	if _, ok := sh.docs[doc.ID]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrExists, tableName, doc.ID)
	}
	stored := doc.Clone()
	stored.Version = 1
	sh.docs[doc.ID] = stored
	sh.indexAdd(stored)
	ev := &ChangeEvent{Table: tableName, Op: OpInsert, After: stored.Clone()}
	w := s.stampLocked(ev)
	sh.mu.Unlock()

	return s.commit(ev, w)
}

// Get returns a deep copy of the document, or ErrNotFound.
func (s *Store) Get(tableName, id string) (*document.Document, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	sh := t.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	doc, ok := sh.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, id)
	}
	return doc.Clone(), nil
}

// Put replaces a document's fields wholesale, creating it if absent
// (upsert). The version increments; per-key monotonic writes follow from
// the shard lock serializing writers.
func (s *Store) Put(tableName string, doc *document.Document) error {
	if doc == nil {
		return ErrNilDocument
	}
	if doc.ID == "" {
		return ErrEmptyID
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	sh := t.shardFor(doc.ID)
	sh.mu.Lock()
	prev, existed := sh.docs[doc.ID]
	stored := doc.Clone()
	var before *document.Document
	op := OpInsert
	if existed {
		before = prev.Clone()
		stored.Version = prev.Version + 1
		op = OpUpdate
		sh.indexRemove(prev)
	} else {
		stored.Version = 1
	}
	sh.docs[doc.ID] = stored
	sh.indexAdd(stored)
	ev := &ChangeEvent{Table: tableName, Op: op, Before: before, After: stored.Clone()}
	w := s.stampLocked(ev)
	sh.mu.Unlock()

	return s.commit(ev, w)
}

// UpdateSpec describes a partial update.
type UpdateSpec struct {
	// Set assigns values at dotted paths.
	Set map[string]any
	// Unset removes dotted paths.
	Unset []string
	// Inc adds a numeric delta at dotted paths (missing paths start at 0).
	Inc map[string]float64
	// Push appends values to array fields (missing paths start empty).
	Push map[string]any
	// Pull removes all occurrences of a value from array fields.
	Pull map[string]any
	// IfVersion, when non-zero, makes the update conditional on the current
	// version (optimistic concurrency; ErrVersionCheck on mismatch).
	IfVersion int64
}

// Update applies a partial update and returns the after-image.
func (s *Store) Update(tableName, id string, spec UpdateSpec) (*document.Document, error) {
	if s.readOnly.Load() {
		return nil, ErrReadOnly
	}
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	sh := t.shardFor(id)
	sh.mu.Lock()
	prev, ok := sh.docs[id]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, id)
	}
	if spec.IfVersion != 0 && prev.Version != spec.IfVersion {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: have %d, want %d", ErrVersionCheck, prev.Version, spec.IfVersion)
	}
	before := prev.Clone()
	next := prev.Clone()
	if err := applySpec(next, spec); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	next.Version = prev.Version + 1
	sh.indexRemove(prev)
	sh.docs[id] = next
	sh.indexAdd(next)
	after := next.Clone()
	ev := &ChangeEvent{Table: tableName, Op: OpUpdate, Before: before, After: after}
	w := s.stampLocked(ev)
	sh.mu.Unlock()

	if err := s.commit(ev, w); err != nil {
		return nil, err
	}
	return after.Clone(), nil
}

func applySpec(doc *document.Document, spec UpdateSpec) error {
	for path, v := range spec.Set {
		if err := doc.Set(path, v); err != nil {
			return fmt.Errorf("%w: set %q: %v", ErrBadUpdateSpec, path, err)
		}
	}
	for _, path := range spec.Unset {
		doc.Delete(path)
	}
	for path, delta := range spec.Inc {
		cur, _ := doc.Get(path)
		var base float64
		switch n := cur.(type) {
		case int64:
			base = float64(n)
		case float64:
			base = n
		case nil:
			base = 0
		default:
			return fmt.Errorf("%w: inc %q: field is %T", ErrBadUpdateSpec, path, cur)
		}
		nv := base + delta
		if nv == float64(int64(nv)) {
			if err := doc.Set(path, int64(nv)); err != nil {
				return err
			}
		} else if err := doc.Set(path, nv); err != nil {
			return err
		}
	}
	for path, v := range spec.Push {
		cur, ok := doc.Get(path)
		var arr []any
		if ok {
			a, isArr := cur.([]any)
			if !isArr {
				return fmt.Errorf("%w: push %q: field is %T", ErrBadUpdateSpec, path, cur)
			}
			arr = a
		}
		arr = append(arr, document.Normalize(v))
		if err := doc.Set(path, arr); err != nil {
			return err
		}
	}
	for path, v := range spec.Pull {
		cur, ok := doc.Get(path)
		if !ok {
			continue
		}
		arr, isArr := cur.([]any)
		if !isArr {
			return fmt.Errorf("%w: pull %q: field is %T", ErrBadUpdateSpec, path, cur)
		}
		norm := document.Normalize(v)
		out := arr[:0]
		for _, e := range arr {
			if !document.DeepEqual(e, norm) {
				out = append(out, e)
			}
		}
		if err := doc.Set(path, append([]any(nil), out...)); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a document, returning ErrNotFound if absent.
func (s *Store) Delete(tableName, id string) error {
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	sh := t.shardFor(id)
	sh.mu.Lock()
	prev, ok := sh.docs[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, id)
	}
	delete(sh.docs, id)
	sh.indexRemove(prev)
	before := prev.Clone()
	tomb := &document.Document{ID: id, Version: before.Version + 1}
	ev := &ChangeEvent{Table: tableName, Op: OpDelete, Deleted: true, Before: before, After: tomb}
	w := s.stampLocked(ev)
	sh.mu.Unlock()

	return s.commit(ev, w)
}

// CreateIndex builds a secondary index over a dotted field path and keeps
// it maintained by every subsequent write. Creating an existing index is a
// no-op. The build takes each shard's write lock in turn, so it is exactly
// consistent with concurrent writes without stopping the world. On durable
// stores the index definition is logged, so restart rebuilds it.
func (s *Store) CreateIndex(tableName, path string) error {
	added, err := s.buildIndex(tableName, path)
	if err != nil || !added {
		return err
	}
	if s.seqr == nil {
		// Recovery rebuild: the original DDL record is already in the
		// log (or snapshot meta); nothing to sequence or re-log.
		return nil
	}
	if s.readOnly.Load() {
		// Replica-local DDL builds the index but must not consume the
		// replicated sequence space — the primary's sequenced DDL record
		// arrives (idempotently) through ApplyReplicated. Log unsequenced
		// so the build survives a replica restart.
		if s.wal != nil {
			return s.wal.Append(wal.Record{Kind: wal.KindCreateIndex, Table: tableName, Path: path})
		}
		return nil
	}
	// Sequence the DDL through the commit pipeline like any write:
	// replicas and all live subscribers learn the index in position,
	// instead of only via shipped segments or re-bootstrap.
	ev := &ChangeEvent{Table: tableName, Op: commitlog.OpCreateIndex, Path: path}
	ev.Seq = s.seq.Add(1)
	ev.Time = s.opts.Clock()
	if s.wal != nil {
		rec := wal.Record{Seq: ev.Seq, Kind: wal.KindCreateIndex, Table: tableName, Path: path}
		return s.commit(ev, s.wal.EnqueueWith(rec, ev))
	}
	s.seqr.Publish(*ev)
	return nil
}

// buildIndex installs and backfills the index structure without logging
// or sequencing; it reports whether the index was new. CreateIndex wraps
// it with pipeline sequencing, recovery and the replication applier call
// it directly.
func (s *Store) buildIndex(tableName, path string) (bool, error) {
	if path == "" {
		return false, fmt.Errorf("%w: empty index path", ErrBadUpdateSpec)
	}
	t, err := s.table(tableName)
	if err != nil {
		return false, err
	}
	t.idxMu.Lock()
	for _, p := range t.indexPaths {
		if p == path {
			t.idxMu.Unlock()
			return false, nil
		}
	}
	t.indexPaths = append(t.indexPaths, path)
	sort.Strings(t.indexPaths)
	t.idxMu.Unlock()

	for _, sh := range t.shards {
		sh.mu.Lock()
		if _, ok := sh.indexes[path]; !ok {
			ix := index.NewField(path)
			for _, d := range sh.docs {
				ix.Add(d)
			}
			sh.indexes[path] = ix
		}
		sh.mu.Unlock()
	}
	return true, nil
}

// Indexes returns the sorted indexed field paths of a table.
func (s *Store) Indexes(tableName string) ([]string, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	return append([]string(nil), t.indexPaths...), nil
}

// IndexStats implements query.Catalog by aggregating per-shard statistics.
func (t *table) IndexStats(path string) (query.IndexStats, bool) {
	t.idxMu.RLock()
	known := false
	for _, p := range t.indexPaths {
		if p == path {
			known = true
			break
		}
	}
	t.idxMu.RUnlock()
	if !known {
		return query.IndexStats{}, false
	}
	// Distinct counts are not additive across shards: a value present in k
	// shards would be counted k times, deflating the bucket estimate. Sum
	// the per-shard expected bucket sizes instead (a value present in a
	// shard contributes that shard's docs/distinct on average) and derive a
	// global distinct count consistent with it.
	var docs int
	var estRows float64
	for _, sh := range t.shards {
		sh.mu.RLock()
		if ix, ok := sh.indexes[path]; ok {
			s := ix.Stats()
			docs += s.Docs
			if s.Distinct > 0 {
				estRows += float64(s.Docs) / float64(s.Distinct)
			}
		}
		sh.mu.RUnlock()
	}
	st := query.IndexStats{Docs: docs, Distinct: docs}
	if estRows >= 1 {
		if d := int(float64(docs) / estRows); d >= 1 {
			st.Distinct = d
		} else {
			st.Distinct = 1
		}
	}
	return st, true
}

// TableDocs implements query.Catalog.
func (t *table) TableDocs() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// Query evaluates q against its table and returns deep copies of the
// matching documents in the query's order. Reads route through the
// planner: when a usable index exists the executor probes or range-scans
// it instead of scanning the table.
func (s *Store) Query(q *query.Query) ([]*document.Document, error) {
	docs, _, err := s.QueryPlanned(q)
	return docs, err
}

// QueryPlanned evaluates q and additionally reports the access plan the
// planner chose — including its execution report (strategy, residual
// pushdown, rows examined/returned) — so callers can attribute latency to
// plan kinds. It drains the streaming executor (see exec.go), cloning only
// the offset/limit window it returns.
func (s *Store) QueryPlanned(q *query.Query) ([]*document.Document, query.Plan, error) {
	cur, err := s.QueryStream(q)
	if err != nil {
		return nil, query.Plan{}, err
	}
	if cur.Remaining() == 0 {
		return nil, cur.Plan(), nil
	}
	out := make([]*document.Document, 0, cur.Remaining())
	for {
		d, ok := cur.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out, cur.Plan(), nil
}

func toIndexBound(b query.Bound) index.Bound {
	return index.Bound{Value: b.Value, Inclusive: b.Inclusive, Unbounded: b.Unbounded}
}

// ScanQuery evaluates q by full table scan, bypassing the planner AND the
// streaming executor: it clones every match and sorts the full set through
// Query.Apply. It is the materializing correctness baseline the executor's
// property tests and benchmarks compare against.
func (s *Store) ScanQuery(q *query.Query) ([]*document.Document, error) {
	t, err := s.table(q.Table)
	if err != nil {
		return nil, err
	}
	var candidates []*document.Document
	for _, sh := range t.shards {
		sh.mu.RLock()
		for _, d := range sh.docs {
			if q.Matches(d) {
				candidates = append(candidates, d.Clone())
			}
		}
		sh.mu.RUnlock()
	}
	return q.Apply(candidates), nil
}

// Explain returns the access plan the planner would choose for q right
// now, without executing it. The plan carries the execution strategy and
// residual-pushdown report (static properties of the plan); the row
// counters stay zero until an actual execution fills them.
func (s *Store) Explain(q *query.Query) (query.Plan, error) {
	t, err := s.table(q.Table)
	if err != nil {
		return query.Plan{}, err
	}
	plan := query.BuildPlan(q, t)
	_, elided := query.Residual(q.Predicate, plan)
	plan.Strategy = query.ChooseStrategy(q, plan)
	plan.ElidedConjuncts = elided
	return plan, nil
}

// Count returns the number of documents in a table.
func (s *Store) Count(tableName string) (int, error) {
	t, err := s.table(tableName)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n, nil
}

// stampLocked assigns ev its global sequence number and timestamp and,
// on durable stores, enqueues its WAL record for group commit with ev
// attached as the committer's post-commit payload. It MUST run inside
// the caller's shard critical section: that is what makes the per-key
// order of records in the log match the serialization order the shard
// lock imposes (recovery sorts records by Seq, which is only meaningful
// per key if Seq assignment and enqueue are atomic with the write).
func (s *Store) stampLocked(ev *ChangeEvent) *wal.Waiter {
	ev.Seq = s.seq.Add(1)
	ev.Time = s.opts.Clock()
	if s.wal == nil {
		return nil
	}
	rec := wal.Record{Seq: ev.Seq, Table: ev.Table}
	if ev.Op == OpDelete {
		rec.Kind = wal.KindDelete
		rec.ID = ev.After.ID
		rec.Version = ev.After.Version
	} else {
		rec.Kind = wal.KindPut
		rec.Doc = ev.After // a private clone; the committer reads it concurrently
	}
	return s.wal.EnqueueWith(rec, ev)
}

// commit finishes a write's journey onto the ordered commit pipeline.
//
// Durable stores: the WAL committer's post-commit hook feeds every
// written event into the sequencer, so commit only waits for the record
// to become durable (per the fsync policy) — by the time an
// fsync-acknowledged Wait returns, the event is already on the pipeline.
// The log always leads the stream: an event whose record never committed
// is never published; its Seq is skipped so the events serialized behind
// it are released. A WAL failure is returned to the writer; the
// in-memory mutation has already happened, so a wedged log makes the
// store effectively read-only for durable correctness.
//
// In-memory stores publish directly; the sequencer still restores global
// Seq order because writers release their shard locks before reaching
// this point, so two racing same-key writes can arrive here swapped.
// Every subscriber observes strictly increasing Seq either way.
func (s *Store) commit(ev *ChangeEvent, w *wal.Waiter) error {
	if w != nil {
		if err := w.Wait(); err != nil {
			// The record never committed: release its slot in the global
			// order so later events are not held back behind the gap.
			s.seqr.Skip(ev.Seq)
			return fmt.Errorf("store: wal append: %w", err)
		}
		return nil
	}
	s.seqr.Publish(*ev)
	return nil
}

// Subscribe registers a change-stream consumer receiving every write's
// after-image in strict global Seq order. Cancel releases the
// subscription. A slow consumer applies backpressure to commits once it
// falls a full fan-out ring behind — InvaliDB's ingestion drains
// continuously, mirroring the transactional pull in the paper.
func (s *Store) Subscribe() (<-chan ChangeEvent, func()) {
	return s.SubscribeNamed("subscriber")
}

// SubscribeNamed is Subscribe with a name reported in PipelineStats.
func (s *Store) SubscribeNamed(name string) (<-chan ChangeEvent, func()) {
	return s.pipeline.SubscribeTail(name, commitlog.Block).Flatten(s.opts.ChangeBuffer)
}

// SubscribeFrom registers an ordered batch consumer starting after
// fromSeq: retained events with Seq > fromSeq are delivered first (the
// fan-out ring holds the last ChangeBuffer events), then the live tail,
// all as contiguous Seq-ordered batches. This is the attach point for
// log-shipping replication: a replica bootstraps from a snapshot, then
// subscribes from the snapshot's sequence floor. When fromSeq predates
// the ring's retention SubscribeFrom fails with commitlog.ErrSeqTruncated
// and the replica must catch up through shipped WAL segments (or a fresh
// snapshot) first.
func (s *Store) SubscribeFrom(name string, fromSeq uint64) (*commitlog.Subscription, error) {
	return s.pipeline.Subscribe(name, fromSeq, commitlog.Block)
}

// Replay returns the buffered recent change events for a table with
// Seq > afterSeq, oldest first. InvaliDB replays these when activating a
// query to close the gap between initial evaluation and activation
// (Section 4.1: "all recently received objects are replayed for a query
// when it is installed").
func (s *Store) Replay(tableName string, afterSeq uint64) []ChangeEvent {
	return s.pipeline.Replay(tableName, afterSeq)
}

// PipelineStats describes the ordered commit pipeline: fan-out counters,
// per-subscriber lag/drops, the publish→deliver latency histogram and
// the sequencer's reorder-buffer occupancy.
type PipelineStats struct {
	Stream    commitlog.Stats          `json:"stream"`
	Sequencer commitlog.SequencerStats `json:"sequencer"`
}

// PipelineStats reports the commit pipeline's counters.
func (s *Store) PipelineStats() PipelineStats {
	return PipelineStats{Stream: s.pipeline.Stats(), Sequencer: s.seqr.Stats()}
}

// maybeAutoSnapshot triggers a background snapshot once the WAL's
// on-disk size reaches Options.AutoSnapshotBytes. It is called from the
// WAL committer's post-commit hook — once per committed batch, the only
// point where the on-disk size is current (write ticks would race the
// committer under the asynchronous fsync policies) — so the snapshot
// itself must run on its own goroutine: it rotates the log via a
// control request the committer has to be free to serve. At most one
// auto-snapshot is in flight at a time.
func (s *Store) maybeAutoSnapshot() {
	if s.opts.AutoSnapshotBytes <= 0 || s.wal.SizeBytes() < s.opts.AutoSnapshotBytes {
		return
	}
	if !s.autoSnapBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.autoSnapBusy.Store(false)
		// Failures (e.g. a store closing mid-snapshot) are dropped: the
		// next threshold crossing retries.
		if _, err := s.Snapshot(); err == nil {
			s.autoSnaps.Add(1)
		}
	}()
}

// LastSeq returns the sequence number of the most recent write.
func (s *Store) LastSeq() uint64 { return s.seq.Load() }
