package coordinator_test

// End-to-end failover: a live sharded primary is killed mid-load with
// the coordinator supervising, and the whole cutover — per-shard
// election, idempotent promotion, shard-map rewrite under a bumped
// epoch, read-topology push — must complete automatically, with zero
// acked-write loss proven two-sided against shadow event logs and a
// live SDK client following the epoch bump to the new primary.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"quaestor/internal/client"
	"quaestor/internal/cluster"
	"quaestor/internal/coordinator"
	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/store"
	"quaestor/internal/testutil"
)

// shadowLog drains one shard store's change subscription into an
// ordered event log, so the test can reconstruct "the primary's
// acknowledged state as of sequence R" after the primary is gone.
type shadowLog struct {
	mu     sync.Mutex
	events []store.ChangeEvent
	done   chan struct{}
}

func shadowStore(db *store.Store) *shadowLog {
	ch, _ := db.SubscribeNamed("shadow")
	sl := &shadowLog{done: make(chan struct{})}
	go func() {
		defer close(sl.done)
		for ev := range ch {
			sl.mu.Lock()
			sl.events = append(sl.events, ev)
			sl.mu.Unlock()
		}
	}()
	return sl
}

// stateAsOf folds the acknowledged log up to sequence r into the
// expected table → id → document state.
func (sl *shadowLog) stateAsOf(r uint64) map[string]map[string]*document.Document {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	state := map[string]map[string]*document.Document{}
	for _, ev := range sl.events {
		if ev.Seq > r {
			break // events arrive in strict Seq order
		}
		if ev.After == nil {
			continue // sequenced DDL carries no document
		}
		tbl := state[ev.Table]
		if tbl == nil {
			tbl = map[string]*document.Document{}
			state[ev.Table] = tbl
		}
		if ev.Op == store.OpDelete {
			delete(tbl, ev.After.ID)
		} else {
			tbl[ev.After.ID] = ev.After
		}
	}
	return state
}

// ackedMatches reports whether some acknowledged write produced exactly
// this after-image.
func (sl *shadowLog) ackedMatches(table string, doc *document.Document) bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for _, ev := range sl.events {
		if ev.Op != store.OpDelete && ev.Table == table && ev.After != nil && ev.After.ID == doc.ID &&
			ev.After.Version == doc.Version && document.DeepEqual(ev.After.Fields, doc.Fields) {
			return true
		}
	}
	return false
}

func (sl *shadowLog) deletedAfter(table, id string, r uint64) bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for _, ev := range sl.events {
		if ev.Seq > r && ev.Table == table && ev.Op == store.OpDelete && ev.After.ID == id {
			return true
		}
	}
	return false
}

// candidateNode is one replica server: a sharded router following every
// one of the primary's shard streams, fronted by a full server.
type candidateNode struct {
	router *cluster.Router
	srv    *server.Server
	ts     *httptest.Server
	repls  []*replication.Replica
}

func startCandidate(t *testing.T, primaryURL string, shards int, name string) *candidateNode {
	t.Helper()
	router := cluster.MustOpen(cluster.Options{Shards: shards})
	repls := make([]*replication.Replica, shards)
	for i := 0; i < shards; i++ {
		repls[i] = replication.New(replication.Options{
			Store:      router.Store(i),
			Primary:    primaryURL,
			Name:       fmt.Sprintf("%s/shard-%d", name, i),
			Sharded:    true,
			Shard:      i,
			MinBackoff: 5 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond,
			Logf:       t.Logf,
		})
		repls[i].Run()
	}
	srv := server.NewSharded(router, &server.Options{})
	srv.AttachReplicas(repls)
	ts := httptest.NewServer(srv.Handler())
	srv.SetSelfURL(ts.URL)
	t.Cleanup(func() {
		for _, r := range repls {
			r.Stop()
		}
		ts.CloseClientConnections()
		ts.Close()
		srv.Close()
		router.Close()
	})
	return &candidateNode{router: router, srv: srv, ts: ts, repls: repls}
}

// TestCoordinatorAutomaticFailover kills a 2-shard primary mid-load
// while a coordinator supervises two candidate replica nodes. The
// cutover must happen with no operator involvement, every write the
// winners had applied must survive byte-equal, nothing unacknowledged
// may be invented, and a live SDK client pointed at the dead primary
// must follow the epoch bump and keep writing.
func TestCoordinatorAutomaticFailover(t *testing.T) {
	// Registered first so the leak check runs after every other cleanup:
	// the coordinator's supervisor/fence goroutines, the shadow drains,
	// and the replicas' pumps must all be gone once teardown completes.
	testutil.VerifyNoGoroutineLeaks(t)
	const shards = 2
	const writers = 4

	prouter := cluster.MustOpen(cluster.Options{Shards: shards})
	psrv := server.NewSharded(prouter, &server.Options{})
	pts := httptest.NewServer(psrv.Handler())
	var killOnce sync.Once
	killPrimary := func() {
		killOnce.Do(func() {
			pts.CloseClientConnections()
			pts.Close()
		})
	}
	var closeOnce sync.Once
	closePrimaryStores := func() {
		closeOnce.Do(func() {
			psrv.Close()
			prouter.Close()
		})
	}
	t.Cleanup(func() { killPrimary(); closePrimaryStores() })
	if err := prouter.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	shadows := make([]*shadowLog, shards)
	for i := 0; i < shards; i++ {
		shadows[i] = shadowStore(prouter.Store(i))
	}

	n1 := startCandidate(t, pts.URL, shards, "n1")
	n2 := startCandidate(t, pts.URL, shards, "n2")
	nodes := map[string]*candidateNode{n1.ts.URL: n1, n2.ts.URL: n2}
	psrv.SetReplicaEndpoints(pts.URL, []string{n1.ts.URL, n2.ts.URL})

	// A live SDK client dialed at the primary, replica set discovered
	// pre-failover; one write primes its shard map at the initial epoch.
	cl, err := client.Dial(&client.Options{BaseURL: pts.URL, DiscoverReplicas: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("docs", document.New("client-pre", map[string]any{"v": int64(1)})); err != nil {
		t.Fatal(err)
	}
	if m := cl.ShardMap(); m == nil || m.Epoch != 1 {
		t.Fatalf("client shard map before failover: %+v", m)
	}

	// The supervisor, attached to n1's server so /v1/failover/status and
	// the stats section are observable.
	co, err := coordinator.New(coordinator.Options{
		Primary:           pts.URL,
		Replicas:          []string{n1.ts.URL, n2.ts.URL},
		HeartbeatInterval: 20 * time.Millisecond,
		ProbeTimeout:      300 * time.Millisecond,
		FailureThreshold:  3,
		MaxBackoff:        200 * time.Millisecond,
		SettleWait:        400 * time.Millisecond,
		Logf:              t.Logf,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	co.Run()
	t.Cleanup(co.Stop)
	n1.srv.AttachCoordinator(co)

	// Hammer the primary until the kill: paced so the followers keep a
	// proven (>= 0) staleness bound while the load runs.
	stopWriters := make(chan struct{})
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				doc := document.New(fmt.Sprintf("w%d-%05d", w, i), map[string]any{"v": int64(i), "w": int64(w)})
				_ = prouter.Insert("docs", doc)
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Ramp: a real spread of writes, and every shard follower on both
	// candidates eligible for election (proven staleness).
	deadline := time.Now().Add(30 * time.Second)
	for {
		total := uint64(0)
		for _, q := range prouter.LastSeqs() {
			total += q
		}
		eligibleAll := true
		for _, n := range nodes {
			for _, rep := range n.repls {
				if st := rep.Status(); st.StalenessMs < 0 || st.LastSeq == 0 {
					eligibleAll = false
				}
			}
		}
		if total >= 200 && eligibleAll {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load never ramped to an electable state (total seq %d)", total)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary mid-load: HTTP first (streams and probes die while
	// writers still append), then the writers, then the stores — so the
	// shadow logs hold every acknowledged event.
	killPrimary()
	close(stopWriters)
	wwg.Wait()
	closePrimaryStores()
	for _, sl := range shadows {
		<-sl.done
	}

	// The coordinator must detect death and complete the cutover on its
	// own.
	deadline = time.Now().Add(30 * time.Second)
	for co.Status().Failovers == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic failover; coordinator status %+v", co.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := co.Status()
	report := st.LastFailover
	if report == nil || report.OldPrimary != pts.URL {
		t.Fatalf("failover report = %+v", report)
	}
	if len(report.Shards) != shards {
		t.Fatalf("report covers %d shards, want %d", len(report.Shards), shards)
	}
	if report.Epoch != 2 {
		t.Errorf("rewritten epoch = %d, want 2 (initial map was epoch 1)", report.Epoch)
	}
	if _, ok := nodes[report.NewPrimary]; !ok {
		t.Fatalf("new primary %q is not a candidate", report.NewPrimary)
	}

	// Each shard's winner is promoted, and its applied prefix R holds the
	// acknowledged state as of R — nothing lost, nothing invented.
	preWriteSeqs := make([]uint64, shards)
	for _, o := range report.Shards {
		n := nodes[o.Winner]
		if n == nil {
			t.Fatalf("shard %d winner %q is not a candidate", o.Shard, o.Winner)
		}
		if got := n.repls[o.Shard].Status().State; got != replication.StatePromoted {
			t.Fatalf("shard %d winner state = %q, want promoted", o.Shard, got)
		}
		db := n.router.Store(o.Shard)
		r := db.LastSeq()
		preWriteSeqs[o.Shard] = r
		if r == 0 {
			t.Fatalf("shard %d winner applied nothing", o.Shard)
		}
		want := shadows[o.Shard].stateAsOf(r)
		for tbl, docs := range want {
			for id, wdoc := range docs {
				got, err := db.Get(tbl, id)
				if err != nil {
					if !shadows[o.Shard].deletedAfter(tbl, id, r) {
						t.Errorf("shard %d: replicated write lost: %s/%s (v%d): %v", o.Shard, tbl, id, wdoc.Version, err)
					}
					continue
				}
				if got.Version < wdoc.Version && !shadows[o.Shard].deletedAfter(tbl, id, r) {
					t.Errorf("shard %d: %s/%s at v%d, behind acknowledged v%d at R=%d", o.Shard, tbl, id, got.Version, wdoc.Version, r)
				}
			}
		}
		for _, tbl := range db.Tables() {
			docs, err := db.ScanQuery(query.New(tbl, nil))
			if err != nil {
				t.Fatal(err)
			}
			for _, got := range docs {
				if !shadows[o.Shard].ackedMatches(tbl, got) {
					t.Errorf("shard %d: %s/%s v%d on winner was never acknowledged", o.Shard, tbl, got.ID, got.Version)
				}
			}
		}
	}

	// The SDK client, still pointed at the dead primary, must cut over on
	// its next write: transport-error failover, topology refresh from a
	// survivor, epoch bump, write landing on the new owner with no gap.
	if err := cl.Put("docs", document.New("client-post", map[string]any{"v": int64(2)})); err != nil {
		t.Fatalf("client write after failover: %v", err)
	}
	if m := cl.ShardMap(); m == nil || m.Epoch != report.Epoch {
		t.Errorf("client map epoch after failover = %+v, want %d", m, report.Epoch)
	}
	if got := cl.Stats().FailoverRetries; got == 0 {
		t.Error("client cut over without recording a failover retry")
	}
	postShard := n1.router.ShardFor("client-post")
	owner := nodes[report.Shards[postShard].Winner]
	if got := owner.router.Store(postShard).LastSeq(); got != preWriteSeqs[postShard]+1 {
		t.Errorf("post-failover seq on shard %d = %d, want %d (no gap)", postShard, got, preWriteSeqs[postShard]+1)
	}
	if doc, err := cl.Read("docs", "client-post"); err != nil || doc == nil {
		t.Errorf("client read after failover: %v", err)
	}

	// Every survivor advertises the new read topology: the winner as
	// primary, and no promoted node still listed as a replica of itself.
	for url, n := range nodes {
		resp, err := http.Get(url + "/v1/cluster/replicas")
		if err != nil {
			t.Fatal(err)
		}
		var rs server.ReplicaSetResponse
		if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rs.Primary != report.NewPrimary {
			t.Errorf("%s advertises primary %q, want %q", url, rs.Primary, report.NewPrimary)
		}
		for _, rep := range rs.Replicas {
			if rep == report.NewPrimary {
				t.Errorf("%s advertises the new primary %q as a replica", url, report.NewPrimary)
			}
		}
		if n.srv.InvaliDB().OrderViolations() != 0 {
			t.Errorf("%s: invalidation order violations after failover", url)
		}
	}

	// Supervision settles on the new primary: exactly one failover, no
	// epoch churn from re-elections.
	time.Sleep(300 * time.Millisecond)
	st = co.Status()
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want exactly 1 (no churn)", st.Failovers)
	}
	if st.State != coordinator.StateWatching || st.Primary != report.NewPrimary {
		t.Errorf("post-failover supervision: state=%q primary=%q", st.State, st.Primary)
	}

	// The coordinator's state is observable through its node's endpoints.
	resp, err := http.Get(n1.ts.URL + "/v1/failover/status")
	if err != nil {
		t.Fatal(err)
	}
	var hst coordinator.Status
	if err := json.NewDecoder(resp.Body).Decode(&hst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hst.Failovers != 1 || hst.LastFailover == nil {
		t.Errorf("/v1/failover/status = %+v", hst)
	}
}

// TestShardedPromotePerShardOutcomes exercises the per-shard promote
// path directly: ?shard=i flips exactly one follower with a reported
// outcome, re-delivery is idempotent (changed=false), a full promote
// reports which shards actually flipped, and the advertised read
// topology stops listing the promoted node as a replica of its dead
// primary.
func TestShardedPromotePerShardOutcomes(t *testing.T) {
	const shards = 2
	prouter := cluster.MustOpen(cluster.Options{Shards: shards})
	psrv := server.NewSharded(prouter, &server.Options{})
	pts := httptest.NewServer(psrv.Handler())
	t.Cleanup(func() {
		pts.CloseClientConnections()
		pts.Close()
		psrv.Close()
		prouter.Close()
	})
	if err := prouter.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := prouter.Insert("docs", document.New(fmt.Sprintf("d%03d", i), map[string]any{"v": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}

	n := startCandidate(t, pts.URL, shards, "cand")
	// The stale advertisement a failover leaves behind: dead primary,
	// this node listed as a replica.
	n.srv.SetReplicaEndpoints(pts.URL, []string{n.ts.URL})

	deadline := time.Now().Add(15 * time.Second)
	for {
		ready := true
		for _, rep := range n.repls {
			if st := rep.Status(); st.StalenessMs < 0 {
				ready = false
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never proved its staleness bound")
		}
		time.Sleep(5 * time.Millisecond)
	}

	promote := func(q string) server.PromoteResponse {
		t.Helper()
		resp, err := http.Post(n.ts.URL+"/v1/replication/promote"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("promote%s: status %d", q, resp.StatusCode)
		}
		var pr server.PromoteResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	// Shard 0 alone flips; shard 1 keeps following.
	pr := promote("?shard=0")
	if !pr.Promoted || !pr.Changed || len(pr.Shards) != 1 {
		t.Fatalf("promote shard 0: %+v", pr)
	}
	if o := pr.Shards[0]; o.Shard != 0 || !o.Changed || o.State != replication.StatePromoted {
		t.Fatalf("shard 0 outcome: %+v", o)
	}
	if st := n.repls[1].Status().State; st == replication.StatePromoted {
		t.Fatal("shard 1 flipped by a shard-0 promote")
	}

	// Re-delivery is acknowledged but changes nothing.
	pr = promote("?shard=0")
	if !pr.Promoted || pr.Changed || len(pr.Shards) != 1 || pr.Shards[0].Changed {
		t.Fatalf("re-delivered promote shard 0: %+v", pr)
	}

	// Out-of-range shard is rejected, not silently all-flipped.
	resp, err := http.Post(n.ts.URL+"/v1/replication/promote?shard=9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("promote?shard=9: status %d, want 400", resp.StatusCode)
	}

	// The full promote reports per-shard outcomes: 0 already flipped, 1
	// fresh.
	pr = promote("")
	if !pr.Promoted || !pr.Changed || len(pr.Shards) != shards {
		t.Fatalf("full promote: %+v", pr)
	}
	if pr.Shards[0].Changed || !pr.Shards[1].Changed {
		t.Fatalf("full promote outcomes: %+v", pr.Shards)
	}

	// Now a primary, the node advertises itself — not its dead primary,
	// and not itself as a replica.
	hresp, err := http.Get(n.ts.URL + "/v1/cluster/replicas")
	if err != nil {
		t.Fatal(err)
	}
	var rs server.ReplicaSetResponse
	if err := json.NewDecoder(hresp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if rs.Primary != n.ts.URL {
		t.Errorf("advertised primary = %q, want the promoted node %q", rs.Primary, n.ts.URL)
	}
	for _, rep := range rs.Replicas {
		if rep == n.ts.URL {
			t.Error("promoted node still advertises itself as a replica")
		}
	}
}
