// Package coordinator implements Quaestor's failover supervisor: a
// controller that health-probes a primary over its replication status
// endpoint, tracks each shard's replicas by applied sequence and
// provable staleness, and on confirmed primary death performs the whole
// cutover automatically — elect the freshest eligible replica per
// shard, promote it idempotently, rewrite the shard map's node list
// under a bumped epoch, push the new read topology to every survivor,
// and fence the old primary so a returning corpse refuses writes and
// advertises its successor.
//
// The client side needs nothing new: the SDK's existing
// X-Quaestor-Shard-Epoch refresh and X-Quaestor-Primary redirect
// complete the cutover, and acked writes survive because promotion
// only ever selects a replica whose applied sequence is provably the
// furthest — the same guarantee the manual promote runbook relied on,
// now enforced by code instead of an operator.
//
// Election eligibility is deliberately strict about the unknown
// staleness sentinel: a replica reporting StalenessMs == -1 has never
// proven it held everything the primary acknowledged, so it is
// ineligible — unknown is not fresh, and comparing -1 numerically
// would rank a bootstrapping replica above one provably 1ms behind.
package coordinator

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"quaestor/internal/cluster"
	"quaestor/internal/replication"
)

// State names the coordinator's position in its supervision loop.
type State string

// Coordinator lifecycle states.
const (
	// StateWatching: the primary answered its last probe.
	StateWatching State = "watching"
	// StateSuspect: probes are failing but the death threshold has not
	// been reached; probing continues with exponential backoff + jitter.
	StateSuspect State = "suspect"
	// StateFailingOver: death confirmed; election/promotion in progress.
	StateFailingOver State = "failing-over"
	// StateStopped: Stop was called.
	StateStopped State = "stopped"
)

// Options configures a Coordinator.
type Options struct {
	// Primary is the supervised primary's base URL. Required.
	Primary string
	// Replicas are the candidate replica base URLs (each following all
	// of the primary's shards). Required, at least one.
	Replicas []string

	// HeartbeatInterval is the probe cadence while the primary is
	// healthy (default 500ms); ProbeTimeout bounds one probe (default
	// 2s). FailureThreshold consecutive failed probes confirm death
	// (default 3) — with backoff, the confirmation deadline is roughly
	// HeartbeatInterval × (2^FailureThreshold − 1) plus probe timeouts.
	HeartbeatInterval time.Duration
	ProbeTimeout      time.Duration
	FailureThreshold  int
	// MaxBackoff caps the suspect-phase probe backoff and the fencing
	// retry backoff (default 5s).
	MaxBackoff time.Duration
	// SettleWait bounds how long the election waits for candidate
	// appliers to drain in-flight frames before ranking (default 1s;
	// the wait ends early once two consecutive polls see no applied-
	// sequence advance).
	SettleWait time.Duration

	// Client is the HTTP client for probes and control calls (default
	// http.DefaultClient); Token authenticates them against servers
	// started with an auth token.
	Client *http.Client
	Token  string
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
	// Seed fixes the jitter source (0: time-seeded).
	Seed int64
}

// ShardOutcome reports one shard's election + promotion result.
type ShardOutcome struct {
	Shard    int     `json:"shard"`
	Winner   string  `json:"winner"`
	LastSeq  uint64  `json:"lastSeq"`
	Staleness float64 `json:"stalenessMs"`
	// Changed is false when the winner was already promoted — the
	// idempotent re-run path after a crash mid-promote.
	Changed bool `json:"changed"`
	// Candidates is how many replicas were eligible for this shard.
	Candidates int `json:"candidates"`
}

// Report describes one completed failover.
type Report struct {
	OldPrimary string         `json:"oldPrimary"`
	NewPrimary string         `json:"newPrimary"`
	// Epoch is the rewritten shard map's epoch (0 when the deployment
	// is unsharded and no map rewrite was needed).
	Epoch     uint64         `json:"epoch"`
	Shards    []ShardOutcome `json:"shards"`
	ElapsedMs float64        `json:"elapsedMs"`
	// Fenced reports whether the old primary has acknowledged its
	// demotion yet; false while it is still unreachable (the fencing
	// retry keeps running in the background).
	Fenced bool `json:"fenced"`
}

// Status is a point-in-time view of the coordinator, served by the
// attached server's /v1/failover/status and the /v1/stats failover
// section.
type Status struct {
	State   State  `json:"state"`
	Primary string `json:"primary"`
	// Candidates is the current replica candidate set.
	Candidates []string `json:"candidates"`
	Probes     uint64   `json:"probes"`
	ProbeFailures uint64 `json:"probeFailures"`
	// ConsecutiveFailures is the current unbroken failed-probe run.
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	Failovers           uint64 `json:"failovers"`
	LastFailover        *Report `json:"lastFailover,omitempty"`
}

// Coordinator supervises one primary. Run starts the loop; Stop ends it.
type Coordinator struct {
	opts Options
	hc   *http.Client
	logf func(string, ...any)

	mu     sync.Mutex
	st     Status
	rng    *rand.Rand
	stop   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup // background fencing retries
	started bool
	stopped bool
}

// New validates options and builds a Coordinator (not yet running).
func New(opts Options) (*Coordinator, error) {
	if opts.Primary == "" {
		return nil, fmt.Errorf("coordinator: Primary is required")
	}
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("coordinator: at least one replica candidate is required")
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 3
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.SettleWait <= 0 {
		opts.SettleWait = time.Second
	}
	if opts.Client == nil {
		//lint:quaestor ctxdeadline -- every coordinator exchange goes through roundTrip, which wraps it in a ProbeTimeout context deadline
		opts.Client = &http.Client{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Coordinator{
		opts: opts,
		hc:   opts.Client,
		logf: logf,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.st = Status{
		State:      StateWatching,
		Primary:    opts.Primary,
		Candidates: append([]string(nil), opts.Replicas...),
	}
	return c, nil
}

// Run starts the supervision loop.
func (c *Coordinator) Run() {
	c.mu.Lock()
	if c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go c.loop()
}

// Stop ends supervision and any background fencing retries, and waits
// for them.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.stopped = true
	started := c.started
	c.st.State = StateStopped
	close(c.stop)
	c.mu.Unlock()
	if started {
		<-c.done
	} else {
		close(c.done)
	}
	c.wg.Wait()
}

// Status returns a copy of the coordinator's counters and last report.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.Candidates = append([]string(nil), c.st.Candidates...)
	if c.st.LastFailover != nil {
		cp := *c.st.LastFailover
		cp.Shards = append([]ShardOutcome(nil), c.st.LastFailover.Shards...)
		st.LastFailover = &cp
	}
	return st
}

// loop is the supervision cycle: probe, back off on failure, fail over
// once the death threshold is crossed, then supervise the new primary.
func (c *Coordinator) loop() {
	defer close(c.done)
	interval := c.opts.HeartbeatInterval
	backoff := interval
	fails := 0
	for {
		primary := c.currentPrimary()
		if c.probePrimary(primary) {
			fails = 0
			backoff = interval
			c.setState(StateWatching, 0)
			if !c.sleep(c.jitter(interval)) {
				return
			}
			continue
		}
		fails++
		c.setState(StateSuspect, fails)
		if fails >= c.opts.FailureThreshold {
			c.logf("coordinator: primary %s failed %d consecutive probes; failing over", primary, fails)
			if c.failover(primary) {
				fails = 0
				backoff = interval
				continue
			}
			// No eligible candidate yet (replicas still settling or all
			// unknown-staleness): keep the primary suspect and retry the
			// whole failover after the backoff.
		}
		if !c.sleep(c.jitter(backoff)) {
			return
		}
		backoff *= 2
		if backoff > c.opts.MaxBackoff {
			backoff = c.opts.MaxBackoff
		}
	}
}

func (c *Coordinator) currentPrimary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.Primary
}

func (c *Coordinator) candidates() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.st.Candidates...)
}

func (c *Coordinator) setState(st State, consecutive int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.st.State = st
	c.st.ConsecutiveFailures = consecutive
}

// sleep waits d or until Stop; false means stopping.
func (c *Coordinator) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.stop:
		return false
	case <-t.C:
		return true
	}
}

// jitter spreads a delay ±20% so a fleet of coordinators (or retries)
// never probes in lockstep.
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 0.8 + 0.4*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// roleProbe is the part of /v1/replication/status the health probe needs:
// a healthy supervised node answers role "primary" (or, just after a
// failover, a promoted replica's state). A fenced node answering
// "demoted" is not a healthy primary.
type roleProbe struct {
	Role  string            `json:"role"`
	State replication.State `json:"state"`
}

// probePrimary performs one health probe against the supervised primary.
func (c *Coordinator) probePrimary(primary string) bool {
	c.mu.Lock()
	c.st.Probes++
	c.mu.Unlock()
	body, err := c.get(primary + "/v1/replication/status")
	ok := false
	if err == nil {
		trimmed := bytes.TrimSpace(body)
		if len(trimmed) > 0 && trimmed[0] == '[' {
			// A sharded replica's status vector: healthy as a supervision
			// target when every shard this node owns (won in the last
			// failover — or all of them, absent a report) is promoted.
			// Shards it lost to a sibling stay followers and don't count
			// against it.
			var sts []replication.Status
			if json.Unmarshal(trimmed, &sts) == nil && len(sts) > 0 {
				owned := c.ownedShards(primary)
				ok = true
				for i, st := range sts {
					idx := st.Shard
					if idx < 0 {
						idx = i
					}
					if owned != nil && !owned[idx] {
						continue
					}
					if st.State != replication.StatePromoted {
						ok = false
						break
					}
				}
			}
		} else {
			var rp roleProbe
			if json.Unmarshal(trimmed, &rp) == nil {
				ok = rp.Role == "primary" || rp.State == replication.StatePromoted
			}
		}
	}
	if !ok {
		c.mu.Lock()
		c.st.ProbeFailures++
		c.mu.Unlock()
	}
	return ok
}

// ownedShards maps the shards a node won in the last failover, or nil
// when the node isn't that failover's new primary (then every shard
// must be promoted for it to count as healthy).
func (c *Coordinator) ownedShards(primary string) map[int]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.st.LastFailover
	if r == nil || r.NewPrimary != primary {
		return nil
	}
	owned := map[int]bool{}
	for _, o := range r.Shards {
		if o.Winner == primary {
			owned[o.Shard] = true
		}
	}
	return owned
}

// candidate is one replica's per-shard intelligence at election time.
type candidate struct {
	endpoint string
	statuses []replication.Status
}

// collectIntel polls every candidate's replication status, then waits
// (bounded by SettleWait) until two consecutive polls show no applied-
// sequence advance — in-flight frames received before the primary died
// deserve to count toward the election.
func (c *Coordinator) collectIntel() []candidate {
	poll := func() []candidate {
		var out []candidate
		for _, ep := range c.candidates() {
			sts, err := c.fetchStatuses(ep)
			if err != nil {
				c.logf("coordinator: candidate %s unreachable: %v", ep, err)
				continue
			}
			out = append(out, candidate{endpoint: ep, statuses: sts})
		}
		return out
	}
	seqVector := func(cands []candidate) string {
		var b bytes.Buffer
		for _, cand := range cands {
			fmt.Fprintf(&b, "%s:", cand.endpoint)
			for _, st := range cand.statuses {
				fmt.Fprintf(&b, "%d,", st.LastSeq)
			}
		}
		return b.String()
	}
	cands := poll()
	deadline := time.Now().Add(c.opts.SettleWait)
	last := seqVector(cands)
	step := c.opts.SettleWait / 10
	if step < 5*time.Millisecond {
		step = 5 * time.Millisecond
	}
	for time.Now().Before(deadline) {
		if !c.sleep(step) {
			return cands
		}
		next := poll()
		vec := seqVector(next)
		if len(next) > 0 {
			cands = next
		}
		if vec == last && len(next) > 0 {
			break // settled: no applier advanced between polls
		}
		last = vec
	}
	return cands
}

// fetchStatuses decodes a candidate's /v1/replication/status: a sharded
// replica answers a vector (one Status per shard), an unsharded one a
// single Status.
func (c *Coordinator) fetchStatuses(endpoint string) ([]replication.Status, error) {
	body, err := c.get(endpoint + "/v1/replication/status")
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var sts []replication.Status
		if err := json.Unmarshal(trimmed, &sts); err != nil {
			return nil, err
		}
		if len(sts) == 0 {
			return nil, fmt.Errorf("empty status vector")
		}
		return sts, nil
	}
	var st replication.Status
	if err := json.Unmarshal(trimmed, &st); err != nil {
		return nil, err
	}
	if st.State == "" {
		return nil, fmt.Errorf("not a replica (role endpoint)")
	}
	return []replication.Status{st}, nil
}

// eligible reports whether one shard-status can stand for election.
// StalenessMs == -1 (unknown) is ineligible: the replica has never
// proven it held everything the primary acknowledged. Connecting is
// eligible — it is the expected state of a survivor whose primary just
// died (the follower loop is retrying a dead endpoint; its applied
// prefix is consistent) — but bootstrapping is not: mid-import the
// local state is a partial snapshot. Promoted shards are handled
// separately (they already won).
func eligible(st replication.Status) bool {
	if st.StalenessMs < 0 {
		return false
	}
	switch st.State {
	case replication.StateStreaming, replication.StateCatchingUp, replication.StateConnecting:
		return true
	default:
		return false
	}
}

// entry is one (candidate, shard-status) pair under election.
type entry struct {
	endpoint string
	st       replication.Status
	order    int // position in the candidate list: the final tiebreak
}

// electShard ranks a shard's entries: an already-promoted incumbent wins
// unconditionally (re-electing anyone else would be split-brain), then
// the furthest applied sequence, then the tightest proven staleness,
// then candidate order.
func electShard(entries []entry) (entry, bool) {
	var promoted []entry
	var elig []entry
	for _, e := range entries {
		if e.st.State == replication.StatePromoted {
			promoted = append(promoted, e)
		} else if eligible(e.st) {
			elig = append(elig, e)
		}
	}
	if len(promoted) > 0 {
		sort.SliceStable(promoted, func(i, j int) bool { return promoted[i].order < promoted[j].order })
		return promoted[0], true
	}
	if len(elig) == 0 {
		return entry{}, false
	}
	sort.SliceStable(elig, func(i, j int) bool {
		a, b := elig[i], elig[j]
		if a.st.LastSeq != b.st.LastSeq {
			return a.st.LastSeq > b.st.LastSeq
		}
		// eligible() already rejected the -1 sentinel, but the comparator
		// must not depend on its caller's filtering: an unknown bound
		// ranks behind every proven one, never as freshest.
		if (a.st.StalenessMs < 0) != (b.st.StalenessMs < 0) {
			return b.st.StalenessMs < 0
		}
		if a.st.StalenessMs != b.st.StalenessMs {
			return a.st.StalenessMs < b.st.StalenessMs
		}
		return a.order < b.order
	})
	return elig[0], true
}

// failover runs one end-to-end cutover attempt. It returns false when it
// could not complete (no eligible candidate for some shard, a promote
// rejected, no survivor reachable); every step already taken is
// idempotent, so the caller simply retries the whole attempt.
func (c *Coordinator) failover(oldPrimary string) bool {
	start := time.Now()
	c.setState(StateFailingOver, c.opts.FailureThreshold)

	cands := c.collectIntel()
	if len(cands) == 0 {
		c.logf("coordinator: no candidate reachable; retrying")
		return false
	}

	// Index intel per shard. A sharded replica reports Shard == i for
	// each loop; unsharded reports a single status with Shard == -1.
	shards := 1
	for _, cand := range cands {
		if len(cand.statuses) > shards {
			shards = len(cand.statuses)
		}
	}
	perShard := make([][]entry, shards)
	for order, cand := range cands {
		for i, st := range cand.statuses {
			idx := st.Shard
			if idx < 0 {
				idx = i
			}
			if idx >= 0 && idx < shards {
				perShard[idx] = append(perShard[idx], entry{endpoint: cand.endpoint, st: st, order: order})
			}
		}
	}

	outcomes := make([]ShardOutcome, shards)
	for i := 0; i < shards; i++ {
		win, ok := electShard(perShard[i])
		if !ok {
			c.logf("coordinator: shard %d has no eligible replica (unknown staleness is ineligible); retrying", i)
			return false
		}
		outcomes[i] = ShardOutcome{
			Shard:      i,
			Winner:     win.endpoint,
			LastSeq:    win.st.LastSeq,
			Staleness:  win.st.StalenessMs,
			Candidates: len(perShard[i]),
		}
	}

	// Promote each shard on its winner. Idempotent: a re-run after a
	// crash mid-promote reports changed=false for shards already flipped.
	sharded := shards > 1 || (len(cands) > 0 && len(cands[0].statuses) > 0 && cands[0].statuses[0].Shard >= 0)
	for i := range outcomes {
		changed, err := c.promote(outcomes[i].Winner, i, sharded)
		if err != nil {
			c.logf("coordinator: promoting shard %d on %s: %v; retrying", i, outcomes[i].Winner, err)
			return false
		}
		outcomes[i].Changed = changed
	}
	newPrimary := outcomes[0].Winner

	// Rewrite the shard map: same placement, new node list, epoch + 1.
	// Every survivor adopts it and stamps the new epoch on its next
	// response — the SDK's refresh path does the rest.
	var newEpoch uint64
	curMap, err := c.fetchMap(newPrimary)
	if err != nil {
		c.logf("coordinator: fetching shard map from %s: %v; retrying", newPrimary, err)
		return false
	}
	if curMap.Shards > 1 {
		nodes := make([]string, shards)
		for i, o := range outcomes {
			nodes[i] = o.Winner
		}
		if sameNodes(curMap.Nodes, nodes) {
			// A retried attempt: the rewrite already landed — re-pushing
			// under a fresh epoch would churn clients for nothing.
			newEpoch = curMap.Epoch
		} else {
			newEpoch = curMap.Epoch + 1
			rewritten := &cluster.ShardMap{Epoch: newEpoch, Shards: curMap.Shards, VNodes: curMap.VNodes, Nodes: nodes}
			acked := 0
			for _, cand := range cands {
				if err := c.pushMap(cand.endpoint, rewritten); err != nil {
					c.logf("coordinator: pushing map epoch %d to %s: %v", newEpoch, cand.endpoint, err)
					continue
				}
				acked++
			}
			if acked == 0 {
				return false
			}
		}
	}

	// Push the rewritten read topology: the new primary leaves the
	// replica pool (reads to it are primary reads now), every other
	// survivor keeps serving replica reads — including a split-winner
	// promoted on some shards, whose per-shard staleness admission
	// bounds reads on the shards it still follows.
	var replicas []string
	for _, cand := range cands {
		if cand.endpoint != newPrimary {
			replicas = append(replicas, cand.endpoint)
		}
	}
	for _, cand := range cands {
		if err := c.pushReplicaSet(cand.endpoint, newPrimary, replicas); err != nil {
			c.logf("coordinator: pushing topology to %s: %v", cand.endpoint, err)
		}
	}

	report := &Report{
		OldPrimary: oldPrimary,
		NewPrimary: newPrimary,
		Epoch:      newEpoch,
		Shards:     outcomes,
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	c.mu.Lock()
	c.st.Failovers++
	c.st.LastFailover = report
	c.st.Primary = newPrimary
	// Supervise the new primary; it leaves the candidate pool.
	var nextCands []string
	for _, ep := range c.st.Candidates {
		if ep != newPrimary {
			nextCands = append(nextCands, ep)
		}
	}
	c.st.Candidates = nextCands
	if !c.stopped {
		c.st.State = StateWatching
		c.st.ConsecutiveFailures = 0
	}
	stopping := c.stopped
	c.mu.Unlock()

	c.logf("coordinator: failed over %s -> %s (epoch %d) in %.0fms", oldPrimary, newPrimary, newEpoch, report.ElapsedMs)

	// Fence the old primary in the background, retrying until it
	// acknowledges (it may still be down — the point is the moment it
	// comes back).
	if !stopping {
		c.wg.Add(1)
		go c.fenceLoop(oldPrimary, newPrimary, newEpoch, report)
	}
	return true
}

// fenceLoop demotes the old primary with exponential backoff until it
// acknowledges or the coordinator stops. Success flips the report's
// Fenced flag.
func (c *Coordinator) fenceLoop(oldPrimary, newPrimary string, epoch uint64, report *Report) {
	defer c.wg.Done()
	backoff := c.opts.HeartbeatInterval
	for {
		if done := c.demote(oldPrimary, newPrimary, epoch); done {
			c.mu.Lock()
			report.Fenced = true
			c.mu.Unlock()
			c.logf("coordinator: fenced old primary %s (successor %s)", oldPrimary, newPrimary)
			return
		}
		if !c.sleep(c.jitter(backoff)) {
			return
		}
		backoff *= 2
		if backoff > c.opts.MaxBackoff {
			backoff = c.opts.MaxBackoff
		}
	}
}

// promote POSTs one shard's promote (idempotent server-side) and reports
// whether this call performed the flip.
func (c *Coordinator) promote(endpoint string, shard int, sharded bool) (changed bool, err error) {
	url := endpoint + "/v1/replication/promote"
	if sharded {
		url = fmt.Sprintf("%s?shard=%d", url, shard)
	}
	body, err := c.post(url, nil)
	if err != nil {
		return false, err
	}
	var resp struct {
		Promoted bool `json:"promoted"`
		Changed  bool `json:"changed"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return false, err
	}
	if !resp.Promoted {
		return false, fmt.Errorf("promote not acknowledged")
	}
	return resp.Changed, nil
}

// demote fences an ex-primary: true once the node acknowledged (or
// reported a state that makes fencing moot).
func (c *Coordinator) demote(endpoint, newPrimary string, epoch uint64) bool {
	payload, _ := json.Marshal(map[string]any{"primary": newPrimary, "epoch": epoch})
	_, err := c.post(endpoint+"/v1/replication/demote", payload)
	return err == nil
}

func sameNodes(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *Coordinator) fetchMap(endpoint string) (*cluster.ShardMap, error) {
	body, err := c.get(endpoint + "/v1/cluster/map")
	if err != nil {
		return nil, err
	}
	return cluster.ParseShardMap(body)
}

func (c *Coordinator) pushMap(endpoint string, m *cluster.ShardMap) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = c.post(endpoint+"/v1/cluster/map", payload)
	return err
}

func (c *Coordinator) pushReplicaSet(endpoint, primary string, replicas []string) error {
	payload, _ := json.Marshal(map[string]any{"primary": primary, "replicas": replicas})
	_, err := c.post(endpoint+"/v1/cluster/replicas", payload)
	return err
}

// get/post are the control-plane exchanges: bounded by ProbeTimeout,
// authenticated when a token is configured, error on non-2xx.
func (c *Coordinator) get(url string) ([]byte, error) {
	return c.roundTrip(http.MethodGet, url, nil)
}

func (c *Coordinator) post(url string, body []byte) ([]byte, error) {
	return c.roundTrip(http.MethodPost, url, body)
}

func (c *Coordinator) roundTrip(method, url string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.Token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(data))
	}
	return data, nil
}
