package coordinator

// Election and option-handling unit tests. The end-to-end cutover (kill
// a live sharded primary under load) lives in failover_test.go.

import (
	"strings"
	"testing"
	"time"

	"quaestor/internal/replication"
)

func status(state replication.State, seq uint64, staleMs float64) replication.Status {
	return replication.Status{State: state, LastSeq: seq, StalenessMs: staleMs}
}

// The -1 sentinel means "never proven caught up" — it must lose to any
// replica with a proven bound, no matter how far its sequence claims to
// be, and a shard with only unknown-staleness replicas has no winner.
func TestElectShardUnknownStalenessIneligible(t *testing.T) {
	win, ok := electShard([]entry{
		{endpoint: "http://far-but-unproven", st: status(replication.StateStreaming, 5000, -1), order: 0},
		{endpoint: "http://proven", st: status(replication.StateStreaming, 10, 3.5), order: 1},
	})
	if !ok || win.endpoint != "http://proven" {
		t.Fatalf("elected %q (ok=%v), want the proven replica", win.endpoint, ok)
	}

	if _, ok := electShard([]entry{
		{endpoint: "http://a", st: status(replication.StateStreaming, 100, -1), order: 0},
		{endpoint: "http://b", st: status(replication.StateBootstrapping, 200, -1), order: 1},
	}); ok {
		t.Fatal("shard with only unknown-staleness replicas must have no winner")
	}
}

// A bootstrapping replica holds a partial snapshot import and must not
// win even with a (stale) proven bound; a connecting survivor — the
// normal state after its primary died — is eligible.
func TestElectShardStateEligibility(t *testing.T) {
	if _, ok := electShard([]entry{
		{endpoint: "http://mid-import", st: status(replication.StateBootstrapping, 900, 2), order: 0},
	}); ok {
		t.Fatal("bootstrapping replica must be ineligible")
	}
	win, ok := electShard([]entry{
		{endpoint: "http://survivor", st: status(replication.StateConnecting, 42, 7), order: 0},
	})
	if !ok || win.endpoint != "http://survivor" {
		t.Fatalf("connecting survivor not elected: %q ok=%v", win.endpoint, ok)
	}
}

// An already-promoted incumbent wins unconditionally — re-electing a
// sibling with a longer log would split the brain.
func TestElectShardIncumbentWins(t *testing.T) {
	win, ok := electShard([]entry{
		{endpoint: "http://longer-log", st: status(replication.StateStreaming, 999, 0), order: 0},
		{endpoint: "http://incumbent", st: status(replication.StatePromoted, 10, 0), order: 1},
	})
	if !ok || win.endpoint != "http://incumbent" {
		t.Fatalf("elected %q, want the promoted incumbent", win.endpoint)
	}
}

// Ranking: furthest applied sequence, then tightest proven staleness,
// then candidate order.
func TestElectShardRanking(t *testing.T) {
	win, _ := electShard([]entry{
		{endpoint: "http://behind", st: status(replication.StateStreaming, 90, 1), order: 0},
		{endpoint: "http://ahead", st: status(replication.StateStreaming, 100, 50), order: 1},
	})
	if win.endpoint != "http://ahead" {
		t.Fatalf("seq must dominate staleness; elected %q", win.endpoint)
	}
	win, _ = electShard([]entry{
		{endpoint: "http://staler", st: status(replication.StateStreaming, 100, 9), order: 0},
		{endpoint: "http://fresher", st: status(replication.StateStreaming, 100, 2), order: 1},
	})
	if win.endpoint != "http://fresher" {
		t.Fatalf("staleness must break seq ties; elected %q", win.endpoint)
	}
	win, _ = electShard([]entry{
		{endpoint: "http://first", st: status(replication.StateStreaming, 100, 2), order: 0},
		{endpoint: "http://second", st: status(replication.StateStreaming, 100, 2), order: 1},
	})
	if win.endpoint != "http://first" {
		t.Fatalf("candidate order must break full ties; elected %q", win.endpoint)
	}
}

func TestNewValidatesAndDefaults(t *testing.T) {
	if _, err := New(Options{Replicas: []string{"http://r"}}); err == nil || !strings.Contains(err.Error(), "Primary") {
		t.Fatalf("missing primary: err = %v", err)
	}
	if _, err := New(Options{Primary: "http://p"}); err == nil || !strings.Contains(err.Error(), "replica") {
		t.Fatalf("missing replicas: err = %v", err)
	}
	c, err := New(Options{Primary: "http://p", Replicas: []string{"http://r"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.opts.HeartbeatInterval != 500*time.Millisecond || c.opts.FailureThreshold != 3 ||
		c.opts.ProbeTimeout != 2*time.Second || c.opts.MaxBackoff != 5*time.Second {
		t.Fatalf("defaults not applied: %+v", c.opts)
	}
	st := c.Status()
	if st.State != StateWatching || st.Primary != "http://p" {
		t.Fatalf("initial status = %+v", st)
	}
	// Stop before Run is clean (no loop to wait for).
	c.Stop()
	if got := c.Status().State; got != StateStopped {
		t.Fatalf("state after Stop = %q", got)
	}
}

func TestJitterBounds(t *testing.T) {
	c, err := New(Options{Primary: "http://p", Replicas: []string{"http://r"}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 200; i++ {
		d := c.jitter(100 * time.Millisecond)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jitter(100ms) = %v, outside ±20%%", d)
		}
	}
}

func TestSameNodes(t *testing.T) {
	if !sameNodes([]string{"a", "b"}, []string{"a", "b"}) {
		t.Error("identical lists")
	}
	if sameNodes([]string{"a", "b"}, []string{"b", "a"}) {
		t.Error("order matters: shard i's node is position i")
	}
	if sameNodes(nil, []string{"a"}) {
		t.Error("length mismatch")
	}
}
