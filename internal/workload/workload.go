// Package workload implements the YCSB-style benchmark framework the paper
// evaluates with (Section 6.1): a discrete distribution over operation
// types (reads, queries, inserts, partial updates, deletes), Zipfian
// sampling of keys/queries/tables, and dataset generators matching the
// paper's setup (10 tables × 10,000 documents, 100 distinct queries per
// table initially returning ~10 documents on average).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// OpType enumerates workload operations.
type OpType int

// Operation kinds drawn by the generator.
const (
	OpRead OpType = iota
	OpQuery
	OpInsert
	OpUpdate
	OpDelete
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpQuery:
		return "query"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Mix is a discrete operation distribution; weights need not sum to 1.
type Mix struct {
	Read, Query, Insert, Update, Delete float64
}

// ReadHeavy is the paper's headline workload: 99% reads+queries (equally
// weighted), 1% writes.
var ReadHeavy = Mix{Read: 0.495, Query: 0.495, Update: 0.01}

// total sums the weights.
func (m Mix) total() float64 { return m.Read + m.Query + m.Insert + m.Update + m.Delete }

// Sample draws one operation type using r.
func (m Mix) Sample(r *rand.Rand) OpType {
	t := m.total()
	if t <= 0 {
		return OpRead
	}
	u := r.Float64() * t
	switch {
	case u < m.Read:
		return OpRead
	case u < m.Read+m.Query:
		return OpQuery
	case u < m.Read+m.Query+m.Insert:
		return OpInsert
	case u < m.Read+m.Query+m.Insert+m.Update:
		return OpUpdate
	default:
		return OpDelete
	}
}

// Zipf samples ranks 0..n−1 with P(rank i) ∝ 1/(i+1)^s, the access skew
// model of Breslau et al. that the paper's workloads use. Unlike
// math/rand.Zipf this implementation supports any exponent s ≥ 0 (the
// paper uses both the YCSB default 0.99 and flatter distributions) and is
// deterministic given the source.
type Zipf struct {
	n   int
	s   float64
	cdf []float64 // cumulative probabilities
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{n: n, s: s, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// N returns the rank-space size.
func (z *Zipf) N() int { return z.n }

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(r *rand.Rand) int {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Dataset is a generated corpus: tables of documents plus the distinct
// query set posed against them.
type Dataset struct {
	Tables    []string
	Docs      map[string][]*document.Document // by table
	Queries   []*query.Query                  // all distinct queries
	ByTable   map[string][]*query.Query
	TagDomain int // number of distinct tag values per table
}

// DatasetConfig sizes a generated corpus.
type DatasetConfig struct {
	// Tables is the table count (paper: 10).
	Tables int
	// DocsPerTable is the documents per table (paper: 10,000).
	DocsPerTable int
	// QueriesPerTable is the distinct query count per table (paper: 100).
	QueriesPerTable int
	// MeanResultSize is the average documents per query result (paper: 10).
	MeanResultSize int
	// Seed makes generation deterministic.
	Seed int64
}

func (c *DatasetConfig) withDefaults() DatasetConfig {
	out := DatasetConfig{Tables: 10, DocsPerTable: 10000, QueriesPerTable: 100, MeanResultSize: 10, Seed: 1}
	if c == nil {
		return out
	}
	cp := *c
	if cp.Tables <= 0 {
		cp.Tables = out.Tables
	}
	if cp.DocsPerTable <= 0 {
		cp.DocsPerTable = out.DocsPerTable
	}
	if cp.QueriesPerTable <= 0 {
		cp.QueriesPerTable = out.QueriesPerTable
	}
	if cp.MeanResultSize <= 0 {
		cp.MeanResultSize = out.MeanResultSize
	}
	return cp
}

// TableName names the i-th table.
func TableName(i int) string { return fmt.Sprintf("table%02d", i) }

// DocID names the j-th document of a table.
func DocID(j int) string { return fmt.Sprintf("doc%06d", j) }

// GenerateDataset builds a corpus in which each query initially returns
// MeanResultSize documents on average: every document carries a "tag"
// drawn from a domain of DocsPerTable/MeanResultSize values, and each
// query selects one tag value — the paper's blog-post CONTAINS pattern.
func GenerateDataset(cfg *DatasetConfig) *Dataset {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	tagDomain := c.DocsPerTable / c.MeanResultSize
	if tagDomain < 1 {
		tagDomain = 1
	}
	ds := &Dataset{
		Docs:      map[string][]*document.Document{},
		ByTable:   map[string][]*query.Query{},
		TagDomain: tagDomain,
	}
	for t := 0; t < c.Tables; t++ {
		table := TableName(t)
		ds.Tables = append(ds.Tables, table)
		docs := make([]*document.Document, 0, c.DocsPerTable)
		for j := 0; j < c.DocsPerTable; j++ {
			tag := fmt.Sprintf("tag%05d", r.Intn(tagDomain))
			extra := fmt.Sprintf("tag%05d", r.Intn(tagDomain))
			docs = append(docs, document.New(DocID(j), map[string]any{
				"tags":    []any{tag, extra},
				"title":   fmt.Sprintf("Post %d in %s", j, table),
				"body":    loremBody(r),
				"author":  fmt.Sprintf("user%04d", r.Intn(1000)),
				"rating":  int64(r.Intn(100)),
				"created": int64(j),
			}))
		}
		ds.Docs[table] = docs

		queries := make([]*query.Query, 0, c.QueriesPerTable)
		for qi := 0; qi < c.QueriesPerTable; qi++ {
			tag := fmt.Sprintf("tag%05d", qi%tagDomain)
			q := query.New(table, query.Contains("tags", tag))
			queries = append(queries, q)
		}
		ds.ByTable[table] = queries
		ds.Queries = append(ds.Queries, queries...)
	}
	return ds
}

var loremWords = []string{
	"lorem", "ipsum", "dolor", "sit", "amet", "consetetur", "sadipscing",
	"elitr", "sed", "diam", "nonumy", "eirmod", "tempor", "invidunt",
	"labore", "dolore", "magna", "aliquyam", "erat", "voluptua",
}

func loremBody(r *rand.Rand) string {
	n := 8 + r.Intn(8)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += loremWords[r.Intn(len(loremWords))]
	}
	return out
}

// Op is one generated operation.
type Op struct {
	Type  OpType
	Table string
	DocID string
	Query *query.Query
	// UpdateTag is the new tag value for update operations; flipping tags
	// drives add/remove membership changes in cached queries.
	UpdateTag string
}

// Generator draws operations against a dataset with Zipf-skewed key and
// query popularity, as in the paper's setup ("requests were generated by
// first sampling a request type and then sampling the key/query and table
// to use (using a Zipfian distribution)").
type Generator struct {
	ds        *Dataset
	mix       Mix
	rand      *rand.Rand
	tableZipf *Zipf
	docZipf   *Zipf
	queryZipf *Zipf
}

// NewGenerator creates a generator. zipfS is the Zipf exponent (the paper
// uses 0.99 for the document-count experiments and a flatter default
// otherwise); seed fixes the stream.
func NewGenerator(ds *Dataset, mix Mix, zipfS float64, seed int64) *Generator {
	firstTable := ds.Tables[0]
	return &Generator{
		ds:        ds,
		mix:       mix,
		rand:      rand.New(rand.NewSource(seed)),
		tableZipf: NewZipf(len(ds.Tables), zipfS),
		docZipf:   NewZipf(len(ds.Docs[firstTable]), zipfS),
		queryZipf: NewZipf(len(ds.ByTable[firstTable]), zipfS),
	}
}

// Next draws one operation.
func (g *Generator) Next() Op {
	typ := g.mix.Sample(g.rand)
	table := g.ds.Tables[g.tableZipf.Sample(g.rand)]
	switch typ {
	case OpQuery:
		queries := g.ds.ByTable[table]
		return Op{Type: OpQuery, Table: table, Query: queries[g.queryZipf.Sample(g.rand)%len(queries)]}
	case OpRead:
		docs := g.ds.Docs[table]
		return Op{Type: OpRead, Table: table, DocID: docs[g.docZipf.Sample(g.rand)%len(docs)].ID}
	case OpUpdate:
		docs := g.ds.Docs[table]
		return Op{
			Type:      OpUpdate,
			Table:     table,
			DocID:     docs[g.docZipf.Sample(g.rand)%len(docs)].ID,
			UpdateTag: fmt.Sprintf("tag%05d", g.rand.Intn(g.ds.TagDomain)),
		}
	case OpInsert:
		return Op{
			Type:      OpInsert,
			Table:     table,
			DocID:     fmt.Sprintf("new%09d", g.rand.Int63()),
			UpdateTag: fmt.Sprintf("tag%05d", g.rand.Intn(g.ds.TagDomain)),
		}
	default:
		docs := g.ds.Docs[table]
		return Op{Type: OpDelete, Table: table, DocID: docs[g.docZipf.Sample(g.rand)%len(docs)].ID}
	}
}
