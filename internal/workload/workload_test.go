package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfDistributionShape(t *testing.T) {
	z := NewZipf(100, 0.99)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Zipf(0.99): P(0)/P(1) ≈ 2^0.99 ≈ 1.99.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("rank0/rank1 = %.2f, want ≈2", ratio)
	}
	// Rank 0 must dominate the tail.
	if counts[0] <= counts[50] {
		t.Error("no skew")
	}
	// All ranks reachable.
	if z.N() != 100 {
		t.Errorf("N = %d", z.N())
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := rand.New(rand.NewSource(2))
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for rank, c := range counts {
		if math.Abs(float64(c)-n/10) > n/50 {
			t.Errorf("rank %d count %d far from uniform %d", rank, c, n/10)
		}
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1)
	r := rand.New(rand.NewSource(3))
	if z.Sample(r) != 0 {
		t.Error("degenerate sampler should return 0")
	}
}

func TestMixSampling(t *testing.T) {
	m := Mix{Read: 0.5, Query: 0.3, Update: 0.2}
	r := rand.New(rand.NewSource(4))
	counts := map[OpType]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Sample(r)]++
	}
	if math.Abs(float64(counts[OpRead])/n-0.5) > 0.02 {
		t.Errorf("read share = %f", float64(counts[OpRead])/n)
	}
	if math.Abs(float64(counts[OpQuery])/n-0.3) > 0.02 {
		t.Errorf("query share = %f", float64(counts[OpQuery])/n)
	}
	if math.Abs(float64(counts[OpUpdate])/n-0.2) > 0.02 {
		t.Errorf("update share = %f", float64(counts[OpUpdate])/n)
	}
	if counts[OpInsert] != 0 || counts[OpDelete] != 0 {
		t.Error("zero-weight ops sampled")
	}
	// Degenerate mix defaults to reads.
	var zero Mix
	if zero.Sample(r) != OpRead {
		t.Error("zero mix should default to reads")
	}
}

func TestReadHeavyMixMatchesPaper(t *testing.T) {
	// 99% reads+queries (equally weighted), 1% writes.
	total := ReadHeavy.total()
	if math.Abs(ReadHeavy.Read/total-0.495) > 1e-9 || math.Abs(ReadHeavy.Update/total-0.01) > 1e-9 {
		t.Errorf("ReadHeavy = %+v", ReadHeavy)
	}
}

func TestGenerateDatasetShape(t *testing.T) {
	ds := GenerateDataset(&DatasetConfig{Tables: 3, DocsPerTable: 500, QueriesPerTable: 20, MeanResultSize: 10, Seed: 7})
	if len(ds.Tables) != 3 || len(ds.Queries) != 60 {
		t.Fatalf("tables=%d queries=%d", len(ds.Tables), len(ds.Queries))
	}
	for _, table := range ds.Tables {
		if len(ds.Docs[table]) != 500 {
			t.Errorf("table %s has %d docs", table, len(ds.Docs[table]))
		}
		if len(ds.ByTable[table]) != 20 {
			t.Errorf("table %s has %d queries", table, len(ds.ByTable[table]))
		}
	}
	// Mean result size should be near the target: count matches of each
	// query against its table.
	totalMatches := 0
	for _, table := range ds.Tables {
		for _, q := range ds.ByTable[table] {
			for _, d := range ds.Docs[table] {
				if q.Matches(d) {
					totalMatches++
				}
			}
		}
	}
	mean := float64(totalMatches) / float64(len(ds.Queries))
	// Documents carry 2 tags from a domain of 50 -> E[matches] ≈ 2×500/50 = 20
	// per tag; queries select single tags, so allow a broad band around the
	// structural expectation (docs/tagDomain ≤ mean ≤ 2·docs/tagDomain).
	lo := float64(500) / float64(ds.TagDomain)
	hi := 2.2 * lo
	if mean < 0.5*lo || mean > hi {
		t.Errorf("mean result size %.1f outside [%.1f, %.1f]", mean, 0.5*lo, hi)
	}
}

func TestGenerateDatasetDeterministic(t *testing.T) {
	a := GenerateDataset(&DatasetConfig{Tables: 1, DocsPerTable: 50, QueriesPerTable: 5, Seed: 9})
	b := GenerateDataset(&DatasetConfig{Tables: 1, DocsPerTable: 50, QueriesPerTable: 5, Seed: 9})
	for i, d := range a.Docs[TableName(0)] {
		if !d.Equal(b.Docs[TableName(0)][i]) {
			t.Fatalf("doc %d differs between identical seeds", i)
		}
	}
}

func TestGeneratorDeterministicAndValid(t *testing.T) {
	ds := GenerateDataset(&DatasetConfig{Tables: 2, DocsPerTable: 100, QueriesPerTable: 10, Seed: 5})
	g1 := NewGenerator(ds, ReadHeavy, 0.9, 123)
	g2 := NewGenerator(ds, ReadHeavy, 0.9, 123)
	for i := 0; i < 1000; i++ {
		op1, op2 := g1.Next(), g2.Next()
		if op1.Type != op2.Type || op1.Table != op2.Table || op1.DocID != op2.DocID {
			t.Fatalf("streams diverge at %d", i)
		}
		switch op1.Type {
		case OpQuery:
			if op1.Query == nil {
				t.Fatal("query op without query")
			}
		case OpRead, OpUpdate:
			if op1.DocID == "" {
				t.Fatal("record op without doc id")
			}
			if op1.Type == OpUpdate && op1.UpdateTag == "" {
				t.Fatal("update without tag")
			}
		}
		if ds.Docs[op1.Table] == nil {
			t.Fatalf("op against unknown table %q", op1.Table)
		}
	}
}

func TestOpTypeStrings(t *testing.T) {
	names := map[OpType]string{
		OpRead: "read", OpQuery: "query", OpInsert: "insert",
		OpUpdate: "update", OpDelete: "delete",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
}
