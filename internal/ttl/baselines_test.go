package ttl

import (
	"testing"
	"time"
)

func TestStaticPolicy(t *testing.T) {
	s := NewStatic(30 * time.Second)
	s.ObserveWrite("r1") // no-op
	if s.RecordTTL("anything") != 30*time.Second {
		t.Error("static record TTL wrong")
	}
	if s.QueryTTL("q", []string{"a", "b"}) != 30*time.Second {
		t.Error("static query TTL wrong")
	}
	if s.ObserveInvalidation("q", time.Second) != 30*time.Second {
		t.Error("static must not adapt")
	}
}

func TestAlexAgeProportional(t *testing.T) {
	c := newFakeClock()
	a := NewAlex(0.2, c.Now)
	a.MinTTL = time.Millisecond
	a.ObserveWrite("r1")
	c.Advance(100 * time.Second)
	// TTL = 20% of 100s = 20s.
	got := a.RecordTTL("r1")
	if got != 20*time.Second {
		t.Errorf("Alex TTL = %v, want 20s", got)
	}
	// Older objects get longer TTLs — the protocol's defining behaviour.
	c.Advance(400 * time.Second)
	if a.RecordTTL("r1") <= got {
		t.Error("Alex TTL should grow with age")
	}
}

func TestAlexCapsAndUnknowns(t *testing.T) {
	c := newFakeClock()
	a := NewAlex(0.2, c.Now)
	a.MaxTTL = time.Minute
	// Never-modified objects fall back to the cap — Alex cannot estimate
	// new objects (the weakness the paper notes).
	if a.RecordTTL("unknown") != time.Minute {
		t.Error("unknown record should get MaxTTL")
	}
	a.ObserveWrite("r1")
	c.Advance(10 * time.Hour)
	if a.RecordTTL("r1") != time.Minute {
		t.Error("cap not applied")
	}
	// Freshly modified: clamped up to MinTTL.
	a.ObserveWrite("r2")
	if got := a.RecordTTL("r2"); got != a.MinTTL {
		t.Errorf("fresh record TTL = %v, want MinTTL", got)
	}
}

func TestAlexQueryUsesNewestMember(t *testing.T) {
	c := newFakeClock()
	a := NewAlex(0.5, c.Now)
	a.MinTTL = time.Millisecond
	a.ObserveWrite("old")
	c.Advance(100 * time.Second)
	a.ObserveWrite("new")
	c.Advance(10 * time.Second)
	// Newest member is 10s old -> TTL = 5s (not 55s from the old member).
	if got := a.QueryTTL("q", []string{"old", "new"}); got != 5*time.Second {
		t.Errorf("query TTL = %v, want 5s", got)
	}
	if a.QueryTTL("q", []string{"neither"}) != a.MaxTTL {
		t.Error("all-unknown query should get MaxTTL")
	}
}

func TestPolicyInterfaceSatisfied(t *testing.T) {
	c := newFakeClock()
	policies := []Policy{
		NewEstimator(&Config{Clock: c.Now}),
		NewStatic(time.Second),
		NewAlex(0.2, c.Now),
	}
	for _, p := range policies {
		p.ObserveWrite("k")
		if p.RecordTTL("k") <= 0 {
			t.Errorf("%T returned non-positive TTL", p)
		}
	}
}
