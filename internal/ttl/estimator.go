// Package ttl implements Quaestor's statistical TTL estimation
// (Section 4.2) and the shared active list of cached queries.
//
// The model: writes to each record form a Poisson process with arrival
// rate λw, estimated by sampling incoming updates over a sliding window.
// A query result over records with rates λ1..λn changes when the *first*
// of the corresponding exponential inter-arrival variables fires, which is
// again exponential with λmin = λ1+…+λn. The TTL with probability p of
// seeing no write before expiration is the quantile
//
//	F⁻¹(p, λmin) = −ln(1−p) / λmin            (Equation 1)
//
// After a query result is invalidated, the *actual* TTL (invalidation time
// minus previous read time) feeds an exponentially weighted moving average
//
//	TTL ← α·TTL_old + (1−α)·TTL_actual        (Equation 2)
//
// so estimates converge towards the true TTL with some lag.
package ttl

import (
	"math"
	"sync"
	"time"
)

// Config tunes the estimator.
type Config struct {
	// Quantile p: probability that no write occurs before the TTL expires.
	// Higher p gives shorter TTLs (fewer invalidations, lower hit rates).
	// Default 0.7.
	Quantile float64
	// Alpha is the EWMA weight on the old estimate (Equation 2). Default 0.5.
	Alpha float64
	// Window is the write-rate sampling window. Default 5 minutes.
	Window time.Duration
	// MinTTL / MaxTTL clamp all estimates. Defaults 1s and 1h.
	MinTTL time.Duration
	MaxTTL time.Duration
	// DefaultTTL is used when no write has ever been observed for any
	// record involved (rate 0 — infinite estimate). Default = MaxTTL.
	DefaultTTL time.Duration
	// Clock supplies time; defaults to time.Now.
	Clock func() time.Time
}

func (c *Config) withDefaults() Config {
	out := Config{
		Quantile: 0.7,
		Alpha:    0.5,
		Window:   5 * time.Minute,
		MinTTL:   time.Second,
		MaxTTL:   time.Hour,
		Clock:    time.Now,
	}
	if c == nil {
		out.DefaultTTL = out.MaxTTL
		return out
	}
	if c.Quantile > 0 && c.Quantile < 1 {
		out.Quantile = c.Quantile
	}
	if c.Alpha > 0 && c.Alpha < 1 {
		out.Alpha = c.Alpha
	}
	if c.Window > 0 {
		out.Window = c.Window
	}
	if c.MinTTL > 0 {
		out.MinTTL = c.MinTTL
	}
	if c.MaxTTL > 0 {
		out.MaxTTL = c.MaxTTL
	}
	if c.DefaultTTL > 0 {
		out.DefaultTTL = c.DefaultTTL
	} else {
		out.DefaultTTL = out.MaxTTL
	}
	if c.Clock != nil {
		out.Clock = c.Clock
	}
	return out
}

// rateWindow tracks write timestamps for one record inside the sliding
// window using two alternating buckets, giving O(1) updates and a smooth
// estimate without storing every event.
type rateWindow struct {
	curStart time.Time
	curCount int
	prvCount int
}

// observe registers one write at time now for a window of length w.
func (r *rateWindow) observe(now time.Time, w time.Duration) {
	r.roll(now, w)
	r.curCount++
}

func (r *rateWindow) roll(now time.Time, w time.Duration) {
	if r.curStart.IsZero() {
		r.curStart = now
		return
	}
	elapsed := now.Sub(r.curStart)
	switch {
	case elapsed < w:
		// still in current bucket
	case elapsed < 2*w:
		r.prvCount = r.curCount
		r.curCount = 0
		r.curStart = r.curStart.Add(w)
	default:
		r.prvCount = 0
		r.curCount = 0
		r.curStart = now
	}
}

// rate estimates writes/second: current bucket plus the linearly decayed
// fraction of the previous bucket.
func (r *rateWindow) rate(now time.Time, w time.Duration) float64 {
	r.roll(now, w)
	if r.curStart.IsZero() {
		return 0
	}
	frac := float64(now.Sub(r.curStart)) / float64(w)
	if frac > 1 {
		frac = 1
	}
	weighted := float64(r.curCount) + float64(r.prvCount)*(1-frac)
	return weighted / w.Seconds()
}

// Estimator derives TTLs for records and queries. Safe for concurrent use.
type Estimator struct {
	cfg Config

	mu    sync.Mutex
	rates map[string]*rateWindow // record key -> write-rate window
	ewma  map[string]float64     // query key -> EWMA TTL estimate (seconds)
}

// NewEstimator creates an estimator. A nil cfg uses defaults.
func NewEstimator(cfg *Config) *Estimator {
	return &Estimator{
		cfg:   cfg.withDefaults(),
		rates: map[string]*rateWindow{},
		ewma:  map[string]float64{},
	}
}

// Config returns the effective configuration.
func (e *Estimator) Config() Config { return e.cfg }

// ObserveWrite samples one write to a record ("for each database record,
// QUAESTOR can estimate (through sampling) the rate of incoming writes λw
// in some time window t").
func (e *Estimator) ObserveWrite(recordKey string) {
	now := e.cfg.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.rates[recordKey]
	if !ok {
		r = &rateWindow{}
		e.rates[recordKey] = r
	}
	r.observe(now, e.cfg.Window)
}

// WriteRate returns the estimated writes/second for a record.
func (e *Estimator) WriteRate(recordKey string) float64 {
	now := e.cfg.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.rates[recordKey]
	if !ok {
		return 0
	}
	return r.rate(now, e.cfg.Window)
}

// clamp bounds a TTL into [MinTTL, MaxTTL].
func (e *Estimator) clamp(d time.Duration) time.Duration {
	if d < e.cfg.MinTTL {
		return e.cfg.MinTTL
	}
	if d > e.cfg.MaxTTL {
		return e.cfg.MaxTTL
	}
	return d
}

// quantileTTL computes Equation 1 for a summed rate λmin.
func (e *Estimator) quantileTTL(lambda float64) time.Duration {
	if lambda <= 0 {
		return e.clamp(e.cfg.DefaultTTL)
	}
	seconds := -math.Log(1-e.cfg.Quantile) / lambda
	return e.clamp(time.Duration(seconds * float64(time.Second)))
}

// RecordTTL estimates the expiration for a single record from its write
// rate ("for individual records, we always use an estimate based on the
// approximated write-rates").
func (e *Estimator) RecordTTL(recordKey string) time.Duration {
	return e.quantileTTL(e.WriteRate(recordKey))
}

// QueryTTL estimates the expiration for a query result. If an EWMA estimate
// exists from previous invalidations it wins; otherwise the initial Poisson
// estimate over the result set's record keys applies (λmin = Σ λi).
func (e *Estimator) QueryTTL(queryKey string, resultRecordKeys []string) time.Duration {
	e.mu.Lock()
	if est, ok := e.ewma[queryKey]; ok {
		e.mu.Unlock()
		return e.clamp(time.Duration(est * float64(time.Second)))
	}
	e.mu.Unlock()

	now := e.cfg.Clock()
	var lambda float64
	e.mu.Lock()
	for _, k := range resultRecordKeys {
		if r, ok := e.rates[k]; ok {
			lambda += r.rate(now, e.cfg.Window)
		}
	}
	e.mu.Unlock()
	return e.quantileTTL(lambda)
}

// ObserveInvalidation feeds the actual observed TTL of a query (time from
// the previous read to the invalidation) into the per-query EWMA
// (Equation 2) and returns the updated estimate.
func (e *Estimator) ObserveInvalidation(queryKey string, actual time.Duration) time.Duration {
	actualSec := actual.Seconds()
	if actualSec < 0 {
		actualSec = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	old, ok := e.ewma[queryKey]
	var next float64
	if !ok {
		next = actualSec
	} else {
		next = e.cfg.Alpha*old + (1-e.cfg.Alpha)*actualSec
	}
	e.ewma[queryKey] = next
	return e.clamp(time.Duration(next * float64(time.Second)))
}

// EstimateSnapshot returns the current EWMA estimate for a query in
// seconds, and whether one exists. Used by the evaluation harness
// (Figure 11's estimated-TTL CDF).
func (e *Estimator) EstimateSnapshot(queryKey string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	est, ok := e.ewma[queryKey]
	return est, ok
}

// Forget drops all state for a query (e.g. when it is evicted from the
// active list).
func (e *Estimator) Forget(queryKey string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.ewma, queryKey)
}

// TrackedRecords returns how many record rate windows are live.
func (e *Estimator) TrackedRecords() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.rates)
}
