package ttl

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestEstimator(c *fakeClock, cfg *Config) *Estimator {
	if cfg == nil {
		cfg = &Config{}
	}
	cfg.Clock = c.Now
	return NewEstimator(cfg)
}

func TestWriteRateEstimation(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, &Config{Window: 10 * time.Second})
	// 20 writes over 10 seconds -> ~2 writes/s.
	for i := 0; i < 20; i++ {
		e.ObserveWrite("r1")
		c.Advance(500 * time.Millisecond)
	}
	rate := e.WriteRate("r1")
	if rate < 1.0 || rate > 3.0 {
		t.Errorf("rate = %.2f, want ~2", rate)
	}
	if e.WriteRate("never-written") != 0 {
		t.Error("unknown record should have rate 0")
	}
}

func TestWriteRateDecays(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, &Config{Window: 5 * time.Second})
	for i := 0; i < 10; i++ {
		e.ObserveWrite("r1")
	}
	if e.WriteRate("r1") <= 0 {
		t.Fatal("rate should be positive right after writes")
	}
	// Far beyond two windows: the estimate must drop to zero.
	c.Advance(time.Minute)
	if rate := e.WriteRate("r1"); rate != 0 {
		t.Errorf("stale rate = %.3f, want 0", rate)
	}
}

func TestQuantileTTLFormula(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, &Config{
		Quantile: 0.7,
		Window:   10 * time.Second,
		MinTTL:   time.Millisecond,
		MaxTTL:   24 * time.Hour,
	})
	// Drive a known write rate λ≈1/s on each of three records.
	keys := []string{"t/a", "t/b", "t/c"}
	for i := 0; i < 10; i++ {
		for _, k := range keys {
			e.ObserveWrite(k)
		}
		c.Advance(time.Second)
	}
	// λmin ≈ 3/s, F⁻¹(0.7, 3) = −ln(0.3)/3 ≈ 0.401 s.
	got := e.QueryTTL("q1", keys)
	want := -math.Log(1-0.7) / 3.0
	if math.Abs(got.Seconds()-want) > want {
		t.Errorf("query TTL = %v, want ≈ %.3fs", got, want)
	}
	// Single record: λ≈1/s → −ln(0.3)/1 ≈ 1.204 s.
	single := e.RecordTTL("t/a")
	wantSingle := -math.Log(1 - 0.7)
	if math.Abs(single.Seconds()-wantSingle) > wantSingle {
		t.Errorf("record TTL = %v, want ≈ %.3fs", single, wantSingle)
	}
	// More writers => shorter TTLs (monotonicity of Equation 1).
	if got >= single {
		t.Errorf("query TTL (%v) should be below single-record TTL (%v)", got, single)
	}
}

func TestDefaultTTLWhenNoWrites(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, &Config{DefaultTTL: 7 * time.Minute, MaxTTL: time.Hour})
	if got := e.RecordTTL("quiet"); got != 7*time.Minute {
		t.Errorf("default TTL = %v", got)
	}
	if got := e.QueryTTL("q", []string{"quiet"}); got != 7*time.Minute {
		t.Errorf("query default TTL = %v", got)
	}
}

func TestTTLClamping(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, &Config{MinTTL: 2 * time.Second, MaxTTL: 30 * time.Second, Window: time.Second})
	// Extremely hot record: hundreds of writes per second.
	for i := 0; i < 500; i++ {
		e.ObserveWrite("hot")
		c.Advance(time.Millisecond)
	}
	if got := e.RecordTTL("hot"); got < 2*time.Second {
		t.Errorf("TTL %v below MinTTL", got)
	}
	// Idle record gets DefaultTTL = MaxTTL.
	if got := e.RecordTTL("cold"); got > 30*time.Second {
		t.Errorf("TTL %v above MaxTTL", got)
	}
}

func TestEWMAEquation(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, &Config{Alpha: 0.5, MinTTL: time.Millisecond, MaxTTL: time.Hour})
	// First observation seeds the EWMA directly.
	got := e.ObserveInvalidation("q1", 10*time.Second)
	if got != 10*time.Second {
		t.Errorf("seed = %v", got)
	}
	// TTL ← 0.5·10 + 0.5·20 = 15.
	got = e.ObserveInvalidation("q1", 20*time.Second)
	if math.Abs(got.Seconds()-15) > 0.01 {
		t.Errorf("EWMA = %v, want 15s", got)
	}
	// TTL ← 0.5·15 + 0.5·5 = 10.
	got = e.ObserveInvalidation("q1", 5*time.Second)
	if math.Abs(got.Seconds()-10) > 0.01 {
		t.Errorf("EWMA = %v, want 10s", got)
	}
	// QueryTTL must now prefer the EWMA over the Poisson estimate.
	if got := e.QueryTTL("q1", nil); math.Abs(got.Seconds()-10) > 0.01 {
		t.Errorf("QueryTTL after EWMA = %v", got)
	}
	if est, ok := e.EstimateSnapshot("q1"); !ok || math.Abs(est-10) > 0.01 {
		t.Errorf("EstimateSnapshot = %v, %v", est, ok)
	}
}

func TestEWMAConvergesToTrueTTL(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, &Config{Alpha: 0.5, MinTTL: time.Millisecond, MaxTTL: time.Hour})
	e.ObserveInvalidation("q1", 100*time.Second) // way off
	var got time.Duration
	for i := 0; i < 20; i++ {
		got = e.ObserveInvalidation("q1", 10*time.Second) // true TTL 10s
	}
	if math.Abs(got.Seconds()-10) > 0.1 {
		t.Errorf("EWMA did not converge: %v", got)
	}
}

func TestNegativeActualClampedToZero(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, nil)
	got := e.ObserveInvalidation("q1", -5*time.Second)
	if got != e.Config().MinTTL {
		t.Errorf("negative actual should clamp: %v", got)
	}
}

func TestForget(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, nil)
	e.ObserveInvalidation("q1", 5*time.Second)
	e.Forget("q1")
	if _, ok := e.EstimateSnapshot("q1"); ok {
		t.Error("forgotten query still has an estimate")
	}
}

func TestTrackedRecords(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, nil)
	for i := 0; i < 4; i++ {
		e.ObserveWrite(fmt.Sprintf("r%d", i))
	}
	if n := e.TrackedRecords(); n != 4 {
		t.Errorf("TrackedRecords = %d", n)
	}
}

func TestEstimatorConcurrency(t *testing.T) {
	c := newFakeClock()
	e := newTestEstimator(c, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := fmt.Sprintf("r%d", id%3)
			for i := 0; i < 200; i++ {
				e.ObserveWrite(key)
				_ = e.WriteRate(key)
				_ = e.QueryTTL("q", []string{key})
				e.ObserveInvalidation("q", time.Second)
			}
		}(w)
	}
	wg.Wait()
}
