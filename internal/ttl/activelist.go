package ttl

import (
	"hash/fnv"
	"sync"
	"time"
)

// Representation selects how a cached query result is materialized
// (Section 4.2 "Representing Query Results").
type Representation int

const (
	// ObjectList caches the full documents with the query: one round-trip,
	// but the result invalidates on add, remove AND change events.
	ObjectList Representation = iota
	// IDList caches only the record URLs: more round-trips to assemble, but
	// only membership changes (add/remove) invalidate the result, and the
	// per-record entries get cache hits "by side effect".
	IDList
)

// String implements fmt.Stringer.
func (r Representation) String() string {
	if r == IDList {
		return "id-list"
	}
	return "object-list"
}

// Entry is the active list's bookkeeping for one cached query ("the current
// TTL estimate for a query is kept in a shared partitioned data structure
// called the active list, which is accessed by all QUAESTOR nodes").
type Entry struct {
	QueryKey string
	// LastReadAt is the timestamp of the most recent (re)read; the actual
	// TTL at invalidation time is Invalidation − LastReadAt.
	LastReadAt time.Time
	// TTL is the expiration issued at the last read.
	TTL time.Duration
	// ResultKeys are the record keys of the current result set.
	ResultKeys []string
	// Representation chosen at last read.
	Representation Representation
	// Reads and Invalidations count activity for capacity scoring.
	Reads         uint64
	Invalidations uint64
}

// ActiveList is the shared, hash-partitioned registry of currently cached
// queries, combined with the capacity management model (Section 4.1: "only
// queries that are sufficiently cachable are admitted and prioritized based
// on the costs of maintaining them").
type ActiveList struct {
	parts    []*alPart
	capacity int // maximum admitted queries; 0 = unlimited
	clock    func() time.Time

	// admitMu serializes the admission decision so the capacity bound is
	// strict even under concurrent admissions; total mirrors the summed
	// partition sizes.
	admitMu sync.Mutex
	total   int
}

type alPart struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// NewActiveList creates a list with the given partition count and admission
// capacity (0 = unlimited).
func NewActiveList(partitions, capacity int, clock func() time.Time) *ActiveList {
	if partitions < 1 {
		partitions = 1
	}
	if clock == nil {
		clock = time.Now
	}
	al := &ActiveList{parts: make([]*alPart, partitions), capacity: capacity, clock: clock}
	for i := range al.parts {
		al.parts[i] = &alPart{entries: map[string]*Entry{}}
	}
	return al
}

func (al *ActiveList) part(key string) *alPart {
	h := fnv.New32a()
	h.Write([]byte(key))
	return al.parts[h.Sum32()%uint32(len(al.parts))]
}

// Len returns the total number of active queries.
func (al *ActiveList) Len() int {
	n := 0
	for _, p := range al.parts {
		p.mu.Lock()
		n += len(p.entries)
		p.mu.Unlock()
	}
	return n
}

// Admit registers (or refreshes) a query read, recording the issued TTL,
// result keys and representation. It reports whether the query is admitted
// to caching: when the list is at capacity, the query must beat the
// lowest-value resident, which is then evicted.
//
// The value metric is reads per invalidation — a direct proxy for the
// cache hit benefit versus the maintenance cost of matching the query in
// InvaliDB and purging caches.
func (al *ActiveList) Admit(queryKey string, ttl time.Duration, resultKeys []string, rep Representation) bool {
	p := al.part(queryKey)
	now := al.clock()
	p.mu.Lock()
	e, resident := p.entries[queryKey]
	if resident {
		e.LastReadAt = now
		e.TTL = ttl
		e.ResultKeys = resultKeys
		e.Representation = rep
		e.Reads++
		p.mu.Unlock()
		return true
	}
	p.mu.Unlock()

	al.admitMu.Lock()
	defer al.admitMu.Unlock()
	// Re-check residency: a concurrent Admit may have inserted the key.
	p.mu.Lock()
	if e, resident := p.entries[queryKey]; resident {
		e.Reads++
		p.mu.Unlock()
		return true
	}
	p.mu.Unlock()
	if al.capacity > 0 && al.total >= al.capacity {
		if !al.evictWorseThan(1.0) {
			return false
		}
		al.total--
	}
	p.mu.Lock()
	p.entries[queryKey] = &Entry{
		QueryKey:       queryKey,
		LastReadAt:     now,
		TTL:            ttl,
		ResultKeys:     resultKeys,
		Representation: rep,
		Reads:          1,
	}
	p.mu.Unlock()
	al.total++
	return true
}

// evictWorseThan removes the globally lowest-scoring entry if its score is
// below threshold, returning whether an eviction happened.
func (al *ActiveList) evictWorseThan(threshold float64) bool {
	var victimPart *alPart
	var victimKey string
	victimScore := threshold
	for _, p := range al.parts {
		p.mu.Lock()
		for k, e := range p.entries {
			s := score(e)
			if victimKey == "" || s < victimScore {
				victimScore = s
				victimKey = k
				victimPart = p
			}
		}
		p.mu.Unlock()
	}
	if victimPart == nil || victimKey == "" {
		return false
	}
	victimPart.mu.Lock()
	defer victimPart.mu.Unlock()
	if _, ok := victimPart.entries[victimKey]; !ok {
		return false
	}
	delete(victimPart.entries, victimKey)
	return true
}

// score is reads per invalidation (a never-invalidated query scores as its
// raw read count).
func score(e *Entry) float64 {
	if e.Invalidations == 0 {
		return float64(e.Reads)
	}
	return float64(e.Reads) / float64(e.Invalidations)
}

// Get returns a copy of an entry, and whether the query is active.
func (al *ActiveList) Get(queryKey string) (Entry, bool) {
	p := al.part(queryKey)
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[queryKey]
	if !ok {
		return Entry{}, false
	}
	cp := *e
	cp.ResultKeys = append([]string(nil), e.ResultKeys...)
	return cp, true
}

// Invalidated records that a query's cached result just became stale and
// returns the entry's actual TTL (invalidation − last read) for the EWMA
// update, plus whether the query was active.
func (al *ActiveList) Invalidated(queryKey string) (actual time.Duration, wasActive bool) {
	p := al.part(queryKey)
	now := al.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[queryKey]
	if !ok {
		return 0, false
	}
	e.Invalidations++
	return now.Sub(e.LastReadAt), true
}

// UpdateResult replaces the tracked result keys after a membership change.
func (al *ActiveList) UpdateResult(queryKey string, resultKeys []string) {
	p := al.part(queryKey)
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[queryKey]; ok {
		e.ResultKeys = resultKeys
	}
}

// Remove deletes a query from the active list.
func (al *ActiveList) Remove(queryKey string) {
	al.admitMu.Lock()
	defer al.admitMu.Unlock()
	p := al.part(queryKey)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.entries[queryKey]; ok {
		delete(p.entries, queryKey)
		al.total--
	}
}

// Keys returns all active query keys (unordered).
func (al *ActiveList) Keys() []string {
	var out []string
	for _, p := range al.parts {
		p.mu.Lock()
		for k := range p.entries {
			out = append(out, k)
		}
		p.mu.Unlock()
	}
	return out
}

// RepresentationCost captures the inputs to the id-list vs object-list
// decision model.
type RepresentationCost struct {
	// ResultSize is the number of records in the result.
	ResultSize int
	// ChangeRate is the summed write rate (writes/s) of the result's
	// records — drives object-list invalidations.
	ChangeRate float64
	// MembershipRate is the estimated rate of add/remove membership changes
	// — invalidates both representations.
	MembershipRate float64
	// RecordHitRate is the probability a per-record fetch hits a cache when
	// assembling an id-list result.
	RecordHitRate float64
	// RoundTripCost and InvalidationCost weight one extra client round-trip
	// against one cache purge + recomputation, in arbitrary common units.
	RoundTripCost    float64
	InvalidationCost float64
}

// ChooseRepresentation implements the paper's cost-based decision between
// object-lists and id-lists: "a cost-based decision model in order to weigh
// fewer invalidations against fewer round-trips".
//
// Object-list pays invalidations at the full change rate (add/remove/change)
// but assembles in one round-trip. Id-list pays invalidations only for
// membership changes (add/remove) but needs one extra round-trip per
// missing record. Choose the representation with lower expected cost per
// cache lifetime.
func ChooseRepresentation(c RepresentationCost) Representation {
	if c.RoundTripCost <= 0 {
		c.RoundTripCost = 1
	}
	if c.InvalidationCost <= 0 {
		c.InvalidationCost = 1
	}
	if c.RecordHitRate < 0 {
		c.RecordHitRate = 0
	}
	if c.RecordHitRate > 1 {
		c.RecordHitRate = 1
	}
	objectCost := c.ChangeRate * c.InvalidationCost
	extraFetches := float64(c.ResultSize) * (1 - c.RecordHitRate)
	idCost := c.MembershipRate*c.InvalidationCost + extraFetches*c.RoundTripCost
	if idCost < objectCost {
		return IDList
	}
	return ObjectList
}
