package ttl

import (
	"sync"
	"time"
)

// This file implements the TTL-estimation baselines the paper positions
// itself against (Section 7 "Expiration-Based Caching"), so the estimator
// comparison can be reproduced:
//
//   - Static: one fixed application-defined TTL for everything — the
//     straw-man of Section 3 ("either many stale reads will occur when the
//     TTL is too high, or cache hit ratios will suffer when the TTL is too
//     low").
//   - Alex: the Alex FTP-cache protocol (Gwertzman & Seltzer; Cate 1992):
//     TTL = Percentage × (now − last modification), capped by an upper
//     bound. "Similar to QUAESTOR's TTL update strategy for queries but
//     has the downside of neither converging to the actual TTL nor being
//     able to give estimates for new queries."

// Policy is the common surface of TTL estimation strategies, satisfied by
// *Estimator (Quaestor), *Static and *Alex.
type Policy interface {
	// ObserveWrite samples one write to a record key.
	ObserveWrite(recordKey string)
	// RecordTTL estimates the expiration for a record.
	RecordTTL(recordKey string) time.Duration
	// QueryTTL estimates the expiration for a query over the given record
	// keys.
	QueryTTL(queryKey string, resultRecordKeys []string) time.Duration
	// ObserveInvalidation feeds back an observed actual TTL.
	ObserveInvalidation(queryKey string, actual time.Duration) time.Duration
}

var (
	_ Policy = (*Estimator)(nil)
	_ Policy = (*Static)(nil)
	_ Policy = (*Alex)(nil)
)

// Static assigns one constant TTL to every record and query.
type Static struct {
	// TTL is the fixed expiration.
	TTL time.Duration
}

// NewStatic creates the fixed-TTL straw man.
func NewStatic(ttl time.Duration) *Static { return &Static{TTL: ttl} }

// ObserveWrite implements Policy (no-op: static TTLs ignore workload).
func (s *Static) ObserveWrite(string) {}

// RecordTTL implements Policy.
func (s *Static) RecordTTL(string) time.Duration { return s.TTL }

// QueryTTL implements Policy.
func (s *Static) QueryTTL(string, []string) time.Duration { return s.TTL }

// ObserveInvalidation implements Policy (static TTLs never adapt).
func (s *Static) ObserveInvalidation(string, time.Duration) time.Duration { return s.TTL }

// Alex implements the Alex protocol: the TTL is a fixed percentage of the
// object's age since its last modification, clamped to [MinTTL, MaxTTL].
type Alex struct {
	// Percentage of the time since last modification (default 0.2, the
	// classical choice).
	Percentage float64
	// MinTTL/MaxTTL clamp estimates (defaults 1s / 1h).
	MinTTL time.Duration
	MaxTTL time.Duration
	// Clock supplies time (default time.Now).
	Clock func() time.Time

	mu       sync.Mutex
	modified map[string]time.Time
}

// NewAlex creates an Alex-protocol estimator.
func NewAlex(percentage float64, clock func() time.Time) *Alex {
	if percentage <= 0 {
		percentage = 0.2
	}
	if clock == nil {
		clock = time.Now
	}
	return &Alex{
		Percentage: percentage,
		MinTTL:     time.Second,
		MaxTTL:     time.Hour,
		Clock:      clock,
		modified:   map[string]time.Time{},
	}
}

// ObserveWrite records the modification time.
func (a *Alex) ObserveWrite(recordKey string) {
	a.mu.Lock()
	a.modified[recordKey] = a.Clock()
	a.mu.Unlock()
}

func (a *Alex) clamp(d time.Duration) time.Duration {
	if d < a.MinTTL {
		return a.MinTTL
	}
	if d > a.MaxTTL {
		return a.MaxTTL
	}
	return d
}

// RecordTTL implements Policy: Percentage × age-since-modification.
func (a *Alex) RecordTTL(recordKey string) time.Duration {
	now := a.Clock()
	a.mu.Lock()
	mod, ok := a.modified[recordKey]
	a.mu.Unlock()
	if !ok {
		// Alex cannot estimate never-modified objects; it falls back to the
		// cap — exactly the weakness the paper calls out.
		return a.MaxTTL
	}
	return a.clamp(time.Duration(a.Percentage * float64(now.Sub(mod))))
}

// QueryTTL implements Policy: the most recently modified member governs.
func (a *Alex) QueryTTL(_ string, resultRecordKeys []string) time.Duration {
	now := a.Clock()
	a.mu.Lock()
	var newest time.Time
	known := false
	for _, k := range resultRecordKeys {
		if mod, ok := a.modified[k]; ok {
			known = true
			if mod.After(newest) {
				newest = mod
			}
		}
	}
	a.mu.Unlock()
	if !known {
		return a.MaxTTL
	}
	return a.clamp(time.Duration(a.Percentage * float64(now.Sub(newest))))
}

// ObserveInvalidation implements Policy. Alex does not learn from
// invalidations; the estimate stays age-based.
func (a *Alex) ObserveInvalidation(queryKey string, actual time.Duration) time.Duration {
	return a.clamp(actual)
}
