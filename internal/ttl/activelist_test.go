package ttl

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestActiveListAdmitAndGet(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(4, 0, c.Now)
	if !al.Admit("q1", 10*time.Second, []string{"t/a", "t/b"}, ObjectList) {
		t.Fatal("admission to empty list failed")
	}
	e, ok := al.Get("q1")
	if !ok {
		t.Fatal("entry missing")
	}
	if e.TTL != 10*time.Second || len(e.ResultKeys) != 2 || e.Representation != ObjectList {
		t.Errorf("entry = %+v", e)
	}
	if al.Len() != 1 {
		t.Errorf("Len = %d", al.Len())
	}
	if _, ok := al.Get("missing"); ok {
		t.Error("missing query reported present")
	}
}

func TestActiveListReadRefreshes(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(4, 0, c.Now)
	al.Admit("q1", 5*time.Second, []string{"a"}, ObjectList)
	c.Advance(3 * time.Second)
	al.Admit("q1", 8*time.Second, []string{"a", "b"}, IDList)
	e, _ := al.Get("q1")
	if e.Reads != 2 {
		t.Errorf("Reads = %d", e.Reads)
	}
	if !e.LastReadAt.Equal(c.Now()) {
		t.Error("LastReadAt not refreshed")
	}
	if e.Representation != IDList || e.TTL != 8*time.Second {
		t.Errorf("entry not updated: %+v", e)
	}
}

func TestInvalidatedReturnsActualTTL(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(4, 0, c.Now)
	al.Admit("q1", 30*time.Second, nil, ObjectList)
	c.Advance(7 * time.Second)
	actual, active := al.Invalidated("q1")
	if !active {
		t.Fatal("query should be active")
	}
	if actual != 7*time.Second {
		t.Errorf("actual TTL = %v, want 7s (invalidation − last read)", actual)
	}
	if _, active := al.Invalidated("missing"); active {
		t.Error("missing query reported active")
	}
	e, _ := al.Get("q1")
	if e.Invalidations != 1 {
		t.Errorf("Invalidations = %d", e.Invalidations)
	}
}

func TestCapacityEvictsLowestValue(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(4, 2, c.Now)
	al.Admit("good", time.Second, nil, ObjectList)
	al.Admit("bad", time.Second, nil, ObjectList)
	// "good" earns many reads per invalidation; "bad" is churn-heavy.
	for i := 0; i < 10; i++ {
		al.Admit("good", time.Second, nil, ObjectList)
	}
	for i := 0; i < 10; i++ {
		al.Invalidated("bad")
	}
	// A third query must displace "bad" (score 1/10), not "good" (score 11).
	if !al.Admit("new", time.Second, nil, ObjectList) {
		t.Fatal("admission should evict the lowest-value query")
	}
	if _, ok := al.Get("bad"); ok {
		t.Error("churn-heavy query survived eviction")
	}
	if _, ok := al.Get("good"); !ok {
		t.Error("valuable query was evicted")
	}
	if al.Len() != 2 {
		t.Errorf("Len = %d", al.Len())
	}
}

func TestUpdateResultAndRemove(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(4, 0, c.Now)
	al.Admit("q1", time.Second, []string{"a"}, ObjectList)
	al.UpdateResult("q1", []string{"a", "b", "c"})
	e, _ := al.Get("q1")
	if len(e.ResultKeys) != 3 {
		t.Errorf("ResultKeys = %v", e.ResultKeys)
	}
	al.Remove("q1")
	if _, ok := al.Get("q1"); ok {
		t.Error("removed query still present")
	}
	al.UpdateResult("missing", nil) // must not panic
}

func TestKeysEnumerates(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(8, 0, c.Now)
	for i := 0; i < 10; i++ {
		al.Admit(fmt.Sprintf("q%d", i), time.Second, nil, ObjectList)
	}
	if got := len(al.Keys()); got != 10 {
		t.Errorf("Keys = %d", got)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(2, 0, c.Now)
	al.Admit("q1", time.Second, []string{"a"}, ObjectList)
	e, _ := al.Get("q1")
	e.ResultKeys[0] = "mutated"
	fresh, _ := al.Get("q1")
	if fresh.ResultKeys[0] != "a" {
		t.Error("Get leaked internal slice")
	}
}

func TestActiveListConcurrency(t *testing.T) {
	c := newFakeClock()
	al := NewActiveList(8, 50, c.Now)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("q%d", (id*200+i)%100)
				al.Admit(key, time.Second, nil, ObjectList)
				al.Invalidated(key)
				al.Get(key)
			}
		}(w)
	}
	wg.Wait()
	if al.Len() > 50 {
		t.Errorf("capacity exceeded: %d", al.Len())
	}
}

func TestChooseRepresentation(t *testing.T) {
	// Hot result set, mostly in-place changes: id-list avoids most
	// invalidations and records are cached -> IDList wins.
	rep := ChooseRepresentation(RepresentationCost{
		ResultSize:     10,
		ChangeRate:     5.0,
		MembershipRate: 0.2,
		RecordHitRate:  0.95,
	})
	if rep != IDList {
		t.Errorf("churny content should favour id-list, got %v", rep)
	}
	// Cold result, poor record hit rate: object-list's single round-trip wins.
	rep = ChooseRepresentation(RepresentationCost{
		ResultSize:     20,
		ChangeRate:     0.01,
		MembershipRate: 0.005,
		RecordHitRate:  0.1,
	})
	if rep != ObjectList {
		t.Errorf("cold content should favour object-list, got %v", rep)
	}
	// Degenerate inputs must not panic and produce a valid choice.
	rep = ChooseRepresentation(RepresentationCost{RecordHitRate: 5})
	if rep != ObjectList && rep != IDList {
		t.Errorf("invalid rep %v", rep)
	}
	if ObjectList.String() != "object-list" || IDList.String() != "id-list" {
		t.Error("String() labels wrong")
	}
}
