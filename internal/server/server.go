// Package server implements the Quaestor DBaaS middleware (Figure 3): the
// data layer that answers CRUD operations and queries over HTTP with
// cache-coherent TTLs, maintains the Expiring Bloom Filter, registers
// cached queries in InvaliDB, and purges invalidation-based caches when
// results become stale.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"quaestor/internal/cluster"
	"quaestor/internal/coordinator"
	"quaestor/internal/document"
	"quaestor/internal/ebf"
	"quaestor/internal/invalidb"
	"quaestor/internal/metrics"
	"quaestor/internal/query"
	"quaestor/internal/replication"
	"quaestor/internal/store"
	"quaestor/internal/ttl"
)

// CacheMode selects which caching headers the server emits — the paper's
// evaluation baselines (Figure 8a) map directly onto these modes.
type CacheMode int

const (
	// ModeFull emits both max-age (browser/ISP) and s-maxage (CDN) — full
	// Quaestor.
	ModeFull CacheMode = iota
	// ModeCDNOnly emits only s-maxage: results cache in invalidation-based
	// tiers but not in clients ("CDN only" baseline).
	ModeCDNOnly
	// ModeClientOnly emits only a private max-age: results cache in the
	// browser, nothing shared ("EBF only" baseline).
	ModeClientOnly
	// ModeUncached emits no-store everywhere (the uncached Orestes
	// baseline).
	ModeUncached
)

// String implements fmt.Stringer.
func (m CacheMode) String() string {
	switch m {
	case ModeFull:
		return "quaestor"
	case ModeCDNOnly:
		return "cdn-only"
	case ModeClientOnly:
		return "client-only"
	case ModeUncached:
		return "uncached"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// RepresentationPolicy selects how query results are materialized.
type RepresentationPolicy int

const (
	// RepCostBased applies the paper's cost model per query.
	RepCostBased RepresentationPolicy = iota
	// RepAlwaysObjects always serves full object-lists.
	RepAlwaysObjects
	// RepAlwaysIDs always serves id-lists.
	RepAlwaysIDs
)

// Purger is an invalidation-based cache the server can purge
// asynchronously (CDNs, reverse proxies).
type Purger interface {
	// PurgeKey removes the cached entry for a resource path.
	PurgeKey(path string)
}

// PurgerFunc adapts a function to the Purger interface.
type PurgerFunc func(path string)

// PurgeKey implements Purger.
func (f PurgerFunc) PurgeKey(path string) { f(path) }

// Coherence is the EBF surface the server uses; *ebf.EBF, *ebf.Partitioned
// and *ebf.Distributed all satisfy it.
type Coherence interface {
	ReportRead(key string, ttl time.Duration)
	ReportWrite(key string) bool
	Snapshot() ebf.Snapshot
}

// Options configures a Server.
type Options struct {
	// Mode selects the caching baseline (default ModeFull).
	Mode CacheMode
	// Representation selects the result materialization policy.
	Representation RepresentationPolicy
	// TTL tunes the estimator. Nil uses defaults.
	TTL *ttl.Config
	// EBF tunes the filter. Nil uses defaults (14.6 KB, k=4).
	EBF *ebf.Options
	// InvaliDB sizes the invalidation cluster. Nil: 1×1 grid.
	InvaliDB *invalidb.Config
	// QueryCapacity caps the number of concurrently cached queries
	// (admission control); 0 derives it from the InvaliDB capacity.
	QueryCapacity int
	// ActiveListPartitions shards the active list (default 16).
	ActiveListPartitions int
	// Clock supplies time (default time.Now).
	Clock func() time.Time
	// InvalidationDelay artificially defers cache purges — used to study
	// Δ_invalidation effects. Zero purges synchronously on detection.
	InvalidationDelay time.Duration
}

func (o *Options) withDefaults() Options {
	out := Options{ActiveListPartitions: 16, Clock: time.Now}
	if o != nil {
		out = *o
		if out.ActiveListPartitions <= 0 {
			out.ActiveListPartitions = 16
		}
		if out.Clock == nil {
			out.Clock = time.Now
		}
	}
	return out
}

// Stats aggregates server activity.
type Stats struct {
	Reads            uint64
	Queries          uint64
	Writes           uint64
	Revalidations    uint64
	QueryActivations uint64
	Invalidations    uint64
	Purges           uint64
	RejectedQueries  uint64 // not admitted to caching
	// Access-plan choices made by the query planner, so Figure-8-style
	// experiments can attribute query latency to the path taken.
	PlanProbes uint64 // hash-index equality/IN/CONTAINS probes
	PlanRanges uint64 // ordered-index range scans
	PlanScans  uint64 // full table scans
	// Streaming-executor totals: documents the executor evaluated vs rows
	// it actually emitted. Their ratio is the measured selectivity of the
	// chosen access paths — the signal that validates the planner's simple
	// cost model against reality.
	RowsExamined uint64
	RowsReturned uint64
	// Read-routing tier accounting: reads+queries this node served while
	// acting as a following replica vs as a primary, and admission
	// rejections (412: the requested staleness bound could not be met
	// here). Together with the client SDK's ReadsByTier these measure —
	// rather than infer — how much of the read load the replica tier
	// absorbs.
	ServedPrimary    uint64
	ServedReplica    uint64
	StalenessRejects uint64
	// ReplicatedWrites counts write events the coherence pump consumed
	// from the local pipeline while following a primary; each feeds the
	// TTL estimator and the EBF exactly like an HTTP write would on the
	// primary.
	ReplicatedWrites uint64
}

// Server is the Quaestor middleware instance.
type Server struct {
	opts Options
	db   *store.Store
	// cluster is non-nil in sharded mode: the router fronting N shard
	// stores. db then aliases shard 0 for single-store-shaped paths; all
	// routing-sensitive paths go through dbFor/cluster.
	cluster *cluster.Router
	coh     Coherence
	est     *ttl.Estimator
	active  *ttl.ActiveList
	inv     *invalidb.Cluster

	mu          sync.Mutex
	purgers     []Purger
	queryPaths  map[string]string // query key -> resource path for purging
	registered  map[string]bool   // query key -> activated in InvaliDB
	subscribers map[string]map[int]chan invalidb.Notification
	nextSubID   int
	closed      bool

	// txnMu serializes transaction validation+apply (single-node BOCC).
	txnMu sync.Mutex

	schemas *schemaRegistry
	auth    authorizer

	// replica is non-nil when this server fronts a log-shipping replica
	// (see AttachReplica); guarded by mu.
	replica *replication.Replica
	// shardReplicas holds the per-shard replica loops of a sharded
	// replica (index = shard); guarded by mu.
	shardReplicas []*replication.Replica
	// cohCancels stops the coherence pumps started by Attach* (guarded by
	// mu).
	cohCancels []func()
	// advPrimary/advReplicas is the read topology advertised on
	// GET /v1/cluster/replicas (guarded by mu).
	advPrimary  string
	advReplicas []string
	// selfURL is this node's own advertised base URL (SetSelfURL); it
	// lets a promoted replica advertise itself as the new primary.
	// Guarded by mu.
	selfURL string
	// fencedTo is non-empty once this node has been demoted
	// (POST /v1/replication/demote): the successor primary every 503
	// advertises. Guarded by mu.
	fencedTo string
	// coord is the attached failover coordinator (AttachCoordinator),
	// nil on nodes that don't supervise. Guarded by mu.
	coord *coordinator.Coordinator

	detachStore func()
	notifyDone  chan struct{}

	reads            atomic.Uint64
	queries          atomic.Uint64
	writes           atomic.Uint64
	revalidations    atomic.Uint64
	queryActivations atomic.Uint64
	invalidations    atomic.Uint64
	purges           atomic.Uint64
	rejected         atomic.Uint64
	planProbes       atomic.Uint64
	planRanges       atomic.Uint64
	planScans        atomic.Uint64
	rowsExamined     atomic.Uint64
	rowsReturned     atomic.Uint64
	sseDropped       atomic.Uint64
	servedPrimary    atomic.Uint64
	servedReplica    atomic.Uint64
	stalenessRejects atomic.Uint64
	replWrites       atomic.Uint64
	// ebfGen is the Unix-nanosecond timestamp of the EBF's newest
	// mutation, piggybacked on read responses (HeaderEBFGenerated) so
	// clients can warm their invalidation state from the serving tier.
	ebfGen atomic.Int64

	// planLatency holds one histogram per plan kind (scan/probe/range) so
	// experiments can attribute query latency to the chosen access path.
	planLatency [3]*metrics.Histogram
}

// New assembles a server around an existing document store. The server
// owns an InvaliDB cluster and attaches it to the store's change stream.
func New(db *store.Store, opts *Options) *Server {
	return newServer(db, nil, opts)
}

func newServer(db *store.Store, router *cluster.Router, opts *Options) *Server {
	o := opts.withDefaults()
	ebfOpts := o.EBF
	if ebfOpts == nil {
		ebfOpts = &ebf.Options{}
	}
	if ebfOpts.Clock == nil {
		ebfOpts.Clock = o.Clock
	}
	ttlCfg := o.TTL
	if ttlCfg == nil {
		ttlCfg = &ttl.Config{}
	}
	if ttlCfg.Clock == nil {
		ttlCfg.Clock = o.Clock
	}
	invCfg := o.InvaliDB
	if invCfg == nil {
		invCfg = &invalidb.Config{}
	}
	if invCfg.Clock == nil {
		invCfg.Clock = o.Clock
	}
	if router != nil && router.NumShards() > 1 {
		// The paper's query×object matrix keyed off the shard map: one
		// object-partition row per shard, placed by the same consistent
		// hash that routes writes, so each row consumes exactly one
		// shard's ordered change stream.
		cp := *invCfg
		cp.ObjectPartitions = router.NumShards()
		cp.Placement = router.Map().Shard
		invCfg = &cp
	}
	capacity := o.QueryCapacity
	if capacity == 0 {
		capacity = invCfg.MaxQueries
	}

	s := &Server{
		opts:       o,
		db:         db,
		cluster:    router,
		coh:        ebf.NewPartitioned(ebfOpts),
		est:        ttl.NewEstimator(ttlCfg),
		active:     ttl.NewActiveList(o.ActiveListPartitions, capacity, o.Clock),
		inv:        invalidb.NewCluster(invCfg),
		queryPaths: map[string]string{},
		registered: map[string]bool{},
		schemas:    newSchemaRegistry(),
		notifyDone: make(chan struct{}),
	}
	for i := range s.planLatency {
		s.planLatency[i] = metrics.NewHistogram()
	}
	if router != nil {
		// Every shard's ordered stream feeds the grid; each pump tracks
		// its own shard's Seq space, so per-shard order assertions hold.
		cancels := make([]func(), 0, router.NumShards())
		for _, st := range router.Stores() {
			cancels = append(cancels, s.inv.AttachStore(st))
		}
		s.detachStore = func() {
			for _, c := range cancels {
				c()
			}
		}
	} else {
		s.detachStore = s.inv.AttachStore(db)
	}
	go s.notificationLoop()
	return s
}

// Close stops the invalidation pipeline. The store stays open (callers own
// it).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	cohCancels := s.cohCancels
	s.cohCancels = nil
	s.mu.Unlock()
	for _, c := range cohCancels {
		c()
	}
	s.detachStore()
	s.inv.Stop()
	<-s.notifyDone
	s.mu.Lock()
	for key, m := range s.subscribers {
		for id, ch := range m {
			delete(m, id)
			close(ch)
		}
		delete(s.subscribers, key)
	}
	s.mu.Unlock()
}

// Store exposes the underlying database (shard 0 in sharded mode).
func (s *Server) Store() *store.Store { return s.db }

// Cluster exposes the shard router, or nil on an unsharded server.
func (s *Server) Cluster() *cluster.Router { return s.cluster }

// Estimator exposes the TTL estimator (for the evaluation harness).
func (s *Server) Estimator() *ttl.Estimator { return s.est }

// ActiveList exposes the active query registry.
func (s *Server) ActiveList() *ttl.ActiveList { return s.active }

// InvaliDB exposes the invalidation cluster.
func (s *Server) InvaliDB() *invalidb.Cluster { return s.inv }

// AddPurger registers an invalidation-based cache for purge fan-out.
func (s *Server) AddPurger(p Purger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgers = append(s.purgers, p)
}

// Stats returns a snapshot of activity counters.
func (s *Server) Stats() Stats {
	return Stats{
		Reads:            s.reads.Load(),
		Queries:          s.queries.Load(),
		Writes:           s.writes.Load(),
		Revalidations:    s.revalidations.Load(),
		QueryActivations: s.queryActivations.Load(),
		Invalidations:    s.invalidations.Load(),
		Purges:           s.purges.Load(),
		RejectedQueries:  s.rejected.Load(),
		PlanProbes:       s.planProbes.Load(),
		PlanRanges:       s.planRanges.Load(),
		PlanScans:        s.planScans.Load(),
		RowsExamined:     s.rowsExamined.Load(),
		RowsReturned:     s.rowsReturned.Load(),
		ServedPrimary:    s.servedPrimary.Load(),
		ServedReplica:    s.servedReplica.Load(),
		StalenessRejects: s.stalenessRejects.Load(),
		ReplicatedWrites: s.replWrites.Load(),
	}
}

// CreateIndex builds a secondary index on the underlying store (every
// shard in sharded mode); subsequent queries sargable on the path route
// through it.
func (s *Server) CreateIndex(table, path string) error {
	if s.cluster != nil {
		return s.cluster.CreateIndex(table, path)
	}
	return s.db.CreateIndex(table, path)
}

// Indexes lists a table's indexed field paths.
func (s *Server) Indexes(table string) ([]string, error) {
	return s.db.Indexes(table)
}

// PlanLatency returns the latency histogram for one plan kind, letting the
// evaluation harness attribute query latency to the access path taken.
func (s *Server) PlanLatency(kind query.PlanKind) *metrics.Histogram {
	return s.planLatency[kind]
}

// recordPlan attributes one query execution to its plan choice and folds
// the execution report's row counters into the running totals.
func (s *Server) recordPlan(plan query.Plan, elapsed time.Duration) {
	switch plan.Kind {
	case query.PlanProbe:
		s.planProbes.Add(1)
	case query.PlanRange:
		s.planRanges.Add(1)
	default:
		s.planScans.Add(1)
	}
	s.rowsExamined.Add(uint64(plan.RowsExamined))
	s.rowsReturned.Add(uint64(plan.RowsReturned))
	s.planLatency[plan.Kind].Observe(elapsed)
}

// RecordKey is the EBF/cache key of a record.
func RecordKey(table, id string) string { return table + "/" + id }

// RecordPath is the REST resource path of a record.
func RecordPath(table, id string) string { return "/v1/db/" + table + "/" + id }

// EBFSnapshot returns the current aggregated filter for piggybacking.
func (s *Server) EBFSnapshot() ebf.Snapshot {
	return s.coh.Snapshot()
}

// TableCoherence is the optional per-table snapshot surface; the default
// *ebf.Partitioned coherence implements it.
type TableCoherence interface {
	SnapshotTable(table string) ebf.Snapshot
}

// EBFTableSnapshot returns one table's filter partition, falling back to
// the aggregate when the coherence layer is not partitioned.
func (s *Server) EBFTableSnapshot(table string) ebf.Snapshot {
	if tc, ok := s.coh.(TableCoherence); ok {
		return tc.SnapshotTable(table)
	}
	return s.coh.Snapshot()
}

// ReadResult carries a record read plus its caching metadata.
type ReadResult struct {
	Doc  *document.Document
	TTL  time.Duration
	ETag string
}

// Read serves a record with its estimated TTL and reports the issued
// expiration to the EBF.
func (s *Server) Read(table, id string) (ReadResult, error) {
	doc, err := s.dbFor(id).Get(table, id)
	if err != nil {
		return ReadResult{}, err
	}
	s.reads.Add(1)
	key := RecordKey(table, id)
	dur := s.recordTTL(key)
	if s.cacheable() && dur > 0 {
		s.coh.ReportRead(key, dur)
	}
	return ReadResult{Doc: doc, TTL: dur, ETag: etagFor(doc.Version)}, nil
}

func (s *Server) recordTTL(key string) time.Duration {
	if !s.cacheable() {
		return 0
	}
	return s.est.RecordTTL(key)
}

func (s *Server) cacheable() bool { return s.opts.Mode != ModeUncached }

func etagFor(version int64) string { return fmt.Sprintf("\"v%d\"", version) }

// QueryResult carries a query response plus its caching metadata.
type QueryResult struct {
	// Docs is populated for object-list results; IDs always holds the
	// ordered record ids.
	Docs           []*document.Document
	IDs            []string
	Representation ttl.Representation
	TTL            time.Duration
	ETag           string
	// Cacheable is false when admission control rejected the query; the
	// HTTP layer then emits no-store.
	Cacheable bool
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("server: closed")

// Query evaluates q, decides its representation and TTL, registers it for
// invalidation detection and reports the issued TTL to the EBF — steps (2)
// in the end-to-end example of Figure 7.
func (s *Server) Query(q *query.Query) (QueryResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return QueryResult{}, ErrClosed
	}
	s.mu.Unlock()

	// Capture the change-stream position before evaluating so activation
	// can replay the gap (a per-shard vector in sharded mode).
	asOf, asOfs := s.seqPosition()
	start := s.opts.Clock()
	docs, plan, err := s.queryPlanned(q)
	if err != nil {
		return QueryResult{}, err
	}
	s.recordPlan(plan, s.opts.Clock().Sub(start))
	s.queries.Add(1)

	key := q.Key()
	ids := make([]string, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	res := QueryResult{Docs: docs, IDs: ids, ETag: resultETag(q, docs)}

	if !s.cacheable() {
		res.Representation = ttl.ObjectList
		return res, nil
	}

	// Per-record cache keys feed the TTL estimator, admission control and
	// the EBF — work the non-cacheable early return above never needs.
	recordKeys := make([]string, len(docs))
	for i, d := range docs {
		recordKeys[i] = RecordKey(q.Table, d.ID)
	}

	rep := s.chooseRepresentation(recordKeys)
	dur := s.est.QueryTTL(key, recordKeys)
	admitted := s.active.Admit(key, dur, recordKeys, rep)
	if !admitted {
		s.rejected.Add(1)
		res.Representation = rep
		return res, nil
	}

	if err := s.activateIfNeeded(q, asOf, asOfs, rep); err != nil {
		// Capacity exhausted in InvaliDB: serve uncached rather than risk
		// stale results without invalidation detection.
		if errors.Is(err, invalidb.ErrAtCapacity) {
			s.active.Remove(key)
			s.rejected.Add(1)
			res.Representation = rep
			return res, nil
		}
		return QueryResult{}, err
	}

	s.coh.ReportRead(key, dur)
	if rep == ttl.ObjectList {
		// Per-record entries also land in caches; report their TTLs so the
		// EBF can cover them (reads of members get hits "by side effect").
		for _, rk := range recordKeys {
			s.coh.ReportRead(rk, dur)
		}
	}
	res.Representation = rep
	res.TTL = dur
	res.Cacheable = true
	return res, nil
}

// QueryStream evaluates q on the streaming executor and returns the store
// cursor, for consumers that emit results incrementally (the NDJSON
// endpoint). Streamed results deliberately bypass the caching machinery —
// no TTL estimation, EBF report or InvaliDB activation; the HTTP layer
// serves them no-store — because a response consumed as a stream never
// lands in a cache whole. Plan and row counters are still recorded.
func (s *Server) QueryStream(q *query.Query) (*store.Cursor, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.mu.Unlock()

	start := s.opts.Clock()
	var cur *store.Cursor
	var err error
	if s.cluster != nil {
		cur, err = s.cluster.QueryStream(q)
	} else {
		cur, err = s.db.QueryStream(q)
	}
	if err != nil {
		return nil, err
	}
	s.recordPlan(cur.Plan(), s.opts.Clock().Sub(start))
	s.queries.Add(1)
	return cur, nil
}

// chooseRepresentation applies the configured policy.
func (s *Server) chooseRepresentation(recordKeys []string) ttl.Representation {
	switch s.opts.Representation {
	case RepAlwaysObjects:
		return ttl.ObjectList
	case RepAlwaysIDs:
		return ttl.IDList
	}
	var changeRate float64
	for _, rk := range recordKeys {
		changeRate += s.est.WriteRate(rk)
	}
	return ttl.ChooseRepresentation(ttl.RepresentationCost{
		ResultSize: len(recordKeys),
		ChangeRate: changeRate,
		// Membership changes are a fraction of all writes; most updates
		// modify contained objects in place (the paper's change events).
		MembershipRate: changeRate * 0.3,
		RecordHitRate:  0.8,
	})
}

// queryPlanned evaluates q on the backing data plane: the single store,
// or scatter-gather across the cluster.
func (s *Server) queryPlanned(q *query.Query) ([]*document.Document, query.Plan, error) {
	if s.cluster != nil {
		return s.cluster.QueryPlanned(q)
	}
	return s.db.QueryPlanned(q)
}

// activateIfNeeded registers the query in InvaliDB exactly once. asOfs is
// the per-shard sequence vector in sharded mode (nil unsharded).
func (s *Server) activateIfNeeded(q *query.Query, asOf uint64, asOfs []uint64, rep ttl.Representation) error {
	key := q.Key()
	s.mu.Lock()
	if s.registered[key] {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	// InvaliDB needs the full predicate-level match set (for stateful
	// queries the unwindowed set); evaluate without window clauses.
	unwindowed := query.New(q.Table, q.Predicate)
	var matches []*document.Document
	var err error
	if s.cluster != nil {
		matches, err = s.cluster.Query(unwindowed)
	} else {
		matches, err = s.db.Query(unwindowed)
	}
	if err != nil {
		return err
	}
	mask := invalidb.MaskObjectList
	if rep == ttl.IDList {
		mask = invalidb.MaskIDList
	}
	var replay []store.ChangeEvent
	if s.cluster != nil {
		// Each shard's replay closes that shard's activation gap; the
		// per-row floors in AsOfSeqs gate replay per shard.
		for i, st := range s.cluster.Stores() {
			from := uint64(0)
			if i < len(asOfs) {
				from = asOfs[i]
			}
			replay = append(replay, st.Replay(q.Table, from)...)
		}
	} else {
		replay = s.db.Replay(q.Table, asOf)
	}
	err = s.inv.Activate(invalidb.Registration{
		Query:          q,
		Mask:           mask,
		InitialMatches: matches,
		AsOfSeq:        asOf,
		AsOfSeqs:       asOfs,
		Replay:         replay,
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.registered[key] = true
	s.mu.Unlock()
	s.queryActivations.Add(1)
	return nil
}

// RegisterQueryPath remembers the REST path serving a query so purges can
// reach the right CDN entry. The HTTP layer calls this on each query.
func (s *Server) RegisterQueryPath(queryKey, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queryPaths[queryKey] = path
}

// Insert writes a new document (after schema validation) and runs
// record-level invalidation.
func (s *Server) Insert(table string, doc *document.Document) error {
	if err := s.validateDoc(table, doc); err != nil {
		return err
	}
	if err := s.dbFor(doc.ID).Insert(table, doc); err != nil {
		return err
	}
	s.afterWrite(table, doc.ID)
	return nil
}

// Put upserts a full document (after schema validation) and runs
// record-level invalidation.
func (s *Server) Put(table string, doc *document.Document) error {
	if err := s.validateDoc(table, doc); err != nil {
		return err
	}
	if err := s.dbFor(doc.ID).Put(table, doc); err != nil {
		return err
	}
	s.afterWrite(table, doc.ID)
	return nil
}

// Update applies a partial update and runs record-level invalidation.
func (s *Server) Update(table, id string, spec store.UpdateSpec) (*document.Document, error) {
	doc, err := s.dbFor(id).Update(table, id, spec)
	if err != nil {
		return nil, err
	}
	s.afterWrite(table, id)
	return doc, nil
}

// Delete removes a document and runs record-level invalidation.
func (s *Server) Delete(table, id string) error {
	if err := s.dbFor(id).Delete(table, id); err != nil {
		return err
	}
	s.afterWrite(table, id)
	return nil
}

// afterWrite samples the write rate and invalidates the record's own cache
// entries. Query-level invalidation arrives asynchronously from InvaliDB.
func (s *Server) afterWrite(table, id string) {
	s.writes.Add(1)
	key := RecordKey(table, id)
	s.est.ObserveWrite(key)
	if s.coh.ReportWrite(key) {
		s.schedulePurge(RecordPath(table, id))
	}
	s.ebfGen.Store(s.opts.Clock().UnixNano())
}

// EBFGeneration returns the Unix-nanosecond timestamp of the EBF's
// newest mutation (0 before the first write).
func (s *Server) EBFGeneration() int64 { return s.ebfGen.Load() }

// followCoherence subscribes to one store's ordered change stream and
// feeds every replicated write into the TTL estimator and the EBF — the
// same bookkeeping afterWrite does on the HTTP write path, which a
// replica's writes never take (they arrive through replication). This is
// what makes replica-served Cache-Control TTLs hot/cold-aware and the
// replica's piggybacked EBF coherent. After a promote the HTTP write
// path and this pump both observe a write; the double-counted write rate
// only shortens TTL estimates, the conservative direction.
func (s *Server) followCoherence(st *store.Store, name string) {
	ch, cancel := st.SubscribeNamed(name)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			if ev.After == nil {
				continue // DDL events carry no record key
			}
			key := ev.Key()
			s.est.ObserveWrite(key)
			if s.coh.ReportWrite(key) {
				s.schedulePurge(RecordPath(ev.Table, ev.After.ID))
			}
			s.ebfGen.Store(s.opts.Clock().UnixNano())
			s.replWrites.Add(1)
		}
	}()
	s.mu.Lock()
	s.cohCancels = append(s.cohCancels, func() { cancel(); <-done })
	s.mu.Unlock()
}

// SetReplicaEndpoints advertises the deployment's read topology: the
// primary's base URL plus the replica endpoints clients may spread
// bounded reads across. Served on GET /v1/cluster/replicas; the
// quaestor-server binary populates it from -advertise-replicas.
func (s *Server) SetReplicaEndpoints(primary string, replicas []string) {
	s.mu.Lock()
	s.advPrimary = primary
	s.advReplicas = append([]string(nil), replicas...)
	s.mu.Unlock()
}

// ReplicaEndpoints returns the advertised read topology.
func (s *Server) ReplicaEndpoints() (primary string, replicas []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advPrimary, append([]string(nil), s.advReplicas...)
}

// notificationLoop consumes InvaliDB events: every notification marks the
// query stale in the EBF, purges invalidation-based caches and feeds the
// observed actual TTL into the estimator's EWMA (Figure 7, step 4).
func (s *Server) notificationLoop() {
	defer close(s.notifyDone)
	for n := range s.inv.Notifications() {
		s.invalidations.Add(1)
		if s.coh.ReportWrite(n.QueryKey) {
			s.mu.Lock()
			path := s.queryPaths[n.QueryKey]
			s.mu.Unlock()
			if path != "" {
				s.schedulePurge(path)
			}
		}
		if actual, active := s.active.Invalidated(n.QueryKey); active {
			s.est.ObserveInvalidation(n.QueryKey, actual)
		}
		s.fanOutToSubscribers(n)
	}
}

func (s *Server) schedulePurge(path string) {
	s.mu.Lock()
	purgers := append([]Purger(nil), s.purgers...)
	s.mu.Unlock()
	if len(purgers) == 0 {
		return
	}
	doPurge := func() {
		for _, p := range purgers {
			p.PurgeKey(path)
		}
		s.purges.Add(1)
	}
	if s.opts.InvalidationDelay > 0 {
		time.AfterFunc(s.opts.InvalidationDelay, doPurge)
		return
	}
	doPurge()
}

// resultETag derives a deterministic version tag for a query result from
// the member versions.
func resultETag(q *query.Query, docs []*document.Document) string {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(q.Key())
	for _, d := range docs {
		mix(d.ID)
		mix(fmt.Sprintf("#%d", d.Version))
	}
	return fmt.Sprintf("\"q%x\"", h)
}

// CacheControl renders the response caching headers for the server's mode:
// (browserTTL, cdnTTL) pairs per mode as described on CacheMode.
func (s *Server) CacheControl(dur time.Duration) (browserTTL, cdnTTL time.Duration) {
	switch s.opts.Mode {
	case ModeFull:
		return dur, dur
	case ModeCDNOnly:
		return 0, dur
	case ModeClientOnly:
		return dur, 0
	default:
		return 0, 0
	}
}

// Mode returns the configured cache mode.
func (s *Server) Mode() CacheMode { return s.opts.Mode }
