package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"quaestor/internal/cluster"
	"quaestor/internal/replication"
	"quaestor/internal/store"
)

// Sharded-mode glue: when the server fronts a cluster.Router instead of a
// single store, point ops route to the owning shard's commit pipeline,
// queries scatter-gather, replication endpoints select a shard with
// ?shard=i, and InvaliDB cell placement is keyed off the same ShardMap
// that routes writes.

// HeaderShardEpoch carries the server's shard-map epoch on every response
// in sharded mode. Clients that cached an older map refetch
// /v1/cluster/map and retry.
const HeaderShardEpoch = "X-Quaestor-Shard-Epoch"

// HeaderPrimary advertises the primary's base URL on every response a
// replica serves, so a client whose write bounced with 503 (read-only
// replica) can redirect the write to the primary and retry once.
const HeaderPrimary = "X-Quaestor-Primary"

// NewSharded assembles a server fronting a sharded cluster: one InvaliDB
// object-partition row per shard (placement = the cluster ShardMap), the
// invalidation pipeline attached to every shard's ordered change stream.
func NewSharded(r *cluster.Router, opts *Options) *Server {
	return newServer(r.Store(0), r, opts)
}

// dbFor returns the store owning a document id: the single store, or the
// id's shard in sharded mode.
func (s *Server) dbFor(id string) *store.Store {
	if s.cluster != nil {
		return s.cluster.Store(s.cluster.ShardFor(id))
	}
	return s.db
}

// seqPosition captures the change-stream position before a query
// evaluates: the single store's LastSeq, plus the per-shard vector in
// sharded mode (shard Seq spaces are independent).
func (s *Server) seqPosition() (uint64, []uint64) {
	if s.cluster != nil {
		seqs := s.cluster.LastSeqs()
		max := uint64(0)
		for _, q := range seqs {
			if q > max {
				max = q
			}
		}
		return max, seqs
	}
	return s.db.LastSeq(), nil
}

// withShardEpoch stamps every response with the shard-map epoch in
// sharded mode (so clients can detect a stale cached map) and, on a
// node that cannot accept writes (following replica or fenced
// ex-primary), with the primary's address (so bounced writes can
// redirect). Both are resolved per request: replicas attach, epochs
// bump (failover map rewrites), and fences land after the handler is
// built — a cached value would advertise a dead primary or a stale map
// for the rest of the process lifetime.
func (s *Server) withShardEpoch(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cluster != nil {
			w.Header().Set(HeaderShardEpoch, strconv.FormatUint(s.cluster.Map().CurrentEpoch(), 10))
		}
		if p := s.primaryHint(); p != "" {
			w.Header().Set(HeaderPrimary, p)
		}
		next.ServeHTTP(w, r)
	})
}

// handleClusterMap serves the versioned shard map. GET answers a
// detached snapshot (unsharded servers answer a 1-shard map, so
// shard-aware clients work against any topology); POST adopts a
// rewritten topology pushed by the failover coordinator.
func (s *Server) handleClusterMap(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Cache-Control", "no-store")
		m := cluster.NewShardMap(1)
		if s.cluster != nil {
			m = s.cluster.Map().Snapshot()
		}
		writeJSON(w, http.StatusOK, m)
	case http.MethodPost:
		s.handleClusterMapAdopt(w, r)
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET or POST"})
	}
}

// handleClusterMapAdopt ingests a rewritten shard map: identical
// placement parameters (shard count, vnodes — the ring must not move),
// a new node list, a higher epoch. Stale or already-adopted epochs are
// acknowledged without applying, so coordinator retries are idempotent.
func (s *Server) handleClusterMapAdopt(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, &httpError{http.StatusConflict, "server is unsharded; no shard map to rewrite"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, badRequest("reading shard map: %v", err))
		return
	}
	nm, err := cluster.ParseShardMap(body)
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	cur := s.cluster.Map()
	if nm.Shards != cur.Shards || (nm.VNodes != 0 && nm.VNodes != cur.VNodes) {
		writeError(w, &httpError{http.StatusConflict,
			fmt.Sprintf("placement mismatch: pushed map has %d shards, this node serves %d — map rewrite cannot move placement", nm.Shards, cur.Shards)})
		return
	}
	if len(nm.Nodes) != 0 && len(nm.Nodes) != cur.Shards {
		writeError(w, badRequest("node list has %d entries for %d shards", len(nm.Nodes), cur.Shards))
		return
	}
	adopted := cur.SetTopology(nm.Epoch, nm.Nodes)
	writeJSON(w, http.StatusOK, map[string]any{"adopted": adopted, "epoch": cur.CurrentEpoch()})
}

// replStore resolves the store a replication request targets: ?shard=i in
// sharded mode, the single store otherwise.
func (s *Server) replStore(r *http.Request) (*store.Store, error) {
	v := r.URL.Query().Get("shard")
	if v == "" {
		return s.db, nil
	}
	idx, err := strconv.Atoi(v)
	if err != nil || idx < 0 {
		return nil, badRequest("invalid shard %q", v)
	}
	if s.cluster == nil {
		if idx != 0 {
			return nil, badRequest("server is unsharded; shard %d does not exist", idx)
		}
		return s.db, nil
	}
	if idx >= s.cluster.NumShards() {
		return nil, badRequest("shard %d out of range (%d shards)", idx, s.cluster.NumShards())
	}
	return s.cluster.Store(idx), nil
}

// AttachReplicas hands a sharded server the per-shard replicas it fronts
// (index = shard), and starts one coherence pump per shard store so the
// TTL estimator and EBF see replicated writes (see AttachReplica).
func (s *Server) AttachReplicas(rs []*replication.Replica) {
	s.mu.Lock()
	s.shardReplicas = rs
	if len(rs) > 0 {
		s.replica = rs[0]
	}
	s.mu.Unlock()
	if s.cluster != nil {
		for i, st := range s.cluster.Stores() {
			s.followCoherence(st, fmt.Sprintf("replica-coherence-%d", i))
		}
	} else {
		s.followCoherence(s.db, "replica-coherence")
	}
}

// ReplicaSetResponse is the JSON body of GET /v1/cluster/replicas: the
// deployment's read topology. Every advertised replica follows all of
// the primary's shards (a sharded replica runs one replication loop per
// shard), so any replica endpoint can serve any key — clients route
// bounded reads across Replicas and everything else to Primary.
type ReplicaSetResponse struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas"`
}

// handleClusterReplicas serves the advertised read topology. Nodes with
// no advertised topology answer an empty set — clients then keep every
// read on their configured endpoint. POST adopts a rewritten topology
// (the failover coordinator pushes the new primary + surviving replicas
// to every survivor after a cutover).
func (s *Server) handleClusterReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Cache-Control", "no-store")
		primary, replicas := s.ReplicaEndpoints()
		writeJSON(w, http.StatusOK, ReplicaSetResponse{Primary: primary, Replicas: replicas})
	case http.MethodPost:
		var req ReplicaSetResponse
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, badRequest("decoding replica set: %v", err))
			return
		}
		s.SetReplicaEndpoints(req.Primary, req.Replicas)
		writeJSON(w, http.StatusOK, map[string]any{"adopted": true})
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET or POST"})
	}
}

// ShardReplicas returns the attached per-shard replicas (nil unless this
// server is a sharded replica).
func (s *Server) ShardReplicas() []*replication.Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardReplicas
}

// ShardSection is one shard's slice of /v1/stats and
// /v1/replication/status.
type ShardSection struct {
	Shard       int                    `json:"shard"`
	LastSeq     uint64                 `json:"lastSeq"`
	Pipeline    store.PipelineStats    `json:"pipeline"`
	Durability  *store.DurabilityStats `json:"durability,omitempty"`
	Replication *replication.Status    `json:"replication,omitempty"`
}

// ClusterSection is the sharded topology's slice of /v1/stats.
type ClusterSection struct {
	Epoch  uint64         `json:"epoch"`
	Shards []ShardSection `json:"shards"`
}

// clusterSection builds the per-shard stats, or nil when unsharded.
func (s *Server) clusterSection() *ClusterSection {
	if s.cluster == nil {
		return nil
	}
	reps := s.ShardReplicas()
	sec := &ClusterSection{Epoch: s.cluster.Map().CurrentEpoch()}
	for i, st := range s.cluster.Stores() {
		sh := ShardSection{
			Shard:    i,
			LastSeq:  st.LastSeq(),
			Pipeline: st.PipelineStats(),
		}
		if ds, ok := st.DurabilityStats(); ok {
			sh.Durability = &ds
		}
		if i < len(reps) && reps[i] != nil {
			rs := reps[i].Status()
			sh.Replication = &rs
		}
		sec.Shards = append(sec.Shards, sh)
	}
	return sec
}
