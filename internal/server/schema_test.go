package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quaestor/internal/document"
)

func TestSchemaValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	err := srv.SetSchema("posts", &Schema{Fields: map[string]FieldSpec{
		"title":  {Type: TypeString, Required: true},
		"rating": {Type: TypeNumber},
		"tags":   {Type: TypeArray},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Valid document passes.
	ok := document.New("good", map[string]any{"title": "hi", "rating": 4, "tags": []any{"x"}})
	if err := srv.Insert("posts", ok); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	// Missing required field fails.
	if err := srv.Insert("posts", document.New("bad1", map[string]any{"rating": 4})); err == nil {
		t.Error("missing required field accepted")
	}
	// Wrong type fails.
	if err := srv.Insert("posts", document.New("bad2", map[string]any{"title": 42})); err == nil {
		t.Error("wrong-typed field accepted")
	}
	// Optional fields may be absent; unknown fields pass (open schema).
	open := document.New("good2", map[string]any{"title": "x", "surprise": true})
	if err := srv.Insert("posts", open); err != nil {
		t.Errorf("open-schema extra field rejected: %v", err)
	}
	// Dropping the schema makes the table free-form again.
	if err := srv.SetSchema("posts", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Insert("posts", document.New("freeform", map[string]any{"title": 1})); err != nil {
		t.Errorf("schema-free insert rejected: %v", err)
	}
}

func TestSchemaRejectsUnknownType(t *testing.T) {
	srv := newTestServer(t, nil)
	err := srv.SetSchema("posts", &Schema{Fields: map[string]FieldSpec{"x": {Type: "uuid"}}})
	if err == nil {
		t.Error("unknown field type accepted")
	}
}

func TestSchemaHTTP(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	put := httptest.NewRequest(http.MethodPut, "/v1/schema/posts",
		strings.NewReader(`{"fields":{"title":{"type":"string","required":true}}}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, put)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT schema = %d %s", rec.Code, rec.Body.String())
	}
	// Writes are now validated at the HTTP layer too.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/db/posts", strings.NewReader(`{"_id":"p1","rating":1}`)))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("schema-violating insert = %d, want 422", rec.Code)
	}
	// The schema can be read back and deleted.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/schema/posts", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "title") {
		t.Errorf("GET schema = %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/schema/posts", nil))
	if rec.Code != http.StatusNoContent {
		t.Errorf("DELETE schema = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/schema/posts", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET deleted schema = %d", rec.Code)
	}
}

func TestAuthorization(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "x")
	srv.EnableAuth(&AuthConfig{
		Tokens: map[string]Role{
			"writer-token": RoleWriter,
			"admin-token":  RoleAdmin,
		},
		AllowAnonymousReads: true,
	})
	h := srv.Handler()
	do := func(method, path, token string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(`{"_id":"x"}`))
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	// Anonymous reads stay open (cacheable data must remain reachable).
	if code := do(http.MethodGet, "/v1/db/posts/p1", ""); code != http.StatusOK {
		t.Errorf("anonymous read = %d", code)
	}
	// Anonymous writes are rejected.
	if code := do(http.MethodPost, "/v1/db/posts", ""); code != http.StatusUnauthorized {
		t.Errorf("anonymous write = %d", code)
	}
	// Invalid token is rejected even for reads.
	if code := do(http.MethodGet, "/v1/db/posts/p1", "wrong"); code != http.StatusUnauthorized {
		t.Errorf("bad token read = %d", code)
	}
	// Writer may write but not manage schemas.
	if code := do(http.MethodPost, "/v1/db/posts", "writer-token"); code != http.StatusCreated {
		t.Errorf("writer insert = %d", code)
	}
	if code := do(http.MethodPut, "/v1/schema/posts", "writer-token"); code != http.StatusForbidden {
		t.Errorf("writer schema change = %d", code)
	}
	// Admin may do both (the placeholder body decodes as an empty schema,
	// which is accepted).
	if code := do(http.MethodPut, "/v1/schema/posts", "admin-token"); code != http.StatusOK {
		t.Errorf("admin schema change = %d", code)
	}
	// Disabling auth reopens the API.
	srv.EnableAuth(nil)
	if code := do(http.MethodPost, "/v1/db/posts", ""); code == http.StatusUnauthorized {
		t.Error("auth still enforced after disable")
	}
}
