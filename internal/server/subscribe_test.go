package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

func TestCommitValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "x")
	doc, err := srv.db.Get("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}

	// Valid read set commits.
	res, err := srv.Commit(TxnRequest{
		Reads: map[string]int64{"posts/p1": doc.Version},
		Writes: []TxnWriteOp{{
			Op: "patch", Table: "posts", ID: "p1",
			Spec: &store.UpdateSpec{Set: map[string]any{"rating": 9}},
		}},
	})
	if err != nil || !res.Committed {
		t.Fatalf("commit = %+v, %v", res, err)
	}

	// Stale read set aborts with the conflicting key.
	res, err = srv.Commit(TxnRequest{
		Reads: map[string]int64{"posts/p1": doc.Version}, // now stale
		Writes: []TxnWriteOp{{
			Op: "patch", Table: "posts", ID: "p1",
			Spec: &store.UpdateSpec{Set: map[string]any{"rating": 1}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed || len(res.Conflicts) != 1 || res.Conflicts[0] != "posts/p1" {
		t.Errorf("stale commit = %+v", res)
	}
	// The aborted write must not have applied.
	after, _ := srv.db.Get("posts", "p1")
	if v, _ := after.Get("rating"); v != int64(9) {
		t.Errorf("aborted write applied: rating = %v", v)
	}
}

func TestCommitObservedAbsence(t *testing.T) {
	srv := newTestServer(t, nil)
	// Transaction observed "ghost" as absent (version 0); creating it
	// concurrently must conflict.
	insertPost(t, srv, "ghost", "x")
	res, err := srv.Commit(TxnRequest{Reads: map[string]int64{"posts/ghost": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Error("commit with violated absence assumption succeeded")
	}
	// Observing true absence commits.
	res, err = srv.Commit(TxnRequest{Reads: map[string]int64{"posts/really-absent": 0}})
	if err != nil || !res.Committed {
		t.Errorf("true absence should validate: %+v %v", res, err)
	}
}

func TestCommitErrors(t *testing.T) {
	srv := newTestServer(t, nil)
	if _, err := srv.Commit(TxnRequest{Reads: map[string]int64{"malformed": 1}}); err == nil {
		t.Error("malformed read-set key accepted")
	}
	if _, err := srv.Commit(TxnRequest{Writes: []TxnWriteOp{{Op: "put", Table: "posts", ID: "x"}}}); err == nil {
		t.Error("put without doc accepted")
	}
	if _, err := srv.Commit(TxnRequest{Writes: []TxnWriteOp{{Op: "warp", Table: "posts", ID: "x"}}}); err == nil {
		t.Error("unknown op accepted")
	}
	// Transactional delete of an absent record is a no-op, not an error.
	res, err := srv.Commit(TxnRequest{Writes: []TxnWriteOp{{Op: "delete", Table: "posts", ID: "nope"}}})
	if err != nil || !res.Committed {
		t.Errorf("idempotent delete failed: %+v %v", res, err)
	}
}

func TestHTTPTransactionEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "x")
	h := srv.Handler()
	body := `{"reads":{"posts/p1":1},"writes":[{"op":"patch","table":"posts","id":"p1","spec":{"Set":{"rating":7}}}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/transaction", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("commit over HTTP = %d %s", rec.Code, rec.Body.String())
	}
	var res TxnResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || !res.Committed {
		t.Fatalf("result = %+v %v", res, err)
	}
	// Replay with the stale version: 409.
	req = httptest.NewRequest(http.MethodPost, "/v1/transaction", strings.NewReader(body))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Errorf("stale commit = %d", rec.Code)
	}
}

func TestServerSubscribe(t *testing.T) {
	srv := newTestServer(t, nil)
	q := query.New("posts", query.Contains("tags", "x"))
	sub, err := srv.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	insertPost(t, srv, "p1", "x")
	select {
	case n := <-sub.Events():
		if n.Doc.ID != "p1" {
			t.Errorf("event = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event delivered")
	}
	sub.Close()
	if _, ok := <-sub.Events(); ok {
		t.Error("closed subscription channel still open")
	}
	// Unsubscribing twice must be safe.
	sub.Close()
}

func TestHTTPSubscribeSSE(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/subscribe?table=posts&q=" + `{"tags":{"$contains":"x"}}`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %q", ct)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = srv.Insert("posts", document.New("p1", map[string]any{"tags": []any{"x"}}))
	}()

	reader := bufio.NewReader(resp.Body)
	deadline := time.After(5 * time.Second)
	lineCh := make(chan string, 1)
	go func() {
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "data: ") {
				lineCh <- strings.TrimSpace(strings.TrimPrefix(line, "data: "))
				return
			}
		}
	}()
	select {
	case payload := <-lineCh:
		var ev SubscriptionEvent
		if err := json.Unmarshal([]byte(payload), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", payload, err)
		}
		if ev.ID != "p1" || ev.Type != "add" {
			t.Errorf("event = %+v", ev)
		}
	case <-deadline:
		t.Fatal("no SSE event received")
	}
}

func TestHTTPSubscribeValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/subscribe", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing table = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/subscribe?table=posts", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST subscribe = %d", rec.Code)
	}
}
