package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"quaestor/internal/document"
	"quaestor/internal/store"
)

// This file implements Quaestor's opt-in ACID transactions (Section 3.2):
// optimistic transactions with backward-oriented concurrency control
// (BOCC). Clients collect their read sets — reads may be served from any
// web cache — and submit them with buffered writes at commit time. The
// server validates that every read version is still current; a mismatch
// means the transaction either raced a concurrent commit or read a stale
// cached copy, and it aborts. "The key idea is to collect read sets of
// transactions in the client and validate them at commit time to detect
// both violations of serializability and stale reads."

// ErrTxnConflict is returned when commit validation fails.
var ErrTxnConflict = errors.New("server: transaction conflict")

// TxnWriteOp is one buffered transactional write.
type TxnWriteOp struct {
	// Op is "put", "patch" or "delete".
	Op    string             `json:"op"`
	Table string             `json:"table"`
	ID    string             `json:"id"`
	Doc   *document.Document `json:"doc,omitempty"`
	Spec  *store.UpdateSpec  `json:"spec,omitempty"`
}

// TxnRequest is a commit submission.
type TxnRequest struct {
	// Reads maps "table/id" record keys to the version the transaction
	// observed (0 = observed as absent).
	Reads map[string]int64 `json:"reads"`
	// Writes are applied atomically iff validation succeeds.
	Writes []TxnWriteOp `json:"writes"`
}

// TxnResult reports the commit outcome.
type TxnResult struct {
	Committed bool `json:"committed"`
	// Conflicts lists the record keys whose versions changed since the
	// transaction read them.
	Conflicts []string `json:"conflicts,omitempty"`
}

// Commit validates and applies a transaction. On success every buffered
// write is applied (each triggering normal record- and query-level
// invalidation); on conflict nothing is applied and the conflicting keys
// are reported so clients can retry.
func (s *Server) Commit(req TxnRequest) (TxnResult, error) {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()

	var conflicts []string
	for key, readVersion := range req.Reads {
		table, id, ok := splitRecordKey(key)
		if !ok {
			return TxnResult{}, fmt.Errorf("server: malformed read-set key %q", key)
		}
		// Routed per record: validation reads hit the owning shard. The
		// process-wide txnMu still excludes concurrent commits, so BOCC
		// semantics are unchanged under sharding.
		doc, err := s.dbFor(id).Get(table, id)
		switch {
		case errors.Is(err, store.ErrNotFound):
			if readVersion != 0 {
				conflicts = append(conflicts, key) // read something now deleted
			}
		case err != nil:
			return TxnResult{}, err
		case doc.Version != readVersion:
			conflicts = append(conflicts, key)
		}
	}
	// Writes to records the transaction also read are already covered; a
	// write-write race with a concurrent commit is excluded by txnMu.
	if len(conflicts) > 0 {
		return TxnResult{Conflicts: conflicts}, nil
	}
	for _, w := range req.Writes {
		var err error
		switch w.Op {
		case "put":
			if w.Doc == nil {
				return TxnResult{}, fmt.Errorf("server: put without document for %s/%s", w.Table, w.ID)
			}
			w.Doc.ID = w.ID
			err = s.Put(w.Table, w.Doc)
		case "patch":
			if w.Spec == nil {
				return TxnResult{}, fmt.Errorf("server: patch without spec for %s/%s", w.Table, w.ID)
			}
			_, err = s.Update(w.Table, w.ID, *w.Spec)
		case "delete":
			err = s.Delete(w.Table, w.ID)
			if errors.Is(err, store.ErrNotFound) {
				err = nil // deleting an absent record is a no-op inside a txn
			}
		default:
			return TxnResult{}, fmt.Errorf("server: unknown transactional op %q", w.Op)
		}
		if err != nil {
			// Partial application cannot happen through validation races
			// (txnMu), only through infrastructure errors; surface them.
			return TxnResult{}, fmt.Errorf("server: applying %s %s/%s: %w", w.Op, w.Table, w.ID, err)
		}
	}
	return TxnResult{Committed: true}, nil
}

func splitRecordKey(key string) (table, id string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			if i == 0 || i == len(key)-1 {
				return "", "", false
			}
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

// handleTxn serves POST /v1/transaction.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "POST only"})
		return
	}
	var req TxnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest("invalid transaction: %v", err))
		return
	}
	res, err := s.Commit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if !res.Committed {
		status = http.StatusConflict
	}
	writeJSON(w, status, res)
}
