package server

import (
	"encoding/base64"
	"io"
	"net/http"
	"strings"
	"time"

	"quaestor/internal/document"
)

// This file implements cacheable file delivery. Quaestor caches "files,
// records, query results" uniformly (Figure 3); Baqend serves website
// assets this way ("the central idea is to leverage all available web
// caches to not only cache immutable data but also cache database records
// and volatile files"). Files are stored as documents in a reserved table,
// which makes them inherit the whole machinery for free: TTL estimation
// from their write rates, EBF staleness flagging, and CDN purges on
// overwrite.

// FilesTable is the reserved document table backing file storage.
const FilesTable = "_files"

// ensureFilesTable lazily creates the reserved table.
func (s *Server) ensureFilesTable() error {
	return s.db.CreateTable(FilesTable)
}

// PutFile stores (or replaces) a file.
func (s *Server) PutFile(name, contentType string, content []byte) error {
	if err := s.ensureFilesTable(); err != nil {
		return err
	}
	doc := document.New(name, map[string]any{
		"content": base64.StdEncoding.EncodeToString(content),
		"type":    contentType,
	})
	return s.Put(FilesTable, doc)
}

// GetFile retrieves a file with its caching metadata.
func (s *Server) GetFile(name string) (content []byte, contentType string, etag string, ttl time.Duration, err error) {
	res, err := s.Read(FilesTable, name)
	if err != nil {
		return nil, "", "", 0, err
	}
	enc, _ := res.Doc.Get("content")
	raw, decErr := base64.StdEncoding.DecodeString(enc.(string))
	if decErr != nil {
		return nil, "", "", 0, decErr
	}
	ct, _ := res.Doc.Get("type")
	ctStr, _ := ct.(string)
	if ctStr == "" {
		ctStr = "application/octet-stream"
	}
	return raw, ctStr, res.ETag, res.TTL, nil
}

// DeleteFile removes a file.
func (s *Server) DeleteFile(name string) error {
	if err := s.ensureFilesTable(); err != nil {
		return err
	}
	return s.Delete(FilesTable, name)
}

// handleFiles serves /v1/files/{name}: GET (cacheable), PUT, DELETE.
func (s *Server) handleFiles(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/files/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, badRequest("invalid file name %q", name))
		return
	}
	switch r.Method {
	case http.MethodGet:
		content, contentType, etag, ttl, err := s.GetFile(name)
		if err != nil {
			writeError(w, err)
			return
		}
		browserTTL, cdnTTL := s.CacheControl(ttl)
		w.Header().Set("Cache-Control", cacheControlValue(browserTTL, cdnTTL))
		w.Header().Set("ETag", etag)
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-Quaestor-Key", RecordKey(FilesTable, name))
		s.addReplicaHeaders(w)
		if r.Header.Get("If-None-Match") == etag {
			s.revalidations.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(content)
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			writeError(w, badRequest("reading body: %v", err))
			return
		}
		ct := r.Header.Get("Content-Type")
		if err := s.PutFile(name, ct, body); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"file": name})
	case http.MethodDelete:
		if err := s.DeleteFile(name); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "unsupported method"})
	}
}
