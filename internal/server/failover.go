package server

import (
	"encoding/json"
	"net/http"

	"quaestor/internal/coordinator"
	"quaestor/internal/replication"
)

// Server-side half of automatic failover (see internal/coordinator):
//
//	POST /v1/replication/demote — fence this node: stop accepting writes,
//	    advertise the successor primary on every response
//	POST /v1/cluster/map        — adopt a rewritten shard map (higher epoch)
//	POST /v1/cluster/replicas   — adopt a rewritten read topology
//	GET  /v1/failover/status    — the attached coordinator's view
//
// plus the advertised-endpoint bookkeeping a promotion implies: a
// promoted node must stop appearing in GET /v1/cluster/replicas as a
// replica while its dead primary stays advertised.

// SetSelfURL tells the server its own externally reachable base URL
// (quaestor-server -advertise-self). A node that knows its own address
// advertises itself as the primary when promoted.
func (s *Server) SetSelfURL(u string) {
	s.mu.Lock()
	s.selfURL = u
	s.mu.Unlock()
}

// SelfURL returns the node's advertised base URL ("" when unknown).
func (s *Server) SelfURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.selfURL
}

// AttachCoordinator hands the server a running failover coordinator so
// its state is observable at GET /v1/failover/status and in the
// /v1/stats failover section.
func (s *Server) AttachCoordinator(co *coordinator.Coordinator) {
	s.mu.Lock()
	s.coord = co
	s.mu.Unlock()
}

// Coordinator returns the attached failover coordinator, or nil.
func (s *Server) Coordinator() *coordinator.Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// fencedPrimary returns the successor primary this node was demoted in
// favor of ("" when not fenced).
func (s *Server) fencedPrimary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fencedTo
}

// primaryHint resolves the base URL writes should be redirected to when
// this node cannot accept them: the fencing successor on a demoted
// ex-primary, the advertised primary override (pushed by the
// coordinator after a failover — the replica's configured primary is
// the dead node), or the primary the replica follows. "" on a writable
// node: no hint is stamped.
func (s *Server) primaryHint() string {
	s.mu.Lock()
	fenced := s.fencedTo
	adv := s.advPrimary
	self := s.selfURL
	s.mu.Unlock()
	if fenced != "" {
		return fenced
	}
	st, ok := s.replicaStatus()
	if !ok || st.State == replication.StatePromoted {
		return ""
	}
	if adv != "" && adv != self {
		return adv
	}
	return st.Primary
}

// handleFailoverStatus serves GET /v1/failover/status.
func (s *Server) handleFailoverStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	co := s.Coordinator()
	if co == nil {
		writeError(w, &httpError{http.StatusNotFound, "no failover coordinator attached to this node"})
		return
	}
	writeJSON(w, http.StatusOK, co.Status())
}

// DemoteRequest is the body of POST /v1/replication/demote: the fencing
// order a failover coordinator sends to an ex-primary whose replicas
// were promoted while it was unreachable. Primary is the successor to
// advertise; Epoch (optional) is the rewritten map's epoch.
type DemoteRequest struct {
	Primary string `json:"primary"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// handleReplDemote fences this node: every local store flips read-only
// so in-flight and future writes bounce 503, and X-Quaestor-Primary on
// every response names the successor. Idempotent — a re-delivered fence
// just updates the successor. A node still actively following a primary
// answers 409: demotion targets (ex-)primaries, not replicas.
func (s *Server) handleReplDemote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "POST only"})
		return
	}
	var req DemoteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, badRequest("decoding demote request: %v", err))
		return
	}
	if req.Primary == "" {
		writeError(w, badRequest("demote request must name the successor primary"))
		return
	}
	if s.servingAsReplica() {
		writeError(w, &httpError{http.StatusConflict, "node is a following replica; demote targets a primary"})
		return
	}
	if s.cluster != nil {
		for _, db := range s.cluster.Stores() {
			db.SetReadOnly(true)
		}
	} else {
		s.db.SetReadOnly(true)
	}
	s.mu.Lock()
	s.fencedTo = req.Primary
	s.advPrimary = req.Primary
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"demoted": true, "primary": req.Primary})
}

// noteSelfPromoted updates the advertised endpoint set once every local
// follower has been promoted: this node is a primary now, so it must
// stop listing itself as a replica, must stop advertising the (dead)
// primary it used to follow, and — when it knows its own address —
// advertises itself as the new primary. Clients calling
// GET /v1/cluster/replicas then converge instead of routing bounded
// reads at a corpse. Promotion also clears any fence left from a
// previous demotion.
func (s *Server) noteSelfPromoted(oldPrimary string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fencedTo = ""
	self := s.selfURL
	if self != "" {
		s.advPrimary = self
	} else if s.advPrimary == oldPrimary {
		s.advPrimary = ""
	}
	if self != "" {
		keep := s.advReplicas[:0]
		for _, u := range s.advReplicas {
			if u != self {
				keep = append(keep, u)
			}
		}
		s.advReplicas = keep
	}
}

// allShardsPromoted reports whether every attached follower has been
// promoted (single replica: just it).
func (s *Server) allShardsPromoted() bool {
	if reps := s.ShardReplicas(); len(reps) > 0 {
		for _, rep := range reps {
			if rep.Status().State != replication.StatePromoted {
				return false
			}
		}
		return true
	}
	if repl := s.Replica(); repl != nil {
		return repl.Status().State == replication.StatePromoted
	}
	return false
}
