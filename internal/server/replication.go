package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"quaestor/internal/commitlog"
	"quaestor/internal/replication"
	"quaestor/internal/store"
	"quaestor/internal/wal"
)

// Replication endpoints. Every server can act as a replication primary
// (any node's pipeline and snapshots are exportable — chained replicas
// included); a server additionally holding a replication.Replica serves
// the replica-side status and promotion surface:
//
//	GET  /v1/replication/snapshot — snapshot stream (replica bootstrap)
//	GET  /v1/replication/stream   — ordered record frames from SubscribeFrom
//	GET  /v1/replication/wal      — sealed WAL segments (ring-truncated catch-up)
//	GET  /v1/replication/status   — replica state, lag, staleness bound
//	POST /v1/replication/promote  — stop following, accept writes

// replStreamHeartbeat is how often an idle stream sends a progress
// frame; it bounds both dead-connection detection and the replica's
// reported staleness resolution.
const replStreamHeartbeat = 500 * time.Millisecond

// Read-routing protocol headers. A client spreading reads across the
// replica tier bounds each read with HeaderMaxStaleness (and, for
// read-your-writes, HeaderMinSeq); a replica that cannot meet the bound
// answers 412 Precondition Failed carrying its current staleness, so the
// client re-routes without parsing a body.
const (
	// HeaderMaxStaleness is the request header carrying the client's
	// staleness bound in milliseconds. A replica whose provable staleness
	// exceeds it (or is still unknown) rejects the read with 412.
	HeaderMaxStaleness = "X-Quaestor-Max-Staleness-Ms"
	// HeaderMinSeq is the request header carrying the client's
	// read-your-writes floor: the owning store's sequence its last write
	// to this key was acknowledged at. A replica whose applied sequence
	// is below it rejects with 412.
	HeaderMinSeq = "X-Quaestor-Min-Seq"
	// HeaderAppliedSeq annotates replica-served record reads with the
	// owning store's applied sequence, so clients can track how far the
	// serving replica had caught up.
	HeaderAppliedSeq = "X-Quaestor-Applied-Seq"
	// HeaderWriteSeq annotates successful write responses with the owning
	// store's sequence at acknowledgement time — the value clients feed
	// into their per-key low-water-mark table for read-your-writes
	// routing. It is an upper bound on the write's own sequence, which is
	// the conservative (safe) direction.
	HeaderWriteSeq = "X-Quaestor-Seq"
	// HeaderEBFGenerated annotates read responses with the serving node's
	// EBF generation (Unix nanoseconds of its newest stale-key entry).
	// Clients holding an older filter refresh it from the tier that
	// serves them — Cached-Initialization-style piggybacking without a
	// primary round-trip.
	HeaderEBFGenerated = "X-Quaestor-EBF-Generated"
)

// replWriteTimeout bounds every write on a replication transfer. It is
// what protects the primary from a stalled-but-open replica connection:
// the stream feeds a Block-policy subscription, so a consumer that
// stops reading would otherwise fill the fan-out ring and wedge the
// entire write path; a WAL export additionally holds the snapshot lock
// for the duration of the transfer. A frozen peer errors out within
// this bound and the handler's cleanup (Cancel / Close) releases
// whatever it held.
const replWriteTimeout = 10 * time.Second

// deadlineWriter arms a fresh write deadline before every Write, so a
// long transfer only fails when the peer actually stalls, not for being
// large.
type deadlineWriter struct {
	w  io.Writer
	rc *http.ResponseController
}

func (d *deadlineWriter) Write(p []byte) (int, error) {
	// Ignore SetWriteDeadline errors (e.g. an http.ResponseWriter
	// wrapper without the capability): the write itself still proceeds,
	// only unbounded.
	_ = d.rc.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	return d.w.Write(p)
}

// AttachReplica hands the server the replica it fronts, enabling the
// status/promote endpoints, the replication section of /v1/stats,
// staleness headers on reads, and the coherence pump that feeds
// replicated writes into the TTL estimator and the EBF — without it a
// replica's estimator would see no writes at all (they arrive through
// replication, not the HTTP write path) and every key would look cold.
func (s *Server) AttachReplica(r *replication.Replica) {
	s.mu.Lock()
	s.replica = r
	s.mu.Unlock()
	s.followCoherence(s.db, "replica-coherence")
}

// Replica returns the attached replica, or nil on a primary.
func (s *Server) Replica() *replication.Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica
}

// handleReplication routes /v1/replication/*.
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/replication/snapshot":
		s.handleReplSnapshot(w, r)
	case "/v1/replication/stream":
		s.handleReplStream(w, r)
	case "/v1/replication/wal":
		s.handleReplWAL(w, r)
	case "/v1/replication/status":
		s.handleReplStatus(w, r)
	case "/v1/replication/promote":
		s.handleReplPromote(w, r)
	case "/v1/replication/demote":
		s.handleReplDemote(w, r)
	default:
		writeError(w, &httpError{http.StatusNotFound, "unknown replication endpoint"})
	}
}

// handleReplSnapshot streams a point-in-time snapshot for replica
// bootstrap; the meta frame carries the sequence floor the replica then
// streams from.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
		return
	}
	db, err := s.replStore(r)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set(replication.HeaderLastSeq, strconv.FormatUint(db.LastSeq(), 10))
	// Errors past this point cut the stream; the replica detects the
	// truncation through the missing end frame.
	dw := &deadlineWriter{w: w, rc: http.NewResponseController(w)}
	if _, _, err := db.ExportSnapshot(dw); err != nil {
		return
	}
}

// handleReplStream serves the live ordered feed: a SubscribeFrom
// subscription rendered as JSON frames, heartbeating the primary's
// LastSeq while idle. A floor older than the fan-out ring answers 410
// Gone — the replica must catch up through /v1/replication/wal (or a
// fresh snapshot) first.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, badRequest("invalid from sequence %q", r.URL.Query().Get("from")))
		return
	}
	name := r.URL.Query().Get("id")
	if name == "" {
		name = r.RemoteAddr
	}
	db, err := s.replStore(r)
	if err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &httpError{http.StatusInternalServerError, "streaming unsupported"})
		return
	}
	sub, err := db.SubscribeFrom("replica:"+name, from)
	if err != nil {
		if errors.Is(err, commitlog.ErrSeqTruncated) {
			writeJSON(w, http.StatusGone, map[string]string{"error": err.Error()})
			return
		}
		writeError(w, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	// The per-write deadline is load-bearing: this stream feeds a
	// Block-policy subscription, so without it a stalled-but-open peer
	// would fill the fan-out ring and wedge the primary's write path.
	enc := json.NewEncoder(&deadlineWriter{w: w, rc: http.NewResponseController(w)})
	// buf is reused across batches (Encode serializes before the next
	// conversion): this pump is the hot path feeding an attached
	// replica, one conversion per committed batch.
	buf := make([]wal.Record, 0, 256)
	send := func(f replication.Frame) bool {
		f.LastSeq = db.LastSeq()
		f.At = time.Now().UnixNano()
		if err := enc.Encode(f); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send(replication.Frame{}) { // greeting heartbeat: position check
		return
	}
	heartbeat := time.NewTicker(replStreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case batch, ok := <-sub.Events():
			if !ok {
				return // store closed
			}
			buf = replication.AppendRecords(buf[:0], batch)
			if !send(replication.Frame{Recs: buf}) {
				return
			}
		case <-heartbeat.C:
			if !send(replication.Frame{}) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleReplWAL ships the primary's sealed WAL segments: the catch-up
// channel for replicas whose position fell out of the fan-out ring but
// is still covered by the log. The snapshot floor rides in a header so
// the replica can detect an uncoverable gap before applying anything.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
		return
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		writeError(w, badRequest("invalid after sequence %q", r.URL.Query().Get("after")))
		return
	}
	db, err := s.replStore(r)
	if err != nil {
		writeError(w, err)
		return
	}
	exp, err := db.BeginWALExport(after)
	if err != nil {
		if errors.Is(err, store.ErrNotDurable) {
			writeError(w, &httpError{http.StatusConflict, "primary is in-memory; bootstrap from a snapshot instead"})
			return
		}
		writeError(w, err)
		return
	}
	defer exp.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set(replication.HeaderSnapshotSeq, strconv.FormatUint(exp.SnapshotSeq, 10))
	w.Header().Set(replication.HeaderLastSeq, strconv.FormatUint(exp.LastSeq, 10))
	// The export holds the store's snapshot lock; the per-write deadline
	// guarantees a stalled client cannot hold it (and block snapshots)
	// for more than replWriteTimeout.
	dw := &deadlineWriter{w: w, rc: http.NewResponseController(w)}
	_, _ = exp.WriteTo(dw) // a cut transfer surfaces as a torn frame replica-side
}

// ReplicationRole is the /v1/replication/status body for a primary (a
// replica answers with its full replication.Status instead; a sharded
// replica answers with one Status per shard). A fenced ex-primary
// reports role "demoted" with its successor in Primary.
type ReplicationRole struct {
	Role    string `json:"role"`
	LastSeq uint64 `json:"lastSeq"`
	// ShardLastSeqs is the per-shard sequence vector on a sharded
	// primary (absent on single-node deployments).
	ShardLastSeqs []uint64 `json:"shardLastSeqs,omitempty"`
	// Primary is the successor a demoted node advertises.
	Primary string `json:"primary,omitempty"`
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	if reps := s.ShardReplicas(); len(reps) > 0 {
		statuses := make([]replication.Status, len(reps))
		for i, rep := range reps {
			statuses[i] = rep.Status()
		}
		writeJSON(w, http.StatusOK, statuses)
		return
	}
	if repl := s.Replica(); repl != nil {
		writeJSON(w, http.StatusOK, repl.Status())
		return
	}
	last, vector := s.seqPosition()
	role := ReplicationRole{Role: "primary", LastSeq: last, ShardLastSeqs: vector}
	if fenced := s.fencedPrimary(); fenced != "" {
		role.Role = string(replication.StateDemoted)
		role.Primary = fenced
	}
	writeJSON(w, http.StatusOK, role)
}

// PromoteOutcome is one shard follower's promote result.
type PromoteOutcome struct {
	Shard int `json:"shard"`
	// Changed is false when the shard was already promoted — the signal
	// that distinguishes a fresh flip from an idempotent re-delivery
	// (e.g. a coordinator retrying after a crash mid-promote).
	Changed bool              `json:"changed"`
	State   replication.State `json:"state"`
	LastSeq uint64            `json:"lastSeq"`
}

// PromoteResponse is the body of POST /v1/replication/promote.
type PromoteResponse struct {
	Promoted bool   `json:"promoted"`
	Changed  bool   `json:"changed"`
	LastSeq  uint64 `json:"lastSeq"`
	// Shards carries the per-shard outcomes on a sharded replica. A
	// whole-node promote that crashes mid-loop leaves a visible partial
	// state here — re-POSTing is safe (promotes are idempotent) and the
	// outcomes show exactly which shards flipped when.
	Shards []PromoteOutcome `json:"shards,omitempty"`
}

// handleReplPromote promotes this node's follower(s) to writable
// primaries. Sharded, ?shard=i promotes a single shard (the failover
// coordinator's per-shard path); without it every shard flips, with a
// per-shard outcome reported for each so a mid-promote crash cannot
// produce silent split-brain. All paths are idempotent.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "POST only"})
		return
	}
	if reps := s.ShardReplicas(); len(reps) > 0 {
		sel := -1
		if v := r.URL.Query().Get("shard"); v != "" {
			idx, err := strconv.Atoi(v)
			if err != nil || idx < 0 || idx >= len(reps) {
				writeError(w, badRequest("invalid shard %q (%d shard followers)", v, len(reps)))
				return
			}
			sel = idx
		}
		oldPrimary := reps[0].Status().Primary
		resp := PromoteResponse{Promoted: true}
		for i, rep := range reps {
			if sel >= 0 && i != sel {
				continue
			}
			changed := rep.Promote()
			st := rep.Status()
			resp.Shards = append(resp.Shards, PromoteOutcome{Shard: i, Changed: changed, State: st.State, LastSeq: st.LastSeq})
			resp.Changed = resp.Changed || changed
		}
		resp.LastSeq, _ = s.seqPosition()
		if s.allShardsPromoted() {
			s.noteSelfPromoted(oldPrimary)
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	repl := s.Replica()
	if repl == nil {
		writeError(w, &httpError{http.StatusConflict, "not a replica"})
		return
	}
	oldPrimary := repl.Status().Primary
	changed := repl.Promote()
	s.noteSelfPromoted(oldPrimary)
	writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, Changed: changed, LastSeq: s.db.LastSeq()})
}

// replicaStatus reports the node's replica view: the attached replica's
// status, or — on a sharded replica — the worst bound across all shard
// followers (a read may have touched any of them). ok is false on a
// primary (no replica attached).
func (s *Server) replicaStatus() (st replication.Status, ok bool) {
	if reps := s.ShardReplicas(); len(reps) > 0 {
		st = reps[0].Status()
		for _, rep := range reps[1:] {
			cur := rep.Status()
			// -1 (unknown) dominates any numeric bound: the node can only
			// prove what its least-proven shard can — unknown must never
			// aggregate as "fresher than 0".
			if cur.StalenessMs < 0 || (st.StalenessMs >= 0 && cur.StalenessMs > st.StalenessMs) {
				st.StalenessMs = cur.StalenessMs
			}
			if cur.LagSeq > st.LagSeq {
				st.LagSeq = cur.LagSeq
			}
			// Mixed per-shard states collapse to the least-caught-up one
			// for the header; the status endpoint has the detail.
			if stateRank(cur.State) > stateRank(st.State) {
				st.State = cur.State
			}
		}
		return st, true
	}
	repl := s.Replica()
	if repl == nil {
		return replication.Status{}, false
	}
	return repl.Status(), true
}

// stateRank orders replica states from most to least caught up, so a
// mixed-state node (mid-failover: one shard promoted, another still
// following) collapses to the conservative one for admission and
// headers.
func stateRank(st replication.State) int {
	switch st {
	case replication.StatePromoted:
		return 0
	case replication.StateStreaming:
		return 1
	case replication.StateCatchingUp:
		return 2
	case replication.StateBootstrapping:
		return 3
	case replication.StateConnecting:
		return 4
	default: // stopped, demoted, unknown
		return 5
	}
}

// replicaStatusFor is replicaStatus scoped to the shard owning a record:
// record reads admit against the owning follower's own bound, so one
// lagging (or unknown-staleness) shard doesn't 412 reads of keys another
// shard serves provably fresh — and, mid-failover, a shard already
// promoted on this node admits its keys while its siblings still follow.
func (s *Server) replicaStatusFor(id string) (replication.Status, bool) {
	if id != "" && s.cluster != nil {
		if reps := s.ShardReplicas(); len(reps) > 0 {
			sh := s.cluster.ShardFor(id)
			if sh >= 0 && sh < len(reps) && reps[sh] != nil {
				return reps[sh].Status(), true
			}
		}
	}
	return s.replicaStatus()
}

// servingAsReplica reports whether reads served right now come from a
// following replica (a promoted replica is a primary again).
func (s *Server) servingAsReplica() bool {
	st, ok := s.replicaStatus()
	return ok && st.State != replication.StatePromoted
}

// addReplicaHeaders stamps read responses with the staleness bound, so
// clients of a replica know how far behind the primary their read may
// be (the paper's Δ-atomicity reporting, extended to replica reads).
func (s *Server) addReplicaHeaders(w http.ResponseWriter) {
	st, ok := s.replicaStatus()
	if !ok {
		return
	}
	w.Header().Set("X-Quaestor-Replica", string(st.State))
	if st.StalenessMs >= 0 {
		w.Header().Set("X-Quaestor-Staleness-Ms", fmt.Sprintf("%.0f", st.StalenessMs))
	}
	if st.LagSeq > 0 {
		w.Header().Set("X-Quaestor-Replica-Lag", strconv.FormatUint(st.LagSeq, 10))
	}
}

// addReplicaHeadersFor is addReplicaHeaders plus the record's
// applied-sequence annotation: the owning store's newest applied
// sequence, the value a client compares its read-your-writes floor
// against. The staleness headers come from the owning shard's follower,
// not the node-wide worst case — per-record reads are admitted per
// shard, so they must be annotated per shard too.
func (s *Server) addReplicaHeadersFor(w http.ResponseWriter, id string) {
	st, ok := s.replicaStatusFor(id)
	if !ok || st.State == replication.StatePromoted {
		return
	}
	w.Header().Set("X-Quaestor-Replica", string(st.State))
	if st.StalenessMs >= 0 {
		w.Header().Set("X-Quaestor-Staleness-Ms", fmt.Sprintf("%.0f", st.StalenessMs))
	}
	if st.LagSeq > 0 {
		w.Header().Set("X-Quaestor-Replica-Lag", strconv.FormatUint(st.LagSeq, 10))
	}
	w.Header().Set(HeaderAppliedSeq, strconv.FormatUint(s.dbFor(id).LastSeq(), 10))
}

// admitRead enforces the read-routing admission protocol on a
// replica-served read. A request carrying HeaderMaxStaleness (and
// optionally HeaderMinSeq for record reads) is rejected with 412
// Precondition Failed when this node cannot prove it meets the bound —
// the response carries the current staleness headers so the client can
// re-route to a fresher replica (or the primary) without parsing a body.
// Primaries (and promoted replicas) admit everything: they are the
// freshness ceiling. Returns false when the response has been written.
func (s *Server) admitRead(w http.ResponseWriter, r *http.Request, id string) bool {
	maxStr := r.Header.Get(HeaderMaxStaleness)
	minStr := r.Header.Get(HeaderMinSeq)
	if maxStr == "" && minStr == "" {
		return true
	}
	st, ok := s.replicaStatusFor(id)
	if !ok {
		// A fenced ex-primary stopped receiving writes the moment its
		// replicas were promoted; it cannot prove any staleness bound.
		if maxStr != "" && s.fencedPrimary() != "" {
			s.stalenessRejects.Add(1)
			writeJSON(w, http.StatusPreconditionFailed, map[string]string{"error": "node is a demoted primary; staleness unbounded"})
			return false
		}
		return true
	}
	if st.State == replication.StatePromoted {
		return true
	}
	reject := func(reason string) bool {
		s.stalenessRejects.Add(1)
		s.addReplicaHeadersFor(w, id)
		writeJSON(w, http.StatusPreconditionFailed, map[string]string{"error": reason})
		return false
	}
	if maxStr != "" {
		bound, err := strconv.ParseFloat(maxStr, 64)
		if err == nil {
			if st.StalenessMs < 0 {
				return reject("replica staleness not yet bounded")
			}
			if st.StalenessMs > bound {
				return reject(fmt.Sprintf("replica staleness %.0fms exceeds bound %.0fms", st.StalenessMs, bound))
			}
		}
	}
	if minStr != "" && id != "" {
		minSeq, err := strconv.ParseUint(minStr, 10, 64)
		if err == nil && s.dbFor(id).LastSeq() < minSeq {
			return reject(fmt.Sprintf("replica applied seq %d behind required %d", s.dbFor(id).LastSeq(), minSeq))
		}
	}
	return true
}
