package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"quaestor/internal/invalidb"
	"quaestor/internal/query"
	"quaestor/internal/ttl"
)

// This file implements real-time query change streams (Section 3.2):
// "clients can directly subscribe to websocket-based query result change
// streams that are otherwise only used for the construction of the EBF.
// Through this synchronization scheme, the application can define its
// critical data set through queries and keep it up-to-date in real-time."
// The transport here is Server-Sent Events (SSE) rather than websockets —
// the semantics (a push stream of add/remove/change/changeIndex events per
// subscribed query) are identical and stdlib-only.

// Subscription is a live feed of change notifications for one query.
type Subscription struct {
	ch     chan invalidb.Notification
	cancel func()
}

// Events returns the notification stream.
func (s *Subscription) Events() <-chan invalidb.Notification { return s.ch }

// Close detaches the subscription.
func (s *Subscription) Close() { s.cancel() }

// Subscribe registers the query for invalidation detection (if it is not
// active yet) and returns a live notification feed. Slow subscribers drop
// events rather than stalling the pipeline.
func (s *Server) Subscribe(q *query.Query) (*Subscription, error) {
	asOf, asOfs := s.seqPosition()
	if err := s.activateIfNeeded(q, asOf, asOfs, ttl.ObjectList); err != nil {
		return nil, err
	}
	key := q.Key()
	ch := make(chan invalidb.Notification, 256)
	s.mu.Lock()
	if s.subscribers == nil {
		s.subscribers = map[string]map[int]chan invalidb.Notification{}
	}
	if s.subscribers[key] == nil {
		s.subscribers[key] = map[int]chan invalidb.Notification{}
	}
	id := s.nextSubID
	s.nextSubID++
	s.subscribers[key][id] = ch
	s.mu.Unlock()

	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if m, ok := s.subscribers[key]; ok {
			if c, ok := m[id]; ok {
				delete(m, id)
				close(c)
			}
			if len(m) == 0 {
				delete(s.subscribers, key)
			}
		}
	}
	return &Subscription{ch: ch, cancel: cancel}, nil
}

// fanOutToSubscribers relays one notification to all live subscriptions
// of its query; called from the notification loop. The sends are
// non-blocking, so they run under the lock — that is what makes them
// safe against a concurrent Close() on the subscription's channel.
func (s *Server) fanOutToSubscribers(n invalidb.Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subscribers[n.QueryKey] {
		select {
		case ch <- n:
		default:
			// Drop for slow consumers; the EBF still covers them. The
			// drop is counted in /v1/stats' pipeline section.
			s.sseDropped.Add(1)
		}
	}
}

// SubscriptionEvent is the SSE JSON payload.
type SubscriptionEvent struct {
	QueryKey string         `json:"query"`
	Type     string         `json:"type"`
	ID       string         `json:"id"`
	Doc      map[string]any `json:"doc,omitempty"`
	Index    int            `json:"index"`
	Seq      uint64         `json:"seq"`
}

// handleSubscribe serves GET /v1/subscribe?table=…&q=…&sort=…&limit=… as a
// Server-Sent Events stream: one `data:` line per notification.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		writeError(w, badRequest("missing table parameter"))
		return
	}
	q, err := ParseQueryRequest(table, r.URL.Query())
	if err != nil {
		writeError(w, err)
		return
	}
	sub, err := s.Subscribe(q)
	if err != nil {
		writeError(w, err)
		return
	}
	defer sub.Close()

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Quaestor-Key", q.Key())
	// Replica-served streams are annotated like any other read: the
	// staleness bound at attach time.
	s.addReplicaHeaders(w)
	w.WriteHeader(http.StatusOK)
	if canFlush {
		flusher.Flush()
	}

	ctx := r.Context()
	for {
		select {
		case n, ok := <-sub.Events():
			if !ok {
				return
			}
			ev := SubscriptionEvent{
				QueryKey: n.QueryKey,
				Type:     n.Type.String(),
				Index:    n.Index,
				Seq:      n.Seq,
			}
			if n.Doc != nil {
				ev.ID = n.Doc.ID
				ev.Doc = n.Doc.Fields
			}
			payload, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", payload); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		case <-ctx.Done():
			return
		}
	}
}
