package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quaestor/internal/query"
)

// TestQueryPlanMetrics verifies query executions are attributed to the
// planner's access-path choice in Stats and the per-plan histograms.
func TestQueryPlanMetrics(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "a", "b")
	insertPost(t, srv, "p2", "b")

	q := query.New("posts", query.Contains("tags", "a"))
	if _, err := srv.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.PlanScans != 1 || st.PlanProbes != 0 {
		t.Fatalf("before index: stats = %+v", st)
	}

	if err := srv.CreateIndex("posts", "tags"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Query(query.New("posts", query.Gt("rating", int64(1)))); err != nil {
		t.Fatal(err)
	}
	// rating is unindexed: that query scans.
	st := srv.Stats()
	if st.PlanProbes != 1 || st.PlanScans != 2 || st.PlanRanges != 0 {
		t.Fatalf("stats = %+v", st)
	}

	if err := srv.CreateIndex("posts", "rating"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Query(query.New("posts", query.Gt("rating", int64(1)))); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.PlanRanges != 1 {
		t.Fatalf("stats = %+v", st)
	}

	if n := srv.PlanLatency(query.PlanProbe).Count(); n != 1 {
		t.Fatalf("probe latency samples = %d, want 1", n)
	}
	if n := srv.PlanLatency(query.PlanScan).Count(); n != 2 {
		t.Fatalf("scan latency samples = %d, want 2", n)
	}
}

// TestHTTPIndexEndpoint drives index administration over REST and checks
// plan counters surface in /v1/stats.
func TestHTTPIndexEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	// Enough docs that the probe estimate beats the scan estimate.
	for i := 0; i < 10; i++ {
		insertPost(t, srv, fmt.Sprintf("p%d", i), "a")
	}
	h := srv.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := do(http.MethodPost, "/v1/indexes/posts", `{"path":"tags"}`); rec.Code != http.StatusCreated {
		t.Fatalf("create index: %d %s", rec.Code, rec.Body)
	}
	if rec := do(http.MethodPost, "/v1/indexes/posts", `{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing path must 400, got %d", rec.Code)
	}
	if rec := do(http.MethodPost, "/v1/indexes/nope", `{"path":"x"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown table must 404, got %d", rec.Code)
	}

	rec := do(http.MethodGet, "/v1/indexes/posts", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list indexes: %d", rec.Code)
	}
	var list struct {
		Paths []string `json:"paths"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Paths) != 1 || list.Paths[0] != "tags" {
		t.Fatalf("paths = %v", list.Paths)
	}

	// A sargable query now routes through the probe path, visible in stats.
	if rec := do(http.MethodGet, `/v1/db/posts?q={"tags":{"$contains":"a"}}`, ""); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	rec = do(http.MethodGet, "/v1/stats", "")
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.PlanProbes != 1 {
		t.Fatalf("stats = %+v, want one probe", st)
	}
}

// TestIndexEndpointRequiresAdmin ensures index DDL sits behind the admin
// role once auth is enabled.
func TestIndexEndpointRequiresAdmin(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.EnableAuth(&AuthConfig{
		Tokens:              map[string]Role{"w": RoleWriter, "adm": RoleAdmin},
		AllowAnonymousReads: true,
	})
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/indexes/posts", strings.NewReader(`{"path":"tags"}`))
	req.Header.Set("Authorization", "Bearer w")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("writer role must be forbidden, got %d", rec.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/indexes/posts", strings.NewReader(`{"path":"tags"}`))
	req.Header.Set("Authorization", "Bearer adm")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("admin create failed: %d %s", rec.Code, rec.Body)
	}
}
