package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// TestQueryStreamNDJSON drives the streamed query endpoint end to end:
// one document per line, newest plan report in stats, and explicitly
// uncacheable headers.
func TestQueryStreamNDJSON(t *testing.T) {
	srv := newTestServer(t, nil)
	for i := 0; i < 20; i++ {
		insertPost(t, srv, fmt.Sprintf("p%02d", i), "a")
	}
	if err := srv.CreateIndex("posts", "rating"); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// All posts share rating 3 (len("pNN")); sort by id via rating ties.
	path := "/v1/db/posts?q=" + url.QueryEscape(`{"rating":{"$gt":0}}`) +
		"&sort=-rating&limit=5&stream=1"
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("streamed responses must be no-store, got %q", cc)
	}
	if rec.Header().Get("X-Quaestor-Key") == "" {
		t.Fatal("missing query key header")
	}

	var streamed []*document.Document
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var d document.Document
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d: %v", len(streamed), err)
		}
		streamed = append(streamed, &d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// The stream must match the materializing path document for document.
	q := query.New("posts", query.Gt("rating", int64(0))).Sorted(query.Desc("rating")).Sliced(0, 5)
	want, _, err := srv.db.QueryPlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d docs, want %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i].ID != want[i].ID || streamed[i].Version != want[i].Version {
			t.Fatalf("position %d: %s/v%d, want %s/v%d",
				i, streamed[i].ID, streamed[i].Version, want[i].ID, want[i].Version)
		}
	}

	// The streamed execution is attributed in stats: a range plan ran, and
	// the executor's row counters surfaced.
	st := srv.Stats()
	if st.PlanRanges != 1 || st.Queries != 1 {
		t.Fatalf("stats = %+v, want one range query", st)
	}
	if st.RowsReturned != 5 || st.RowsExamined < 5 {
		t.Fatalf("row counters = examined %d / returned %d, want ≥5 / 5",
			st.RowsExamined, st.RowsReturned)
	}

	// Malformed filters still fail fast with a JSON error, not a stream.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/db/posts?q=%7Bnope&stream=1", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad filter: %d", rec.Code)
	}
}

func TestStreamRequested(t *testing.T) {
	for v, want := range map[string]bool{
		"1": true, "true": true, "TRUE": true, "t": true,
		"0": false, "false": false, "": false, "yes": false,
	} {
		if got := streamRequested(v); got != want {
			t.Errorf("streamRequested(%q) = %v, want %v", v, got, want)
		}
	}
}
