package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
	"quaestor/internal/ttl"
)

func newTestServer(t *testing.T, opts *Options) *Server {
	t.Helper()
	db := store.MustOpen(nil)
	srv := New(db, opts)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	return srv
}

func insertPost(t *testing.T, srv *Server, id string, tags ...string) {
	t.Helper()
	arr := make([]any, len(tags))
	for i, tg := range tags {
		arr[i] = tg
	}
	if err := srv.Insert("posts", document.New(id, map[string]any{"tags": arr, "rating": int64(len(id))})); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestReadAndTTLReporting(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "x")
	res, err := srv.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Doc.ID != "p1" || res.TTL <= 0 || res.ETag == "" {
		t.Errorf("read result = %+v", res)
	}
	// The issued TTL must be registered with the EBF: a write now flags it.
	if !srv.coh.ReportWrite(RecordKey("posts", "p1")) {
		t.Error("EBF did not track the issued record TTL")
	}
}

func TestQueryCachesAndActivates(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "x")
	insertPost(t, srv, "p2", "x")
	q := query.New("posts", query.Contains("tags", "x"))
	res, err := srv.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cacheable || res.TTL <= 0 {
		t.Errorf("query should be cacheable: %+v", res)
	}
	if len(res.IDs) != 2 {
		t.Errorf("IDs = %v", res.IDs)
	}
	if srv.InvaliDB().ActiveQueries() != 1 {
		t.Errorf("active queries = %d", srv.InvaliDB().ActiveQueries())
	}
	// Second query reuses the activation.
	if _, err := srv.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().QueryActivations; got != 1 {
		t.Errorf("activations = %d", got)
	}
}

func TestInvalidationPurgesAndFeedsEWMA(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "x")

	var mu sync.Mutex
	purged := map[string]int{}
	srv.AddPurger(PurgerFunc(func(path string) {
		mu.Lock()
		purged[path]++
		mu.Unlock()
	}))

	q := query.New("posts", query.Contains("tags", "x"))
	if _, err := srv.Query(q); err != nil {
		t.Fatal(err)
	}
	srv.RegisterQueryPath(q.Key(), "/v1/db/posts?q=x")

	// A matching insert invalidates the cached query.
	insertPost(t, srv, "p2", "x")
	srv.InvaliDB().Quiesce(5 * time.Second)
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return purged["/v1/db/posts?q=x"] >= 1
	})
	// The EWMA got its first actual-TTL sample.
	if _, ok := srv.Estimator().EstimateSnapshot(q.Key()); !ok {
		t.Error("invalidation did not feed the estimator")
	}
	// The record write also purged the record path (the insert of p2 had
	// no prior read, so only the query purge plus possibly p1's path).
	if srv.Stats().Invalidations == 0 {
		t.Error("no invalidations recorded")
	}
}

func TestUncachedModeIssuesNoTTLs(t *testing.T) {
	srv := newTestServer(t, &Options{Mode: ModeUncached})
	insertPost(t, srv, "p1", "x")
	res, err := srv.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if res.TTL != 0 {
		t.Errorf("uncached mode issued TTL %v", res.TTL)
	}
	qres, err := srv.Query(query.New("posts", query.Contains("tags", "x")))
	if err != nil {
		t.Fatal(err)
	}
	if qres.Cacheable {
		t.Error("uncached mode produced a cacheable query")
	}
	if srv.InvaliDB().ActiveQueries() != 0 {
		t.Error("uncached mode should not register queries")
	}
}

func TestCacheControlPerMode(t *testing.T) {
	cases := []struct {
		mode    CacheMode
		browser bool
		cdn     bool
	}{
		{ModeFull, true, true},
		{ModeCDNOnly, false, true},
		{ModeClientOnly, true, false},
		{ModeUncached, false, false},
	}
	for _, tc := range cases {
		srv := newTestServer(t, &Options{Mode: tc.mode})
		b, c := srv.CacheControl(time.Minute)
		if (b > 0) != tc.browser || (c > 0) != tc.cdn {
			t.Errorf("%v: browser=%v cdn=%v", tc.mode, b, c)
		}
		if srv.Mode() != tc.mode {
			t.Errorf("mode = %v", srv.Mode())
		}
	}
}

func TestRepresentationPolicies(t *testing.T) {
	forced := newTestServer(t, &Options{Representation: RepAlwaysIDs})
	insertPost(t, forced, "p1", "x")
	res, err := forced.Query(query.New("posts", query.Contains("tags", "x")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Representation != ttl.IDList {
		t.Errorf("forced id-list, got %v", res.Representation)
	}

	obj := newTestServer(t, &Options{Representation: RepAlwaysObjects})
	insertPost(t, obj, "p1", "x")
	res, err = obj.Query(query.New("posts", query.Contains("tags", "x")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Representation != ttl.ObjectList {
		t.Errorf("forced object-list, got %v", res.Representation)
	}
}

func TestQueryCapacityRejection(t *testing.T) {
	srv := newTestServer(t, &Options{
		InvaliDB:      &invalidbCfg1,
		QueryCapacity: 1,
	})
	insertPost(t, srv, "p1", "x", "y")
	q1 := query.New("posts", query.Contains("tags", "x"))
	q2 := query.New("posts", query.Contains("tags", "y"))
	r1, err := srv.Query(q1)
	if err != nil || !r1.Cacheable {
		t.Fatalf("first query should be admitted: %+v %v", r1, err)
	}
	// Make q1 valuable so q2 cannot displace it.
	for i := 0; i < 5; i++ {
		if _, err := srv.Query(q1); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := srv.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cacheable {
		t.Error("query beyond capacity should be served uncacheable")
	}
	if srv.Stats().RejectedQueries == 0 {
		t.Error("rejection not counted")
	}
}

// invalidbCfg1 caps InvaliDB at one active query.
var invalidbCfg1 = invalidbConfig1()

func TestHTTPCRUDAndQuery(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()

	do := func(method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
		var rdr *bytes.Reader
		if body != "" {
			rdr = bytes.NewReader([]byte(body))
		} else {
			rdr = bytes.NewReader(nil)
		}
		req := httptest.NewRequest(method, path, rdr)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	// Create table via HTTP.
	if rec := do(http.MethodPost, "/v1/tables/users", "", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create table = %d", rec.Code)
	}
	// Insert.
	if rec := do(http.MethodPost, "/v1/db/posts", `{"_id":"p1","tags":["x"],"rating":5}`, nil); rec.Code != http.StatusCreated {
		t.Fatalf("insert = %d %s", rec.Code, rec.Body.String())
	}
	// Read with caching headers.
	rec := do(http.MethodGet, "/v1/db/posts/p1", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("read = %d", rec.Code)
	}
	if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "max-age=") {
		t.Errorf("Cache-Control = %q", cc)
	}
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}
	// Conditional read -> 304.
	if rec := do(http.MethodGet, "/v1/db/posts/p1", "", map[string]string{"If-None-Match": etag}); rec.Code != http.StatusNotModified {
		t.Errorf("conditional read = %d", rec.Code)
	}
	// Patch.
	rec = do(http.MethodPatch, "/v1/db/posts/p1", `{"Set":{"rating":9}}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("patch = %d %s", rec.Code, rec.Body.String())
	}
	var updated document.Document
	if err := json.Unmarshal(rec.Body.Bytes(), &updated); err != nil {
		t.Fatal(err)
	}
	if v, _ := updated.Get("rating"); v != int64(9) {
		t.Errorf("patched rating = %v", v)
	}
	// Put (upsert).
	if rec := do(http.MethodPut, "/v1/db/posts/p2", `{"tags":["x"]}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("put = %d", rec.Code)
	}
	// Query.
	rec = do(http.MethodGet, "/v1/db/posts?q="+`{"tags":{"$contains":"x"}}`, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d %s", rec.Code, rec.Body.String())
	}
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 2 {
		t.Errorf("query count = %d", qr.Count)
	}
	if key := rec.Header().Get("X-Quaestor-Key"); key == "" {
		t.Error("missing X-Quaestor-Key")
	}
	// Delete.
	if rec := do(http.MethodDelete, "/v1/db/posts/p1", "", nil); rec.Code != http.StatusNoContent {
		t.Errorf("delete = %d", rec.Code)
	}
	// 404 paths.
	if rec := do(http.MethodGet, "/v1/db/posts/missing", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing read = %d", rec.Code)
	}
	if rec := do(http.MethodGet, "/v1/db/ghost-table?q={}", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing table query = %d", rec.Code)
	}
	// Invalid filter -> 400.
	if rec := do(http.MethodGet, "/v1/db/posts?q=not-json", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad filter = %d", rec.Code)
	}
	// Duplicate insert -> 409.
	if rec := do(http.MethodPost, "/v1/db/posts", `{"_id":"p2"}`, nil); rec.Code != http.StatusConflict {
		t.Errorf("duplicate insert = %d", rec.Code)
	}
	// Stats endpoint.
	if rec := do(http.MethodGet, "/v1/stats", "", nil); rec.Code != http.StatusOK {
		t.Errorf("stats = %d", rec.Code)
	}
}

func TestHTTPEBFEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/ebf", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("EBF = %d", rec.Code)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("the EBF itself must never be cached: %q", cc)
	}
	var body EBFResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Filter == "" || body.GeneratedAt == 0 {
		t.Errorf("EBF body = %+v", body)
	}
}

func TestParseQueryRequest(t *testing.T) {
	q, err := ParseQueryRequest("posts", mustValues("q="+`{"a":1}`+"&sort=-rating,title&offset=5&limit=10"))
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "posts" || len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Path != "title" {
		t.Errorf("parsed query = %+v", q)
	}
	if q.Offset != 5 || q.Limit != 10 {
		t.Errorf("window = %d,%d", q.Offset, q.Limit)
	}
	if _, err := ParseQueryRequest("posts", mustValues("offset=-1")); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := ParseQueryRequest("posts", mustValues("limit=x")); err == nil {
		t.Error("non-numeric limit accepted")
	}
}

func TestDeferredPurge(t *testing.T) {
	srv := newTestServer(t, &Options{InvalidationDelay: 10 * time.Millisecond})
	insertPost(t, srv, "p1", "x")
	var mu sync.Mutex
	var purges []string
	srv.AddPurger(PurgerFunc(func(path string) {
		mu.Lock()
		purges = append(purges, path)
		mu.Unlock()
	}))
	// Read gives the record a TTL; the next write purges after the delay.
	if _, err := srv.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"rating": 1}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	immediate := len(purges)
	mu.Unlock()
	if immediate != 0 {
		t.Error("purge fired before the configured delay")
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(purges) == 1 && purges[0] == RecordPath("posts", "p1")
	})
}
