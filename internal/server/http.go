package server

import (
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"quaestor/internal/coordinator"
	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/replication"
	"quaestor/internal/store"
	"quaestor/internal/ttl"
)

// Handler returns the REST API as an http.Handler:
//
//	GET    /v1/ebf                     — flat EBF snapshot (base64 in JSON)
//	POST   /v1/tables/{table}          — create table
//	GET    /v1/db/{table}/{id}         — read record (cacheable)
//	PUT    /v1/db/{table}/{id}         — upsert record
//	PATCH  /v1/db/{table}/{id}         — partial update (UpdateSpec JSON)
//	DELETE /v1/db/{table}/{id}         — delete record
//	POST   /v1/db/{table}              — insert record
//	GET    /v1/db/{table}?q=…&sort=…&limit=…&offset=… — query (cacheable)
//	GET    /v1/db/{table}?…&stream=1   — streamed query (NDJSON, uncacheable)
//	POST   /v1/indexes/{table}         — create secondary index ({"path": …})
//	GET    /v1/indexes/{table}         — list indexed field paths
//	GET    /v1/stats                   — server statistics (plan counts, commit pipeline, WAL/recovery, replication)
//	POST   /v1/admin/snapshot          — snapshot the durable store, truncate WAL
//	POST   /v1/transaction             — BOCC transaction commit
//	GET    /v1/subscribe?table=…&q=…   — SSE query change stream
//	GET    /v1/replication/snapshot    — snapshot stream (replica bootstrap)
//	GET    /v1/replication/stream      — ordered replication frames (from=seq)
//	GET    /v1/replication/wal         — sealed WAL segment shipping
//	GET    /v1/replication/status      — role, lag, staleness bound
//	POST   /v1/replication/promote     — promote a replica to writable primary
//
// Cacheable responses carry Cache-Control, ETag and X-Quaestor-Key headers;
// conditional requests with If-None-Match receive 304.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ebf", s.handleEBF)
	mux.HandleFunc("/v1/tables/", s.handleTables)
	mux.HandleFunc("/v1/db/", s.handleDB)
	mux.HandleFunc("/v1/indexes/", s.handleIndexes)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/transaction", s.handleTxn)
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("/v1/files/", s.handleFiles)
	mux.HandleFunc("/v1/schema/", s.handleSchema)
	mux.HandleFunc("/v1/admin/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/replication/", s.handleReplication)
	mux.HandleFunc("/v1/cluster/map", s.handleClusterMap)
	mux.HandleFunc("/v1/cluster/replicas", s.handleClusterReplicas)
	mux.HandleFunc("/v1/failover/status", s.handleFailoverStatus)
	return s.withAuth(s.withShardEpoch(mux))
}

type httpError struct {
	status int
	msg    string
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	status := http.StatusInternalServerError
	msg := err.Error()
	switch {
	case errors.As(err, &he):
		status = he.status
		msg = he.msg
	case errors.Is(err, store.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrExists):
		status = http.StatusConflict
	case errors.Is(err, store.ErrNoTable):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrVersionCheck):
		status = http.StatusPreconditionFailed
	case errors.Is(err, store.ErrBadUpdateSpec), errors.Is(err, store.ErrEmptyID):
		status = http.StatusBadRequest
	case errors.Is(err, store.ErrReadOnly):
		// An unpromoted replica: writes belong on the primary.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": msg})
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// EBFResponse is the JSON body of GET /v1/ebf.
type EBFResponse struct {
	// Filter is the base64-encoded flat Bloom filter (bloom.Filter wire
	// format).
	Filter string `json:"filter"`
	// GeneratedAt is the snapshot generation time in Unix nanoseconds; the
	// client's Δ is measured against it.
	GeneratedAt int64 `json:"generatedAt"`
	// Entries is the number of currently stale keys.
	Entries int `json:"entries"`
}

func (s *Server) handleEBF(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
		return
	}
	// ?table=X serves that table's partition only — clients may trade
	// extra fetches for a lower false positive rate (Section 3.3).
	snap := s.EBFSnapshot()
	if table := r.URL.Query().Get("table"); table != "" {
		snap = s.EBFTableSnapshot(table)
	}
	// The EBF itself must never be cached: it is the coherence signal.
	w.Header().Set("Cache-Control", "no-store")
	// On a replica the filter describes replica state: annotate it with
	// the staleness bound like every other replica-served read, so
	// clients can weigh the coherence signal's own age.
	s.addReplicaHeaders(w)
	body := EBFResponse{
		Filter:      base64.StdEncoding.EncodeToString(snap.Filter.Marshal()),
		GeneratedAt: snap.GeneratedAt.UnixNano(),
		Entries:     snap.Entries,
	}
	// A sparse Bloom filter is highly compressible; honour gzip so the
	// piggybacked filter stays within one congestion window on the wire.
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		gz := gzip.NewWriter(w)
		_ = json.NewEncoder(gz).Encode(body)
		_ = gz.Close()
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "POST only"})
		return
	}
	table := strings.TrimPrefix(r.URL.Path, "/v1/tables/")
	if table == "" || strings.Contains(table, "/") {
		writeError(w, badRequest("invalid table name %q", table))
		return
	}
	var err error
	if s.cluster != nil {
		err = s.cluster.CreateTable(table)
	} else {
		err = s.db.CreateTable(table)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"table": table})
}

// handleIndexes serves index administration: POST creates an index from a
// {"path": "field.path"} body, GET lists the table's indexed paths.
func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	table := strings.TrimPrefix(r.URL.Path, "/v1/indexes/")
	if table == "" || strings.Contains(table, "/") {
		writeError(w, badRequest("invalid table name %q", table))
		return
	}
	switch r.Method {
	case http.MethodPost:
		var body struct {
			Path string `json:"path"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Path == "" {
			writeError(w, badRequest("body must be {\"path\": \"field.path\"}"))
			return
		}
		if err := s.CreateIndex(table, body.Path); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"table": table, "path": body.Path})
	case http.MethodGet:
		paths, err := s.Indexes(table)
		if err != nil {
			writeError(w, err)
			return
		}
		s.addReplicaHeaders(w)
		writeJSON(w, http.StatusOK, map[string]any{"table": table, "paths": paths})
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET or POST only"})
	}
}

// PipelineSection is the commit pipeline's slice of /v1/stats: ordered
// fan-out counters with per-subscriber lag and drop accounting, the
// publish→deliver latency histogram, the sequencer's reorder-buffer
// occupancy, and how many notifications the SSE layer shed to slow
// clients.
type PipelineSection struct {
	store.PipelineStats
	SSEDropped uint64 `json:"sseDropped"`
}

// StatsResponse is the JSON body of GET /v1/stats: the activity counters,
// the commit-pipeline section (whose per-subscriber entries include each
// attached replica's lag as "replica:<name>"), on durable stores the
// WAL/snapshot/recovery section, and on replicas the replication
// status.
type StatsResponse struct {
	Stats
	Pipeline    PipelineSection        `json:"pipeline"`
	Durability  *store.DurabilityStats `json:"durability,omitempty"`
	Replication *replication.Status    `json:"replication,omitempty"`
	// Cluster carries the per-shard sections (pipeline, durability,
	// replication, LastSeq) in sharded mode. Cluster-level query plan
	// aggregation rides in the top-level Stats row counters: scattered
	// queries sum per-shard RowsExamined/RowsReturned before recording.
	Cluster *ClusterSection `json:"cluster,omitempty"`
	// Failover is the attached coordinator's supervision state (probe
	// counters, election reports); present only on nodes running one.
	Failover *coordinator.Status `json:"failover,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	resp := StatsResponse{
		Stats: s.Stats(),
		Pipeline: PipelineSection{
			PipelineStats: s.db.PipelineStats(),
			SSEDropped:    s.sseDropped.Load(),
		},
		Cluster: s.clusterSection(),
	}
	if ds, ok := s.db.DurabilityStats(); ok {
		resp.Durability = &ds
	}
	if repl := s.Replica(); repl != nil {
		st := repl.Status()
		resp.Replication = &st
	}
	if co := s.Coordinator(); co != nil {
		st := co.Status()
		resp.Failover = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot serves POST /v1/admin/snapshot: take a point-in-time
// snapshot and truncate the WAL segments it covers.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "POST only"})
		return
	}
	if s.cluster != nil {
		infos := make([]store.SnapshotInfo, 0, s.cluster.NumShards())
		for _, st := range s.cluster.Stores() {
			info, err := st.Snapshot()
			if err != nil {
				if errors.Is(err, store.ErrNotDurable) {
					writeError(w, &httpError{http.StatusConflict, "store is in-memory; start the server with -data-dir"})
					return
				}
				writeError(w, err)
				return
			}
			infos = append(infos, info)
		}
		writeJSON(w, http.StatusOK, infos)
		return
	}
	info, err := s.db.Snapshot()
	if err != nil {
		if errors.Is(err, store.ErrNotDurable) {
			writeError(w, &httpError{http.StatusConflict, "store is in-memory; start the server with -data-dir"})
			return
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDB routes /v1/db/{table}[/{id}].
func (s *Server) handleDB(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/db/")
	parts := strings.SplitN(rest, "/", 2)
	table := parts[0]
	if table == "" {
		writeError(w, badRequest("missing table"))
		return
	}
	if len(parts) == 2 && parts[1] != "" {
		s.handleRecord(w, r, table, parts[1])
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleQuery(w, r, table)
	case http.MethodPost:
		s.handleInsert(w, r, table)
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "unsupported method"})
	}
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request, table, id string) {
	switch r.Method {
	case http.MethodGet:
		if !s.admitRead(w, r, id) {
			return
		}
		res, err := s.Read(table, id)
		if err != nil {
			writeError(w, err)
			return
		}
		s.countServed()
		browserTTL, cdnTTL := s.CacheControl(res.TTL)
		w.Header().Set("Cache-Control", cacheControlValue(browserTTL, cdnTTL))
		w.Header().Set("ETag", res.ETag)
		w.Header().Set("X-Quaestor-Key", RecordKey(table, id))
		s.addReplicaHeadersFor(w, id)
		s.addEBFGeneration(w)
		if r.Header.Get("If-None-Match") == res.ETag {
			s.revalidations.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		writeJSON(w, http.StatusOK, res.Doc)
	case http.MethodPut:
		var doc document.Document
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			writeError(w, badRequest("invalid document: %v", err))
			return
		}
		doc.ID = id
		if err := s.Put(table, &doc); err != nil {
			writeError(w, err)
			return
		}
		s.addWriteSeq(w, id)
		writeJSON(w, http.StatusOK, map[string]string{"id": id})
	case http.MethodPatch:
		var spec store.UpdateSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, badRequest("invalid update spec: %v", err))
			return
		}
		doc, err := s.Update(table, id, spec)
		if err != nil {
			writeError(w, err)
			return
		}
		s.addWriteSeq(w, id)
		writeJSON(w, http.StatusOK, doc)
	case http.MethodDelete:
		if err := s.Delete(table, id); err != nil {
			writeError(w, err)
			return
		}
		s.addWriteSeq(w, id)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "unsupported method"})
	}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request, table string) {
	var doc document.Document
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		writeError(w, badRequest("invalid document: %v", err))
		return
	}
	if err := s.Insert(table, &doc); err != nil {
		writeError(w, err)
		return
	}
	s.addWriteSeq(w, doc.ID)
	writeJSON(w, http.StatusCreated, map[string]string{"id": doc.ID})
}

// addWriteSeq stamps a successful write response with the owning store's
// sequence at acknowledgement time — the client's read-your-writes
// low-water mark. LastSeq is at or above the write's own sequence, the
// conservative direction.
func (s *Server) addWriteSeq(w http.ResponseWriter, id string) {
	w.Header().Set(HeaderWriteSeq, strconv.FormatUint(s.dbFor(id).LastSeq(), 10))
}

// addEBFGeneration piggybacks the node's EBF generation on a read
// response, so clients holding an older filter can warm their
// invalidation state from the tier that serves them.
func (s *Server) addEBFGeneration(w http.ResponseWriter) {
	if gen := s.ebfGen.Load(); gen > 0 {
		w.Header().Set(HeaderEBFGenerated, strconv.FormatInt(gen, 10))
	}
}

// countServed attributes one served read/query to this node's current
// tier (replica vs primary).
func (s *Server) countServed() {
	if s.servingAsReplica() {
		s.servedReplica.Add(1)
	} else {
		s.servedPrimary.Add(1)
	}
}

// QueryResponse is the JSON body of a query.
type QueryResponse struct {
	Representation string               `json:"rep"`
	IDs            []string             `json:"ids"`
	Docs           []*document.Document `json:"docs,omitempty"`
	Count          int                  `json:"count"`
}

// ParseQueryRequest builds a query.Query from REST query parameters. The
// client SDK uses the same routine to construct deterministic URLs.
func ParseQueryRequest(table string, params url.Values) (*query.Query, error) {
	pred, err := query.ParseJSON([]byte(params.Get("q")))
	if err != nil {
		return nil, badRequest("invalid filter: %v", err)
	}
	q := query.New(table, pred)
	if sortSpec := params.Get("sort"); sortSpec != "" {
		var keys []query.SortKey
		for _, part := range strings.Split(sortSpec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if strings.HasPrefix(part, "-") {
				keys = append(keys, query.Desc(part[1:]))
			} else {
				keys = append(keys, query.Asc(part))
			}
		}
		q = q.Sorted(keys...)
	}
	offset, limit := 0, 0
	if v := params.Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return nil, badRequest("invalid offset %q", v)
		}
	}
	if v := params.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 0 {
			return nil, badRequest("invalid limit %q", v)
		}
	}
	if offset > 0 || limit > 0 {
		q = q.Sliced(offset, limit)
	}
	return q, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, table string) {
	q, err := ParseQueryRequest(table, r.URL.Query())
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.admitRead(w, r, "") {
		return
	}
	if streamRequested(r.URL.Query().Get("stream")) {
		s.streamQuery(w, q)
		return
	}
	res, err := s.Query(q)
	if err != nil {
		writeError(w, err)
		return
	}
	s.countServed()
	// Remember which path serves this query so invalidations can purge it.
	s.RegisterQueryPath(q.Key(), r.URL.RequestURI())

	if res.Cacheable {
		browserTTL, cdnTTL := s.CacheControl(res.TTL)
		w.Header().Set("Cache-Control", cacheControlValue(browserTTL, cdnTTL))
	} else {
		w.Header().Set("Cache-Control", "no-store")
	}
	w.Header().Set("ETag", res.ETag)
	w.Header().Set("X-Quaestor-Key", q.Key())
	w.Header().Set("X-Quaestor-Rep", res.Representation.String())
	s.addReplicaHeaders(w)
	s.addEBFGeneration(w)
	if r.Header.Get("If-None-Match") == res.ETag {
		s.revalidations.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := QueryResponse{
		Representation: res.Representation.String(),
		IDs:            res.IDs,
		Count:          len(res.IDs),
	}
	if res.Representation == ttl.ObjectList {
		body.Docs = res.Docs
	}
	writeJSON(w, http.StatusOK, body)
}

// streamRequested interprets the stream query parameter ("1", "true", …).
func streamRequested(v string) bool {
	b, err := strconv.ParseBool(v)
	return err == nil && b
}

// ndjsonFlushEvery bounds how many streamed documents may sit in the
// response writer's buffer before an explicit flush.
const ndjsonFlushEvery = 64

// streamQuery serves a query as NDJSON: one document per line, written
// straight off the executor's cursor, so the result set never materializes
// server-side — no JSON buffer, and (by the store's copy-on-write
// contract) not even per-document clones. Streamed responses are
// inherently uncacheable: intermediaries would have to buffer the whole
// body to cache it, defeating the point, so the server emits no-store and
// skips the TTL/EBF/activation machinery.
func (s *Server) streamQuery(w http.ResponseWriter, q *query.Query) {
	cur, err := s.QueryStream(q)
	if err != nil {
		writeError(w, err)
		return
	}
	s.countServed()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Quaestor-Key", q.Key())
	s.addReplicaHeaders(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for n := 0; ; {
		d, ok := cur.NextShared()
		if !ok {
			break
		}
		if err := enc.Encode(d); err != nil {
			return // client went away mid-stream
		}
		n++
		if flusher != nil && n%ndjsonFlushEvery == 0 {
			flusher.Flush()
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
}

func cacheControlValue(browserTTL, cdnTTL interface{ Seconds() float64 }) string {
	b := int(browserTTL.Seconds())
	c := int(cdnTTL.Seconds())
	if b <= 0 && c <= 0 {
		return "no-store"
	}
	parts := []string{"public"}
	if b > 0 {
		parts = append(parts, fmt.Sprintf("max-age=%d", b))
	} else {
		parts = append(parts, "max-age=0")
	}
	if c > 0 {
		parts = append(parts, fmt.Sprintf("s-maxage=%d", c))
	}
	return strings.Join(parts, ", ")
}
