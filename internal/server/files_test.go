package server

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quaestor/internal/store"
)

func TestFileLifecycle(t *testing.T) {
	srv := newTestServer(t, nil)
	content := []byte("<html>hello</html>")
	if err := srv.PutFile("index.html", "text/html", content); err != nil {
		t.Fatal(err)
	}
	got, ct, etag, ttl, err := srv.GetFile("index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) || ct != "text/html" || etag == "" || ttl <= 0 {
		t.Errorf("file = %q ct=%q etag=%q ttl=%v", got, ct, etag, ttl)
	}
	// Overwriting bumps the version (new ETag) and flags the EBF.
	if err := srv.PutFile("index.html", "text/html", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	_, _, etag2, _, err := srv.GetFile("index.html")
	if err != nil {
		t.Fatal(err)
	}
	if etag2 == etag {
		t.Error("overwrite kept the old ETag")
	}
	if !srv.EBFSnapshot().Contains(RecordKey(FilesTable, "index.html")) {
		t.Error("file overwrite not flagged in the EBF")
	}
	if err := srv.DeleteFile("index.html"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := srv.GetFile("index.html"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("deleted file read: %v", err)
	}
}

func TestFileHTTP(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()

	put := httptest.NewRequest(http.MethodPut, "/v1/files/app.js", strings.NewReader("console.log(1)"))
	put.Header.Set("Content-Type", "application/javascript")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, put)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT = %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/files/app.js", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d", rec.Code)
	}
	if rec.Body.String() != "console.log(1)" {
		t.Errorf("body = %q", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/javascript" {
		t.Errorf("content type = %q", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "max-age=") {
		t.Errorf("files must be cacheable: %q", cc)
	}
	etag := rec.Header().Get("ETag")
	// Conditional fetch -> 304.
	cond := httptest.NewRequest(http.MethodGet, "/v1/files/app.js", nil)
	cond.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, cond)
	if rec.Code != http.StatusNotModified {
		t.Errorf("conditional GET = %d", rec.Code)
	}
	// Delete.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/files/app.js", nil))
	if rec.Code != http.StatusNoContent {
		t.Errorf("DELETE = %d", rec.Code)
	}
	// Missing file -> 404; bad names -> 400.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/files/app.js", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing GET = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/files/", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty name = %d", rec.Code)
	}
}

func TestFileThroughCDNTierPurge(t *testing.T) {
	srv := newTestServer(t, nil)
	if err := srv.PutFile("style.css", "text/css", []byte("body{}")); err != nil {
		t.Fatal(err)
	}
	var purged []string
	srv.AddPurger(PurgerFunc(func(path string) { purged = append(purged, path) }))
	// A read issues a TTL; the overwrite must purge the file's path.
	if _, _, _, _, err := srv.GetFile("style.css"); err != nil {
		t.Fatal(err)
	}
	if err := srv.PutFile("style.css", "text/css", []byte("body{color:red}")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range purged {
		if p == RecordPath(FilesTable, "style.css") {
			found = true
		}
	}
	if !found {
		t.Errorf("file overwrite did not purge its path: %v", purged)
	}
}
