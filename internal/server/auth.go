package server

import (
	"crypto/subtle"
	"net/http"
	"strings"
	"sync"
)

// This file implements token-based authorization — the remaining DBaaS
// surface the paper scopes (Section 2). The model matches
// backend-as-a-service practice: anonymous clients may read public data
// (reads must stay cacheable, so authorization for cached GETs is
// coarse-grained by design — fine-grained per-user read ACLs would defeat
// shared web caching, which is why Baqend applies them only to uncached
// resources); writes, transactions and schema changes require a bearer
// token with the matching role.

// Role is an authorization level.
type Role int

const (
	// RoleReader may only perform GET requests.
	RoleReader Role = iota
	// RoleWriter may additionally write data and commit transactions.
	RoleWriter
	// RoleAdmin may additionally manage tables and schemas.
	RoleAdmin
)

// AuthConfig declares bearer tokens and the anonymous policy.
type AuthConfig struct {
	// Tokens maps bearer token -> role.
	Tokens map[string]Role
	// AllowAnonymousReads keeps GETs open without a token (default policy
	// for public, cacheable data). Anonymous writes are always rejected
	// once auth is enabled.
	AllowAnonymousReads bool
}

// authorizer guards the handler chain.
type authorizer struct {
	mu  sync.RWMutex
	cfg *AuthConfig
}

// EnableAuth switches the HTTP API to token authorization. Passing nil
// disables it again (the default: open, for embedded/test use).
func (s *Server) EnableAuth(cfg *AuthConfig) {
	s.auth.mu.Lock()
	defer s.auth.mu.Unlock()
	s.auth.cfg = cfg
}

// roleFor resolves the request's role; ok reports whether the request is
// allowed to proceed at all.
func (a *authorizer) roleFor(r *http.Request) (Role, bool) {
	a.mu.RLock()
	cfg := a.cfg
	a.mu.RUnlock()
	if cfg == nil {
		return RoleAdmin, true // auth disabled: open instance
	}
	header := r.Header.Get("Authorization")
	if strings.HasPrefix(header, "Bearer ") {
		token := strings.TrimPrefix(header, "Bearer ")
		for candidate, role := range cfg.Tokens {
			if subtle.ConstantTimeCompare([]byte(candidate), []byte(token)) == 1 {
				return role, true
			}
		}
		return 0, false // explicit bad token is always rejected
	}
	if cfg.AllowAnonymousReads && isReadRequest(r) {
		return RoleReader, true
	}
	return 0, false
}

// isReadRequest reports whether the request only reads data.
func isReadRequest(r *http.Request) bool {
	return r.Method == http.MethodGet || r.Method == http.MethodHead
}

// requiredRole maps a request to the minimum role.
func requiredRole(r *http.Request) Role {
	if isReadRequest(r) {
		return RoleReader
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/v1/tables/"),
		strings.HasPrefix(r.URL.Path, "/v1/schema/"),
		strings.HasPrefix(r.URL.Path, "/v1/indexes/"):
		return RoleAdmin
	default:
		return RoleWriter
	}
}

// withAuth wraps the API with the authorization check.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		role, ok := s.auth.roleFor(r)
		if !ok {
			writeError(w, &httpError{http.StatusUnauthorized, "missing or invalid bearer token"})
			return
		}
		if role < requiredRole(r) {
			writeError(w, &httpError{http.StatusForbidden, "insufficient role"})
			return
		}
		next.ServeHTTP(w, r)
	})
}
