package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"quaestor/internal/document"
)

// This file implements schema management, part of the DBaaS functionality
// the paper scopes for Quaestor (Section 2: "QUAESTOR therefore provides
// DBaaS functionality such as query processing, authorization, and schema
// management"). Schemas are optional per-table field constraints validated
// on every insert/put; tables without a schema accept any document
// (schema-free NoSQL default).

// FieldType constrains one schema field.
type FieldType string

// Supported schema field types.
const (
	TypeString FieldType = "string"
	TypeNumber FieldType = "number"
	TypeBool   FieldType = "bool"
	TypeArray  FieldType = "array"
	TypeObject FieldType = "object"
	TypeAny    FieldType = "any"
)

// FieldSpec describes one field's constraints.
type FieldSpec struct {
	Type     FieldType `json:"type"`
	Required bool      `json:"required,omitempty"`
}

// Schema is a per-table document shape.
type Schema struct {
	// Fields maps top-level field names to their constraints. Fields not
	// listed are unconstrained (documents stay aggregate-oriented and open).
	Fields map[string]FieldSpec `json:"fields"`
}

// Validate checks a document against the schema.
func (sc *Schema) Validate(doc *document.Document) error {
	for name, spec := range sc.Fields {
		v, ok := doc.Fields[name]
		if !ok {
			if spec.Required {
				return fmt.Errorf("schema: missing required field %q", name)
			}
			continue
		}
		if !typeMatches(v, spec.Type) {
			return fmt.Errorf("schema: field %q must be %s, got %T", name, spec.Type, v)
		}
	}
	return nil
}

func typeMatches(v any, t FieldType) bool {
	switch t {
	case TypeAny, "":
		return true
	case TypeString:
		_, ok := v.(string)
		return ok
	case TypeNumber:
		switch v.(type) {
		case int64, float64:
			return true
		}
		return false
	case TypeBool:
		_, ok := v.(bool)
		return ok
	case TypeArray:
		_, ok := v.([]any)
		return ok
	case TypeObject:
		_, ok := v.(map[string]any)
		return ok
	default:
		return false
	}
}

// schemaRegistry guards the per-table schemas.
type schemaRegistry struct {
	mu      sync.RWMutex
	schemas map[string]*Schema
}

func newSchemaRegistry() *schemaRegistry {
	return &schemaRegistry{schemas: map[string]*Schema{}}
}

func (r *schemaRegistry) set(table string, sc *Schema) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.schemas[table] = sc
}

func (r *schemaRegistry) get(table string) *Schema {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.schemas[table]
}

func (r *schemaRegistry) delete(table string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.schemas, table)
}

// SetSchema installs (or replaces) a table's schema. Existing documents
// are not retro-validated, matching typical schema-on-write systems.
func (s *Server) SetSchema(table string, sc *Schema) error {
	if sc != nil {
		for name, spec := range sc.Fields {
			switch spec.Type {
			case TypeString, TypeNumber, TypeBool, TypeArray, TypeObject, TypeAny, "":
			default:
				return fmt.Errorf("server: unknown schema type %q for field %q", spec.Type, name)
			}
		}
	}
	if sc == nil {
		s.schemas.delete(table)
		return nil
	}
	s.schemas.set(table, sc)
	return nil
}

// Schema returns a table's schema, or nil when the table is schema-free.
func (s *Server) Schema(table string) *Schema { return s.schemas.get(table) }

// validateDoc applies the table schema (if any) to an incoming write.
func (s *Server) validateDoc(table string, doc *document.Document) error {
	sc := s.schemas.get(table)
	if sc == nil {
		return nil
	}
	if err := sc.Validate(doc); err != nil {
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	return nil
}

// handleSchema serves GET/PUT/DELETE /v1/schema/{table}.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	table := strings.TrimPrefix(r.URL.Path, "/v1/schema/")
	if table == "" || strings.Contains(table, "/") {
		writeError(w, badRequest("invalid table %q", table))
		return
	}
	switch r.Method {
	case http.MethodGet:
		sc := s.Schema(table)
		if sc == nil {
			writeError(w, &httpError{http.StatusNotFound, "no schema for table " + table})
			return
		}
		w.Header().Set("Cache-Control", "no-store")
		writeJSON(w, http.StatusOK, sc)
	case http.MethodPut:
		var sc Schema
		if err := json.NewDecoder(r.Body).Decode(&sc); err != nil {
			writeError(w, badRequest("invalid schema: %v", err))
			return
		}
		if err := s.SetSchema(table, &sc); err != nil {
			writeError(w, badRequest("%v", err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"table": table})
	case http.MethodDelete:
		s.schemas.delete(table)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "unsupported method"})
	}
}
