package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/store"
	"quaestor/internal/wal"
)

func newDurableTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	// FsyncAlways acks synchronously, which keeps the WAL counters
	// deterministic for the assertions below.
	db, err := store.Open(&store.Options{DataDir: dir, Durability: store.Durability{Fsync: wal.FsyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, nil)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestStatsIncludesDurability checks /v1/stats grows the WAL/recovery
// section on durable stores and omits it on in-memory ones.
func TestStatsIncludesDurability(t *testing.T) {
	srv := newDurableTestServer(t, t.TempDir())
	for i := 0; i < 5; i++ {
		insertPost(t, srv, "p"+string(rune('0'+i)), "x")
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var body StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Durability == nil {
		t.Fatal("durable server stats missing durability section")
	}
	if body.Durability.WAL.Appends < 5 || body.Durability.WAL.Segments == 0 {
		t.Errorf("wal stats = %+v", body.Durability.WAL)
	}

	mem := newTestServer(t, nil)
	rec = httptest.NewRecorder()
	mem.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var memBody StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &memBody); err != nil {
		t.Fatal(err)
	}
	if memBody.Durability != nil {
		t.Error("in-memory server stats should omit the durability section")
	}
}

// TestAdminSnapshotEndpoint drives POST /v1/admin/snapshot and verifies
// both the happy path and the in-memory 409.
func TestAdminSnapshotEndpoint(t *testing.T) {
	srv := newDurableTestServer(t, t.TempDir())
	for i := 0; i < 10; i++ {
		if err := srv.Put("posts", document.New("k"+string(rune('0'+i)), map[string]any{"n": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/admin/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", rec.Code, rec.Body)
	}
	var info store.SnapshotInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Docs != 10 || info.Seq == 0 {
		t.Errorf("snapshot info = %+v", info)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/admin/snapshot", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET snapshot status = %d, want 405", rec.Code)
	}

	mem := newTestServer(t, nil)
	rec = httptest.NewRecorder()
	mem.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/admin/snapshot", nil))
	if rec.Code != http.StatusConflict {
		t.Errorf("in-memory snapshot status = %d, want 409", rec.Code)
	}
}

// TestServerSurvivesRestart exercises durability end-to-end through the
// middleware: writes via the server, restart, reads via a new server.
func TestServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := store.Open(&store.Options{DataDir: dir, Durability: store.Durability{Fsync: wal.FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, nil)
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Insert("posts", document.New("p1", map[string]any{"title": "hello"})); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"title": "edited"}}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	db.Close()

	db2, err := store.Open(&store.Options{DataDir: dir, Durability: store.Durability{Fsync: wal.FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(db2, nil)
	defer func() {
		srv2.Close()
		db2.Close()
	}()
	res, err := srv2.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Doc.Get("title"); got != "edited" {
		t.Errorf("title after restart = %v", got)
	}
	if res.Doc.Version != 2 {
		t.Errorf("version after restart = %d, want 2", res.Doc.Version)
	}
}
