package server

import (
	"net/url"

	"quaestor/internal/invalidb"
)

// invalidbConfig1 builds an InvaliDB config with a single-query capacity.
func invalidbConfig1() invalidb.Config {
	return invalidb.Config{MaxQueries: 1}
}

// mustValues parses a raw query string, panicking on malformed input (test
// fixtures only).
func mustValues(raw string) url.Values {
	v, err := url.ParseQuery(raw)
	if err != nil {
		panic(err)
	}
	return v
}
