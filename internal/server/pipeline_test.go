package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/invalidb"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// TestPropertySSEAndInvaliDBObserveSeqOrder races 64 writers over a small
// key space and asserts that both downstream consumers of the commit
// pipeline — an InvaliDB cell (1×1 grid, so one matching task sees every
// event) and a real SSE client reading /v1/subscribe — observe strictly
// increasing Seq, and that the ordered-ingestion assertion never fired.
func TestPropertySSEAndInvaliDBObserveSeqOrder(t *testing.T) {
	cfg := invalidb.Config{QueryPartitions: 1, ObjectPartitions: 1, Buffer: 1 << 14}
	srv := newTestServer(t, &Options{InvaliDB: &cfg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Server-level subscription (the same feed an SSE handler serves).
	q := query.New("posts", query.Contains("tags", "hot"))
	sub, err := srv.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var subMu sync.Mutex
	var subSeqs []uint64
	go func() {
		for n := range sub.Events() {
			subMu.Lock()
			subSeqs = append(subSeqs, n.Seq)
			subMu.Unlock()
		}
	}()

	// Raw SSE client over HTTP.
	resp, err := http.Get(ts.URL + "/v1/subscribe?table=posts&q=" + `{"tags":{"$contains":"hot"}}`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sseMu sync.Mutex
	var sseSeqs []uint64
	go func() {
		reader := bufio.NewReader(resp.Body)
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				return
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev SubscriptionEvent
			if json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev) == nil {
				sseMu.Lock()
				sseSeqs = append(sseSeqs, ev.Seq)
				sseMu.Unlock()
			}
		}
	}()

	const writers, opsEach, keys = 64, 20, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsEach; op++ {
				id := fmt.Sprintf("p%02d", (w*opsEach+op)%keys)
				doc := document.New(id, map[string]any{
					"tags": []any{"hot"}, "w": int64(w), "op": int64(op),
				})
				if err := srv.Put("posts", doc); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if !srv.InvaliDB().Quiesce(10 * time.Second) {
		t.Fatal("invalidb did not quiesce")
	}
	waitFor(t, 5*time.Second, func() bool {
		subMu.Lock()
		defer subMu.Unlock()
		return len(subSeqs) > 0
	})
	time.Sleep(50 * time.Millisecond) // let the SSE body flushes land

	if v := srv.InvaliDB().OrderViolations(); v != 0 {
		t.Errorf("ordered-ingestion assertion fired %d times", v)
	}
	checkIncreasing := func(name string, seqs []uint64) {
		if len(seqs) == 0 {
			t.Errorf("%s observed no events", name)
			return
		}
		last := uint64(0)
		for i, s := range seqs {
			// Gaps are fine (SSE sheds under burst; notifications only
			// cover matching writes) — going backwards never is.
			if s <= last {
				t.Errorf("%s event %d has seq %d after %d — out of order", name, i, s, last)
				return
			}
			last = s
		}
	}
	subMu.Lock()
	checkIncreasing("server subscription", subSeqs)
	subMu.Unlock()
	sseMu.Lock()
	checkIncreasing("sse client", sseSeqs)
	sseMu.Unlock()
}

// TestStatsPipelineSection checks that /v1/stats exposes the commit
// pipeline: the named invalidb subscriber with lag accounting, sequencer
// occupancy and the publish→deliver latency histogram.
func TestStatsPipelineSection(t *testing.T) {
	srv := newTestServer(t, nil)
	insertPost(t, srv, "p1", "x")
	waitFor(t, 5*time.Second, func() bool {
		st := srv.db.PipelineStats()
		for _, sub := range st.Stream.Subscribers {
			if sub.Name == "invalidb" && sub.Delivered > 0 {
				return true
			}
		}
		return false
	})

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var resp struct {
		Pipeline struct {
			Stream struct {
				LastSeq     uint64 `json:"lastSeq"`
				Published   uint64 `json:"published"`
				Subscribers []struct {
					Name      string `json:"name"`
					Delivered uint64 `json:"delivered"`
					LagSeq    uint64 `json:"lagSeq"`
				} `json:"subscribers"`
				Latency struct {
					Batches uint64 `json:"batches"`
				} `json:"publishToDeliver"`
			} `json:"stream"`
			Sequencer struct {
				NextSeq uint64 `json:"nextSeq"`
			} `json:"sequencer"`
			SSEDropped uint64 `json:"sseDropped"`
		} `json:"pipeline"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad stats payload: %v\n%s", err, rec.Body.String())
	}
	p := resp.Pipeline
	if p.Stream.LastSeq != 1 || p.Stream.Published != 1 {
		t.Errorf("stream counters = %+v", p.Stream)
	}
	found := false
	for _, sub := range p.Stream.Subscribers {
		if sub.Name == "invalidb" {
			found = true
			if sub.Delivered != 1 || sub.LagSeq != 0 {
				t.Errorf("invalidb subscriber = %+v", sub)
			}
		}
	}
	if !found {
		t.Errorf("no invalidb subscriber in pipeline section: %+v", p.Stream.Subscribers)
	}
	if p.Stream.Latency.Batches == 0 {
		t.Error("no publish→deliver latency samples")
	}
	if p.Sequencer.NextSeq != 2 {
		t.Errorf("sequencer nextSeq = %d, want 2", p.Sequencer.NextSeq)
	}
}

// TestStatsPipelineOnDurableStore makes sure the pipeline section and the
// durability section coexist for a durable server.
func TestStatsPipelineOnDurableStore(t *testing.T) {
	db, err := store.Open(&store.Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, nil)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	insertPost(t, srv, "p1", "x")

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var resp map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if _, ok := resp["pipeline"]; !ok {
		t.Error("durable stats missing pipeline section")
	}
	if _, ok := resp["durability"]; !ok {
		t.Error("durable stats missing durability section")
	}
}
