package ebf

import (
	"sync"
	"time"
)

// ClientView is the client SDK's wrapper around a flat EBF snapshot.
//
// It implements differential whitelisting (Section 3.3): every key the
// client has revalidated since the last snapshot refresh is considered
// fresh until the next renewal, even while the (possibly lagging) Bloom
// filter still flags it. This compensates for discrepancies between
// estimated and actual TTLs that would otherwise keep a key "stale" for an
// extended period.
type ClientView struct {
	mu        sync.Mutex
	snap      Snapshot
	whitelist map[string]struct{}
	refreshes uint64
	lookups   uint64
	staleHits uint64
}

// NewClientView wraps an initial snapshot (fetched at connect time).
func NewClientView(snap Snapshot) *ClientView {
	return &ClientView{snap: snap, whitelist: map[string]struct{}{}}
}

// Refresh installs a newer snapshot and clears the whitelist — entries
// revalidated before the new snapshot are reflected in it already.
func (v *ClientView) Refresh(snap Snapshot) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if snap.GeneratedAt.Before(v.snap.GeneratedAt) {
		return // never move backwards in time
	}
	v.snap = snap
	v.whitelist = map[string]struct{}{}
	v.refreshes++
}

// IsStale reports whether a read of key must be promoted to a revalidation:
// the key appears in the Bloom filter and has not been revalidated since
// the last refresh.
func (v *ClientView) IsStale(key string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.lookups++
	if _, ok := v.whitelist[key]; ok {
		return false
	}
	if v.snap.Contains(key) {
		v.staleHits++
		return true
	}
	return false
}

// MarkRevalidated whitelists a key after the client revalidated it.
func (v *ClientView) MarkRevalidated(key string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.whitelist[key] = struct{}{}
}

// Age returns the snapshot age — the client's current Δ bound.
func (v *ClientView) Age(now time.Time) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.snap.Age(now)
}

// GeneratedAt returns the current snapshot's generation time.
func (v *ClientView) GeneratedAt() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.snap.GeneratedAt
}

// Counters reports (refreshes, lookups, staleHits) for instrumentation.
func (v *ClientView) Counters() (refreshes, lookups, staleHits uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.refreshes, v.lookups, v.staleHits
}

// Replicated load-balances snapshot reads over n EBF replicas while fanning
// writes to all of them (Section 3.3 "Read scalability is achieved by
// replicating the complete EBF and balancing loads of the Bloom filter over
// the replicas").
type Replicated struct {
	replicas []*EBF
	next     uint64
	mu       sync.Mutex
}

// NewReplicated creates n identical EBF replicas.
func NewReplicated(n int, opts *Options) *Replicated {
	if n < 1 {
		n = 1
	}
	r := &Replicated{replicas: make([]*EBF, n)}
	for i := range r.replicas {
		o := opts.withDefaults()
		r.replicas[i] = New(&o)
	}
	return r
}

// ReportRead fans the read report to every replica.
func (r *Replicated) ReportRead(key string, ttl time.Duration) {
	for _, e := range r.replicas {
		e.ReportRead(key, ttl)
	}
}

// ReportWrite fans the invalidation to every replica; the purge decision
// comes from the first replica (they are deterministic and identical).
func (r *Replicated) ReportWrite(key string) bool {
	purge := false
	for i, e := range r.replicas {
		p := e.ReportWrite(key)
		if i == 0 {
			purge = p
		}
	}
	return purge
}

// Snapshot reads from one replica, round-robin.
func (r *Replicated) Snapshot() Snapshot {
	r.mu.Lock()
	idx := r.next % uint64(len(r.replicas))
	r.next++
	r.mu.Unlock()
	return r.replicas[idx].Snapshot()
}

// Contains checks one replica, round-robin.
func (r *Replicated) Contains(key string) bool {
	r.mu.Lock()
	idx := r.next % uint64(len(r.replicas))
	r.next++
	r.mu.Unlock()
	return r.replicas[idx].Contains(key)
}

// Replicas returns the replica count.
func (r *Replicated) Replicas() int { return len(r.replicas) }
