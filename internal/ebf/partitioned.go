package ebf

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Partitioned shards the EBF per table for write scalability (Section 3.3
// "Scalability": "each table has its own EBF instance. ... At read time,
// the aggregated EBF is constructed by a union over the EBF partitions
// through a bitwise OR-operation over the Bloom filter bit vectors.").
//
// Keys are routed by their table prefix: record keys look like "table/id"
// and query keys like "q:table/...", as produced by store.ChangeEvent.Key
// and query.Query.Key.
type Partitioned struct {
	mu    sync.Mutex
	opts  Options
	parts map[string]*EBF
}

// NewPartitioned creates an empty per-table partitioned EBF. All partitions
// share the same (m, k) so their bit vectors can be OR-ed.
func NewPartitioned(opts *Options) *Partitioned {
	return &Partitioned{opts: opts.withDefaults(), parts: map[string]*EBF{}}
}

// TableOf extracts the routing table from an EBF key. Record keys are
// "table/id"; query keys are "q:table/predicate...".
func TableOf(key string) string {
	k := strings.TrimPrefix(key, "q:")
	if i := strings.IndexByte(k, '/'); i >= 0 {
		return k[:i]
	}
	return k
}

func (p *Partitioned) partition(key string) *EBF {
	table := TableOf(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	part, ok := p.parts[table]
	if !ok {
		o := p.opts
		part = New(&o)
		p.parts[table] = part
	}
	return part
}

// ReportRead records a cacheable read on the key's table partition.
func (p *Partitioned) ReportRead(key string, ttl time.Duration) {
	p.partition(key).ReportRead(key, ttl)
}

// ReportWrite flags an invalidated key on its table partition.
func (p *Partitioned) ReportWrite(key string) bool {
	return p.partition(key).ReportWrite(key)
}

// Contains checks a key against its table partition only — clients that
// load per-table EBFs get a lower effective false positive rate this way
// ("clients can also exploit the table-specific EBFs to decrease the total
// false positive rate at the expense of loading more individual EBFs").
func (p *Partitioned) Contains(key string) bool {
	return p.partition(key).Contains(key)
}

// Snapshot returns the aggregated flat filter: the bitwise OR across all
// table partitions.
func (p *Partitioned) Snapshot() Snapshot {
	p.mu.Lock()
	parts := make([]*EBF, 0, len(p.parts))
	for _, e := range p.parts {
		parts = append(parts, e)
	}
	p.mu.Unlock()

	if len(parts) == 0 {
		o := p.opts
		empty := New(&o)
		return empty.Snapshot()
	}
	agg := parts[0].Snapshot()
	for _, e := range parts[1:] {
		snap := e.Snapshot()
		// Same (m,k) by construction, so Union cannot fail.
		_ = agg.Filter.Union(snap.Filter)
		agg.Entries += snap.Entries
		if snap.GeneratedAt.Before(agg.GeneratedAt) {
			// The aggregate is only as fresh as its oldest partition.
			agg.GeneratedAt = snap.GeneratedAt
		}
	}
	return agg
}

// SnapshotTable returns the flat filter of one table's partition.
func (p *Partitioned) SnapshotTable(table string) Snapshot {
	p.mu.Lock()
	part, ok := p.parts[table]
	p.mu.Unlock()
	if !ok {
		o := p.opts
		return New(&o).Snapshot()
	}
	return part.Snapshot()
}

// Tables lists partitions in sorted order.
func (p *Partitioned) Tables() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.parts))
	for t := range p.parts {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Stats sums activity counters across partitions.
func (p *Partitioned) Stats() Stats {
	p.mu.Lock()
	parts := make([]*EBF, 0, len(p.parts))
	for _, e := range p.parts {
		parts = append(parts, e)
	}
	p.mu.Unlock()
	var total Stats
	for _, e := range parts {
		s := e.Stats()
		total.Reads += s.Reads
		total.Invalidations += s.Invalidations
		total.IgnoredWrites += s.IgnoredWrites
		total.Expirations += s.Expirations
		total.Snapshots += s.Snapshots
		total.CurrentEntries += s.CurrentEntries
	}
	return total
}
