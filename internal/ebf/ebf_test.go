package ebf

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestEBF(c *fakeClock) *EBF {
	return New(&Options{Bits: 1 << 14, Hashes: 4, Clock: c.Now})
}

func TestWriteWithoutReadIsIgnored(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	if e.ReportWrite("q1") {
		t.Error("write with no cached copy should not require a purge")
	}
	if e.Contains("q1") {
		t.Error("ignored write entered the filter")
	}
	st := e.Stats()
	if st.IgnoredWrites != 1 || st.Invalidations != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInvalidationLifecycle(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	// Read with 10s TTL, write at t=2 -> stale until t=10.
	e.ReportRead("q1", 10*time.Second)
	c.Advance(2 * time.Second)
	if !e.ReportWrite("q1") {
		t.Fatal("write against live TTL must request a purge")
	}
	if !e.Contains("q1") {
		t.Fatal("invalidated key missing from filter")
	}
	c.Advance(7 * time.Second) // t=9: still within the issued TTL
	if !e.Contains("q1") {
		t.Error("key left the filter before its TTL expired")
	}
	c.Advance(2 * time.Second) // t=11: TTL passed
	if e.Contains("q1") {
		t.Error("key remained after the highest TTL expired")
	}
	if st := e.Stats(); st.Expirations != 1 {
		t.Errorf("expirations = %d", st.Expirations)
	}
}

func TestHighestTTLWins(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	e.ReportRead("q1", 5*time.Second)
	e.ReportRead("q1", 20*time.Second) // a later read issued a longer TTL
	e.ReportRead("q1", 3*time.Second)  // shorter TTLs must not shrink it
	c.Advance(time.Second)
	if !e.ReportWrite("q1") {
		t.Fatal("write should hit the live TTL")
	}
	c.Advance(10 * time.Second) // t=11 < 20: still flagged
	if !e.Contains("q1") {
		t.Error("key dropped before the HIGHEST issued TTL expired")
	}
	c.Advance(10 * time.Second) // t=21 > 20
	if e.Contains("q1") {
		t.Error("key kept past the highest TTL")
	}
}

func TestWriteAfterTTLExpiredIsIgnored(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	e.ReportRead("q1", time.Second)
	c.Advance(2 * time.Second)
	if e.ReportWrite("q1") {
		t.Error("no cache can still hold the entry; purge not needed")
	}
}

func TestRepeatedInvalidationExtends(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	e.ReportRead("q1", 5*time.Second)
	c.Advance(time.Second)
	e.ReportWrite("q1")
	// A fresh read issues a new TTL; a second write must keep the key until
	// the NEW expiration.
	e.ReportRead("q1", 10*time.Second) // expires at t=11
	if !e.ReportWrite("q1") {
		t.Fatal("second write should still purge")
	}
	c.Advance(5 * time.Second) // t=6 > first TTL end (5) but < 11
	if !e.Contains("q1") {
		t.Error("extension lost: key dropped at the superseded expiration")
	}
	c.Advance(6 * time.Second) // t=12
	if e.Contains("q1") {
		t.Error("key kept past extended expiration")
	}
}

// TestDeltaAtomicityProperty is Theorem 1 in executable form: for any
// sequence of reads (with TTLs) and writes, a snapshot generated at time t
// contains every key that was written before t while still cached (i.e.
// any cache could serve a stale copy at t).
func TestDeltaAtomicityProperty(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	type cachedUntil struct{ expires, written time.Time }
	state := map[string]*cachedUntil{}

	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	rng := func(i, m int) int { return (i*2654435761 + 12345) % m }
	for step := 0; step < 2000; step++ {
		k := keys[rng(step, len(keys))]
		switch rng(step, 3) {
		case 0: // read with TTL 1..20s
			ttl := time.Duration(1+rng(step, 20)) * time.Second
			e.ReportRead(k, ttl)
			exp := c.Now().Add(ttl)
			cu, ok := state[k]
			if !ok {
				state[k] = &cachedUntil{expires: exp}
			} else if exp.After(cu.expires) {
				cu.expires = exp
			}
		case 1: // write
			e.ReportWrite(k)
			if cu, ok := state[k]; ok && c.Now().Before(cu.expires) {
				cu.written = c.Now()
			}
		case 2:
			c.Advance(time.Duration(rng(step, 1500)) * time.Millisecond)
		}
		if step%97 == 0 {
			snap := e.Snapshot()
			for key, cu := range state {
				mustContain := !cu.written.IsZero() && c.Now().Before(cu.expires)
				if mustContain && !snap.Contains(key) {
					t.Fatalf("step %d: stale key %s missing from snapshot (Theorem 1 violated)", step, key)
				}
			}
		}
	}
}

func TestSnapshotIsImmutableCopy(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	e.ReportRead("q1", time.Minute)
	snap := e.Snapshot()
	e.ReportWrite("q1")
	if snap.Contains("q1") {
		t.Error("snapshot mutated after later invalidation")
	}
	if !e.Snapshot().Contains("q1") {
		t.Error("new snapshot missing the invalidation")
	}
}

func TestSnapshotAge(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	snap := e.Snapshot()
	c.Advance(3 * time.Second)
	if got := snap.Age(c.Now()); got != 3*time.Second {
		t.Errorf("age = %v", got)
	}
	var zero Snapshot
	if zero.Age(c.Now()) != 0 || zero.Contains("x") {
		t.Error("zero snapshot misbehaves")
	}
}

func TestStaleCount(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		e.ReportRead(k, 10*time.Second)
		e.ReportWrite(k)
	}
	if n := e.StaleCount(); n != 5 {
		t.Errorf("StaleCount = %d", n)
	}
	c.Advance(11 * time.Second)
	if n := e.StaleCount(); n != 0 {
		t.Errorf("StaleCount after expiry = %d", n)
	}
}

func TestZeroTTLReadIgnored(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	e.ReportRead("q1", 0)
	if e.ReportWrite("q1") {
		t.Error("zero-TTL read should not make writes purgeable")
	}
}

func TestClientViewWhitelist(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	e.ReportRead("q1", time.Minute)
	e.ReportWrite("q1")

	v := NewClientView(e.Snapshot())
	if !v.IsStale("q1") {
		t.Fatal("view should flag the invalidated key")
	}
	v.MarkRevalidated("q1")
	if v.IsStale("q1") {
		t.Error("revalidated key still stale (whitelist broken)")
	}
	// A refresh clears the whitelist; the (still flagged) key is stale
	// again according to the new filter.
	c.Advance(time.Second)
	v.Refresh(e.Snapshot())
	if !v.IsStale("q1") {
		t.Error("refresh should reset the whitelist")
	}
	refreshes, lookups, staleHits := v.Counters()
	if refreshes != 1 || lookups != 3 || staleHits != 2 {
		t.Errorf("counters = %d %d %d", refreshes, lookups, staleHits)
	}
}

func TestClientViewRejectsOlderSnapshots(t *testing.T) {
	c := newFakeClock()
	e := newTestEBF(c)
	old := e.Snapshot()
	c.Advance(time.Second)
	fresh := e.Snapshot()
	v := NewClientView(fresh)
	v.Refresh(old)
	if !v.GeneratedAt().Equal(fresh.GeneratedAt) {
		t.Error("view moved backwards in time")
	}
}

func TestPartitionedRoutingAndUnion(t *testing.T) {
	c := newFakeClock()
	p := NewPartitioned(&Options{Bits: 1 << 14, Hashes: 4, Clock: c.Now})
	p.ReportRead("posts/p1", time.Minute)
	p.ReportRead("q:users/$true", time.Minute)
	p.ReportWrite("posts/p1")
	p.ReportWrite("q:users/$true")

	// Aggregated snapshot covers both tables (bitwise OR).
	agg := p.Snapshot()
	if !agg.Contains("posts/p1") || !agg.Contains("q:users/$true") {
		t.Error("aggregate snapshot missing a partition's entries")
	}
	// Per-table snapshots only cover their own table.
	postsOnly := p.SnapshotTable("posts")
	if !postsOnly.Contains("posts/p1") {
		t.Error("posts partition missing its key")
	}
	if postsOnly.Contains("q:users/$true") {
		t.Error("posts partition contains users key (should be separate)")
	}
	tables := p.Tables()
	if len(tables) != 2 || tables[0] != "posts" || tables[1] != "users" {
		t.Errorf("tables = %v", tables)
	}
	if st := p.Stats(); st.Invalidations != 2 {
		t.Errorf("aggregated stats = %+v", st)
	}
}

func TestTableOf(t *testing.T) {
	cases := map[string]string{
		"posts/p1":          "posts",
		"q:posts/$and(...)": "posts",
		"q:users/x/y":       "users",
		"bare":              "bare",
	}
	for key, want := range cases {
		if got := TableOf(key); got != want {
			t.Errorf("TableOf(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestReplicatedConsistency(t *testing.T) {
	c := newFakeClock()
	r := NewReplicated(3, &Options{Bits: 1 << 12, Hashes: 4, Clock: c.Now})
	if r.Replicas() != 3 {
		t.Fatalf("replicas = %d", r.Replicas())
	}
	r.ReportRead("k", time.Minute)
	if !r.ReportWrite("k") {
		t.Fatal("replicated write should purge")
	}
	// Every replica must agree regardless of rotation.
	for i := 0; i < 6; i++ {
		if !r.Contains("k") {
			t.Fatalf("replica rotation %d disagrees", i)
		}
	}
	for i := 0; i < 6; i++ {
		if !r.Snapshot().Contains("k") {
			t.Fatalf("snapshot rotation %d disagrees", i)
		}
	}
}
