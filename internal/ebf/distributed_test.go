package ebf

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"quaestor/internal/kvstore"
)

// TestDistributedParity drives the in-memory EBF and the kvstore-backed
// distributed EBF with the same randomized operation sequence and checks
// that membership decisions, purge decisions and stale counts agree at
// every step — the two implementations are interchangeable deployments of
// the same structure.
func TestDistributedParity(t *testing.T) {
	c := newFakeClock()
	kv := kvstore.NewWithClock(c.Now)
	defer kv.Close()
	local := New(&Options{Bits: 1 << 12, Hashes: 4, Clock: c.Now})
	dist := NewDistributed(kv, "ebf", &Options{Bits: 1 << 12, Hashes: 4, Clock: c.Now})

	r := rand.New(rand.NewSource(11))
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("q:t/key%02d", i)
	}
	for step := 0; step < 1500; step++ {
		k := keys[r.Intn(len(keys))]
		switch r.Intn(4) {
		case 0:
			ttl := time.Duration(1+r.Intn(15)) * time.Second
			local.ReportRead(k, ttl)
			dist.ReportRead(k, ttl)
		case 1:
			lp := local.ReportWrite(k)
			dp := dist.ReportWrite(k)
			if lp != dp {
				t.Fatalf("step %d: purge decision diverged (local=%v dist=%v)", step, lp, dp)
			}
		case 2:
			c.Advance(time.Duration(r.Intn(3000)) * time.Millisecond)
		case 3:
			lc := local.Contains(k)
			dc := dist.Contains(k)
			if lc != dc {
				t.Fatalf("step %d: Contains(%s) diverged (local=%v dist=%v)", step, k, lc, dc)
			}
		}
		if step%101 == 0 {
			if ls, ds := local.StaleCount(), dist.StaleCount(); ls != ds {
				t.Fatalf("step %d: stale counts diverged (local=%d dist=%d)", step, ls, ds)
			}
		}
	}
}

func TestDistributedSnapshotMatchesContains(t *testing.T) {
	c := newFakeClock()
	kv := kvstore.NewWithClock(c.Now)
	defer kv.Close()
	dist := NewDistributed(kv, "ebf", &Options{Bits: 1 << 12, Hashes: 4, Clock: c.Now})

	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		dist.ReportRead(k, time.Minute)
		dist.ReportWrite(k)
	}
	snap := dist.Snapshot()
	for i := 0; i < 10; i++ {
		if !snap.Contains(fmt.Sprintf("k%d", i)) {
			t.Errorf("snapshot missing k%d", i)
		}
	}
	if snap.Entries != 10 {
		t.Errorf("entries = %d", snap.Entries)
	}
	// Expire everything; snapshot must empty out.
	c.Advance(2 * time.Minute)
	snap = dist.Snapshot()
	for i := 0; i < 10; i++ {
		if snap.Contains(fmt.Sprintf("k%d", i)) {
			// Bloom false positives are possible but with 10 keys in 4096
			// bits essentially zero; treat as failure.
			t.Errorf("snapshot still contains expired k%d", i)
		}
	}
}

func TestDistributedSharedAcrossFrontends(t *testing.T) {
	// Two Distributed instances over one kvstore must observe each other's
	// state — the multi-server deployment of Section 3.3.
	c := newFakeClock()
	kv := kvstore.NewWithClock(c.Now)
	defer kv.Close()
	serverA := NewDistributed(kv, "ebf", &Options{Bits: 1 << 12, Hashes: 4, Clock: c.Now})
	serverB := NewDistributed(kv, "ebf", &Options{Bits: 1 << 12, Hashes: 4, Clock: c.Now})

	serverA.ReportRead("q1", time.Minute)
	if !serverB.ReportWrite("q1") {
		t.Fatal("server B should see server A's TTL registration")
	}
	if !serverA.Contains("q1") {
		t.Error("server A should see server B's invalidation")
	}
	if serverA.String() == "" {
		t.Error("String() empty")
	}
}
