package ebf

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"quaestor/internal/bloom"
	"quaestor/internal/kvstore"
)

// Distributed is the kvstore-backed EBF variant: multiple DBaaS servers
// share one filter by storing the counting Bloom filter, the flat mirror
// and the expiration bookkeeping in a central key-value store (Section 3.3
// "In the distributed case, all DBaaS servers communicate with the
// in-memory key-value store Redis, which holds the counting Bloom Filter
// and the tracked expirations").
//
// Layout in the KV store (prefix p):
//
//	p:cnt       hash  bit-index -> counter
//	p:flat      hash  word-index -> uint64 bit word
//	p:exp       hash  key -> unix-nanos of highest issued expiration
//	p:stale     hash  key -> unix-nanos the key leaves the filter
//	p:expq      zset  member=key score=leave-time (expiration queue)
//
// A short critical section per operation keeps multiple Distributed
// frontends coherent; the kvstore serializes individual structure ops, and
// a per-instance mutex orders the multi-step transitions the same way a
// Redis Lua script would.
type Distributed struct {
	mu     sync.Mutex
	kv     *kvstore.Store
	prefix string
	bits   uint32
	hashes uint32
	clock  func() time.Time
}

// NewDistributed creates (or attaches to) a shared EBF in kv under prefix.
func NewDistributed(kv *kvstore.Store, prefix string, opts *Options) *Distributed {
	o := opts.withDefaults()
	return &Distributed{
		kv:     kv,
		prefix: prefix,
		bits:   o.Bits,
		hashes: o.Hashes,
		clock:  o.Clock,
	}
}

func (d *Distributed) key(suffix string) string { return d.prefix + ":" + suffix }

// bitIndexes computes the k distinct bit positions for key in the shared
// geometry. Deduplication keeps increments and decrements balanced even
// when double hashing maps two of the k probes to the same position.
func (d *Distributed) bitIndexes(key string) []uint32 {
	raw := bloom.Indexes(key, d.bits, d.hashes)
	seen := make(map[uint32]struct{}, len(raw))
	out := raw[:0]
	for _, i := range raw {
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, i)
	}
	return out
}

// ReportRead records the highest issued expiration for key.
func (d *Distributed) ReportRead(key string, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	now := d.clock()
	until := now.Add(ttl).UnixNano()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(now)
	cur, ok, _ := d.kv.HGet(d.key("exp"), key)
	if ok {
		if prev, err := strconv.ParseInt(cur, 10, 64); err == nil && prev >= until {
			return
		}
	}
	_, _ = d.kv.HSet(d.key("exp"), key, strconv.FormatInt(until, 10))
}

// ReportWrite flags key as stale if a cached copy may still live, returning
// whether invalidation-based caches must be purged.
func (d *Distributed) ReportWrite(key string) bool {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(now)
	raw, ok, _ := d.kv.HGet(d.key("exp"), key)
	if !ok {
		return false
	}
	until, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || until <= now.UnixNano() {
		return false
	}
	staleRaw, isStale, _ := d.kv.HGet(d.key("stale"), key)
	if isStale {
		if prev, err := strconv.ParseInt(staleRaw, 10, 64); err == nil && until > prev {
			_, _ = d.kv.HSet(d.key("stale"), key, strconv.FormatInt(until, 10))
			_ = d.kv.ZAdd(d.key("expq"), key, float64(until))
		}
		return true
	}
	for _, bit := range d.bitIndexes(key) {
		field := strconv.FormatUint(uint64(bit), 10)
		cur, _, _ := d.kv.HGet(d.key("cnt"), field)
		n, _ := strconv.Atoi(cur)
		n++
		_, _ = d.kv.HSet(d.key("cnt"), field, strconv.Itoa(n))
		if n == 1 {
			d.setFlatBit(bit, true)
		}
	}
	_, _ = d.kv.HSet(d.key("stale"), key, strconv.FormatInt(until, 10))
	_ = d.kv.ZAdd(d.key("expq"), key, float64(until))
	return true
}

func (d *Distributed) setFlatBit(bit uint32, on bool) {
	word := bit / 64
	field := strconv.FormatUint(uint64(word), 10)
	cur, _, _ := d.kv.HGet(d.key("flat"), field)
	w, _ := strconv.ParseUint(cur, 16, 64)
	if on {
		w |= 1 << (bit % 64)
	} else {
		w &^= 1 << (bit % 64)
	}
	_, _ = d.kv.HSet(d.key("flat"), field, strconv.FormatUint(w, 16))
}

func (d *Distributed) expireLocked(now time.Time) {
	members, err := d.kv.ZRangeByScore(d.key("expq"), 0, float64(now.UnixNano()))
	if err != nil || len(members) == 0 {
		return
	}
	for _, key := range members {
		staleRaw, isStale, _ := d.kv.HGet(d.key("stale"), key)
		if isStale {
			until, perr := strconv.ParseInt(staleRaw, 10, 64)
			if perr == nil && until > now.UnixNano() {
				// Extended since this queue entry; re-queue at new score.
				_ = d.kv.ZAdd(d.key("expq"), key, float64(until))
				continue
			}
			for _, bit := range d.bitIndexes(key) {
				field := strconv.FormatUint(uint64(bit), 10)
				cur, _, _ := d.kv.HGet(d.key("cnt"), field)
				n, _ := strconv.Atoi(cur)
				if n > 0 {
					n--
					_, _ = d.kv.HSet(d.key("cnt"), field, strconv.Itoa(n))
					if n == 0 {
						d.setFlatBit(bit, false)
					}
				}
			}
			_, _ = d.kv.HDel(d.key("stale"), key)
		}
		_, _ = d.kv.ZRem(d.key("expq"), key)
	}
}

// Contains reports whether key is currently flagged stale.
func (d *Distributed) Contains(key string) bool {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(now)
	for _, bit := range d.bitIndexes(key) {
		field := strconv.FormatUint(uint64(bit), 10)
		cur, ok, _ := d.kv.HGet(d.key("cnt"), field)
		if !ok {
			return false
		}
		if n, _ := strconv.Atoi(cur); n == 0 {
			return false
		}
	}
	return true
}

// Snapshot assembles the flat filter from the shared bit words.
func (d *Distributed) Snapshot() Snapshot {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(now)
	f := bloom.New(d.bits, d.hashes)
	words, _ := d.kv.HGetAll(d.key("flat"))
	for field, raw := range words {
		wordIdx, err := strconv.ParseUint(field, 10, 32)
		if err != nil {
			continue
		}
		w, err := strconv.ParseUint(raw, 16, 64)
		if err != nil {
			continue
		}
		for b := uint32(0); b < 64; b++ {
			if w&(1<<b) != 0 {
				f.SetBit(uint32(wordIdx)*64 + b)
			}
		}
	}
	entries, _ := d.kv.HLen(d.key("stale"))
	return Snapshot{Filter: f, GeneratedAt: now, Entries: entries}
}

// StaleCount returns the number of keys currently flagged.
func (d *Distributed) StaleCount() int {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked(now)
	n, _ := d.kv.HLen(d.key("stale"))
	return n
}

// String implements fmt.Stringer for diagnostics.
func (d *Distributed) String() string {
	return fmt.Sprintf("ebf.Distributed(prefix=%s,m=%d,k=%d)", d.prefix, d.bits, d.hashes)
}
