// Package ebf implements the Expiring Bloom Filter (EBF), Quaestor's
// cache-coherence data structure (Section 3).
//
// The server-side EBF answers "is this query or record potentially stale?".
// It combines
//
//   - a Counting Bloom filter of currently stale keys (removable entries),
//   - an incrementally maintained flat Bloom filter mirror that can be
//     snapshotted in O(1) amortized work per change, and
//   - an expiration table mapping each key to the highest TTL the server
//     ever issued for it, so invalidated keys stay in the filter exactly
//     until the last cached copy anywhere could have expired (Definition 1).
//
// Request-path protocol:
//
//	ReportRead(key, ttl)  — on every cacheable read/query response
//	ReportWrite(key)      — on every invalidation detected by InvaliDB; the
//	                        return value says whether caches must be purged
//	Snapshot()            — flat copy piggybacked to clients
//
// The package also provides the client-side view with differential
// whitelisting (Section 3.3) and a per-table partitioned variant whose
// aggregated filter is the bitwise OR of the partitions.
package ebf

import (
	"container/heap"
	"sync"
	"time"

	"quaestor/internal/bloom"
)

// DefaultBits matches the paper's sizing: a filter of ~14.6 KB fits TCP's
// initial congestion window and keeps the false positive rate at 6% with
// 20,000 distinct stale entries.
const DefaultBits = 10 * 1460 * 8

// DefaultHashes is the hash count used with DefaultBits at the paper's
// operating point (m/n ≈ 5.84 bits/entry → k = 4).
const DefaultHashes = 4

// Options configures an EBF instance.
type Options struct {
	// Bits is the Bloom filter size m in bits (default DefaultBits).
	Bits uint32
	// Hashes is the hash-function count k (default DefaultHashes).
	Hashes uint32
	// Clock supplies time; defaults to time.Now (simulators inject theirs).
	Clock func() time.Time
}

func (o *Options) withDefaults() Options {
	out := Options{Bits: DefaultBits, Hashes: DefaultHashes, Clock: time.Now}
	if o == nil {
		return out
	}
	if o.Bits > 0 {
		out.Bits = o.Bits
	}
	if o.Hashes > 0 {
		out.Hashes = o.Hashes
	}
	if o.Clock != nil {
		out.Clock = o.Clock
	}
	return out
}

// EBF is the server-side Expiring Bloom Filter. Safe for concurrent use.
type EBF struct {
	mu    sync.Mutex
	opts  Options
	cbf   *bloom.Counting
	flat  *bloom.Filter // incrementally maintained mirror of cbf
	exp   map[string]time.Time
	stale map[string]time.Time // key -> time it leaves the filter
	heap  expHeap

	// Stats counts EBF activity for the evaluation harness.
	stats Stats
}

// Stats aggregates EBF activity counters.
type Stats struct {
	Reads          uint64 // ReportRead calls
	Invalidations  uint64 // ReportWrite calls that found a live TTL
	IgnoredWrites  uint64 // ReportWrite calls with no cached copy to protect
	Expirations    uint64 // keys aged out of the filter
	Snapshots      uint64
	CurrentEntries int
}

// New creates a server-side EBF.
func New(opts *Options) *EBF {
	o := opts.withDefaults()
	return &EBF{
		opts:  o,
		cbf:   bloom.NewCounting(o.Bits, o.Hashes),
		flat:  bloom.New(o.Bits, o.Hashes),
		exp:   map[string]time.Time{},
		stale: map[string]time.Time{},
	}
}

type expEntry struct {
	key string
	at  time.Time
}

type expHeap []expEntry

func (h expHeap) Len() int           { return len(h) }
func (h expHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h expHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x any)        { *h = append(*h, x.(expEntry)) }
func (h *expHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ReportRead records that key was served with the given TTL. The server
// calls this for every cacheable response; the EBF tracks the highest
// outstanding expiration so a later invalidation knows how long the key
// must stay flagged ("A stale query is contained in the EBF until the
// highest TTL that the server previously issued for that query has
// expired").
func (e *EBF) ReportRead(key string, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	now := e.opts.Clock()
	until := now.Add(ttl)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expireLocked(now)
	if cur, ok := e.exp[key]; !ok || until.After(cur) {
		e.exp[key] = until
	}
	e.stats.Reads++
}

// ReportWrite marks key as invalidated. If some cache may still hold a
// non-expired copy, the key enters the Bloom filter until that copy's TTL
// has passed and ReportWrite returns true (the caller must then purge
// invalidation-based caches). Otherwise no cached copy exists and the write
// is ignored.
func (e *EBF) ReportWrite(key string) bool {
	now := e.opts.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expireLocked(now)
	until, ok := e.exp[key]
	if !ok || !until.After(now) {
		e.stats.IgnoredWrites++
		return false
	}
	if cur, isStale := e.stale[key]; isStale {
		// Already flagged; extend to the (possibly later) expiration.
		if until.After(cur) {
			e.stale[key] = until
			heap.Push(&e.heap, expEntry{key: key, at: until})
		}
		e.stats.Invalidations++
		return true
	}
	for _, bit := range e.cbf.Add(key) {
		e.flat.SetBit(bit)
	}
	e.stale[key] = until
	heap.Push(&e.heap, expEntry{key: key, at: until})
	e.stats.Invalidations++
	return true
}

// expireLocked removes entries whose last possible cached copy has expired
// ("After their TTL is expired, queries are removed from the Bloom filter").
func (e *EBF) expireLocked(now time.Time) {
	for len(e.heap) > 0 && !e.heap[0].at.After(now) {
		ent := heap.Pop(&e.heap).(expEntry)
		cur, ok := e.stale[ent.key]
		if !ok || cur.After(ent.at) {
			// Entry superseded by a later expiration; skip this heap node.
			continue
		}
		delete(e.stale, ent.key)
		for _, bit := range e.cbf.Remove(ent.key) {
			e.flat.ClearBit(bit)
		}
		e.stats.Expirations++
	}
	// Garbage-collect the TTL table opportunistically.
	if len(e.exp) > 4*len(e.stale)+1024 {
		for k, until := range e.exp {
			if !until.After(now) {
				delete(e.exp, k)
			}
		}
	}
}

// Contains reports whether key is currently considered potentially stale.
func (e *EBF) Contains(key string) bool {
	now := e.opts.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expireLocked(now)
	return e.cbf.Contains(key)
}

// Snapshot returns a flat, immutable copy of the filter plus its generation
// time t. Clients using a snapshot generated at t1 for a read at t2 obtain
// Δ-atomicity with Δ = t2 − t1 (Theorem 1).
func (e *EBF) Snapshot() Snapshot {
	now := e.opts.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expireLocked(now)
	e.stats.Snapshots++
	return Snapshot{Filter: e.flat.Clone(), GeneratedAt: now, Entries: len(e.stale)}
}

// StaleCount returns the number of keys currently flagged stale.
func (e *EBF) StaleCount() int {
	now := e.opts.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.expireLocked(now)
	return len(e.stale)
}

// Stats returns a copy of activity counters.
func (e *EBF) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.CurrentEntries = len(e.stale)
	return s
}

// Snapshot is a flat Bloom filter image with its generation timestamp.
type Snapshot struct {
	Filter      *bloom.Filter
	GeneratedAt time.Time
	Entries     int
}

// Contains reports whether key may be stale according to this snapshot.
func (s Snapshot) Contains(key string) bool {
	if s.Filter == nil {
		return false
	}
	return s.Filter.Contains(key)
}

// Age is the snapshot's age at time now — the client's achieved Δ.
func (s Snapshot) Age(now time.Time) time.Duration {
	if s.GeneratedAt.IsZero() {
		return 0
	}
	return now.Sub(s.GeneratedAt)
}
