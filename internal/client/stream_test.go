package client

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

// TestQueryStreamIterator drives the NDJSON query path through the full
// in-process stack: the iterator yields documents in query order, ends
// with io.EOF, and never touches the browser cache (no-store end to end).
func TestQueryStreamIterator(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	for i := 0; i < 8; i++ {
		doc := document.New(fmt.Sprintf("p%d", i), map[string]any{"rating": int64(i)})
		if err := c.Insert("posts", doc); err != nil {
			t.Fatal(err)
		}
	}

	q := query.New("posts", query.Gt("rating", int64(1))).Sorted(query.Desc("rating")).Sliced(0, 4)
	ds, err := c.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	var ids []string
	for {
		d, err := ds.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, d.ID)
	}
	want := []string{"p7", "p6", "p5", "p4"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	// Sticky EOF: further calls keep failing cleanly.
	if _, err := ds.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("post-EOF Next = %v", err)
	}

	st := c.Stats()
	if st.Queries == 0 {
		t.Fatal("streamed query not counted")
	}

	// Repeating the stream hits the network again: nothing was cached.
	before := c.Stats().NetworkRequests
	ds2, err := c.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	ds2.Close()
	if c.Stats().NetworkRequests <= before {
		t.Fatal("streamed query must always go to the network")
	}

	// Unknown table surfaces the server error, not a stream.
	if _, err := c.QueryStream(query.New("nope", nil)); err == nil {
		t.Fatal("unknown table must fail")
	}
}
