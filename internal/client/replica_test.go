package client

// Tests for the client's staleness-header consumption: responses served
// by a replica carry X-Quaestor-Replica / X-Quaestor-Staleness-Ms /
// X-Quaestor-Replica-Lag, which the SDK folds into per-read metadata and
// a max-observed-staleness stat — the admission-bound groundwork for
// routing reads across replicas.

import (
	"net/http"
	"testing"

	"quaestor/internal/document"
)

// replicaAnnotator wraps a handler, stamping every response with the
// replica staleness headers a replica-fronting server would add.
type replicaAnnotator struct {
	inner       http.Handler
	stalenessMs string
	lagSeq      string
}

func (a *replicaAnnotator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Quaestor-Replica", "streaming")
	if a.stalenessMs != "" {
		w.Header().Set("X-Quaestor-Staleness-Ms", a.stalenessMs)
	}
	if a.lagSeq != "" {
		w.Header().Set("X-Quaestor-Replica-Lag", a.lagSeq)
	}
	a.inner.ServeHTTP(w, r)
}

func TestClientParsesReplicaStalenessHeaders(t *testing.T) {
	s := newStack(t, nil)
	ann := &replicaAnnotator{inner: s.srv.Handler(), stalenessMs: "42", lagSeq: "7"}
	c := s.dial(t, &Options{Transport: NewHandlerTransport(ann)})

	// The initial EBF fetch already went through the annotated surface.
	if got := c.Stats().ReplicaResponses; got == 0 {
		t.Error("EBF fetch did not count as a replica response")
	}

	if err := c.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	// Read through the network (own-writes buffer short-circuits reads of
	// our own writes, so read a strongly-consistent copy).
	if _, err := c.ReadWith("posts", "p1", ReadOptions{Consistency: Strong}); err != nil {
		t.Fatal(err)
	}

	meta := c.LastReplicaMeta()
	if !meta.Replica || meta.State != "streaming" {
		t.Errorf("LastReplicaMeta = %+v, want streaming replica", meta)
	}
	if meta.StalenessMs != 42 {
		t.Errorf("StalenessMs = %v, want 42", meta.StalenessMs)
	}
	if meta.LagSeq != 7 {
		t.Errorf("LagSeq = %d, want 7", meta.LagSeq)
	}
	st := c.Stats()
	if st.MaxStalenessMs != 42 {
		t.Errorf("MaxStalenessMs = %v, want 42", st.MaxStalenessMs)
	}
	if st.ReplicaResponses < 2 {
		t.Errorf("ReplicaResponses = %d, want >= 2", st.ReplicaResponses)
	}

	// A bigger bound raises the max; a smaller one does not lower it.
	ann.stalenessMs = "90"
	if _, err := c.ReadWith("posts", "p1", ReadOptions{Consistency: Strong}); err != nil {
		t.Fatal(err)
	}
	ann.stalenessMs = "5"
	if _, err := c.ReadWith("posts", "p1", ReadOptions{Consistency: Strong}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.MaxStalenessMs != 90 {
		t.Errorf("MaxStalenessMs = %v, want 90 (monotone max)", st.MaxStalenessMs)
	}
	if got := c.LastReplicaMeta().StalenessMs; got != 5 {
		t.Errorf("latest StalenessMs = %v, want 5", got)
	}

	// Primary responses (no header) leave the replica stats untouched.
	plain := s.dial(t, nil)
	if _, err := plain.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if st := plain.Stats(); st.ReplicaResponses != 0 || st.MaxStalenessMs != 0 {
		t.Errorf("primary-served session recorded replica stats: %+v", st)
	}
	if m := plain.LastReplicaMeta(); m.Replica {
		t.Errorf("primary-served session has replica meta: %+v", m)
	}
}

// TestClientReplicaHeadersAgainstRealReplicaShape drives the real
// header-producing path end to end at the server layer: a server with an
// attached replica annotates /v1/ebf and record reads, and the client
// parses them. (Replication itself is covered in internal/replication;
// here the replica is only attached for its status surface.)
func TestClientObservesHeadersOnEBFEndpoint(t *testing.T) {
	s := newStack(t, nil)
	ann := &replicaAnnotator{inner: s.srv.Handler(), stalenessMs: "13"}
	c := s.dial(t, &Options{Transport: NewHandlerTransport(ann)})
	// Force an explicit EBF refresh and confirm it flowed into the stats.
	before := c.Stats().ReplicaResponses
	if err := c.refreshEBF(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ReplicaResponses; got != before+1 {
		t.Errorf("ReplicaResponses = %d after EBF refresh, want %d", got, before+1)
	}
	if got := c.Stats().MaxStalenessMs; got != 13 {
		t.Errorf("MaxStalenessMs = %v, want 13", got)
	}
}
