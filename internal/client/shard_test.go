package client

// Shard-aware SDK tests: first contact with a sharded server caches the
// shard map, epoch changes trigger a refetch (and a retry when the map
// moves the record), point ops route client-side when the map names
// per-shard nodes, and writes bounced 503 by a read-only replica
// redirect once to the advertised primary.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"quaestor/internal/cluster"
	"quaestor/internal/document"
	"quaestor/internal/server"
)

// hostRouter dispatches in-process requests by URL host, so one client
// can talk to several "nodes" without sockets.
type hostRouter struct {
	hosts map[string]http.Handler
}

func (h *hostRouter) RoundTrip(req *http.Request) (*http.Response, error) {
	handler, ok := h.hosts[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("no route for host %q", req.URL.Host)
	}
	return NewHandlerTransport(handler).RoundTrip(req)
}

// epochOverride rewrites the shard-epoch header on every response,
// simulating a server whose map moved past the client's cached copy.
type epochOverride struct {
	inner http.Handler
	epoch string
}

func (a *epochOverride) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.inner.ServeHTTP(w, r)
	// HandlerTransport materializes the response only after the handler
	// returns, so overriding here wins over the server's own stamp.
	if a.epoch != "" {
		w.Header().Set(server.HeaderShardEpoch, a.epoch)
	}
}

func TestClientShardMapFirstContactAndEpochRefresh(t *testing.T) {
	router := cluster.MustOpen(cluster.Options{Shards: 2})
	srv := server.NewSharded(router, nil)
	t.Cleanup(func() {
		srv.Close()
		router.Close()
	})
	if err := router.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	ann := &epochOverride{inner: srv.Handler()}
	c, err := Dial(&Options{Transport: NewHandlerTransport(ann)})
	if err != nil {
		t.Fatal(err)
	}

	// Dial's EBF fetch already carried the epoch header: first contact
	// caches the map without any retry.
	if m := c.ShardMap(); m == nil || m.Shards != 2 {
		t.Fatalf("ShardMap after first contact = %+v, want 2 shards", c.ShardMap())
	}
	st := c.Stats()
	if st.ShardMapRefreshes != 1 {
		t.Errorf("ShardMapRefreshes = %d, want 1", st.ShardMapRefreshes)
	}
	if st.ShardRetries != 0 {
		t.Errorf("ShardRetries = %d, want 0 on first contact", st.ShardRetries)
	}

	// Point ops flow through the sharded stack.
	if err := c.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadWith("posts", "p1", ReadOptions{Consistency: Strong}); err != nil {
		t.Fatal(err)
	}

	// An unseen epoch forces a map refetch; the refreshed map is
	// identical (single endpoint), so no retry is due.
	before := c.Stats().ShardMapRefreshes
	ann.epoch = "9"
	if _, err := c.ReadWith("posts", "p1", ReadOptions{Consistency: Strong}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.ShardMapRefreshes <= before {
		t.Errorf("ShardMapRefreshes = %d, want > %d after epoch change", st.ShardMapRefreshes, before)
	}
	if st.ShardRetries != 0 {
		t.Errorf("ShardRetries = %d, want 0 (map did not move the record)", st.ShardRetries)
	}
}

// recordingHandler wraps a handler and remembers which paths it served.
type recordingHandler struct {
	inner http.Handler
	hits  *[]string
	name  string
}

func (h *recordingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	*h.hits = append(*h.hits, h.name+" "+r.URL.Path)
	h.inner.ServeHTTP(w, r)
}

// mapServer serves a fabricated multi-node shard map and proxies
// everything else to the backing stack.
type mapServer struct {
	inner http.Handler
	smap  *cluster.ShardMap
}

func (m *mapServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/cluster/map" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.smap)
		return
	}
	m.inner.ServeHTTP(w, r)
}

func TestClientRoutesPointOpsAcrossNodes(t *testing.T) {
	s := newStack(t, nil)
	smap := cluster.NewShardMap(2)
	smap.Nodes = []string{"http://node0", "http://node1"}

	var hits0, hits1 []string
	transport := &hostRouter{hosts: map[string]http.Handler{
		"any":   &mapServer{inner: s.srv.Handler(), smap: smap},
		"node0": &recordingHandler{inner: s.srv.Handler(), hits: &hits0, name: "node0"},
		"node1": &recordingHandler{inner: s.srv.Handler(), hits: &hits1, name: "node1"},
	}}
	c, err := Dial(&Options{Transport: transport, BaseURL: "http://any"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RefreshShardMap(); err != nil {
		t.Fatal(err)
	}
	if m := c.ShardMap(); m == nil || len(m.Nodes) != 2 {
		t.Fatalf("cached map = %+v", c.ShardMap())
	}

	// Each point op must land on the node owning the id's shard.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("doc-%d", i)
		if err := c.Insert("posts", document.New(id, map[string]any{"v": i})); err != nil {
			t.Fatal(err)
		}
		want := smap.Shard(id)
		got0, got1 := len(hits0), len(hits1)
		if want == 0 && got0 == 0 || want == 1 && got1 == 0 {
			t.Fatalf("insert %s: expected shard %d's node to serve it (node0=%d node1=%d hits)", id, want, got0, got1)
		}
		hits0, hits1 = nil, nil
	}

	// Strong reads bypass the own-writes buffer and hit the network: they
	// must route to the owning node too.
	hits0, hits1 = nil, nil
	if _, err := c.ReadWith("posts", "doc-1", ReadOptions{Consistency: Strong}); err != nil {
		t.Fatal(err)
	}
	if want := smap.Shard("doc-1"); want == 0 && len(hits0) == 0 || want == 1 && len(hits1) == 0 {
		t.Errorf("routed read missed shard %d's node", want)
	}
}

// readOnlyBouncer simulates a replica: writes bounce 503 with the
// primary advertised, reads proxy through.
type readOnlyBouncer struct {
	inner   http.Handler
	primary string
}

func (b *readOnlyBouncer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set(server.HeaderPrimary, b.primary)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"store is read-only (replica)"}`))
		return
	}
	b.inner.ServeHTTP(w, r)
}

func TestClientRedirectsBouncedWriteToPrimary(t *testing.T) {
	s := newStack(t, nil)
	transport := &hostRouter{hosts: map[string]http.Handler{
		"replica": &readOnlyBouncer{inner: s.srv.Handler(), primary: "http://primary"},
		"primary": s.srv.Handler(),
	}}
	c, err := Dial(&Options{Transport: transport, BaseURL: "http://replica"})
	if err != nil {
		t.Fatal(err)
	}

	// The write bounces on the replica and lands on the primary.
	if err := c.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatalf("bounced write did not redirect: %v", err)
	}
	if got := c.Stats().PrimaryRedirects; got != 1 {
		t.Errorf("PrimaryRedirects = %d, want 1", got)
	}
	if _, err := s.db.Get("posts", "p1"); err != nil {
		t.Errorf("redirected write not applied at the primary: %v", err)
	}

	// Reads keep flowing through the replica.
	if _, err := c.ReadWith("posts", "p1", ReadOptions{Consistency: Strong}); err != nil {
		t.Fatal(err)
	}

	// A primary that does not advertise itself cannot be redirected to:
	// the client surfaces the 503.
	bare := &readOnlyBouncer{inner: s.srv.Handler(), primary: ""}
	c2, err := Dial(&Options{Transport: NewHandlerTransport(bare)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Insert("posts", document.New("p2", map[string]any{"v": 1})); err == nil {
		t.Error("write succeeded with no primary hint; want 503 error")
	}
}
