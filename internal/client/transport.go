package client

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// HandlerTransport adapts an http.Handler into an http.RoundTripper so a
// client can talk to an in-process tier chain
// (browser → CDN tier → origin handler) without sockets. The evaluation
// harness and examples use it to assemble full caching topologies in one
// process while the production binary serves the same handlers over TCP.
type HandlerTransport struct {
	Handler http.Handler
}

// NewHandlerTransport wraps h.
func NewHandlerTransport(h http.Handler) *HandlerTransport {
	return &HandlerTransport{Handler: h}
}

// RoundTrip implements http.RoundTripper.
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &captureWriter{header: http.Header{}, status: http.StatusOK}
	t.Handler.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.status),
		StatusCode:    rec.status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// HostMapTransport dispatches requests to per-host in-process handlers
// by the request URL's host, falling back to Fallback (or the sole
// mapped handler) when the host is unknown. It is how tests and
// benchmarks assemble multi-node topologies — a primary plus N replicas,
// each a distinct http.Handler addressed by base URL — in one process,
// while production deployments use real sockets with the same URLs.
type HostMapTransport struct {
	Handlers map[string]http.Handler
	Fallback http.Handler
}

// NewHostMapTransport maps base URLs (e.g. "http://replica-1") or bare
// hosts to handlers.
func NewHostMapTransport(handlers map[string]http.Handler) *HostMapTransport {
	byHost := make(map[string]http.Handler, len(handlers))
	for k, h := range handlers {
		byHost[hostOf(k)] = h
	}
	return &HostMapTransport{Handlers: byHost}
}

func hostOf(base string) string {
	s := base
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// RoundTrip implements http.RoundTripper.
func (t *HostMapTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h := t.Handlers[req.URL.Host]
	if h == nil {
		h = t.Fallback
	}
	if h == nil {
		return nil, fmt.Errorf("client: no handler mapped for host %q", req.URL.Host)
	}
	return (&HandlerTransport{Handler: h}).RoundTrip(req)
}

type captureWriter struct {
	header http.Header
	status int
	body   bytes.Buffer
	wrote  bool
}

func (w *captureWriter) Header() http.Header { return w.header }

func (w *captureWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
}

func (w *captureWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.body.Write(p)
}
