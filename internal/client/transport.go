package client

import (
	"bytes"
	"io"
	"net/http"
)

// HandlerTransport adapts an http.Handler into an http.RoundTripper so a
// client can talk to an in-process tier chain
// (browser → CDN tier → origin handler) without sockets. The evaluation
// harness and examples use it to assemble full caching topologies in one
// process while the production binary serves the same handlers over TCP.
type HandlerTransport struct {
	Handler http.Handler
}

// NewHandlerTransport wraps h.
func NewHandlerTransport(h http.Handler) *HandlerTransport {
	return &HandlerTransport{Handler: h}
}

// RoundTrip implements http.RoundTripper.
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &captureWriter{header: http.Header{}, status: http.StatusOK}
	t.Handler.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.status),
		StatusCode:    rec.status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

type captureWriter struct {
	header http.Header
	status int
	body   bytes.Buffer
	wrote  bool
}

func (w *captureWriter) Header() http.Header { return w.header }

func (w *captureWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
}

func (w *captureWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.body.Write(p)
}
