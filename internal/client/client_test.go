package client

import (
	"net/url"
	"strings"
	"testing"
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/server"
	"quaestor/internal/store"
	"quaestor/internal/ttl"
)

// stack is a full in-process deployment: origin, CDN tier, client.
type stack struct {
	db  *store.Store
	srv *server.Server
	cdn *cache.HTTPTier
}

func newStack(t *testing.T, srvOpts *server.Options) *stack {
	t.Helper()
	db := store.MustOpen(nil)
	srv := server.New(db, srvOpts)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	if err := db.CreateTable("posts"); err != nil {
		t.Fatal(err)
	}
	cdn := cache.NewHTTPTier("cdn", cache.InvalidationBased, srv.Handler(), 0)
	srv.AddPurger(server.PurgerFunc(func(path string) { cdn.Cache.Purge(path) }))
	return &stack{db: db, srv: srv, cdn: cdn}
}

func (s *stack) dial(t *testing.T, opts *Options) *Client {
	t.Helper()
	if opts == nil {
		opts = &Options{}
	}
	if opts.Transport == nil {
		opts.Transport = NewHandlerTransport(s.cdn)
	}
	c, err := Dial(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDialFetchesEBF(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	if c.Stats().EBFRefreshes != 1 {
		t.Errorf("EBF refreshes = %d", c.Stats().EBFRefreshes)
	}
	if c.EBFAge() < 0 {
		t.Error("negative EBF age")
	}
}

func TestInsertReadRoundTrip(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	doc := document.New("p1", map[string]any{"title": "hi", "tags": []any{"x"}})
	if err := c.Insert("posts", doc); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("title"); v != "hi" {
		t.Errorf("title = %v", v)
	}
}

func TestReadYourWrites(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	if err := c.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().NetworkRequests
	got, err := c.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("v"); v != int64(1) {
		t.Errorf("v = %v", v)
	}
	if c.Stats().NetworkRequests != before {
		t.Error("read-your-writes should not hit the network")
	}
}

func TestBrowserCacheHit(t *testing.T) {
	s := newStack(t, nil)
	writer := s.dial(t, nil)
	if err := writer.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	reader := s.dial(t, &Options{RefreshInterval: time.Hour})
	if _, err := reader.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	n := reader.Stats().NetworkRequests
	if _, err := reader.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	st := reader.Stats()
	if st.NetworkRequests != n {
		t.Error("second read should be a browser-cache hit")
	}
	if st.CacheHits != 1 {
		t.Errorf("cache hits = %d", st.CacheHits)
	}
}

func TestEBFDrivenRevalidation(t *testing.T) {
	s := newStack(t, nil)
	writer := s.dial(t, nil)
	if err := writer.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	reader := s.dial(t, &Options{RefreshInterval: time.Nanosecond}) // refresh every op
	if _, err := reader.Read("posts", "p1"); err != nil {           // cache it
		t.Fatal(err)
	}
	// Another client updates the record: the EBF flags it, the CDN is
	// purged.
	if _, err := writer.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"v": 2}}); err != nil {
		t.Fatal(err)
	}
	s.srv.InvaliDB().Quiesce(5 * time.Second)

	// The reader's next access refreshes the EBF, sees the flag, and
	// revalidates instead of serving its stale browser copy.
	got, err := reader.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("v"); v != int64(2) {
		t.Errorf("stale value served despite EBF: v = %v", v)
	}
	if reader.Stats().Revalidations == 0 {
		t.Error("no revalidation issued")
	}
}

func TestStaticTTLClientServesStale(t *testing.T) {
	// The straw-man client (no EBF) keeps serving its cached copy — this
	// is the contrast that motivates the EBF (Section 3).
	s := newStack(t, nil)
	writer := s.dial(t, nil)
	if err := writer.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	reader := s.dial(t, &Options{DisableEBF: true})
	if _, err := reader.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"v": 2}}); err != nil {
		t.Fatal(err)
	}
	s.srv.InvaliDB().Quiesce(5 * time.Second)
	got, err := reader.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("v"); v != int64(1) {
		t.Errorf("static-TTL client should still see the cached v=1, got %v", v)
	}
}

func TestStrongConsistencyBypassesCaches(t *testing.T) {
	s := newStack(t, nil)
	writer := s.dial(t, nil)
	if err := writer.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	reader := s.dial(t, &Options{RefreshInterval: time.Hour}) // stale EBF
	if _, err := reader.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"v": 2}}); err != nil {
		t.Fatal(err)
	}
	got, err := reader.ReadWith("posts", "p1", ReadOptions{Consistency: Strong})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("v"); v != int64(2) {
		t.Errorf("strong read returned stale v = %v", v)
	}
}

func TestQueryObjectListCachesMembers(t *testing.T) {
	s := newStack(t, &server.Options{Representation: server.RepAlwaysObjects})
	c := s.dial(t, &Options{RefreshInterval: time.Hour})
	for _, id := range []string{"a", "b", "c"} {
		if err := c.Insert("posts", document.New(id, map[string]any{"tags": []any{"x"}})); err != nil {
			t.Fatal(err)
		}
	}
	q := query.New("posts", query.Contains("tags", "x"))
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Representation != ttl.ObjectList || len(res.Docs) != 3 || res.RoundTrips != 1 {
		t.Fatalf("result = %+v", res)
	}
	// Members are individually cached: reading one is a local hit. (Reads
	// of own writes are served from the session buffer, so read as a
	// different doc owner: clear own-writes via a fresh client.)
	c2 := s.dial(t, &Options{RefreshInterval: time.Hour})
	if _, err := c2.Query(q); err != nil {
		t.Fatal(err)
	}
	n := c2.Stats().NetworkRequests
	if _, err := c2.Read("posts", "a"); err != nil {
		t.Fatal(err)
	}
	if c2.Stats().NetworkRequests != n {
		t.Error("member read should hit the cache by side effect")
	}
}

func TestQueryIDListAssembly(t *testing.T) {
	s := newStack(t, &server.Options{Representation: server.RepAlwaysIDs})
	c := s.dial(t, &Options{RefreshInterval: time.Hour})
	for _, id := range []string{"a", "b"} {
		if err := c.Insert("posts", document.New(id, map[string]any{"tags": []any{"x"}})); err != nil {
			t.Fatal(err)
		}
	}
	q := query.New("posts", query.Contains("tags", "x"))
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Representation != ttl.IDList {
		t.Fatalf("rep = %v", res.Representation)
	}
	if len(res.Docs) != 2 || len(res.IDs) != 2 {
		t.Errorf("assembled %d docs / %d ids", len(res.Docs), len(res.IDs))
	}
	if res.RoundTrips != 3 { // 1 for the id list + 2 member fetches
		t.Errorf("round trips = %d", res.RoundTrips)
	}
}

func TestQueryCachedSecondRead(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, &Options{RefreshInterval: time.Hour})
	if err := c.Insert("posts", document.New("a", map[string]any{"tags": []any{"x"}})); err != nil {
		t.Fatal(err)
	}
	q := query.New("posts", query.Contains("tags", "x"))
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	n := c.Stats().NetworkRequests
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().NetworkRequests != n {
		t.Error("second query should be served locally")
	}
	if len(res.IDs) != 1 {
		t.Errorf("cached result ids = %v", res.IDs)
	}
}

func TestDeleteInvalidatesLocalCache(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, &Options{RefreshInterval: time.Hour})
	if err := c.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("posts", "p1"); err == nil {
		t.Error("read of deleted record should fail, not serve the cache")
	}
}

func TestQueryPathDeterministic(t *testing.T) {
	q1 := query.New("posts", query.AndOf(query.Contains("tags", "x"), query.Gt("rating", 3))).
		Sorted(query.Desc("rating")).Sliced(2, 5)
	q2 := query.New("posts", query.AndOf(query.Gt("rating", 3), query.Contains("tags", "x"))).
		Sorted(query.Desc("rating")).Sliced(2, 5)
	// Builder order differs, URL may differ — but both parse back to the
	// same canonical query key, and identical queries produce identical
	// URLs.
	if QueryPath(q1) != QueryPath(q1) {
		t.Error("QueryPath unstable")
	}
	p1, p2 := QueryPath(q1), QueryPath(q2)
	if !strings.Contains(p1, "sort=") || !strings.Contains(p1, "limit=5") || !strings.Contains(p1, "offset=2") {
		t.Errorf("path missing clauses: %s", p1)
	}
	// Both paths must resolve to the same canonical query at the server.
	for _, p := range []string{p1, p2} {
		u := strings.SplitN(p, "?", 2)
		vals := mustParseQuery(t, u[1])
		parsed, err := server.ParseQueryRequest("posts", vals)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Key() != q1.Key() {
			t.Errorf("URL %s parsed to key %s, want %s", p, parsed.Key(), q1.Key())
		}
	}
}

func TestCausalConsistencyRefreshesEBF(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, &Options{RefreshInterval: time.Hour})
	if err := c.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	// A read newer than the EBF followed by a causal read must refresh the
	// filter first.
	if _, err := c.ReadWith("posts", "p1", ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().EBFRefreshes
	if _, err := c.ReadWith("posts", "p1", ReadOptions{Consistency: Causal}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().EBFRefreshes != before+1 {
		t.Errorf("causal read did not refresh the EBF (refreshes %d -> %d)", before, c.Stats().EBFRefreshes)
	}
}

func TestErrorSurfaced(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	if _, err := c.Read("posts", "missing"); err == nil {
		t.Error("missing record read should error")
	}
	if err := c.CreateTable("newtable"); err != nil {
		t.Errorf("CreateTable failed: %v", err)
	}
	if err := c.Insert("ghost", document.New("x", nil)); err == nil {
		t.Error("insert into missing table should error")
	}
}

func mustParseQuery(t *testing.T, raw string) url.Values {
	t.Helper()
	vals, err := url.ParseQuery(raw)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}
