package client

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/server"
)

// Staleness-bounded read routing (the paper's replica tier as part of
// the cache hierarchy): a client configured with replica endpoints
// spreads bounded record reads across them by power-of-two-choices over
// observed staleness and latency. Every routed request carries the
// bound (X-Quaestor-Max-Staleness-Ms) and, after a write to the same
// key, the read-your-writes floor (X-Quaestor-Min-Seq); a replica that
// cannot prove it meets either answers 412 and the client retries once
// on another replica, then falls back to the primary — a bounded read
// never silently returns an over-bound response.

// replicaPenalty is how long a replica is deprioritized after a
// rejection it could not even bound; long enough to drain a transient
// fault, short enough to rediscover a recovered replica quickly.
const replicaPenalty = 100 * time.Millisecond

// Endpoint liveness: after evictAfterFailures consecutive connection
// failures an endpoint is treated as down and taken out of routing; it
// is re-probed with exponential backoff (evictBackoffBase doubling up to
// evictBackoffMax) instead of the flat transient penalty, so a dead
// replica stops absorbing one doomed attempt per read while a recovered
// one is rediscovered within a bounded window.
const (
	evictAfterFailures = 3
	evictBackoffBase   = 500 * time.Millisecond
	evictBackoffMax    = 30 * time.Second
)

// unknownStalenessPenaltyMs ranks an endpoint whose staleness is unknown
// (-1: bootstrapping, or cut off from its primary) behind any replica
// with a proven bound. Unknown is not fresh — comparing the -1 sentinel
// numerically would make a replica that cannot prove anything look
// better than one provably 1ms behind.
const unknownStalenessPenaltyMs = float64(1 << 20)

// latencyEWMAAlpha weights the newest latency observation.
const latencyEWMAAlpha = 0.3

// endpointState is one replica endpoint's observed health, updated from
// every exchange's staleness headers and wall-clock latency.
type endpointState struct {
	url          string
	latencyMs    float64 // EWMA of exchange latency
	stalenessMs  float64 // last observed staleness (-1 unknown)
	appliedSeq   uint64  // last observed applied sequence
	inflight     int     // requests currently outstanding
	penaltyUntil time.Time
	observed     bool // at least one exchange has succeeded
	consecFails  int  // consecutive connection failures (liveness)
}

// score ranks endpoints for power-of-two-choices: observed staleness
// plus smoothed latency scaled by outstanding load, all in milliseconds.
// The in-flight term matters under concurrency — latency and staleness
// only update when a response lands, so two choices scored on them alone
// herd onto whichever endpoint last looked best; outstanding requests
// are visible the instant they are issued and spread the herd. An
// endpoint never talked to scores 0 — optimistic, so new replicas get
// explored; one that answered but could not bound its staleness ranks
// last, not first.
func (e *endpointState) score() float64 {
	s := e.stalenessMs
	if s < 0 {
		if e.observed {
			s = unknownStalenessPenaltyMs
		} else {
			s = 0
		}
	}
	return s + e.latencyMs*float64(1+e.inflight)
}

// TierCounts attributes served record reads to the tier that answered:
// the primary, a replica, or the client's own cache (including the
// read-your-writes buffer). The measured basis for "absorbed by the
// cache hierarchy" claims.
type TierCounts struct {
	Primary     uint64
	Replica     uint64
	ClientCache uint64
}

// WithMaxStaleness bounds one read: the response's provable staleness
// must not exceed d. d = 0 demands primary-equivalence — the read
// bypasses every cache tier and is served by the primary.
func WithMaxStaleness(d time.Duration) ReadOptions {
	return ReadOptions{MaxStaleness: d, BoundStaleness: true}
}

// effectiveBound resolves a read's staleness bound: the per-read option
// when set, else the session default (Options.MaxStaleness > 0). ok is
// false for unbounded reads, which keep the SDK's original behavior.
func (c *Client) effectiveBound(opts ReadOptions) (time.Duration, bool) {
	if opts.BoundStaleness {
		return opts.MaxStaleness, true
	}
	if c.opts.MaxStaleness > 0 {
		return c.opts.MaxStaleness, true
	}
	return 0, false
}

// SetReplicaEndpoints installs the replica endpoints bounded reads are
// routed across. Observed state for endpoints that stay in the set is
// kept.
func (c *Client) SetReplicaEndpoints(urls ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := map[string]*endpointState{}
	for _, ep := range c.replicas {
		old[ep.url] = ep
	}
	c.replicas = c.replicas[:0]
	for _, u := range urls {
		if ep := old[u]; ep != nil {
			c.replicas = append(c.replicas, ep)
			continue
		}
		c.replicas = append(c.replicas, &endpointState{url: u, stalenessMs: -1})
	}
}

// ReplicaEndpoints returns the configured replica endpoints.
func (c *Client) ReplicaEndpoints() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	urls := make([]string, len(c.replicas))
	for i, ep := range c.replicas {
		urls[i] = ep.url
	}
	return urls
}

// RefreshReplicaSet fetches the deployment's advertised read topology
// (GET /v1/cluster/replicas) from the default endpoint and installs the
// replica endpoints. Deployments that advertise nothing leave routing
// off.
func (c *Client) RefreshReplicaSet() error {
	return c.refreshReplicaSetFrom(c.opts.BaseURL)
}

// refreshReplicaSetFrom is RefreshReplicaSet against an explicit base —
// after a failover the default endpoint may be the one node that is
// gone, and the surviving replicas carry the rewritten topology. The
// advertised primary is remembered as the write-redirect target of last
// resort.
func (c *Client) refreshReplicaSetFrom(base string) error {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/cluster/replicas", nil)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.NetworkRequests++
	c.mu.Unlock()
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	var body server.ReplicaSetResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	c.SetReplicaEndpoints(body.Replicas...)
	if body.Primary != "" {
		c.mu.Lock()
		c.knownPrimary = body.Primary
		c.mu.Unlock()
	}
	return nil
}

// pickReplica chooses a candidate by power-of-two-choices over score,
// excluding already-tried and penalized endpoints, and marks the winner
// in-flight (the caller must releaseReplica it when the exchange ends).
// nil when no replica is eligible (the caller then goes to the primary).
func (c *Client) pickReplica(tried map[string]bool) *endpointState {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	var cands []*endpointState
	for _, ep := range c.replicas {
		if tried[ep.url] || now.Before(ep.penaltyUntil) {
			continue
		}
		cands = append(cands, ep)
	}
	var win *endpointState
	switch len(cands) {
	case 0:
		return nil
	case 1:
		win = cands[0]
	default:
		i := c.rng.Intn(len(cands))
		j := c.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		win = cands[i]
		if cands[j].score() < cands[i].score() {
			win = cands[j]
		}
	}
	win.inflight++
	return win
}

// releaseReplica ends an exchange started by pickReplica.
func (c *Client) releaseReplica(ep *endpointState) {
	c.mu.Lock()
	ep.inflight--
	c.mu.Unlock()
}

// observeEndpoint folds one exchange's outcome into the endpoint's
// routing state. Any completed exchange proves liveness: the
// consecutive-failure counter resets and the endpoint counts as
// observed (so an unknown staleness from here on means "cannot prove",
// not "never asked").
func (c *Client) observeEndpoint(ep *endpointState, h http.Header, elapsed time.Duration) {
	ms := float64(elapsed) / float64(time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	ep.observed = true
	ep.consecFails = 0
	if ep.latencyMs == 0 {
		ep.latencyMs = ms
	} else {
		ep.latencyMs = latencyEWMAAlpha*ms + (1-latencyEWMAAlpha)*ep.latencyMs
	}
	if v := h.Get("X-Quaestor-Staleness-Ms"); v != "" {
		if st, err := strconv.ParseFloat(v, 64); err == nil {
			ep.stalenessMs = st
		}
	}
	if v := h.Get(server.HeaderAppliedSeq); v != "" {
		if seq, err := strconv.ParseUint(v, 10, 64); err == nil {
			ep.appliedSeq = seq
		}
	}
}

func (c *Client) penalize(ep *endpointState) {
	until := c.opts.Clock().Add(replicaPenalty)
	c.mu.Lock()
	ep.penaltyUntil = until
	c.mu.Unlock()
}

// noteConnFailure records a transport-level failure (connection refused,
// reset, timeout) against an endpoint's liveness. The first failures get
// the flat transient penalty; at evictAfterFailures consecutive failures
// the endpoint is evicted and re-probed with exponential backoff.
func (c *Client) noteConnFailure(ep *endpointState) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	ep.consecFails++
	d := replicaPenalty
	if ep.consecFails >= evictAfterFailures {
		if ep.consecFails == evictAfterFailures {
			c.stats.EndpointEvictions++
		}
		shift := ep.consecFails - evictAfterFailures
		if shift > 10 {
			shift = 10
		}
		d = evictBackoffBase << uint(shift)
		if d > evictBackoffMax {
			d = evictBackoffMax
		}
	}
	ep.penaltyUntil = now.Add(d)
}

// observeWriteSeq records a write acknowledgement's sequence as the
// key's read-your-writes low-water mark: a later bounded read of the
// key demands a replica whose applied sequence has reached it.
func (c *Client) observeWriteSeq(key string, h http.Header) {
	v := h.Get(server.HeaderWriteSeq)
	if v == "" {
		return
	}
	seq, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return
	}
	c.mu.Lock()
	if seq > c.minSeqs[key] {
		c.minSeqs[key] = seq
	}
	c.mu.Unlock()
}

func (c *Client) minSeqFor(key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.minSeqs[key]
}

// responseStaleness extracts the replica-reported staleness of a
// response; (0, false) for primary-served responses, which are fresh by
// definition.
func responseStaleness(h http.Header) (float64, bool) {
	if h.Get("X-Quaestor-Replica") == "" {
		return 0, false
	}
	v := h.Get("X-Quaestor-Staleness-Ms")
	if v == "" {
		return -1, true // replica that has not bounded its staleness yet
	}
	ms, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return -1, true
	}
	return ms, true
}

// countTier attributes one network-served read to the responding tier.
// A promoted replica is a primary again.
func (c *Client) countTier(h http.Header) {
	state := h.Get("X-Quaestor-Replica")
	c.mu.Lock()
	if state != "" && state != "promoted" {
		c.stats.ReadsByTier.Replica++
	} else {
		c.stats.ReadsByTier.Primary++
	}
	c.mu.Unlock()
}

// noteCacheOrigin remembers the origin staleness a path's cache entry
// was stored with, so a later bounded read can admit the entry only when
// entry age + origin staleness stays within its bound.
func (c *Client) noteCacheOrigin(path string, h http.Header) {
	ms, _ := responseStaleness(h)
	if ms < 0 {
		ms = 0
	}
	c.mu.Lock()
	c.cacheStale[path] = ms
	c.mu.Unlock()
}

// cacheWithinBound reports whether a cached entry provably satisfies a
// staleness bound: its age plus the staleness it was served with.
func (c *Client) cacheWithinBound(path string, storedAt time.Time, bound time.Duration) bool {
	age := c.opts.Clock().Sub(storedAt)
	c.mu.Lock()
	origin := c.cacheStale[path]
	c.mu.Unlock()
	return age+time.Duration(origin*float64(time.Millisecond)) <= bound
}

// maybePiggybackEBF refreshes the client's invalidation state from the
// tier that served a read (Cached-Initialization style): when the
// response advertises an EBF generation newer than the client's view,
// the filter is refetched from the same endpoint — no primary
// round-trip. Throttled to a quarter of Δ so write-heavy phases don't
// degenerate into a refresh per read.
func (c *Client) maybePiggybackEBF(base string, h http.Header) {
	if c.opts.DisableEBF || c.opts.PerTableEBF {
		return
	}
	v := h.Get(server.HeaderEBFGenerated)
	if v == "" {
		return
	}
	gen, err := strconv.ParseInt(v, 10, 64)
	if err != nil || gen == 0 {
		return
	}
	now := c.opts.Clock()
	c.mu.Lock()
	view := c.view
	last := c.lastPiggyback
	c.mu.Unlock()
	if view == nil || gen <= view.GeneratedAt().UnixNano() {
		return
	}
	if now.Sub(last) < c.opts.RefreshInterval/4 {
		return
	}
	c.mu.Lock()
	c.lastPiggyback = now
	c.mu.Unlock()
	snap, err := c.fetchEBFFrom(base, "")
	if err != nil {
		return
	}
	c.mu.Lock()
	c.view.Refresh(snap)
	c.stats.EBFRefreshes++
	c.stats.EBFPiggybacks++
	c.mu.Unlock()
}

func (c *Client) bumpStalenessRetries() {
	c.mu.Lock()
	c.stats.StalenessRetries++
	c.mu.Unlock()
}

// decodeRecord turns one record-read response into a document plus its
// cacheable lifetime (shared by the primary and routed fetch paths).
func (c *Client) decodeRecord(resp *http.Response, path string) (*document.Document, time.Duration, error) {
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		c.mu.Lock()
		c.stats.NotModified++
		c.mu.Unlock()
		if entry, ok := c.local.GetStale(path); ok {
			d := entry.Value.(*document.Document)
			return d.Clone(), maxAge(resp.Header), nil
		}
		return nil, 0, errors.New("client: 304 without cached copy")
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, decodeError(resp)
	}
	var doc document.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, 0, err
	}
	return &doc, maxAge(resp.Header), nil
}

// fetchRecordRouted serves one bounded record read from the replica
// tier: up to two replica attempts (power-of-two-choices, then the next
// best), each carrying the bound and the read-your-writes floor, then
// the primary. A 412 rejection, transport error, or over-bound 200 from
// an admission-unaware server re-routes; the primary fallback means a
// bounded read never silently returns an over-bound response.
func (c *Client) fetchRecordRouted(path, id, key string, revalidate bool, bound time.Duration) (*document.Document, time.Duration, error) {
	boundMs := float64(bound) / float64(time.Millisecond)
	extra := http.Header{}
	extra.Set(server.HeaderMaxStaleness, strconv.FormatFloat(boundMs, 'f', -1, 64))
	if minSeq := c.minSeqFor(key); minSeq > 0 {
		extra.Set(server.HeaderMinSeq, strconv.FormatUint(minSeq, 10))
	}
	tried := map[string]bool{}
	for attempt := 0; attempt < 2; attempt++ {
		ep := c.pickReplica(tried)
		if ep == nil {
			break
		}
		tried[ep.url] = true
		start := c.opts.Clock()
		resp, err := c.sendHdr(c.http, ep.url, http.MethodGet, path, nil, revalidate, extra)
		c.releaseReplica(ep)
		if err != nil {
			c.noteConnFailure(ep)
			continue
		}
		c.observeEndpoint(ep, resp.Header, c.opts.Clock().Sub(start))
		if resp.StatusCode == http.StatusPreconditionFailed {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.bumpStalenessRetries()
			// A rejection for a too-tight bound is not an unhealthy
			// endpoint — the p2c score, just updated from the 412's own
			// staleness header, already deprioritizes it. Only a replica
			// that cannot bound its staleness at all (bootstrapping) is
			// backed off.
			if resp.Header.Get("X-Quaestor-Staleness-Ms") == "" {
				c.penalize(ep)
			}
			continue
		}
		if st, replica := responseStaleness(resp.Header); replica && resp.StatusCode == http.StatusOK && (st < 0 || st > boundMs) {
			resp.Body.Close()
			c.bumpStalenessRetries()
			continue
		}
		doc, cacheTTL, err := c.decodeRecord(resp, path)
		if err != nil {
			return nil, 0, err
		}
		c.countTier(resp.Header)
		c.noteCacheOrigin(path, resp.Header)
		c.maybePiggybackEBF(ep.url, resp.Header)
		return doc, cacheTTL, nil
	}
	return c.fetchRecord(path, id, revalidate)
}
