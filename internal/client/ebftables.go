package client

import (
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"quaestor/internal/bloom"
	"quaestor/internal/ebf"
	"quaestor/internal/server"
)

// This file implements per-table EBF consumption (Section 3.3): "clients
// can also exploit the table-specific EBFs to decrease the total false
// positive rate at the expense of loading more individual EBFs". In
// per-table mode the client lazily fetches one filter per table it touches
// and refreshes each independently under the same Δ.

// fetchEBF retrieves a filter snapshot from the default endpoint;
// table == "" means the aggregate.
func (c *Client) fetchEBF(table string) (ebf.Snapshot, error) {
	return c.fetchEBFFrom(c.opts.BaseURL, table)
}

// fetchEBFFrom retrieves a filter snapshot from an explicit base URL —
// piggyback refreshes pull the filter from the replica that served the
// read instead of the primary. Gzip transfer encoding is negotiated
// explicitly, as the sparse filter compresses well.
func (c *Client) fetchEBFFrom(base, table string) (ebf.Snapshot, error) {
	path := "/v1/ebf"
	if table != "" {
		path += "?table=" + table
	}
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		return ebf.Snapshot{}, err
	}
	req.Header.Set("Accept-Encoding", "gzip")
	c.mu.Lock()
	c.stats.NetworkRequests++
	c.mu.Unlock()
	resp, err := c.http.Do(req)
	if err != nil {
		return ebf.Snapshot{}, err
	}
	defer resp.Body.Close()
	c.observeReplicaHeaders(resp.Header)
	// First contact with a sharded server may happen here (Dial fetches
	// the EBF before any data op): cache the shard map for point-op
	// routing. No retry — the EBF is shard-agnostic.
	c.observeShardEpoch(resp.Header, "")
	if resp.StatusCode != http.StatusOK {
		return ebf.Snapshot{}, fmt.Errorf("client: EBF endpoint returned %s", resp.Status)
	}
	var rdr io.Reader = resp.Body
	if resp.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(resp.Body)
		if err != nil {
			return ebf.Snapshot{}, err
		}
		defer gz.Close()
		rdr = gz
	}
	var body server.EBFResponse
	if err := json.NewDecoder(rdr).Decode(&body); err != nil {
		return ebf.Snapshot{}, err
	}
	raw, err := base64.StdEncoding.DecodeString(body.Filter)
	if err != nil {
		return ebf.Snapshot{}, err
	}
	f, err := bloom.Unmarshal(raw)
	if err != nil {
		return ebf.Snapshot{}, err
	}
	return ebf.Snapshot{Filter: f, GeneratedAt: time.Unix(0, body.GeneratedAt), Entries: body.Entries}, nil
}

// tableView returns (lazily creating and refreshing) the per-table filter
// view for a key's table.
func (c *Client) tableView(key string) *ebf.ClientView {
	table := ebf.TableOf(key)
	c.mu.Lock()
	v := c.tableViews[table]
	c.mu.Unlock()
	if v != nil && v.Age(c.opts.Clock()) < c.opts.RefreshInterval {
		return v
	}
	snap, err := c.fetchEBF(table)
	if err != nil {
		return v // keep serving the stale view rather than failing reads
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v == nil {
		v = ebf.NewClientView(snap)
		c.tableViews[table] = v
	} else {
		v.Refresh(snap)
	}
	c.stats.EBFRefreshes++
	return v
}
