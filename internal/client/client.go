// Package client implements the Quaestor client SDK (Figure 3, "SDK (Data
// API)"): the browser-side component that fetches the Expiring Bloom
// Filter, checks every read and query against it, promotes stale reads to
// revalidations, and layers session consistency guarantees (read-your-
// writes, monotonic reads, causal and strong consistency on opt-in) on top
// of plain HTTP caching.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"quaestor/internal/cache"
	"quaestor/internal/cluster"
	"quaestor/internal/document"
	"quaestor/internal/ebf"
	"quaestor/internal/query"
	"quaestor/internal/server"
	"quaestor/internal/store"
	"quaestor/internal/ttl"
)

// Consistency selects the per-operation guarantee (Figure 4). Δ-atomicity,
// monotonic reads/writes and read-your-writes always hold; causal and
// strong consistency are opt-in with a performance penalty.
type Consistency int

const (
	// DeltaAtomic is the default: staleness bounded by the EBF refresh
	// interval.
	DeltaAtomic Consistency = iota
	// Causal additionally refreshes the EBF whenever a previously observed
	// read is newer than the filter, so causally dependent reads are
	// ordered.
	Causal
	// Strong turns the operation into an explicit revalidation (cache miss
	// at all levels — linearizable).
	Strong
)

// Options configures a client session.
type Options struct {
	// RefreshInterval is Δ: the maximum tolerated EBF age. The first
	// request after Δ seconds refreshes the filter. Default 1s (the
	// evaluation's "Bloom filters were refreshed every second").
	RefreshInterval time.Duration
	// CacheCapacity bounds the simulated browser cache entries (0 =
	// unlimited).
	CacheCapacity int
	// Transport performs HTTP exchanges; defaults to http.DefaultTransport.
	// Use NewHandlerTransport to wire an in-process tier chain.
	Transport http.RoundTripper
	// BaseURL prefixes request paths, e.g. "http://origin". With a handler
	// transport any syntactically valid host works.
	BaseURL string
	// Clock supplies time (default time.Now).
	Clock func() time.Time
	// DisableEBF skips filter fetching and staleness checks entirely — the
	// static-TTL straw man of Section 3 and the "CDN only" baseline client.
	DisableEBF bool
	// PerTableEBF fetches one filter per table (lazily, on first touch)
	// instead of the aggregate, trading extra fetches for a lower false
	// positive rate (Section 3.3).
	PerTableEBF bool
	// DisableCache bypasses the local browser cache (the uncached
	// baseline).
	DisableCache bool
	// ReplicaEndpoints lists replica base URLs bounded reads are routed
	// across (see routing.go). Empty = every read goes to the primary.
	ReplicaEndpoints []string
	// DiscoverReplicas fetches the advertised read topology
	// (/v1/cluster/replicas) at Dial time, best-effort: a deployment that
	// advertises nothing (or an older server without the endpoint) just
	// leaves routing off.
	DiscoverReplicas bool
	// MaxStaleness, when > 0, bounds every read by default (overridable
	// per read via ReadOptions/WithMaxStaleness). Zero keeps reads
	// unbounded — the SDK's original Δ-atomic behavior.
	MaxStaleness time.Duration
	// RequestTimeout bounds every request/response exchange end to end
	// (connect through body close). Zero picks the 30s default; negative
	// disables the bound. Streamed queries (QueryStream) are exempt: a
	// long-lived NDJSON cursor's lifetime belongs to the caller.
	RequestTimeout time.Duration
}

// defaultRequestTimeout bounds request/response exchanges when the
// caller does not choose: generous enough for a large materialized
// query, small enough that a wedged endpoint cannot park a client
// goroutine forever (the ctxdeadline lint invariant).
const defaultRequestTimeout = 30 * time.Second

func (o *Options) withDefaults() Options {
	out := Options{
		RefreshInterval: time.Second,
		Transport:       http.DefaultTransport,
		BaseURL:         "http://quaestor",
		Clock:           time.Now,
		RequestTimeout:  defaultRequestTimeout,
	}
	if o == nil {
		return out
	}
	cp := *o
	if cp.RefreshInterval <= 0 {
		cp.RefreshInterval = out.RefreshInterval
	}
	if cp.Transport == nil {
		cp.Transport = out.Transport
	}
	if cp.BaseURL == "" {
		cp.BaseURL = out.BaseURL
	}
	if cp.Clock == nil {
		cp.Clock = out.Clock
	}
	if cp.RequestTimeout == 0 {
		cp.RequestTimeout = defaultRequestTimeout
	} else if cp.RequestTimeout < 0 {
		cp.RequestTimeout = 0
	}
	return cp
}

// Stats counts client-side activity.
type Stats struct {
	Reads            uint64
	Queries          uint64
	Writes           uint64
	CacheHits        uint64 // served from the local browser cache
	NetworkRequests  uint64
	Revalidations    uint64 // requests sent with no-cache due to the EBF
	EBFRefreshes     uint64
	NotModified      uint64 // 304 responses
	MonotonicRetries uint64 // re-reads forced by monotonic-read tracking
	// ReplicaResponses counts responses annotated with X-Quaestor-Replica
	// (served by a replica rather than the primary); MaxStalenessMs is
	// the largest X-Quaestor-Staleness-Ms bound observed among them — the
	// session's worst-case replica lag, and the signal a future
	// read-routing layer admission-bounds against.
	ReplicaResponses uint64
	MaxStalenessMs   float64
	// ShardMapRefreshes counts /v1/cluster/map fetches (first contact with
	// a sharded deployment, plus one per observed epoch change);
	// ShardRetries counts point ops re-sent because a refreshed map moved
	// the record to a different node; PrimaryRedirects counts writes
	// re-sent to the advertised primary after a replica bounced them 503.
	ShardMapRefreshes uint64
	ShardRetries      uint64
	PrimaryRedirects  uint64
	// ReadsByTier attributes every served record read to the tier that
	// answered it: primary, replica, or the client's own cache (browser
	// cache + read-your-writes buffer). StalenessRetries counts bounded
	// reads re-routed after a replica rejected (412) or answered over
	// bound; EBFPiggybacks counts filter refreshes triggered by a
	// replica-served response advertising a newer EBF generation.
	ReadsByTier      TierCounts
	StalenessRetries uint64
	EBFPiggybacks    uint64
	// EndpointEvictions counts replica endpoints taken out of routing
	// after evictAfterFailures consecutive connection failures (they are
	// re-probed with exponential backoff); FailoverRetries counts ops
	// re-sent to a surviving node after the routed endpoint failed at the
	// transport level — the client half of a primary-death cutover.
	EndpointEvictions uint64
	FailoverRetries   uint64
}

// ReplicaMeta is the replica annotation parsed off one response's
// staleness headers. The zero value (Replica false) means the response
// came from a primary.
type ReplicaMeta struct {
	// Replica reports whether the serving node identified itself as a
	// replica; State is its lifecycle state (X-Quaestor-Replica).
	Replica bool
	State   string
	// StalenessMs is the replica's reported staleness bound
	// (X-Quaestor-Staleness-Ms); -1 when the replica has not yet bounded
	// its staleness (e.g. still bootstrapping).
	StalenessMs float64
	// LagSeq is the replica's sequence lag behind its primary
	// (X-Quaestor-Replica-Lag); 0 when caught up.
	LagSeq uint64
}

// Client is one browser session against a Quaestor deployment.
type Client struct {
	opts Options
	// http serves request/response exchanges, bounded end to end by
	// Options.RequestTimeout; stream serves QueryStream's long-lived
	// NDJSON cursors, whose lifetime the caller owns via DocStream.Close.
	http   *http.Client
	stream *http.Client
	local  *cache.Cache // browser cache

	mu          sync.Mutex
	view        *ebf.ClientView               // aggregate-filter mode
	tableViews  map[string]*ebf.ClientView    // per-table mode
	ownWrites   map[string]*document.Document // read-your-writes buffer
	highest     map[string]int64              // monotonic read versions
	forcedReval map[string]struct{}           // keys whose next read must revalidate
	lastRead    time.Time                     // newest read timestamp (causal)
	lastReplica ReplicaMeta                   // newest replica annotation observed
	smap        *cluster.ShardMap             // cached shard map (nil until a sharded server is seen)
	// knownPrimary is the newest advertised primary base URL (from
	// X-Quaestor-Primary headers or ReplicaSetResponse.Primary): the
	// write-redirect target when the routed endpoint is gone.
	knownPrimary string
	stats        Stats

	// Staleness-bounded read routing state (routing.go).
	replicas      []*endpointState   // replica endpoints, with observed health
	minSeqs       map[string]uint64  // per-key read-your-writes low-water marks
	cacheStale    map[string]float64 // origin staleness (ms) cache entries were stored with
	rng           *rand.Rand         // power-of-two-choices source
	lastPiggyback time.Time          // last piggyback-triggered EBF refresh
}

// Dial connects to a Quaestor deployment and fetches the initial EBF
// ("Upon connection, the client gets a piggybacked EBF").
func Dial(opts *Options) (*Client, error) {
	o := opts.withDefaults()
	c := &Client{
		opts: o,
		http: &http.Client{Transport: o.Transport, Timeout: o.RequestTimeout},
		// A streamed query's body outlives any sane request timeout; the
		// cursor is closed by the consumer, and a dead peer surfaces as a
		// transport read error.
		//lint:quaestor ctxdeadline -- QueryStream cursors are long-lived by design; lifetime is owned by DocStream.Close, not a deadline
		stream:     &http.Client{Transport: o.Transport},
		local:      cache.New(cache.ExpirationBased, o.CacheCapacity, o.Clock),
		ownWrites:  map[string]*document.Document{},
		highest:    map[string]int64{},
		minSeqs:    map[string]uint64{},
		cacheStale: map[string]float64{},
		rng:        rand.New(rand.NewSource(o.Clock().UnixNano())),
	}
	c.SetReplicaEndpoints(o.ReplicaEndpoints...)
	if o.DiscoverReplicas {
		// Best-effort: a deployment that advertises no topology leaves
		// routing off, every read stays on the default endpoint.
		_ = c.RefreshReplicaSet()
	}
	if o.PerTableEBF {
		c.tableViews = map[string]*ebf.ClientView{}
	} else if !o.DisableEBF {
		if err := c.refreshEBF(); err != nil {
			return nil, fmt.Errorf("client: initial EBF fetch: %w", err)
		}
	}
	return c, nil
}

// Stats returns a copy of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// LocalCache exposes the browser cache (for harness instrumentation).
func (c *Client) LocalCache() *cache.Cache { return c.local }

// EBFAge returns the current filter age (the achieved Δ bound); zero when
// the EBF is disabled.
func (c *Client) EBFAge() time.Duration {
	c.mu.Lock()
	v := c.view
	c.mu.Unlock()
	if v == nil {
		return 0
	}
	return v.Age(c.opts.Clock())
}

// refreshEBF fetches a fresh aggregate filter snapshot.
func (c *Client) refreshEBF() error {
	snap, err := c.fetchEBF("")
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.view == nil {
		c.view = ebf.NewClientView(snap)
	} else {
		c.view.Refresh(snap)
	}
	c.stats.EBFRefreshes++
	c.mu.Unlock()
	return nil
}

// maybeRefreshEBF implements the freshness policy: the first operation
// after Δ seconds refreshes the filter. Per-table views refresh lazily in
// isStale instead.
func (c *Client) maybeRefreshEBF() {
	if c.opts.DisableEBF || c.opts.PerTableEBF {
		return
	}
	c.mu.Lock()
	v := c.view
	c.mu.Unlock()
	if v == nil || v.Age(c.opts.Clock()) >= c.opts.RefreshInterval {
		_ = c.refreshEBF()
	}
}

// isStale consults the EBF view responsible for the key.
func (c *Client) isStale(key string) bool {
	if c.opts.DisableEBF {
		return false
	}
	if c.opts.PerTableEBF {
		v := c.tableView(key)
		return v != nil && v.IsStale(key)
	}
	c.mu.Lock()
	v := c.view
	c.mu.Unlock()
	if v == nil {
		return false
	}
	return v.IsStale(key)
}

func (c *Client) markRevalidated(key string) {
	if c.opts.DisableEBF {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.PerTableEBF {
		if v := c.tableViews[ebf.TableOf(key)]; v != nil {
			v.MarkRevalidated(key)
		}
		return
	}
	if c.view != nil {
		c.view.MarkRevalidated(key)
	}
}

// do executes one HTTP exchange against the default endpoint. revalidate
// adds Cache-Control: no-cache so every intermediary bypasses (and
// refreshes) its cached copy.
func (c *Client) do(method, path string, body []byte, revalidate bool) (*http.Response, error) {
	return c.doRouted(method, path, body, revalidate, "")
}

// doRouted executes one exchange, routing point ops (docID != "") to the
// owning shard's node when a multi-node shard map is cached — otherwise
// any node works: in single-process sharded mode the server routes
// internally. Two recovery paths ride on top of the plain exchange:
//
//   - A response stamped with an unseen X-Quaestor-Shard-Epoch means the
//     cached shard map is stale. The map is refetched, and if the new map
//     moves the record to a different node the op is retried once there.
//   - A write bounced 503 by a read-only replica redirects once to the
//     primary the replica advertises via X-Quaestor-Primary.
//   - A transport-level failure (the routed node is gone) refreshes the
//     topology from a surviving endpoint and retries once wherever the
//     rewritten map or the advertised primary points — the client half
//     of an automatic failover cutover.
func (c *Client) doRouted(method, path string, body []byte, revalidate bool, docID string) (*http.Response, error) {
	return c.doRoutedOn(c.http, method, path, body, revalidate, docID)
}

// doRoutedOn is doRouted on an explicit http.Client — the bounded default
// for request/response exchanges, or the timeout-free stream client for
// long-lived NDJSON cursors.
func (c *Client) doRoutedOn(hc *http.Client, method, path string, body []byte, revalidate bool, docID string) (*http.Response, error) {
	base := c.nodeFor(docID)
	resp, err := c.send(hc, base, method, path, body, revalidate)
	if err != nil {
		nb, ok := c.failoverBase(base, docID)
		if !ok {
			return nil, err
		}
		c.mu.Lock()
		c.stats.FailoverRetries++
		c.mu.Unlock()
		base = nb
		if resp, err = c.send(hc, base, method, path, body, revalidate); err != nil {
			return nil, err
		}
	}
	if c.observeShardEpoch(resp.Header, base) && docID != "" {
		if nb := c.nodeFor(docID); nb != base {
			resp.Body.Close()
			c.mu.Lock()
			c.stats.ShardRetries++
			c.mu.Unlock()
			base = nb
			resp, err = c.send(hc, base, method, path, body, revalidate)
			if err != nil {
				return nil, err
			}
		}
	}
	if resp.StatusCode == http.StatusServiceUnavailable && method != http.MethodGet {
		if primary := resp.Header.Get(server.HeaderPrimary); primary != "" && primary != base {
			resp.Body.Close()
			c.mu.Lock()
			c.stats.PrimaryRedirects++
			c.mu.Unlock()
			return c.send(hc, primary, method, path, body, revalidate)
		}
	}
	return resp, nil
}

// send performs one raw exchange against an explicit base URL.
func (c *Client) send(hc *http.Client, base, method, path string, body []byte, revalidate bool) (*http.Response, error) {
	return c.sendHdr(hc, base, method, path, body, revalidate, nil)
}

// sendHdr is send with extra request headers (the bounded-read admission
// headers ride here).
func (c *Client) sendHdr(hc *http.Client, base, method, path string, body []byte, revalidate bool, extra http.Header) (*http.Response, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rdr)
	if err != nil {
		return nil, err
	}
	if revalidate {
		req.Header.Set("Cache-Control", "no-cache")
	}
	for k, vs := range extra {
		req.Header[k] = vs
	}
	c.mu.Lock()
	c.stats.NetworkRequests++
	if revalidate {
		c.stats.Revalidations++
	}
	c.mu.Unlock()
	resp, err := hc.Do(req)
	if err == nil {
		c.observeReplicaHeaders(resp.Header)
	}
	return resp, err
}

// nodeFor picks the endpoint for a point op: the owning shard's node when
// the cached map names per-shard nodes, the default endpoint otherwise.
func (c *Client) nodeFor(docID string) string {
	if docID == "" {
		return c.opts.BaseURL
	}
	c.mu.Lock()
	m := c.smap
	c.mu.Unlock()
	if m == nil || len(m.Nodes) == 0 {
		return c.opts.BaseURL
	}
	if u := m.NodeURL(m.Shard(docID)); u != "" {
		return u
	}
	return c.opts.BaseURL
}

// observeShardEpoch folds one response's shard-map epoch into the cached
// map. It reports true only when a previously cached map turned out
// stale and the refetch succeeded — the signal that routing may have
// been wrong and the op should be retried against the new owner. First
// contact with a sharded deployment fetches the map but needs no retry:
// the server answered by proxying internally. The refetch prefers the
// node that served the response: it provably holds the new epoch, while
// the default endpoint may be mid-failover (or the node that just died).
func (c *Client) observeShardEpoch(h http.Header, base string) bool {
	v := h.Get(server.HeaderShardEpoch)
	if v == "" {
		return false
	}
	epoch, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return false
	}
	c.mu.Lock()
	known := c.smap != nil
	current := uint64(0)
	if known {
		current = c.smap.Epoch
	}
	c.mu.Unlock()
	if known && epoch == current {
		return false
	}
	if err := c.refreshShardMap(base); err != nil {
		return false
	}
	return known && epoch != current
}

// RefreshShardMap fetches /v1/cluster/map and caches it. Called
// automatically on first contact with a sharded server and on epoch
// changes; exported so deployments with per-shard endpoints can prime
// client-side routing before the first point op. When the default
// endpoint is unreachable (it may be the failed primary), every other
// endpoint the client knows is tried.
func (c *Client) RefreshShardMap() error {
	return c.refreshShardMap("")
}

func (c *Client) refreshShardMap(preferred string) error {
	var lastErr error
	for _, base := range c.mapSources(preferred) {
		if err := c.refreshShardMapFrom(base); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("client: no endpoint to fetch the shard map from")
	}
	return lastErr
}

// mapSources lists the bases to try for topology fetches, preferred (the
// node whose response revealed the change) first, then the default
// endpoint, the last advertised primary, the replica set, and the cached
// map's nodes.
func (c *Client) mapSources(preferred string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	add := func(u string) {
		if u != "" && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	add(preferred)
	add(c.opts.BaseURL)
	add(c.knownPrimary)
	for _, ep := range c.replicas {
		add(ep.url)
	}
	if c.smap != nil {
		for _, u := range c.smap.Nodes {
			add(u)
		}
	}
	return out
}

func (c *Client) refreshShardMapFrom(base string) error {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/cluster/map", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	m, err := cluster.ParseShardMap(data)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.smap = m
	c.stats.NetworkRequests++
	c.stats.ShardMapRefreshes++
	c.mu.Unlock()
	return nil
}

// failoverBase picks where to retry an op whose routed endpoint failed
// at the transport level: the topology is refreshed from the first
// surviving endpoint (after a failover the shard map's node list and the
// replica set have both been rewritten), then the op goes to the
// refreshed map's owner for the record, the advertised primary, or the
// surviving endpoint itself — whose 503 redirect still lands writes on
// the right node. ok is false when no endpoint besides the dead one is
// known (or none answers): the caller surfaces the original error.
func (c *Client) failoverBase(dead, docID string) (string, bool) {
	var live string
	for _, base := range c.mapSources("") {
		if base == dead {
			continue
		}
		if err := c.refreshShardMapFrom(base); err != nil {
			continue
		}
		_ = c.refreshReplicaSetFrom(base)
		live = base
		break
	}
	if live == "" {
		return "", false
	}
	if docID != "" {
		if nb := c.nodeFor(docID); nb != dead && nb != "" {
			return nb, true
		}
	}
	c.mu.Lock()
	kp := c.knownPrimary
	c.mu.Unlock()
	if kp != "" && kp != dead {
		return kp, true
	}
	return live, true
}

// ShardMap returns the cached cluster topology (nil until a sharded
// server has been contacted or RefreshShardMap called).
func (c *Client) ShardMap() *cluster.ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.smap
}

// observeReplicaHeaders folds one response's staleness annotation into
// the per-read metadata and the max-observed-staleness stat. Responses
// without X-Quaestor-Replica (primary-served) are ignored — the last
// replica annotation stays current, so LastReplicaMeta describes the
// most recent replica-served exchange.
func (c *Client) observeReplicaHeaders(h http.Header) {
	// The advertised primary rides on every follower- or fenced-node
	// response; remember the newest as the redirect target of last
	// resort (failoverBase).
	if p := h.Get(server.HeaderPrimary); p != "" {
		c.mu.Lock()
		c.knownPrimary = p
		c.mu.Unlock()
	}
	state := h.Get("X-Quaestor-Replica")
	if state == "" {
		return
	}
	meta := ReplicaMeta{Replica: true, State: state, StalenessMs: -1}
	if v := h.Get("X-Quaestor-Staleness-Ms"); v != "" {
		if ms, err := strconv.ParseFloat(v, 64); err == nil {
			meta.StalenessMs = ms
		}
	}
	if v := h.Get("X-Quaestor-Replica-Lag"); v != "" {
		if lag, err := strconv.ParseUint(v, 10, 64); err == nil {
			meta.LagSeq = lag
		}
	}
	c.mu.Lock()
	c.lastReplica = meta
	c.stats.ReplicaResponses++
	// StalenessMs == -1 means the replica never proved a bound; unknown
	// must not fold into the max as if it were a magnitude.
	if meta.StalenessMs >= 0 && meta.StalenessMs > c.stats.MaxStalenessMs {
		c.stats.MaxStalenessMs = meta.StalenessMs
	}
	c.mu.Unlock()
}

// LastReplicaMeta returns the replica annotation of the most recent
// replica-served response (zero value until one is observed). Together
// with Stats.MaxStalenessMs this is the admission-bound groundwork for
// routing reads across replicas by staleness.
func (c *Client) LastReplicaMeta() ReplicaMeta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastReplica
}

// ReadOptions tunes one read.
type ReadOptions struct {
	Consistency Consistency
	// MaxStaleness bounds this read's provable staleness when
	// BoundStaleness is set (WithMaxStaleness builds the pair). A bound
	// of 0 demands primary-equivalence: the read bypasses every cache
	// tier and is served by the primary. A finite bound lets the read be
	// served by the client cache or a replica that can prove it is
	// within the bound.
	MaxStaleness   time.Duration
	BoundStaleness bool
}

// Read fetches a record with the session's consistency guarantees.
func (c *Client) Read(table, id string) (*document.Document, error) {
	return c.ReadWith(table, id, ReadOptions{})
}

// ReadWith fetches a record with per-operation consistency.
func (c *Client) ReadWith(table, id string, opts ReadOptions) (*document.Document, error) {
	c.mu.Lock()
	c.stats.Reads++
	c.mu.Unlock()
	c.applyConsistencyPre(opts.Consistency)
	c.maybeRefreshEBF()

	key := server.RecordKey(table, id)
	path := server.RecordPath(table, id)
	bound, bounded := c.effectiveBound(opts)

	// Read-your-writes: our own writes short-circuit everything. (Always
	// within any staleness bound — nothing is fresher than the session's
	// own last write.)
	if opts.Consistency != Strong {
		c.mu.Lock()
		if own, ok := c.ownWrites[key]; ok {
			c.stats.ReadsByTier.ClientCache++
			c.mu.Unlock()
			return own.Clone(), nil
		}
		c.mu.Unlock()
	}

	// A bound of 0 is a primary-equivalent read: revalidate end to end so
	// no cache tier may answer.
	revalidate := opts.Consistency == Strong || c.isStale(key) ||
		c.consumeForcedRevalidation(key) || (bounded && bound == 0)
	if !revalidate && !c.opts.DisableCache {
		if entry, ok := c.local.Get(path); ok {
			doc := entry.Value.(*document.Document)
			if c.monotonicOK(key, doc.Version) &&
				(!bounded || c.cacheWithinBound(path, entry.StoredAt, bound)) {
				c.mu.Lock()
				c.stats.CacheHits++
				c.stats.ReadsByTier.ClientCache++
				c.mu.Unlock()
				c.observeRead(key, doc.Version)
				return doc.Clone(), nil
			}
		}
	}

	// Finite bounds route across the replica tier; bound 0 and unbounded
	// reads go to the primary path.
	fetch := func(reval bool) (*document.Document, time.Duration, error) {
		if bounded && bound > 0 {
			return c.fetchRecordRouted(path, id, key, reval, bound)
		}
		return c.fetchRecord(path, id, reval)
	}

	doc, cacheTTL, err := fetch(revalidate)
	if err != nil {
		return nil, err
	}
	if revalidate {
		c.markRevalidated(key)
	}
	// Monotonic reads: a cache tier may have answered with an older
	// version than this session has already seen; fall back to the newer
	// local copy or force a revalidation ("if a read returns an older
	// version, the client resorts to the cached version if it is not
	// contained in the EBF or triggers a revalidation otherwise").
	if !c.monotonicOK(key, doc.Version) {
		c.mu.Lock()
		c.stats.MonotonicRetries++
		c.mu.Unlock()
		if entry, ok := c.local.GetStale(path); ok && !c.isStale(key) {
			cached := entry.Value.(*document.Document)
			if cached.Version >= c.highestSeen(key) &&
				(!bounded || c.cacheWithinBound(path, entry.StoredAt, bound)) {
				return cached.Clone(), nil
			}
		}
		doc, cacheTTL, err = fetch(true)
		if err != nil {
			return nil, err
		}
		c.markRevalidated(key)
	}
	if !c.opts.DisableCache && cacheTTL > 0 {
		c.local.Put(path, doc.Clone(), etag(doc.Version), cacheTTL)
	}
	c.observeRead(key, doc.Version)
	return doc, nil
}

func etag(version int64) string { return fmt.Sprintf("\"v%d\"", version) }

func (c *Client) fetchRecord(path, id string, revalidate bool) (*document.Document, time.Duration, error) {
	resp, err := c.doRouted(http.MethodGet, path, nil, revalidate, id)
	if err != nil {
		return nil, 0, err
	}
	doc, cacheTTL, err := c.decodeRecord(resp, path)
	if err != nil {
		return nil, 0, err
	}
	c.countTier(resp.Header)
	c.noteCacheOrigin(path, resp.Header)
	return doc, cacheTTL, nil
}

func (c *Client) highestSeen(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.highest[key]
}

func (c *Client) monotonicOK(key string, version int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return version >= c.highest[key]
}

func (c *Client) observeRead(key string, version int64) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if version > c.highest[key] {
		c.highest[key] = version
	}
	if now.After(c.lastRead) {
		c.lastRead = now
	}
}

// applyConsistencyPre enforces causal consistency: when the session has
// observed a read newer than the EBF, later reads could violate causality —
// refresh the filter first (the paper's option 1).
func (c *Client) applyConsistencyPre(level Consistency) {
	if level != Causal || c.opts.DisableEBF {
		return
	}
	c.mu.Lock()
	v := c.view
	last := c.lastRead
	c.mu.Unlock()
	if v != nil && last.After(v.GeneratedAt()) {
		_ = c.refreshEBF()
	}
}

// Result is a query response assembled by the SDK.
type Result struct {
	Docs           []*document.Document
	IDs            []string
	Representation ttl.Representation
	// RoundTrips counts HTTP exchanges used to assemble the result
	// (id-lists may need per-record fetches).
	RoundTrips int
}

// Query executes a query with default consistency.
func (c *Client) Query(q *query.Query) (*Result, error) {
	return c.QueryWith(q, ReadOptions{})
}

// QueryPath renders the deterministic REST path for a query; identical
// queries from any client map to the same cache entry.
func QueryPath(q *query.Query) string {
	params := url.Values{}
	if filterJSON := predicateJSON(q.Predicate); filterJSON != "" {
		params.Set("q", filterJSON)
	}
	if len(q.OrderBy) > 0 {
		var parts []string
		for _, k := range q.OrderBy {
			if k.Desc {
				parts = append(parts, "-"+k.Path)
			} else {
				parts = append(parts, k.Path)
			}
		}
		params.Set("sort", strings.Join(parts, ","))
	}
	if q.Offset > 0 {
		params.Set("offset", strconv.Itoa(q.Offset))
	}
	if q.Limit > 0 {
		params.Set("limit", strconv.Itoa(q.Limit))
	}
	path := "/v1/db/" + q.Table
	if enc := params.Encode(); enc != "" {
		path += "?" + enc
	}
	return path
}

// QueryWith executes a query with per-operation consistency. Object-list
// results return documents directly; id-list results are assembled by
// reading each record (which populates per-record cache entries).
func (c *Client) QueryWith(q *query.Query, opts ReadOptions) (*Result, error) {
	c.mu.Lock()
	c.stats.Queries++
	c.mu.Unlock()
	c.applyConsistencyPre(opts.Consistency)
	c.maybeRefreshEBF()

	key := q.Key()
	path := QueryPath(q)
	revalidate := opts.Consistency == Strong || c.isStale(key)

	if !revalidate && !c.opts.DisableCache {
		if entry, ok := c.local.Get(path); ok {
			cached := entry.Value.(*Result)
			c.mu.Lock()
			c.stats.CacheHits++
			c.mu.Unlock()
			return cloneResult(cached), nil
		}
	}

	resp, err := c.do(http.MethodGet, path, nil, revalidate)
	if err != nil {
		return nil, err
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr != nil {
		return nil, readErr
	}
	if resp.StatusCode == http.StatusNotModified {
		c.mu.Lock()
		c.stats.NotModified++
		c.mu.Unlock()
		if entry, ok := c.local.GetStale(path); ok {
			if revalidate {
				c.markRevalidated(key)
			}
			return cloneResult(entry.Value.(*Result)), nil
		}
		return nil, errors.New("client: 304 without cached query result")
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErrorBytes(resp.StatusCode, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		return nil, err
	}
	if revalidate {
		c.markRevalidated(key)
	}

	res := &Result{IDs: qr.IDs, RoundTrips: 1}
	if qr.Representation == ttl.IDList.String() {
		res.Representation = ttl.IDList
		for _, id := range qr.IDs {
			doc, rerr := c.ReadWith(q.Table, id, opts)
			if rerr != nil {
				return nil, fmt.Errorf("client: assembling id-list member %s: %w", id, rerr)
			}
			res.Docs = append(res.Docs, doc)
			res.RoundTrips++
		}
	} else {
		res.Representation = ttl.ObjectList
		res.Docs = qr.Docs
		for _, d := range qr.Docs {
			c.observeRead(server.RecordKey(q.Table, d.ID), d.Version)
			// Result members become individual browser-cache entries,
			// giving record reads hits "by side effect".
			if !c.opts.DisableCache {
				if age := maxAge(resp.Header); age > 0 {
					c.local.Put(server.RecordPath(q.Table, d.ID), d.Clone(), etag(d.Version), age)
				}
			}
		}
	}
	if !c.opts.DisableCache {
		if age := maxAge(resp.Header); age > 0 {
			c.local.Put(path, cloneResult(res), resp.Header.Get("ETag"), age)
		}
	}
	return res, nil
}

// DocStream iterates a streamed NDJSON query response, decoding one
// document per Next call so arbitrarily large result sets never
// materialize client-side either. Close releases the connection; it is
// safe after a partial read.
type DocStream struct {
	body io.ReadCloser
	dec  *json.Decoder
	err  error
}

// Next returns the next document, or io.EOF when the stream is exhausted.
// Any error is sticky.
func (s *DocStream) Next() (*document.Document, error) {
	if s.err != nil {
		return nil, s.err
	}
	var doc document.Document
	if err := s.dec.Decode(&doc); err != nil {
		s.err = err
		return nil, err
	}
	return &doc, nil
}

// Close releases the underlying response body.
func (s *DocStream) Close() error { return s.body.Close() }

// QueryStream executes a query against the streamed NDJSON endpoint
// (?stream=1). Streamed queries bypass the browser cache and the EBF on
// purpose: the response is no-store end to end, so there is no cached
// copy whose staleness could need checking. Use it for large result sets;
// Query remains the cacheable path.
func (c *Client) QueryStream(q *query.Query) (*DocStream, error) {
	c.mu.Lock()
	c.stats.Queries++
	c.mu.Unlock()

	path := QueryPath(q)
	if strings.Contains(path, "?") {
		path += "&stream=1"
	} else {
		path += "?stream=1"
	}
	resp, err := c.doRoutedOn(c.stream, http.MethodGet, path, nil, false, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return &DocStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

func cloneResult(r *Result) *Result {
	cp := &Result{
		IDs:            append([]string(nil), r.IDs...),
		Representation: r.Representation,
		RoundTrips:     r.RoundTrips,
	}
	for _, d := range r.Docs {
		cp.Docs = append(cp.Docs, d.Clone())
	}
	return cp
}

// Insert creates a record; the write is buffered for read-your-writes.
func (c *Client) Insert(table string, doc *document.Document) error {
	body, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	resp, err := c.doRouted(http.MethodPost, "/v1/db/"+table, body, false, doc.ID)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return decodeError(resp)
	}
	c.observeWriteSeq(server.RecordKey(table, doc.ID), resp.Header)
	c.recordOwnWrite(table, doc)
	return nil
}

// Put upserts a record.
func (c *Client) Put(table string, doc *document.Document) error {
	body, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	resp, err := c.doRouted(http.MethodPut, server.RecordPath(table, doc.ID), body, false, doc.ID)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	c.observeWriteSeq(server.RecordKey(table, doc.ID), resp.Header)
	c.recordOwnWrite(table, doc)
	return nil
}

// Update applies a partial update, returning the server's after-image.
func (c *Client) Update(table, id string, spec store.UpdateSpec) (*document.Document, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.doRouted(http.MethodPatch, server.RecordPath(table, id), body, false, id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var doc document.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	c.observeWriteSeq(server.RecordKey(table, id), resp.Header)
	c.recordOwnWrite(table, &doc)
	return &doc, nil
}

// Delete removes a record.
func (c *Client) Delete(table, id string) error {
	resp, err := c.doRouted(http.MethodDelete, server.RecordPath(table, id), nil, false, id)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	key := server.RecordKey(table, id)
	c.observeWriteSeq(key, resp.Header)
	c.mu.Lock()
	delete(c.ownWrites, key)
	c.stats.Writes++
	c.mu.Unlock()
	c.local.Invalidate(server.RecordPath(table, id))
	return nil
}

// recordOwnWrite maintains read-your-writes and evicts the record from the
// browser cache ("every time a client begins an update operation it
// invalidates the corresponding record from its own cache").
func (c *Client) recordOwnWrite(table string, doc *document.Document) {
	key := server.RecordKey(table, doc.ID)
	now := c.opts.Clock()
	c.mu.Lock()
	c.ownWrites[key] = doc.Clone()
	c.stats.Writes++
	// A write advances the session's causal frontier just like a read: a
	// later causal-consistency operation must not consult an EBF older
	// than it.
	if now.After(c.lastRead) {
		c.lastRead = now
	}
	c.mu.Unlock()
	c.local.Invalidate(server.RecordPath(table, doc.ID))
}

// CreateTable provisions a table.
func (c *Client) CreateTable(table string) error {
	resp, err := c.do(http.MethodPost, "/v1/tables/"+table, nil, false)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return decodeError(resp)
	}
	return nil
}

func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(resp.Body)
	return decodeErrorBytes(resp.StatusCode, body)
}

func decodeErrorBytes(status int, body []byte) error {
	var payload struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &payload); err == nil && payload.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", status, payload.Error)
	}
	return fmt.Errorf("client: server returned %d", status)
}

// maxAge extracts the browser-usable freshness lifetime from Cache-Control.
func maxAge(h http.Header) time.Duration {
	cc := h.Get("Cache-Control")
	if cc == "" {
		return 0
	}
	for _, d := range strings.Split(cc, ",") {
		d = strings.TrimSpace(d)
		if d == "no-store" {
			return 0
		}
		if strings.HasPrefix(d, "max-age=") {
			if secs, err := strconv.Atoi(strings.TrimPrefix(d, "max-age=")); err == nil {
				return time.Duration(secs) * time.Second
			}
		}
	}
	return 0
}

// predicateJSON renders a Predicate back into filter-document JSON for URL
// construction. Only predicates built via query builders and ParseFilter
// round-trip; the zero predicate renders empty.
func predicateJSON(p query.Predicate) string {
	m := query.FilterDocument(p)
	if m == nil {
		return ""
	}
	data, err := json.Marshal(m)
	if err != nil {
		return ""
	}
	return string(data)
}
