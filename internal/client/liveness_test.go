package client

// Endpoint-liveness unit tests: the unknown-staleness routing penalty
// (the -1 sentinel must rank last among observed endpoints, never
// "fresher than 0") and connection-failure eviction with backoff.

import (
	"net/http"
	"testing"
	"time"
)

func TestScoreUnknownStalenessRanksLast(t *testing.T) {
	proven := &endpointState{observed: true, stalenessMs: 250, latencyMs: 5}
	unknown := &endpointState{observed: true, stalenessMs: -1, latencyMs: 5}
	if unknown.score() <= proven.score() {
		t.Fatalf("unknown staleness scored %v, proven bound scored %v — unknown must rank last",
			unknown.score(), proven.score())
	}
	if unknown.score() < unknownStalenessPenaltyMs {
		t.Fatalf("observed unknown staleness scored %v, want >= %v", unknown.score(), unknownStalenessPenaltyMs)
	}
	// A never-contacted endpoint stays optimistic so new replicas get
	// explored — only an endpoint that answered without a bound is
	// penalized.
	virgin := &endpointState{stalenessMs: -1}
	if virgin.score() != 0 {
		t.Fatalf("unobserved endpoint scored %v, want 0", virgin.score())
	}
}

func TestEndpointEvictionAfterConsecutiveFailures(t *testing.T) {
	now := time.Unix(1000, 0)
	c, err := Dial(&Options{BaseURL: "http://primary", DisableEBF: true, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	c.SetReplicaEndpoints("http://r1")
	c.mu.Lock()
	ep := c.replicas[0]
	c.mu.Unlock()

	// Failures below the threshold get the flat transient penalty.
	c.noteConnFailure(ep)
	c.noteConnFailure(ep)
	if got := c.Stats().EndpointEvictions; got != 0 {
		t.Fatalf("evictions after %d failures = %d, want 0", evictAfterFailures-1, got)
	}
	if !ep.penaltyUntil.Equal(now.Add(replicaPenalty)) {
		t.Fatalf("pre-threshold penalty until %v, want %v", ep.penaltyUntil, now.Add(replicaPenalty))
	}

	// The threshold crossing evicts (counted once) and switches to the
	// exponential re-probe backoff.
	c.noteConnFailure(ep)
	if got := c.Stats().EndpointEvictions; got != 1 {
		t.Fatalf("evictions at threshold = %d, want 1", got)
	}
	if !ep.penaltyUntil.Equal(now.Add(evictBackoffBase)) {
		t.Fatalf("eviction backoff until %v, want %v", ep.penaltyUntil, now.Add(evictBackoffBase))
	}
	c.noteConnFailure(ep)
	if got := c.Stats().EndpointEvictions; got != 1 {
		t.Fatalf("re-failure double-counted the eviction: %d", got)
	}
	if !ep.penaltyUntil.Equal(now.Add(2 * evictBackoffBase)) {
		t.Fatalf("backoff after another failure until %v, want %v", ep.penaltyUntil, now.Add(2*evictBackoffBase))
	}

	// The backoff is capped.
	for i := 0; i < 20; i++ {
		c.noteConnFailure(ep)
	}
	if !ep.penaltyUntil.Equal(now.Add(evictBackoffMax)) {
		t.Fatalf("capped backoff until %v, want %v", ep.penaltyUntil, now.Add(evictBackoffMax))
	}

	// An evicted endpoint is out of routing entirely.
	if got := c.pickReplica(map[string]bool{}); got != nil {
		t.Fatalf("pickReplica returned the evicted endpoint %q", got.url)
	}

	// One successful exchange restores liveness.
	c.observeEndpoint(ep, http.Header{}, time.Millisecond)
	if ep.consecFails != 0 || !ep.observed {
		t.Fatalf("success did not reset liveness: fails=%d observed=%v", ep.consecFails, ep.observed)
	}
}
