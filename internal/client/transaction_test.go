package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

func TestTransactionCommit(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	if err := c.Insert("posts", document.New("acct", map[string]any{"balance": 100})); err != nil {
		t.Fatal(err)
	}
	err := c.Transaction(func(tx *Tx) error {
		doc, err := tx.Read("posts", "acct")
		if err != nil {
			return err
		}
		bal, _ := doc.Get("balance")
		return tx.Update("posts", "acct", store.UpdateSpec{
			Set: map[string]any{"balance": bal.(int64) - 30},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadWith("posts", "acct", ReadOptions{Consistency: Strong})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("balance"); v != int64(70) {
		t.Errorf("balance = %v, want 70", v)
	}
}

func TestTransactionReadsOwnUncommittedWrites(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	if err := c.Insert("posts", document.New("doc", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	err := c.Transaction(func(tx *Tx) error {
		if err := tx.Update("posts", "doc", store.UpdateSpec{Set: map[string]any{"n": 5}}); err != nil {
			return err
		}
		doc, err := tx.Read("posts", "doc")
		if err != nil {
			return err
		}
		if v, _ := doc.Get("n"); v != int64(5) {
			return fmt.Errorf("uncommitted write invisible: n = %v", v)
		}
		tx.Put("posts", document.New("fresh", map[string]any{"created": true}))
		doc, err = tx.Read("posts", "fresh")
		if err != nil {
			return err
		}
		if v, _ := doc.Get("created"); v != true {
			return fmt.Errorf("buffered put invisible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransactionConflictRetries(t *testing.T) {
	s := newStack(t, nil)
	c1 := s.dial(t, nil)
	c2 := s.dial(t, nil)
	if err := c1.Insert("posts", document.New("ctr", map[string]any{"n": 0})); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err := c1.Transaction(func(tx *Tx) error {
		attempts++
		doc, err := tx.Read("posts", "ctr")
		if err != nil {
			return err
		}
		if attempts == 1 {
			// A competing write lands between read and commit.
			if _, err := c2.Update("posts", "ctr", store.UpdateSpec{Set: map[string]any{"n": 100}}); err != nil {
				return err
			}
		}
		n, _ := doc.Get("n")
		return tx.Update("posts", "ctr", store.UpdateSpec{Set: map[string]any{"n": n.(int64) + 1}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Errorf("expected a conflict retry, attempts = %d", attempts)
	}
	got, err := c1.ReadWith("posts", "ctr", ReadOptions{Consistency: Strong})
	if err != nil {
		t.Fatal(err)
	}
	// The retried transaction read 100 and wrote 101 — the lost-update
	// anomaly is prevented.
	if v, _ := got.Get("n"); v != int64(101) {
		t.Errorf("n = %v, want 101", v)
	}
}

func TestTransactionConcurrentIncrementsSerialize(t *testing.T) {
	s := newStack(t, nil)
	seed := s.dial(t, nil)
	if err := seed.Insert("posts", document.New("ctr", map[string]any{"n": 0})); err != nil {
		t.Fatal(err)
	}
	const workers, iters = 4, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.dial(t, nil)
			for i := 0; i < iters; i++ {
				err := c.TransactionWith(func(tx *Tx) error {
					doc, err := tx.Read("posts", "ctr")
					if err != nil {
						return err
					}
					n, _ := doc.Get("n")
					return tx.Update("posts", "ctr", store.UpdateSpec{Set: map[string]any{"n": n.(int64) + 1}})
				}, TxnOptions{MaxRetries: 100})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := seed.ReadWith("posts", "ctr", ReadOptions{Consistency: Strong})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("n"); v != int64(workers*iters) {
		t.Errorf("n = %v, want %d (lost updates!)", v, workers*iters)
	}
}

func TestTransactionRollback(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	if err := c.Insert("posts", document.New("doc", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	err := c.Transaction(func(tx *Tx) error {
		if err := tx.Update("posts", "doc", store.UpdateSpec{Set: map[string]any{"n": 99}}); err != nil {
			return err
		}
		return tx.Rollback()
	})
	if err != nil {
		t.Fatalf("rollback should not surface an error: %v", err)
	}
	got, err := c.ReadWith("posts", "doc", ReadOptions{Consistency: Strong})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("n"); v != int64(1) {
		t.Errorf("rolled-back write applied: n = %v", v)
	}
}

func TestTransactionUserErrorPropagates(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	boom := errors.New("boom")
	err := c.Transaction(func(tx *Tx) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("user error lost: %v", err)
	}
}

func TestTransactionDelete(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	if err := c.Insert("posts", document.New("doc", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	err := c.Transaction(func(tx *Tx) error {
		if _, err := tx.Read("posts", "doc"); err != nil {
			return err
		}
		tx.Delete("posts", "doc")
		if _, err := tx.Read("posts", "doc"); err == nil {
			return errors.New("deleted record still readable inside txn")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadWith("posts", "doc", ReadOptions{Consistency: Strong}); err == nil {
		t.Error("record survived transactional delete")
	}
}

func TestSubscriptionStreams(t *testing.T) {
	s := newStack(t, nil)
	c := s.dial(t, nil)
	q := query.New("posts", query.Contains("tags", "x"))
	sub, err := s.srv.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := c.Insert("posts", document.New("p1", map[string]any{"tags": []any{"x"}})); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.Events():
		if n.Doc.ID != "p1" {
			t.Errorf("subscription event = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no subscription event")
	}
}
