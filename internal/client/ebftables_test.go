package client

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/store"
)

func TestPerTableEBF(t *testing.T) {
	s := newStack(t, nil)
	if err := s.db.CreateTable("users"); err != nil {
		t.Fatal(err)
	}
	writer := s.dial(t, nil)
	if err := writer.Insert("posts", document.New("p1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}
	if err := writer.Insert("users", document.New("u1", map[string]any{"v": 1})); err != nil {
		t.Fatal(err)
	}

	reader := s.dial(t, &Options{PerTableEBF: true, RefreshInterval: time.Nanosecond})
	if _, err := reader.Read("posts", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Read("users", "u1"); err != nil {
		t.Fatal(err)
	}
	// Update only the posts record.
	if _, err := writer.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"v": 2}}); err != nil {
		t.Fatal(err)
	}
	s.srv.InvaliDB().Quiesce(5 * time.Second)

	// The per-table reader revalidates the flagged posts record...
	got, err := reader.Read("posts", "p1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("v"); v != int64(2) {
		t.Errorf("per-table EBF missed the invalidation: v = %v", v)
	}
	// ...and the users read stays a cache hit (its partition is clean).
	n := reader.Stats().NetworkRequests
	if _, err := reader.Read("users", "u1"); err != nil {
		t.Fatal(err)
	}
	// One extra request is allowed for the lazy per-table filter refresh,
	// but the record itself must come from the cache (no revalidation).
	if reader.Stats().NetworkRequests > n+1 {
		t.Errorf("users read caused %d requests", reader.Stats().NetworkRequests-n)
	}
	if reader.Stats().EBFRefreshes < 2 {
		t.Errorf("expected separate per-table refreshes, got %d", reader.Stats().EBFRefreshes)
	}
}

func TestEBFGzipNegotiation(t *testing.T) {
	s := newStack(t, nil)
	// Raw HTTP request with gzip accept-encoding against the origin.
	req := httptest.NewRequest("GET", "/v1/ebf", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rec := httptest.NewRecorder()
	s.srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("EBF fetch = %d", rec.Code)
	}
	if rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("gzip not negotiated")
	}
	if strings.HasPrefix(rec.Body.String(), "{") {
		t.Error("body does not look compressed")
	}
	// The client decodes it transparently.
	c := s.dial(t, nil)
	if _, err := c.fetchEBF(""); err != nil {
		t.Fatalf("client failed to decode gzip EBF: %v", err)
	}
	// And the compressed filter is much smaller than the 14.6KB raw form.
	if rec.Body.Len() > 4096 {
		t.Errorf("sparse filter compressed to %d bytes; expected well under 4KB", rec.Body.Len())
	}
}
