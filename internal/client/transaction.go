package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"quaestor/internal/document"
	"quaestor/internal/server"
	"quaestor/internal/store"
)

// This file implements the client side of Quaestor's optimistic ACID
// transactions (Section 3.2). Reads inside a transaction flow through the
// normal caching path — that is the point: "caching reduces transaction
// durations and can thereby achieve low abort rates". Every read's record
// version joins the read set; writes are buffered locally. Commit submits
// read set and write set for backward-oriented validation; stale cached
// reads surface as conflicts and the transaction retries.

// ErrTxnAborted is returned when a transaction exhausts its retries.
var ErrTxnAborted = errors.New("client: transaction aborted after retries")

// errRollback signals a user-requested rollback.
var errRollback = errors.New("client: transaction rolled back")

// Tx is an in-flight transaction.
type Tx struct {
	c      *Client
	reads  map[string]int64
	writes []server.TxnWriteOp
	// local overlays buffered writes so the transaction reads its own
	// uncommitted state.
	local map[string]*document.Document
}

// Read fetches a record through the cache hierarchy and records its
// version in the read set. Reads of the transaction's own buffered writes
// return the uncommitted value.
func (tx *Tx) Read(table, id string) (*document.Document, error) {
	key := server.RecordKey(table, id)
	if doc, ok := tx.local[key]; ok {
		if doc == nil {
			return nil, fmt.Errorf("client: %s deleted in this transaction", key)
		}
		return doc.Clone(), nil
	}
	doc, err := tx.c.Read(table, id)
	if err != nil {
		if isNotFound(err) {
			// Record the observed absence: version 0.
			if _, seen := tx.reads[key]; !seen {
				tx.reads[key] = 0
			}
		}
		return nil, err
	}
	// First observation wins: validation must check the version the
	// transaction's logic actually depended on.
	if _, seen := tx.reads[key]; !seen {
		tx.reads[key] = doc.Version
	}
	return doc, nil
}

// Put buffers a full-document write.
func (tx *Tx) Put(table string, doc *document.Document) {
	key := server.RecordKey(table, doc.ID)
	tx.writes = append(tx.writes, server.TxnWriteOp{Op: "put", Table: table, ID: doc.ID, Doc: doc.Clone()})
	tx.local[key] = doc.Clone()
}

// Update buffers a partial update. The transaction's local view applies
// the spec immediately so later reads observe it.
func (tx *Tx) Update(table, id string, spec store.UpdateSpec) error {
	key := server.RecordKey(table, id)
	base, ok := tx.local[key]
	if !ok {
		read, err := tx.Read(table, id)
		if err != nil {
			return err
		}
		base = read
	} else if base == nil {
		return fmt.Errorf("client: update of %s deleted in this transaction", key)
	}
	// Apply the spec locally for read-your-uncommitted-writes. The server
	// re-applies it authoritatively at commit.
	next := base.Clone()
	for path, v := range spec.Set {
		if err := next.Set(path, v); err != nil {
			return err
		}
	}
	for _, path := range spec.Unset {
		next.Delete(path)
	}
	specCopy := spec
	tx.writes = append(tx.writes, server.TxnWriteOp{Op: "patch", Table: table, ID: id, Spec: &specCopy})
	tx.local[key] = next
	return nil
}

// Delete buffers a delete.
func (tx *Tx) Delete(table, id string) {
	key := server.RecordKey(table, id)
	tx.writes = append(tx.writes, server.TxnWriteOp{Op: "delete", Table: table, ID: id})
	tx.local[key] = nil
}

// Rollback aborts the transaction from inside the closure.
func (tx *Tx) Rollback() error { return errRollback }

// TxnOptions tunes transaction execution.
type TxnOptions struct {
	// MaxRetries bounds commit retries on conflicts (default 5).
	MaxRetries int
}

// Transaction runs fn optimistically: on a commit conflict the read set is
// invalidated client-side (so retried reads revalidate) and fn runs again,
// up to MaxRetries times.
func (c *Client) Transaction(fn func(tx *Tx) error) error {
	return c.TransactionWith(fn, TxnOptions{})
}

// TransactionWith runs fn with explicit options.
func (c *Client) TransactionWith(fn func(tx *Tx) error, opts TxnOptions) error {
	retries := opts.MaxRetries
	if retries <= 0 {
		retries = 5
	}
	var lastConflicts []string
	for attempt := 0; attempt <= retries; attempt++ {
		tx := &Tx{
			c:     c,
			reads: map[string]int64{},
			local: map[string]*document.Document{},
		}
		if err := fn(tx); err != nil {
			if errors.Is(err, errRollback) {
				return nil
			}
			return err
		}
		res, err := c.commit(server.TxnRequest{Reads: tx.reads, Writes: tx.writes})
		if err != nil {
			return err
		}
		if res.Committed {
			// Committed writes must be re-read authoritatively: the session
			// drops any buffered/cached copies (whose versions are now
			// stale) and forces the next read of each written key to
			// revalidate, which preserves read-your-writes through the
			// origin rather than the local buffer.
			for key := range tx.local {
				table, id, ok := splitKey(key)
				if !ok {
					continue
				}
				c.mu.Lock()
				delete(c.ownWrites, key)
				c.mu.Unlock()
				c.local.Invalidate(server.RecordPath(table, id))
				c.markForcedRevalidation(key)
			}
			return nil
		}
		// Conflict: drop stale cached copies of the conflicting records and
		// force their next read to revalidate.
		lastConflicts = res.Conflicts
		for _, key := range res.Conflicts {
			if table, id, ok := splitKey(key); ok {
				c.local.Invalidate(server.RecordPath(table, id))
			}
			c.mu.Lock()
			delete(c.ownWrites, key)
			c.mu.Unlock()
			c.markForcedRevalidation(key)
		}
	}
	return fmt.Errorf("%w (conflicts: %v)", ErrTxnAborted, lastConflicts)
}

// markForcedRevalidation makes the next read of key bypass caches even if
// the EBF does not flag it — the transaction has direct evidence the
// cached copy is stale.
func (c *Client) markForcedRevalidation(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.forcedReval == nil {
		c.forcedReval = map[string]struct{}{}
	}
	c.forcedReval[key] = struct{}{}
}

// consumeForcedRevalidation reports and clears a pending forced
// revalidation for key.
func (c *Client) consumeForcedRevalidation(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.forcedReval[key]; ok {
		delete(c.forcedReval, key)
		return true
	}
	return false
}

func (c *Client) commit(req server.TxnRequest) (server.TxnResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return server.TxnResult{}, err
	}
	resp, err := c.do(http.MethodPost, "/v1/transaction", body, false)
	if err != nil {
		return server.TxnResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return server.TxnResult{}, decodeError(resp)
	}
	var res server.TxnResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return server.TxnResult{}, err
	}
	return res, nil
}

func splitKey(key string) (table, id string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			if i == 0 || i == len(key)-1 {
				return "", "", false
			}
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

func isNotFound(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, store.ErrNotFound) {
		return true
	}
	// HTTP-mapped not-found errors carry the status in the message.
	msg := err.Error()
	return strings.Contains(msg, "404") || strings.Contains(msg, "not found")
}
