package client

// Staleness-bounded read-routing properties, end to end over a real
// multi-node topology: a primary server plus N replica servers, each
// replica driven by a live log-shipping loop pulling the primary's
// change stream through an in-process transport. The tests check the
// protocol's load-bearing promises:
//
//   - a bounded read at bound 0 is primary-equivalent even while
//     concurrent writers race the readers (never served by a replica,
//     never older than the last acknowledged write);
//   - no 200 response to a bounded read ever carries a staleness above
//     the request's bound (checked at the wire, on every exchange);
//   - read-your-writes holds across replica catch-up and across a
//     promote.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/store"
)

// replicaNode is one replica: its own store, serving stack, and the
// replication loop feeding it.
type replicaNode struct {
	url  string
	db   *store.Store
	srv  *server.Server
	repl *replication.Replica
}

// readCluster is an in-process primary + N-replica read topology.
type readCluster struct {
	primaryURL string
	db         *store.Store
	srv        *server.Server
	replicas   []*replicaNode
	handlers   map[string]http.Handler
}

func newReadCluster(tb testing.TB, nReplicas int) *readCluster {
	tb.Helper()
	rc := &readCluster{primaryURL: "http://primary"}
	rc.db = store.MustOpen(nil)
	rc.srv = server.New(rc.db, nil)
	tb.Cleanup(func() {
		rc.srv.Close()
		rc.db.Close()
	})
	if err := rc.db.CreateTable("posts"); err != nil {
		tb.Fatal(err)
	}
	rc.handlers = map[string]http.Handler{rc.primaryURL: rc.srv.Handler()}

	// The replication stream is long-lived and needs a flushing
	// ResponseWriter, so the feed runs over a real socket; client traffic
	// stays on the in-process host-map transport.
	feed := httptest.NewServer(rc.srv.Handler())
	tb.Cleanup(feed.Close)

	var urls []string
	for i := 0; i < nReplicas; i++ {
		n := &replicaNode{url: fmt.Sprintf("http://replica-%d", i)}
		n.db = store.MustOpen(nil)
		n.repl = replication.New(replication.Options{
			Store:      n.db,
			Primary:    feed.URL,
			Name:       fmt.Sprintf("r%d", i),
			MinBackoff: 5 * time.Millisecond,
			MaxBackoff: 100 * time.Millisecond,
		})
		n.repl.Run()
		n.srv = server.New(n.db, nil)
		n.srv.AttachReplica(n.repl)
		tb.Cleanup(func() {
			n.repl.Stop()
			n.srv.Close()
			n.db.Close()
		})
		rc.handlers[n.url] = n.srv.Handler()
		rc.replicas = append(rc.replicas, n)
		urls = append(urls, n.url)
	}
	rc.srv.SetReplicaEndpoints(rc.primaryURL, urls)
	return rc
}

// dial connects a client to the topology; replica endpoints are
// discovered from the primary's advertisement.
func (rc *readCluster) dial(tb testing.TB, opts *Options) *Client {
	tb.Helper()
	if opts == nil {
		opts = &Options{}
	}
	if opts.Transport == nil {
		opts.Transport = NewHostMapTransport(rc.handlers)
	}
	if opts.BaseURL == "" {
		opts.BaseURL = rc.primaryURL
	}
	opts.DiscoverReplicas = true
	c, err := Dial(opts)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// waitCaughtUp blocks until every replica is streaming with bounded
// staleness and has applied everything the primary holds right now.
func (rc *readCluster) waitCaughtUp(tb testing.TB) {
	tb.Helper()
	target := rc.db.LastSeq()
	deadline := time.Now().Add(15 * time.Second)
	for _, n := range rc.replicas {
		for {
			st := n.repl.Status()
			if st.State == replication.StateStreaming && st.StalenessMs >= 0 && st.LastSeq >= target {
				break
			}
			if time.Now().After(deadline) {
				tb.Fatalf("replica %s stuck at %+v (want streaming ≥ seq %d)", n.url, st, target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestReplicaSetDiscovery(t *testing.T) {
	rc := newReadCluster(t, 2)
	c := rc.dial(t, nil)
	eps := c.ReplicaEndpoints()
	if len(eps) != 2 || eps[0] != "http://replica-0" || eps[1] != "http://replica-1" {
		t.Fatalf("discovered endpoints = %v", eps)
	}
}

// A relaxed bound is served by the replica tier once it has provably
// caught up — the primary sees no read traffic at all.
func TestBoundedReadServedByReplica(t *testing.T) {
	rc := newReadCluster(t, 2)
	w := rc.dial(t, nil)
	if err := w.Insert("posts", document.New("p1", map[string]any{"title": "hello"})); err != nil {
		t.Fatal(err)
	}
	rc.waitCaughtUp(t)

	r := rc.dial(t, nil)
	doc, err := r.ReadWith("posts", "p1", WithMaxStaleness(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Get("title"); v != "hello" {
		t.Fatalf("title = %v", v)
	}
	st := r.Stats()
	if st.ReadsByTier.Replica != 1 {
		t.Fatalf("ReadsByTier = %+v, want the read replica-served", st.ReadsByTier)
	}
	meta := r.LastReplicaMeta()
	if !meta.Replica || meta.StalenessMs > 5000 {
		t.Fatalf("replica meta = %+v", meta)
	}
}

// Bound 0 is primary-equivalent: while writers race the readers, no
// bounded-0 read is ever served by a replica or any cache, and every
// read observes at least the last version whose write was acknowledged
// before the read began.
func TestBoundZeroPrimaryEquivalentUnderConcurrentWrites(t *testing.T) {
	rc := newReadCluster(t, 2)
	w := rc.dial(t, nil)

	const keys = 8
	var floorMu sync.Mutex
	floor := map[string]int64{}
	for i := 0; i < keys; i++ {
		id := fmt.Sprintf("k%d", i)
		if err := w.Insert("posts", document.New(id, map[string]any{"n": int64(0)})); err != nil {
			t.Fatal(err)
		}
		floor[id] = 1
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				id := fmt.Sprintf("k%d", (g*3+i)%keys)
				doc, err := w.Update("posts", id, store.UpdateSpec{Inc: map[string]float64{"n": 1}})
				if err != nil {
					t.Error(err)
					return
				}
				floorMu.Lock()
				if doc.Version > floor[id] {
					floor[id] = doc.Version
				}
				floorMu.Unlock()
			}
		}(g)
	}

	var rdWg sync.WaitGroup
	readers := make([]*Client, 2)
	for g := range readers {
		readers[g] = rc.dial(t, nil)
		rdWg.Add(1)
		go func(c *Client, g int) {
			defer rdWg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("k%d", (g+i)%keys)
				floorMu.Lock()
				want := floor[id]
				floorMu.Unlock()
				doc, err := c.ReadWith("posts", id, WithMaxStaleness(0))
				if err != nil {
					t.Error(err)
					return
				}
				if doc.Version < want {
					t.Errorf("bound-0 read of %s returned version %d < acknowledged floor %d", id, doc.Version, want)
					return
				}
			}
		}(readers[g], g)
	}
	wg.Wait()
	close(stop)
	rdWg.Wait()

	for g, c := range readers {
		st := c.Stats()
		if st.ReadsByTier.Replica != 0 {
			t.Errorf("reader %d: %d bound-0 reads served by a replica", g, st.ReadsByTier.Replica)
		}
		if st.ReadsByTier.ClientCache != 0 {
			t.Errorf("reader %d: %d bound-0 reads served from cache", g, st.ReadsByTier.ClientCache)
		}
	}
}

// boundGuard wraps a node's handler and fails the run if any 200
// response to a bounded request reports a staleness above the request's
// bound — the end-to-end wire check that the admission protocol never
// leaks an over-bound read.
type boundGuard struct {
	inner http.Handler

	mu         sync.Mutex
	violations []string
	bounded200 int
}

func (g *boundGuard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := httptest.NewRecorder()
	g.inner.ServeHTTP(rec, r)
	if bs := r.Header.Get(server.HeaderMaxStaleness); bs != "" && rec.Code == http.StatusOK {
		g.mu.Lock()
		g.bounded200++
		if ss := rec.Header().Get("X-Quaestor-Staleness-Ms"); ss != "" {
			bound, _ := strconv.ParseFloat(bs, 64)
			stale, _ := strconv.ParseFloat(ss, 64)
			if stale < 0 || stale > bound {
				g.violations = append(g.violations,
					fmt.Sprintf("%s %s: staleness %.2fms exceeds bound %.2fms", r.Method, r.URL.Path, stale, bound))
			}
		}
		g.mu.Unlock()
	}
	for k, vs := range rec.Header() {
		w.Header()[k] = vs
	}
	w.WriteHeader(rec.Code)
	w.Write(rec.Body.Bytes())
}

// Every bounded read's response staleness stays within its requested
// bound while writers churn and one replica is killed mid-run (its
// growing staleness must divert reads, not violate bounds).
func TestNoResponseExceedsItsBound(t *testing.T) {
	rc := newReadCluster(t, 2)
	guards := map[string]*boundGuard{}
	wrapped := map[string]http.Handler{}
	for url, h := range rc.handlers {
		g := &boundGuard{inner: h}
		guards[url] = g
		wrapped[url] = g
	}
	transport := NewHostMapTransport(wrapped)

	w := rc.dial(t, &Options{Transport: transport})
	for i := 0; i < 10; i++ {
		if err := w.Insert("posts", document.New(fmt.Sprintf("d%d", i), map[string]any{"n": int64(0)})); err != nil {
			t.Fatal(err)
		}
	}
	rc.waitCaughtUp(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Update("posts", fmt.Sprintf("d%d", i%10), store.UpdateSpec{Inc: map[string]float64{"n": 1}}); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	reader := rc.dial(t, &Options{Transport: transport})
	bounds := []time.Duration{
		2 * time.Millisecond, 50 * time.Millisecond, time.Second, 5 * time.Second,
	}
	for i := 0; i < 400; i++ {
		if i == 200 {
			// Kill one replica's feed: its staleness grows past every
			// bound, and routing must divert without ever leaking an
			// over-bound 200.
			rc.replicas[1].repl.Stop()
		}
		id := fmt.Sprintf("d%d", i%10)
		if _, err := reader.ReadWith("posts", id, WithMaxStaleness(bounds[i%len(bounds)])); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	served := 0
	for url, g := range guards {
		g.mu.Lock()
		for _, v := range g.violations {
			t.Errorf("%s: %s", url, v)
		}
		served += g.bounded200
		g.mu.Unlock()
	}
	if served == 0 {
		t.Fatal("no bounded read was ever served — the guard checked nothing")
	}
	if st := reader.Stats(); st.ReadsByTier.Replica == 0 {
		t.Error("no read was replica-served; the topology exercised nothing")
	}
}

// Read-your-writes holds across the replica lifecycle: a session that
// wrote a record always reads back at least its own write — while the
// replica is still catching up (the min-seq floor forces a 412 and a
// primary fallback), once it has caught up, and after it is promoted.
func TestReadYourWritesAcrossPromote(t *testing.T) {
	rc := newReadCluster(t, 1)
	c := rc.dial(t, nil)

	strongBounded := ReadOptions{Consistency: Strong, MaxStaleness: 10 * time.Second, BoundStaleness: true}
	var version int64
	for i := 0; i < 20; i++ {
		doc, err := c.Update("posts", "p1", store.UpdateSpec{Set: map[string]any{"n": int64(i)}})
		if err != nil && i == 0 {
			// First iteration creates the record.
			if err = c.Insert("posts", document.New("p1", map[string]any{"n": int64(0)})); err != nil {
				t.Fatal(err)
			}
			doc, err = c.Read("posts", "p1")
		}
		if err != nil {
			t.Fatal(err)
		}
		version = doc.Version
		// Strong consistency skips the read-your-writes buffer, so this
		// read exercises the min-seq admission floor on the wire.
		got, err := c.ReadWith("posts", "p1", strongBounded)
		if err != nil {
			t.Fatal(err)
		}
		if got.Version < version {
			t.Fatalf("iteration %d: read version %d < own write %d", i, got.Version, version)
		}
	}

	rc.waitCaughtUp(t)
	rc.replicas[0].repl.Stop()
	rc.replicas[0].repl.Promote()
	got, err := c.ReadWith("posts", "p1", strongBounded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version < version {
		t.Fatalf("post-promote read version %d < own write %d", got.Version, version)
	}
}

// BenchmarkReplicaRead measures one bounded record read served by the
// replica tier (the steady-state fast path: admission check + replica
// store read), with the primary untouched.
func BenchmarkReplicaRead(b *testing.B) {
	rc := newReadCluster(b, 2)
	w := rc.dial(b, nil)
	for i := 0; i < 100; i++ {
		if err := w.Insert("posts", document.New(fmt.Sprintf("d%d", i), map[string]any{"n": int64(i)})); err != nil {
			b.Fatal(err)
		}
	}
	rc.waitCaughtUp(b)
	reader := rc.dial(b, &Options{DisableCache: true})
	opts := WithMaxStaleness(5 * time.Second)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := reader.ReadWith("posts", fmt.Sprintf("d%d", i%100), opts); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	st := reader.Stats()
	b.ReportMetric(float64(st.ReadsByTier.Replica)/float64(b.N), "replica-share")
}
