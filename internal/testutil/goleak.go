// Package testutil holds shared test-only helpers. The flagship is the
// goroutine-leak check: a hand-rolled snapshot-diff over runtime.Stack
// (the module deliberately has no external deps, so no goleak import).
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoGoroutineLeaks snapshots the live goroutines and registers a
// cleanup that fails the test if new goroutines outlive it. Call it
// first thing in the test: t.Cleanup runs LIFO, so registering before
// the test's own teardown means the check observes the fully-torn-down
// state. Shutdown is asynchronous (server connections drain, pump
// goroutines notice closed subscriptions), so the check polls until the
// diff is clean or a 5s deadline expires.
func VerifyNoGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := snapshotGoroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			leaked := diffGoroutines(before, snapshotGoroutines())
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("leaked %d goroutine(s) past test teardown:\n\n%s",
					len(leaked), strings.Join(leaked, "\n\n"))
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	})
}

// goroutineSet is a multiset of normalized stacks plus one raw
// representative per key for reporting.
type goroutineSet struct {
	counts map[string]int
	raw    map[string]string
}

func snapshotGoroutines() goroutineSet {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	set := goroutineSet{counts: map[string]int{}, raw: map[string]string{}}
	for _, block := range strings.Split(strings.TrimSpace(string(buf)), "\n\n") {
		key := normalizeStack(block)
		if key == "" {
			continue
		}
		set.counts[key]++
		set.raw[key] = block
	}
	return set
}

// normalizeStack reduces one goroutine block to its creation-site
// identity: the file:line frames with pointer offsets stripped, so the
// same goroutine matches across snapshots regardless of its scheduling
// state or argument values. The goroutine running the snapshot itself
// returns "" (its stack necessarily differs between the two snapshots).
func normalizeStack(block string) string {
	if strings.Contains(block, "testutil.snapshotGoroutines") {
		return ""
	}
	var frames []string
	for _, line := range strings.Split(block, "\n")[1:] {
		if !strings.HasPrefix(line, "\t") {
			continue
		}
		loc := strings.TrimSpace(line)
		if i := strings.LastIndex(loc, " +0x"); i >= 0 {
			loc = loc[:i]
		}
		frames = append(frames, loc)
	}
	return strings.Join(frames, "|")
}

// diffGoroutines returns a raw stack per goroutine present in after
// beyond its multiplicity in before.
func diffGoroutines(before, after goroutineSet) []string {
	var leaked []string
	for key, n := range after.counts {
		if n > before.counts[key] {
			leaked = append(leaked, after.raw[key])
		}
	}
	return leaked
}
