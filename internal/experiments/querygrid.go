// Query-execution grid: the streaming executor's reproducible perf
// trajectory. A declarative grid of (plan kind × result size × limit
// on/off) cells, each measuring the iterator-composed executor against the
// materializing clone-then-Apply baseline on the same store and query, and
// emitting a machine-readable record (BENCH_<pr>.json) so regressions show
// up as a diff.
package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"quaestor/internal/document"
	"quaestor/internal/metrics"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// queryGridDocs is the full-scale corpus: large enough that the baseline's
// clone-and-sort cost dominates, and the acceptance cell (ORDER BY + LIMIT
// over every document) has ≥100k matching rows.
const queryGridDocs = 100_000

// QueryGridCell is one measured grid point.
type QueryGridCell struct {
	Name     string `json:"name"`
	Plan     string `json:"plan"`     // access path: scan, probe, range
	Strategy string `json:"strategy"` // emission: sort-all, top-k, ordered
	Matches  int    `json:"matches"`  // matching documents before windowing
	Limit    int    `json:"limit"`    // 0 = unlimited

	StreamedNsOp   int64   `json:"streamedNsOp"`
	StreamedAllocs int64   `json:"streamedAllocsOp"`
	StreamedBytes  int64   `json:"streamedBytesOp"`
	BaselineNsOp   int64   `json:"baselineNsOp"`
	BaselineAllocs int64   `json:"baselineAllocsOp"`
	BaselineBytes  int64   `json:"baselineBytesOp"`
	Speedup        float64 `json:"speedup"`        // baseline / streamed latency
	AllocReduction float64 `json:"allocReduction"` // baseline / streamed allocs
}

// QueryGridResult is the full grid run, JSON-marshalable for BENCH files.
type QueryGridResult struct {
	Docs  int             `json:"docs"`
	Cells []QueryGridCell `json:"cells"`
}

// queryGridStore builds the grid corpus: sequential rank (range axis),
// ~docs/1000 documents per tag value (probe axis), rank + tag indexed.
func queryGridStore(docs int) (*store.Store, error) {
	s := store.MustOpen(nil)
	if err := s.CreateTable("docs"); err != nil {
		return nil, err
	}
	for i := 0; i < docs; i++ {
		doc := document.New(fmt.Sprintf("d%07d", i), map[string]any{
			"tag":  fmt.Sprintf("tag%03d", i%1000),
			"rank": int64(i),
		})
		if err := s.Insert("docs", doc); err != nil {
			return nil, err
		}
	}
	for _, path := range []string{"tag", "rank"} {
		if err := s.CreateIndex("docs", path); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// QueryGrid measures every grid cell at the given scale and returns the
// machine-readable result.
func QueryGrid(sc Scale) (*QueryGridResult, error) {
	docs := sc.count(queryGridDocs)
	s, err := queryGridStore(docs)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	type cell struct {
		name string
		q    *query.Query
	}
	// The grid: each access path with and without a LIMIT window. Scan cells
	// use an unsargable Exists predicate so the planner cannot pick an
	// index. "scan/limit" is the acceptance configuration — ORDER BY +
	// LIMIT 10 with every document matching.
	cells := []cell{
		{"probe/all", query.New("docs", query.Eq("tag", "tag042")).Sorted(query.Asc("rank"))},
		{"probe/limit", query.New("docs", query.Eq("tag", "tag042")).Sorted(query.Desc("rank")).Sliced(0, 10)},
		{"range/all", query.New("docs", query.Gte("rank", int64(docs/2))).Sorted(query.Asc("rank"))},
		{"range/limit", query.New("docs", query.Gte("rank", int64(docs/2))).Sorted(query.Asc("rank")).Sliced(0, 10)},
		{"scan/all", query.New("docs", query.Exists("tag", true)).Sorted(query.Asc("rank"))},
		{"scan/limit", query.New("docs", nil).Sorted(query.Desc("rank")).Sliced(0, 10)},
	}

	result := &QueryGridResult{Docs: docs}
	for _, c := range cells {
		plan, err := s.Explain(c.q)
		if err != nil {
			return nil, err
		}
		matched, _, err := s.QueryPlanned(query.New("docs", c.q.Predicate))
		if err != nil {
			return nil, err
		}

		q := c.q
		streamed := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.QueryPlanned(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		baseline := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.ScanQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})

		gc := QueryGridCell{
			Name:           c.name,
			Plan:           plan.Kind.String(),
			Strategy:       plan.Strategy,
			Matches:        len(matched),
			Limit:          q.Limit,
			StreamedNsOp:   streamed.NsPerOp(),
			StreamedAllocs: int64(streamed.AllocsPerOp()),
			StreamedBytes:  int64(streamed.AllocedBytesPerOp()),
			BaselineNsOp:   baseline.NsPerOp(),
			BaselineAllocs: int64(baseline.AllocsPerOp()),
			BaselineBytes:  int64(baseline.AllocedBytesPerOp()),
		}
		if gc.StreamedNsOp > 0 {
			gc.Speedup = float64(gc.BaselineNsOp) / float64(gc.StreamedNsOp)
		}
		if gc.StreamedAllocs > 0 {
			gc.AllocReduction = float64(gc.BaselineAllocs) / float64(gc.StreamedAllocs)
		}
		result.Cells = append(result.Cells, gc)
	}
	return result, nil
}

// Table renders the grid as the summary table the bench runner prints.
func (r *QueryGridResult) Table() string {
	tbl := metrics.NewTable("cell", "plan", "strategy", "matches", "limit",
		"streamed", "baseline", "speedup", "alloc-reduction")
	for _, c := range r.Cells {
		tbl.AddRow(c.Name, c.Plan, c.Strategy,
			fmt.Sprintf("%d", c.Matches), fmt.Sprintf("%d", c.Limit),
			fmtNs(c.StreamedNsOp), fmtNs(c.BaselineNsOp),
			fmt.Sprintf("%.1fx", c.Speedup), fmt.Sprintf("%.1fx", c.AllocReduction))
	}
	return tbl.String()
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

// QueryGridReport runs the grid, optionally writes the machine-readable
// JSON record to outPath, and returns the formatted summary.
func QueryGridReport(sc Scale, outPath string) string {
	r, err := QueryGrid(sc)
	if err != nil {
		return fmt.Sprintf("querygrid failed: %v\n", err)
	}
	out := section(fmt.Sprintf("Query grid — streaming executor vs materializing baseline (%d docs)", r.Docs), r.Table())
	if outPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(outPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			out += fmt.Sprintf("write %s: %v\n", outPath, err)
		} else {
			out += fmt.Sprintf("wrote %s\n", outPath)
		}
	}
	return out
}
