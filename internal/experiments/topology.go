// Topology grid: sharded scale-out's reproducible perf trajectory. A
// declarative grid of (shard count × workload mix) cells, each driving
// the cluster router with parallel workers and measuring aggregate
// throughput, so the contention relief from per-shard commit pipelines
// shows up as a speedup column against the 1-shard baseline — and
// regressions show up as a diff in the machine-readable record
// (BENCH_<pr>.json).
package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"quaestor/internal/cluster"
	"quaestor/internal/document"
	"quaestor/internal/metrics"
	"quaestor/internal/query"
)

// topologyDocs is the full-scale preloaded corpus per topology; workers
// then upsert/read/query over this keyspace so every op hits live data.
const topologyDocs = 20_000

// topologyShards is the scale-out axis; 1 shard is the baseline every
// other row's speedup is measured against.
var topologyShards = []int{1, 2, 4}

// topologyParallelism multiplies GOMAXPROCS into the worker count, so the
// commit pipeline sees genuinely concurrent writers (and contended locks)
// even on small CI machines.
const topologyParallelism = 4

// topologyMix is one workload blend: writePct upserts, queryPct
// scatter-gather top-10 queries, the remainder routed point reads.
type topologyMix struct {
	name     string
	writePct int
	queryPct int
}

var topologyMixes = []topologyMix{
	{"write", 100, 0},       // pure write pressure: commit-pipeline contention
	{"mixed", 50, 0},        // half point reads: shard locks shared with readers
	{"write+query", 90, 10}, // scatter-gather in the hot path
}

// TopologyCell is one measured grid point.
type TopologyCell struct {
	Shards    int     `json:"shards"`
	Mix       string  `json:"mix"`
	WritePct  int     `json:"writePct"`
	QueryPct  int     `json:"queryPct"`
	Workers   int     `json:"workers"`
	NsOp      int64   `json:"nsOp"`
	OpsPerSec float64 `json:"opsPerSec"`
	// Speedup is this cell's throughput over the 1-shard cell of the same
	// mix — the contention-relief headline.
	Speedup float64 `json:"speedupVs1Shard"`
}

// TopologyResult is the full grid run, JSON-marshalable for BENCH files.
type TopologyResult struct {
	Docs  int            `json:"docs"`
	Cells []TopologyCell `json:"cells"`
}

// topologyRouter opens an in-memory cluster of the given width and
// preloads the corpus: sequential rank (range/sort axis), 16 groups.
func topologyRouter(shards, docs int) (*cluster.Router, error) {
	r := cluster.MustOpen(cluster.Options{Shards: shards})
	if err := r.CreateTable("docs"); err != nil {
		return nil, err
	}
	for i := 0; i < docs; i++ {
		doc := document.New(fmt.Sprintf("k%06d", i), map[string]any{
			"rank": int64(i),
			"grp":  fmt.Sprintf("g%02d", i%16),
		})
		if err := r.Insert("docs", doc); err != nil {
			return nil, err
		}
	}
	if err := r.CreateIndex("docs", "rank"); err != nil {
		return nil, err
	}
	return r, nil
}

// Topology measures every (shards × mix) cell at the given scale.
func Topology(sc Scale) (*TopologyResult, error) {
	docs := sc.count(topologyDocs)
	result := &TopologyResult{Docs: docs}
	baseline := map[string]float64{}
	for _, shards := range topologyShards {
		r, err := topologyRouter(shards, docs)
		if err != nil {
			return nil, err
		}
		for _, mix := range topologyMixes {
			var seed int64
			res := testing.Benchmark(func(b *testing.B) {
				b.SetParallelism(topologyParallelism)
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(atomic.AddInt64(&seed, 1)))
					for pb.Next() {
						id := fmt.Sprintf("k%06d", rng.Intn(docs))
						switch p := rng.Intn(100); {
						case p < mix.writePct:
							doc := document.New(id, map[string]any{
								"rank": int64(rng.Intn(docs)),
								"grp":  fmt.Sprintf("g%02d", rng.Intn(16)),
							})
							if err := r.Put("docs", doc); err != nil {
								b.Error(err)
								return
							}
						case p < mix.writePct+mix.queryPct:
							q := query.New("docs", query.Gte("rank", int64(rng.Intn(docs)))).
								Sorted(query.Desc("rank")).Sliced(0, 10)
							cur, err := r.QueryStream(q)
							if err != nil {
								b.Error(err)
								return
							}
							for {
								if _, ok := cur.Next(); !ok {
									break
								}
							}
						default:
							// Preloaded ids are never deleted: a miss is a bug.
							if _, err := r.Get("docs", id); err != nil {
								b.Error(err)
								return
							}
						}
					}
				})
			})
			cell := TopologyCell{
				Shards:   shards,
				Mix:      mix.name,
				WritePct: mix.writePct,
				QueryPct: mix.queryPct,
				Workers:  topologyParallelism * runtime.GOMAXPROCS(0),
				NsOp:     res.NsPerOp(),
			}
			if cell.NsOp > 0 {
				cell.OpsPerSec = 1e9 / float64(cell.NsOp)
			}
			if shards == 1 {
				baseline[mix.name] = cell.OpsPerSec
			}
			if base := baseline[mix.name]; base > 0 {
				cell.Speedup = cell.OpsPerSec / base
			}
			result.Cells = append(result.Cells, cell)
		}
		r.Close()
	}
	return result, nil
}

// Table renders the grid as the summary table the bench runner prints.
func (r *TopologyResult) Table() string {
	tbl := metrics.NewTable("shards", "mix", "workers", "ns/op", "ops/sec", "vs-1-shard")
	for _, c := range r.Cells {
		tbl.AddRow(fmt.Sprintf("%d", c.Shards), c.Mix, fmt.Sprintf("%d", c.Workers),
			fmtNs(c.NsOp), fmt.Sprintf("%.0f", c.OpsPerSec), fmt.Sprintf("%.2fx", c.Speedup))
	}
	return tbl.String()
}

// TopologyReport runs the grid, optionally writes the machine-readable
// JSON record to outPath, and returns the formatted summary.
func TopologyReport(sc Scale, outPath string) string {
	r, err := Topology(sc)
	if err != nil {
		return fmt.Sprintf("topology failed: %v\n", err)
	}
	out := section(fmt.Sprintf("Topology grid — throughput vs shard count (%d docs preloaded)", r.Docs), r.Table())
	if outPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(outPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			out += fmt.Sprintf("write %s: %v\n", outPath, err)
		} else {
			out += fmt.Sprintf("wrote %s\n", outPath)
		}
	}
	return out
}
