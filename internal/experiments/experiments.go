// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each function runs one experiment and returns the
// formatted rows/series the paper reports; cmd/quaestor-bench and the
// top-level benchmarks are thin wrappers around this package.
//
// Absolute numbers differ from the paper (our substrate is a simulator and
// an in-process pipeline, not EC2), but the shapes — who wins, by what
// factor, where the crossovers fall — are the reproduction target. See
// EXPERIMENTS.md for a paper-vs-measured record.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"quaestor/internal/metrics"
	"quaestor/internal/server"
	"quaestor/internal/sim"
	"quaestor/internal/ttl"
	"quaestor/internal/workload"
)

// Scale reduces experiment sizes uniformly so the suite stays tractable in
// CI-like environments: 1.0 reproduces the paper's parameters, smaller
// values shrink durations and client counts proportionally.
type Scale float64

// Common scales.
const (
	// FullScale matches the paper's parameters.
	FullScale Scale = 1.0
	// QuickScale is sized for test/benchmark runs.
	QuickScale Scale = 0.1
)

func (s Scale) duration(full time.Duration) time.Duration {
	d := time.Duration(float64(full) * float64(s))
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func (s Scale) count(full int) int {
	n := int(float64(full) * float64(s))
	if n < 1 {
		n = 1
	}
	return n
}

// connectionSteps are the x-axis of Figures 8a–8c.
var connectionSteps = []int{300, 600, 1200, 1800, 2400, 3000}

// modes are the four systems compared in Figure 8a.
var modes = []server.CacheMode{
	server.ModeFull,
	server.ModeClientOnly,
	server.ModeCDNOnly,
	server.ModeUncached,
}

// baseSimConfig returns the read-heavy workload setup of Section 6.1:
// 10 tables × 10,000 documents, 100 queries per table, 99% reads+queries /
// 1% writes, Zipfian access.
func baseSimConfig(mode server.CacheMode, connections int, sc Scale) *sim.Config {
	clients := 10
	conns := connections / clients
	if conns < 1 {
		conns = 1
	}
	return &sim.Config{
		Dataset: &workload.DatasetConfig{
			Tables:          10,
			DocsPerTable:    sc.count(10000),
			QueriesPerTable: 100,
			MeanResultSize:  10,
			Seed:            1,
		},
		Mix:            workload.ReadHeavy,
		ZipfS:          0.7,
		Clients:        clients,
		ConnsPerClient: conns,
		Duration:       sc.duration(60 * time.Second),
		EBFRefresh:     time.Second,
		Mode:           mode,
		DisableEBF:     mode == server.ModeCDNOnly || mode == server.ModeUncached,
		Seed:           7,
		MaxOps:         uint64(sc.count(400000)),
	}
}

// Figure8a reproduces the throughput comparison: ops/s versus connection
// count for Quaestor, EBF-only (client cache), CDN-only and uncached.
func Figure8a(sc Scale) string {
	tbl := metrics.NewTable("connections", "quaestor", "ebf-only", "cdn-only", "uncached", "speedup-vs-uncached")
	for _, conns := range connectionSteps {
		row := []string{fmt.Sprintf("%d", conns)}
		var quaestorTput, uncachedTput float64
		for _, mode := range modes {
			m := sim.Run(baseSimConfig(mode, conns, sc))
			row = append(row, fmt.Sprintf("%.0f", m.Throughput))
			switch mode {
			case server.ModeFull:
				quaestorTput = m.Throughput
			case server.ModeUncached:
				uncachedTput = m.Throughput
			}
		}
		speedup := 0.0
		if uncachedTput > 0 {
			speedup = quaestorTput / uncachedTput
		}
		row = append(row, fmt.Sprintf("%.1fx", speedup))
		tbl.AddRow(row...)
	}
	return section("Figure 8a — throughput (ops/s) vs connections, read-heavy (99% reads+queries, 1% writes)", tbl.String())
}

// Figure8b reproduces mean read latency versus connections.
func Figure8b(sc Scale) string {
	return latencyVsConnections("Figure 8b — mean READ latency (ms) vs connections", false, sc)
}

// Figure8c reproduces mean query latency versus connections.
func Figure8c(sc Scale) string {
	return latencyVsConnections("Figure 8c — mean QUERY latency (ms) vs connections", true, sc)
}

func latencyVsConnections(title string, queries bool, sc Scale) string {
	tbl := metrics.NewTable("connections", "quaestor", "ebf-only", "cdn-only", "uncached")
	for _, conns := range connectionSteps {
		row := []string{fmt.Sprintf("%d", conns)}
		for _, mode := range modes {
			m := sim.Run(baseSimConfig(mode, conns, sc))
			h := m.ReadLatency
			if queries {
				h = m.QueryLatency
			}
			row = append(row, fmt.Sprintf("%.1f", h.Mean()))
		}
		tbl.AddRow(row...)
	}
	return section(title, tbl.String())
}

// queryCountSteps are the x-axis of Figures 8d/8e.
var queryCountSteps = []int{1000, 2000, 4000, 6000, 8000, 10000}

func queryCountConfig(totalQueries int, sc Scale) *sim.Config {
	cfg := baseSimConfig(server.ModeFull, 1200, sc)
	cfg.Dataset.QueriesPerTable = totalQueries / cfg.Dataset.Tables
	return cfg
}

// Figure8d reproduces mean request latency for reads and queries as the
// distinct query count grows.
func Figure8d(sc Scale) string {
	tbl := metrics.NewTable("queries", "query-latency-ms", "read-latency-ms")
	for _, qc := range queryCountSteps {
		m := sim.Run(queryCountConfig(qc, sc))
		tbl.AddRow(fmt.Sprintf("%d", qc),
			fmt.Sprintf("%.1f", m.QueryLatency.Mean()),
			fmt.Sprintf("%.1f", m.ReadLatency.Mean()))
	}
	return section("Figure 8d — mean request latency vs query count (1200 connections)", tbl.String())
}

// Figure8e reproduces client and CDN cache hit rates as the query count
// grows.
func Figure8e(sc Scale) string {
	tbl := metrics.NewTable("queries", "client/queries", "client/reads", "cdn/queries", "cdn/reads")
	for _, qc := range queryCountSteps {
		m := sim.Run(queryCountConfig(qc, sc))
		tbl.AddRow(fmt.Sprintf("%d", qc),
			fmt.Sprintf("%.2f", m.ClientHitRate(true)),
			fmt.Sprintf("%.2f", m.ClientHitRate(false)),
			fmt.Sprintf("%.2f", m.CDNHitRate(true)),
			fmt.Sprintf("%.2f", m.CDNHitRate(false)))
	}
	return section("Figure 8e — cache hit rates vs query count", tbl.String())
}

// Figure8f reproduces the query latency histogram: client hits at ~0 ms,
// CDN hits around the CDN RTT, misses around the full round-trip.
func Figure8f(sc Scale) string {
	m := sim.Run(baseSimConfig(server.ModeFull, 3000, sc))
	bounds := []float64{0.5, 2, 8, 32, 100, 200, 400}
	counts := m.QueryLatency.Buckets(bounds)
	tbl := metrics.NewTable("bucket", "count", "share")
	total := 0
	for _, c := range counts {
		total += c
	}
	labels := []string{"<=0.5ms (client hit)", "<=2ms", "<=8ms (CDN hit)", "<=32ms", "<=100ms", "<=200ms (miss)", "<=400ms", ">400ms"}
	for i, c := range counts {
		share := 0.0
		if total > 0 {
			share = float64(c) / float64(total)
		}
		tbl.AddRow(labels[i], fmt.Sprintf("%d", c), fmt.Sprintf("%.1f%%", 100*share))
	}
	out := tbl.String()
	out += fmt.Sprintf("\nclient hit rate=%.2f cdn hit rate=%.2f miss rate=%.2f\n",
		m.ClientHitRate(true), m.CDNHitRate(true),
		rateOf(m.MissQueries, m.Queries))
	return section("Figure 8f — query latency histogram (3000 connections, read-heavy)", out)
}

func rateOf(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// Figure9 reproduces client query cache hit rates under growing update
// rates for different EBF refresh intervals and query counts.
func Figure9(sc Scale) string {
	type series struct {
		label   string
		queries int
		refresh time.Duration
	}
	seriesList := []series{
		{"100k obj/1k queries/1s", 1000, time.Second},
		{"100k obj/1k queries/10s", 1000, 10 * time.Second},
		{"100k obj/1k queries/100s", 1000, 100 * time.Second},
		{"100k obj/10k queries/1s", 10000, time.Second},
	}
	updateRates := []float64{0.01, 0.05, 0.10, 0.15, 0.20}
	header := []string{"update-rate"}
	for _, s := range seriesList {
		header = append(header, s.label)
	}
	tbl := metrics.NewTable(header...)
	for _, ur := range updateRates {
		row := []string{fmt.Sprintf("%.2f", ur)}
		for _, s := range seriesList {
			cfg := baseSimConfig(server.ModeFull, 1200, sc)
			cfg.Dataset.QueriesPerTable = s.queries / cfg.Dataset.Tables
			cfg.EBFRefresh = s.refresh
			read := (1 - ur) / 2
			cfg.Mix = workload.Mix{Read: read, Query: read, Update: ur}
			m := sim.Run(cfg)
			row = append(row, fmt.Sprintf("%.2f", m.ClientHitRate(true)))
		}
		tbl.AddRow(row...)
	}
	return section("Figure 9 — client query cache hit rate vs update rate (per EBF refresh interval)", tbl.String())
}

// Figure10 reproduces stale read/query rates versus the EBF refresh
// interval for 10 and 100 clients (6 connections each, the browser
// default).
func Figure10(sc Scale) string {
	refreshes := []time.Duration{1 * time.Second, 10 * time.Second, 20 * time.Second, 30 * time.Second, 40 * time.Second, 50 * time.Second}
	tbl := metrics.NewTable("refresh-s", "10cl/queries", "10cl/reads", "100cl/queries", "100cl/reads", "cdn-stale-share")
	for _, rf := range refreshes {
		row := []string{fmt.Sprintf("%.0f", rf.Seconds())}
		var cdnShare float64
		for _, clients := range []int{10, 100} {
			cfg := baseSimConfig(server.ModeFull, clients*6, sc)
			cfg.Clients = clients
			cfg.ConnsPerClient = 6
			cfg.EBFRefresh = rf
			// Browser-like pacing (6 connections with think time) and more
			// writes than the headline workload so staleness is observable,
			// as in the simulation section.
			cfg.ThinkTime = 100 * time.Millisecond
			cfg.Mix = workload.Mix{Read: 0.45, Query: 0.45, Update: 0.10}
			m := sim.Run(cfg)
			row = append(row, fmt.Sprintf("%.3f", m.StaleRate(true)), fmt.Sprintf("%.3f", m.StaleRate(false)))
			if m.Queries+m.Reads > 0 {
				cdnShare = float64(m.StaleCDNServes) / float64(m.Queries+m.Reads)
			}
		}
		row = append(row, fmt.Sprintf("%.4f", cdnShare))
		tbl.AddRow(row...)
	}
	return section("Figure 10 — stale read/query rates vs EBF refresh interval", tbl.String())
}

// Figure11 reproduces the CDF comparison between Quaestor's estimated TTLs
// and the true TTLs (time a result could have been cached until
// invalidation) under a 1% write rate.
func Figure11(sc Scale) string {
	cfg := baseSimConfig(server.ModeFull, 600, sc)
	cfg.Duration = sc.duration(10 * time.Minute)
	cfg.Mix = workload.Mix{Read: 0.495, Query: 0.495, Update: 0.01}
	cfg.MaxOps = uint64(sc.count(2000000))
	m := sim.Run(cfg)
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	tbl := metrics.NewTable("quantile", "estimated-ttl-s", "true-ttl-s")
	for _, q := range quantiles {
		tbl.AddRow(fmt.Sprintf("p%.0f", q*100),
			fmt.Sprintf("%.1f", m.EstimatedTTLs.Percentile(q)/1000),
			fmt.Sprintf("%.1f", m.TrueTTLs.Percentile(q)/1000))
	}
	out := tbl.String()
	out += fmt.Sprintf("\nsamples: estimated=%d true=%d\n", m.EstimatedTTLs.Count(), m.TrueTTLs.Count())
	return section("Figure 11 — CDF of estimated vs true TTLs (1% writes)", out)
}

// Table1 reproduces the document-count sweep (Zipf constant 0.99). The 10M
// row is included at FullScale only — it needs several GB of ground-truth
// state, exactly like the paper's biggest configuration.
func Table1(sc Scale) string {
	type step struct {
		docs    int
		queries int
	}
	steps := []step{{10000, 100}, {100000, 1000}, {1000000, 10000}}
	if sc >= FullScale {
		steps = append(steps, step{10000000, 100000})
	}
	tbl := metrics.NewTable("documents", "queries", "query-latency-ms", "read-latency-ms")
	for _, st := range steps {
		cfg := baseSimConfig(server.ModeFull, 1200, sc)
		// One logical corpus: fixed 10 tables, documents split across them.
		cfg.Dataset.DocsPerTable = st.docs / cfg.Dataset.Tables
		cfg.Dataset.QueriesPerTable = st.queries / cfg.Dataset.Tables
		cfg.ZipfS = 0.99
		cfg.Duration = sc.duration(600 * time.Second)
		m := sim.Run(cfg)
		tbl.AddRow(fmt.Sprintf("%d", st.docs), fmt.Sprintf("%d", st.queries),
			fmt.Sprintf("%.1f", m.QueryLatency.Mean()),
			fmt.Sprintf("%.1f", m.ReadLatency.Mean()))
	}
	return section("Table 1 — latency for increasing document counts (Zipf 0.99)", tbl.String())
}

// AblationCoherence compares the EBF-based coherence against the static-TTL
// straw man of Section 3 (no client staleness checks) and against serving
// without client caches — the design-choice ablation DESIGN.md calls out.
func AblationCoherence(sc Scale) string {
	type variant struct {
		label      string
		disableEBF bool
		mode       server.CacheMode
	}
	variants := []variant{
		{"EBF coherence (Quaestor)", false, server.ModeFull},
		{"static TTLs, no EBF", true, server.ModeFull},
		{"no client cache (CDN only)", true, server.ModeCDNOnly},
	}
	tbl := metrics.NewTable("variant", "query-hit-rate", "stale-query-rate", "query-latency-ms")
	for _, v := range variants {
		cfg := baseSimConfig(v.mode, 1200, sc)
		cfg.DisableEBF = v.disableEBF
		cfg.Mix = workload.Mix{Read: 0.45, Query: 0.45, Update: 0.10}
		m := sim.Run(cfg)
		tbl.AddRow(v.label,
			fmt.Sprintf("%.2f", m.ClientHitRate(true)),
			fmt.Sprintf("%.4f", m.StaleRate(true)),
			fmt.Sprintf("%.1f", m.QueryLatency.Mean()))
	}
	return section("Ablation — cache coherence mechanism (10% writes)", tbl.String())
}

// AblationRepresentation compares query-result materializations end to end
// (Section 4.2 "Representing Query Results"): object-lists pay
// invalidations for every member change but assemble in one round-trip;
// id-lists only invalidate on membership changes but may re-fetch members.
func AblationRepresentation(sc Scale) string {
	policies := []struct {
		label string
		rep   server.RepresentationPolicy
	}{
		{"object-list", server.RepAlwaysObjects},
		{"id-list", server.RepAlwaysIDs},
		{"cost-based", server.RepCostBased},
	}
	tbl := metrics.NewTable("representation", "query-hit-rate", "query-latency-ms", "invalidations", "member-fetches")
	for _, p := range policies {
		cfg := baseSimConfig(server.ModeFull, 1200, sc)
		cfg.Representation = p.rep
		// In-place member churn is where the representations diverge.
		cfg.Mix = workload.Mix{Read: 0.45, Query: 0.45, Update: 0.10}
		m := sim.Run(cfg)
		tbl.AddRow(p.label,
			fmt.Sprintf("%.2f", m.ClientHitRate(true)),
			fmt.Sprintf("%.1f", m.QueryLatency.Mean()),
			fmt.Sprintf("%d", m.EBFStats.Invalidations),
			fmt.Sprintf("%d", m.AssemblyFetches))
	}
	return section("Ablation — id-list vs object-list query representation (10% writes)", tbl.String())
}

// AblationTTL sweeps the estimator's quantile and EWMA α, the two knobs of
// Section 4.2: "by varying the quantile, higher/lower TTLs and thus cache
// hit rates can be traded off against more or fewer invalidations". The
// MinTTL clamp is lowered so the quantile actually differentiates TTLs at
// this write intensity, and the issued-TTL median makes the knob visible.
func AblationTTL(sc Scale) string {
	tbl := metrics.NewTable("quantile", "alpha", "median-ttl-s", "query-hit-rate", "invalidations", "stale-query-rate")
	for _, p := range []float64{0.3, 0.7, 0.95} {
		for _, a := range []float64{0.3, 0.8} {
			cfg := baseSimConfig(server.ModeFull, 1200, sc)
			cfg.TTL = &ttl.Config{
				Quantile: p,
				Alpha:    a,
				MinTTL:   50 * time.Millisecond,
				MaxTTL:   10 * time.Minute,
			}
			cfg.Mix = workload.Mix{Read: 0.475, Query: 0.475, Update: 0.05}
			m := sim.Run(cfg)
			tbl.AddRow(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.1f", a),
				fmt.Sprintf("%.2f", m.EstimatedTTLs.Percentile(0.5)/1000),
				fmt.Sprintf("%.2f", m.ClientHitRate(true)),
				fmt.Sprintf("%d", m.EBFStats.Invalidations),
				fmt.Sprintf("%.4f", m.StaleRate(true)))
		}
	}
	return section("Ablation — TTL estimator quantile × EWMA α (5% writes)", tbl.String())
}

func section(title, body string) string {
	var sb strings.Builder
	sb.WriteString("== ")
	sb.WriteString(title)
	sb.WriteString(" ==\n")
	sb.WriteString(body)
	sb.WriteString("\n")
	return sb.String()
}
